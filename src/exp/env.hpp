// Environment-variable configuration for the bench binaries.
//
// Every reproduction bench accepts the same knobs:
//   MGRTS_INSTANCES      instance count per batch
//   MGRTS_TIME_LIMIT_MS  per-run wall-clock budget in milliseconds
//   MGRTS_SEED           generator / randomized-search seed
//   MGRTS_WORKERS        harness worker threads (1 = fully deterministic)
//   MGRTS_FULL=1         paper-scale run (500 instances, 30 s limit)
#pragma once

#include <cstdint>
#include <string>

namespace mgrts::exp {

[[nodiscard]] std::int64_t env_int64(const char* name, std::int64_t fallback);
[[nodiscard]] std::uint64_t env_u64(const char* name, std::uint64_t fallback);
[[nodiscard]] bool env_flag(const char* name);

/// Common bench configuration resolved from the environment.
struct BenchEnv {
  std::int64_t instances;
  std::int64_t time_limit_ms;
  std::uint64_t seed;
  std::size_t workers;
  bool full;  ///< MGRTS_FULL: paper-scale (overrides instances/time limit)
};

/// `default_instances`/`default_limit_ms` are the scaled-down defaults; a
/// MGRTS_FULL run switches to the paper's 500 instances / 30 s unless the
/// specific bench overrides those too.
[[nodiscard]] BenchEnv bench_env(std::int64_t default_instances,
                                 std::int64_t default_limit_ms,
                                 std::int64_t full_instances = 500,
                                 std::int64_t full_limit_ms = 30'000);

}  // namespace mgrts::exp
