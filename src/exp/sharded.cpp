#include "exp/sharded.hpp"

namespace mgrts::exp {

BatchResult run_batch_sharded(const BatchOptions& options,
                              const std::vector<std::string>& spec_names,
                              std::int64_t time_limit_ms,
                              const dist::FleetOptions& fleet,
                              dist::FleetStats* stats) {
  return dist::run_fleet(options, spec_names, time_limit_ms, fleet, stats);
}

}  // namespace mgrts::exp
