#include "exp/harness.hpp"

#include <exception>
#include <mutex>

#include "support/assert.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace mgrts::exp {

SolverSpec csp2_spec(csp2::ValueOrder order, std::int64_t time_limit_ms,
                     bool paper_faithful) {
  SolverSpec spec;
  spec.label = csp2::to_string(order);
  spec.config.method = core::Method::kCsp2Dedicated;
  spec.config.time_limit_ms = time_limit_ms;
  spec.config.csp2.value_order = order;
  // The paper's solvers run with no presolve in front (§VII filters only by
  // r > 1, which the harness applies separately); the pipeline stages would
  // otherwise decide most identical-platform instances before the search
  // under measurement ever ran.
  spec.config.pipeline = core::PipelineOptions::none();
  if (paper_faithful) {
    // §V-C describes rules 1 and 2 plus the closure checks of (9), nothing
    // more; the slack/demand prunes are this repo's extensions and are
    // evaluated separately (bench_ablation_csp2_rules).
    spec.config.csp2.slack_prune = false;
    spec.config.csp2.tight_demand_prune = false;
  }
  return spec;
}

SolverSpec portfolio_spec(std::int64_t time_limit_ms,
                          std::int32_t random_lanes, bool presolve,
                          bool diverse_lanes) {
  SolverSpec spec;
  spec.label = presolve ? "CSP2-pipeline" : "CSP2-portfolio";
  spec.config.method = core::Method::kPortfolio;
  spec.config.time_limit_ms = time_limit_ms;
  spec.config.pipeline =
      presolve ? core::PipelineOptions::full() : core::PipelineOptions::none();
  spec.config.portfolio.random_lanes = random_lanes;
  spec.config.portfolio.paper_faithful = true;
  spec.config.portfolio.pruned_lane = diverse_lanes;
  spec.config.portfolio.local_search_lane = diverse_lanes;
  return spec;
}

SolverSpec pipeline_spec(std::int64_t time_limit_ms) {
  SolverSpec spec;
  spec.label = "pipeline-CSP2";
  spec.config.method = core::Method::kCsp2Dedicated;
  spec.config.time_limit_ms = time_limit_ms;
  spec.config.csp2.value_order = csp2::ValueOrder::kDMinusC;
  spec.config.pipeline = core::PipelineOptions::full();
  return spec;
}

SolverSpec presolve_probe_spec(std::int64_t time_limit_ms, bool flow_oracle,
                               std::int64_t presolve_max_nodes) {
  SolverSpec spec;
  spec.label = "presolve-probe";
  // A one-node dedicated backend: cheap enough that a decided run means
  // "the presolve stages (or a trivial search) absorbed it" — anything
  // still undecided is the residue the real searches race over.
  spec.config.method = core::Method::kCsp2Dedicated;
  spec.config.csp2.value_order = csp2::ValueOrder::kDMinusC;
  spec.config.max_nodes = 1;
  spec.config.time_limit_ms = time_limit_ms;
  spec.config.pipeline = core::PipelineOptions::full();
  spec.config.pipeline.flow_oracle = flow_oracle;
  spec.config.pipeline.presolve_max_nodes = presolve_max_nodes;
  return spec;
}

std::vector<std::string> known_spec_names() {
  return {"csp1",           "csp2-input",
          "csp2-rm",        "csp2-dm",
          "csp2-tmc",       "csp2-dmc",
          "csp2-dmc-pruned", "csp2g-learn",
          "pipeline",       "portfolio",
          "portfolio-raw",  "presolve-probe",
          "presolve-probe-noflow"};
}

std::optional<SolverSpec> spec_from_name(const std::string& name,
                                         std::int64_t time_limit_ms,
                                         std::uint64_t seed) {
  if (name == "csp1") {
    // paper_lineup's first entry, without materializing the other five.
    SolverSpec spec;
    spec.label = "CSP1";
    spec.config.method = core::Method::kCsp1Generic;
    spec.config.time_limit_ms = time_limit_ms;
    spec.config.generic = core::choco_like_defaults(seed);
    spec.config.pipeline = core::PipelineOptions::none();
    return spec;
  }
  if (name == "csp2-input") {
    return csp2_spec(csp2::ValueOrder::kInput, time_limit_ms);
  }
  if (name == "csp2-rm") {
    return csp2_spec(csp2::ValueOrder::kRateMonotonic, time_limit_ms);
  }
  if (name == "csp2-dm") {
    return csp2_spec(csp2::ValueOrder::kDeadlineMonotonic, time_limit_ms);
  }
  if (name == "csp2-tmc") {
    return csp2_spec(csp2::ValueOrder::kTMinusC, time_limit_ms);
  }
  if (name == "csp2-dmc") {
    return csp2_spec(csp2::ValueOrder::kDMinusC, time_limit_ms);
  }
  if (name == "csp2-dmc-pruned") {
    SolverSpec spec = csp2_spec(csp2::ValueOrder::kDMinusC, time_limit_ms,
                                /*paper_faithful=*/false);
    spec.label = "(D-C)-pruned";
    return spec;
  }
  if (name == "csp2g-learn") {
    // The production generic-engine configuration the residue benches race:
    // CSP2 encoding, Choco-like strategy, 1-UIP learning with backjumping
    // and minimization at their defaults — the lane whose NogoodStats a
    // shard row must carry intact.
    SolverSpec spec;
    spec.label = "CSP2-generic-learn";
    spec.config.method = core::Method::kCsp2Generic;
    spec.config.time_limit_ms = time_limit_ms;
    spec.config.pipeline = core::PipelineOptions::none();
    spec.config.generic = core::choco_like_defaults(seed);
    spec.config.generic.nogoods = true;
    return spec;
  }
  if (name == "pipeline") return pipeline_spec(time_limit_ms);
  if (name == "portfolio") return portfolio_spec(time_limit_ms);
  if (name == "portfolio-raw") {
    return portfolio_spec(time_limit_ms, 1, false, false);
  }
  if (name == "presolve-probe") return presolve_probe_spec(time_limit_ms);
  if (name == "presolve-probe-noflow") {
    return presolve_probe_spec(time_limit_ms, /*flow_oracle=*/false,
                               /*presolve_max_nodes=*/500);
  }
  return std::nullopt;
}

RunRecord record_from_report(core::SolveReport report) {
  RunRecord run;
  run.verdict = report.verdict;
  run.seconds = report.seconds;
  run.witness_ok = report.witness_valid;
  run.complete = report.complete;
  run.nodes = report.nodes;
  run.decided_by = std::move(report.decided_by);
  run.failure_cause = report.cause;
  run.nogoods = report.nogoods;
  run.propagators = std::move(report.propagators);
  return run;
}

void reseed_for_index(core::SolveConfig& config, std::uint64_t index) {
  config.generic.seed ^= 0x9e3779b97f4a7c15ULL * (index + 1);
  config.localsearch.seed ^= 0x9e3779b97f4a7c15ULL * (index + 1);
}

ResidueSpec residue_spec(const BatchOptions& options,
                         const SolverSpec& probe) {
  const BatchResult probed = run_batch(options, {probe});
  ResidueSpec residue;
  residue.batch = options;
  residue.batch.indices.clear();
  residue.probed = static_cast<std::int64_t>(probed.instances.size());
  for (const InstanceRecord& inst : probed.instances) {
    if (inst.runs.front().overrun()) {
      residue.batch.indices.push_back(inst.index);
    } else {
      ++residue.absorbed;
    }
  }
  return residue;
}

std::vector<SolverSpec> paper_lineup(std::int64_t time_limit_ms,
                                     std::uint64_t seed,
                                     csp::SolverLimits limits) {
  std::vector<SolverSpec> specs;

  SolverSpec csp1;
  csp1.label = "CSP1";
  csp1.config.method = core::Method::kCsp1Generic;
  csp1.config.time_limit_ms = time_limit_ms;
  csp1.config.generic = core::choco_like_defaults(seed);
  csp1.config.limits = limits;
  csp1.config.pipeline = core::PipelineOptions::none();  // paper-faithful
  specs.push_back(std::move(csp1));

  specs.push_back(csp2_spec(csp2::ValueOrder::kInput, time_limit_ms));
  specs.push_back(csp2_spec(csp2::ValueOrder::kRateMonotonic, time_limit_ms));
  specs.push_back(
      csp2_spec(csp2::ValueOrder::kDeadlineMonotonic, time_limit_ms));
  specs.push_back(csp2_spec(csp2::ValueOrder::kTMinusC, time_limit_ms));
  specs.push_back(csp2_spec(csp2::ValueOrder::kDMinusC, time_limit_ms));
  return specs;
}

std::string health_summary(const core::BatchHealth& health) {
  if (health.failures == 0 && health.retries == 0 &&
      health.quarantined == 0) {
    return "health: clean (no contained failures)";
  }
  std::string out = "health: " + std::to_string(health.failures) +
                    " contained failure(s), " +
                    std::to_string(health.retries) + " retried, " +
                    std::to_string(health.recovered) + " recovered, " +
                    std::to_string(health.quarantined) + " quarantined";
  if (!health.first_error.empty()) {
    out += " (first: " + health.first_error + ")";
  }
  return out;
}

BatchResult run_batch(const BatchOptions& options,
                      const std::vector<SolverSpec>& specs) {
  MGRTS_EXPECTS(!specs.empty());
  MGRTS_EXPECTS(options.instances >= 0);

  BatchResult result;
  result.labels.reserve(specs.size());
  for (const auto& spec : specs) result.labels.push_back(spec.label);

  // Materialize the instance stream first; generate_indexed makes instance
  // k independent of worker scheduling, and an explicit index list (a
  // residue set, a shard) simply reshapes which draws the batch runs.
  const auto count = options.indices.empty()
                         ? static_cast<std::size_t>(options.instances)
                         : options.indices.size();
  std::vector<gen::Instance> instances;
  instances.reserve(count);
  result.instances.resize(count);
  for (std::size_t k = 0; k < count; ++k) {
    const std::uint64_t index =
        options.indices.empty() ? static_cast<std::uint64_t>(k)
                                : options.indices[k];
    instances.push_back(
        gen::generate_indexed(options.generator, options.seed, index));
    InstanceRecord& record = result.instances[k];
    record.index = index;
    const auto& inst = instances.back();
    record.tasks = inst.tasks.size();
    record.processors = inst.processors;
    record.hyperperiod = inst.tasks.hyperperiod();
    record.ratio = inst.tasks.utilization_ratio(inst.processors);
    record.exceeds_capacity = inst.tasks.exceeds_capacity(inst.processors);
    record.runs.resize(specs.size());
  }

  // Fan the flat (instance, solver) index space over the shared pool; each
  // run reads its instance in place (no per-job task-set copies — at
  // Table IV scale those would dominate memory) and writes to its own
  // pre-sized slot, so verdict tables are deterministic in layout
  // regardless of worker scheduling.  Library users with independent
  // instances should prefer core::solve_batch.
  std::mutex health_mutex;
  const auto note_failure = [&](const char* what) {
    std::lock_guard<std::mutex> lock(health_mutex);
    ++result.health.failures;
    ++result.health.quarantined;
    if (result.health.first_error.empty()) result.health.first_error = what;
  };

  const std::size_t total_runs = count * specs.size();
  support::parallel_for_index(total_runs, options.workers,
                              [&](std::size_t flat) {
    const std::size_t k = flat / specs.size();
    const std::size_t s = flat % specs.size();
    const gen::Instance& inst = instances[k];

    core::SolveConfig config = specs[s].config;
    // Per-generator-index seed stream (see reseed_for_index) — a residue
    // or shard run replays the exact seeds of the full-stream run.
    reseed_for_index(config, result.instances[k].index);

    // Containment: a run that throws (an injected fault, a resource wall,
    // an internal error) still yields its RunRecord slot — one crashed
    // (instance, solver) pair must never lose the rest of a Table IV
    // batch.  Verdict tables stay complete; the cause says why.
    core::SolveReport report;
    try {
      report = core::solve_instance(
          inst.tasks, rt::Platform::identical(inst.processors), config);
    } catch (const FaultInjectedError& e) {
      report.verdict = core::Verdict::kUnknown;
      report.complete = false;
      report.cause = core::FailureCause::kFaultInjected;
      note_failure(e.what());
    } catch (const ResourceError& e) {
      report.verdict = core::Verdict::kUnknown;
      report.complete = false;
      report.cause = core::FailureCause::kMemory;
      note_failure(e.what());
    } catch (const std::exception& e) {
      report.verdict = core::Verdict::kUnknown;
      report.complete = false;
      report.cause = core::FailureCause::kInternalError;
      note_failure(e.what());
    }

    result.instances[k].runs[s] = record_from_report(std::move(report));
  });

  return result;
}

}  // namespace mgrts::exp
