#include "exp/env.hpp"

#include <cstdlib>

namespace mgrts::exp {

std::int64_t env_int64(const char* name, std::int64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long long value = std::strtoll(raw, &end, 10);
  if (end == raw) return fallback;
  return value;
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw, &end, 10);
  if (end == raw) return fallback;
  return value;
}

bool env_flag(const char* name) {
  const char* raw = std::getenv(name);
  return raw != nullptr && raw[0] == '1';
}

BenchEnv bench_env(std::int64_t default_instances,
                   std::int64_t default_limit_ms,
                   std::int64_t full_instances, std::int64_t full_limit_ms) {
  BenchEnv env{};
  env.full = env_flag("MGRTS_FULL");
  env.instances = env_int64("MGRTS_INSTANCES",
                            env.full ? full_instances : default_instances);
  env.time_limit_ms = env_int64("MGRTS_TIME_LIMIT_MS",
                                env.full ? full_limit_ms : default_limit_ms);
  env.seed = env_u64("MGRTS_SEED", 20090911);  // ICPP 2009 vintage
  env.workers =
      static_cast<std::size_t>(env_int64("MGRTS_WORKERS", 0));
  return env;
}

}  // namespace mgrts::exp
