#include "exp/tables.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace mgrts::exp {

using support::TextTable;

namespace {

std::vector<std::string> header_with_labels(const BatchResult& batch,
                                            const std::string& first) {
  std::vector<std::string> header{first};
  header.insert(header.end(), batch.labels.begin(), batch.labels.end());
  header.push_back("Total");
  return header;
}

std::vector<std::string> overrun_row(const BatchResult& batch,
                                     const std::string& name,
                                     const std::vector<bool>& in_class) {
  std::vector<std::string> row{name};
  std::int64_t class_size = 0;
  for (std::size_t k = 0; k < batch.instances.size(); ++k) {
    if (in_class[k]) ++class_size;
  }
  for (std::size_t s = 0; s < batch.labels.size(); ++s) {
    std::int64_t overruns = 0;
    for (std::size_t k = 0; k < batch.instances.size(); ++k) {
      if (in_class[k] && batch.instances[k].runs[s].overrun()) ++overruns;
    }
    row.push_back(TextTable::num(overruns));
  }
  row.push_back(TextTable::num(class_size));
  return row;
}

}  // namespace

TextTable table1_overruns(const BatchResult& batch) {
  TextTable table(header_with_labels(batch, "# overruns"));
  table.set_title("Table I: number of runs reaching the time limit");

  const std::size_t count = batch.instances.size();
  std::vector<bool> solved(count);
  std::vector<bool> unsolved(count);
  for (std::size_t k = 0; k < count; ++k) {
    solved[k] = batch.instances[k].solved_by_any();
    unsolved[k] = !solved[k];
  }
  table.add_row(overrun_row(batch, "solved", solved));
  table.add_row(overrun_row(batch, "unsolved", unsolved));
  return table;
}

TextTable table2_unsolved(const BatchResult& batch) {
  TextTable table(header_with_labels(batch, "# overruns"));
  table.set_title(
      "Table II: unsolved runs reaching the time limit (r>1-filterable vs "
      "not)");

  const std::size_t count = batch.instances.size();
  std::vector<bool> filtered(count);
  std::vector<bool> unfiltered(count);
  for (std::size_t k = 0; k < count; ++k) {
    const InstanceRecord& inst = batch.instances[k];
    const bool unsolved = !inst.solved_by_any();
    filtered[k] = unsolved && inst.exceeds_capacity;
    unfiltered[k] = unsolved && !inst.exceeds_capacity;
  }
  table.add_row(overrun_row(batch, "filtered", filtered));
  table.add_row(overrun_row(batch, "unfiltered", unfiltered));
  return table;
}

UnsolvedSummary summarize_unsolved(const BatchResult& batch) {
  UnsolvedSummary summary;
  for (const auto& inst : batch.instances) {
    if (inst.solved_by_any()) continue;
    ++summary.unsolved;
    if (inst.exceeds_capacity) {
      ++summary.filtered;
    } else {
      ++summary.unfiltered;
      if (inst.proved_unsolvable_by_any()) ++summary.provably_unsolvable;
    }
  }
  return summary;
}

TextTable table3_difficulty(const BatchResult& batch, double limit_seconds) {
  TextTable table({"rmin-rmax", "#instances", "tres"});
  table.set_title(
      "Table III: instance count and mean resolution time per utilization "
      "ratio");

  // Paper buckets: [0, 0.4), width 0.1 through 1.7, then [1.7, 2.0), plus a
  // catch-all for anything beyond.
  std::vector<double> edges{0.0, 0.4};
  for (double e = 0.5; e <= 1.7001; e += 0.1) edges.push_back(e);
  edges.push_back(2.0);

  for (std::size_t b = 0; b + 1 < edges.size(); ++b) {
    const double lo = edges[b];
    const double hi = edges[b + 1];
    std::int64_t count = 0;
    double total_seconds = 0.0;
    std::int64_t total_runs = 0;
    for (const auto& inst : batch.instances) {
      if (inst.ratio < lo || inst.ratio >= hi) continue;
      ++count;
      for (const auto& run : inst.runs) {
        total_seconds += run.overrun() ? limit_seconds : run.seconds;
        ++total_runs;
      }
    }
    char range[64];
    std::snprintf(range, sizeof range, "%.1f-%.1f", lo, hi);
    table.add_row({range, TextTable::num(count),
                   total_runs == 0
                       ? "-"
                       : TextTable::num(total_seconds /
                                            static_cast<double>(total_runs),
                                        3)});
  }

  std::int64_t beyond = 0;
  for (const auto& inst : batch.instances) {
    if (inst.ratio >= 2.0) ++beyond;
  }
  if (beyond > 0) {
    table.add_row({">=2.0", TextTable::num(beyond), "-"});
  }
  return table;
}

ScalingRow scaling_row(const BatchResult& batch, std::int32_t tasks,
                       double limit_seconds) {
  ScalingRow row;
  row.tasks = tasks;
  row.instances = static_cast<std::int64_t>(batch.instances.size());
  const auto count = static_cast<double>(batch.instances.size());
  MGRTS_EXPECTS(!batch.instances.empty());

  for (const auto& inst : batch.instances) {
    row.avg_ratio += inst.ratio / count;
    row.avg_processors += static_cast<double>(inst.processors) / count;
    row.avg_hyperperiod +=
        static_cast<double>(inst.hyperperiod) / 1000.0 / count;
  }

  row.solved_fraction.assign(batch.labels.size(), 0.0);
  row.avg_seconds.assign(batch.labels.size(), 0.0);
  row.memory_limited.assign(batch.labels.size(), 0);
  for (std::size_t s = 0; s < batch.labels.size(); ++s) {
    std::int64_t solved = 0;
    std::int64_t memory = 0;
    double seconds = 0.0;
    for (const auto& inst : batch.instances) {
      const RunRecord& run = inst.runs[s];
      if (run.found_schedule()) ++solved;
      if (run.verdict == core::Verdict::kMemoryLimit) ++memory;
      seconds += run.overrun() ? limit_seconds : run.seconds;
    }
    row.solved_fraction[s] = static_cast<double>(solved) / count;
    row.avg_seconds[s] = seconds / count;
    row.memory_limited[s] = memory;
  }
  return row;
}

TextTable table4_scaling(const std::vector<ScalingRow>& rows,
                         const std::vector<std::string>& labels) {
  std::vector<std::string> header{"n", "r", "m", "T(1000)"};
  for (const auto& label : labels) {
    header.push_back(label + " solved");
    header.push_back(label + " tres");
  }
  TextTable table(std::move(header));
  table.set_title("Table IV: scaling with a growing number of tasks");

  for (const auto& row : rows) {
    std::vector<std::string> cells{
        TextTable::num(static_cast<std::int64_t>(row.tasks)),
        TextTable::num(row.avg_ratio, 2),
        TextTable::num(row.avg_processors, 2),
        TextTable::num(row.avg_hyperperiod, 2),
    };
    for (std::size_t s = 0; s < labels.size(); ++s) {
      // A solver whose every run hit the memory guard corresponds to the
      // paper's "-" entries (Choco running out of memory, §VII-E).
      if (row.instances > 0 && row.memory_limited[s] == row.instances) {
        cells.emplace_back("-");
        cells.emplace_back("-");
      } else {
        cells.push_back(TextTable::percent(row.solved_fraction[s]));
        cells.push_back(TextTable::num(row.avg_seconds[s], 2));
      }
    }
    table.add_row(std::move(cells));
  }
  return table;
}

}  // namespace mgrts::exp
