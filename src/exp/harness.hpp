// Batch experiment harness: run a line-up of solvers over a stream of
// random instances and record verdicts/timings, reproducing the paper's
// §VII methodology (every solver sees every instance; runs are independent;
// a wall-clock limit turns long runs into "overruns").
//
// Parallelism: the harness fans the (instance, solver) runs out over a
// thread pool; each run itself stays single-threaded and deterministic,
// mirroring the paper's one-core-per-run setup.  Verdicts under a time
// limit are inherently timing-sensitive (true of the paper's 30 s budget as
// well); fix MGRTS_WORKERS=1 for maximum run-to-run stability.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/solve.hpp"
#include "gen/generator.hpp"
#include "rt/task_set.hpp"

namespace mgrts::exp {

struct SolverSpec {
  std::string label;
  core::SolveConfig config;
};

/// The six solvers of Tables I-III: CSP1 on the generic engine with a
/// randomized Choco-like strategy, and the dedicated CSP2 solver with the
/// plain/RM/DM/(T-C)/(D-C) value orders.
[[nodiscard]] std::vector<SolverSpec> paper_lineup(
    std::int64_t time_limit_ms, std::uint64_t seed,
    csp::SolverLimits limits = {});

/// A single line-up entry for the dedicated CSP2 solver.  `paper_faithful`
/// configures the solver exactly as §V-C describes it — chronological
/// backtracking, value-order heuristic, rules 1 and 2, window-closure
/// checks, and nothing else.  Passing false additionally enables this
/// repo's slack/demand pruning extensions (see bench_ablation_csp2_rules
/// for their effect).
[[nodiscard]] SolverSpec csp2_spec(csp2::ValueOrder order,
                                   std::int64_t time_limit_ms,
                                   bool paper_faithful = true);

/// A line-up entry racing the diversified lane line-up through
/// core::solve_portfolio.  The dedicated value-order lanes match
/// csp2_spec's paper-faithful configuration, so "portfolio vs. the single
/// best fixed order" is a like-for-like comparison inside one batch.
/// `presolve` runs the full pipeline stages (analysis, flow oracle,
/// csp2-presolve) before lanes launch and relabels the spec
/// "CSP2-pipeline"; `diverse_lanes` adds the slack/demand-pruned CSP2 and
/// min-conflicts lanes.  Defaults give the full diversified pipeline
/// portfolio; portfolio_spec(ms, n, false, false) is PR 2's raw four-order
/// race.
[[nodiscard]] SolverSpec portfolio_spec(std::int64_t time_limit_ms,
                                        std::int32_t random_lanes = 1,
                                        bool presolve = true,
                                        bool diverse_lanes = true);

/// A line-up entry for the staged pipeline with the CSP2+(D-C) backend:
/// every presolve stage on, then the dedicated search for the residue.
[[nodiscard]] SolverSpec pipeline_spec(std::int64_t time_limit_ms);

/// A probe entry that is "all presolve": the selected pipeline stages in
/// front of a one-node CSP2 backend, so a run decides essentially iff a
/// stage absorbs the instance.  `flow_oracle=false` models the regimes
/// where the polynomial oracle is unavailable (heterogeneous platforms,
/// memory-guarded hyperperiods) and a genuine search residue exists;
/// `presolve_max_nodes` budgets the csp2-presolve stage.
[[nodiscard]] SolverSpec presolve_probe_spec(
    std::int64_t time_limit_ms, bool flow_oracle = true,
    std::int64_t presolve_max_nodes = 20'000);

// ------------------------------------------------------- spec registry
//
// Stable wire names for the line-up entries above, so a remote shard
// request (serve/shard.hpp) can name its solver line-up without
// serializing a SolveConfig: a name plus (time limit, seed) fully
// determines the spec on any build of this repo, which is exactly the
// determinism contract distributed merge relies on.

/// Every name spec_from_name resolves, in a stable order.
[[nodiscard]] std::vector<std::string> known_spec_names();

/// Resolves a registry name ("csp1", "csp2-dmc", "csp2-dmc-pruned",
/// "csp2g-learn", "pipeline", "portfolio", "portfolio-raw",
/// "presolve-probe", "presolve-probe-noflow", ...) into the same spec the
/// local constructors build.  nullopt for unknown names — callers must
/// refuse, not guess.
[[nodiscard]] std::optional<SolverSpec> spec_from_name(
    const std::string& name, std::int64_t time_limit_ms,
    std::uint64_t seed = 20090911);

struct RunRecord {
  core::Verdict verdict = core::Verdict::kInfeasible;
  double seconds = 0.0;
  bool witness_ok = false;
  bool complete = true;
  std::int64_t nodes = 0;
  /// Pipeline provenance: the stage or backend that produced the verdict
  /// (SolveReport::decided_by).
  std::string decided_by;
  /// Failure taxonomy (SolveReport::cause): why an overrun run stopped
  /// short — deadline, cancellation, memory, node budget, an internal
  /// error, or an injected fault.  kNone for decided runs.
  core::FailureCause failure_cause = core::FailureCause::kNone;
  /// Nogood-learning stats of the run (SolveReport::nogoods; zeros unless
  /// a generic-engine method recorded).  Carries the 1-UIP differential
  /// counters (lits_uip/lits_ds — uip_len_ratio is the gated ledger view)
  /// plus subsumption/LBD-refresh events for NogoodLearn::kUip1 runs.
  core::NogoodStats nogoods;
  /// Per-propagator wake/run/prune rows of the run (SolveReport::
  /// propagators; empty unless a generic-engine backend searched).
  std::vector<core::PropagatorStats> propagators;

  /// The paper's "overrun": the run did not decide within its budget.
  [[nodiscard]] bool overrun() const noexcept {
    return verdict == core::Verdict::kTimeout ||
           verdict == core::Verdict::kNodeLimit ||
           verdict == core::Verdict::kMemoryLimit ||
           verdict == core::Verdict::kUnknown;
  }

  /// Decided before the search backend ran (a presolve stage answered).
  [[nodiscard]] bool decided_by_presolve() const noexcept {
    return !overrun() && !decided_by.empty() &&
           decided_by.rfind("backend:", 0) != 0 &&
           decided_by.rfind("portfolio:", 0) != 0;
  }
  [[nodiscard]] bool found_schedule() const noexcept {
    return verdict == core::Verdict::kFeasible;
  }
  /// Proved infeasibility (Table II's "provably unsolvable").
  [[nodiscard]] bool proved_infeasible() const noexcept {
    return verdict == core::Verdict::kInfeasible && complete;
  }
};

/// The one sanctioned SolveReport -> RunRecord projection, shared by the
/// in-process harness (run_batch) and the distributed shard executor
/// (dist::execute_shard) so both paths produce bytewise-identical records
/// from the same report.
[[nodiscard]] RunRecord record_from_report(core::SolveReport report);

/// The per-generator-index seed perturbation run_batch applies before a
/// run: randomized generic searches (and local-search restarts) get a
/// per-instance stream, like independent Choco invocations (§VII-B).
/// Keyed by the generator index, so a residue or shard run replays the
/// exact seeds of the full-stream run.  Exposed so the shard executor is
/// seed-identical by construction rather than by copy-paste.
void reseed_for_index(core::SolveConfig& config, std::uint64_t index);

struct InstanceRecord {
  /// Generator-stream index this instance was drawn from (== its position
  /// in the batch unless BatchOptions::indices reshaped the stream).
  std::uint64_t index = 0;
  std::int32_t tasks = 0;
  std::int32_t processors = 0;
  rt::Time hyperperiod = 0;
  double ratio = 0.0;            ///< r = U / m
  bool exceeds_capacity = false; ///< exact r > 1 (the §VII-C filter)
  std::vector<RunRecord> runs;   ///< parallel to the solver line-up

  /// "Solved" in the paper's Table I sense: some solver found a schedule.
  [[nodiscard]] bool solved_by_any() const noexcept {
    for (const auto& run : runs) {
      if (run.found_schedule()) return true;
    }
    return false;
  }
  [[nodiscard]] bool proved_unsolvable_by_any() const noexcept {
    for (const auto& run : runs) {
      if (run.proved_infeasible()) return true;
    }
    return false;
  }
};

struct BatchResult {
  std::vector<std::string> labels;
  std::vector<InstanceRecord> instances;
  /// Aggregate containment accounting over every (instance, solver) run:
  /// `failures` counts runs whose exception was contained into a kUnknown
  /// record (their RunRecord::failure_cause says why), `first_error` keeps
  /// the first such message.  The harness runs each pair exactly once, so
  /// retries/recovered stay 0 here (core::solve_batch is the retrying
  /// path); quarantined mirrors failures so the two surfaces read alike.
  core::BatchHealth health;
};

/// One-line human summary of a BatchHealth block, shared by the bench
/// executables' stdout and the quickstart ("health: clean" when nothing
/// was contained).
[[nodiscard]] std::string health_summary(const core::BatchHealth& health);

struct BatchOptions {
  gen::GeneratorOptions generator;
  std::int64_t instances = 100;
  std::uint64_t seed = 42;
  std::size_t workers = 0;  ///< 0 = hardware concurrency
  /// Explicit generator-stream indices.  Empty means 0..instances-1; when
  /// set it overrides `instances` and the batch runs exactly these draws.
  /// The generator is index-addressable, so an index list is a complete,
  /// machine-independent description of an instance subset — residue sets,
  /// failure reproductions, and (next step) cross-machine shards are all
  /// just index lists.
  std::vector<std::uint64_t> indices;
};

/// Generates the instance stream (reproducible from the seed, independent
/// of worker count) and runs every spec on every instance.
[[nodiscard]] BatchResult run_batch(const BatchOptions& options,
                                    const std::vector<SolverSpec>& specs);

/// An index-addressable instance filter over run_batch: the batch options
/// restricted to the generator indices a probe left undecided.
struct ResidueSpec {
  /// The source options with `indices` set to the residue (feed straight
  /// back into run_batch).  Caveat: empty `indices` is run_batch's
  /// "full stream" sentinel — check indices().empty() before running a
  /// batch that must mean "nothing survived".
  BatchOptions batch;
  std::int64_t probed = 0;    ///< instances examined
  std::int64_t absorbed = 0;  ///< decided by the probe (not residue)

  [[nodiscard]] const std::vector<std::uint64_t>& indices() const noexcept {
    return batch.indices;
  }
};

/// Runs `probe` over the stream described by `options` and keeps the
/// indices it leaves undecided — the *pipeline residue* when the probe is
/// presolve_probe_spec.  Reproducible: same options + probe give the same
/// index set on any machine that reaches the same verdicts (probe budgets
/// are wall-clock-free only if the probe's stages are; keep probe time
/// limits generous enough that verdicts are budget-insensitive).
[[nodiscard]] ResidueSpec residue_spec(const BatchOptions& options,
                                       const SolverSpec& probe);

}  // namespace mgrts::exp
