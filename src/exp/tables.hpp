// Aggregations that print the paper's result tables from a BatchResult.
// Layouts mirror Tables I-IV of §VII so that paper-vs-measured comparison
// (EXPERIMENTS.md) is line-by-line.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/harness.hpp"
#include "support/table.hpp"

namespace mgrts::exp {

/// Table I: per solver, the number of runs hitting the time limit, split
/// into instances solved by at least one solver vs. unsolved instances.
/// The trailing "Total" column holds the class sizes, as in the paper.
[[nodiscard]] support::TextTable table1_overruns(const BatchResult& batch);

/// Table II: overruns among *unsolved* instances, split into those the
/// r > 1 necessary condition would have filtered out vs. the rest.
[[nodiscard]] support::TextTable table2_unsolved(const BatchResult& batch);

/// Companion numbers quoted in the §VII-C text around Table II.
struct UnsolvedSummary {
  std::int64_t unsolved = 0;
  std::int64_t filtered = 0;      ///< r > 1
  std::int64_t unfiltered = 0;
  std::int64_t provably_unsolvable = 0;  ///< some solver proved UNSAT
};
[[nodiscard]] UnsolvedSummary summarize_unsolved(const BatchResult& batch);

/// Table III: instance counts and mean resolution time (over all solvers,
/// overruns counted at the full budget) per utilization-ratio bucket.
/// Buckets follow the paper: [0, 0.4), then width 0.1 up to 1.7, then
/// [1.7, 2.0).
[[nodiscard]] support::TextTable table3_difficulty(const BatchResult& batch,
                                                   double limit_seconds);

/// One row of Table IV (the n-scaling study): averages over a batch that
/// was generated with ProcessorRule::kMinCapacity for a fixed n.
struct ScalingRow {
  std::int32_t tasks = 0;
  std::int64_t instances = 0;
  double avg_ratio = 0.0;
  double avg_processors = 0.0;
  double avg_hyperperiod = 0.0;  ///< in thousands, like the paper's column
  /// Per solver, parallel to the batch's labels.
  std::vector<double> solved_fraction;
  std::vector<double> avg_seconds;  ///< over decided (non-overrun) runs
  std::vector<std::int64_t> memory_limited;
};
[[nodiscard]] ScalingRow scaling_row(const BatchResult& batch,
                                     std::int32_t tasks,
                                     double limit_seconds);

/// Assembles Table IV from per-n rows.
[[nodiscard]] support::TextTable table4_scaling(
    const std::vector<ScalingRow>& rows, const std::vector<std::string>& labels);

}  // namespace mgrts::exp
