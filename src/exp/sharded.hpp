// Sharded batch entry point: exp::run_batch's distributed twin.
//
// Same inputs as run_batch except the line-up is named through the spec
// registry (exp::spec_from_name) — a wire-serializable description — and
// the work fans out across the dist:: coordinator/worker fleet instead of
// the in-process thread pool.  With an empty fleet (no worker sockets) the
// batch runs in-process through the identical shard executor, which is the
// reference side of the record-identity tests and of mgrts_coordd's
// --verify-local mode.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dist/coord.hpp"
#include "exp/harness.hpp"

namespace mgrts::exp {

/// Runs the batch across `fleet` and merges the rows into a BatchResult
/// whose per-index records match a single-box run_batch over the same
/// options.  See dist::run_fleet for the failure/straggler contract.
[[nodiscard]] BatchResult run_batch_sharded(
    const BatchOptions& options, const std::vector<std::string>& spec_names,
    std::int64_t time_limit_ms, const dist::FleetOptions& fleet = {},
    dist::FleetStats* stats = nullptr);

}  // namespace mgrts::exp
