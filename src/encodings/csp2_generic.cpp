#include "encodings/csp2_generic.hpp"

#include <string>
#include <vector>

#include "analysis/tests.hpp"
#include "csp/propagators.hpp"
#include "rt/jobs.hpp"
#include "support/assert.hpp"
#include "support/error.hpp"

namespace mgrts::enc {

using csp::VarId;
using rt::ProcId;
using rt::TaskId;
using rt::Time;

Csp2GenericModel build_csp2_generic(const rt::TaskSet& ts,
                                    const rt::Platform& platform,
                                    const Csp2GenericOptions& options,
                                    csp::SolverLimits limits) {
  if (!ts.is_constrained()) {
    throw ValidationError(
        "CSP2 expects a constrained-deadline system; expand clones first");
  }
  const Time T = ts.hyperperiod();
  const std::int32_t n = ts.size();
  const std::int32_t m = platform.processors();
  if (n + 1 > csp::Domain64::kMaxSpan) {
    throw ResourceError(
        "generic CSP2 encoding supports at most 63 tasks (domain width); use "
        "the dedicated solver for larger systems");
  }
  const auto var_count = static_cast<std::int64_t>(m) * T;
  if (var_count > limits.max_variables) {
    throw ResourceError("CSP2 model needs " + std::to_string(var_count) +
                        " variables, budget is " +
                        std::to_string(limits.max_variables));
  }

  Csp2GenericModel model;
  model.hyperperiod = T;
  model.tasks = n;
  model.processors = m;
  model.solver = std::make_unique<csp::Solver>(limits);
  csp::Solver& solver = *model.solver;
  const csp::Value idle = model.idle_value();

  for (std::int64_t k = 0; k < var_count; ++k) {
    static_cast<void>(solver.add_variable(0, idle));
  }

  const rt::WindowIndex windows(ts);

  // (7) + §VI-A domain rule: remove task values outside their windows and on
  // processors that cannot serve them.
  for (Time t = 0; t < T; ++t) {
    for (ProcId j = 0; j < m; ++j) {
      const VarId x = model.var(j, t);
      for (TaskId i = 0; i < n; ++i) {
        if (!windows.in_window(i, t) || !platform.can_run(i, j)) {
          const bool ok = solver.post_remove(x, i);
          MGRTS_ASSERT(ok);  // idle keeps every domain non-empty
        }
      }
    }
  }

  // (8): one processor per task per slot.
  for (Time t = 0; t < T; ++t) {
    std::vector<VarId> column;
    column.reserve(static_cast<std::size_t>(m));
    for (ProcId j = 0; j < m; ++j) column.push_back(model.var(j, t));
    solver.add(csp::make_all_different_except(std::move(column), idle,
                                              options.alldiff_level));
  }

  // (9) / (12): per-job execution amount.
  const rt::JobTable jobs(ts);
  for (const rt::Job& job : jobs.jobs()) {
    std::vector<VarId> vars;
    std::vector<std::int64_t> weights;
    vars.reserve(job.slots.size() * static_cast<std::size_t>(m));
    weights.reserve(job.slots.size() * static_cast<std::size_t>(m));
    bool weighted = false;
    for (const Time t : job.slots) {
      for (ProcId j = 0; j < m; ++j) {
        const rt::Rate rate = platform.rate(job.task, j);
        if (rate == 0) continue;  // value i was removed from this variable
        vars.push_back(model.var(j, t));
        weights.push_back(rate);
        weighted = weighted || rate != 1;
      }
    }
    if (weighted) {
      solver.add(csp::make_weighted_count_eq(std::move(vars),
                                             std::move(weights), job.task,
                                             job.wcet));
    } else {
      solver.add(csp::make_count_eq(std::move(vars), job.task, job.wcet));
    }
  }

  // Promoted slack/demand rules (root_demand_prunes; identical platforms
  // only).  All three are necessary conditions — they tighten propagation
  // but can never flip a verdict.  Root infeasibility is posted as an
  // unsatisfiable CountEq so it flows through the normal solve path
  // (kUnsat at root propagation, zero search nodes).
  if (options.root_demand_prunes && platform.is_identical()) {
    bool root_infeasible =
        analysis::forced_demand_test(ts, m).verdict ==
        analysis::TestVerdict::kInfeasible;
    std::vector<std::int32_t> tight_per_slot(static_cast<std::size_t>(T), 0);
    for (const rt::Job& job : jobs.jobs()) {
      const auto capacity = static_cast<std::int64_t>(job.slots.size());
      if (job.wcet > capacity) root_infeasible = true;  // slack rule
      if (root_infeasible) break;
      if (job.wcet != capacity) continue;
      // Tight job: it must occupy exactly one processor in *every* slot of
      // its window (the dedicated solver's slack rule, made declarative).
      for (const Time t : job.slots) {
        ++tight_per_slot[static_cast<std::size_t>(t)];
        std::vector<VarId> column;
        column.reserve(static_cast<std::size_t>(m));
        for (ProcId j = 0; j < m; ++j) column.push_back(model.var(j, t));
        solver.add(csp::make_count_eq(std::move(column), job.task, 1));
      }
    }
    // Counting variant: more tight jobs over one slot than processors is a
    // pigeonhole the per-job counters cannot see at the root.
    for (const std::int32_t tight : tight_per_slot) {
      if (tight > m) root_infeasible = true;
    }
    if (root_infeasible) {
      // count(idle over {x}) == 2 is unsatisfiable over a single variable.
      solver.add(csp::make_count_eq({model.var(0, 0)}, idle, 2));
    }
  }

  // (10)/(13): optional symmetry chains per identical group and slot.
  if (options.symmetry_chains) {
    for (const auto& group : platform.identical_groups(n)) {
      if (group.size() < 2) continue;
      for (Time t = 0; t < T; ++t) {
        std::vector<VarId> chain;
        chain.reserve(group.size());
        for (const ProcId j : group) chain.push_back(model.var(j, t));
        solver.add(csp::make_symmetry_chain(std::move(chain), idle));
      }
    }
  }

  return model;
}

rt::Schedule decode_csp2_generic(const Csp2GenericModel& model,
                                 const std::vector<csp::Value>& values) {
  MGRTS_EXPECTS(static_cast<std::int64_t>(values.size()) ==
                static_cast<std::int64_t>(model.processors) *
                    model.hyperperiod);
  rt::Schedule schedule(model.hyperperiod, model.processors);
  for (Time t = 0; t < model.hyperperiod; ++t) {
    for (ProcId j = 0; j < model.processors; ++j) {
      const csp::Value v =
          values[static_cast<std::size_t>(model.var(j, t))];
      if (v != model.idle_value()) {
        schedule.set(t, j, static_cast<TaskId>(v));
      }
    }
  }
  return schedule;
}

}  // namespace mgrts::enc
