#include "encodings/csp2_generic.hpp"

#include <string>

#include "csp/propagators.hpp"
#include "rt/jobs.hpp"
#include "support/assert.hpp"
#include "support/error.hpp"

namespace mgrts::enc {

using csp::VarId;
using rt::ProcId;
using rt::TaskId;
using rt::Time;

Csp2GenericModel build_csp2_generic(const rt::TaskSet& ts,
                                    const rt::Platform& platform,
                                    const Csp2GenericOptions& options,
                                    csp::SolverLimits limits) {
  if (!ts.is_constrained()) {
    throw ValidationError(
        "CSP2 expects a constrained-deadline system; expand clones first");
  }
  const Time T = ts.hyperperiod();
  const std::int32_t n = ts.size();
  const std::int32_t m = platform.processors();
  if (n + 1 > csp::Domain64::kMaxSpan) {
    throw ResourceError(
        "generic CSP2 encoding supports at most 63 tasks (domain width); use "
        "the dedicated solver for larger systems");
  }
  const auto var_count = static_cast<std::int64_t>(m) * T;
  if (var_count > limits.max_variables) {
    throw ResourceError("CSP2 model needs " + std::to_string(var_count) +
                        " variables, budget is " +
                        std::to_string(limits.max_variables));
  }

  Csp2GenericModel model;
  model.hyperperiod = T;
  model.tasks = n;
  model.processors = m;
  model.solver = std::make_unique<csp::Solver>(limits);
  csp::Solver& solver = *model.solver;
  const csp::Value idle = model.idle_value();

  for (std::int64_t k = 0; k < var_count; ++k) {
    static_cast<void>(solver.add_variable(0, idle));
  }

  const rt::WindowIndex windows(ts);

  // (7) + §VI-A domain rule: remove task values outside their windows and on
  // processors that cannot serve them.
  for (Time t = 0; t < T; ++t) {
    for (ProcId j = 0; j < m; ++j) {
      const VarId x = model.var(j, t);
      for (TaskId i = 0; i < n; ++i) {
        if (!windows.in_window(i, t) || !platform.can_run(i, j)) {
          const bool ok = solver.post_remove(x, i);
          MGRTS_ASSERT(ok);  // idle keeps every domain non-empty
        }
      }
    }
  }

  // (8): one processor per task per slot.
  for (Time t = 0; t < T; ++t) {
    std::vector<VarId> column;
    column.reserve(static_cast<std::size_t>(m));
    for (ProcId j = 0; j < m; ++j) column.push_back(model.var(j, t));
    solver.add(csp::make_all_different_except(std::move(column), idle));
  }

  // (9) / (12): per-job execution amount.
  const rt::JobTable jobs(ts);
  for (const rt::Job& job : jobs.jobs()) {
    std::vector<VarId> vars;
    std::vector<std::int64_t> weights;
    vars.reserve(job.slots.size() * static_cast<std::size_t>(m));
    weights.reserve(job.slots.size() * static_cast<std::size_t>(m));
    bool weighted = false;
    for (const Time t : job.slots) {
      for (ProcId j = 0; j < m; ++j) {
        const rt::Rate rate = platform.rate(job.task, j);
        if (rate == 0) continue;  // value i was removed from this variable
        vars.push_back(model.var(j, t));
        weights.push_back(rate);
        weighted = weighted || rate != 1;
      }
    }
    if (weighted) {
      solver.add(csp::make_weighted_count_eq(std::move(vars),
                                             std::move(weights), job.task,
                                             job.wcet));
    } else {
      solver.add(csp::make_count_eq(std::move(vars), job.task, job.wcet));
    }
  }

  // (10)/(13): optional symmetry chains per identical group and slot.
  if (options.symmetry_chains) {
    for (const auto& group : platform.identical_groups(n)) {
      if (group.size() < 2) continue;
      for (Time t = 0; t < T; ++t) {
        std::vector<VarId> chain;
        chain.reserve(group.size());
        for (const ProcId j : group) chain.push_back(model.var(j, t));
        solver.add(csp::make_symmetry_chain(std::move(chain), idle));
      }
    }
  }

  return model;
}

rt::Schedule decode_csp2_generic(const Csp2GenericModel& model,
                                 const std::vector<csp::Value>& values) {
  MGRTS_EXPECTS(static_cast<std::int64_t>(values.size()) ==
                static_cast<std::int64_t>(model.processors) *
                    model.hyperperiod);
  rt::Schedule schedule(model.hyperperiod, model.processors);
  for (Time t = 0; t < model.hyperperiod; ++t) {
    for (ProcId j = 0; j < model.processors; ++j) {
      const csp::Value v =
          values[static_cast<std::size_t>(model.var(j, t))];
      if (v != model.idle_value()) {
        schedule.set(t, j, static_cast<TaskId>(v));
      }
    }
  }
  return schedule;
}

}  // namespace mgrts::enc
