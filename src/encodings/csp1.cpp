#include "encodings/csp1.hpp"

#include <string>

#include "csp/propagators.hpp"
#include "rt/jobs.hpp"
#include "support/assert.hpp"
#include "support/error.hpp"

namespace mgrts::enc {

using csp::VarId;
using rt::ProcId;
using rt::TaskId;
using rt::Time;

Csp1Model build_csp1(const rt::TaskSet& ts, const rt::Platform& platform,
                     csp::SolverLimits limits) {
  if (!ts.is_constrained()) {
    throw ValidationError(
        "CSP1 expects a constrained-deadline system; expand clones first");
  }
  const Time T = ts.hyperperiod();
  const std::int32_t n = ts.size();
  const std::int32_t m = platform.processors();

  const auto var_count = static_cast<std::int64_t>(n) * m * T;
  if (var_count > limits.max_variables) {
    throw ResourceError("CSP1 model needs " + std::to_string(var_count) +
                        " variables, budget is " +
                        std::to_string(limits.max_variables));
  }

  Csp1Model model;
  model.hyperperiod = T;
  model.tasks = n;
  model.processors = m;
  model.solver = std::make_unique<csp::Solver>(limits);
  csp::Solver& solver = *model.solver;

  for (std::int64_t k = 0; k < var_count; ++k) {
    static_cast<void>(solver.add_variable(0, 1));
  }

  const rt::WindowIndex windows(ts);

  // (2) + heterogeneous domain rule: fix out-of-window and zero-rate
  // variables to 0 at the root.
  for (TaskId i = 0; i < n; ++i) {
    for (ProcId j = 0; j < m; ++j) {
      const bool runnable = platform.can_run(i, j);
      for (Time t = 0; t < T; ++t) {
        if (!runnable || !windows.in_window(i, t)) {
          const bool ok = solver.post_fix(model.var(i, j, t), 0);
          MGRTS_ASSERT(ok);
        }
      }
    }
  }

  // (3): at most one task per processor per slot.
  for (ProcId j = 0; j < m; ++j) {
    for (Time t = 0; t < T; ++t) {
      std::vector<VarId> column;
      column.reserve(static_cast<std::size_t>(n));
      for (TaskId i = 0; i < n; ++i) column.push_back(model.var(i, j, t));
      solver.add(csp::make_at_most_one(std::move(column)));
    }
  }

  // (4): each task on at most one processor per slot.  Only slots inside a
  // window matter; elsewhere all variables are already 0.
  for (TaskId i = 0; i < n; ++i) {
    for (Time t = 0; t < T; ++t) {
      if (!windows.in_window(i, t)) continue;
      std::vector<VarId> row;
      row.reserve(static_cast<std::size_t>(m));
      for (ProcId j = 0; j < m; ++j) row.push_back(model.var(i, j, t));
      solver.add(csp::make_at_most_one(std::move(row)));
    }
  }

  // (5) / (11): per-job execution amount.
  const rt::JobTable jobs(ts);
  for (const rt::Job& job : jobs.jobs()) {
    std::vector<VarId> vars;
    std::vector<std::int64_t> weights;
    vars.reserve(job.slots.size() * static_cast<std::size_t>(m));
    bool weighted = false;
    for (const Time t : job.slots) {
      for (ProcId j = 0; j < m; ++j) {
        const rt::Rate rate = platform.rate(job.task, j);
        if (rate == 0) continue;  // variable is fixed to 0 anyway
        vars.push_back(model.var(job.task, j, t));
        weights.push_back(rate);
        weighted = weighted || rate != 1;
      }
    }
    if (weighted) {
      solver.add(csp::make_weighted_sum_eq(std::move(vars), std::move(weights),
                                           job.wcet));
    } else {
      solver.add(csp::make_sum_eq(std::move(vars), job.wcet));
    }
  }

  return model;
}

rt::Schedule decode_csp1(const Csp1Model& model,
                         const std::vector<csp::Value>& values) {
  MGRTS_EXPECTS(static_cast<std::int64_t>(values.size()) ==
                static_cast<std::int64_t>(model.tasks) * model.processors *
                    model.hyperperiod);
  rt::Schedule schedule(model.hyperperiod, model.processors);
  for (TaskId i = 0; i < model.tasks; ++i) {
    for (ProcId j = 0; j < model.processors; ++j) {
      for (Time t = 0; t < model.hyperperiod; ++t) {
        if (values[static_cast<std::size_t>(model.var(i, j, t))] == 1) {
          MGRTS_ASSERT(schedule.at(t, j) == rt::kIdle);
          schedule.set(t, j, i);
        }
      }
    }
  }
  return schedule;
}

}  // namespace mgrts::enc
