// CSP encoding #1 (§IV): one boolean variable x_{i,j}(t) per task,
// processor and slot, solved by the *generic* engine (the paper's Choco
// role).  Constraints:
//   (2)  x_{i,j}(t) = 0 outside every availability window of i
//        (root-level fixing, exactly the paper's propagation remark);
//   (3)  sum_i x_{i,j}(t) <= 1           per (processor, slot);
//   (4)  sum_j x_{i,j}(t) <= 1           per (task, slot);
//   (5)  sum_{t in I_{i,k}} sum_j x_{i,j}(t) = C_i    per job, or the
//   (11) weighted variant sum s_{i,j} x_{i,j}(t) = C_i on heterogeneous
//        platforms (then additionally D_{i,j}(t) = {0} where s_{i,j} = 0).
//
// Model size is n*m*T booleans; the SolverLimits variable budget plays the
// part of Choco's out-of-memory failures on large instances (Table IV).
#pragma once

#include <memory>
#include <vector>

#include "csp/solver.hpp"
#include "rt/platform.hpp"
#include "rt/schedule.hpp"
#include "rt/task_set.hpp"

namespace mgrts::enc {

struct Csp1Model {
  std::unique_ptr<csp::Solver> solver;
  rt::Time hyperperiod = 0;
  std::int32_t tasks = 0;
  std::int32_t processors = 0;

  /// Variable id of x_{i,j}(t).
  [[nodiscard]] csp::VarId var(rt::TaskId i, rt::ProcId j, rt::Time t) const {
    return static_cast<csp::VarId>(
        (static_cast<std::int64_t>(i) * processors + j) * hyperperiod + t);
  }
};

/// Builds the CSP1 model.  Throws ResourceError when n*m*T exceeds the
/// solver's variable budget (callers map this to SolveStatus::kMemoryLimit).
[[nodiscard]] Csp1Model build_csp1(const rt::TaskSet& ts,
                                   const rt::Platform& platform,
                                   csp::SolverLimits limits = {});

/// Decodes a satisfying assignment into a schedule (Theorem 1 direction).
[[nodiscard]] rt::Schedule decode_csp1(const Csp1Model& model,
                                       const std::vector<csp::Value>& values);

}  // namespace mgrts::enc
