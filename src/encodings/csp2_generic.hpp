// CSP encoding #2 (§V) expressed declaratively for the *generic* solver:
// one n+1-valued variable x_j(t) per processor and slot.
//
// The paper solves CSP2 with a dedicated search procedure (src/csp2); this
// encoding lets the generic engine consume the same model, which isolates
// the contribution of the encoding from the contribution of the hand-made
// search strategy (ablation bench B).
//
// Deviations from the paper's presentation (see DESIGN.md §3):
//   * idle is encoded as value n (not -1) so that ascending value order
//     means "tasks first, idle last", matching search rule 1's intent;
//   * the symmetry rule (10)/(13) is posted as a declarative chain
//     propagator per identical-processor group (optional).
//
// Constraints:
//   (7)  task value i removed from x_j(t) outside i's windows
//        (plus i removed wherever s_{i,j} = 0, §VI-A);
//   (8)  AllDifferentExcept(idle) per slot column;
//   (9)  CountEq / (12) WeightedCountEq per job window.
#pragma once

#include <memory>
#include <vector>

#include "csp/solver.hpp"
#include "rt/platform.hpp"
#include "rt/schedule.hpp"
#include "rt/task_set.hpp"

namespace mgrts::enc {

struct Csp2GenericOptions {
  /// Post the symmetry-breaking chains (rule (10), restricted to identical
  /// groups as in rule (13) on heterogeneous platforms).
  bool symmetry_chains = true;
  /// Promote the dedicated solver's slack/demand pruning rules (the
  /// bench_ablation_csp2_rules extensions) into the model itself —
  /// identical platforms only, necessary conditions, so the feasibility
  /// verdict never changes:
  ///   * a job whose WCET exceeds its window capacity makes the model
  ///     root-infeasible (the solver reports kUnsat without search);
  ///   * a *tight* job (WCET == window capacity) must run in every slot of
  ///     its window: posted as a per-slot-column CountEq(task, 1), which
  ///     keeps pruning throughout the search, not just at the root;
  ///   * more tight jobs over a slot than processors, or forced demand
  ///     over any prefix [0, L) exceeding m*L, is root-infeasible.
  bool root_demand_prunes = false;
  /// Consistency level of the per-slot AllDifferentExcept columns:
  /// kForwardCheck (the classic sweep, the differential baseline) or
  /// kMatching (Régin-style GAC over the value graph, DESIGN.md §14).
  /// Matching prunes a superset per node, so the verdict never changes and
  /// trees never grow.
  csp::PropagationLevel alldiff_level = csp::PropagationLevel::kForwardCheck;
};

struct Csp2GenericModel {
  std::unique_ptr<csp::Solver> solver;
  rt::Time hyperperiod = 0;
  std::int32_t tasks = 0;
  std::int32_t processors = 0;

  /// Idle is the largest value: n.
  [[nodiscard]] csp::Value idle_value() const noexcept { return tasks; }

  /// Variable id of x_j(t); chronological-major so the generic kLex
  /// heuristic matches the paper's chronological variable ordering.
  [[nodiscard]] csp::VarId var(rt::ProcId j, rt::Time t) const {
    return static_cast<csp::VarId>(t * processors + j);
  }
};

/// Builds the model.  Requires n <= 63 (Domain64 span); throws
/// ResourceError when m*T exceeds the variable budget or n is too large.
[[nodiscard]] Csp2GenericModel build_csp2_generic(
    const rt::TaskSet& ts, const rt::Platform& platform,
    const Csp2GenericOptions& options = {}, csp::SolverLimits limits = {});

/// Decodes a satisfying assignment into a schedule.
[[nodiscard]] rt::Schedule decode_csp2_generic(
    const Csp2GenericModel& model, const std::vector<csp::Value>& values);

}  // namespace mgrts::enc
