// Cyclic schedule sigma : {0..T-1} x {0..m-1} -> {kIdle, 0..n-1}.
//
// Per Theorem 1 the infinite schedule is sigma(t mod T); this class stores
// exactly one hyperperiod.  Cells hold 0-based task ids; kIdle (-1) marks an
// idle processor slot (the paper's 0 / "no task" value).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rt/task.hpp"

namespace mgrts::rt {

class Schedule {
 public:
  Schedule() = default;

  /// All slots start idle.
  Schedule(Time hyperperiod, std::int32_t processors);

  [[nodiscard]] Time hyperperiod() const noexcept { return T_; }
  [[nodiscard]] std::int32_t processors() const noexcept { return m_; }
  [[nodiscard]] bool empty() const noexcept { return table_.empty(); }

  /// Task at cyclic slot t (any integer >= 0; reduced mod T) on processor j.
  [[nodiscard]] TaskId at(Time t, ProcId j) const {
    return table_[index(t, j)];
  }

  void set(Time t, ProcId j, TaskId task) { table_[index(t, j)] = task; }

  /// Number of (slot, processor) pairs assigned to `task`.
  [[nodiscard]] Time units_of(TaskId task) const noexcept;

  /// Total busy cells.
  [[nodiscard]] Time busy_cells() const noexcept;

  /// Tasks running at slot t, in processor order (kIdle entries skipped).
  [[nodiscard]] std::vector<TaskId> running_at(Time t) const;

  friend bool operator==(const Schedule&, const Schedule&) = default;

 private:
  [[nodiscard]] std::size_t index(Time t, ProcId j) const {
    const Time tc = t % T_;
    return static_cast<std::size_t>(tc) * static_cast<std::size_t>(m_) +
           static_cast<std::size_t>(j);
  }

  Time T_ = 0;
  std::int32_t m_ = 0;
  std::vector<TaskId> table_;
};

}  // namespace mgrts::rt
