// Table-driven runtime dispatcher.
//
// After Theorem 1 the paper remarks that the CSP schedule assumes worst-case
// execution: "if any job of a task does not need the entire amount of time,
// then the processor is considered idled in order to avoid scheduling
// anomalies."  This module implements exactly that runtime rule: jobs follow
// the cyclic table; a job that finishes early (actual < WCET) leaves its
// remaining table slots idle instead of pulling other work forward.  Under
// this rule every job completes no later than in the worst case, so a valid
// table guarantees no runtime deadline miss — a property the test suite
// checks with randomized underruns.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "rt/platform.hpp"
#include "rt/schedule.hpp"
#include "rt/task_set.hpp"

namespace mgrts::rt {

/// Actual execution demand of one job, in work units (<= C_i).  `job` is the
/// absolute job index (0 = first job after time 0).
using ActualDemand = std::function<Time(TaskId task, std::int64_t job)>;

struct JobOutcome {
  TaskId task = 0;
  std::int64_t job = 0;       ///< absolute job index
  Time release = 0;           ///< absolute release time
  Time abs_deadline = 0;      ///< release + D_i
  Time actual = 0;            ///< demanded work units for this run
  Time completed_at = -1;     ///< absolute slot *after* which it completed
  [[nodiscard]] bool met() const noexcept {
    return completed_at >= 0 && completed_at <= abs_deadline;
  }
};

struct DispatchTrace {
  std::vector<JobOutcome> jobs;   ///< jobs whose window closed in the horizon
  Time idle_injected = 0;         ///< table slots idled by early completion
  bool all_met = true;
};

/// Simulates `hyperperiods` repetitions of the cyclic table.  The schedule
/// must be a valid witness for (ts, platform); callers typically obtain it
/// from a solver and validate it first.
[[nodiscard]] DispatchTrace dispatch_table(const TaskSet& ts,
                                           const Platform& platform,
                                           const Schedule& schedule,
                                           const ActualDemand& actual,
                                           std::int64_t hyperperiods = 2);

}  // namespace mgrts::rt
