// Periodic task model of §II: each task is a 4-tuple (O, C, D, T).
#pragma once

#include <cstdint>
#include <string>

namespace mgrts::rt {

/// Discrete time; one unit == one schedule slot.
using Time = std::int64_t;

/// 0-based task index within a TaskSet.  The paper numbers tasks 1..n; all
/// rendering adds 1 back for display.
using TaskId = std::int32_t;

/// Processor index 0..m-1.
using ProcId = std::int32_t;

/// Sentinel for "no task" (the paper's -1 value in CSP2).
inline constexpr TaskId kIdle = -1;

/// The 4-tuple (O_i, C_i, D_i, T_i) of §II.
struct TaskParams {
  Time offset = 0;    ///< O_i: release of the first job.
  Time wcet = 0;      ///< C_i: worst-case execution time.
  Time deadline = 0;  ///< D_i: relative deadline.
  Time period = 0;    ///< T_i: inter-release separation.

  friend bool operator==(const TaskParams&, const TaskParams&) = default;
};

/// A task as stored inside a TaskSet: parameters plus a display name.
struct Task {
  TaskParams params;
  std::string name;  ///< defaults to "tau<k>"; clones get "tau<k>.<c>".

  [[nodiscard]] Time offset() const noexcept { return params.offset; }
  [[nodiscard]] Time wcet() const noexcept { return params.wcet; }
  [[nodiscard]] Time deadline() const noexcept { return params.deadline; }
  [[nodiscard]] Time period() const noexcept { return params.period; }

  /// Laxity-style quantities used by the CSP2 value-ordering heuristics.
  [[nodiscard]] Time t_minus_c() const noexcept {
    return params.period - params.wcet;
  }
  [[nodiscard]] Time d_minus_c() const noexcept {
    return params.deadline - params.wcet;
  }
};

}  // namespace mgrts::rt
