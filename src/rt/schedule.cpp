#include "rt/schedule.hpp"

#include "support/assert.hpp"
#include "support/error.hpp"
#include "support/fault.hpp"
#include "support/math.hpp"

namespace mgrts::rt {

Schedule::Schedule(Time hyperperiod, std::int32_t processors)
    : T_(hyperperiod), m_(processors) {
  MGRTS_EXPECTS(hyperperiod >= 1 && processors >= 1);
  support::fault_point(support::FaultSite::kScheduleTable);
  const auto cells = support::checked_mul(hyperperiod, processors);
  if (!cells || *cells > (std::int64_t{1} << 31)) {
    throw ResourceError("schedule table T*m too large to materialize");
  }
  table_.assign(static_cast<std::size_t>(*cells), kIdle);
}

Time Schedule::units_of(TaskId task) const noexcept {
  Time units = 0;
  for (const TaskId cell : table_) {
    if (cell == task) ++units;
  }
  return units;
}

Time Schedule::busy_cells() const noexcept {
  Time busy = 0;
  for (const TaskId cell : table_) {
    if (cell != kIdle) ++busy;
  }
  return busy;
}

std::vector<TaskId> Schedule::running_at(Time t) const {
  std::vector<TaskId> out;
  for (ProcId j = 0; j < m_; ++j) {
    const TaskId v = at(t, j);
    if (v != kIdle) out.push_back(v);
  }
  return out;
}

}  // namespace mgrts::rt
