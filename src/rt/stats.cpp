#include "rt/stats.hpp"

#include <algorithm>

#include "rt/jobs.hpp"
#include "support/assert.hpp"

namespace mgrts::rt {

std::vector<JobStats> ScheduleStats::of_task(TaskId task) const {
  std::vector<JobStats> out;
  for (const JobStats& job : jobs) {
    if (job.task == task) out.push_back(job);
  }
  std::sort(out.begin(), out.end(),
            [](const JobStats& a, const JobStats& b) { return a.job < b.job; });
  return out;
}

ScheduleStats analyze_schedule(const TaskSet& ts, const Schedule& schedule) {
  ScheduleStats stats;
  const Time T = ts.hyperperiod();
  const std::int32_t m = schedule.processors();
  const JobTable jobs(ts);

  stats.jobs.reserve(jobs.size());
  for (const Job& job : jobs.jobs()) {
    JobStats js;
    js.task = job.task;
    js.job = job.index;

    // Walk the job's window in temporal order (job.slots is already the
    // release-to-deadline order; wrapped slots reduced mod T).
    ProcId last_proc = -1;
    bool running_gap = false;  // saw a pause since the last busy slot
    Time units = 0;
    const Time wcet = job.wcet;
    for (std::size_t d = 0; d < job.slots.size(); ++d) {
      const Time slot = job.slots[d];
      ProcId on = -1;
      for (ProcId j = 0; j < m; ++j) {
        if (schedule.at(slot, j) == job.task) {
          on = j;
          break;
        }
      }
      if (on < 0) {
        if (units > 0 && units < wcet) running_gap = true;
        continue;
      }
      ++units;
      if (last_proc >= 0) {
        if (running_gap) ++js.preemptions;
        if (on != last_proc) ++js.migrations;
      }
      running_gap = false;
      last_proc = on;
      if (units == wcet) {
        js.completion = static_cast<Time>(d) + 1;
      }
    }
    js.slack = ts[job.task].deadline() - js.completion;
    stats.total_migrations += js.migrations;
    stats.total_preemptions += js.preemptions;
    stats.jobs.push_back(js);
  }

  if (!stats.jobs.empty()) {
    stats.min_slack = stats.jobs.front().slack;
    double total = 0;
    for (const JobStats& js : stats.jobs) {
      stats.min_slack = std::min(stats.min_slack, js.slack);
      total += static_cast<double>(js.slack);
    }
    stats.avg_slack = total / static_cast<double>(stats.jobs.size());
  }
  stats.platform_load =
      static_cast<double>(schedule.busy_cells()) /
      (static_cast<double>(m) * static_cast<double>(T));
  return stats;
}

}  // namespace mgrts::rt
