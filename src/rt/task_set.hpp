// TaskSet: a validated collection of periodic tasks with the derived
// quantities used throughout the paper — hyperperiod T = lcm(T_i),
// utilization U = sum C_i/T_i, and the clone expansion of §VI-B that turns
// an arbitrary-deadline system into an equivalent constrained-deadline one.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <vector>

#include "rt/task.hpp"
#include "support/math.hpp"

namespace mgrts::rt {

/// Which structural rules a TaskSet must satisfy.
enum class DeadlineModel {
  kConstrained,  ///< D_i <= T_i for all i (sections II-V).
  kArbitrary,    ///< D_i may exceed T_i (section VI-B; handled via clones).
};

/// Per-clone provenance recorded by `expand_clones`.
struct CloneInfo {
  TaskId original = 0;    ///< index into the source TaskSet
  std::int32_t clone = 0; ///< i' in tau_{i,i'}, 0-based
};

class TaskSet;

/// Result of the §VI-B transformation.
struct CloneExpansion {
  /// The constrained-deadline clone system (k_i clones per original task).
  std::vector<Task> tasks;
  /// tasks[c] corresponds to origin[c] in the source system.
  std::vector<CloneInfo> origin;
};

class TaskSet {
 public:
  TaskSet() = default;

  /// Validates and stores the tasks; throws ValidationError when a task
  /// violates `model` (see rules below) and OverflowError when the
  /// hyperperiod does not fit in 64 bits.
  ///
  /// Rules enforced:
  ///  * T_i >= 1, C_i >= 1, D_i >= C_i
  ///  * 0 <= O_i < T_i      (offsets are normalized phases; see DESIGN.md §3)
  ///  * kConstrained additionally requires D_i <= T_i.
  explicit TaskSet(std::vector<Task> tasks,
                   DeadlineModel model = DeadlineModel::kConstrained);

  /// Convenience: builds tasks named tau1..taun from raw 4-tuples.
  static TaskSet from_params(std::initializer_list<TaskParams> params,
                             DeadlineModel model = DeadlineModel::kConstrained);
  static TaskSet from_params(const std::vector<TaskParams>& params,
                             DeadlineModel model = DeadlineModel::kConstrained);

  [[nodiscard]] std::int32_t size() const noexcept {
    return static_cast<std::int32_t>(tasks_.size());
  }
  [[nodiscard]] bool empty() const noexcept { return tasks_.empty(); }
  [[nodiscard]] const Task& operator[](TaskId i) const {
    return tasks_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] const std::vector<Task>& tasks() const noexcept {
    return tasks_;
  }
  [[nodiscard]] DeadlineModel model() const noexcept { return model_; }
  [[nodiscard]] bool is_constrained() const noexcept {
    return model_ == DeadlineModel::kConstrained;
  }

  /// Hyperperiod T = lcm(T_1..T_n); cached at construction.
  [[nodiscard]] Time hyperperiod() const noexcept { return hyperperiod_; }

  /// Exact utilization U = sum C_i / T_i.
  [[nodiscard]] support::Rational utilization() const;

  /// Utilization ratio r = U / m as a double (display / histograms only;
  /// use `exceeds_capacity` for the exact r > 1 filter).
  [[nodiscard]] double utilization_ratio(std::int32_t m) const;

  /// Exact version of the paper's necessary-condition filter r > 1 (§VII-C).
  [[nodiscard]] bool exceeds_capacity(std::int32_t m) const;

  /// ceil(U): the smallest processor count not excluded by the necessary
  /// condition; the paper's m_min of §VII-E.
  [[nodiscard]] std::int32_t min_processors_bound() const;

  /// Largest offset; relevant for simulator warm-up intervals.
  [[nodiscard]] Time max_offset() const noexcept;

  /// Number of jobs task i releases per hyperperiod (T / T_i).
  [[nodiscard]] Time jobs_per_hyperperiod(TaskId i) const {
    return hyperperiod_ / (*this)[i].period();
  }

  /// Total job count per hyperperiod across tasks; throws OverflowError.
  [[nodiscard]] Time total_jobs() const;

  /// Total execution demand per hyperperiod: sum_i C_i * T / T_i;
  /// throws OverflowError when not representable.
  [[nodiscard]] Time total_demand() const;

  /// §VI-B: expands every task into k_i = ceil(D_i / T_i) clones
  /// (O + (i'-1)T, C, D, k_i T).  For constrained-deadline tasks k_i = 1 and
  /// the task is passed through unchanged.  The result is always a
  /// constrained-deadline system.
  [[nodiscard]] CloneExpansion expand_clones() const;

  /// Builds the constrained TaskSet from `expand_clones` in one call.
  [[nodiscard]] TaskSet to_constrained() const;

 private:
  std::vector<Task> tasks_;
  DeadlineModel model_ = DeadlineModel::kConstrained;
  Time hyperperiod_ = 1;
};

}  // namespace mgrts::rt
