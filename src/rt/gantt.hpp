// ASCII rendering of availability windows (the paper's Figure 1) and of
// schedules as per-processor Gantt rows.
#pragma once

#include <string>

#include "rt/schedule.hpp"
#include "rt/task_set.hpp"

namespace mgrts::rt {

/// Figure-1-style chart: one row per task, '#' where a slot belongs to an
/// availability window, '.' elsewhere, with a time ruler.  Wrapped windows
/// (offsets > 0) show up naturally because membership is cyclic.
[[nodiscard]] std::string render_windows(const TaskSet& ts);

/// Gantt chart of a cyclic schedule: one row per processor; busy slots show
/// the 1-based task number (single char when n <= 9, else '#' plus legend),
/// '.' for idle.
[[nodiscard]] std::string render_schedule(const TaskSet& ts,
                                          const Schedule& schedule);

}  // namespace mgrts::rt
