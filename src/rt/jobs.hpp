// Availability windows and jobs over one hyperperiod.
//
// Slot semantics (DESIGN.md §3): slot t in {0..T-1} is the real interval
// [t, t+1).  Job k in {0..T/T_i - 1} of task i is released at
// O_i + k*T_i and may execute in the D_i cyclic slots
//   { (O_i + k*T_i + d) mod T : d in 0..D_i-1 }.
// For O_i > 0 the last window of the hyperperiod wraps past T; taking slots
// modulo T is exactly the periodic-schedule construction of Theorem 1.
//
// `WindowIndex` answers membership queries in O(1) arithmetic without
// materializing anything, so the CSP2 solver can handle hyperperiods in the
// 10^5..10^6 range.  `JobTable` materializes explicit per-job slot lists for
// the flow oracle, validator, and CSP encodings (small instances); it guards
// against accidental memory blow-ups with an explicit budget.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "rt/task_set.hpp"

namespace mgrts::rt {

/// Identifies job k of a task together with the in-window position of a slot.
struct WindowHit {
  std::int64_t job = 0;  ///< k, 0-based
  Time depth = 0;        ///< d = slot's offset from the window start
};

/// O(1) membership arithmetic for one task set + hyperperiod.
class WindowIndex {
 public:
  explicit WindowIndex(const TaskSet& ts);

  /// Returns the (job, depth) pair if cyclic slot `t` lies inside a window
  /// of task i, nullopt otherwise.
  [[nodiscard]] std::optional<WindowHit> hit(TaskId i, Time t) const {
    const auto& row = tasks_[static_cast<std::size_t>(i)];
    // u = (t - O_i) mod T decomposes as k*T_i + d; membership iff d < D_i.
    const Time u = support::floor_mod(t - row.offset, hyperperiod_);
    const Time k = u / row.period;
    const Time d = u % row.period;
    if (d >= row.deadline) return std::nullopt;
    return WindowHit{k, d};
  }

  [[nodiscard]] bool in_window(TaskId i, Time t) const {
    return hit(i, t).has_value();
  }

  /// Remaining window slots of the job hit at `t`, including `t` itself
  /// (used by the CSP2 slack pruning: remaining work must fit here).
  [[nodiscard]] Time slots_left(TaskId i, Time t) const {
    const auto h = hit(i, t);
    return h ? tasks_[static_cast<std::size_t>(i)].deadline - h->depth : 0;
  }

  [[nodiscard]] Time hyperperiod() const noexcept { return hyperperiod_; }
  [[nodiscard]] std::int32_t task_count() const noexcept {
    return static_cast<std::int32_t>(tasks_.size());
  }
  [[nodiscard]] Time jobs_of(TaskId i) const {
    return hyperperiod_ / tasks_[static_cast<std::size_t>(i)].period;
  }

 private:
  struct Row {
    Time offset;
    Time period;
    Time deadline;
  };
  std::vector<Row> tasks_;
  Time hyperperiod_ = 1;
};

/// One materialized job: absolute release/deadline plus its cyclic slots.
struct Job {
  TaskId task = 0;
  std::int64_t index = 0;       ///< k, 0-based
  Time release = 0;             ///< O_i + k*T_i (absolute, < T + O_i)
  Time abs_deadline = 0;        ///< release + D_i
  std::vector<Time> slots;      ///< cyclic slots, wrap already applied
  Time wcet = 0;                ///< C_i
};

/// Materialized job list for small instances.
class JobTable {
 public:
  /// Throws ResourceError if sum_i (T/T_i)*D_i exceeds `max_total_slots`.
  explicit JobTable(const TaskSet& ts,
                    std::int64_t max_total_slots = kDefaultSlotBudget);

  static constexpr std::int64_t kDefaultSlotBudget = 50'000'000;

  [[nodiscard]] const std::vector<Job>& jobs() const noexcept { return jobs_; }
  [[nodiscard]] std::size_t size() const noexcept { return jobs_.size(); }

  /// Index of the job of task i hit at slot t (position in `jobs()`),
  /// or -1 when t is outside every window of i.
  [[nodiscard]] std::int64_t job_at(TaskId i, Time t) const;

  /// First job index of task i in `jobs()` (jobs are grouped by task and
  /// ordered by k within a task).
  [[nodiscard]] std::int64_t first_job_of(TaskId i) const {
    return first_[static_cast<std::size_t>(i)];
  }

  [[nodiscard]] const WindowIndex& windows() const noexcept { return windows_; }

 private:
  WindowIndex windows_;
  std::vector<Job> jobs_;
  std::vector<std::int64_t> first_;
};

}  // namespace mgrts::rt
