#include "rt/validate.hpp"

#include <sstream>

#include "rt/jobs.hpp"
#include "support/error.hpp"

namespace mgrts::rt {

std::string_view to_string(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kShape: return "shape-mismatch";
    case ViolationKind::kOutsideWindow: return "C1-outside-window";
    case ViolationKind::kParallelism: return "C3-parallelism";
    case ViolationKind::kWrongAmount: return "C4-wrong-amount";
    case ViolationKind::kZeroRateProc: return "zero-rate-processor";
    case ViolationKind::kBadTaskId: return "bad-task-id";
  }
  return "unknown";
}

std::string ValidationReport::to_string() const {
  if (ok()) return "valid";
  std::ostringstream os;
  os << violations.size() << " violation(s):\n";
  for (const auto& v : violations) {
    os << "  [" << mgrts::rt::to_string(v.kind) << "]";
    if (v.slot >= 0) os << " t=" << v.slot;
    if (v.processor >= 0) os << " P" << (v.processor + 1);
    if (v.task >= 0) os << " tau" << (v.task + 1);
    if (!v.detail.empty()) os << " " << v.detail;
    os << '\n';
  }
  return os.str();
}

ValidationReport validate_schedule(const TaskSet& ts, const Platform& platform,
                                   const Schedule& schedule) {
  ValidationReport report;
  auto fail = [&](ViolationKind kind, Time t, ProcId j, TaskId i,
                  std::string detail) {
    report.violations.push_back(Violation{kind, t, j, i, std::move(detail)});
  };

  if (!ts.is_constrained()) {
    throw ValidationError(
        "validate_schedule expects a constrained-deadline system; expand "
        "arbitrary-deadline systems into clones first (TaskSet::to_constrained)");
  }

  const Time T = ts.hyperperiod();
  const std::int32_t n = ts.size();
  const std::int32_t m = platform.processors();
  if (schedule.hyperperiod() != T || schedule.processors() != m) {
    fail(ViolationKind::kShape, -1, -1, -1,
         "expected T=" + std::to_string(T) + " m=" + std::to_string(m) +
             ", got T=" + std::to_string(schedule.hyperperiod()) +
             " m=" + std::to_string(schedule.processors()));
    return report;  // nothing else is meaningful
  }

  const WindowIndex windows(ts);

  // units[i][k]: weighted work received by job k of task i.
  std::vector<std::vector<Time>> units(static_cast<std::size_t>(n));
  for (TaskId i = 0; i < n; ++i) {
    units[static_cast<std::size_t>(i)].assign(
        static_cast<std::size_t>(ts.jobs_per_hyperperiod(i)), 0);
  }

  std::vector<Time> seen_at_slot(static_cast<std::size_t>(n), -1);
  for (Time t = 0; t < T; ++t) {
    for (ProcId j = 0; j < m; ++j) {
      const TaskId i = schedule.at(t, j);
      if (i == kIdle) continue;
      if (i < 0 || i >= n) {
        fail(ViolationKind::kBadTaskId, t, j, i,
             "cell value " + std::to_string(i));
        continue;
      }
      if (seen_at_slot[static_cast<std::size_t>(i)] == t) {
        fail(ViolationKind::kParallelism, t, j, i,
             "task already running on another processor this slot");
        continue;
      }
      seen_at_slot[static_cast<std::size_t>(i)] = t;

      if (!platform.can_run(i, j)) {
        fail(ViolationKind::kZeroRateProc, t, j, i, "s_{i,j} = 0");
        continue;
      }
      const auto hit = windows.hit(i, t);
      if (!hit) {
        fail(ViolationKind::kOutsideWindow, t, j, i,
             "slot outside every availability window");
        continue;
      }
      units[static_cast<std::size_t>(i)][static_cast<std::size_t>(hit->job)] +=
          platform.rate(i, j);
    }
  }

  for (TaskId i = 0; i < n; ++i) {
    const Time wcet = ts[i].wcet();
    const auto& task_units = units[static_cast<std::size_t>(i)];
    for (std::size_t k = 0; k < task_units.size(); ++k) {
      if (task_units[k] != wcet) {
        fail(ViolationKind::kWrongAmount, -1, -1, i,
             "job k=" + std::to_string(k + 1) + " received " +
                 std::to_string(task_units[k]) + " units, requires " +
                 std::to_string(wcet));
      }
    }
  }
  return report;
}

}  // namespace mgrts::rt
