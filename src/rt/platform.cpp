#include "rt/platform.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <sstream>

#include "rt/task_set.hpp"
#include "support/assert.hpp"
#include "support/error.hpp"

namespace mgrts::rt {

Platform Platform::identical(std::int32_t m) {
  if (m < 1) throw ValidationError("platform needs at least one processor");
  Platform p;
  p.m_ = m;
  p.identical_ = true;
  return p;
}

Platform Platform::uniform(std::vector<Rate> speeds) {
  if (speeds.empty()) {
    throw ValidationError("platform needs at least one processor");
  }
  for (const Rate s : speeds) {
    if (s < 0) throw ValidationError("uniform speeds must be non-negative");
  }
  if (std::all_of(speeds.begin(), speeds.end(),
                  [](Rate s) { return s == 1; })) {
    return identical(static_cast<std::int32_t>(speeds.size()));
  }
  Platform p;
  p.m_ = static_cast<std::int32_t>(speeds.size());
  p.uniform_ = true;
  p.speeds_ = std::move(speeds);
  return p;
}

Platform Platform::heterogeneous(std::vector<std::vector<Rate>> rates) {
  if (rates.empty() || rates.front().empty()) {
    throw ValidationError("heterogeneous platform needs a non-empty matrix");
  }
  const std::size_t m = rates.front().size();
  for (const auto& row : rates) {
    if (row.size() != m) {
      throw ValidationError("rate matrix rows must have equal length");
    }
    for (const Rate s : row) {
      if (s < 0) throw ValidationError("rates must be non-negative");
    }
  }
  Platform p;
  p.m_ = static_cast<std::int32_t>(m);
  p.rates_ = std::move(rates);
  return p;
}

Rate Platform::rate(TaskId i, ProcId j) const {
  MGRTS_EXPECTS(j >= 0 && j < m_);
  if (identical_) return 1;
  if (uniform_) return speeds_[static_cast<std::size_t>(j)];
  MGRTS_EXPECTS(i >= 0 && i < static_cast<TaskId>(rates_.size()));
  return rates_[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
}

double Platform::quality(ProcId j, const TaskSet& ts) const {
  double q = 0;
  for (TaskId i = 0; i < ts.size(); ++i) {
    q += static_cast<double>(rate(i, j)) *
         static_cast<double>(ts[i].wcet()) /
         static_cast<double>(ts[i].period());
  }
  return q;
}

std::vector<ProcId> Platform::processors_by_quality(const TaskSet& ts) const {
  std::vector<ProcId> order(static_cast<std::size_t>(m_));
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> q(static_cast<std::size_t>(m_));
  for (ProcId j = 0; j < m_; ++j) {
    q[static_cast<std::size_t>(j)] = quality(j, ts);
  }
  std::stable_sort(order.begin(), order.end(), [&](ProcId a, ProcId b) {
    const double qa = q[static_cast<std::size_t>(a)];
    const double qb = q[static_cast<std::size_t>(b)];
    if (qa != qb) return qa < qb;
    return a < b;
  });
  return order;
}

std::vector<std::vector<ProcId>> Platform::identical_groups(
    std::int32_t task_count) const {
  // Key each processor by its full rate column; identical columns may be
  // permuted freely (rule 13).
  std::map<std::vector<Rate>, std::vector<ProcId>> buckets;
  for (ProcId j = 0; j < m_; ++j) {
    std::vector<Rate> column;
    column.reserve(static_cast<std::size_t>(task_count));
    for (TaskId i = 0; i < task_count; ++i) column.push_back(rate(i, j));
    buckets[std::move(column)].push_back(j);
  }
  std::vector<std::vector<ProcId>> groups;
  groups.reserve(buckets.size());
  for (auto& [column, procs] : buckets) groups.push_back(std::move(procs));
  // Deterministic order: by smallest member id.
  std::sort(groups.begin(), groups.end(),
            [](const auto& a, const auto& b) { return a.front() < b.front(); });
  return groups;
}

std::vector<std::int32_t> Platform::group_of(std::int32_t task_count) const {
  std::vector<std::int32_t> ids(static_cast<std::size_t>(m_), 0);
  const auto groups = identical_groups(task_count);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (const ProcId j : groups[g]) {
      ids[static_cast<std::size_t>(j)] = static_cast<std::int32_t>(g);
    }
  }
  return ids;
}

std::string Platform::describe() const {
  std::ostringstream os;
  if (identical_) {
    os << m_ << " identical processors";
  } else if (uniform_) {
    os << m_ << " uniform processors, speeds [";
    for (std::size_t j = 0; j < speeds_.size(); ++j) {
      os << (j ? ", " : "") << speeds_[j];
    }
    os << "]";
  } else {
    os << m_ << " heterogeneous processors (" << rates_.size()
       << "-task rate matrix)";
  }
  return os.str();
}

}  // namespace mgrts::rt
