#include "rt/gantt.hpp"

#include <algorithm>
#include <sstream>

#include "rt/jobs.hpp"

namespace mgrts::rt {

namespace {

// Time ruler with a tick label every 5 slots: "0    5    10 ...".
std::string ruler(Time T, std::size_t label_width) {
  std::string line(label_width, ' ');
  std::string marks;
  for (Time t = 0; t < T; ++t) {
    if (t % 5 == 0) {
      const std::string label = std::to_string(t);
      marks += label;
      // Skip slots covered by the label, minus the one we are on.
      Time skip = static_cast<Time>(label.size()) - 1;
      t += skip;
    } else {
      marks += ' ';
    }
  }
  return line + marks;
}

char task_glyph(TaskId i, std::int32_t n) {
  if (n <= 9) return static_cast<char>('1' + i);
  // Tasks 1..9 then a..z then '#'.
  if (i < 9) return static_cast<char>('1' + i);
  if (i < 9 + 26) return static_cast<char>('a' + (i - 9));
  return '#';
}

}  // namespace

std::string render_windows(const TaskSet& ts) {
  const Time T = ts.hyperperiod();
  const WindowIndex windows(ts);

  std::size_t label_width = 0;
  for (const auto& task : ts.tasks()) {
    label_width = std::max(label_width, task.name.size());
  }
  label_width += 2;  // "name: "

  std::ostringstream os;
  os << "availability windows over one hyperperiod T=" << T << "\n";
  os << ruler(T, label_width) << '\n';
  for (TaskId i = 0; i < ts.size(); ++i) {
    std::string row = ts[i].name + ": ";
    row.resize(label_width, ' ');
    for (Time t = 0; t < T; ++t) {
      row += windows.in_window(i, t) ? '#' : '.';
    }
    const auto& p = ts[i].params;
    os << row << "   (O=" << p.offset << " C=" << p.wcet << " D=" << p.deadline
       << " T=" << p.period << ")\n";
  }
  return os.str();
}

std::string render_schedule(const TaskSet& ts, const Schedule& schedule) {
  const Time T = schedule.hyperperiod();
  const std::int32_t m = schedule.processors();
  const std::size_t label_width = 4 + std::to_string(m).size();

  std::ostringstream os;
  os << ruler(T, label_width) << '\n';
  for (ProcId j = 0; j < m; ++j) {
    std::string row = "P" + std::to_string(j + 1) + ": ";
    row.resize(label_width, ' ');
    for (Time t = 0; t < T; ++t) {
      const TaskId i = schedule.at(t, j);
      row += i == kIdle ? '.' : task_glyph(i, ts.size());
    }
    os << row << '\n';
  }
  if (ts.size() > 9) {
    os << "legend: 1-9 = tau1..tau9, a-z = tau10..tau35, # = higher\n";
  }
  return os.str();
}

}  // namespace mgrts::rt
