#include "rt/dispatcher.hpp"

#include <unordered_map>

#include "support/assert.hpp"

namespace mgrts::rt {

namespace {

struct JobRt {
  Time actual = 0;
  Time service = 0;
  Time completed_at = -1;
};

}  // namespace

DispatchTrace dispatch_table(const TaskSet& ts, const Platform& platform,
                             const Schedule& schedule,
                             const ActualDemand& actual,
                             std::int64_t hyperperiods) {
  MGRTS_EXPECTS(hyperperiods >= 1);
  MGRTS_EXPECTS(schedule.hyperperiod() == ts.hyperperiod());
  MGRTS_EXPECTS(schedule.processors() == platform.processors());

  const Time T = ts.hyperperiod();
  const std::int32_t m = platform.processors();
  const Time horizon = T * hyperperiods;

  // Live state per (task, absolute job index).
  std::vector<std::unordered_map<std::int64_t, JobRt>> live(
      static_cast<std::size_t>(ts.size()));

  DispatchTrace trace;

  auto job_state = [&](TaskId i, std::int64_t k) -> JobRt& {
    auto& per_task = live[static_cast<std::size_t>(i)];
    auto it = per_task.find(k);
    if (it == per_task.end()) {
      JobRt fresh;
      fresh.actual = actual(i, k);
      MGRTS_EXPECTS(fresh.actual >= 0 && fresh.actual <= ts[i].wcet());
      it = per_task.emplace(k, fresh).first;
    }
    return it->second;
  };

  for (Time t = 0; t < horizon; ++t) {
    for (ProcId j = 0; j < m; ++j) {
      const TaskId i = schedule.at(t % T, j);
      if (i == kIdle) continue;
      const Task& task = ts[i];
      const Time u = t - task.offset();
      if (u < 0) {
        // Phantom slot: the wrapped table cell belongs to a job released
        // before time 0, which does not exist in the first period.
        ++trace.idle_injected;
        continue;
      }
      const std::int64_t k = u / task.period();
      const Time depth = u % task.period();
      MGRTS_ASSERT(depth < task.deadline());  // table was validated
      JobRt& job = job_state(i, k);
      if (job.service >= job.actual) {
        // Early completion: honor the anomaly-avoidance rule and idle.
        ++trace.idle_injected;
        continue;
      }
      job.service += platform.rate(i, j);
      if (job.service >= job.actual && job.completed_at < 0) {
        job.completed_at = t + 1;  // work completes at the end of the slot
      }
    }

    // Retire jobs whose deadline elapsed at the end of slot t.
    for (TaskId i = 0; i < ts.size(); ++i) {
      const Task& task = ts[i];
      auto& per_task = live[static_cast<std::size_t>(i)];
      for (auto it = per_task.begin(); it != per_task.end();) {
        const Time release = task.offset() + it->first * task.period();
        const Time dl = release + task.deadline();
        if (dl <= t + 1) {
          JobOutcome out;
          out.task = i;
          out.job = it->first;
          out.release = release;
          out.abs_deadline = dl;
          out.actual = it->second.actual;
          out.completed_at =
              it->second.actual == 0 ? release : it->second.completed_at;
          if (out.actual == 0 && out.completed_at < 0) out.completed_at = release;
          trace.all_met = trace.all_met && out.met();
          trace.jobs.push_back(out);
          it = per_task.erase(it);
        } else {
          ++it;
        }
      }
    }
  }
  return trace;
}

}  // namespace mgrts::rt
