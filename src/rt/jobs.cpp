#include "rt/jobs.hpp"

#include <string>

#include "support/assert.hpp"
#include "support/error.hpp"
#include "support/fault.hpp"

namespace mgrts::rt {

WindowIndex::WindowIndex(const TaskSet& ts) : hyperperiod_(ts.hyperperiod()) {
  tasks_.reserve(static_cast<std::size_t>(ts.size()));
  for (const auto& task : ts.tasks()) {
    tasks_.push_back(Row{task.offset(), task.period(), task.deadline()});
  }
}

JobTable::JobTable(const TaskSet& ts, std::int64_t max_total_slots)
    : windows_(ts) {
  support::fault_point(support::FaultSite::kJobTable);
  const Time T = ts.hyperperiod();
  std::int64_t total_slots = 0;
  for (TaskId i = 0; i < ts.size(); ++i) {
    const auto slots =
        support::checked_mul(ts.jobs_per_hyperperiod(i), ts[i].deadline());
    const auto next =
        slots ? support::checked_add(total_slots, *slots) : slots;
    if (!next || *next > max_total_slots) {
      throw ResourceError(
          "JobTable: materializing windows needs more than " +
          std::to_string(max_total_slots) +
          " slot entries; use WindowIndex for instances this large");
    }
    total_slots = *next;
  }

  first_.reserve(static_cast<std::size_t>(ts.size()));
  jobs_.reserve(static_cast<std::size_t>(ts.total_jobs()));
  for (TaskId i = 0; i < ts.size(); ++i) {
    first_.push_back(static_cast<std::int64_t>(jobs_.size()));
    const Task& task = ts[i];
    const Time count = ts.jobs_per_hyperperiod(i);
    for (Time k = 0; k < count; ++k) {
      Job job;
      job.task = i;
      job.index = k;
      job.release = task.offset() + k * task.period();
      job.abs_deadline = job.release + task.deadline();
      job.wcet = task.wcet();
      job.slots.reserve(static_cast<std::size_t>(task.deadline()));
      for (Time d = 0; d < task.deadline(); ++d) {
        job.slots.push_back((job.release + d) % T);
      }
      jobs_.push_back(std::move(job));
    }
  }
}

std::int64_t JobTable::job_at(TaskId i, Time t) const {
  const auto h = windows_.hit(i, t);
  if (!h) return -1;
  return first_[static_cast<std::size_t>(i)] + h->job;
}

}  // namespace mgrts::rt
