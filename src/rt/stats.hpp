// Schedule metrics: the observable costs of *global* scheduling.
//
// The paper's model allows task- and job-level migration for free (§I);
// real platforms pay for every migration and preemption in cache misses
// and context switches.  This module measures what a produced table
// actually does — per-job slack, migrations (a job resuming on a different
// processor) and preemptions (a job pausing while its window continues) —
// so users can compare witnesses beyond mere feasibility (e.g. CSP2's
// canonical-ascending schedules vs. the flow oracle's).
#pragma once

#include <cstdint>
#include <vector>

#include "rt/schedule.hpp"
#include "rt/task_set.hpp"

namespace mgrts::rt {

struct JobStats {
  TaskId task = 0;
  std::int64_t job = 0;      ///< k within the hyperperiod
  Time completion = 0;       ///< slots after release until the last unit
  Time slack = 0;            ///< D_i - completion (>= 0 in a valid table)
  std::int32_t migrations = 0;
  std::int32_t preemptions = 0;
};

struct ScheduleStats {
  std::vector<JobStats> jobs;
  std::int64_t total_migrations = 0;
  std::int64_t total_preemptions = 0;
  Time min_slack = 0;
  double avg_slack = 0.0;
  /// Busy cells / (m * T).
  double platform_load = 0.0;

  /// Jobs of one task, in release order.
  [[nodiscard]] std::vector<JobStats> of_task(TaskId task) const;
};

/// Analyzes one hyperperiod of a *valid* schedule (run the validator
/// first; behaviour on invalid tables is unspecified but non-crashing).
[[nodiscard]] ScheduleStats analyze_schedule(const TaskSet& ts,
                                             const Schedule& schedule);

}  // namespace mgrts::rt
