#include "rt/task_set.hpp"

#include <algorithm>
#include <string>

#include "support/assert.hpp"
#include "support/error.hpp"

namespace mgrts::rt {

using support::Rational;

namespace {

void validate_task(const Task& task, std::size_t index, DeadlineModel model) {
  const auto& p = task.params;
  const std::string who = "task #" + std::to_string(index + 1) +
                          (task.name.empty() ? "" : " (" + task.name + ")");
  if (p.period < 1) {
    throw ValidationError(who + ": period must be >= 1, got " +
                          std::to_string(p.period));
  }
  if (p.wcet < 1) {
    throw ValidationError(who + ": WCET must be >= 1, got " +
                          std::to_string(p.wcet));
  }
  if (p.deadline < 1) {
    throw ValidationError(who + ": deadline must be >= 1, got " +
                          std::to_string(p.deadline));
  }
  // Note: C > D is permitted — on heterogeneous platforms a rate-s
  // processor completes s units per slot, so C units can fit into fewer
  // than C slots.  On identical platforms such a task simply renders the
  // system infeasible, which every solver detects.
  if (p.offset < 0 || p.offset >= p.period) {
    throw ValidationError(who + ": offset must satisfy 0 <= O < T, got O=" +
                          std::to_string(p.offset) +
                          " T=" + std::to_string(p.period));
  }
  if (model == DeadlineModel::kConstrained && p.deadline > p.period) {
    throw ValidationError(who + ": constrained-deadline model requires D <= T"
                          ", got D=" + std::to_string(p.deadline) +
                          " T=" + std::to_string(p.period));
  }
}

Time compute_hyperperiod(const std::vector<Task>& tasks) {
  Time lcm = 1;
  for (const auto& task : tasks) {
    const auto next = support::checked_lcm(lcm, task.period());
    if (!next) {
      throw OverflowError("hyperperiod lcm(T_1..T_n) overflows 64-bit range");
    }
    lcm = *next;
  }
  return lcm;
}

}  // namespace

TaskSet::TaskSet(std::vector<Task> tasks, DeadlineModel model)
    : tasks_(std::move(tasks)), model_(model) {
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (tasks_[i].name.empty()) {
      tasks_[i].name = "tau" + std::to_string(i + 1);
    }
    validate_task(tasks_[i], i, model_);
  }
  hyperperiod_ = compute_hyperperiod(tasks_);
  // The demand per hyperperiod must also be representable: it bounds the
  // flow-oracle capacities and CSP constraint constants.
  static_cast<void>(total_demand());
}

TaskSet TaskSet::from_params(std::initializer_list<TaskParams> params,
                             DeadlineModel model) {
  return from_params(std::vector<TaskParams>(params), model);
}

TaskSet TaskSet::from_params(const std::vector<TaskParams>& params,
                             DeadlineModel model) {
  std::vector<Task> tasks;
  tasks.reserve(params.size());
  for (const auto& p : params) tasks.push_back(Task{p, ""});
  return TaskSet(std::move(tasks), model);
}

Rational TaskSet::utilization() const {
  Rational u;
  for (const auto& task : tasks_) {
    u += Rational(task.wcet(), task.period());
  }
  return u;
}

double TaskSet::utilization_ratio(std::int32_t m) const {
  MGRTS_EXPECTS(m >= 1);
  return utilization().to_double() / static_cast<double>(m);
}

bool TaskSet::exceeds_capacity(std::int32_t m) const {
  MGRTS_EXPECTS(m >= 1);
  return utilization() > m;
}

std::int32_t TaskSet::min_processors_bound() const {
  const Rational u = utilization();
  const auto m = support::ceil_div(u.num(), u.den());
  return static_cast<std::int32_t>(std::max<Time>(1, m));
}

Time TaskSet::max_offset() const noexcept {
  Time o = 0;
  for (const auto& task : tasks_) o = std::max(o, task.offset());
  return o;
}

Time TaskSet::total_jobs() const {
  Time jobs = 0;
  for (std::int32_t i = 0; i < size(); ++i) {
    const auto next = support::checked_add(jobs, jobs_per_hyperperiod(i));
    if (!next) throw OverflowError("total job count overflows 64-bit range");
    jobs = *next;
  }
  return jobs;
}

Time TaskSet::total_demand() const {
  Time demand = 0;
  for (std::int32_t i = 0; i < size(); ++i) {
    const auto slot = support::checked_mul(jobs_per_hyperperiod(i),
                                           (*this)[i].wcet());
    const auto next = slot ? support::checked_add(demand, *slot) : slot;
    if (!next) throw OverflowError("total demand overflows 64-bit range");
    demand = *next;
  }
  return demand;
}

CloneExpansion TaskSet::expand_clones() const {
  CloneExpansion out;
  for (TaskId i = 0; i < size(); ++i) {
    const Task& task = (*this)[i];
    const auto k =
        static_cast<std::int32_t>(support::ceil_div(task.deadline(),
                                                    task.period()));
    MGRTS_ASSERT(k >= 1);
    const auto clone_period_checked =
        support::checked_mul(static_cast<Time>(k), task.period());
    if (!clone_period_checked) {
      throw OverflowError("clone period k_i * T_i overflows for " + task.name);
    }
    for (std::int32_t c = 0; c < k; ++c) {
      Task clone;
      clone.params.offset = task.offset() + static_cast<Time>(c) * task.period();
      clone.params.wcet = task.wcet();
      clone.params.deadline = task.deadline();
      clone.params.period = *clone_period_checked;
      clone.name = k == 1 ? task.name : task.name + "." + std::to_string(c + 1);
      out.tasks.push_back(std::move(clone));
      out.origin.push_back(CloneInfo{i, c});
    }
  }
  return out;
}

TaskSet TaskSet::to_constrained() const {
  auto expansion = expand_clones();
  return TaskSet(std::move(expansion.tasks), DeadlineModel::kConstrained);
}

}  // namespace mgrts::rt
