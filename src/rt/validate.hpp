// Independent schedule validator for the MGRTS conditions of §III-C:
//   C1  every unit of task i executes inside one of its availability windows
//   C2  a processor runs at most one task per slot (structural in Schedule)
//   C3  a task runs on at most one processor per slot
//   C4  each job receives exactly C_i units of work per window; on
//       heterogeneous platforms "units" are weighted by s_{i,j} (eq. 11/12)
//   plus: a task never runs on a processor with s_{i,j} = 0.
//
// The validator shares no code with any solver; it recomputes everything
// from the task set, so it acts as the referee for the Theorem 1/2
// equivalence tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rt/platform.hpp"
#include "rt/schedule.hpp"
#include "rt/task_set.hpp"

namespace mgrts::rt {

enum class ViolationKind {
  kShape,          ///< schedule dimensions do not match the instance
  kOutsideWindow,  ///< C1
  kParallelism,    ///< C3
  kWrongAmount,    ///< C4
  kZeroRateProc,   ///< task on a processor that cannot serve it
  kBadTaskId,      ///< cell holds an id outside {kIdle, 0..n-1}
};

[[nodiscard]] std::string_view to_string(ViolationKind kind);

struct Violation {
  ViolationKind kind;
  Time slot = -1;        ///< -1 when not slot-specific
  ProcId processor = -1; ///< -1 when not processor-specific
  TaskId task = -1;
  std::string detail;
};

struct ValidationReport {
  std::vector<Violation> violations;
  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
  [[nodiscard]] std::string to_string() const;
};

/// Validates one cyclic hyperperiod of `schedule` against the instance.
/// `ts` must be constrained-deadline (run arbitrary-deadline systems through
/// TaskSet::to_constrained first and validate the clone system; this is the
/// paper's §VI-B route).
[[nodiscard]] ValidationReport validate_schedule(const TaskSet& ts,
                                                 const Platform& platform,
                                                 const Schedule& schedule);

/// Shorthand for "is feasible witness".
[[nodiscard]] inline bool is_valid_schedule(const TaskSet& ts,
                                            const Platform& platform,
                                            const Schedule& schedule) {
  return validate_schedule(ts, platform, schedule).ok();
}

}  // namespace mgrts::rt
