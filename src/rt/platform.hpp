// Processor platform model of §II / §VI-A.
//
// Three platform classes, from least to most general:
//   * identical   — every processor has unit speed for every task;
//   * uniform     — processor j has speed s_j for every task;
//   * heterogeneous — an execution-rate s_{i,j} per (task, processor) pair;
//     s_{i,j} = 0 models a dedicated processor that cannot serve task i.
//
// Rates are non-negative integers (multiples of a base speed; pre-scale
// rationals).  A task running one slot on processor j completes s_{i,j}
// units of its C_i, per the paper's heterogeneous C4 (equations 11/12).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rt/task.hpp"

namespace mgrts::rt {

class TaskSet;

/// Integer execution rate (units of work completed per slot).
using Rate = std::int32_t;

class Platform {
 public:
  /// m identical unit-speed processors.
  static Platform identical(std::int32_t m);

  /// Uniform platform: processor j runs every task at rate `speeds[j]`.
  static Platform uniform(std::vector<Rate> speeds);

  /// Fully heterogeneous platform; rates[i][j] = s_{i,j} for task i on
  /// processor j.  All rows must have equal length m >= 1.
  static Platform heterogeneous(std::vector<std::vector<Rate>> rates);

  [[nodiscard]] std::int32_t processors() const noexcept { return m_; }

  /// True when every (task, processor) rate is 1 — the MGRTS-ID setting of
  /// sections III-V where the fast dedicated-solver paths apply.
  [[nodiscard]] bool is_identical() const noexcept { return identical_; }

  /// s_{i,j}; identical platforms report 1 for every pair.  Heterogeneous
  /// platforms require i < rate-matrix row count.
  [[nodiscard]] Rate rate(TaskId i, ProcId j) const;

  /// s_{i,j} > 0.
  [[nodiscard]] bool can_run(TaskId i, ProcId j) const {
    return rate(i, j) > 0;
  }

  /// Number of task rows the rate matrix was built for (0 for identical /
  /// uniform platforms, which work with any task count).
  [[nodiscard]] std::int32_t rate_rows() const noexcept {
    return uniform_ || identical_ ? 0
                                  : static_cast<std::int32_t>(rates_.size());
  }

  /// §VI-A processor quality Q(P_j) = sum_i s_{i,j} * C_i / T_i.
  [[nodiscard]] double quality(ProcId j, const TaskSet& ts) const;

  /// Processor ids ordered by ascending quality ("less capable processors
  /// first", §VI-A); quality ties broken by id for determinism.
  [[nodiscard]] std::vector<ProcId> processors_by_quality(
      const TaskSet& ts) const;

  /// Partition of processors into maximal groups with identical rate
  /// columns; the symmetry-breaking rule (13) applies within each group.
  /// Groups preserve the given processor order.
  [[nodiscard]] std::vector<std::vector<ProcId>> identical_groups(
      std::int32_t task_count) const;

  /// group id per processor (same partition as identical_groups).
  [[nodiscard]] std::vector<std::int32_t> group_of(
      std::int32_t task_count) const;

  [[nodiscard]] std::string describe() const;

 private:
  Platform() = default;

  std::int32_t m_ = 0;
  bool identical_ = false;
  bool uniform_ = false;
  std::vector<Rate> speeds_;                // uniform platforms
  std::vector<std::vector<Rate>> rates_;    // heterogeneous platforms
};

}  // namespace mgrts::rt
