#include "flow/dinic.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "support/assert.hpp"

namespace mgrts::flow {

Dinic::Dinic(NodeId nodes) : adj_(static_cast<std::size_t>(nodes)) {
  MGRTS_EXPECTS(nodes >= 2);
}

std::int32_t Dinic::add_edge(NodeId u, NodeId v, Capacity cap) {
  MGRTS_EXPECTS(u >= 0 && u < node_count() && v >= 0 && v < node_count());
  MGRTS_EXPECTS(cap >= 0);
  auto& fwd_list = adj_[static_cast<std::size_t>(u)];
  auto& rev_list = adj_[static_cast<std::size_t>(v)];
  const auto fwd_pos = static_cast<std::int32_t>(fwd_list.size());
  const auto rev_pos = static_cast<std::int32_t>(rev_list.size());
  fwd_list.push_back(Edge{v, cap, rev_pos});
  rev_list.push_back(Edge{u, 0, fwd_pos});
  edge_index_.emplace_back(u, fwd_pos);
  initial_cap_.push_back(cap);
  return static_cast<std::int32_t>(edge_index_.size()) - 1;
}

bool Dinic::bfs(NodeId source, NodeId sink) {
  level_.assign(adj_.size(), -1);
  std::queue<NodeId> queue;
  level_[static_cast<std::size_t>(source)] = 0;
  queue.push(source);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop();
    for (const Edge& e : adj_[static_cast<std::size_t>(u)]) {
      if (e.cap > 0 && level_[static_cast<std::size_t>(e.to)] < 0) {
        level_[static_cast<std::size_t>(e.to)] =
            level_[static_cast<std::size_t>(u)] + 1;
        queue.push(e.to);
      }
    }
  }
  return level_[static_cast<std::size_t>(sink)] >= 0;
}

Capacity Dinic::dfs(NodeId u, NodeId sink, Capacity pushed) {
  if (u == sink) return pushed;
  auto& it = iter_[static_cast<std::size_t>(u)];
  auto& edges = adj_[static_cast<std::size_t>(u)];
  for (; it < static_cast<std::int32_t>(edges.size()); ++it) {
    Edge& e = edges[static_cast<std::size_t>(it)];
    if (e.cap <= 0 ||
        level_[static_cast<std::size_t>(e.to)] !=
            level_[static_cast<std::size_t>(u)] + 1) {
      continue;
    }
    const Capacity got = dfs(e.to, sink, std::min(pushed, e.cap));
    if (got > 0) {
      e.cap -= got;
      adj_[static_cast<std::size_t>(e.to)][static_cast<std::size_t>(e.rev)]
          .cap += got;
      return got;
    }
  }
  return 0;
}

Capacity Dinic::max_flow(NodeId source, NodeId sink) {
  MGRTS_EXPECTS(source != sink);
  Capacity total = 0;
  while (bfs(source, sink)) {
    iter_.assign(adj_.size(), 0);
    for (;;) {
      const Capacity pushed =
          dfs(source, sink, std::numeric_limits<Capacity>::max());
      if (pushed == 0) break;
      total += pushed;
    }
  }
  return total;
}

Capacity Dinic::flow_on(std::int32_t id) const {
  MGRTS_EXPECTS(id >= 0 && id < static_cast<std::int32_t>(edge_index_.size()));
  const auto [u, pos] = edge_index_[static_cast<std::size_t>(id)];
  const Edge& e =
      adj_[static_cast<std::size_t>(u)][static_cast<std::size_t>(pos)];
  return initial_cap_[static_cast<std::size_t>(id)] - e.cap;
}

}  // namespace mgrts::flow
