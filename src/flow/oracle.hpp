// Exact polynomial feasibility oracle for identical platforms.
//
// Construction (classic preemptive-scheduling reduction):
//   source --C_i--> job(i,k) --1--> slot(t in window)  --m--> sink
// A feasible cyclic schedule exists iff max-flow equals the total demand
// sum_i C_i * T/T_i:
//   * job->slot capacity 1 encodes C3 (a task on at most one processor per
//     slot; distinct jobs of one task never share a slot because constrained
//     deadline windows are disjoint modulo T);
//   * slot->sink capacity m encodes C2 (at most m busy processors);
//   * saturation of the source edges encodes C1 + C4.
// Converting a flow into an actual processor assignment is trivial: at most
// m tasks occupy any slot, so hand them processors in ascending task order
// (the same canonical representative the CSP2 symmetry rule picks).
//
// The oracle is the ground truth for solver tests and doubles as the
// fastest feasibility decision procedure for identical platforms; it does
// NOT extend to heterogeneous rates (the per-pair rates make the problem an
// unrelated-machines one, which the flow model cannot capture).
#pragma once

#include <optional>

#include "rt/platform.hpp"
#include "rt/schedule.hpp"
#include "rt/task_set.hpp"

namespace mgrts::flow {

enum class OracleVerdict {
  kFeasible,
  kInfeasible,
};

struct OracleResult {
  OracleVerdict verdict = OracleVerdict::kInfeasible;
  /// Present iff feasible: a witness schedule (already canonical in the
  /// ascending-task-order sense).
  std::optional<rt::Schedule> schedule;
  /// Max-flow value vs. required demand, for diagnostics.
  std::int64_t flow = 0;
  std::int64_t demand = 0;
};

/// Decides feasibility of `ts` (constrained deadlines) on m identical
/// processors.  Throws ValidationError for non-identical platforms or
/// non-constrained task sets, ResourceError when the job table would
/// exceed the memory budget.
[[nodiscard]] OracleResult decide_feasibility(const rt::TaskSet& ts,
                                              const rt::Platform& platform);

/// Convenience wrapper returning just the boolean verdict.
[[nodiscard]] inline bool is_feasible(const rt::TaskSet& ts,
                                      const rt::Platform& platform) {
  return decide_feasibility(ts, platform).verdict == OracleVerdict::kFeasible;
}

}  // namespace mgrts::flow
