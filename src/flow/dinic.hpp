// Dinic's maximum-flow algorithm on integer capacities.
//
// Used by the feasibility oracle (flow/oracle.hpp): preemptive scheduling of
// jobs with release times and deadlines on m identical processors reduces to
// a bipartite transportation problem, so max-flow decides MGRTS-ID
// feasibility in polynomial time.  This gives the test suite an exact,
// solver-independent ground truth.
#pragma once

#include <cstdint>
#include <vector>

namespace mgrts::flow {

using NodeId = std::int32_t;
using Capacity = std::int64_t;

class Dinic {
 public:
  explicit Dinic(NodeId nodes);

  /// Adds a directed edge u -> v with capacity `cap` (and an implicit
  /// residual reverse edge).  Returns the edge id for later flow queries.
  std::int32_t add_edge(NodeId u, NodeId v, Capacity cap);

  /// Runs the algorithm; callable once per instance.
  Capacity max_flow(NodeId source, NodeId sink);

  /// Flow pushed through edge `id` (as returned by add_edge).
  [[nodiscard]] Capacity flow_on(std::int32_t id) const;

  [[nodiscard]] NodeId node_count() const noexcept {
    return static_cast<NodeId>(adj_.size());
  }

 private:
  struct Edge {
    NodeId to;
    Capacity cap;       // remaining capacity
    std::int32_t rev;   // index of the reverse edge in adj_[to]
  };

  bool bfs(NodeId source, NodeId sink);
  Capacity dfs(NodeId u, NodeId sink, Capacity pushed);

  std::vector<std::vector<Edge>> adj_;
  std::vector<std::pair<NodeId, std::int32_t>> edge_index_;  // id -> (u, pos)
  std::vector<Capacity> initial_cap_;
  std::vector<std::int32_t> level_;
  std::vector<std::int32_t> iter_;
};

}  // namespace mgrts::flow
