#include "flow/oracle.hpp"

#include <algorithm>
#include <vector>

#include "flow/dinic.hpp"
#include "rt/jobs.hpp"
#include "support/assert.hpp"
#include "support/error.hpp"
#include "support/fault.hpp"

namespace mgrts::flow {

using rt::ProcId;
using rt::Schedule;
using rt::TaskId;
using rt::Time;

OracleResult decide_feasibility(const rt::TaskSet& ts,
                                const rt::Platform& platform) {
  if (!platform.is_identical()) {
    throw ValidationError(
        "flow oracle supports identical platforms only (see oracle.hpp)");
  }
  if (!ts.is_constrained()) {
    throw ValidationError(
        "flow oracle expects a constrained-deadline system; expand clones "
        "first");
  }

  const Time T = ts.hyperperiod();
  const std::int32_t m = platform.processors();
  const rt::JobTable jobs(ts);

  // Node layout: 0 = source, 1..J = jobs, J+1..J+T = slots, last = sink.
  const auto job_count = static_cast<std::int64_t>(jobs.size());
  const std::int64_t node_count = 2 + job_count + T;
  support::fault_point(support::FaultSite::kFlowNetwork);
  if (node_count > (std::int64_t{1} << 30)) {
    throw ResourceError("flow network too large");
  }
  const auto source = NodeId{0};
  const auto sink = static_cast<NodeId>(node_count - 1);
  auto job_node = [&](std::int64_t idx) {
    return static_cast<NodeId>(1 + idx);
  };
  auto slot_node = [&](Time t) {
    return static_cast<NodeId>(1 + job_count + t);
  };

  Dinic net(static_cast<NodeId>(node_count));

  std::int64_t demand = 0;
  std::vector<std::int32_t> source_edge(jobs.size());
  // job -> slot edge ids, parallel to each job's slot list.
  std::vector<std::vector<std::int32_t>> slot_edges(jobs.size());
  for (std::size_t idx = 0; idx < jobs.size(); ++idx) {
    const rt::Job& job = jobs.jobs()[idx];
    demand += job.wcet;
    source_edge[idx] = net.add_edge(source, job_node(
        static_cast<std::int64_t>(idx)), job.wcet);
    slot_edges[idx].reserve(job.slots.size());
    for (const Time t : job.slots) {
      slot_edges[idx].push_back(
          net.add_edge(job_node(static_cast<std::int64_t>(idx)),
                       slot_node(t), 1));
    }
  }
  for (Time t = 0; t < T; ++t) {
    net.add_edge(slot_node(t), sink, m);
  }

  OracleResult result;
  result.demand = demand;
  result.flow = net.max_flow(source, sink);
  MGRTS_ASSERT(result.flow <= demand);
  if (result.flow != demand) {
    result.verdict = OracleVerdict::kInfeasible;
    return result;
  }

  result.verdict = OracleVerdict::kFeasible;

  // Extract the witness: collect the tasks pushing flow through each slot,
  // then assign processors in ascending task order.
  std::vector<std::vector<TaskId>> slot_tasks(static_cast<std::size_t>(T));
  for (std::size_t idx = 0; idx < jobs.size(); ++idx) {
    const rt::Job& job = jobs.jobs()[idx];
    for (std::size_t p = 0; p < job.slots.size(); ++p) {
      if (net.flow_on(slot_edges[idx][p]) > 0) {
        slot_tasks[static_cast<std::size_t>(job.slots[p])].push_back(job.task);
      }
    }
  }
  Schedule schedule(T, m);
  for (Time t = 0; t < T; ++t) {
    auto& tasks = slot_tasks[static_cast<std::size_t>(t)];
    MGRTS_ASSERT(static_cast<std::int32_t>(tasks.size()) <= m);
    std::sort(tasks.begin(), tasks.end());
    for (std::size_t j = 0; j < tasks.size(); ++j) {
      schedule.set(t, static_cast<ProcId>(j), tasks[j]);
    }
  }
  result.schedule = std::move(schedule);
  return result;
}

}  // namespace mgrts::flow
