#include "serve/service.hpp"

#include <algorithm>
#include <exception>

#include "core/canonical.hpp"
#include "core/instance_io.hpp"
#include "support/error.hpp"

namespace mgrts::serve {

namespace {

std::int64_t clamp_int(std::int64_t value, std::int64_t lo, std::int64_t hi) {
  return std::max(lo, std::min(value, hi));
}

}  // namespace

std::optional<core::Method> method_from_string(const std::string& text) {
  for (const core::Method method :
       {core::Method::kCsp1Generic, core::Method::kCsp2Generic,
        core::Method::kCsp2Dedicated, core::Method::kFlowOracle,
        core::Method::kEdfSimulation, core::Method::kLocalSearch,
        core::Method::kPortfolio}) {
    if (text == core::to_string(method)) return method;
  }
  return std::nullopt;
}

Service::Service(ServiceOptions options)
    : options_(options), cache_(options.cache) {
  latency_ring_.reserve(std::max<std::size_t>(options_.latency_window, 1));
}

std::string Service::handle(const std::string& payload,
                            const RequestContext& context) {
  support::Stopwatch watch;
  Message response;
  try {
    const Message request = parse_message(payload);
    response = handle_message(request, context);
  } catch (const ProtocolError& e) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++counters_.requests;
      ++counters_.protocol_errors;
      if (counters_.first_error.empty()) counters_.first_error = e.what();
    }
    response = make_error("protocol", e.what());
  } catch (const std::exception& e) {
    // parse_message only throws ProtocolError; this arm is pure insurance —
    // the funnel's promise is that NOTHING escapes as an exception.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++counters_.requests;
      ++counters_.internal_errors;
      if (counters_.first_error.empty()) counters_.first_error = e.what();
    }
    response = make_error("internal", e.what());
  }
  note_latency(watch.micros());
  return format_message(response);
}

Message Service::handle_message(const Message& request,
                                const RequestContext& context) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.requests;
  }
  try {
    if (request.kind == "solve") return handle_solve(request, context);
    if (request.kind == "ping") {
      Message pong;
      pong.kind = "pong";
      if (const auto id = request.get("id")) pong.set("id", *id);
      return pong;
    }
    if (request.kind == "health") {
      const ServiceCounters c = counters();
      const CacheStats cs = cache_.stats();
      const LatencyStats lat = latency();
      Message health;
      health.kind = "health";
      health.set("requests", c.requests);
      health.set("solved", c.solved);
      health.set("decided", c.decided);
      health.set("degraded", c.degraded);
      health.set("retried", c.retried);
      health.set("recovered", c.recovered);
      health.set("quarantined", c.quarantined);
      health.set("parse-errors", c.parse_errors);
      health.set("validation-errors", c.validation_errors);
      health.set("protocol-errors", c.protocol_errors);
      health.set("internal-errors", c.internal_errors);
      health.set("cache-hits", c.cache_hits);
      health.set("cache-misses", cs.misses);
      health.set("cache-inserts", cs.inserts);
      health.set("cache-evictions", cs.evictions);
      health.set("cache-size", static_cast<std::int64_t>(cache_.size()));
      health.set("latency-p50-us", lat.p50_us);
      health.set("latency-p99-us", lat.p99_us);
      health.set("latency-samples", lat.samples);
      health.body = c.first_error;
      return health;
    }
    if (request.kind == "shutdown") {
      shutdown_.store(true, std::memory_order_relaxed);
      Message bye;
      bye.kind = "bye";
      return bye;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++counters_.protocol_errors;
    }
    return make_error("protocol",
                      "unknown request kind '" + request.kind + "'");
  } catch (const ProtocolError& e) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.protocol_errors;
    if (counters_.first_error.empty()) counters_.first_error = e.what();
    return make_error("protocol", e.what());
  } catch (const ParseError& e) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.parse_errors;
    if (counters_.first_error.empty()) counters_.first_error = e.what();
    return make_error("parse", e.what());
  } catch (const ValidationError& e) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.validation_errors;
    if (counters_.first_error.empty()) counters_.first_error = e.what();
    return make_error("validation", e.what());
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.internal_errors;
    if (counters_.first_error.empty()) counters_.first_error = e.what();
    return make_error("internal", e.what());
  } catch (...) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.internal_errors;
    if (counters_.first_error.empty()) {
      counters_.first_error = "non-exception throw in request handler";
    }
    return make_error("internal", "non-exception throw in request handler");
  }
}

Message Service::handle_solve(const Message& request,
                              const RequestContext& context) {
  // Hostile instance text degrades here: read_instance_string throws
  // ParseError/ValidationError, which handle_message converts into tagged
  // "error" responses.
  const core::InstanceFile instance = core::read_instance_string(request.body);

  core::SolveConfig config;
  config.method = options_.method;
  if (const auto method_text = request.get("method")) {
    const auto method = method_from_string(*method_text);
    if (!method.has_value()) {
      throw ProtocolError("unknown method '" + *method_text + "'");
    }
    config.method = *method;
  }
  const std::int64_t requested_ms =
      request.get_int("timeout-ms").value_or(options_.default_timeout_ms);
  config.time_limit_ms = clamp_int(requested_ms, 0, options_.max_timeout_ms);
  if (const auto max_nodes = request.get_int("max-nodes")) {
    config.max_nodes = clamp_int(*max_nodes, 0, 1'000'000'000);
  }
  if (const auto seed = request.get_int("seed")) {
    config.generic.seed = static_cast<std::uint64_t>(*seed);
    config.localsearch.seed = static_cast<std::uint64_t>(*seed);
  }
  config.cancel = context.cancel;
  config.heartbeat = context.heartbeat;

  const bool use_cache =
      options_.cache.capacity > 0 && request.get("no-cache") == std::nullopt;
  std::string key;
  if (use_cache) {
    key = core::canonical_key(instance.tasks, instance.platform,
                              options_.canonical);
    if (const auto cached = cache_.lookup(key)) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.solved;
        ++counters_.decided;
        ++counters_.cache_hits;
      }
      Message ok;
      ok.kind = "ok";
      if (const auto id = request.get("id")) ok.set("id", *id);
      ok.set("verdict", core::to_string(cached->verdict));
      ok.set("complete", cached->complete ? 1 : 0);
      ok.set("cause", core::to_string(core::FailureCause::kNone));
      ok.set("decided-by", "cache:" + cached->decided_by);
      ok.set("cache", "hit");
      ok.set("cache-entry-hits", cached->hits + 1);
      return ok;
    }
  }

  core::BatchPolicy policy;
  policy.workers = 1;  // the server fans out across requests, not within one
  std::int64_t attempts = options_.default_attempts;
  if (const auto retries = request.get_int("retries")) attempts = *retries + 1;
  policy.max_attempts = static_cast<std::int32_t>(
      clamp_int(attempts, 1, options_.max_attempts_cap));

  core::BatchHealth health;
  const std::vector<core::SolveReport> reports = core::solve_batch(
      {core::BatchJob{instance.tasks, instance.platform, config}}, policy,
      &health);
  const core::SolveReport& report = reports.front();

  const bool crash_cause = report.cause == core::FailureCause::kMemory ||
                           report.cause == core::FailureCause::kInternalError ||
                           report.cause == core::FailureCause::kFaultInjected;
  const bool decisive = core::decisive(report.verdict, report.complete);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.solved;
    if (decisive) ++counters_.decided;
    if (crash_cause) ++counters_.degraded;
    counters_.retried += health.retries;
    counters_.recovered += health.recovered;
    counters_.quarantined += health.quarantined;
    if (counters_.first_error.empty() && !health.first_error.empty()) {
      counters_.first_error = health.first_error;
    }
  }
  if (use_cache && decisive) {
    cache_.insert(key, report.verdict, report.complete, report.decided_by);
  }

  Message ok;
  ok.kind = "ok";
  if (const auto id = request.get("id")) ok.set("id", *id);
  ok.set("verdict", core::to_string(report.verdict));
  ok.set("complete", report.complete ? 1 : 0);
  ok.set("cause", core::to_string(report.cause));
  ok.set("decided-by", report.decided_by);
  ok.set("cache", use_cache ? "miss" : "bypass");
  ok.set("nodes", report.nodes);
  ok.set("micros", static_cast<std::int64_t>(report.seconds * 1e6));
  if (health.retries > 0) ok.set("retries-used", health.retries);
  if (health.quarantined > 0) ok.set("quarantined", std::int64_t{1});
  ok.body = report.detail;
  return ok;
}

Message Service::make_error(const std::string& error_kind,
                            const std::string& detail) {
  Message error;
  error.kind = "error";
  error.set("error-kind", error_kind);
  error.set("verdict", core::to_string(core::Verdict::kUnknown));
  // A bad request is the client's failure, not the solver's — only a
  // contained handler exception is tagged kInternalError.
  error.set("cause",
            core::to_string(error_kind == "internal"
                                ? core::FailureCause::kInternalError
                                : core::FailureCause::kNone));
  error.body = detail;
  return error;
}

ServiceCounters Service::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

void Service::note_latency(std::int64_t micros) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t window = std::max<std::size_t>(options_.latency_window, 1);
  if (latency_ring_.size() < window) {
    latency_ring_.push_back(micros);
  } else {
    latency_ring_[latency_next_ % window] = micros;
  }
  ++latency_next_;
  ++latency_total_;
}

LatencyStats Service::latency() const {
  std::vector<std::int64_t> sample;
  std::int64_t total = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    sample = latency_ring_;
    total = latency_total_;
  }
  LatencyStats stats;
  stats.samples = total;
  if (sample.empty()) return stats;
  std::sort(sample.begin(), sample.end());
  const auto at = [&](double q) {
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(sample.size() - 1) + 0.5);
    return sample[std::min(idx, sample.size() - 1)];
  };
  stats.p50_us = at(0.50);
  stats.p99_us = at(0.99);
  return stats;
}

}  // namespace mgrts::serve
