#include "serve/cache.hpp"

#include <utility>

namespace mgrts::serve {

VerdictCache::VerdictCache(CacheOptions options) : options_(options) {}

std::optional<CachedVerdict> VerdictCache::lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  CachedVerdict value = it->second->value;  // hits BEFORE this lookup
  ++it->second->value.hits;
  lru_.splice(lru_.begin(), lru_, it->second);
  return value;
}

void VerdictCache::insert(const std::string& key, core::Verdict verdict,
                          bool complete, const std::string& decided_by) {
  if (!core::decisive(verdict, complete)) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.rejected;
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (options_.capacity == 0) return;
  if (index_.count(key) > 0) return;  // first decisive writer wins
  lru_.push_front(Entry{key, CachedVerdict{verdict, complete, decided_by, 0}});
  index_.emplace(key, lru_.begin());
  ++stats_.inserts;
  while (lru_.size() > options_.capacity) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

CacheStats VerdictCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t VerdictCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

}  // namespace mgrts::serve
