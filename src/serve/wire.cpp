#include "serve/wire.hpp"

#include <algorithm>
#include <array>
#include <cstring>

namespace mgrts::serve {

std::optional<std::string> Message::get(const std::string& key) const {
  for (const auto& [k, v] : headers) {
    if (k == key) return v;
  }
  return std::nullopt;
}

std::optional<std::int64_t> Message::get_int(const std::string& key) const {
  const auto text = get(key);
  if (!text.has_value()) return std::nullopt;
  try {
    std::size_t used = 0;
    const std::int64_t value = std::stoll(*text, &used);
    if (used != text->size()) throw std::invalid_argument("trailing");
    return value;
  } catch (const std::exception&) {
    throw ProtocolError("header '" + key + "' is not an integer: '" + *text +
                        "'");
  }
}

std::string format_message(const Message& message) {
  std::string out;
  out.reserve(64 + message.body.size());
  out += kProtoTag;
  out += ' ';
  out += message.kind;
  out += '\n';
  for (const auto& [key, value] : message.headers) {
    out += key;
    out += ' ';
    out += value;
    out += '\n';
  }
  out += '\n';
  out += message.body;
  return out;
}

Message parse_message(const std::string& payload) {
  Message message;
  std::size_t pos = 0;
  const auto next_line = [&]() -> std::optional<std::string> {
    if (pos >= payload.size()) return std::nullopt;
    const std::size_t eol = payload.find('\n', pos);
    if (eol == std::string::npos) {
      throw ProtocolError("unterminated header line");
    }
    std::string line = payload.substr(pos, eol - pos);
    pos = eol + 1;
    return line;
  };

  const auto tag_line = next_line();
  if (!tag_line.has_value()) throw ProtocolError("empty payload");
  const std::size_t space = tag_line->find(' ');
  if (space == std::string::npos ||
      tag_line->substr(0, space) != kProtoTag) {
    throw ProtocolError("bad protocol tag: '" + *tag_line + "'");
  }
  message.kind = tag_line->substr(space + 1);
  if (message.kind.empty()) throw ProtocolError("missing message kind");

  for (;;) {
    const auto line = next_line();
    if (!line.has_value()) {
      throw ProtocolError("headers not terminated by a blank line");
    }
    if (line->empty()) break;  // blank separator: body follows
    const std::size_t split = line->find(' ');
    if (split == std::string::npos || split == 0) {
      throw ProtocolError("malformed header line: '" + *line + "'");
    }
    message.set(line->substr(0, split), line->substr(split + 1));
  }
  message.body = payload.substr(pos);
  return message;
}

void send_frame(const support::Fd& fd, const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) {
    throw ProtocolError("frame payload too large: " +
                        std::to_string(payload.size()) + " bytes");
  }
  const auto size = static_cast<std::uint32_t>(payload.size());
  const std::array<unsigned char, 4> prefix = {
      static_cast<unsigned char>(size >> 24),
      static_cast<unsigned char>(size >> 16),
      static_cast<unsigned char>(size >> 8),
      static_cast<unsigned char>(size),
  };
  support::write_all(fd, prefix.data(), prefix.size());
  if (!payload.empty()) {
    support::write_all(fd, payload.data(), payload.size());
  }
}

bool recv_frame(const support::Fd& fd, std::string& payload,
                std::int64_t timeout_ms) {
  std::array<unsigned char, 4> prefix{};
  if (!support::read_exact(fd, prefix.data(), prefix.size(), timeout_ms)) {
    return false;
  }
  const std::uint32_t size = (std::uint32_t{prefix[0]} << 24) |
                             (std::uint32_t{prefix[1]} << 16) |
                             (std::uint32_t{prefix[2]} << 8) |
                             std::uint32_t{prefix[3]};
  // Bound BEFORE sizing any buffer: a hostile length must cost nothing.
  if (size > kMaxFrameBytes) {
    throw ProtocolError("announced frame length " + std::to_string(size) +
                        " exceeds the " + std::to_string(kMaxFrameBytes) +
                        "-byte cap");
  }
  payload.resize(size);
  if (size == 0) return true;
  // The length prefix is a promise the body follows promptly.  Bound the
  // body read even for callers with no timeout of their own, and report
  // any shortfall — EOF right after the prefix, a reset mid-body, or a
  // dribbling/stalled peer — as a protocol violation naming the declared
  // length, never as an indefinite block.
  const std::int64_t body_timeout_ms =
      timeout_ms < 0 ? kIntraFrameTimeoutMs
                     : std::min(timeout_ms, kIntraFrameTimeoutMs);
  try {
    if (!support::read_exact(fd, payload.data(), size, body_timeout_ms)) {
      throw ProtocolError("truncated frame: declared " +
                          std::to_string(size) +
                          " payload bytes, peer closed before any arrived");
    }
  } catch (const support::SocketError& e) {
    throw ProtocolError("truncated frame: declared " + std::to_string(size) +
                        " payload bytes, peer delivered fewer (" + e.what() +
                        ")");
  }
  return true;
}

std::optional<core::Verdict> verdict_from_string(const std::string& text) {
  for (const core::Verdict verdict :
       {core::Verdict::kFeasible, core::Verdict::kInfeasible,
        core::Verdict::kTimeout, core::Verdict::kNodeLimit,
        core::Verdict::kMemoryLimit, core::Verdict::kUnknown}) {
    if (text == core::to_string(verdict)) return verdict;
  }
  return std::nullopt;
}

std::optional<core::FailureCause> cause_from_string(const std::string& text) {
  for (const core::FailureCause cause :
       {core::FailureCause::kNone, core::FailureCause::kDeadline,
        core::FailureCause::kCancelled, core::FailureCause::kMemory,
        core::FailureCause::kNodeBudget, core::FailureCause::kInternalError,
        core::FailureCause::kFaultInjected}) {
    if (text == core::to_string(cause)) return cause;
  }
  return std::nullopt;
}

}  // namespace mgrts::serve
