#include "serve/shard.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace mgrts::serve {

namespace {

// ------------------------------------------------------- header helpers
//
// Strict never-guess parsing, like client.cpp's response parser: a header
// that is absent or unparsable is a ProtocolError naming the key, never a
// default silently filled in.

std::string require(const Message& message, const std::string& key) {
  const auto value = message.get(key);
  if (!value.has_value()) {
    throw ProtocolError("missing header '" + key + "' on '" + message.kind +
                        "'");
  }
  return *value;
}

std::int64_t require_int(const Message& message, const std::string& key) {
  require(message, key);          // presence, with the right error text
  return *message.get_int(key);   // format errors from get_int
}

std::uint64_t require_u64(const Message& message, const std::string& key) {
  const std::string text = require(message, key);
  try {
    std::size_t used = 0;
    const std::uint64_t value = std::stoull(text, &used);
    if (used != text.size()) throw std::invalid_argument("trailing");
    return value;
  } catch (const std::exception&) {
    throw ProtocolError("header '" + key +
                        "' is not an unsigned integer: '" + text + "'");
  }
}

bool require_bool(const Message& message, const std::string& key) {
  const std::string text = require(message, key);
  if (text == "0") return false;
  if (text == "1") return true;
  throw ProtocolError("header '" + key + "' is not 0/1: '" + text + "'");
}

double parse_double(const std::string& text, const std::string& what) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0' || text.empty()) {
    throw ProtocolError(what + " is not a number: '" + text + "'");
  }
  return value;
}

std::string format_double(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

// ------------------------------------------------ generator enum strings

const char* rule_name(gen::ProcessorRule rule) {
  switch (rule) {
    case gen::ProcessorRule::kFixed: return "fixed";
    case gen::ProcessorRule::kUniform: return "uniform";
    case gen::ProcessorRule::kMinCapacity: return "min-capacity";
  }
  return "fixed";
}

gen::ProcessorRule rule_from(const std::string& text) {
  for (const gen::ProcessorRule rule :
       {gen::ProcessorRule::kFixed, gen::ProcessorRule::kUniform,
        gen::ProcessorRule::kMinCapacity}) {
    if (text == rule_name(rule)) return rule;
  }
  throw ProtocolError("unknown gen-rule: '" + text + "'");
}

const char* order_name(gen::ParamOrder order) {
  switch (order) {
    case gen::ParamOrder::kDFirst: return "d-first";
    case gen::ParamOrder::kCdt: return "cdt";
    case gen::ParamOrder::kTdc: return "tdc";
  }
  return "d-first";
}

gen::ParamOrder order_from(const std::string& text) {
  for (const gen::ParamOrder order :
       {gen::ParamOrder::kDFirst, gen::ParamOrder::kCdt,
        gen::ParamOrder::kTdc}) {
    if (text == order_name(order)) return order;
  }
  throw ProtocolError("unknown gen-order: '" + text + "'");
}

// --------------------------------------------------- run-record body text
//
// One RunRecord serializes to a "run" line (verdict, flags, cause, nodes,
// seconds, decided-by) followed by an optional "ng" line (the 13
// NogoodStats counters, emitted only when any is nonzero) and one "prop"
// line per propagator row.  seconds travel as %.17g so the double
// round-trips bit-exactly — record identity across the wire is the whole
// point of this layer.

void append_run(std::string& body, const exp::RunRecord& run) {
  body += "run ";
  body += core::to_string(run.verdict);
  body += run.complete ? " 1 " : " 0 ";
  body += run.witness_ok ? "1 " : "0 ";
  body += core::to_string(run.failure_cause);
  body += ' ';
  body += std::to_string(run.nodes);
  body += ' ';
  body += format_double(run.seconds);
  body += ' ';
  // decided-by is the line remainder (labels may grow spaces); "-" marks
  // the empty provenance so the field count stays fixed.
  body += run.decided_by.empty() ? "-" : run.decided_by;
  body += '\n';

  const core::NogoodStats& ng = run.nogoods;
  const bool any_ng = ng.recorded != 0 || ng.imported != 0 ||
                      ng.exported != 0 || ng.replay_hits != 0 ||
                      ng.lits_before != 0 || ng.lits_after != 0 ||
                      ng.lits_uip != 0 || ng.lits_ds != 0 ||
                      ng.subsumed != 0 || ng.lbd_refreshed != 0 ||
                      ng.backjumps != 0 || ng.backjump_levels_saved != 0 ||
                      ng.lits_minimized != 0;
  if (any_ng) {
    body += "ng";
    for (const std::int64_t value :
         {ng.recorded, ng.imported, ng.exported, ng.replay_hits,
          ng.lits_before, ng.lits_after, ng.lits_uip, ng.lits_ds,
          ng.subsumed, ng.lbd_refreshed, ng.backjumps,
          ng.backjump_levels_saved, ng.lits_minimized}) {
      body += ' ';
      body += std::to_string(value);
    }
    body += '\n';
  }
  for (const core::PropagatorStats& prop : run.propagators) {
    body += "prop ";
    body += std::to_string(prop.wakes);
    body += ' ';
    body += std::to_string(prop.runs);
    body += ' ';
    body += std::to_string(prop.prunes);
    body += ' ';
    body += format_double(prop.seconds);
    body += ' ';
    body += prop.name;  // name last: propagator labels contain no newline
    body += '\n';
  }
}

std::vector<std::string> split_tokens(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

std::int64_t parse_i64(const std::string& text, const char* what) {
  try {
    std::size_t used = 0;
    const std::int64_t value = std::stoll(text, &used);
    if (used != text.size()) throw std::invalid_argument("trailing");
    return value;
  } catch (const std::exception&) {
    throw ProtocolError(std::string(what) + " is not an integer: '" + text +
                        "'");
  }
}

}  // namespace

Message encode_shard_request(const ShardRequest& request) {
  Message message;
  message.kind = "shard";
  message.set("shard-id", request.shard_id);
  message.set("seed", std::to_string(request.seed));
  message.set("time-limit-ms", request.time_limit_ms);
  message.set("max-nodes", request.max_nodes);
  message.set("max-variables", request.max_variables);
  message.set("max-attempts", static_cast<std::int64_t>(request.max_attempts));
  std::string specs;
  for (const std::string& name : request.specs) {
    if (!specs.empty()) specs += ',';
    specs += name;
  }
  message.set("specs", specs);
  message.set("gen-tasks", static_cast<std::int64_t>(request.generator.tasks));
  message.set("gen-processors",
              static_cast<std::int64_t>(request.generator.processors));
  message.set("gen-rule", rule_name(request.generator.rule));
  message.set("gen-tmax", static_cast<std::int64_t>(request.generator.t_max));
  message.set("gen-order", order_name(request.generator.order));
  message.set("gen-offsets", request.generator.with_offsets ? "1" : "0");
  std::string body;
  for (const std::uint64_t index : request.indices) {
    if (!body.empty()) body += ' ';
    body += std::to_string(index);
  }
  message.body = std::move(body);
  return message;
}

ShardRequest parse_shard_request(const Message& message) {
  if (message.kind != "shard") {
    throw ProtocolError("expected a 'shard' request, got '" + message.kind +
                        "'");
  }
  ShardRequest request;
  request.shard_id = require(message, "shard-id");
  request.seed = require_u64(message, "seed");
  request.time_limit_ms = require_int(message, "time-limit-ms");
  request.max_nodes = require_int(message, "max-nodes");
  request.max_variables = require_int(message, "max-variables");
  request.max_attempts =
      static_cast<std::int32_t>(require_int(message, "max-attempts"));
  if (request.max_attempts < 1) {
    throw ProtocolError("max-attempts must be >= 1");
  }
  const std::string specs = require(message, "specs");
  std::size_t pos = 0;
  while (pos <= specs.size()) {
    const std::size_t comma = specs.find(',', pos);
    const std::string name =
        specs.substr(pos, comma == std::string::npos ? std::string::npos
                                                     : comma - pos);
    if (!name.empty()) request.specs.push_back(name);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (request.specs.empty()) {
    throw ProtocolError("shard request names no specs");
  }
  request.generator.tasks =
      static_cast<std::int32_t>(require_int(message, "gen-tasks"));
  request.generator.processors =
      static_cast<std::int32_t>(require_int(message, "gen-processors"));
  request.generator.rule = rule_from(require(message, "gen-rule"));
  request.generator.t_max = require_int(message, "gen-tmax");
  request.generator.order = order_from(require(message, "gen-order"));
  request.generator.with_offsets = require_bool(message, "gen-offsets");
  for (const std::string& token : split_tokens(message.body)) {
    try {
      std::size_t used = 0;
      const std::uint64_t index = std::stoull(token, &used);
      if (used != token.size()) throw std::invalid_argument("trailing");
      request.indices.push_back(index);
    } catch (const std::exception&) {
      throw ProtocolError("bad shard index: '" + token + "'");
    }
  }
  return request;
}

Message encode_shard_row(const ShardRow& row) {
  Message message;
  message.kind = "shard-row";
  message.set("shard-id", row.shard_id);
  message.set("index", std::to_string(row.record.index));
  message.set("tasks", static_cast<std::int64_t>(row.record.tasks));
  message.set("processors", static_cast<std::int64_t>(row.record.processors));
  message.set("hyperperiod", static_cast<std::int64_t>(row.record.hyperperiod));
  message.set("ratio", format_double(row.record.ratio));
  message.set("exceeds-capacity", row.record.exceeds_capacity ? "1" : "0");
  std::string body;
  for (const exp::RunRecord& run : row.record.runs) {
    append_run(body, run);
  }
  message.body = std::move(body);
  return message;
}

ShardRow parse_shard_row(const Message& message) {
  if (message.kind != "shard-row") {
    throw ProtocolError("expected 'shard-row', got '" + message.kind + "'");
  }
  ShardRow row;
  row.shard_id = require(message, "shard-id");
  row.record.index = require_u64(message, "index");
  row.record.tasks = static_cast<std::int32_t>(require_int(message, "tasks"));
  row.record.processors =
      static_cast<std::int32_t>(require_int(message, "processors"));
  row.record.hyperperiod = require_int(message, "hyperperiod");
  row.record.ratio = parse_double(require(message, "ratio"), "ratio");
  row.record.exceeds_capacity = require_bool(message, "exceeds-capacity");

  std::istringstream body(message.body);
  std::string line;
  while (std::getline(body, line)) {
    if (line.empty()) continue;
    if (line.rfind("run ", 0) == 0) {
      // run <verdict> <complete> <witness> <cause> <nodes> <seconds>
      //     <decided-by...>   (decided-by is the line remainder)
      std::istringstream in(line);
      std::string tag, verdict_text, complete_text, witness_text, cause_text,
          nodes_text, seconds_text;
      if (!(in >> tag >> verdict_text >> complete_text >> witness_text >>
            cause_text >> nodes_text >> seconds_text)) {
        throw ProtocolError("malformed run line: '" + line + "'");
      }
      exp::RunRecord run;
      const auto verdict = verdict_from_string(verdict_text);
      if (!verdict.has_value()) {
        throw ProtocolError("unknown verdict: '" + verdict_text + "'");
      }
      run.verdict = *verdict;
      if (complete_text != "0" && complete_text != "1") {
        throw ProtocolError("run complete flag is not 0/1");
      }
      run.complete = complete_text == "1";
      if (witness_text != "0" && witness_text != "1") {
        throw ProtocolError("run witness flag is not 0/1");
      }
      run.witness_ok = witness_text == "1";
      const auto cause = cause_from_string(cause_text);
      if (!cause.has_value()) {
        throw ProtocolError("unknown failure cause: '" + cause_text + "'");
      }
      run.failure_cause = *cause;
      run.nodes = parse_i64(nodes_text, "run nodes");
      run.seconds = parse_double(seconds_text, "run seconds");
      std::string decided_by;
      std::getline(in, decided_by);
      if (!decided_by.empty() && decided_by.front() == ' ') {
        decided_by.erase(0, 1);
      }
      if (decided_by.empty()) {
        throw ProtocolError("run line missing decided-by: '" + line + "'");
      }
      run.decided_by = decided_by == "-" ? std::string() : decided_by;
      row.record.runs.push_back(std::move(run));
      continue;
    }
    if (row.record.runs.empty()) {
      throw ProtocolError("row body starts before a run line: '" + line +
                          "'");
    }
    exp::RunRecord& run = row.record.runs.back();
    if (line.rfind("ng ", 0) == 0) {
      const std::vector<std::string> tokens = split_tokens(line);
      if (tokens.size() != 14) {
        throw ProtocolError("ng line needs 13 counters: '" + line + "'");
      }
      core::NogoodStats& ng = run.nogoods;
      std::int64_t* fields[] = {
          &ng.recorded,  &ng.imported,     &ng.exported,
          &ng.replay_hits, &ng.lits_before, &ng.lits_after,
          &ng.lits_uip,  &ng.lits_ds,      &ng.subsumed,
          &ng.lbd_refreshed, &ng.backjumps, &ng.backjump_levels_saved,
          &ng.lits_minimized};
      for (std::size_t i = 0; i < 13; ++i) {
        *fields[i] = parse_i64(tokens[i + 1], "ng counter");
      }
      continue;
    }
    if (line.rfind("prop ", 0) == 0) {
      // prop <wakes> <runs> <prunes> <seconds> <name...>
      std::istringstream in(line);
      std::string tag, wakes, runs, prunes, seconds;
      if (!(in >> tag >> wakes >> runs >> prunes >> seconds)) {
        throw ProtocolError("malformed prop line: '" + line + "'");
      }
      core::PropagatorStats prop;
      prop.wakes = parse_i64(wakes, "prop wakes");
      prop.runs = parse_i64(runs, "prop runs");
      prop.prunes = parse_i64(prunes, "prop prunes");
      prop.seconds = parse_double(seconds, "prop seconds");
      std::string name;
      std::getline(in, name);
      if (!name.empty() && name.front() == ' ') name.erase(0, 1);
      if (name.empty()) {
        throw ProtocolError("prop line missing name: '" + line + "'");
      }
      prop.name = std::move(name);
      run.propagators.push_back(std::move(prop));
      continue;
    }
    throw ProtocolError("unknown row body line: '" + line + "'");
  }
  return row;
}

Message encode_shard_beat(const ShardBeat& beat) {
  Message message;
  message.kind = "shard-beat";
  message.set("shard-id", beat.shard_id);
  message.set("beat", std::to_string(beat.beat));
  message.set("done", beat.done);
  message.set("total", beat.total);
  return message;
}

ShardBeat parse_shard_beat(const Message& message) {
  if (message.kind != "shard-beat") {
    throw ProtocolError("expected 'shard-beat', got '" + message.kind + "'");
  }
  ShardBeat beat;
  beat.shard_id = require(message, "shard-id");
  beat.beat = require_u64(message, "beat");
  beat.done = require_int(message, "done");
  beat.total = require_int(message, "total");
  return beat;
}

Message encode_shard_done(const ShardDone& done) {
  Message message;
  message.kind = "shard-done";
  message.set("shard-id", done.shard_id);
  message.set("rows", done.rows);
  message.set("failures", done.health.failures);
  message.set("retries", done.health.retries);
  message.set("recovered", done.health.recovered);
  message.set("quarantined", done.health.quarantined);
  message.body = done.health.first_error;
  return message;
}

ShardDone parse_shard_done(const Message& message) {
  if (message.kind != "shard-done") {
    throw ProtocolError("expected 'shard-done', got '" + message.kind + "'");
  }
  ShardDone done;
  done.shard_id = require(message, "shard-id");
  done.rows = require_int(message, "rows");
  done.health.failures = require_int(message, "failures");
  done.health.retries = require_int(message, "retries");
  done.health.recovered = require_int(message, "recovered");
  done.health.quarantined = require_int(message, "quarantined");
  done.health.first_error = message.body;
  return done;
}

}  // namespace mgrts::serve
