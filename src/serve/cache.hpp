// Canonicalized verdict cache for the serving layer (DESIGN.md §13).
//
// Keys are core::canonical_key strings, so repeat queries that differ only
// by task permutation (or, on identical platforms, a common utilization
// scale factor) hit the same entry.  Two rules keep the cache sound:
//
//   * only DECISIVE verdicts are stored (feasible, or infeasible with a
//     complete proof).  Budget outcomes (timeout, node limit, unknown) are
//     functions of the request's budget and the machine's mood, not of the
//     instance — caching them would let one starved request poison every
//     duplicate after it;
//   * entries carry provenance: who decided (`decided_by` of the original
//     solve), when-insertion counters, and per-entry hit counts, so a
//     cached answer is always attributable.
//
// Bounded LRU with a single mutex: the solver behind a miss costs
// milliseconds, so a cache probe measured in tens of nanoseconds needs no
// sharding heroics.  Eviction is by least-recent *use* (hits refresh).
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/verdict.hpp"

namespace mgrts::serve {

struct CacheOptions {
  /// Max resident entries; 0 disables caching entirely (every lookup
  /// misses, inserts are dropped).
  std::size_t capacity = 65'536;
};

/// Monotonic counters; read via VerdictCache::stats().
struct CacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t inserts = 0;
  std::int64_t evictions = 0;
  /// Inserts rejected because the verdict was not decisive (soundness
  /// rule) — a nonzero count here during a chaos run is the containment
  /// working, not a bug.
  std::int64_t rejected = 0;

  [[nodiscard]] double hit_ratio() const noexcept {
    const std::int64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / static_cast<double>(total)
                     : 0.0;
  }
};

/// A cached decisive verdict with provenance.
struct CachedVerdict {
  core::Verdict verdict = core::Verdict::kUnknown;
  bool complete = true;
  /// The deciding stage/backend of the original solve ("flow-oracle",
  /// "backend:CSP2(dedicated)", ...).
  std::string decided_by;
  /// Times this entry answered a lookup (before this one).
  std::int64_t hits = 0;
};

class VerdictCache {
 public:
  explicit VerdictCache(CacheOptions options = {});

  /// Returns the entry for `key` (refreshing its LRU position and hit
  /// count) or nullopt.  Thread-safe.
  [[nodiscard]] std::optional<CachedVerdict> lookup(const std::string& key);

  /// Stores a decisive verdict under `key`; non-decisive verdicts are
  /// rejected (counted in stats().rejected).  Re-inserting an existing key
  /// keeps the original entry — a decisive verdict never changes, so the
  /// first writer wins and provenance stays stable.  Thread-safe.
  void insert(const std::string& key, core::Verdict verdict, bool complete,
              const std::string& decided_by);

  [[nodiscard]] CacheStats stats() const;
  [[nodiscard]] std::size_t size() const;

 private:
  struct Entry {
    std::string key;
    CachedVerdict value;
  };

  CacheOptions options_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  CacheStats stats_;
};

}  // namespace mgrts::serve
