// Client side of the daemon protocol: one connection, synchronous
// request/response.  Used by the mgrts_ctl CLI, the tests, and the bench.
//
// Unlike the daemon, the client is allowed to throw — support::SocketError
// for transport failures (no daemon listening, daemon died mid-reply) and
// ProtocolError for responses it cannot interpret.  What it never does is
// guess: an unrecognized verdict or kind is an error, not a default.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/verdict.hpp"
#include "serve/wire.hpp"
#include "support/socket.hpp"

namespace mgrts::serve {

/// Knobs forwarded as solve-request headers (absent = daemon default).
struct SolveParams {
  std::int64_t timeout_ms = -1;  ///< -1: omit the header
  std::int32_t retries = -1;     ///< -1: omit the header
  std::string method;            ///< empty: omit (daemon default backend)
  bool no_cache = false;
  std::optional<std::int64_t> seed;
  std::string id;                ///< request tag, echoed in the response
};

/// Parsed solve response ("ok" or "error").
struct SolveResult {
  bool ok = false;               ///< false: tagged "error" response
  std::string error_kind;        ///< parse / validation / protocol / internal
  core::Verdict verdict = core::Verdict::kUnknown;
  bool complete = false;
  core::FailureCause cause = core::FailureCause::kNone;
  std::string decided_by;
  bool cache_hit = false;
  std::int64_t nodes = 0;
  std::int64_t micros = 0;
  std::string detail;            ///< response body
  std::string id;                ///< echoed request tag
};

class Client {
 public:
  /// Connects immediately; throws support::SocketError when no daemon
  /// listens at `socket_path`.
  explicit Client(const std::string& socket_path);

  /// Sends one message and waits up to `timeout_ms` for the response.
  [[nodiscard]] Message request(const Message& message,
                                std::int64_t timeout_ms = 60'000);

  /// Solve round-trip; instance_text is core::instance_io format.
  [[nodiscard]] SolveResult solve(const std::string& instance_text,
                                  const SolveParams& params = {},
                                  std::int64_t timeout_ms = 60'000);

  /// Health counters as returned by the daemon (kind "health").
  [[nodiscard]] Message health(std::int64_t timeout_ms = 10'000);

  /// True when the daemon answered the ping.
  [[nodiscard]] bool ping(std::int64_t timeout_ms = 10'000);

  /// Asks the daemon to shut down (response kind "bye").
  void shutdown(std::int64_t timeout_ms = 10'000);

 private:
  support::Fd fd_;
};

/// Parses a solve response message ("ok"/"error") into a SolveResult;
/// throws ProtocolError on any other kind or an unrecognized verdict/cause.
[[nodiscard]] SolveResult parse_solve_response(const Message& response);

}  // namespace mgrts::serve
