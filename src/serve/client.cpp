#include "serve/client.hpp"

namespace mgrts::serve {

Client::Client(const std::string& socket_path)
    : fd_(support::connect_unix(socket_path)) {}

Message Client::request(const Message& message, std::int64_t timeout_ms) {
  send_frame(fd_, format_message(message));
  std::string payload;
  if (!recv_frame(fd_, payload, timeout_ms)) {
    throw support::SocketError("daemon closed the connection without a reply");
  }
  return parse_message(payload);
}

SolveResult parse_solve_response(const Message& response) {
  SolveResult result;
  result.detail = response.body;
  if (const auto id = response.get("id")) result.id = *id;

  if (response.kind == "error") {
    result.ok = false;
    result.error_kind = response.get("error-kind").value_or("unknown");
    result.verdict = core::Verdict::kUnknown;
    if (const auto cause = response.get("cause")) {
      const auto parsed = cause_from_string(*cause);
      if (!parsed.has_value()) {
        throw ProtocolError("unrecognized cause '" + *cause + "'");
      }
      result.cause = *parsed;
    }
    return result;
  }
  if (response.kind != "ok") {
    throw ProtocolError("expected 'ok' or 'error', got '" + response.kind +
                        "'");
  }

  result.ok = true;
  const auto verdict_text = response.get("verdict");
  if (!verdict_text.has_value()) {
    throw ProtocolError("solve response without a verdict header");
  }
  const auto verdict = verdict_from_string(*verdict_text);
  if (!verdict.has_value()) {
    throw ProtocolError("unrecognized verdict '" + *verdict_text + "'");
  }
  result.verdict = *verdict;
  result.complete = response.get_int("complete").value_or(0) != 0;
  const auto cause_text = response.get("cause");
  if (cause_text.has_value()) {
    const auto cause = cause_from_string(*cause_text);
    if (!cause.has_value()) {
      throw ProtocolError("unrecognized cause '" + *cause_text + "'");
    }
    result.cause = *cause;
  }
  result.decided_by = response.get("decided-by").value_or("");
  result.cache_hit = response.get("cache").value_or("") == "hit";
  result.nodes = response.get_int("nodes").value_or(0);
  result.micros = response.get_int("micros").value_or(0);
  return result;
}

SolveResult Client::solve(const std::string& instance_text,
                          const SolveParams& params, std::int64_t timeout_ms) {
  Message message;
  message.kind = "solve";
  if (!params.id.empty()) message.set("id", params.id);
  if (params.timeout_ms >= 0) message.set("timeout-ms", params.timeout_ms);
  if (params.retries >= 0) {
    message.set("retries", static_cast<std::int64_t>(params.retries));
  }
  if (!params.method.empty()) message.set("method", params.method);
  if (params.no_cache) message.set("no-cache", std::int64_t{1});
  if (params.seed.has_value()) message.set("seed", *params.seed);
  message.body = instance_text;
  return parse_solve_response(request(message, timeout_ms));
}

Message Client::health(std::int64_t timeout_ms) {
  Message message;
  message.kind = "health";
  Message response = request(message, timeout_ms);
  if (response.kind != "health") {
    throw ProtocolError("expected 'health', got '" + response.kind + "'");
  }
  return response;
}

bool Client::ping(std::int64_t timeout_ms) {
  Message message;
  message.kind = "ping";
  return request(message, timeout_ms).kind == "pong";
}

void Client::shutdown(std::int64_t timeout_ms) {
  Message message;
  message.kind = "shutdown";
  const Message response = request(message, timeout_ms);
  if (response.kind != "bye") {
    throw ProtocolError("expected 'bye', got '" + response.kind + "'");
  }
}

}  // namespace mgrts::serve
