#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "serve/wire.hpp"

namespace mgrts::serve {

namespace {

/// Protocol-level refusal built without going through the Service (used
/// when the frame itself was bad, so the Service never saw a payload).
std::string protocol_refusal(const std::string& detail) {
  Message error;
  error.kind = "error";
  error.set("error-kind", "protocol");
  error.set("verdict", core::to_string(core::Verdict::kUnknown));
  error.set("cause", core::to_string(core::FailureCause::kNone));
  error.body = detail;
  return format_message(error);
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      service_(options_.service),
      listener_(support::listen_unix(options_.socket_path)),
      pool_(std::make_unique<support::ThreadPool>(
          std::max<std::size_t>(options_.workers, 1))) {
  if (options_.watchdog_stall_ms > 0) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
}

Server::~Server() {
  stop();
  std::remove(options_.socket_path.c_str());
}

void Server::run() {
  while (!stopping_.load(std::memory_order_relaxed) &&
         !service_.shutdown_requested()) {
    support::Fd connection =
        support::accept_unix(listener_, options_.poll_interval_ms);
    if (!connection.valid()) continue;  // timeout: poll the flags again
    auto shared = std::make_shared<support::Fd>(std::move(connection));
    pool_->submit([this, shared] { handle_connection(std::move(*shared)); });
  }
  // Graceful drain: no new connections, in-flight solves cancelled
  // cooperatively, handlers notice stopping_ at their next poll.
  stopping_.store(true, std::memory_order_relaxed);
  stop_token_.cancel();
  pool_->wait_idle();
}

void Server::start() {
  accept_thread_ = std::thread([this] { run(); });
}

void Server::stop() {
  stopping_.store(true, std::memory_order_relaxed);
  stop_token_.cancel();
  if (accept_thread_.joinable() &&
      accept_thread_.get_id() != std::this_thread::get_id()) {
    accept_thread_.join();
  }
  if (watchdog_.joinable() &&
      watchdog_.get_id() != std::this_thread::get_id()) {
    watchdog_.join();
  }
  pool_->wait_idle();
}

void Server::handle_connection(support::Fd connection) {
  while (!stopping_.load(std::memory_order_relaxed)) {
    bool readable = false;
    try {
      readable = support::wait_readable(connection, options_.poll_interval_ms);
    } catch (const support::SocketError&) {
      return;
    }
    if (!readable) continue;  // idle: poll the stop flag

    std::string payload;
    try {
      // Once bytes are pending, a whole frame should follow promptly; the
      // bounded per-chunk timeout keeps a byte-dribbling peer from pinning
      // this worker past the watchdog's reach.
      if (!recv_frame(connection, payload, 10'000)) return;  // clean EOF
    } catch (const ProtocolError& e) {
      // Oversized/corrupt length: answer, then close — after a framing
      // error the stream offset is unreliable.
      try {
        send_frame(connection, protocol_refusal(e.what()));
      } catch (const support::SocketError&) {
      }
      return;
    } catch (const support::SocketError&) {
      return;  // transport failure or mid-frame EOF: nothing to answer
    }

    auto slot = std::make_shared<RequestSlot>();
    slot->heartbeat = std::make_shared<std::atomic<std::uint64_t>>(0);
    slot->token = support::CancelToken::linked(stop_token_);
    slot->last_change = std::chrono::steady_clock::now();
    {
      std::lock_guard<std::mutex> lock(slots_mutex_);
      slots_.push_back(slot);
    }
    const std::string response =
        service_.handle(payload, RequestContext{slot->token, slot->heartbeat});
    {
      std::lock_guard<std::mutex> lock(slots_mutex_);
      slots_.erase(std::remove(slots_.begin(), slots_.end(), slot),
                   slots_.end());
    }

    try {
      send_frame(connection, response);
    } catch (const support::SocketError&) {
      return;  // peer vanished mid-answer; the solve result is simply lost
    }
    if (service_.shutdown_requested()) return;  // "bye" sent; close our end
  }
}

void Server::watchdog_loop() {
  const std::int64_t stall_ms = options_.watchdog_stall_ms;
  const auto interval = std::chrono::milliseconds(
      std::clamp<std::int64_t>(stall_ms / 4, 5, 250));
  while (!stopping_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(interval);
    const auto now = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> lock(slots_mutex_);
    for (const auto& slot : slots_) {
      if (slot->culled) continue;
      const std::uint64_t beat =
          slot->heartbeat->load(std::memory_order_relaxed);
      if (beat != slot->last_beat) {
        slot->last_beat = beat;
        slot->last_change = now;
        continue;
      }
      // Only a request that has started polling (beat > 0) can stall; one
      // still parsing or queueing has no heartbeat to judge.
      if (beat > 0 &&
          now - slot->last_change >= std::chrono::milliseconds(stall_ms)) {
        slot->token.cancel();
        slot->culled = true;
        watchdog_culled_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
}

}  // namespace mgrts::serve
