// Shard request/response codec of the distributed batch layer
// (DESIGN.md §16), on top of the serve/wire.hpp framing.
//
// A "shard" request carries everything a worker needs to reproduce a slice
// of a generator batch bit-identically: the generator options, the stream
// seed, the solver line-up as *registry names* (exp::spec_from_name — a
// name plus the budgets fully determines the spec on any build), the
// budgets, and the generator-index list.  Because gen::generate_indexed is
// index-addressable and exp::reseed_for_index keys the per-run seeds by
// generator index, any shard replays the exact instances and seeds of the
// full-stream run — the coordinator's merge is record-identical to a
// single-box batch by construction, not by luck.
//
// Responses stream back over the same connection:
//   "shard-row"  — one exp::InstanceRecord per finished generator index,
//                  in request order (verdicts, causes, nogood stats,
//                  per-propagator rows — the full RunRecord surface);
//   "shard-beat" — per-shard progress heartbeat: the executor's solver
//                  heartbeat plus the completed-row count, so a
//                  coordinator can tell "searching" from "wedged" exactly
//                  like the PR 6/7 watchdogs;
//   "shard-done" — trailer carrying the shard's core::BatchHealth
//                  (failures/retries/recoveries/quarantines inherited
//                  wholesale from core::solve_batch);
//   "error"      — the usual tagged refusal (unknown spec name, malformed
//                  request).
//
// All parse_* functions throw ProtocolError on malformed input; like the
// solve path, a peer must refuse what it cannot parse exactly — never
// guess.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/solve.hpp"
#include "exp/harness.hpp"
#include "gen/generator.hpp"
#include "serve/wire.hpp"

namespace mgrts::serve {

/// One shard of a generator batch: a slice of the index space plus the
/// full recipe for reproducing it.
struct ShardRequest {
  /// Coordinator-chosen tag, echoed on every row/beat/trailer so replies
  /// from a culled predecessor can never be attributed to a new dispatch.
  std::string shard_id;
  gen::GeneratorOptions generator;
  std::uint64_t seed = 42;
  /// Solver line-up as exp::spec_from_name registry names.
  std::vector<std::string> specs;
  /// Wall budget per (instance, solver) run; -1 = unlimited.
  std::int64_t time_limit_ms = -1;
  /// Node budget override; -1 = keep each spec's own default.
  std::int64_t max_nodes = -1;
  /// Variable-budget override (csp::SolverLimits); 0 = spec default.
  std::int64_t max_variables = 0;
  /// Worker-side core::BatchPolicy::max_attempts (retry/quarantine).
  std::int32_t max_attempts = 1;
  /// Generator-stream indices of this shard, in execution order.
  std::vector<std::uint64_t> indices;
};

/// One streamed result row: the shard it belongs to plus the full
/// per-instance record (meta + one RunRecord per requested spec).
struct ShardRow {
  std::string shard_id;
  exp::InstanceRecord record;
};

/// Per-shard progress heartbeat.  `beat` is monotone while the executor
/// makes progress: the solver heartbeat (ticked at every deadline poll)
/// plus the completed-row count.  A beat that stops changing is a stalled
/// shard; a closed connection is a dead one — both are cull conditions.
struct ShardBeat {
  std::string shard_id;
  std::uint64_t beat = 0;
  std::int64_t done = 0;
  std::int64_t total = 0;
};

/// Shard trailer: row count (the coordinator cross-checks it against what
/// arrived) and the executor's aggregate batch health.
struct ShardDone {
  std::string shard_id;
  std::int64_t rows = 0;
  core::BatchHealth health;  ///< quarantined_jobs stays empty on the wire
};

[[nodiscard]] Message encode_shard_request(const ShardRequest& request);
[[nodiscard]] ShardRequest parse_shard_request(const Message& message);

[[nodiscard]] Message encode_shard_row(const ShardRow& row);
[[nodiscard]] ShardRow parse_shard_row(const Message& message);

[[nodiscard]] Message encode_shard_beat(const ShardBeat& beat);
[[nodiscard]] ShardBeat parse_shard_beat(const Message& message);

[[nodiscard]] Message encode_shard_done(const ShardDone& done);
[[nodiscard]] ShardDone parse_shard_done(const Message& message);

}  // namespace mgrts::serve
