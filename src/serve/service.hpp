// The daemon's request handler, factored free of any socket so the serving
// contract is testable (and chaos-soakable) in-process.
//
// `Service::handle` is the containment funnel of the serving layer: payload
// bytes in, response payload bytes out, and it NEVER throws — malformed
// frames, hostile instances, solver crashes, and injected faults all
// degrade to a tagged "error" or degraded "ok" response.  A request that
// reaches the daemon always gets an answer (DESIGN.md §13).
//
// Solve requests run through core::solve_batch as a single-job batch, so
// the serving path inherits the library path's whole containment stack:
// crash-type causes retried with widened budgets and fresh seeds,
// exhausted jobs quarantined, every outcome tagged with the canonical
// core::FailureCause.  Decisive verdicts land in a canonicalized
// VerdictCache (permutation / identical-platform scaling invariant), so
// repeat-heavy request mixes are answered in microseconds with provenance
// ("cache:<original decider>").
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/canonical.hpp"
#include "core/solve.hpp"
#include "serve/cache.hpp"
#include "serve/wire.hpp"
#include "support/deadline.hpp"

namespace mgrts::serve {

struct ServiceOptions {
  /// Budget for solve requests that carry no `timeout-ms` header.
  std::int64_t default_timeout_ms = 2'000;
  /// Hard ceiling on any request's budget — a resident daemon never grants
  /// an unlimited solve, whatever the client asks for.
  std::int64_t max_timeout_ms = 30'000;
  /// Ceiling on the `retries`-derived attempt count.
  std::int32_t max_attempts_cap = 4;
  /// Attempts when the request carries no `retries` header (2 = one retry
  /// of crash-type failures, the resident-service default).
  std::int32_t default_attempts = 2;
  /// Default backend for solve requests without a `method` header.
  core::Method method = core::Method::kCsp2Dedicated;
  /// Verdict-cache sizing (capacity 0 disables caching).
  CacheOptions cache;
  /// Canonicalization applied to cache keys.
  core::CanonicalOptions canonical;
  /// Recent-latency window used for the health block's p50/p99.
  std::size_t latency_window = 4'096;
};

/// BatchHealth-shaped counter block for the daemon (served on "health").
struct ServiceCounters {
  std::int64_t requests = 0;        ///< every payload handed to handle()
  std::int64_t solved = 0;          ///< "ok" solve responses sent
  std::int64_t decided = 0;         ///< ... of which carried a decisive verdict
  std::int64_t degraded = 0;        ///< solve responses with a crash-type cause
  std::int64_t retried = 0;         ///< solve_batch re-attempts launched
  std::int64_t recovered = 0;       ///< retries that produced a clean report
  std::int64_t quarantined = 0;     ///< solve requests that exhausted attempts
  std::int64_t parse_errors = 0;    ///< "error" responses: bad instance text
  std::int64_t validation_errors = 0;  ///< "error": structurally invalid system
  std::int64_t protocol_errors = 0;    ///< "error": malformed wire payload
  std::int64_t internal_errors = 0;    ///< "error": contained handler exception
  std::int64_t cache_hits = 0;      ///< solve responses answered from cache
  std::string first_error;          ///< first contained failure, human-readable
};

/// Latency percentiles over the recent-request window, microseconds.
struct LatencyStats {
  std::int64_t p50_us = 0;
  std::int64_t p99_us = 0;
  std::int64_t samples = 0;
};

/// Per-request plumbing the socket server threads supply; defaults are
/// right for in-process use.
struct RequestContext {
  /// Cancellation observed by the solve (the server links the daemon-wide
  /// shutdown token and the watchdog's per-request token into this).
  support::CancelToken cancel;
  /// Progress heartbeat ticked at every deadline poll, watched by the
  /// server's stall watchdog.
  std::shared_ptr<std::atomic<std::uint64_t>> heartbeat;
};

class Service {
 public:
  explicit Service(ServiceOptions options = {});

  /// Handles one request payload and returns the response payload.
  /// NEVER throws; thread-safe.
  [[nodiscard]] std::string handle(const std::string& payload,
                                   const RequestContext& context = {});

  /// Typed variant (used by handle and directly by tests).  NEVER throws.
  [[nodiscard]] Message handle_message(const Message& request,
                                       const RequestContext& context = {});

  /// True once a "shutdown" request was accepted; the socket server's
  /// accept loop polls this.
  [[nodiscard]] bool shutdown_requested() const noexcept {
    return shutdown_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] ServiceCounters counters() const;
  [[nodiscard]] CacheStats cache_stats() const { return cache_.stats(); }
  [[nodiscard]] LatencyStats latency() const;

  [[nodiscard]] const ServiceOptions& options() const noexcept {
    return options_;
  }

 private:
  Message handle_solve(const Message& request, const RequestContext& context);
  Message make_error(const std::string& error_kind, const std::string& detail);
  void note_latency(std::int64_t micros);

  ServiceOptions options_;
  VerdictCache cache_;
  std::atomic<bool> shutdown_{false};

  mutable std::mutex mutex_;        // counters + latency ring
  ServiceCounters counters_;
  std::vector<std::int64_t> latency_ring_;
  std::size_t latency_next_ = 0;
  std::int64_t latency_total_ = 0;
};

/// Inverse of core::to_string(Method); nullopt for unknown text.
[[nodiscard]] std::optional<core::Method> method_from_string(
    const std::string& text);

}  // namespace mgrts::serve
