// The resident solver daemon's socket front-end: an AF_UNIX accept loop
// fanning connections out over a support::ThreadPool, wrapped around the
// in-process Service (serve/service.hpp).
//
// Containment at this layer (DESIGN.md §13):
//   * each connection handler converts frame/transport failures into tagged
//     "error" responses where a response is still possible, and otherwise
//     just drops the connection — the process never dies with a client;
//   * every in-flight solve runs behind a per-request CancelToken linked to
//     the server-wide stop token, so stop() and shutdown requests abort
//     work cooperatively instead of abandoning threads;
//   * a PR6-style heartbeat watchdog walks the in-flight request registry
//     and culls handlers whose solver heartbeat stands still for
//     `watchdog_stall_ms` — a wedged (or kStall-fault-injected) solve
//     degrades to a kTimeout/kCancelled response instead of pinning a
//     worker forever.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.hpp"
#include "support/socket.hpp"
#include "support/thread_pool.hpp"

namespace mgrts::serve {

struct ServerOptions {
  /// Filesystem path of the AF_UNIX socket; a stale file is replaced.
  std::string socket_path = "/tmp/mgrts.sock";
  /// Connection-handler fan-out (also the max concurrent connections; the
  /// listen backlog queues the rest).
  std::size_t workers = 4;
  /// Cull threshold for the stall watchdog; 0 disables it.
  std::int64_t watchdog_stall_ms = 5'000;
  /// Per-read timeout on idle connections — a poll point for the stop
  /// flag, not a client deadline (the loop continues on timeout).
  std::int64_t poll_interval_ms = 200;
  ServiceOptions service;
};

class Server {
 public:
  /// Binds the socket immediately (throws support::SocketError on failure);
  /// serving starts with run() or start().
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Accept loop; blocks until stop() or an accepted "shutdown" request,
  /// then drains in-flight handlers and returns.
  void run();

  /// Runs the accept loop on a background thread (for tests and the
  /// quickstart snippet; the daemon binary calls run() directly).
  void start();

  /// Requests a graceful stop: stop accepting, cancel in-flight solves via
  /// their linked tokens, join.  Idempotent.
  void stop();

  [[nodiscard]] Service& service() noexcept { return service_; }
  [[nodiscard]] const std::string& socket_path() const noexcept {
    return options_.socket_path;
  }
  /// Handlers the watchdog culled for a stalled heartbeat.
  [[nodiscard]] std::int64_t watchdog_culled() const noexcept {
    return watchdog_culled_.load(std::memory_order_relaxed);
  }

 private:
  /// One in-flight solve visible to the watchdog.
  struct RequestSlot {
    std::shared_ptr<std::atomic<std::uint64_t>> heartbeat;
    support::CancelToken token;
    std::uint64_t last_beat = 0;
    std::chrono::steady_clock::time_point last_change;
    bool culled = false;
  };

  void handle_connection(support::Fd connection);
  void watchdog_loop();

  ServerOptions options_;
  Service service_;
  support::Fd listener_;
  support::CancelToken stop_token_ = support::CancelToken::make();
  std::atomic<bool> stopping_{false};
  std::atomic<std::int64_t> watchdog_culled_{0};

  std::mutex slots_mutex_;
  std::vector<std::shared_ptr<RequestSlot>> slots_;

  std::unique_ptr<support::ThreadPool> pool_;
  std::thread watchdog_;
  std::thread accept_thread_;  // start() only
};

}  // namespace mgrts::serve
