// Wire protocol of the resident solver daemon (DESIGN.md §13).
//
// Framing: every message is a 4-byte big-endian payload length followed by
// that many payload bytes.  The length is bounded (kMaxFrameBytes) *before*
// any allocation happens, so a corrupt or hostile length degrades to a
// ProtocolError — never a bad_alloc, never a multi-gigabyte read.
//
// Payload: plain text, trivially greppable and stable across versions —
//
//     mgrts/1 <kind>\n
//     <key> <value>\n          (zero or more headers; single-space split)
//     \n
//     <body ...>               (instance_io text, error detail, free text)
//
// Request kinds: "solve", "health", "ping", "shutdown", and "shard" (the
//                distributed batch layer, serve/shard.hpp: generator
//                options + an index list in).
// Response kinds: "ok" (solve result), "health", "pong", "bye",
//                 "error" (tagged degradation — the daemon NEVER answers a
//                 malformed or poisoned request with silence or a closed
//                 connection; it answers with one of these), plus the
//                 shard stream: "shard-row" (one merged-record row per
//                 generator index), "shard-beat" (per-shard progress
//                 heartbeat), "shard-done" (shard trailer with health
//                 counters).
//
// Every solve response carries the canonical core::Verdict, the
// core::FailureCause taxonomy, and `decided-by` provenance, so the daemon
// path and the library path (core::solve_instance) expose exactly the same
// degradation contract.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/verdict.hpp"
#include "support/socket.hpp"

namespace mgrts::serve {

/// Malformed frame or payload (bad tag, oversized length, truncated
/// headers).  A server converts these into "error" responses; a client
/// surfaces them to its caller.
class ProtocolError : public Error {
 public:
  using Error::Error;
};

inline constexpr char kProtoTag[] = "mgrts/1";

/// Upper bound on a frame payload; a length beyond this is rejected before
/// any buffer is sized from it.  Generous for instances (a 100k-task
/// instance serializes to ~2 MiB) yet far below anything allocation-risky.
inline constexpr std::uint32_t kMaxFrameBytes = 8u << 20;

/// Upper bound on the gap between a frame's length prefix and the arrival
/// of its payload bytes.  A declared length is a promise that the body
/// follows promptly; a peer that announces N bytes and then dribbles (or
/// goes silent) is a protocol violation, not a reason to park a reader
/// forever — recv_frame applies this bound even when the caller passed no
/// timeout of its own.
inline constexpr std::int64_t kIntraFrameTimeoutMs = 10'000;

/// One parsed payload: kind line, headers in arrival order, body.
struct Message {
  std::string kind;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  void set(std::string key, std::string value) {
    headers.emplace_back(std::move(key), std::move(value));
  }
  void set(std::string key, std::int64_t value) {
    headers.emplace_back(std::move(key), std::to_string(value));
  }
  /// First value for `key`, if any.
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;
  /// Integer header; nullopt when absent, ProtocolError when unparsable.
  [[nodiscard]] std::optional<std::int64_t> get_int(
      const std::string& key) const;
};

/// Serializes a Message into a payload (no frame prefix).
[[nodiscard]] std::string format_message(const Message& message);

/// Parses a payload; throws ProtocolError with a reason on malformed input.
[[nodiscard]] Message parse_message(const std::string& payload);

// ---------------------------------------------------------------- framing

/// Sends `payload` as one frame.  Throws support::SocketError on transport
/// failure and ProtocolError when payload exceeds kMaxFrameBytes.
void send_frame(const support::Fd& fd, const std::string& payload);

/// Receives one frame into `payload`.  Returns false on clean EOF before a
/// frame started; throws ProtocolError for an oversized announced length
/// and for a truncated frame — a declared length the peer never delivers
/// (short read, mid-frame EOF, or a stall longer than kIntraFrameTimeoutMs)
/// — and support::SocketError on transport failure before the length is
/// known.  `timeout_ms` bounds each blocking read (-1 = no bound on the
/// wait for a frame to start; the body read is always bounded).
[[nodiscard]] bool recv_frame(const support::Fd& fd, std::string& payload,
                              std::int64_t timeout_ms = -1);

// ------------------------------------------------- verdict/cause strings

/// Inverse of core::to_string(Verdict); nullopt for unknown text (a client
/// must treat an unrecognized verdict as a protocol error, not guess).
[[nodiscard]] std::optional<core::Verdict> verdict_from_string(
    const std::string& text);

/// Inverse of core::to_string(FailureCause).
[[nodiscard]] std::optional<core::FailureCause> cause_from_string(
    const std::string& text);

}  // namespace mgrts::serve
