#include "priority/assignment.hpp"

#include <algorithm>

#include "csp2/csp2.hpp"
#include "support/assert.hpp"

namespace mgrts::prio {

using rt::TaskId;

const char* to_string(SearchStatus status) {
  switch (status) {
    case SearchStatus::kFound: return "found";
    case SearchStatus::kExhausted: return "exhausted";
    case SearchStatus::kBudget: return "budget";
  }
  return "?";
}

namespace {

bool order_works(const rt::TaskSet& ts, const rt::Platform& platform,
                 const std::vector<TaskId>& order) {
  sim::SimOptions sim_options;
  sim_options.policy = sim::Policy::kFixedPriority;
  sim_options.priority = order;
  const sim::SimResult result = sim::simulate(ts, platform, sim_options);
  return result.status == sim::SimStatus::kSchedulable;
}

}  // namespace

SearchResult find_feasible_priority(const rt::TaskSet& ts,
                                    const rt::Platform& platform,
                                    const SearchOptions& options) {
  SearchResult result;
  auto budget_left = [&] {
    if (options.deadline.expired()) return false;
    return options.max_orders < 0 || result.orders_tried < options.max_orders;
  };

  if (options.heuristics_first) {
    // The ladder starts with (D-C) per the paper's closing discussion.
    const std::pair<csp2::ValueOrder, const char*> ladder[] = {
        {csp2::ValueOrder::kDMinusC, "D-C"},
        {csp2::ValueOrder::kDeadlineMonotonic, "DM"},
        {csp2::ValueOrder::kRateMonotonic, "RM"},
        {csp2::ValueOrder::kTMinusC, "T-C"},
        {csp2::ValueOrder::kInput, "input"},
    };
    for (const auto& [heuristic, name] : ladder) {
      if (!budget_left()) return result;
      auto order = csp2::value_order_tasks(ts, heuristic);
      ++result.orders_tried;
      if (order_works(ts, platform, order)) {
        result.status = SearchStatus::kFound;
        result.order = std::move(order);
        result.source = name;
        return result;
      }
    }
  }

  if (!options.exhaustive) {
    result.status = SearchStatus::kBudget;
    return result;
  }

  // Exhaustive pass: permutations of the (D-C) order in lexicographic
  // order, so the earliest permutations are the ones the paper's criterion
  // considers most promising.
  std::vector<TaskId> base =
      csp2::value_order_tasks(ts, csp2::ValueOrder::kDMinusC);
  // std::next_permutation needs the comparator under which `base` is the
  // smallest arrangement: compare positions in the (D-C) order.
  std::vector<std::int32_t> pos(base.size());
  for (std::size_t k = 0; k < base.size(); ++k) {
    pos[static_cast<std::size_t>(base[k])] = static_cast<std::int32_t>(k);
  }
  const auto by_dc = [&](TaskId a, TaskId b) {
    return pos[static_cast<std::size_t>(a)] < pos[static_cast<std::size_t>(b)];
  };

  std::vector<TaskId> order = base;
  do {
    if (!budget_left()) {
      result.status = SearchStatus::kBudget;
      return result;
    }
    ++result.orders_tried;
    if (order_works(ts, platform, order)) {
      result.status = SearchStatus::kFound;
      result.order = order;
      result.source = "search";
      return result;
    }
  } while (std::next_permutation(order.begin(), order.end(), by_dc));

  result.status = SearchStatus::kExhausted;
  return result;
}

}  // namespace mgrts::prio
