// Feasible global fixed-priority assignment search.
//
// §VIII of the paper proposes "considering the problem from a different
// viewpoint, e.g. searching for a feasible priority assignment among the n!
// possible orderings of n tasks", and notes that since CSP2+(D-C) wins the
// experiments, "an optimal priority assignment algorithm could be built
// starting from a first ordering based on a (D-C) criterion".  This module
// implements that idea:
//   1. try a ladder of heuristic orders — (D-C) first, then DM, RM, (T-C),
//      input order — each checked with the global-FP simulator;
//   2. fall back to enumerating all n! orders depth-first (still seeded by
//      the (D-C) order at every level), subject to order/time budgets.
//
// Global FP is not an optimal scheduling policy, so "no feasible priority
// order" does NOT imply MGRTS infeasibility — the CSP solvers decide that.
// The test suite checks the converse containment: whenever some priority
// order works, CSP2 finds a schedule.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "rt/platform.hpp"
#include "rt/task_set.hpp"
#include "sim/simulator.hpp"
#include "support/deadline.hpp"

namespace mgrts::prio {

struct SearchOptions {
  /// Try the heuristic ladder before enumerating.
  bool heuristics_first = true;
  /// Enumerate permutations exhaustively after the ladder (n! worst case).
  bool exhaustive = true;
  /// Stop after this many simulated orders (-1 = unlimited).
  std::int64_t max_orders = -1;
  support::Deadline deadline;
};

enum class SearchStatus {
  kFound,        ///< a feasible priority order was found
  kExhausted,    ///< every order fails under global FP
  kBudget,       ///< order budget / deadline hit before a decision
};

[[nodiscard]] const char* to_string(SearchStatus status);

struct SearchResult {
  SearchStatus status = SearchStatus::kBudget;
  /// Highest-to-lowest priority order; present iff kFound.
  std::optional<std::vector<rt::TaskId>> order;
  /// Name of the heuristic that produced the winning order, or "search".
  const char* source = "";
  std::int64_t orders_tried = 0;
};

/// Searches for a priority order under which global FP schedules `ts` on
/// the identical platform.
[[nodiscard]] SearchResult find_feasible_priority(
    const rt::TaskSet& ts, const rt::Platform& platform,
    const SearchOptions& options = {});

}  // namespace mgrts::prio
