#include "gen/generator.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"
#include "support/error.hpp"

namespace mgrts::gen {

using rt::TaskParams;
using rt::Time;

const char* to_string(ParamOrder order) {
  switch (order) {
    case ParamOrder::kDFirst: return "D-first";
    case ParamOrder::kCdt: return "C->D->T";
    case ParamOrder::kTdc: return "T->D->C";
  }
  return "?";
}

Instance generate(const GeneratorOptions& options, support::Rng& rng) {
  if (options.tasks < 3) {
    throw ValidationError("generator requires n > 2 (§VII-A)");
  }
  if (options.t_max < 2) {
    throw ValidationError("generator requires Tmax > 1 (§VII-A)");
  }
  if (options.rule == ProcessorRule::kFixed && options.processors < 1) {
    throw ValidationError("fixed processor rule needs m >= 1");
  }

  std::vector<TaskParams> params;
  params.reserve(static_cast<std::size_t>(options.tasks));
  for (std::int32_t k = 0; k < options.tasks; ++k) {
    TaskParams p;
    switch (options.order) {
      case ParamOrder::kDFirst:
        p.deadline = rng.uniform(1, options.t_max);
        p.wcet = rng.uniform(1, p.deadline);
        p.period = rng.uniform(p.deadline, options.t_max);
        break;
      case ParamOrder::kCdt:
        p.wcet = rng.uniform(1, options.t_max);
        p.deadline = rng.uniform(p.wcet, options.t_max);
        p.period = rng.uniform(p.deadline, options.t_max);
        break;
      case ParamOrder::kTdc:
        p.period = rng.uniform(1, options.t_max);
        p.deadline = rng.uniform(1, p.period);
        p.wcet = rng.uniform(1, p.deadline);
        break;
    }
    p.offset = options.with_offsets ? rng.uniform(0, p.period - 1) : 0;
    params.push_back(p);
  }

  Instance instance{rt::TaskSet::from_params(params), 1};

  switch (options.rule) {
    case ProcessorRule::kFixed:
      instance.processors = options.processors;
      break;
    case ProcessorRule::kUniform:
      instance.processors =
          static_cast<std::int32_t>(rng.uniform(1, options.tasks - 1));
      break;
    case ProcessorRule::kMinCapacity:
      instance.processors = instance.tasks.min_processors_bound();
      break;
  }
  return instance;
}

Instance generate_controlled(const ControlledOptions& options,
                             support::Rng& rng) {
  if (options.tasks < 1) {
    throw ValidationError("controlled generator needs at least one task");
  }
  if (options.processors < 1) {
    throw ValidationError("controlled generator needs m >= 1");
  }
  if (options.t_max < 2) {
    throw ValidationError("controlled generator requires Tmax > 1");
  }
  if (!(options.target_ratio > 0.0) || options.target_ratio > 1.0) {
    throw ValidationError("target_ratio must lie in (0, 1]");
  }
  const double total =
      options.target_ratio * static_cast<double>(options.processors);
  const auto n = static_cast<std::size_t>(options.tasks);
  if (total > static_cast<double>(options.tasks)) {
    throw ValidationError(
        "target utilization exceeds n (every task would need u > 1)");
  }

  // UUniFast-discard: uniform over the u-simplex, rejecting u_i > 1.
  std::vector<double> u(n);
  for (int attempt = 0;; ++attempt) {
    if (attempt > 10'000) {
      throw ValidationError(
          "UUniFast-discard failed to draw; target_ratio too extreme for n");
    }
    double sum = total;
    bool ok = true;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      const double next =
          sum * std::pow(rng.uniform01(),
                         1.0 / static_cast<double>(n - 1 - i));
      u[i] = sum - next;
      sum = next;
      if (u[i] > 1.0) {
        ok = false;
        break;
      }
    }
    u[n - 1] = sum;
    if (ok && u[n - 1] <= 1.0) break;
  }

  std::vector<TaskParams> params;
  params.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    TaskParams p;
    // Light tasks need long periods, otherwise C >= 1 inflates their
    // utilization (a u = 0.02 task on T = 5 realizes 0.2): restrict the
    // period range so that u * T >= 1 whenever Tmax allows it.
    const Time lo = std::clamp<Time>(
        static_cast<Time>(std::ceil(1.0 / std::max(u[i], 1e-9))), 1,
        options.t_max);
    p.period = rng.uniform(lo, options.t_max);
    const double ideal = u[i] * static_cast<double>(p.period);
    p.wcet = std::clamp<Time>(static_cast<Time>(ideal + 0.5), 1, p.period);
    p.deadline =
        options.implicit_deadlines ? p.period : rng.uniform(p.wcet, p.period);
    p.offset = options.with_offsets ? rng.uniform(0, p.period - 1) : 0;
    params.push_back(p);
  }
  return Instance{rt::TaskSet::from_params(params), options.processors};
}

Instance generate_indexed(const GeneratorOptions& options, std::uint64_t seed,
                          std::uint64_t index) {
  // Mix the index into the seed so instances form independent streams that
  // do not depend on generation order (lets the harness parallelize).
  support::SplitMix64 mix(seed ^ (0x9e3779b97f4a7c15ULL * (index + 1)));
  support::Rng rng(mix.next());
  return generate(options, rng);
}

}  // namespace mgrts::gen
