// Random problem generation following §VII-A.
//
// The paper's procedure: fix n, m, Tmax globally, then sample each task's
// parameters respecting 0 < C_i <= D_i <= T_i <= Tmax.  The order in which
// (C, D, T) are drawn shapes the distribution; the authors choose the
// "intermediate" option of sampling D_i first, then C_i and T_i (which are
// independent given D_i):
//     D ~ U(1..Tmax),  C ~ U(1..D),  T ~ U(D..Tmax).
// The two extremes they describe are available for the generator-ablation
// bench:
//     C -> D -> T  (favours large periods):  C ~ U(1..Tmax), D ~ U(C..Tmax),
//                                            T ~ U(D..Tmax);
//     T -> D -> C  (favours short WCETs):    T ~ U(1..Tmax), D ~ U(1..T),
//                                            C ~ U(1..D).
// Instances are NOT filtered by utilization (§VII-C keeps r > 1 instances);
// the experiment harness applies the r > 1 filter where the paper does.
//
// Processor counts: a fixed m (the paper uses m=5 for Tables I-III), a
// uniform draw from 1..n-1, or the §VII-E rule m = max(1, ceil(sum C_i/T_i))
// used by the Table IV scaling study.
#pragma once

#include <cstdint>
#include <vector>

#include "rt/task_set.hpp"
#include "support/rng.hpp"

namespace mgrts::gen {

enum class ParamOrder {
  kDFirst,  ///< the paper's choice: D, then C and T given D
  kCdt,     ///< C -> D -> T (favours large periods)
  kTdc,     ///< T -> D -> C (favours short WCETs)
};

[[nodiscard]] const char* to_string(ParamOrder order);

enum class ProcessorRule {
  kFixed,        ///< use `processors` as given
  kUniform,      ///< m ~ U(1..n-1)  (the generic rule of §VII-A)
  kMinCapacity,  ///< m = max(1, ceil(U))  (§VII-E's m_min)
};

struct GeneratorOptions {
  std::int32_t tasks = 10;          ///< n > 2 per §VII-A
  std::int32_t processors = 5;      ///< used when rule == kFixed
  ProcessorRule rule = ProcessorRule::kFixed;
  rt::Time t_max = 7;               ///< Tmax >= 2
  ParamOrder order = ParamOrder::kDFirst;
  /// Sample release offsets O_i ~ U(0..T_i-1).  The paper's experiments use
  /// synchronous systems (offsets appear only in the running example), so
  /// the default is off.
  bool with_offsets = false;
};

struct Instance {
  rt::TaskSet tasks;
  std::int32_t processors = 1;
};

/// Draws one instance; deterministic given the rng state.
[[nodiscard]] Instance generate(const GeneratorOptions& options,
                                support::Rng& rng);

/// Convenience: the k-th instance of a reproducible stream.
[[nodiscard]] Instance generate_indexed(const GeneratorOptions& options,
                                        std::uint64_t seed,
                                        std::uint64_t index);

// ---------------------------------------------------------------------
// Utilization-controlled generation (beyond the paper).
//
// The §VII-A scheme gives no direct control over the utilization ratio —
// Table III shows the induced distribution instead.  For controlled-r
// studies this generator adapts the classic UUniFast-discard procedure to
// the integer model: task utilizations are drawn uniformly from the
// simplex summing to target_ratio * m (rejecting draws with any u_i > 1),
// periods uniformly from ceil(1/u_i)..Tmax (light tasks get long periods
// so the integral C_i >= 1 does not inflate them), and
// C_i = clamp(round(u_i * T_i), 1, T_i) — so the realized utilization
// tracks the target up to integer rounding.
// ---------------------------------------------------------------------

struct ControlledOptions {
  std::int32_t tasks = 10;
  std::int32_t processors = 4;
  rt::Time t_max = 20;
  /// Target r = U / m in (0, 1]; realized r deviates by O(1/Tmax).
  double target_ratio = 0.8;
  /// Implicit deadlines (D = T) or constrained D ~ U(C..T).
  bool implicit_deadlines = false;
  bool with_offsets = false;
};

/// Draws one utilization-controlled instance.  Throws ValidationError for
/// malformed options (tasks < 1, ratio outside (0, 1], ratio infeasible
/// for the task count: target_ratio * m > tasks).
[[nodiscard]] Instance generate_controlled(const ControlledOptions& options,
                                           support::Rng& rng);

}  // namespace mgrts::gen
