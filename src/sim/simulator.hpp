// Discrete-time simulator for global work-conserving schedulers on
// identical multiprocessors: global EDF and global fixed-priority.
//
// Role in the reproduction:
//   * baseline comparators — classic online policies against which the CSP
//     approach is motivated (the paper's §I/§VIII discussion; global
//     scheduling anomalies are exactly why EDF/FP are not optimal here);
//   * witness generators for the test suite — when EDF or some priority
//     order schedules an instance, the instance is feasible, so the
//     (complete) CSP2 solver must find a schedule too;
//   * the schedulability check inside the priority-assignment search
//     (src/priority), the paper's "different viewpoint" future-work item.
//
// Semantics: at every slot the policy picks up to m active jobs (released,
// unfinished) with the highest priority — EDF: earliest absolute deadline,
// ties by task id; FP: position in a given priority order — and runs each
// for one unit on one processor.  Migration is free; a task never occupies
// two processors in a slot (one job per task is active at a time under
// constrained deadlines).
//
// Periodicity: the simulator runs hyperperiod by hyperperiod, comparing the
// full backlog state at successive boundaries past max(O_i).  When the
// state repeats after exactly one hyperperiod, the last simulated window is
// a valid cyclic schedule and is returned as a witness.  A repeat with a
// longer period proves schedulability without a T-periodic witness (the
// schedule is p*T-periodic); this cannot happen for synchronous
// (offset-free) systems, where the boundary state is empty.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "rt/platform.hpp"
#include "rt/schedule.hpp"
#include "rt/task_set.hpp"

namespace mgrts::sim {

enum class Policy {
  kEdf,            ///< global earliest-deadline-first
  kFixedPriority,  ///< global FP with a caller-supplied order
};

struct SimOptions {
  Policy policy = Policy::kEdf;
  /// For kFixedPriority: task ids from highest to lowest priority; must be
  /// a permutation of 0..n-1.
  std::vector<rt::TaskId> priority;
  /// Hyperperiod boundaries to explore before giving up on periodicity.
  std::int64_t max_hyperperiods = 8;
};

enum class SimStatus {
  kSchedulable,    ///< no miss, steady state reached
  kDeadlineMiss,   ///< the policy missed a deadline (says nothing about
                   ///< feasibility of the instance itself!)
  kNoConvergence,  ///< no boundary-state repeat within the budget
};

[[nodiscard]] const char* to_string(SimStatus status);

struct SimResult {
  SimStatus status = SimStatus::kNoConvergence;
  /// Cyclic witness; present iff schedulable with a T-periodic steady state.
  std::optional<rt::Schedule> schedule;
  /// Diagnostics for kDeadlineMiss.
  rt::Time miss_time = -1;
  rt::TaskId miss_task = -1;
};

/// Simulates `ts` (constrained deadlines) under `options.policy` on m
/// identical processors.  Throws ValidationError for heterogeneous
/// platforms or malformed priority vectors.
[[nodiscard]] SimResult simulate(const rt::TaskSet& ts,
                                 const rt::Platform& platform,
                                 const SimOptions& options = {});

}  // namespace mgrts::sim
