#include "sim/simulator.hpp"

#include <algorithm>
#include <map>

#include "support/assert.hpp"
#include "support/error.hpp"

namespace mgrts::sim {

using rt::ProcId;
using rt::TaskId;
using rt::Time;

const char* to_string(SimStatus status) {
  switch (status) {
    case SimStatus::kSchedulable: return "schedulable";
    case SimStatus::kDeadlineMiss: return "deadline-miss";
    case SimStatus::kNoConvergence: return "no-convergence";
  }
  return "?";
}

namespace {

/// Backlog of one task: the active job, if any.
struct Backlog {
  Time abs_deadline = -1;  ///< -1: no active job
  Time remaining = 0;

  friend auto operator<=>(const Backlog&, const Backlog&) = default;
};

}  // namespace

SimResult simulate(const rt::TaskSet& ts, const rt::Platform& platform,
                   const SimOptions& options) {
  if (!platform.is_identical()) {
    throw ValidationError("the simulator supports identical platforms only");
  }
  if (!ts.is_constrained()) {
    throw ValidationError(
        "the simulator expects constrained deadlines; expand clones first");
  }
  const std::int32_t n = ts.size();
  const std::int32_t m = platform.processors();
  const Time T = ts.hyperperiod();

  std::vector<std::int32_t> rank(static_cast<std::size_t>(n), 0);
  if (options.policy == Policy::kFixedPriority) {
    if (static_cast<std::int32_t>(options.priority.size()) != n) {
      throw ValidationError("priority vector size must equal the task count");
    }
    std::vector<bool> seen(static_cast<std::size_t>(n), false);
    for (std::size_t pos = 0; pos < options.priority.size(); ++pos) {
      const TaskId i = options.priority[pos];
      if (i < 0 || i >= n || seen[static_cast<std::size_t>(i)]) {
        throw ValidationError("priority vector must be a permutation");
      }
      seen[static_cast<std::size_t>(i)] = true;
      rank[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(pos);
    }
  }

  std::vector<Backlog> backlog(static_cast<std::size_t>(n));
  SimResult result;

  // The window [record_from, record_from + T) most recently simulated is
  // kept as a candidate cyclic witness.
  rt::Schedule window(T, m);
  auto reset_window = [&] { window = rt::Schedule(T, m); };

  // Boundary states (only boundaries >= max offset are meaningful: before
  // that, first jobs are still being released).
  const Time first_boundary =
      ((ts.max_offset() + T - 1) / T) * T;  // smallest multiple of T >= Omax
  std::map<std::vector<Backlog>, Time> seen_states;

  std::vector<TaskId> active;
  active.reserve(static_cast<std::size_t>(n));

  const Time horizon = (options.max_hyperperiods + first_boundary / T) * T;
  for (Time t = 0; t < horizon; ++t) {
    // Boundary bookkeeping.  Snapshots are normalized to the boundary time
    // (relative deadlines), otherwise carried-over jobs of offset tasks
    // would make states at successive boundaries trivially distinct.
    if (t % T == 0) {
      if (t >= first_boundary) {
        std::vector<Backlog> snapshot = backlog;
        for (Backlog& b : snapshot) {
          if (b.abs_deadline >= 0) b.abs_deadline -= t;
        }
        auto [it, inserted] = seen_states.try_emplace(std::move(snapshot), t);
        if (!inserted) {
          result.status = SimStatus::kSchedulable;
          if (t - it->second == T) {
            // Steady state with period exactly T: the last window is a
            // valid cyclic schedule.
            result.schedule = std::move(window);
          }
          return result;
        }
      }
      reset_window();
    }

    // Releases.
    for (TaskId i = 0; i < n; ++i) {
      const rt::Task& task = ts[i];
      if (t >= task.offset() && (t - task.offset()) % task.period() == 0) {
        Backlog& b = backlog[static_cast<std::size_t>(i)];
        MGRTS_ASSERT(b.abs_deadline < 0 || b.remaining == 0);
        b.abs_deadline = t + task.deadline();
        b.remaining = task.wcet();
      }
    }

    // Pick up to m active jobs by policy priority.
    active.clear();
    for (TaskId i = 0; i < n; ++i) {
      if (backlog[static_cast<std::size_t>(i)].remaining > 0) {
        active.push_back(i);
      }
    }
    const auto by_priority = [&](TaskId a, TaskId b) {
      if (options.policy == Policy::kEdf) {
        const Time da = backlog[static_cast<std::size_t>(a)].abs_deadline;
        const Time db = backlog[static_cast<std::size_t>(b)].abs_deadline;
        if (da != db) return da < db;
        return a < b;
      }
      return rank[static_cast<std::size_t>(a)] <
             rank[static_cast<std::size_t>(b)];
    };
    std::sort(active.begin(), active.end(), by_priority);
    const auto run_count =
        std::min<std::size_t>(active.size(), static_cast<std::size_t>(m));
    for (std::size_t k = 0; k < run_count; ++k) {
      const TaskId i = active[k];
      --backlog[static_cast<std::size_t>(i)].remaining;
      window.set(t % T, static_cast<ProcId>(k), i);
    }

    // Deadline checks at the end of the slot.
    for (TaskId i = 0; i < n; ++i) {
      Backlog& b = backlog[static_cast<std::size_t>(i)];
      if (b.abs_deadline < 0) continue;
      if (b.remaining > 0 && b.abs_deadline <= t + 1) {
        result.status = SimStatus::kDeadlineMiss;
        result.miss_time = b.abs_deadline;
        result.miss_task = i;
        return result;
      }
      if (b.remaining == 0 && b.abs_deadline <= t + 1) {
        b = Backlog{};  // job retired
      }
    }
  }

  result.status = SimStatus::kNoConvergence;
  return result;
}

}  // namespace mgrts::sim
