#include "analysis/tests.hpp"

#include <queue>
#include <vector>

#include "support/assert.hpp"
#include "support/error.hpp"
#include "support/math.hpp"

namespace mgrts::analysis {

using rt::TaskId;
using rt::Time;
using support::Rational;

const char* to_string(TestVerdict verdict) {
  switch (verdict) {
    case TestVerdict::kFeasible: return "feasible";
    case TestVerdict::kInfeasible: return "infeasible";
    case TestVerdict::kUnknown: return "unknown";
  }
  return "?";
}

namespace {

void require_constrained(const rt::TaskSet& ts) {
  if (!ts.is_constrained()) {
    throw ValidationError(
        "analysis tests expect a constrained-deadline system; expand clones "
        "first (TaskSet::to_constrained)");
  }
}

}  // namespace

TestResult utilization_test(const rt::TaskSet& ts, std::int32_t processors) {
  require_constrained(ts);
  MGRTS_EXPECTS(processors >= 1);
  TestResult result;
  result.test = "utilization";
  if (ts.exceeds_capacity(processors)) {
    const Rational u = ts.utilization();
    result.verdict = TestVerdict::kInfeasible;
    result.detail = "U = " + std::to_string(u.num()) + "/" +
                    std::to_string(u.den()) + " > m = " +
                    std::to_string(processors);
  }
  return result;
}

TestResult window_fit_test(const rt::TaskSet& ts, std::int32_t processors) {
  require_constrained(ts);
  MGRTS_EXPECTS(processors >= 1);
  TestResult result;
  result.test = "window-fit";
  for (TaskId i = 0; i < ts.size(); ++i) {
    if (ts[i].wcet() > ts[i].deadline()) {
      result.verdict = TestVerdict::kInfeasible;
      result.detail = ts[i].name + ": C = " + std::to_string(ts[i].wcet()) +
                      " > D = " + std::to_string(ts[i].deadline()) +
                      " cannot fit its window at unit speed";
      return result;
    }
  }
  return result;
}

TestResult forced_demand_test(const rt::TaskSet& ts, std::int32_t processors,
                              std::int64_t max_events) {
  require_constrained(ts);
  MGRTS_EXPECTS(processors >= 1);
  TestResult result;
  result.test = "forced-demand";

  // Jobs of task i end their windows at L = O_i + D_i + k*T_i.  Any job
  // whose window lies inside [0, L) must receive its full C_i there, so
  //     demand(L) = sum of C_i over window-ends <= L   must be <= m * L.
  // Walk the event points in ascending order with a min-heap; demand is a
  // step function, so checking at each event point is exact.
  struct Event {
    Time at;
    TaskId task;
  };
  struct LaterFirst {
    bool operator()(const Event& a, const Event& b) const {
      return a.at > b.at;
    }
  };
  std::priority_queue<Event, std::vector<Event>, LaterFirst> heap;
  for (TaskId i = 0; i < ts.size(); ++i) {
    heap.push(Event{ts[i].offset() + ts[i].deadline(), i});
  }

  const Time horizon = ts.hyperperiod();
  Time demand = 0;
  std::int64_t steps = 0;
  while (!heap.empty() && steps < max_events) {
    const Event event = heap.top();
    heap.pop();
    ++steps;
    if (event.at > horizon) break;
    demand += ts[event.task].wcet();
    if (demand > static_cast<Time>(processors) * event.at) {
      result.verdict = TestVerdict::kInfeasible;
      result.detail = "demand(" + std::to_string(event.at) + ") = " +
                      std::to_string(demand) + " > m*L = " +
                      std::to_string(processors * event.at);
      return result;
    }
    const Time next = event.at + ts[event.task].period();
    if (next <= horizon) heap.push(Event{next, event.task});
  }
  return result;
}

TestResult density_test(const rt::TaskSet& ts, std::int32_t processors) {
  require_constrained(ts);
  MGRTS_EXPECTS(processors >= 1);
  TestResult result;
  result.test = "density";
  // delta = sum C_i / D_i, exact.  C_i > D_i makes a single term exceed 1;
  // the window-fit test reports those as infeasible, so bail out here.
  for (TaskId i = 0; i < ts.size(); ++i) {
    if (ts[i].wcet() > ts[i].deadline()) return result;  // unknown
  }
  Rational density;
  for (TaskId i = 0; i < ts.size(); ++i) {
    density += Rational(ts[i].wcet(), ts[i].deadline());
  }
  if (density <= processors) {
    result.verdict = TestVerdict::kFeasible;
    result.detail = "total density " + std::to_string(density.num()) + "/" +
                    std::to_string(density.den()) + " <= m = " +
                    std::to_string(processors);
  }
  return result;
}

TestResult quick_decide(const rt::TaskSet& ts, std::int32_t processors) {
  // Cheapest first; the first decisive test wins.
  if (auto r = window_fit_test(ts, processors);
      r.verdict != TestVerdict::kUnknown) {
    return r;
  }
  if (auto r = utilization_test(ts, processors);
      r.verdict != TestVerdict::kUnknown) {
    return r;
  }
  if (auto r = density_test(ts, processors);
      r.verdict != TestVerdict::kUnknown) {
    return r;
  }
  if (auto r = forced_demand_test(ts, processors);
      r.verdict != TestVerdict::kUnknown) {
    return r;
  }
  TestResult unknown;
  unknown.test = "quick-decide";
  return unknown;
}

}  // namespace mgrts::analysis
