// Analytical schedulability tests for identical platforms: constant- or
// near-linear-time filters that decide many instances without any search.
//
// The paper filters instances only by the trivial necessary condition
// r = U/m <= 1 (§VII-C) and leaves everything else to the CSP solvers.
// Real deployments run cheap analytical tests first; this module provides
// the classic ones that are *exact in one direction*:
//
//   necessary (violated => infeasible):
//     * utilization:   U <= m                          (the paper's filter)
//     * per-task fit:  C_i <= D_i * s_max              (a job must fit its
//                      own window; s_max = 1 on identical platforms)
//     * forced demand: for every prefix [0, L), the total work of jobs
//                      whose windows lie fully inside must not exceed m*L
//                      (a demand-bound-function argument)
//
//   sufficient (satisfied => feasible):
//     * density:       sum_i C_i / D_i <= m.  A fluid schedule giving each
//                      job C_i/D_i per window slot never exceeds capacity;
//                      by max-flow integrality (see flow/oracle.hpp) an
//                      integral schedule then exists too.
//
// `quick_decide` chains them; `kUnknown` means "run a real solver".
// Soundness of all four directions is property-tested against the flow
// oracle.
#pragma once

#include <cstdint>
#include <string>

#include "rt/platform.hpp"
#include "rt/task_set.hpp"

namespace mgrts::analysis {

enum class TestVerdict {
  kFeasible,    ///< proven feasible
  kInfeasible,  ///< proven infeasible
  kUnknown,     ///< the test cannot decide this instance
};

[[nodiscard]] const char* to_string(TestVerdict verdict);

struct TestResult {
  TestVerdict verdict = TestVerdict::kUnknown;
  const char* test = "";
  std::string detail;
};

/// Necessary: exact rational U <= m.
[[nodiscard]] TestResult utilization_test(const rt::TaskSet& ts,
                                          std::int32_t processors);

/// Necessary: every job must fit into its own window (C_i <= D_i on
/// identical platforms).
[[nodiscard]] TestResult window_fit_test(const rt::TaskSet& ts,
                                         std::int32_t processors);

/// Necessary: forced demand over prefixes [0, L).  Walks the window-end
/// event points in order (at most `max_events` of them) and reports
/// infeasible on the first L with demand(L) > m*L.
[[nodiscard]] TestResult forced_demand_test(const rt::TaskSet& ts,
                                            std::int32_t processors,
                                            std::int64_t max_events = 200'000);

/// Sufficient: total density sum C_i/D_i <= m (exact rational).
[[nodiscard]] TestResult density_test(const rt::TaskSet& ts,
                                      std::int32_t processors);

/// Runs the tests cheapest-first and returns the first decisive answer.
[[nodiscard]] TestResult quick_decide(const rt::TaskSet& ts,
                                      std::int32_t processors);

}  // namespace mgrts::analysis
