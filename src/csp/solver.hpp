// Generic finite-domain CSP solver: trail-based backtracking search with
// event-driven constraint propagation.
//
// This is the repo's stand-in for the Choco solver the paper uses for CSP1
// (§VII): a *generic* engine that consumes a declarative model — variables,
// domains, propagators — and searches with configurable variable/value
// heuristics, randomized tie-breaking and Luby restarts (Choco's default
// search is randomized, which the paper observes as run-to-run variance in
// §VII-B; seed the options to reproduce any particular run).
//
// Architecture:
//   * Domain64 per variable (<= 64 values, 16 bytes);
//   * a trail of (variable, previous mask) pairs for O(1) backtracking;
//   * propagators subscribe to their scope; domain changes push them onto a
//     FIFO queue; propagation runs to fixpoint or failure;
//   * dom/wdeg failure weights are maintained incrementally;
//   * search is iterative (explicit frame stack), so model size — not
//     recursion depth — is the only memory bound.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "csp/domain.hpp"
#include "csp/options.hpp"
#include "support/rng.hpp"

namespace mgrts::csp {

using VarId = std::int32_t;

class Solver;

enum class PropResult { kOk, kFail };

/// Base class for constraint propagators.  Propagators are stateless with
/// respect to the search (they may precompute static data at construction):
/// `propagate` must prune only through Solver::fix / Solver::remove so every
/// change is trailed.
class Propagator {
 public:
  virtual ~Propagator() = default;

  /// Runs the propagator to its fixpoint; kFail signals a conflict.
  virtual PropResult propagate(Solver& solver) = 0;

  /// Variables whose domain changes wake this propagator.
  [[nodiscard]] virtual const std::vector<VarId>& scope() const = 0;

  /// Human-readable kind, for debugging and stats.
  [[nodiscard]] virtual const char* name() const = 0;

 private:
  friend class Solver;
  std::int32_t id_ = -1;
  bool queued_ = false;
  std::int64_t weight_ = 1;  ///< wdeg failure weight
};

struct SolverLimits {
  /// Hard cap on variable count; exceeding it throws ResourceError.  This is
  /// the explicit analogue of Choco running out of memory on large CSP1
  /// models (Table IV); adapters report it as SolveStatus::kMemoryLimit.
  std::int64_t max_variables = 4'000'000;
};

class Solver {
 public:
  explicit Solver(SolverLimits limits = {});
  ~Solver();

  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  // ---- model building -----------------------------------------------

  /// New variable with domain {lo..hi} (hi - lo < 64).
  VarId add_variable(Value lo, Value hi);

  [[nodiscard]] std::int64_t variable_count() const noexcept {
    return static_cast<std::int64_t>(domains_.size());
  }

  [[nodiscard]] const Domain64& domain(VarId v) const {
    return domains_[static_cast<std::size_t>(v)];
  }

  /// Takes ownership of a propagator.  Call before solve().
  void add(std::unique_ptr<Propagator> propagator);

  /// Root-level pruning while building the model (e.g. CSP1 constraint (2),
  /// out-of-window zeroing).  Returns false when the model becomes
  /// trivially inconsistent.
  bool post_fix(VarId v, Value a);
  bool post_remove(VarId v, Value a);

  // ---- propagator API (valid during propagation) ----------------------

  PropResult fix(VarId v, Value a);
  PropResult remove(VarId v, Value a);

  // ---- solving ---------------------------------------------------------

  /// Runs the search.  May be called once per Solver instance.
  [[nodiscard]] SolveOutcome solve(const SearchOptions& options);

 private:
  struct Frame {
    VarId var = -1;
    std::size_t trail_mark = 0;
    std::uint64_t tried = 0;  ///< mask of value offsets already attempted
    VarId lex_hint = 0;       ///< scan start for the lex heuristic
  };

  void trail_push(VarId v, std::uint64_t old_mask);
  void backtrack_to(std::size_t mark);
  void sync_membership(VarId v);
  void schedule_watchers(VarId v);
  bool propagate_queue();         // false on conflict
  void clear_queue();
  void bump_failure(std::int32_t prop_id);

  [[nodiscard]] VarId select_variable(const SearchOptions& options,
                                      VarId lex_hint, support::Rng& rng) const;
  [[nodiscard]] Value select_value(const SearchOptions& options, VarId var,
                                   std::uint64_t tried,
                                   support::Rng& rng) const;
  [[nodiscard]] bool all_assigned() const noexcept {
    return unfixed_size_ == 0;
  }

  void build_watch_lists();

  SolverLimits limits_;
  std::vector<Domain64> domains_;
  std::vector<std::unique_ptr<Propagator>> propagators_;

  // CSR watch lists: watchers of var v live in
  // watch_data_[watch_offset_[v] .. watch_offset_[v+1]).
  std::vector<std::int32_t> watch_offset_;
  std::vector<std::int32_t> watch_data_;
  bool frozen_ = false;

  // Sparse set of variables with domain size > 1.
  std::vector<VarId> unfixed_list_;
  std::vector<std::int32_t> unfixed_pos_;
  std::int64_t unfixed_size_ = 0;

  std::vector<std::int64_t> var_wdeg_;

  struct TrailEntry {
    VarId var;
    std::uint64_t old_mask;
  };
  std::vector<TrailEntry> trail_;

  std::vector<std::int32_t> queue_;
  std::size_t queue_head_ = 0;

  SolveStats stats_;
  std::int32_t failing_prop_ = -1;
};

}  // namespace mgrts::csp
