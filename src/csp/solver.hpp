// Generic finite-domain CSP solver: trail-based backtracking search with
// event-driven, incremental constraint propagation.
//
// This is the repo's stand-in for the Choco solver the paper uses for CSP1
// (§VII): a *generic* engine that consumes a declarative model — variables,
// domains, propagators — and searches with configurable variable/value
// heuristics, randomized tie-breaking and Luby restarts (Choco's default
// search is randomized, which the paper observes as run-to-run variance in
// §VII-B; seed the options to reproduce any particular run).
//
// Architecture (see DESIGN.md for the full discussion):
//   * Domain64 per variable (<= 64 values, 16 bytes);
//   * a trail of (variable, previous mask) pairs plus a typed trail of
//     (slot, previous value) pairs for propagator state, both unwound in
//     O(1) per entry on backtracking;
//   * domain changes are split into kPruned and kFixed events with separate
//     CSR watch lists; each watch entry carries the scope position, so a
//     propagator's advisor (`on_event`) can update trailed counters in O(1)
//     and decide whether the propagator needs to run at all;
//   * woken propagators land in a three-level priority queue (cheap pending
//     lists, then counters, then global rules); propagation drains the
//     cheapest level first and re-checks it after every run, so expensive
//     propagators only fire on states the cheap ones could not refute;
//   * dom/wdeg failure weights are maintained incrementally;
//   * while nogood shrinking is active every trail entry carries a *reason*
//     (the decision or propagator that caused it), forming an implication
//     trail; each entry additionally records its decision depth and the
//     previous entry on the same variable, so the trail doubles as a
//     literal-based implication graph (every entry *is* a csp::Lit becoming
//     true).  Conflict analysis walks it backwards — either keeping the
//     reachable decisions (NogoodLearn::kDecisionSet, DESIGN.md §10) or
//     resolving to the first unique implication point and emitting the
//     implied-literal frontier (NogoodLearn::kUip1, DESIGN.md §11).  With
//     recording off the reason slot is a dead constant and search trees are
//     bit-identical to a reason-free build;
//   * search is iterative (explicit frame stack), so model size — not
//     recursion depth — is the only memory bound.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "csp/domain.hpp"
#include "csp/literal.hpp"
#include "csp/options.hpp"
#include "support/rng.hpp"

namespace mgrts::csp {

/// Index into the solver's trailed propagator-state array (see
/// Solver::alloc_state).
using StateSlot = std::int32_t;

class Solver;
class NogoodStore;

/// Luby restart sequence, 1-based: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
/// Iterative O(log i): strip completed-prefix subtrees until i sits at the
/// end of one (i + 1 a power of two), whose value is (i + 1) / 2.  Exposed
/// for the closed-form cross-check test.
[[nodiscard]] std::int64_t luby(std::int64_t i);

enum class PropResult { kOk, kFail };

// ---- trail reasons (DESIGN.md §10) -----------------------------------
//
// Every trail entry records why the change happened, encoded in one int32:
//   reason >= 0                 — the propagator with that id pruned; its
//                                 scope() is the dependency set;
//   reason == kReasonDecision   — a search decision fixed the variable;
//   reason <= kReasonExplicit   — an explicit reason: index
//                                 (kReasonExplicit - reason) into the
//                                 solver's reason-var pool, for propagators
//                                 whose pruning depends on fewer variables
//                                 than their scope (clause replays, pair
//                                 rules, broadcast-from-one-fix);
//   reason == kReasonNone       — tracking was off when the entry was
//                                 written (never seen above the root mark
//                                 while tracking is on).
inline constexpr std::int32_t kReasonNone = -1;
inline constexpr std::int32_t kReasonDecision = -2;
inline constexpr std::int32_t kReasonExplicit = -3;

/// Which domain events wake a propagator.  A change that leaves the domain
/// with one value is a *fix* event; any other narrowing is a *prune* event.
/// kFixedOnly watchers never see prune events — right for propagators whose
/// pruning logic only reads fixed variables (at-most-one, all-different,
/// symmetry chains).
enum class WakePolicy : std::uint8_t {
  kAnyChange,  ///< wake on prunes and fixes
  kFixedOnly,  ///< wake only when a scope variable becomes fixed
};

/// Queue level; lower levels run first and are re-checked after every
/// propagator execution, so keep cheap propagators low.
enum class PropPriority : std::uint8_t {
  kFast = 0,     ///< O(changes): pending-list propagators
  kCounter = 1,  ///< O(1) checks on trailed counters, rare O(scope) sweeps
  kGlobal = 2,   ///< O(scope) or worse per run
};

inline constexpr int kPriorityLevels = 3;

/// Base class for constraint propagators.  Propagators may keep search-state
/// only in solver-trailed slots (alloc_state/set_state) or in stale-tolerant
/// pending buffers: `propagate` must prune only through Solver::fix /
/// Solver::remove so every change is trailed.
class Propagator {
 public:
  virtual ~Propagator() = default;

  /// Runs the propagator to its fixpoint; kFail signals a conflict.
  virtual PropResult propagate(Solver& solver) = 0;

  /// Variables whose domain changes wake this propagator.
  [[nodiscard]] virtual const std::vector<VarId>& scope() const = 0;

  /// Variables whose dom/wdeg weight is bumped when this propagator fails;
  /// defaults to the full scope.  Propagators multiplexing many constraints
  /// (the nogood store) narrow it to the constraint that actually failed.
  [[nodiscard]] virtual const std::vector<VarId>& failure_scope() const {
    return scope();
  }

  /// Human-readable kind, for debugging and stats.
  [[nodiscard]] virtual const char* name() const = 0;

  /// Called once from Solver::add; allocate trailed state slots here.
  virtual void attach(Solver& solver) { static_cast<void>(solver); }

  /// Event class this propagator subscribes to (uniform over its scope).
  [[nodiscard]] virtual WakePolicy wake_policy() const {
    return WakePolicy::kAnyChange;
  }

  [[nodiscard]] virtual PropPriority priority() const {
    return PropPriority::kGlobal;
  }

  /// Advisor: runs synchronously on every subscribed event on scope()[pos]
  /// (old_mask is the domain mask before the change; the current domain is
  /// solver.domain(scope()[pos])).  Updates incremental state and returns
  /// whether the propagator should be queued.  Must not prune any domain.
  virtual bool on_event(Solver& solver, std::int32_t pos,
                        std::uint64_t old_mask) {
    static_cast<void>(solver);
    static_cast<void>(pos);
    static_cast<void>(old_mask);
    return true;
  }

 private:
  friend class Solver;
  std::int32_t id_ = -1;
  bool queued_ = false;
  std::uint8_t priority_cache_ = 2;  ///< priority(), cached at add()
  std::int64_t weight_ = 1;          ///< wdeg failure weight
};

struct SolverLimits {
  /// Hard cap on variable count; exceeding it throws ResourceError.  This is
  /// the explicit analogue of Choco running out of memory on large CSP1
  /// models (Table IV); adapters report it as SolveStatus::kMemoryLimit.
  std::int64_t max_variables = 4'000'000;
};

class Solver {
 public:
  explicit Solver(SolverLimits limits = {});
  ~Solver();

  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  // ---- model building -----------------------------------------------

  /// New variable with domain {lo..hi} (hi - lo < 64).
  VarId add_variable(Value lo, Value hi);

  [[nodiscard]] std::int64_t variable_count() const noexcept {
    return static_cast<std::int64_t>(domains_.size());
  }

  [[nodiscard]] const Domain64& domain(VarId v) const {
    return domains_[static_cast<std::size_t>(v)];
  }

  /// Takes ownership of a propagator.  Call before solve().
  void add(std::unique_ptr<Propagator> propagator);

  /// Root-level pruning while building the model (e.g. CSP1 constraint (2),
  /// out-of-window zeroing).  Returns false when the model becomes
  /// trivially inconsistent.
  bool post_fix(VarId v, Value a);
  bool post_remove(VarId v, Value a);

  // ---- propagator API (valid during propagation) ----------------------

  PropResult fix(VarId v, Value a);
  PropResult remove(VarId v, Value a);

  /// Trailed propagator state: slots are allocated in attach(), survive
  /// into search, and are restored alongside the domain trail on
  /// backtracking.  Reads are O(1); writes trail the previous value.
  StateSlot alloc_state(std::int64_t initial);
  [[nodiscard]] std::int64_t state(StateSlot slot) const {
    return pstate_[static_cast<std::size_t>(slot)];
  }
  void set_state(StateSlot slot, std::int64_t value);

  /// True when the active solve runs PropagationMode::kScratch; incremental
  /// propagators then recompute from their full scope instead of trusting
  /// trailed counters (differential-testing reference).
  [[nodiscard]] bool scratch_mode() const noexcept { return scratch_; }

  /// The decision depth (1-based; 0 = root) at which `lit` became entailed
  /// by the current domain state, or -1 when it is not entailed.  Walks the
  /// per-variable trail chain backwards to the first entry whose pre-change
  /// mask no longer entails the literal — exact, O(changes on the
  /// variable).  The chain is only threaded while the reason trail is
  /// active; without it every entailed literal reports the root depth.
  /// Used by the nogood store to recompute a clause's block LBD from
  /// current depths when a replay fires (DESIGN.md §11).
  [[nodiscard]] std::int32_t entailment_depth(Lit lit) const;

  /// Narrowed reason scope (DESIGN.md §10): until end_explicit_reason, the
  /// running propagator's fix/remove calls are explained by `vars` instead
  /// of its full scope — use when a pruning provably depends on fewer
  /// variables (a violated clause's literals, one fixed broadcast source, a
  /// chain pair).  No-ops while reason tracking is off; one level only (no
  /// nesting).  The span is committed to the reason pool lazily, at the
  /// first trailed change it explains — a window that prunes nothing costs
  /// nothing — so `vars` must stay alive until end_explicit_reason.
  void begin_explicit_reason(const VarId* vars, std::int32_t n);
  void end_explicit_reason();

  // ---- solving ---------------------------------------------------------

  /// Runs the search.  May be called once per Solver instance.
  [[nodiscard]] SolveOutcome solve(const SearchOptions& options);

 private:
  /// Joint position in the domain, propagator-state and explicit-reason
  /// trails.
  struct Mark {
    std::size_t domain = 0;
    std::size_t state = 0;
    std::size_t reasons = 0;  ///< explicit-reason count (0 unless tracking)
  };

  struct Frame {
    VarId var = -1;
    Mark mark;
    std::uint64_t tried = 0;  ///< mask of value offsets already attempted
    VarId lex_hint = 0;       ///< scan start for the lex heuristic
  };

  /// One CSR watch entry: propagator `pid` watches scope position `pos`.
  struct Watch {
    std::int32_t pid;
    std::int32_t pos;
  };

  struct WatchList {
    std::vector<std::int32_t> offset;  ///< per-variable CSR offsets
    std::vector<Watch> data;
  };

  [[nodiscard]] Mark mark() const noexcept {
    return Mark{trail_.size(), state_trail_.size(), reason_offset_.size() - 1};
  }

  /// One lazy selection-heap entry: the (size, wdeg) pair the variable had
  /// when pushed.  Entries are never updated in place — improvements push a
  /// fresh entry and stale ones are discarded or refreshed at pop time.
  struct HeapEntry {
    std::int64_t size;
    std::int64_t wdeg;
    VarId var;

    /// std::*_heap comparator ("this sinks below o"): worse size/wdeg
    /// fractions sink, equal fractions sink the larger variable id — so the
    /// heap front is exactly the scan's deterministic pick.  Fractions are
    /// compared by cross multiplication (size <= 64, products fit easily).
    [[nodiscard]] bool operator<(const HeapEntry& o) const noexcept {
      const std::int64_t lhs = size * o.wdeg;
      const std::int64_t rhs = o.size * wdeg;
      if (lhs != rhs) return lhs > rhs;
      return var > o.var;
    }
  };

  void trail_push(VarId v, std::uint64_t old_mask);
  void backtrack_to(const Mark& mark);
  void sync_membership(VarId v);
  void notify_watchers(VarId v, std::uint64_t old_mask, bool became_fixed);
  void wake_list(const WatchList& list, VarId v, std::uint64_t old_mask);
  /// Direct (non-virtual) event delivery to the solve-owned nogood store —
  /// the store watches *every* variable, so routing it through the CSR
  /// lists would add one entry per variable per list; instead the lists
  /// skip it and notify_watchers calls it explicitly, preserving the
  /// added-last ordering the CSR walk gave it.
  void notify_store(VarId v, std::uint64_t old_mask);
  void enqueue(Propagator& p);
  bool propagate_queue();         // false on conflict
  void clear_queue();
  void bump_failure(std::int32_t prop_id);

  // ---- selection heap (SelectionMode::kHeap; DESIGN.md §7) ------------
  [[nodiscard]] std::int64_t heap_key_wdeg(VarId v) const noexcept;
  void heap_push(VarId v);
  void heap_rebuild();
  [[nodiscard]] VarId select_from_heap(const SearchOptions& options,
                                       support::Rng& rng);

  [[nodiscard]] VarId select_variable(const SearchOptions& options,
                                      VarId lex_hint, support::Rng& rng);
  [[nodiscard]] Value select_value(const SearchOptions& options, VarId var,
                                   std::uint64_t tried,
                                   support::Rng& rng) const;
  [[nodiscard]] bool all_assigned() const noexcept {
    return unfixed_size_ == 0;
  }

  void build_watch_lists();

  SolverLimits limits_;
  std::vector<Domain64> domains_;
  std::vector<std::unique_ptr<Propagator>> propagators_;

  // Per-event watch lists: watchers of var v live in
  // data[offset[v] .. offset[v+1]).  kAnyChange subscribers are in
  // any_watch_ (walked on every change); kFixedOnly subscribers are in
  // fixed_watch_ (walked only when the change fixed the variable).
  WatchList any_watch_;
  WatchList fixed_watch_;
  bool frozen_ = false;

  // Sparse set of variables with domain size > 1.
  std::vector<VarId> unfixed_list_;
  std::vector<std::int32_t> unfixed_pos_;
  std::int64_t unfixed_size_ = 0;

  std::vector<std::int64_t> var_wdeg_;

  // Lazy selection heap: min-heap over (size/wdeg fraction, var id) with
  // stale entries.  Invariant while heap_active_: every unfixed variable
  // has at least one entry whose key is <= its current key (improvements —
  // size drops, wdeg bumps, re-insertions — always push; regressions only
  // go stale and are refreshed at pop).
  std::vector<HeapEntry> heap_;
  std::vector<std::int64_t> heap_seen_;  ///< tie-dedup stamps per variable
  std::vector<VarId> heap_ties_;         ///< random-tie scratch (no realloc)
  std::int64_t heap_stamp_ = 0;
  bool heap_active_ = false;
  bool heap_use_wdeg_ = false;

  struct TrailEntry {
    std::uint64_t old_mask;
    VarId var;
    std::int32_t reason;  ///< kReasonNone unless tracking (DESIGN.md §10)
    std::int32_t depth;   ///< decision depth of the change (0 = root)
    /// Index of the previous trail entry on the same variable (-1: none);
    /// together with last_entry_ this threads a per-variable change
    /// history through the trail — the implication graph's edges.
    std::int32_t prev_on_var;
  };
  std::vector<TrailEntry> trail_;
  /// Newest trail entry per variable (-1: untouched); restored alongside
  /// the trail via TrailEntry::prev_on_var.
  std::vector<std::int32_t> last_entry_;
  /// Current decision depth (== open frame count), stamped into every
  /// trail entry; maintained by solve() at frame pushes/pops and restarts.
  std::int32_t cur_depth_ = 0;

  // ---- reason tracking (active only while track_reasons_) --------------
  // Explicit reasons live in a CSR pool: reason i spans reason_vars_
  // [reason_offset_[i], reason_offset_[i+1]).  The pool unwinds with the
  // trail (Mark::reasons), so entries never outlive the trail entries that
  // reference them.
  bool track_reasons_ = false;
  std::int32_t active_reason_ = kReasonNone;
  std::int32_t saved_reason_ = kReasonNone;  ///< begin/end_explicit_reason
  /// Pending explicit span, committed to the pool by the first trail_push
  /// it explains (len 0 = none; always 0 while tracking is off).
  const VarId* pending_reason_vars_ = nullptr;
  std::int32_t pending_reason_len_ = 0;
  std::vector<std::int32_t> reason_offset_ = {0};
  std::vector<VarId> reason_vars_;
  // Epoch-stamped "relevant" set of the conflict-analysis walk.
  std::vector<std::int64_t> relevant_stamp_;
  std::int64_t relevant_epoch_ = 0;

  // ---- 1-UIP walk state (epoch-stamped; sized only while tracking) -----
  /// Unvisited conflict-level suffix entries per variable (zeroed after
  /// every walk); feeds the pending-resolvent counter.
  std::vector<std::int32_t> uip_count_;
  /// Domain-mask overlay of the newest-first walk: the domain each visited
  /// entry saw *after* its change (walk_stamp_ keys validity).
  std::vector<std::uint64_t> walk_mask_;
  std::vector<std::int64_t> walk_stamp_;
  /// Root-level domain bounds (refreshed when the root mark advances);
  /// entry_literal emits >=/<= literals exactly when they are equivalent
  /// to the removal literal relative to these.
  std::vector<Value> root_min_;
  std::vector<Value> root_max_;
  /// analyze_uip output: the learned clause, ascending depth, UIP last.
  std::vector<Lit> uip_lits_;
  std::vector<std::int32_t> uip_depths_;
  /// Frontier-form scratch (recursive minimization, DESIGN.md §15): the
  /// implied-literal frontier before the decision-form expansion, as
  /// (literal, depth, trail index) triples in trail order.
  struct FrontierLit {
    Lit lit;
    std::int32_t depth;
    std::int32_t trail_idx;
  };
  std::vector<FrontierLit> frontier_;
  /// Per-trail-entry memo of the self-subsumption recursion ("is this
  /// entry's reason transitively covered by the Phase-A mark set?"),
  /// epoch-stamped so no per-conflict clearing is needed.
  std::vector<std::int64_t> min_stamp_;
  std::vector<std::uint8_t> min_ok_;
  /// Clause variables of the in-flight UIP assertion; must outlive the
  /// explicit-reason window of the assert (see backjump in solve()).
  std::vector<VarId> assert_vars_;
  /// Strictly-ascending unique depths for block_lbd (the frontier form can
  /// carry several literals at one depth).
  std::vector<std::int32_t> lbd_depths_;

  /// Conflict analysis (DESIGN.md §10): stamps every variable the conflict
  /// transitively depends on — seeded with failing_prop_'s failure scope,
  /// closed by walking trail entries in (root_trail, end) newest-first and
  /// expanding each relevant entry's reason.  Must run before the conflict
  /// is backtracked.  Returns false (analysis unusable, caller falls back
  /// to the full decision set) when an untracked entry is met.
  [[nodiscard]] bool analyze_conflict(std::size_t root_trail);

  /// Expands a non-decision entry's reason — the propagator scope or the
  /// explicit CSR span — through `mark` (one call per dependency
  /// variable); false on an untracked entry (analysis unusable).  Shared
  /// by the decision-set and 1-UIP walks so the reason encoding is decoded
  /// in exactly one place.
  template <typename MarkFn>
  [[nodiscard]] bool expand_reason(const TrailEntry& e, MarkFn&& mark);

  // ---- 1-UIP resolution walk (DESIGN.md §11) ---------------------------

  /// Marks `v` relevant for the active walk epoch; during the conflict-
  /// level phase the pending counter absorbs v's unvisited suffix entries.
  void uip_mark(VarId v, std::int64_t& pending);
  /// The literal entry `e` made true: a fix is (var == v); a single-value
  /// removal is (var != a), emitted as the equivalent bound literal
  /// (var >= a+1 / var <= a-1) when `a` is the variable's root min/max.
  [[nodiscard]] Lit entry_literal(const TrailEntry& e,
                                  std::uint64_t post_mask) const;

  /// True 1-UIP conflict analysis: resolves the conflict over the
  /// implication trail, stopping at the first unique implication point of
  /// the conflict level ([level_start, end) of the trail) and keeping the
  /// reachable decisions below it.  Fills uip_lits_/uip_depths_ (ascending
  /// depth, the UIP literal last) and returns true; false falls back to
  /// decision-set recording (untracked entry, or no conflict-level
  /// dependency).  Must run before the conflict is backtracked, and after
  /// any same-conflict analyze_conflict call (it reuses the stamp epoch).
  /// With `minimize` the walk additionally builds the implied-literal
  /// frontier form, prunes it by recursive self-subsumption, and keeps
  /// whichever of the two forms is shorter (DESIGN.md §15) — so the
  /// emitted clause is still never longer than the decision set.
  [[nodiscard]] bool analyze_uip(std::size_t root_trail,
                                 std::size_t level_start, bool minimize);

  /// Refreshes root_min_/root_max_ from the current (root-level) domains;
  /// called whenever the root mark advances while 1-UIP learning is on —
  /// entry_literal's bound-form test is relative to these.
  void snapshot_root_bounds();

  // ---- recursive clause minimization (DESIGN.md §15) -------------------

  /// True when trail entry `idx`'s reason is transitively covered by the
  /// Phase-A relevant set: every antecedent entry either sits on a marked
  /// variable (its literal is in the frontier clause) or is itself
  /// recursively covered.  Decisions are never covered.  Memoized per
  /// trail entry (min_stamp_/min_ok_); `depth` bounds the recursion.
  [[nodiscard]] bool reason_covered(std::size_t idx, std::size_t root_trail,
                                    int depth);

  /// Sörensson-style self-subsumption over frontier_: drops literals
  /// implied by stronger same-variable literals, then literals whose
  /// reasons are covered (reason_covered).  Returns the number removed.
  std::int64_t minimize_frontier(std::size_t root_trail);

  // Trailed propagator state (incremental counters etc.).
  std::vector<std::int64_t> pstate_;
  struct StateTrailEntry {
    StateSlot slot;
    std::int64_t old_value;
  };
  std::vector<StateTrailEntry> state_trail_;

  // Priority buckets, each popped from `head`; a bucket is recycled (clear +
  // head = 0) the moment it drains, so no O(n) compaction is ever needed.
  std::array<std::vector<std::int32_t>, kPriorityLevels> queue_;
  std::array<std::size_t, kPriorityLevels> queue_head_{};

  bool scratch_ = false;
  bool legacy_ = false;
  SolveStats stats_;
  std::int32_t failing_prop_ = -1;

  // ---- per-propagator observability (SolveStats::propagators) ----------
  // Indexed by propagator id; wake/run/prune counters are always on (plain
  // array increments), the per-run clock reads only under prop_profile_.
  // Aggregated by Propagator::name() when a solve finishes.
  std::vector<std::int64_t> prop_wakes_;
  std::vector<std::int64_t> prop_runs_;
  std::vector<std::int64_t> prop_prunes_;
  std::vector<double> prop_seconds_;
  std::int32_t running_prop_ = -1;  ///< id inside propagate(), else -1
  bool prop_profile_ = false;

  /// Owned by propagators_ like any propagator; non-null while the active
  /// solve records nogoods (see solve()).
  NogoodStore* nogood_store_ = nullptr;
  /// Direct-delivery subscription of nogood_store_ (kAnyChange vs
  /// kFixedOnly); both false when the store is absent or externally added.
  bool store_direct_any_ = false;
  bool store_direct_fixed_ = false;
};

}  // namespace mgrts::csp
