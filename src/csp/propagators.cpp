#include "csp/propagators.hpp"

#include <algorithm>
#include <bit>
#include <limits>

#include "support/assert.hpp"

namespace mgrts::csp {

namespace {
/// Sort key for SymmetryChain: idle compares as +infinity.
constexpr std::int64_t kIdleKey = std::numeric_limits<std::int64_t>::max();

// Mask membership/fixedness tests live in Domain64's word-scan kernel layer
// (Domain64::mask_contains / mask_fixed / mask_le / mask_ge); the local
// copies this file used to carry are gone.
}  // namespace

// ---------------------------------------------------------------- AtMostOne

AtMostOneTrue::AtMostOneTrue(std::vector<VarId> vars)
    : vars_(std::move(vars)) {
  MGRTS_EXPECTS(!vars_.empty());
}

void AtMostOneTrue::attach(Solver& solver) {
  one_pos_ = solver.alloc_state(0);  // position + 1; 0 = no 1 seen yet
}

bool AtMostOneTrue::on_event(Solver& solver, std::int32_t pos,
                             std::uint64_t old_mask) {
  static_cast<void>(old_mask);
  // Fixed-only subscription: the domain just became a singleton.  Only a
  // variable fixed to 1 can trigger pruning here.
  if (solver.domain(vars_[static_cast<std::size_t>(pos)]).value() != 1) {
    return false;
  }
  pending_.push_back(pos);
  return true;
}

PropResult AtMostOneTrue::broadcast(Solver& solver, std::size_t one_pos) {
  // Every removal here follows from the one fixed variable alone, not the
  // whole scope — narrow the reason for conflict analysis (DESIGN.md §10).
  solver.begin_explicit_reason(&vars_[one_pos], 1);
  PropResult result = PropResult::kOk;
  for (std::size_t k = 0; k < vars_.size(); ++k) {
    if (k == one_pos) continue;
    if (solver.remove(vars_[k], 1) == PropResult::kFail) {
      result = PropResult::kFail;
      break;
    }
  }
  solver.end_explicit_reason();
  return result;
}

PropResult AtMostOneTrue::propagate(Solver& solver) {
  if (solver.scratch_mode()) {
    pending_.clear();
    VarId fixed_one = -1;
    for (const VarId v : vars_) {
      const Domain64& d = solver.domain(v);
      if (d.is_fixed() && d.value() == 1) {
        if (fixed_one >= 0) return PropResult::kFail;
        fixed_one = v;
      }
    }
    if (fixed_one < 0) return PropResult::kOk;
    // Same narrowed reason as broadcast(), so scratch and incremental runs
    // leave identical implication trails.
    solver.begin_explicit_reason(&fixed_one, 1);
    PropResult result = PropResult::kOk;
    for (const VarId v : vars_) {
      if (v == fixed_one) continue;
      if (solver.remove(v, 1) == PropResult::kFail) {
        result = PropResult::kFail;
        break;
      }
    }
    solver.end_explicit_reason();
    return result;
  }

  if (!primed_) {
    // First (root) run: derive the trailed state from the actual domains,
    // which post_fix/post_remove may have narrowed without events.
    primed_ = true;
    pending_.clear();
    std::size_t one = vars_.size();
    for (std::size_t k = 0; k < vars_.size(); ++k) {
      const Domain64& d = solver.domain(vars_[k]);
      if (d.is_fixed() && d.value() == 1) {
        if (one != vars_.size()) return PropResult::kFail;
        one = k;
      }
    }
    if (one == vars_.size()) return PropResult::kOk;
    solver.set_state(one_pos_, static_cast<std::int64_t>(one) + 1);
    return broadcast(solver, one);
  }

  // Drain the pending list; entries are stale-tolerant (verified against
  // the current domain), so leftovers from abandoned branches are harmless.
  PropResult result = PropResult::kOk;
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    const auto pos = static_cast<std::size_t>(pending_[i]);
    const Domain64& d = solver.domain(vars_[pos]);
    if (!d.is_fixed() || d.value() != 1) continue;  // stale entry
    const std::int64_t seen = solver.state(one_pos_);
    if (seen != 0) {
      if (static_cast<std::size_t>(seen - 1) == pos) continue;
      result = PropResult::kFail;  // two distinct variables fixed to 1
      break;
    }
    solver.set_state(one_pos_, static_cast<std::int64_t>(pos) + 1);
    if (broadcast(solver, pos) == PropResult::kFail) {
      result = PropResult::kFail;
      break;
    }
  }
  pending_.clear();
  return result;
}

// ------------------------------------------------------------------ CountEq

CountEq::CountEq(std::vector<VarId> vars, Value value, std::int64_t target)
    : vars_(std::move(vars)), value_(value), target_(target) {
  MGRTS_EXPECTS(target_ >= 0);
}

void CountEq::attach(Solver& solver) {
  lb_ = solver.alloc_state(0);
  ub_ = solver.alloc_state(0);
}

bool CountEq::on_event(Solver& solver, std::int32_t pos,
                       std::uint64_t old_mask) {
  if (!primed_) return true;
  const Domain64& d = solver.domain(vars_[static_cast<std::size_t>(pos)]);
  const bool had = Domain64::mask_contains(old_mask, d.base(), value_);
  const bool has = d.contains(value_);
  const bool was = had && Domain64::mask_fixed(old_mask);
  const bool is = has && d.is_fixed();
  // Unchanged counters mean this variable's (contains, fixed-to-value)
  // status is unchanged, so no new pruning opportunity exists: don't wake.
  if (had == has && was == is) return false;
  if (had != has) solver.set_state(ub_, solver.state(ub_) - 1);
  if (was != is) solver.set_state(lb_, solver.state(lb_) + (is ? 1 : -1));
  const std::int64_t lb = solver.state(lb_);
  const std::int64_t ub = solver.state(ub_);
  return lb > target_ || ub < target_ || (lb == target_ && ub > target_) ||
         (ub == target_ && lb < target_);
}

PropResult CountEq::propagate(Solver& solver) {
  std::int64_t lb;
  std::int64_t ub;
  if (solver.scratch_mode() || !primed_) {
    lb = 0;
    ub = 0;
    for (const VarId v : vars_) {
      const Domain64& d = solver.domain(v);
      if (!d.contains(value_)) continue;
      ++ub;
      if (d.is_fixed()) ++lb;
    }
    if (!primed_) {
      // Primed in both modes: advisor wake filtering must not depend on the
      // propagation mode (differential-test requirement).
      primed_ = true;
      solver.set_state(lb_, lb);
      solver.set_state(ub_, ub);
    }
  } else {
    lb = solver.state(lb_);
    ub = solver.state(ub_);
  }

  if (target_ < lb || target_ > ub) return PropResult::kFail;
  if (lb == target_ && ub > target_) {
    // Quota reached: no one else may take the value.
    for (const VarId v : vars_) {
      const Domain64& d = solver.domain(v);
      if (!d.is_fixed() && d.contains(value_)) {
        if (solver.remove(v, value_) == PropResult::kFail) {
          return PropResult::kFail;
        }
      }
    }
  } else if (ub == target_ && lb < target_) {
    // Every candidate is needed.
    for (const VarId v : vars_) {
      const Domain64& d = solver.domain(v);
      if (!d.is_fixed() && d.contains(value_)) {
        if (solver.fix(v, value_) == PropResult::kFail) {
          return PropResult::kFail;
        }
      }
    }
  }
  return PropResult::kOk;
}

// ---------------------------------------------------------- WeightedCountEq

WeightedCountEq::WeightedCountEq(std::vector<VarId> vars,
                                 std::vector<std::int64_t> weights,
                                 Value value, std::int64_t target)
    : vars_(std::move(vars)),
      weights_(std::move(weights)),
      value_(value),
      target_(target) {
  MGRTS_EXPECTS(vars_.size() == weights_.size());
  MGRTS_EXPECTS(target_ >= 0);
  for (const std::int64_t w : weights_) MGRTS_EXPECTS(w >= 0);
  min_weight_ = weights_.empty()
                    ? 0
                    : *std::min_element(weights_.begin(), weights_.end());
  max_weight_ = weights_.empty()
                    ? 0
                    : *std::max_element(weights_.begin(), weights_.end());
}

void WeightedCountEq::attach(Solver& solver) {
  lb_ = solver.alloc_state(0);
  ub_ = solver.alloc_state(0);
}

bool WeightedCountEq::on_event(Solver& solver, std::int32_t pos,
                               std::uint64_t old_mask) {
  if (!primed_) return true;
  const Domain64& d = solver.domain(vars_[static_cast<std::size_t>(pos)]);
  const std::int64_t w = weights_[static_cast<std::size_t>(pos)];
  const bool had = Domain64::mask_contains(old_mask, d.base(), value_);
  const bool has = d.contains(value_);
  const bool was = had && Domain64::mask_fixed(old_mask);
  const bool is = has && d.is_fixed();
  if (had == has && was == is) return false;  // see CountEq::on_event
  if (had != has) solver.set_state(ub_, solver.state(ub_) - w);
  if (was != is) solver.set_state(lb_, solver.state(lb_) + (is ? w : -w));
  return pruning_possible(solver.state(lb_), solver.state(ub_));
}

PropResult WeightedCountEq::sweep(Solver& solver) {
  for (;;) {
    std::int64_t lb = 0;
    std::int64_t ub = 0;
    for (std::size_t k = 0; k < vars_.size(); ++k) {
      const Domain64& d = solver.domain(vars_[k]);
      if (!d.contains(value_)) continue;
      if (d.is_fixed()) {
        lb += weights_[k];
        ub += weights_[k];
      } else {
        ub += weights_[k];
      }
    }
    if (target_ < lb || target_ > ub) return PropResult::kFail;

    bool changed = false;
    for (std::size_t k = 0; k < vars_.size(); ++k) {
      const Domain64& d = solver.domain(vars_[k]);
      if (d.is_fixed() || !d.contains(value_)) continue;
      if (lb + weights_[k] > target_) {
        if (solver.remove(vars_[k], value_) == PropResult::kFail) {
          return PropResult::kFail;
        }
        changed = true;
      } else if (ub - weights_[k] < target_) {
        if (solver.fix(vars_[k], value_) == PropResult::kFail) {
          return PropResult::kFail;
        }
        changed = true;
      }
    }
    if (!changed) return PropResult::kOk;
  }
}

PropResult WeightedCountEq::propagate(Solver& solver) {
  if (!primed_) {
    // Primed in both modes so advisor wake filtering is mode-independent
    // (differential-test requirement).
    primed_ = true;
    std::int64_t lb = 0;
    std::int64_t ub = 0;
    for (std::size_t k = 0; k < vars_.size(); ++k) {
      const Domain64& d = solver.domain(vars_[k]);
      if (!d.contains(value_)) continue;
      ub += weights_[k];
      if (d.is_fixed()) lb += weights_[k];
    }
    solver.set_state(lb_, lb);
    solver.set_state(ub_, ub);
  }
  if (solver.scratch_mode()) return sweep(solver);

  const std::int64_t lb = solver.state(lb_);
  const std::int64_t ub = solver.state(ub_);
  if (target_ < lb || target_ > ub) return PropResult::kFail;
  if (!pruning_possible(lb, ub)) return PropResult::kOk;
  return sweep(solver);
}

// -------------------------------------------------------- AllDifferentExcept

AllDifferentExcept::AllDifferentExcept(std::vector<VarId> vars, Value except,
                                       PropagationLevel level)
    : vars_(std::move(vars)), except_(except), level_(level) {
  marked_.assign(vars_.size(), 0);
}

void AllDifferentExcept::clear_marks() {
  if (marked_count_ == 0) return;
  std::fill(marked_.begin(), marked_.end(), std::uint8_t{0});
  marked_count_ = 0;
}

bool AllDifferentExcept::on_event(Solver& solver, std::int32_t pos,
                                  std::uint64_t old_mask) {
  static_cast<void>(old_mask);
  // Matching mode subscribes kAnyChange: any removal can reshape the value
  // graph's SCC structure (and losing `except` changes who must be
  // matched), so every event requests a run; the queue dedupes.
  if (level_ == PropagationLevel::kMatching) return true;
  // Fixed-only subscription: only a variable fixed to a non-except value
  // needs broadcasting.
  if (solver.domain(vars_[static_cast<std::size_t>(pos)]).value() ==
      except_) {
    return false;
  }
  auto& mark = marked_[static_cast<std::size_t>(pos)];
  if (mark == 0) {
    mark = 1;
    ++marked_count_;
  }
  return true;
}

PropResult AllDifferentExcept::broadcast(Solver& solver, std::size_t pos,
                                         Value v) {
  // Forward checking from one fixed variable: the removals depend on that
  // variable only, so the reason narrows to it (DESIGN.md §10).
  solver.begin_explicit_reason(&vars_[pos], 1);
  PropResult result = PropResult::kOk;
  for (std::size_t other = 0; other < vars_.size(); ++other) {
    if (other == pos) continue;
    // Cheap containment pre-test: most siblings no longer hold v, and the
    // inline mask check skips the remove() call (trail bookkeeping, notify
    // dispatch) entirely.  A no-op remove has no observable effect, so the
    // search tree is bit-identical with or without the guard.
    if (!solver.domain(vars_[other]).contains(v)) continue;
    if (solver.remove(vars_[other], v) == PropResult::kFail) {
      result = PropResult::kFail;
      break;
    }
  }
  solver.end_explicit_reason();
  return result;
}

void AllDifferentExcept::init_matching(Solver& solver) {
  // Lazily sized on the first matching run, which happens at root
  // propagation — i.e. on the maximal domains any later state (including
  // post-backtrack states) is a subset of.  Value nodes are dense offsets
  // from the smallest root value.
  Value vmin = solver.domain(vars_.front()).min();
  Value vmax = solver.domain(vars_.front()).max();
  for (const VarId v : vars_) {
    const Domain64& d = solver.domain(v);
    vmin = std::min(vmin, d.min());
    vmax = std::max(vmax, d.max());
  }
  vmin_ = vmin;
  value_count_ = static_cast<std::int32_t>(vmax - vmin) + 1;
  match_of_pos_.assign(vars_.size(), kUnmatched);
  match_of_val_.assign(static_cast<std::size_t>(value_count_), kUnmatched);
  visit_stamp_.assign(static_cast<std::size_t>(value_count_), 0);
  kill_.assign(vars_.size(), 0);
  present_.assign(static_cast<std::size_t>(value_count_), 0);
}

bool AllDifferentExcept::augment(Solver& solver, std::int32_t pos) {
  const Domain64& d = solver.domain(vars_[static_cast<std::size_t>(pos)]);
  const Value base = d.base();
  std::uint64_t bits = d.raw_mask();
  if (Domain64::mask_contains(bits, base, except_)) {
    bits &= ~(std::uint64_t{1} << static_cast<unsigned>(except_ - base));
  }
  while (bits != 0) {
    const int off = std::countr_zero(bits);
    bits &= bits - 1;
    const auto idx = static_cast<std::size_t>(base + off - vmin_);
    if (visit_stamp_[idx] == visit_epoch_) continue;
    visit_stamp_[idx] = visit_epoch_;
    const std::int32_t occ = match_of_val_[idx];
    bool take = occ == kUnmatched;
    if (!take &&
        solver.domain(vars_[static_cast<std::size_t>(occ)]).contains(
            except_)) {
      // The occupant may fall back to the except sink: divert it there
      // (cheaper than a recursive search, and any source-saturating flow
      // is equally good for the SCC pruning).
      match_of_pos_[static_cast<std::size_t>(occ)] = kUnmatched;
      take = true;
    }
    if (!take) take = augment(solver, occ);
    if (take) {
      match_of_val_[idx] = pos;
      match_of_pos_[static_cast<std::size_t>(pos)] =
          static_cast<std::int32_t>(idx);
      return true;
    }
  }
  return false;
}

PropResult AllDifferentExcept::propagate_matching(Solver& solver) {
  const auto n = static_cast<std::int32_t>(vars_.size());
  if (match_of_pos_.empty()) init_matching(solver);
  if (solver.scratch_mode()) {
    // Reference path: forget the cached matching and rebuild from the
    // current domains.  The pruned edge set is a function of the domains
    // alone (an edge survives iff it lies in SOME source-saturating flow),
    // so scratch and incremental runs remove identical values in identical
    // order — the modes stay tree-identical.
    std::fill(match_of_pos_.begin(), match_of_pos_.end(), kUnmatched);
    std::fill(match_of_val_.begin(), match_of_val_.end(), kUnmatched);
  }

  // 1. Repair: drop matching edges the current domains no longer support.
  for (std::int32_t x = 0; x < n; ++x) {
    const std::int32_t idx = match_of_pos_[static_cast<std::size_t>(x)];
    if (idx == kUnmatched) continue;
    if (!solver.domain(vars_[static_cast<std::size_t>(x)])
             .contains(vmin_ + idx)) {
      match_of_pos_[static_cast<std::size_t>(x)] = kUnmatched;
      match_of_val_[static_cast<std::size_t>(idx)] = kUnmatched;
    }
  }

  // 2. Augment: every variable that cannot take `except` must be matched.
  for (std::int32_t x = 0; x < n; ++x) {
    const Domain64& d = solver.domain(vars_[static_cast<std::size_t>(x)]);
    if (d.contains(except_)) continue;  // may route through the Θ sink
    if (match_of_pos_[static_cast<std::size_t>(x)] != kUnmatched) continue;
    ++visit_epoch_;
    if (!augment(solver, x)) return PropResult::kFail;
  }

  // 3. Residual graph (DESIGN.md §14).  Nodes: positions 0..n-1, value
  // nodes n..n+V-1, the except sink Θ, the value sink T.  Edge directions
  // follow the residual of the source-saturating flow:
  //   matched (x,v): v->x          unmatched edge: x->v
  //   except in dom(x): x->Θ if x is matched, Θ->x if x routes via Θ
  //   matched value v: T->v        present unmatched value: v->T
  //   Θ->T always; T->Θ iff some position routes via Θ.
  const std::int32_t theta = n + value_count_;
  const std::int32_t tsink = theta + 1;
  const std::int32_t node_count = tsink + 1;
  adj_off_.assign(static_cast<std::size_t>(node_count) + 1, 0);
  std::fill(present_.begin(), present_.end(), std::uint8_t{0});

  bool any_via_theta = false;
  const auto degree = [&](std::int32_t from) {
    ++adj_off_[static_cast<std::size_t>(from) + 1];
  };
  for (std::int32_t x = 0; x < n; ++x) {
    const Domain64& d = solver.domain(vars_[static_cast<std::size_t>(x)]);
    const Value base = d.base();
    std::uint64_t bits = d.raw_mask();
    const bool has_except = Domain64::mask_contains(bits, base, except_);
    if (has_except) {
      bits &= ~(std::uint64_t{1} << static_cast<unsigned>(except_ - base));
    }
    const std::int32_t matched = match_of_pos_[static_cast<std::size_t>(x)];
    while (bits != 0) {
      const int off = std::countr_zero(bits);
      bits &= bits - 1;
      const std::int32_t idx = base + off - vmin_;
      present_[static_cast<std::size_t>(idx)] = 1;
      degree(matched == idx ? n + idx : x);
    }
    if (has_except) degree(matched != kUnmatched ? x : theta);
    if (matched == kUnmatched) any_via_theta = true;
  }
  for (std::int32_t idx = 0; idx < value_count_; ++idx) {
    if (match_of_val_[static_cast<std::size_t>(idx)] != kUnmatched) {
      degree(tsink);
    } else if (present_[static_cast<std::size_t>(idx)] != 0) {
      degree(n + idx);
    }
  }
  degree(theta);                      // Θ->T
  if (any_via_theta) degree(tsink);   // T->Θ

  for (std::int32_t v = 0; v < node_count; ++v) {
    adj_off_[static_cast<std::size_t>(v) + 1] +=
        adj_off_[static_cast<std::size_t>(v)];
  }
  adj_dat_.resize(static_cast<std::size_t>(adj_off_.back()));
  // Fill pass: cursor[] reuses index_ as scratch before Tarjan claims it.
  index_.assign(adj_off_.begin(), adj_off_.end() - 1);
  const auto emit = [&](std::int32_t from, std::int32_t to) {
    adj_dat_[static_cast<std::size_t>(
        index_[static_cast<std::size_t>(from)]++)] = to;
  };
  for (std::int32_t x = 0; x < n; ++x) {
    const Domain64& d = solver.domain(vars_[static_cast<std::size_t>(x)]);
    const Value base = d.base();
    std::uint64_t bits = d.raw_mask();
    const bool has_except = Domain64::mask_contains(bits, base, except_);
    if (has_except) {
      bits &= ~(std::uint64_t{1} << static_cast<unsigned>(except_ - base));
    }
    const std::int32_t matched = match_of_pos_[static_cast<std::size_t>(x)];
    while (bits != 0) {
      const int off = std::countr_zero(bits);
      bits &= bits - 1;
      const std::int32_t idx = base + off - vmin_;
      if (matched == idx) {
        emit(n + idx, x);
      } else {
        emit(x, n + idx);
      }
    }
    if (has_except) {
      if (matched != kUnmatched) {
        emit(x, theta);
      } else {
        emit(theta, x);
      }
    }
  }
  for (std::int32_t idx = 0; idx < value_count_; ++idx) {
    if (match_of_val_[static_cast<std::size_t>(idx)] != kUnmatched) {
      emit(tsink, n + idx);
    } else if (present_[static_cast<std::size_t>(idx)] != 0) {
      emit(n + idx, tsink);
    }
  }
  emit(theta, tsink);
  if (any_via_theta) emit(tsink, theta);

  // 4. Tarjan SCC (iterative).
  index_.assign(static_cast<std::size_t>(node_count), -1);
  low_.assign(static_cast<std::size_t>(node_count), 0);
  scc_id_.assign(static_cast<std::size_t>(node_count), -1);
  on_stack_.assign(static_cast<std::size_t>(node_count), 0);
  scc_stack_.clear();
  std::int32_t next_index = 0;
  std::int32_t scc_count = 0;
  for (std::int32_t s = 0; s < node_count; ++s) {
    if (index_[static_cast<std::size_t>(s)] != -1) continue;
    dfs_.clear();
    dfs_.emplace_back(s, adj_off_[static_cast<std::size_t>(s)]);
    index_[static_cast<std::size_t>(s)] =
        low_[static_cast<std::size_t>(s)] = next_index++;
    scc_stack_.push_back(s);
    on_stack_[static_cast<std::size_t>(s)] = 1;
    while (!dfs_.empty()) {
      const std::int32_t node = dfs_.back().first;
      if (dfs_.back().second <
          adj_off_[static_cast<std::size_t>(node) + 1]) {
        const std::int32_t w =
            adj_dat_[static_cast<std::size_t>(dfs_.back().second++)];
        if (index_[static_cast<std::size_t>(w)] == -1) {
          index_[static_cast<std::size_t>(w)] =
              low_[static_cast<std::size_t>(w)] = next_index++;
          scc_stack_.push_back(w);
          on_stack_[static_cast<std::size_t>(w)] = 1;
          dfs_.emplace_back(w, adj_off_[static_cast<std::size_t>(w)]);
        } else if (on_stack_[static_cast<std::size_t>(w)] != 0) {
          low_[static_cast<std::size_t>(node)] =
              std::min(low_[static_cast<std::size_t>(node)],
                       index_[static_cast<std::size_t>(w)]);
        }
        continue;
      }
      if (low_[static_cast<std::size_t>(node)] ==
          index_[static_cast<std::size_t>(node)]) {
        for (;;) {
          const std::int32_t w = scc_stack_.back();
          scc_stack_.pop_back();
          on_stack_[static_cast<std::size_t>(w)] = 0;
          scc_id_[static_cast<std::size_t>(w)] = scc_count;
          if (w == node) break;
        }
        ++scc_count;
      }
      dfs_.pop_back();
      if (!dfs_.empty()) {
        const std::int32_t parent = dfs_.back().first;
        low_[static_cast<std::size_t>(parent)] =
            std::min(low_[static_cast<std::size_t>(parent)],
                     low_[static_cast<std::size_t>(node)]);
      }
    }
  }

  // 5. Prune: an unmatched edge whose endpoints sit in different SCCs lies
  // on no residual cycle, hence in no solution.  Matched edges and the
  // except value itself always stay, so no domain can empty here (every
  // variable keeps its matched value or `except`).  Removals run in
  // ascending (position, value) order under the propagator's default
  // full-scope reason — the same sequence in both propagation modes.
  bool any_kill = false;
  for (std::int32_t x = 0; x < n; ++x) {
    const Domain64& d = solver.domain(vars_[static_cast<std::size_t>(x)]);
    const Value base = d.base();
    std::uint64_t bits = d.raw_mask();
    if (Domain64::mask_contains(bits, base, except_)) {
      bits &= ~(std::uint64_t{1} << static_cast<unsigned>(except_ - base));
    }
    const std::int32_t matched = match_of_pos_[static_cast<std::size_t>(x)];
    const std::int32_t x_scc = scc_id_[static_cast<std::size_t>(x)];
    std::uint64_t kill = 0;
    while (bits != 0) {
      const int off = std::countr_zero(bits);
      bits &= bits - 1;
      const std::int32_t idx = base + off - vmin_;
      if (idx == matched) continue;
      if (scc_id_[static_cast<std::size_t>(n + idx)] != x_scc) {
        kill |= std::uint64_t{1} << static_cast<unsigned>(off);
      }
    }
    kill_[static_cast<std::size_t>(x)] = kill;
    any_kill = any_kill || kill != 0;
  }
  if (!any_kill) return PropResult::kOk;
  for (std::int32_t x = 0; x < n; ++x) {
    const std::uint64_t kill = kill_[static_cast<std::size_t>(x)];
    if (kill == 0) continue;
    const VarId var = vars_[static_cast<std::size_t>(x)];
    const Value base = solver.domain(var).base();
    PropResult result = PropResult::kOk;
    Domain64::for_each_in_mask(kill, base, [&](Value v) {
      if (result == PropResult::kFail) return;
      if (solver.remove(var, v) == PropResult::kFail) {
        result = PropResult::kFail;
      }
    });
    if (result == PropResult::kFail) return PropResult::kFail;
  }
  return PropResult::kOk;
}

PropResult AllDifferentExcept::propagate(Solver& solver) {
  if (level_ == PropagationLevel::kMatching) {
    return propagate_matching(solver);
  }
  if (solver.scratch_mode() || !primed_) {
    // Forward-checking from every fixed variable; the incremental path only
    // does this once (at the root) to cover post_fix-ed variables, after
    // which the dirty marks carry exactly the newly fixed positions.
    clear_marks();
    primed_ = true;
    for (std::size_t k = 0; k < vars_.size(); ++k) {
      const Domain64& d = solver.domain(vars_[k]);
      if (!d.is_fixed()) continue;
      const Value v = d.value();
      if (v == except_) continue;
      if (broadcast(solver, k, v) == PropResult::kFail) {
        return PropResult::kFail;
      }
    }
    return PropResult::kOk;
  }

  if (marked_count_ == 0) return PropResult::kOk;
  // One ascending pass, like the scratch scan (so both modes emit the same
  // event sequence): marks behind the cursor set by in-pass broadcasts stay
  // for the next run — our advisor re-queues us, exactly as the scratch
  // mode's self-event does.
  for (std::size_t k = 0; k < vars_.size(); ++k) {
    if (marked_[k] == 0) continue;
    marked_[k] = 0;
    --marked_count_;
    const Domain64& d = solver.domain(vars_[k]);
    if (!d.is_fixed()) continue;  // stale mark from an abandoned branch
    const Value v = d.value();
    if (v == except_) continue;
    if (broadcast(solver, k, v) == PropResult::kFail) {
      return PropResult::kFail;
    }
  }
  return PropResult::kOk;
}

// --------------------------------------------------------------- SymmetryChain

SymmetryChain::SymmetryChain(std::vector<VarId> vars, Value idle)
    : vars_(std::move(vars)), idle_(idle) {
  MGRTS_EXPECTS(vars_.size() >= 2);
  pair_dirty_.assign(vars_.size() - 1, 0);
}

void SymmetryChain::mark_pair(std::size_t k) {
  if (pair_dirty_[k] != 0) return;
  pair_dirty_[k] = 1;
  worklist_.push_back(static_cast<std::int32_t>(k));
}

void SymmetryChain::clear_marks() {
  for (const std::int32_t k : worklist_) {
    pair_dirty_[static_cast<std::size_t>(k)] = 0;
  }
  worklist_.clear();
}

bool SymmetryChain::on_event(Solver& solver, std::int32_t pos,
                             std::uint64_t old_mask) {
  static_cast<void>(solver);
  static_cast<void>(old_mask);
  // Any change on position p can tighten only the pairs (p-1, p) and
  // (p, p+1).  Always request a run: a mark may predate a queue clear, and
  // only a run retires it (stale marks prune nothing and cost O(1)).
  const auto p = static_cast<std::size_t>(pos);
  if (p > 0) mark_pair(p - 1);
  if (p + 1 < vars_.size()) mark_pair(p);
  return true;
}

PropResult SymmetryChain::process_pair(Solver& solver, std::size_t k,
                                       bool& changed) {
  // Pairwise rule between neighbours a = vars_[k], b = vars_[k+1]:
  //   key(a) < key(b)  or  a == b == idle,
  // where key(idle) = +infinity.  The relation is monotone in key, so
  // bounds reasoning achieves arc consistency per pair; iterating until
  // stable achieves the pair-local fixpoint.  Pruning candidates are
  // gathered into a mask first because Domain64::for_each iterates a
  // snapshot.  Every removal depends on the two pair domains only, so the
  // reason narrows from the whole chain to the pair (DESIGN.md §10).
  struct ReasonGuard {
    Solver& solver;
    ~ReasonGuard() { solver.end_explicit_reason(); }
  };
  solver.begin_explicit_reason(&vars_[k], 2);
  ReasonGuard guard{solver};
  for (;;) {
    bool local = false;
    const VarId a = vars_[k];
    const VarId b = vars_[k + 1];

    // Smallest key in dom(a): the smallest non-idle value, +inf if a can
    // only be idle.
    const Domain64& da = solver.domain(a);
    std::uint64_t a_non_idle = da.raw_mask();
    if (da.contains(idle_)) {
      a_non_idle &= ~(std::uint64_t{1}
                      << static_cast<unsigned>(idle_ - da.base()));
    }
    const std::int64_t a_min_key =
        a_non_idle == 0 ? kIdleKey
                        : da.base() + std::countr_zero(a_non_idle);

    // Prune b: non-idle values must have key > a_min_key.  The kill set —
    // values <= a_min_key, idle excluded — is two mask operations
    // (Domain64::mask_le window-clamps exactly like the old per-value
    // scan), so the sweep costs O(removals), not O(|dom|).
    {
      const Domain64& db = solver.domain(b);
      std::uint64_t kill =
          db.raw_mask() &
          (a_min_key == kIdleKey
               ? ~std::uint64_t{0}
               : Domain64::mask_le(db.base(),
                                   static_cast<Value>(a_min_key)));
      if (db.contains(idle_)) {
        kill &= ~(std::uint64_t{1}
                  << static_cast<unsigned>(idle_ - db.base()));
      }
      const Value base = db.base();
      while (kill != 0) {
        const Value v = base + std::countr_zero(kill);
        kill &= kill - 1;
        if (solver.remove(b, v) == PropResult::kFail) {
          return PropResult::kFail;
        }
        local = true;
      }
    }

    // Prune a: if b cannot be idle, a cannot be idle and a's non-idle
    // values must stay below b's largest (necessarily non-idle) value.
    // Kill set: values >= b_max_key plus idle (key +inf) wherever it sits.
    {
      const Domain64& db = solver.domain(b);
      if (!db.contains(idle_)) {
        const Value b_max_key = db.max();
        const Domain64& da2 = solver.domain(a);
        std::uint64_t kill =
            da2.raw_mask() & Domain64::mask_ge(da2.base(), b_max_key);
        if (da2.contains(idle_)) {
          kill |= std::uint64_t{1}
                  << static_cast<unsigned>(idle_ - da2.base());
        }
        const Value base = da2.base();
        while (kill != 0) {
          const Value v = base + std::countr_zero(kill);
          kill &= kill - 1;
          if (solver.remove(a, v) == PropResult::kFail) {
            return PropResult::kFail;
          }
          local = true;
        }
      }
    }

    changed = changed || local;
    if (!local) return PropResult::kOk;
  }
}

PropResult SymmetryChain::propagate(Solver& solver) {
  if (solver.scratch_mode() || !primed_) {
    // Reference (and priming) path: sweep every pair until stable.  Marks
    // are retired wholesale — the sweep covers everything they cover.
    primed_ = true;
    clear_marks();
    for (;;) {
      bool changed = false;
      for (std::size_t k = 0; k + 1 < vars_.size(); ++k) {
        if (process_pair(solver, k, changed) == PropResult::kFail) {
          return PropResult::kFail;
        }
      }
      if (!changed) return PropResult::kOk;
    }
  }

  // Incremental path: drain the dirty-pair worklist.  A pair that pruned
  // re-marks its neighbours (its own local fixpoint is reached inside
  // process_pair); our removes also re-enter on_event, which marks the
  // same pairs — mark_pair dedupes.  Index the worklist rather than
  // iterating: it grows during the drain.
  for (std::size_t i = 0; i < worklist_.size(); ++i) {
    const auto k = static_cast<std::size_t>(worklist_[i]);
    pair_dirty_[k] = 0;
    bool changed = false;
    if (process_pair(solver, k, changed) == PropResult::kFail) {
      // Leave the remaining marks: the queue clear that follows a failure
      // makes them stale, and stale marks are re-verified next run.
      worklist_.erase(worklist_.begin(),
                      worklist_.begin() + static_cast<std::ptrdiff_t>(i + 1));
      return PropResult::kFail;
    }
    if (changed) {
      if (k > 0) mark_pair(k - 1);
      if (k + 2 < vars_.size()) mark_pair(k + 1);
    }
  }
  worklist_.clear();
  return PropResult::kOk;
}

// ------------------------------------------------------------------ factories

std::unique_ptr<Propagator> make_at_most_one(std::vector<VarId> vars) {
  return std::make_unique<AtMostOneTrue>(std::move(vars));
}

std::unique_ptr<Propagator> make_sum_eq(std::vector<VarId> vars,
                                        std::int64_t target) {
  std::vector<std::int64_t> unit(vars.size(), 1);
  return make_weighted_sum_eq(std::move(vars), std::move(unit), target);
}

std::unique_ptr<Propagator> make_weighted_sum_eq(
    std::vector<VarId> vars, std::vector<std::int64_t> weights,
    std::int64_t target) {
  // A boolean weighted sum is the weighted counter for value 1: on {0,1}
  // domains "remove 1" and "fix 0" are the same pruning, so the propagators
  // coincide and the counter's advisor/state machinery is shared.
  return std::make_unique<WeightedCountEq>(std::move(vars), std::move(weights),
                                           /*value=*/1, target);
}

std::unique_ptr<Propagator> make_count_eq(std::vector<VarId> vars, Value value,
                                          std::int64_t target) {
  return std::make_unique<CountEq>(std::move(vars), value, target);
}

std::unique_ptr<Propagator> make_weighted_count_eq(
    std::vector<VarId> vars, std::vector<std::int64_t> weights, Value value,
    std::int64_t target) {
  return std::make_unique<WeightedCountEq>(std::move(vars), std::move(weights),
                                           value, target);
}

std::unique_ptr<Propagator> make_all_different_except(std::vector<VarId> vars,
                                                      Value except,
                                                      PropagationLevel level) {
  return std::make_unique<AllDifferentExcept>(std::move(vars), except, level);
}

std::unique_ptr<Propagator> make_symmetry_chain(std::vector<VarId> vars,
                                                Value idle) {
  return std::make_unique<SymmetryChain>(std::move(vars), idle);
}

}  // namespace mgrts::csp
