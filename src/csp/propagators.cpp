#include "csp/propagators.hpp"

#include <algorithm>
#include <limits>

#include "support/assert.hpp"

namespace mgrts::csp {

namespace {
/// Sort key for SymmetryChain: idle compares as +infinity.
constexpr std::int64_t kIdleKey = std::numeric_limits<std::int64_t>::max();

std::int64_t key_of(Value v, Value idle) noexcept {
  return v == idle ? kIdleKey : static_cast<std::int64_t>(v);
}
}  // namespace

// ---------------------------------------------------------------- AtMostOne

AtMostOneTrue::AtMostOneTrue(std::vector<VarId> vars)
    : vars_(std::move(vars)) {
  MGRTS_EXPECTS(!vars_.empty());
}

PropResult AtMostOneTrue::propagate(Solver& solver) {
  VarId fixed_one = -1;
  for (const VarId v : vars_) {
    const Domain64& d = solver.domain(v);
    if (d.is_fixed() && d.value() == 1) {
      if (fixed_one >= 0) return PropResult::kFail;
      fixed_one = v;
    }
  }
  if (fixed_one < 0) return PropResult::kOk;
  for (const VarId v : vars_) {
    if (v == fixed_one) continue;
    if (solver.remove(v, 1) == PropResult::kFail) return PropResult::kFail;
  }
  return PropResult::kOk;
}

// ----------------------------------------------------------- LinearBoolSumEq

LinearBoolSumEq::LinearBoolSumEq(std::vector<VarId> vars,
                                 std::vector<std::int64_t> weights,
                                 std::int64_t target)
    : vars_(std::move(vars)), weights_(std::move(weights)), target_(target) {
  MGRTS_EXPECTS(vars_.size() == weights_.size());
  MGRTS_EXPECTS(target_ >= 0);
  for (const std::int64_t w : weights_) MGRTS_EXPECTS(w >= 0);
}

PropResult LinearBoolSumEq::propagate(Solver& solver) {
  // Iterate to a local fixpoint: each forced assignment tightens the bounds.
  for (;;) {
    std::int64_t lb = 0;
    std::int64_t ub = 0;
    for (std::size_t k = 0; k < vars_.size(); ++k) {
      const Domain64& d = solver.domain(vars_[k]);
      if (d.is_fixed()) {
        if (d.value() == 1) {
          lb += weights_[k];
          ub += weights_[k];
        }
      } else {
        ub += weights_[k];
      }
    }
    if (target_ < lb || target_ > ub) return PropResult::kFail;

    bool changed = false;
    for (std::size_t k = 0; k < vars_.size(); ++k) {
      const Domain64& d = solver.domain(vars_[k]);
      if (d.is_fixed()) continue;
      if (lb + weights_[k] > target_) {
        // Running this slot would overshoot the required amount.
        if (solver.fix(vars_[k], 0) == PropResult::kFail) {
          return PropResult::kFail;
        }
        changed = true;
      } else if (ub - weights_[k] < target_) {
        // Without this slot the amount can no longer be reached.
        if (solver.fix(vars_[k], 1) == PropResult::kFail) {
          return PropResult::kFail;
        }
        changed = true;
      }
    }
    if (!changed) return PropResult::kOk;
  }
}

// ------------------------------------------------------------------ CountEq

CountEq::CountEq(std::vector<VarId> vars, Value value, std::int64_t target)
    : vars_(std::move(vars)), value_(value), target_(target) {
  MGRTS_EXPECTS(target_ >= 0);
}

PropResult CountEq::propagate(Solver& solver) {
  std::int64_t lb = 0;  // variables already fixed to `value_`
  std::int64_t ub = 0;  // variables that can still take `value_`
  for (const VarId v : vars_) {
    const Domain64& d = solver.domain(v);
    if (!d.contains(value_)) continue;
    ++ub;
    if (d.is_fixed()) ++lb;
  }
  if (target_ < lb || target_ > ub) return PropResult::kFail;
  if (lb == target_) {
    // Quota reached: no one else may take the value.
    for (const VarId v : vars_) {
      const Domain64& d = solver.domain(v);
      if (!d.is_fixed() && d.contains(value_)) {
        if (solver.remove(v, value_) == PropResult::kFail) {
          return PropResult::kFail;
        }
      }
    }
  } else if (ub == target_) {
    // Every candidate is needed.
    for (const VarId v : vars_) {
      const Domain64& d = solver.domain(v);
      if (!d.is_fixed() && d.contains(value_)) {
        if (solver.fix(v, value_) == PropResult::kFail) {
          return PropResult::kFail;
        }
      }
    }
  }
  return PropResult::kOk;
}

// ---------------------------------------------------------- WeightedCountEq

WeightedCountEq::WeightedCountEq(std::vector<VarId> vars,
                                 std::vector<std::int64_t> weights,
                                 Value value, std::int64_t target)
    : vars_(std::move(vars)),
      weights_(std::move(weights)),
      value_(value),
      target_(target) {
  MGRTS_EXPECTS(vars_.size() == weights_.size());
  MGRTS_EXPECTS(target_ >= 0);
  for (const std::int64_t w : weights_) MGRTS_EXPECTS(w >= 0);
}

PropResult WeightedCountEq::propagate(Solver& solver) {
  for (;;) {
    std::int64_t lb = 0;
    std::int64_t ub = 0;
    for (std::size_t k = 0; k < vars_.size(); ++k) {
      const Domain64& d = solver.domain(vars_[k]);
      if (!d.contains(value_)) continue;
      if (d.is_fixed()) {
        lb += weights_[k];
        ub += weights_[k];
      } else {
        ub += weights_[k];
      }
    }
    if (target_ < lb || target_ > ub) return PropResult::kFail;

    bool changed = false;
    for (std::size_t k = 0; k < vars_.size(); ++k) {
      const Domain64& d = solver.domain(vars_[k]);
      if (d.is_fixed() || !d.contains(value_)) continue;
      if (lb + weights_[k] > target_) {
        if (solver.remove(vars_[k], value_) == PropResult::kFail) {
          return PropResult::kFail;
        }
        changed = true;
      } else if (ub - weights_[k] < target_) {
        if (solver.fix(vars_[k], value_) == PropResult::kFail) {
          return PropResult::kFail;
        }
        changed = true;
      }
    }
    if (!changed) return PropResult::kOk;
  }
}

// -------------------------------------------------------- AllDifferentExcept

AllDifferentExcept::AllDifferentExcept(std::vector<VarId> vars, Value except)
    : vars_(std::move(vars)), except_(except) {}

PropResult AllDifferentExcept::propagate(Solver& solver) {
  // Forward-checking strength: each fixed non-idle value is removed from the
  // other variables.  With |scope| == m this quadratic pass is cheap.
  for (std::size_t k = 0; k < vars_.size(); ++k) {
    const Domain64& d = solver.domain(vars_[k]);
    if (!d.is_fixed()) continue;
    const Value v = d.value();
    if (v == except_) continue;
    for (std::size_t other = 0; other < vars_.size(); ++other) {
      if (other == k) continue;
      if (solver.remove(vars_[other], v) == PropResult::kFail) {
        return PropResult::kFail;
      }
    }
  }
  return PropResult::kOk;
}

// --------------------------------------------------------------- SymmetryChain

SymmetryChain::SymmetryChain(std::vector<VarId> vars, Value idle)
    : vars_(std::move(vars)), idle_(idle) {
  MGRTS_EXPECTS(vars_.size() >= 2);
}

PropResult SymmetryChain::propagate(Solver& solver) {
  // Pairwise rule between neighbours a = vars_[k], b = vars_[k+1]:
  //   key(a) < key(b)  or  a == b == idle,
  // where key(idle) = +infinity.  The relation is monotone in key, so
  // bounds reasoning achieves arc consistency per pair; sweeping until
  // stable achieves it along the chain.
  for (;;) {
    bool changed = false;
    for (std::size_t k = 0; k + 1 < vars_.size(); ++k) {
      const VarId a = vars_[k];
      const VarId b = vars_[k + 1];

      // Smallest key in dom(a).
      std::int64_t a_min_key = kIdleKey;
      solver.domain(a).for_each([&](Value v) {
        a_min_key = std::min(a_min_key, key_of(v, idle_));
      });

      // Prune b: non-idle values must have key > a_min_key.
      {
        const Domain64& db = solver.domain(b);
        std::vector<Value> to_remove;
        db.for_each([&](Value v) {
          if (v != idle_ && key_of(v, idle_) <= a_min_key) {
            to_remove.push_back(v);
          }
        });
        for (const Value v : to_remove) {
          if (solver.remove(b, v) == PropResult::kFail) {
            return PropResult::kFail;
          }
          changed = true;
        }
      }

      // Prune a: if b cannot be idle, a cannot be idle and a's non-idle
      // values must stay below b's largest non-idle value.
      {
        const Domain64& db = solver.domain(b);
        if (!db.contains(idle_)) {
          std::int64_t b_max_key = std::numeric_limits<std::int64_t>::min();
          db.for_each([&](Value v) {
            b_max_key = std::max(b_max_key, key_of(v, idle_));
          });
          std::vector<Value> to_remove;
          solver.domain(a).for_each([&](Value v) {
            if (key_of(v, idle_) >= b_max_key) to_remove.push_back(v);
          });
          for (const Value v : to_remove) {
            if (solver.remove(a, v) == PropResult::kFail) {
              return PropResult::kFail;
            }
            changed = true;
          }
        }
      }
    }
    if (!changed) return PropResult::kOk;
  }
}

// ------------------------------------------------------------------ factories

std::unique_ptr<Propagator> make_at_most_one(std::vector<VarId> vars) {
  return std::make_unique<AtMostOneTrue>(std::move(vars));
}

std::unique_ptr<Propagator> make_sum_eq(std::vector<VarId> vars,
                                        std::int64_t target) {
  std::vector<std::int64_t> unit(vars.size(), 1);
  return std::make_unique<LinearBoolSumEq>(std::move(vars), std::move(unit),
                                           target);
}

std::unique_ptr<Propagator> make_weighted_sum_eq(
    std::vector<VarId> vars, std::vector<std::int64_t> weights,
    std::int64_t target) {
  return std::make_unique<LinearBoolSumEq>(std::move(vars), std::move(weights),
                                           target);
}

std::unique_ptr<Propagator> make_count_eq(std::vector<VarId> vars, Value value,
                                          std::int64_t target) {
  return std::make_unique<CountEq>(std::move(vars), value, target);
}

std::unique_ptr<Propagator> make_weighted_count_eq(
    std::vector<VarId> vars, std::vector<std::int64_t> weights, Value value,
    std::int64_t target) {
  return std::make_unique<WeightedCountEq>(std::move(vars), std::move(weights),
                                           value, target);
}

std::unique_ptr<Propagator> make_all_different_except(std::vector<VarId> vars,
                                                      Value except) {
  return std::make_unique<AllDifferentExcept>(std::move(vars), except);
}

std::unique_ptr<Propagator> make_symmetry_chain(std::vector<VarId> vars,
                                                Value idle) {
  return std::make_unique<SymmetryChain>(std::move(vars), idle);
}

}  // namespace mgrts::csp
