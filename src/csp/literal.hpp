// Bound/value literals over Domain64 variables (DESIGN.md §11).
//
// A literal is a primitive statement about one variable's final value:
// var == v, var != v, var <= v, var >= v.  Every trail entry of the solver
// *is* a literal becoming true (a fix is "var == v", a removal is
// "var != v", a removal at the root min/max is a bound movement), which is
// what lets conflict analysis resolve on implied literals instead of whole
// decisions: learned nogoods are conjunctions of Lits, replayed by the
// nogood store with generalized watches (a <=/>= watch fires on bound
// movement, not only on a fix), and exchanged between portfolio lanes in
// literal form.
//
// Truth sets are over all integers; domain-relative reasoning goes through
// truth_mask (the satisfying subset of a Domain64's 64-value window), so
// entailment and impossibility are two mask tests each.
#pragma once

#include <cstdint>

#include "csp/domain.hpp"
#include "support/assert.hpp"

namespace mgrts::csp {

using VarId = std::int32_t;

/// Relation of a literal; kLe/kGe are inclusive.
enum class Rel : std::uint8_t { kEq, kNe, kLe, kGe };

struct Lit {
  VarId var = -1;
  Value val = 0;
  Rel rel = Rel::kEq;

  [[nodiscard]] static constexpr Lit eq(VarId v, Value a) noexcept {
    return Lit{v, a, Rel::kEq};
  }
  [[nodiscard]] static constexpr Lit ne(VarId v, Value a) noexcept {
    return Lit{v, a, Rel::kNe};
  }
  [[nodiscard]] static constexpr Lit le(VarId v, Value a) noexcept {
    return Lit{v, a, Rel::kLe};
  }
  [[nodiscard]] static constexpr Lit ge(VarId v, Value a) noexcept {
    return Lit{v, a, Rel::kGe};
  }

  friend constexpr bool operator==(const Lit&, const Lit&) noexcept = default;
};

/// Logical negation: ¬(v == a) is (v != a), ¬(v <= a) is (v >= a + 1).
[[nodiscard]] constexpr Lit negate(Lit l) noexcept {
  switch (l.rel) {
    case Rel::kEq:
      return Lit{l.var, l.val, Rel::kNe};
    case Rel::kNe:
      return Lit{l.var, l.val, Rel::kEq};
    case Rel::kLe:
      return Lit{l.var, l.val + 1, Rel::kGe};
    case Rel::kGe:
      return Lit{l.var, l.val - 1, Rel::kLe};
  }
  return l;
}

/// Bitmask of the values in the window [base, base + 63] satisfying `l`
/// (bit i stands for base + i).  Values outside the window are clamped
/// away, so masking a Domain64's raw mask with this is exact for any
/// domain based at `base`.
[[nodiscard]] constexpr std::uint64_t truth_mask(Lit l, Value base) noexcept {
  const std::int64_t off = static_cast<std::int64_t>(l.val) - base;
  switch (l.rel) {
    case Rel::kEq:
      return off >= 0 && off < Domain64::kMaxSpan
                 ? std::uint64_t{1} << static_cast<unsigned>(off)
                 : 0;
    case Rel::kNe:
      return ~truth_mask(Lit{l.var, l.val, Rel::kEq}, base);
    case Rel::kLe:
      if (off < 0) return 0;
      if (off >= Domain64::kMaxSpan - 1) return ~std::uint64_t{0};
      return (std::uint64_t{1} << static_cast<unsigned>(off + 1)) - 1;
    case Rel::kGe:
      if (off <= 0) return ~std::uint64_t{0};
      if (off >= Domain64::kMaxSpan) return 0;
      return ~((std::uint64_t{1} << static_cast<unsigned>(off)) - 1);
  }
  return 0;
}

/// True when every value of `mask` (based at `base`) satisfies `l` — the
/// literal *must* hold whatever value the variable takes.  An empty mask is
/// vacuously entailed.
[[nodiscard]] constexpr bool entailed_mask(std::uint64_t mask, Value base,
                                          Lit l) noexcept {
  return (mask & ~truth_mask(l, base)) == 0;
}

/// True when no value of `mask` satisfies `l` — the literal can never hold.
[[nodiscard]] constexpr bool impossible_mask(std::uint64_t mask, Value base,
                                            Lit l) noexcept {
  return (mask & truth_mask(l, base)) == 0;
}

[[nodiscard]] inline bool entailed(const Domain64& d, Lit l) noexcept {
  return entailed_mask(d.raw_mask(), d.base(), l);
}

[[nodiscard]] inline bool impossible(const Domain64& d, Lit l) noexcept {
  return impossible_mask(d.raw_mask(), d.base(), l);
}

/// Truth-set containment over all integers: every value satisfying `a`
/// satisfies `b`.  False whenever the literals speak about different
/// variables (no cross-variable implication exists).
[[nodiscard]] constexpr bool implies(Lit a, Lit b) noexcept {
  if (a.var != b.var) return false;
  switch (a.rel) {
    case Rel::kEq:
      switch (b.rel) {
        case Rel::kEq:
          return a.val == b.val;
        case Rel::kNe:
          return a.val != b.val;
        case Rel::kLe:
          return a.val <= b.val;
        case Rel::kGe:
          return a.val >= b.val;
      }
      return false;
    case Rel::kNe:
      // A co-finite truth set only fits inside another co-finite one.
      return b.rel == Rel::kNe && a.val == b.val;
    case Rel::kLe:
      if (b.rel == Rel::kLe) return a.val <= b.val;
      return b.rel == Rel::kNe && b.val > a.val;
    case Rel::kGe:
      if (b.rel == Rel::kGe) return a.val >= b.val;
      return b.rel == Rel::kNe && b.val < a.val;
  }
  return false;
}

/// Nogood subsumption: nogood A (the conjunction of `a[0..a_len)`) makes
/// nogood B redundant when every state forbidden by B is forbidden by A —
/// i.e. conj(B) implies conj(A): every literal of A is implied by some
/// literal of B.  A shorter clause whose literals are individually weaker
/// therefore subsumes a longer, more specific one.
[[nodiscard]] inline bool nogood_subsumes(const Lit* a, std::int32_t a_len,
                                          const Lit* b,
                                          std::int32_t b_len) noexcept {
  MGRTS_ASSERT(a_len >= 0 && b_len >= 0);
  for (std::int32_t i = 0; i < a_len; ++i) {
    bool covered = false;
    for (std::int32_t j = 0; j < b_len && !covered; ++j) {
      covered = implies(b[j], a[i]);
    }
    if (!covered) return false;
  }
  return true;
}

}  // namespace mgrts::csp
