// Concrete propagators for the MGRTS encodings.
//
// CSP1 (§IV) needs:   AtMostOneTrue        — constraints (3) and (4)
//                     WeightedCountEq@1    — constraint (5) / weighted (11):
//                                            a boolean sum is the value==1
//                                            case of the weighted counter
//                                            (make_sum_eq / make_weighted_
//                                            sum_eq build it)
// CSP2-as-generic-CSP (§V) needs:
//                     CountEq              — constraint (9)
//                     WeightedCountEq      — heterogeneous (12)
//                     AllDifferentExcept   — constraint (8)
//                     SymmetryChain        — search rule (10)/(13), encoded
//                                            declaratively for the generic
//                                            solver (idle sorts last; see
//                                            DESIGN.md §3.4)
//
// All propagators are event-driven and incremental (DESIGN.md): advisors
// (`on_event`) maintain trailed counters or stale-tolerant pending lists in
// O(1) per domain change, so `propagate` runs in O(1) until the constraint
// becomes tight and only then pays an O(scope) sweep.  When the owning
// solver runs PropagationMode::kScratch they recompute from the full scope
// instead — same fixpoints, used as the differential-test reference.  All
// pruning goes through Solver::fix/remove so changes are trailed.
//
// Multi-level unwinding contract (DESIGN.md §15).  Non-chronological
// backjumping restores the trail several decision levels at once, so every
// piece of per-propagator incremental state must be correct after a restore
// to an ARBITRARY earlier mark, not just the parent level.  Each class here
// satisfies that through one of two disciplines:
//
// * Trailed counters (AtMostOneTrue::one_pos_, CountEq/WeightedCountEq
//   lb_/ub_) live in Solver state slots.  The state trail replays old
//   values back-to-front down to the target mark, and a backjump's mark is
//   a prefix of the trail exactly like a chronological one — the restored
//   counter is the counter that held at that level, whatever the distance.
//
// * Stale-tolerant pending buffers (AtMostOneTrue::pending_,
//   AllDifferentExcept::marked_, SymmetryChain::pair_dirty_/worklist_) are
//   NOT unwound; every entry is re-verified against the current domain at
//   drain time, so entries stranded by a backjump are no-ops (never wrong).
//   The buffers only ever over-approximate the work set.
//
// * The kMatching cached matching relies on post-restore domains being
//   SUPERSETS of the state the matching was computed in.  That monotonicity
//   argument is distance-independent: a jump over five levels restores a
//   superset just like a single-level pop, so cached edges stay valid and
//   the repair pass drops exactly the edges the new branch invalidated.
//
// None of these disciplines inspects the backtrack distance, which is the
// invariant the multi-level-unwind consistency pins in csp_engine_test and
// csp_uip_test lock down.
#pragma once

#include <memory>
#include <vector>

#include "csp/solver.hpp"

namespace mgrts::csp {

/// sum_i vars[i] <= 1 over boolean {0,1} variables.  Wakes only on fixes
/// (on {0,1} every change is a fix); the advisor records positions fixed to
/// 1 in a pending list, so a run is O(new ones) + one O(n) broadcast when
/// the first 1 appears.
class AtMostOneTrue final : public Propagator {
 public:
  explicit AtMostOneTrue(std::vector<VarId> vars);
  PropResult propagate(Solver& solver) override;
  void attach(Solver& solver) override;
  [[nodiscard]] WakePolicy wake_policy() const override {
    return WakePolicy::kFixedOnly;
  }
  [[nodiscard]] PropPriority priority() const override {
    return PropPriority::kFast;
  }
  bool on_event(Solver& solver, std::int32_t pos,
                std::uint64_t old_mask) override;
  [[nodiscard]] const std::vector<VarId>& scope() const override {
    return vars_;
  }
  [[nodiscard]] const char* name() const override { return "at-most-one"; }

 private:
  PropResult broadcast(Solver& solver, std::size_t one_pos);

  std::vector<VarId> vars_;
  StateSlot one_pos_ = -1;  ///< trailed: position fixed to 1 (+1; 0 = none)
  std::vector<std::int32_t> pending_;
  bool primed_ = false;
};

/// |{ i : vars[i] == value }| == target.  Incremental state: trailed lb
/// (#fixed to value) and ub (#containing value).
class CountEq final : public Propagator {
 public:
  CountEq(std::vector<VarId> vars, Value value, std::int64_t target);
  PropResult propagate(Solver& solver) override;
  void attach(Solver& solver) override;
  [[nodiscard]] PropPriority priority() const override {
    return PropPriority::kCounter;
  }
  bool on_event(Solver& solver, std::int32_t pos,
                std::uint64_t old_mask) override;
  [[nodiscard]] const std::vector<VarId>& scope() const override {
    return vars_;
  }
  [[nodiscard]] const char* name() const override { return "count-eq"; }

 private:
  std::vector<VarId> vars_;
  Value value_;
  std::int64_t target_;
  StateSlot lb_ = -1;  ///< trailed: variables fixed to value_
  StateSlot ub_ = -1;  ///< trailed: variables whose domain contains value_
  bool primed_ = false;
};

/// sum_i weights[i] * [vars[i] == value] == target (heterogeneous (12)).
class WeightedCountEq final : public Propagator {
 public:
  WeightedCountEq(std::vector<VarId> vars, std::vector<std::int64_t> weights,
                  Value value, std::int64_t target);
  PropResult propagate(Solver& solver) override;
  void attach(Solver& solver) override;
  [[nodiscard]] PropPriority priority() const override {
    return PropPriority::kCounter;
  }
  bool on_event(Solver& solver, std::int32_t pos,
                std::uint64_t old_mask) override;
  [[nodiscard]] const std::vector<VarId>& scope() const override {
    return vars_;
  }
  [[nodiscard]] const char* name() const override {
    return "weighted-count-eq";
  }

 private:
  [[nodiscard]] bool pruning_possible(std::int64_t lb,
                                      std::int64_t ub) const noexcept {
    return lb > target_ || ub < target_ || lb + max_weight_ > target_ ||
           ub - min_weight_ < target_;
  }
  PropResult sweep(Solver& solver);

  std::vector<VarId> vars_;
  std::vector<std::int64_t> weights_;
  Value value_;
  std::int64_t target_;
  std::int64_t min_weight_ = 0;
  std::int64_t max_weight_ = 0;
  StateSlot lb_ = -1;  ///< trailed: weight fixed to value_
  StateSlot ub_ = -1;  ///< trailed: weight that can still take value_
  bool primed_ = false;
};

/// All variables taking a value != `except` take pairwise distinct values
/// (constraint (8): a task occupies at most one processor per slot).
///
/// Two consistency levels (PropagationLevel, DESIGN.md §14):
///
/// * kForwardCheck (default) — wakes only on fixes; the advisor records
///   newly fixed positions, so a run broadcasts each fixed value exactly
///   once instead of rescanning the quadratic pair set.
/// * kMatching — Régin-style GAC: a maximum matching on the value graph
///   (vars that can avoid `except` must be matched to distinct values),
///   repaired incrementally across events, with Tarjan SCCs over the
///   residual graph pruning every edge that lies in no solution.  Prunes a
///   strict superset of forward checking.  The matching is deliberately
///   NOT trailed: along a branch domains only shrink, and after a
///   backtrack they are supersets of any deeper state, so cached matching
///   edges stay valid and only edges invalidated by the *new* branch need
///   repair (the stale-tolerant-buffer discipline of DESIGN.md §2).
class AllDifferentExcept final : public Propagator {
 public:
  AllDifferentExcept(std::vector<VarId> vars, Value except,
                     PropagationLevel level = PropagationLevel::kForwardCheck);
  PropResult propagate(Solver& solver) override;
  [[nodiscard]] WakePolicy wake_policy() const override {
    return level_ == PropagationLevel::kMatching ? WakePolicy::kAnyChange
                                                 : WakePolicy::kFixedOnly;
  }
  [[nodiscard]] PropPriority priority() const override {
    return level_ == PropagationLevel::kMatching ? PropPriority::kGlobal
                                                 : PropPriority::kFast;
  }
  bool on_event(Solver& solver, std::int32_t pos,
                std::uint64_t old_mask) override;
  [[nodiscard]] const std::vector<VarId>& scope() const override {
    return vars_;
  }
  [[nodiscard]] const char* name() const override {
    return level_ == PropagationLevel::kMatching ? "all-different-matching"
                                                 : "all-different-except";
  }

 private:
  PropResult broadcast(Solver& solver, std::size_t pos, Value v);
  void clear_marks();

  // ---- kMatching machinery (DESIGN.md §14) ----------------------------
  PropResult propagate_matching(Solver& solver);
  /// Kuhn augmenting path from scope position `pos` over the current
  /// domains; returns false when no augmenting path exists.
  bool augment(Solver& solver, std::int32_t pos);
  void init_matching(Solver& solver);

  std::vector<VarId> vars_;
  Value except_;
  PropagationLevel level_;
  // Dirty marks per scope position (stale-tolerant: re-verified against the
  // current domain at drain time).  Drained in ascending position order so
  // the event sequence matches the scratch reference's scan exactly.
  std::vector<std::uint8_t> marked_;
  std::int32_t marked_count_ = 0;
  bool primed_ = false;

  // Matching state, lazily sized on the first matching run.  Values are
  // indexed by offset from vmin_ (the smallest value over all initial
  // domains); the except value owns no node.
  static constexpr Value kUnmatched = -1;
  Value vmin_ = 0;
  std::int32_t value_count_ = 0;
  std::vector<std::int32_t> match_of_pos_;  ///< value index or kUnmatched
  std::vector<std::int32_t> match_of_val_;  ///< scope position or kUnmatched
  std::vector<std::int64_t> visit_stamp_;   ///< per-value Kuhn visit epoch
  std::int64_t visit_epoch_ = 0;
  // Residual-graph + Tarjan scratch (nodes: positions, then values, then
  // Θ, then T); CSR adjacency rebuilt per run, no allocation once warm.
  std::vector<std::uint8_t> present_;  ///< value in some current domain
  std::vector<std::int32_t> adj_off_;
  std::vector<std::int32_t> adj_dat_;
  std::vector<std::int32_t> scc_id_;
  std::vector<std::int32_t> low_;
  std::vector<std::int32_t> index_;
  std::vector<std::int32_t> scc_stack_;
  std::vector<std::uint8_t> on_stack_;
  std::vector<std::pair<std::int32_t, std::int32_t>> dfs_;
  std::vector<std::uint64_t> kill_;  ///< per-position pruning masks
};

/// Symmetry-breaking chain over one group of identical processors: the
/// non-idle values along `vars` are strictly ascending and idle entries
/// trail (idle compares as +infinity; equality is allowed at idle only).
/// The advisor watches *neighbour pairs*: a change on scope position p
/// marks the pairs (p-1, p) and (p, p+1) dirty, and an incremental run
/// drains only the dirty-pair worklist (re-marking neighbours of pairs it
/// prunes) instead of sweeping the whole group — O(changed pairs) per wake.
/// The pairwise bounds rule is monotone, so the worklist fixpoint equals
/// the full-sweep fixpoint and both propagation modes stay tree-identical.
class SymmetryChain final : public Propagator {
 public:
  SymmetryChain(std::vector<VarId> vars, Value idle);
  PropResult propagate(Solver& solver) override;
  bool on_event(Solver& solver, std::int32_t pos,
                std::uint64_t old_mask) override;
  [[nodiscard]] const std::vector<VarId>& scope() const override {
    return vars_;
  }
  [[nodiscard]] const char* name() const override { return "symmetry-chain"; }

 private:
  /// Prunes pair k = (vars_[k], vars_[k+1]) to its local fixpoint; sets
  /// `changed` when any value was removed.
  PropResult process_pair(Solver& solver, std::size_t k, bool& changed);
  void mark_pair(std::size_t k);
  void clear_marks();

  std::vector<VarId> vars_;
  Value idle_;
  // Dirty neighbour pairs (stale-tolerant: re-verified against the current
  // domains at drain time, so marks surviving a backtrack are harmless).
  std::vector<std::uint8_t> pair_dirty_;
  std::vector<std::int32_t> worklist_;
  bool primed_ = false;
};

// Factory helpers (keep encoding code terse).
std::unique_ptr<Propagator> make_at_most_one(std::vector<VarId> vars);
std::unique_ptr<Propagator> make_sum_eq(std::vector<VarId> vars,
                                        std::int64_t target);
std::unique_ptr<Propagator> make_weighted_sum_eq(
    std::vector<VarId> vars, std::vector<std::int64_t> weights,
    std::int64_t target);
std::unique_ptr<Propagator> make_count_eq(std::vector<VarId> vars, Value value,
                                          std::int64_t target);
std::unique_ptr<Propagator> make_weighted_count_eq(
    std::vector<VarId> vars, std::vector<std::int64_t> weights, Value value,
    std::int64_t target);
std::unique_ptr<Propagator> make_all_different_except(
    std::vector<VarId> vars, Value except,
    PropagationLevel level = PropagationLevel::kForwardCheck);
std::unique_ptr<Propagator> make_symmetry_chain(std::vector<VarId> vars,
                                                Value idle);

}  // namespace mgrts::csp
