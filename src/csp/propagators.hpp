// Concrete propagators for the MGRTS encodings.
//
// CSP1 (§IV) needs:   AtMostOneTrue        — constraints (3) and (4)
//                     LinearBoolSumEq      — constraint (5) / weighted (11)
// CSP2-as-generic-CSP (§V) needs:
//                     CountEq              — constraint (9)
//                     WeightedCountEq      — heterogeneous (12)
//                     AllDifferentExcept   — constraint (8)
//                     SymmetryChain        — search rule (10)/(13), encoded
//                                            declaratively for the generic
//                                            solver (idle sorts last; see
//                                            DESIGN.md §3.4)
// All propagators run to their own fixpoint per invocation and prune only
// through Solver::fix/remove so changes are trailed.
#pragma once

#include <memory>
#include <vector>

#include "csp/solver.hpp"

namespace mgrts::csp {

/// sum_i vars[i] <= 1 over boolean {0,1} variables.
class AtMostOneTrue final : public Propagator {
 public:
  explicit AtMostOneTrue(std::vector<VarId> vars);
  PropResult propagate(Solver& solver) override;
  [[nodiscard]] const std::vector<VarId>& scope() const override {
    return vars_;
  }
  [[nodiscard]] const char* name() const override { return "at-most-one"; }

 private:
  std::vector<VarId> vars_;
};

/// sum_i weights[i] * vars[i] == target over boolean {0,1} variables with
/// non-negative weights.  Unit weights give the identical-platform (5);
/// execution rates give the heterogeneous (11).
class LinearBoolSumEq final : public Propagator {
 public:
  LinearBoolSumEq(std::vector<VarId> vars, std::vector<std::int64_t> weights,
                  std::int64_t target);
  PropResult propagate(Solver& solver) override;
  [[nodiscard]] const std::vector<VarId>& scope() const override {
    return vars_;
  }
  [[nodiscard]] const char* name() const override { return "lin-bool-sum-eq"; }

 private:
  std::vector<VarId> vars_;
  std::vector<std::int64_t> weights_;
  std::int64_t target_;
};

/// |{ i : vars[i] == value }| == target.
class CountEq final : public Propagator {
 public:
  CountEq(std::vector<VarId> vars, Value value, std::int64_t target);
  PropResult propagate(Solver& solver) override;
  [[nodiscard]] const std::vector<VarId>& scope() const override {
    return vars_;
  }
  [[nodiscard]] const char* name() const override { return "count-eq"; }

 private:
  std::vector<VarId> vars_;
  Value value_;
  std::int64_t target_;
};

/// sum_i weights[i] * [vars[i] == value] == target (heterogeneous (12)).
class WeightedCountEq final : public Propagator {
 public:
  WeightedCountEq(std::vector<VarId> vars, std::vector<std::int64_t> weights,
                  Value value, std::int64_t target);
  PropResult propagate(Solver& solver) override;
  [[nodiscard]] const std::vector<VarId>& scope() const override {
    return vars_;
  }
  [[nodiscard]] const char* name() const override {
    return "weighted-count-eq";
  }

 private:
  std::vector<VarId> vars_;
  std::vector<std::int64_t> weights_;
  Value value_;
  std::int64_t target_;
};

/// All variables taking a value != `except` take pairwise distinct values
/// (constraint (8): a task occupies at most one processor per slot).
class AllDifferentExcept final : public Propagator {
 public:
  AllDifferentExcept(std::vector<VarId> vars, Value except);
  PropResult propagate(Solver& solver) override;
  [[nodiscard]] const std::vector<VarId>& scope() const override {
    return vars_;
  }
  [[nodiscard]] const char* name() const override {
    return "all-different-except";
  }

 private:
  std::vector<VarId> vars_;
  Value except_;
};

/// Symmetry-breaking chain over one group of identical processors: the
/// non-idle values along `vars` are strictly ascending and idle entries
/// trail (idle compares as +infinity; equality is allowed at idle only).
class SymmetryChain final : public Propagator {
 public:
  SymmetryChain(std::vector<VarId> vars, Value idle);
  PropResult propagate(Solver& solver) override;
  [[nodiscard]] const std::vector<VarId>& scope() const override {
    return vars_;
  }
  [[nodiscard]] const char* name() const override { return "symmetry-chain"; }

 private:
  std::vector<VarId> vars_;
  Value idle_;
};

// Factory helpers (keep encoding code terse).
std::unique_ptr<Propagator> make_at_most_one(std::vector<VarId> vars);
std::unique_ptr<Propagator> make_sum_eq(std::vector<VarId> vars,
                                        std::int64_t target);
std::unique_ptr<Propagator> make_weighted_sum_eq(
    std::vector<VarId> vars, std::vector<std::int64_t> weights,
    std::int64_t target);
std::unique_ptr<Propagator> make_count_eq(std::vector<VarId> vars, Value value,
                                          std::int64_t target);
std::unique_ptr<Propagator> make_weighted_count_eq(
    std::vector<VarId> vars, std::vector<std::int64_t> weights, Value value,
    std::int64_t target);
std::unique_ptr<Propagator> make_all_different_except(std::vector<VarId> vars,
                                                      Value except);
std::unique_ptr<Propagator> make_symmetry_chain(std::vector<VarId> vars,
                                                Value idle);

}  // namespace mgrts::csp
