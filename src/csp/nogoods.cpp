#include "csp/nogoods.hpp"

#include <algorithm>
#include <numeric>

#include "support/assert.hpp"

namespace mgrts::csp {

std::int32_t block_lbd(const std::int32_t* depths, std::int32_t n) {
  MGRTS_EXPECTS(n >= 1);
  std::int32_t runs = 1;
  for (std::int32_t k = 1; k < n; ++k) {
    MGRTS_ASSERT(depths[k] > depths[k - 1]);
    runs += depths[k] == depths[k - 1] + 1 ? 0 : 1;
  }
  return runs;
}

// ----------------------------------------------------------------- pool

void NogoodPool::publish(std::int32_t lane, const NogoodLit* lits,
                         std::int32_t len, std::int32_t lbd) {
  MGRTS_EXPECTS(len > 0);
  std::lock_guard lock(mutex_);
  entries_.push_back(
      Entry{lane, PooledNogood{std::vector<NogoodLit>(lits, lits + len),
                               lbd}});
}

std::size_t NogoodPool::import_since(std::size_t cursor, std::int32_t lane,
                                     std::vector<PooledNogood>& out) const {
  std::lock_guard lock(mutex_);
  for (std::size_t k = cursor; k < entries_.size(); ++k) {
    if (entries_[k].lane != lane) out.push_back(entries_[k].clause);
  }
  return entries_.size();
}

std::size_t NogoodPool::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

// ---------------------------------------------------------------- store

NogoodStore::NogoodStore(std::int64_t vars, std::int32_t max_length,
                         std::int32_t max_lbd, std::int32_t db_limit)
    : max_length_(max_length), max_lbd_(max_lbd), db_limit_(db_limit) {
  MGRTS_EXPECTS(vars > 0);
  MGRTS_EXPECTS(max_length_ >= 1);
  MGRTS_EXPECTS(max_lbd_ >= 1);
  MGRTS_EXPECTS(db_limit_ >= 1);
  scope_.resize(static_cast<std::size_t>(vars));
  std::iota(scope_.begin(), scope_.end(), VarId{0});
  watch_.resize(static_cast<std::size_t>(vars));
}

const std::vector<VarId>& NogoodStore::failure_scope() const {
  // Charging the full scope would bump every variable's wdeg on each nogood
  // conflict and drown the heuristic; charge the violated clause instead.
  return conflict_vars_.empty() ? scope_ : conflict_vars_;
}

void NogoodStore::add_clause(const NogoodLit* lits, std::int32_t len,
                             std::int32_t lbd, bool imported) {
  MGRTS_EXPECTS(len >= 2);
  const auto offset = static_cast<std::int32_t>(lits_.size());
  lits_.insert(lits_.end(), lits, lits + len);
  const auto id = static_cast<std::int32_t>(clauses_.size());
  clauses_.push_back(Clause{offset, len, lbd, imported});
  watch_[static_cast<std::size_t>(lits[0].var)].push_back(id);
  watch_[static_cast<std::size_t>(lits[1].var)].push_back(id);
}

void NogoodStore::record(const std::vector<NogoodLit>& decisions,
                         std::int32_t raw_len, std::int32_t lbd,
                         SolveStats& stats) {
  const auto len = static_cast<std::int32_t>(decisions.size());
  if (len == 0 || len > max_length_) return;
  if (len == 1) {
    root_units_.push_back(decisions.front());
    ++stats.nogoods_recorded;
    stats.nogood_lits_before += raw_len;
    stats.nogood_lits_after += len;
    return;
  }
  // Pause recording when the database has outgrown twice its soft limit;
  // the next restart prunes it back down.
  if (clause_count() >= 2 * static_cast<std::int64_t>(db_limit_)) return;

  // Watch order: the failed assignment (free right now — the caller just
  // backtracked it) and the deepest still-standing decision (the first to
  // be un-falsified by further backtracking).  Both watches are therefore
  // as close to non-falsified as a mid-search insertion allows; any
  // re-falsification arrives as a fix event on a watched variable.
  std::vector<NogoodLit> ordered;
  ordered.reserve(decisions.size());
  ordered.push_back(decisions[static_cast<std::size_t>(len - 1)]);
  ordered.push_back(decisions[static_cast<std::size_t>(len - 2)]);
  for (std::int32_t k = 0; k < len - 2; ++k) {
    ordered.push_back(decisions[static_cast<std::size_t>(k)]);
  }
  add_clause(ordered.data(), len, lbd, /*imported=*/false);
  ++stats.nogoods_recorded;
  stats.nogood_lits_before += raw_len;
  stats.nogood_lits_after += len;
}

bool NogoodStore::on_event(Solver& solver, std::int32_t pos,
                           std::uint64_t old_mask) {
  static_cast<void>(old_mask);
  // Fixed-only subscription: scope is the identity map, so pos is the
  // variable id.  Queue every clause one of whose *current* watches just
  // became falsified; entries are stale-tolerant (watch lists may carry
  // moved-away watches, and the fix may be unwound before the run).
  const VarId var = scope_[static_cast<std::size_t>(pos)];
  const Value fixed = solver.domain(var).value();
  bool woke = false;
  for (const std::int32_t id : watch_[static_cast<std::size_t>(var)]) {
    const Clause& c = clauses_[static_cast<std::size_t>(id)];
    for (int w = 0; w < 2; ++w) {
      const NogoodLit& lit =
          lits_[static_cast<std::size_t>(c.offset + w)];
      if (lit.var == var && lit.val == fixed) {
        pending_.push_back(id);
        woke = true;
        break;
      }
    }
  }
  return woke;
}

PropResult NogoodStore::examine(Solver& solver, std::int32_t clause_id) {
  Clause& c = clauses_[static_cast<std::size_t>(clause_id)];
  NogoodLit* lits = &lits_[static_cast<std::size_t>(c.offset)];
  for (int w = 0; w < 2; ++w) {
    if (!falsified(solver, lits[w])) continue;
    const int o = 1 - w;
    if (satisfied(solver, lits[o])) continue;  // clause already true
    // Find a replacement watch among the tail literals.
    bool moved = false;
    for (std::int32_t k = 2; k < c.len; ++k) {
      if (falsified(solver, lits[k])) continue;
      std::swap(lits[w], lits[k]);
      watch_[static_cast<std::size_t>(lits[w].var)].push_back(clause_id);
      // The old entry under the falsified variable goes stale; on_event
      // re-verifies watch membership, so no erase is needed here.
      moved = true;
      break;
    }
    if (moved) continue;
    // No replacement: the other watch is unit or the clause is violated.
    // Either failure (violated clause, or a unit removal that empties the
    // domain) is attributed to this clause's variables for dom/wdeg.
    conflict_vars_.clear();
    for (std::int32_t k = 0; k < c.len; ++k) {
      conflict_vars_.push_back(lits[k].var);
    }
    if (falsified(solver, lits[o])) {
      if (stats_ != nullptr) ++stats_->nogood_conflicts;
      return PropResult::kFail;
    }
    if (stats_ != nullptr) ++stats_->nogood_props;
    // The unit removal follows from this clause's other literals alone, not
    // from the store's all-variable scope — narrow the reason so conflict
    // analysis can chase the falsifying fixes instead of keeping every
    // decision (conflict_vars_ is exactly the clause's variables).
    solver.begin_explicit_reason(conflict_vars_.data(),
                                 static_cast<std::int32_t>(
                                     conflict_vars_.size()));
    const PropResult unit = solver.remove(lits[o].var, lits[o].val);
    solver.end_explicit_reason();
    if (unit == PropResult::kFail && stats_ != nullptr) {
      ++stats_->nogood_conflicts;
    }
    return unit;
  }
  return PropResult::kOk;
}

bool NogoodStore::apply_root_unit(Solver& solver, const NogoodLit& unit,
                                  SolveStats& stats) {
  const Domain64& d = solver.domain(unit.var);
  if (!d.contains(unit.val)) return true;  // already gone for good
  if (d.is_fixed()) return false;  // root requires the refuted value
  ++stats.nogood_props;
  return solver.remove(unit.var, unit.val) != PropResult::kFail;
}

PropResult NogoodStore::propagate(Solver& solver) {
  // examine() can append to pending_ indirectly (its removes fix variables,
  // which wake this store again synchronously), so index, don't iterate.
  for (std::size_t k = 0; k < pending_.size(); ++k) {
    if (examine(solver, pending_[k]) == PropResult::kFail) {
      pending_.clear();
      return PropResult::kFail;
    }
  }
  pending_.clear();
  conflict_vars_.clear();
  return PropResult::kOk;
}

bool NogoodStore::restart_maintenance(Solver& solver, NogoodPool* pool,
                                      std::int32_t lane, SolveStats& stats) {
  pending_.clear();
  conflict_vars_.clear();

  if (pool != nullptr) {
    // Publish everything recorded since the previous restart, then adopt
    // the other lanes' entries.  Admission is by block LBD, not length: a
    // long clause glued into one depth run replays cheaply, a short one
    // scattered across the tree does not.
    for (std::size_t k = export_cursor_; k < clauses_.size(); ++k) {
      const Clause& c = clauses_[k];
      if (c.imported) continue;
      pool->publish(lane, &lits_[static_cast<std::size_t>(c.offset)], c.len,
                    c.lbd);
      ++stats.nogoods_exported;
    }
    std::vector<PooledNogood> fresh;
    pool_cursor_ = pool->import_since(pool_cursor_, lane, fresh);
    for (const auto& clause : fresh) {
      const auto len = static_cast<std::int32_t>(clause.lits.size());
      if (clause.lbd > max_lbd_ || len > max_length_) continue;
      if (len == 1) {
        root_units_.push_back(clause.lits.front());
      } else {
        add_clause(clause.lits.data(), len, clause.lbd, /*imported=*/true);
      }
      ++stats.nogoods_imported;
    }
  }

  // Root units strengthen the root permanently (the caller re-propagates
  // and advances its root mark afterwards).  Removals fire events against
  // the still-consistent pre-compaction structures; the pending entries
  // they generate are discarded below, which is safe because compaction
  // re-examines every literal against the root state anyway.
  for (const NogoodLit& unit : root_units_) {
    if (!apply_root_unit(solver, unit, stats)) return false;
  }
  root_units_.clear();
  pending_.clear();

  // Prune by glue: core clauses (block LBD <= kCoreLbd) are kept ahead of
  // the rest, newest-first within each class, and the whole database is
  // bounded by db_limit_ (a core flood cannot exceed it).
  constexpr std::int32_t kCoreLbd = 2;
  std::vector<Clause> kept;
  if (clause_count() > static_cast<std::int64_t>(db_limit_)) {
    std::int64_t cores = 0;
    for (const Clause& c : clauses_) cores += c.lbd <= kCoreLbd ? 1 : 0;
    std::int64_t core_budget = std::min<std::int64_t>(cores, db_limit_);
    std::int64_t long_budget = db_limit_ - core_budget;
    kept.reserve(static_cast<std::size_t>(db_limit_));
    for (auto it = clauses_.rbegin(); it != clauses_.rend(); ++it) {
      if (it->lbd <= kCoreLbd) {
        if (core_budget > 0) {
          kept.push_back(*it);
          --core_budget;
        }
      } else if (long_budget > 0) {
        kept.push_back(*it);
        --long_budget;
      }
    }
    std::reverse(kept.begin(), kept.end());  // keep recency order stable
  } else {
    kept = clauses_;
  }

  // Compact the arena, dropping clauses satisfied at the (possibly just
  // strengthened) root, folding root-unit clauses into the root, and
  // reporting root-violated clauses as UNSAT.  The trail is at the root,
  // so "satisfied/falsified now" means "satisfied/falsified forever".
  // Unit folds are only collected here — applying them fires fix events
  // that would re-enter on_event against half-rebuilt structures — and the
  // removals run after the new structures are installed.
  std::vector<NogoodLit> new_lits;
  std::vector<Clause> new_clauses;
  std::vector<NogoodLit> unit_folds;
  new_lits.reserve(lits_.size());
  new_clauses.reserve(kept.size());
  for (auto& list : watch_) list.clear();
  bool unsat = false;
  for (const Clause& c : kept) {
    const NogoodLit* lits = &lits_[static_cast<std::size_t>(c.offset)];
    bool sat = false;
    std::vector<NogoodLit> live;
    live.reserve(static_cast<std::size_t>(c.len));
    for (std::int32_t k = 0; k < c.len && !sat; ++k) {
      if (satisfied(solver, lits[k])) {
        sat = true;
      } else if (!falsified(solver, lits[k])) {
        live.push_back(lits[k]);
      }
    }
    if (sat) continue;
    if (live.empty()) {
      unsat = true;
      break;
    }
    if (live.size() == 1) {
      unit_folds.push_back(live.front());
      continue;
    }
    const auto offset = static_cast<std::int32_t>(new_lits.size());
    new_lits.insert(new_lits.end(), live.begin(), live.end());
    const auto id = static_cast<std::int32_t>(new_clauses.size());
    // Root folds shorten the clause but the recorded glue stays: LBD is a
    // property of the conflict, length of the storage.
    new_clauses.push_back(Clause{
        offset, static_cast<std::int32_t>(live.size()), c.lbd, c.imported});
    watch_[static_cast<std::size_t>(live[0].var)].push_back(id);
    watch_[static_cast<std::size_t>(live[1].var)].push_back(id);
  }
  lits_ = std::move(new_lits);
  clauses_ = std::move(new_clauses);
  export_cursor_ = clauses_.size();
  if (unsat) return false;
  for (const NogoodLit& unit : unit_folds) {
    if (!apply_root_unit(solver, unit, stats)) return false;
  }
  return true;
}

}  // namespace mgrts::csp
