#include "csp/nogoods.hpp"

#include <algorithm>
#include <bit>
#include <numeric>

#include "support/assert.hpp"

namespace mgrts::csp {

namespace {
/// Clauses at or below this block LBD form the protected core of the
/// database: never pruned, and the promotion target of replay-hit LBD
/// refreshes.
constexpr std::int32_t kCoreLbd = 2;
}  // namespace

std::int32_t block_lbd(const std::int32_t* depths, std::int32_t n) {
  MGRTS_EXPECTS(n >= 1);
  std::int32_t runs = 1;
  for (std::int32_t k = 1; k < n; ++k) {
    MGRTS_ASSERT(depths[k] > depths[k - 1]);
    runs += depths[k] == depths[k - 1] + 1 ? 0 : 1;
  }
  return runs;
}

// ----------------------------------------------------------------- pool

void NogoodPool::publish(std::int32_t lane, const Lit* lits,
                         std::int32_t len, std::int32_t lbd) {
  MGRTS_EXPECTS(len > 0);
  std::lock_guard lock(mutex_);
  entries_.push_back(
      Entry{lane, PooledNogood{std::vector<Lit>(lits, lits + len), lbd}});
}

std::size_t NogoodPool::import_since(std::size_t cursor, std::int32_t lane,
                                     std::vector<PooledNogood>& out) const {
  std::lock_guard lock(mutex_);
  for (std::size_t k = cursor; k < entries_.size(); ++k) {
    if (entries_[k].lane != lane) out.push_back(entries_[k].clause);
  }
  return entries_.size();
}

std::size_t NogoodPool::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

// ---------------------------------------------------------------- store

NogoodStore::NogoodStore(std::int64_t vars, std::int32_t max_length,
                         std::int32_t max_lbd, std::int32_t db_limit,
                         bool general)
    : max_length_(max_length),
      max_lbd_(max_lbd),
      db_limit_(db_limit),
      general_(general) {
  MGRTS_EXPECTS(vars > 0);
  MGRTS_EXPECTS(max_length_ >= 1);
  MGRTS_EXPECTS(max_lbd_ >= 1);
  MGRTS_EXPECTS(db_limit_ >= 1);
  scope_.resize(static_cast<std::size_t>(vars));
  std::iota(scope_.begin(), scope_.end(), VarId{0});
  watch_.resize(static_cast<std::size_t>(vars));
  agg_miss_.assign(static_cast<std::size_t>(vars), 0);
}

const std::vector<VarId>& NogoodStore::failure_scope() const {
  // Charging the full scope would bump every variable's wdeg on each nogood
  // conflict and drown the heuristic; charge the violated clause instead.
  return conflict_vars_.empty() ? scope_ : conflict_vars_;
}

void NogoodStore::push_watch(Lit lit, std::int32_t clause_id) {
  const Value base =
      solver_ != nullptr ? solver_->domain(lit.var).base() : Value{0};
  const std::uint64_t miss = ~truth_mask(lit, base);
  agg_miss_[static_cast<std::size_t>(lit.var)] |= miss;
  watch_[static_cast<std::size_t>(lit.var)].push_back(
      WatchRef{miss, clause_id});
}

void NogoodStore::add_clause(const Lit* lits, std::int32_t len,
                             std::int32_t lbd, bool imported) {
  MGRTS_EXPECTS(len >= 2);
  const auto offset = static_cast<std::int32_t>(lits_.size());
  lits_.insert(lits_.end(), lits, lits + len);
  const auto id = static_cast<std::int32_t>(clauses_.size());
  clauses_.push_back(Clause{offset, len, lbd, imported, /*deleted=*/false});
  push_watch(lits[0], id);
  push_watch(lits[1], id);
  ++live_;
}

void NogoodStore::record(const std::vector<Lit>& lits, std::int32_t raw_len,
                         std::int32_t lbd, SolveStats& stats) {
  const auto len = static_cast<std::int32_t>(lits.size());
  if (len == 0 || len > max_length_) return;
  if (len == 1) {
    root_units_.push_back(lits.front());
    ++stats.nogoods_recorded;
    stats.nogood_lits_before += raw_len;
    stats.nogood_lits_after += len;
    return;
  }
  // Pause recording when the database has outgrown twice its soft limit;
  // the next restart prunes it back down.
  if (live_ >= 2 * static_cast<std::int64_t>(db_limit_)) return;

  // On-the-fly subsumption against the previous recording (successive
  // conflicts in one subtree often differ by one literal): keep only the
  // stronger clause.  "A subsumes B" reads "every state B forbids, A
  // forbids too" — the order-insensitive literal-implication cover.
  if (last_recorded_ >= 0) {
    Clause& prev = clauses_[static_cast<std::size_t>(last_recorded_)];
    if (!prev.deleted) {
      const Lit* prev_lits = &lits_[static_cast<std::size_t>(prev.offset)];
      if (nogood_subsumes(prev_lits, prev.len, lits.data(), len)) {
        ++stats.nogoods_subsumed;  // the database already covers this one
        return;
      }
      if (nogood_subsumes(lits.data(), len, prev_lits, prev.len)) {
        prev.deleted = true;  // watches go stale; maintenance compacts
        --live_;
        ++stats.nogoods_subsumed;
      }
    }
  }

  // Watch order: the conflict-level literal (free right now — the caller
  // just backtracked it) and the deepest still-entailed literal (the first
  // to be un-entailed by further backtracking).  Both watches are
  // therefore as close to non-entailed as a mid-search insertion allows;
  // any re-entailment arrives as an event on a watched variable.
  ordered_.clear();
  ordered_.reserve(lits.size());
  ordered_.push_back(lits[static_cast<std::size_t>(len - 1)]);
  ordered_.push_back(lits[static_cast<std::size_t>(len - 2)]);
  for (std::int32_t k = 0; k < len - 2; ++k) {
    ordered_.push_back(lits[static_cast<std::size_t>(k)]);
  }
  add_clause(ordered_.data(), len, lbd, /*imported=*/false);
  last_recorded_ = static_cast<std::int32_t>(clauses_.size()) - 1;
  ++stats.nogoods_recorded;
  stats.nogood_lits_before += raw_len;
  stats.nogood_lits_after += len;
}

bool NogoodStore::on_event(Solver& solver, std::int32_t pos,
                           std::uint64_t old_mask) {
  // Scope is the identity map, so pos is the variable id.  Queue every
  // clause one of whose watches just became entailed — for a (var == val)
  // watch that is exactly a fix to val (the kFixedOnly behavior), for
  // bound and != watches any narrowing can do it, which is why general
  // stores subscribe to every change.  Each WatchRef carries its literal's
  // precomputed miss mask, so the transition test is two ANDs per entry
  // with no clause-memory access at all.  Entries are stale-tolerant
  // (moved-away or deleted-clause watches may fire spuriously; examine()
  // re-verifies against clause memory, and the change may be unwound
  // before the run anyway).
  const VarId var = scope_[static_cast<std::size_t>(pos)];
  const std::uint64_t cur_mask = solver.domain(var).raw_mask();
  // Aggregate pre-test (PR 8 profiling follow-up): a transition needs the
  // removed bits to hit some watch's miss mask, so one AND against the
  // per-variable aggregate proves most deltas can't wake anything and
  // skips the list walk.
  if (((old_mask & ~cur_mask) & agg_miss_[static_cast<std::size_t>(var)]) ==
      0) {
    return false;
  }
  bool woke = false;
  for (const WatchRef& w : watch_[static_cast<std::size_t>(var)]) {
    if ((cur_mask & w.miss) == 0 && (old_mask & w.miss) != 0) {
      pending_.push_back(w.clause);
      woke = true;
    }
  }
  return woke;
}

PropResult NogoodStore::assert_negation(Solver& solver, Lit lit) {
  if (lit.rel == Rel::kNe) {
    // ¬(var != val) is the assignment itself; one trail entry.
    return solver.fix(lit.var, lit.val);
  }
  // Prune every remaining value satisfying the conjunct (for == a single
  // removal, for bounds a half-window sweep).
  const Domain64& d = solver.domain(lit.var);
  const Value base = d.base();
  std::uint64_t kill = d.raw_mask() & truth_mask(lit, base);
  while (kill != 0) {
    const Value v = base + std::countr_zero(kill);
    kill &= kill - 1;
    if (solver.remove(lit.var, v) == PropResult::kFail) {
      return PropResult::kFail;
    }
  }
  return PropResult::kOk;
}

void NogoodStore::refresh_lbd(const Solver& solver, Clause& clause) {
  // Replay-hit LBD refresh (DESIGN.md §11): the block LBD recorded at the
  // conflict described *that* tree; where the clause fires now, the
  // entailment depths of its literals may be far more glued.  Recompute
  // and keep the improvement — a clause that keeps firing inside one
  // depth block earns its way out of the prunable tier.
  depth_buf_.clear();
  const Lit* lits = &lits_[static_cast<std::size_t>(clause.offset)];
  for (std::int32_t k = 0; k < clause.len; ++k) {
    const std::int32_t depth = solver.entailment_depth(lits[k]);
    if (depth >= 0) depth_buf_.push_back(depth);
  }
  if (depth_buf_.empty()) return;
  std::sort(depth_buf_.begin(), depth_buf_.end());
  depth_buf_.erase(std::unique(depth_buf_.begin(), depth_buf_.end()),
                   depth_buf_.end());
  const std::int32_t fresh = block_lbd(
      depth_buf_.data(), static_cast<std::int32_t>(depth_buf_.size()));
  if (fresh < clause.lbd) {
    clause.lbd = fresh;
    if (stats_ != nullptr) ++stats_->nogood_lbd_refreshed;
  }
}

PropResult NogoodStore::examine(Solver& solver, std::int32_t clause_id) {
  Clause& c = clauses_[static_cast<std::size_t>(clause_id)];
  if (c.deleted) return PropResult::kOk;
  Lit* lits = &lits_[static_cast<std::size_t>(c.offset)];
  for (int w = 0; w < 2; ++w) {
    if (!lit_entailed(solver, lits[w])) continue;
    const int o = 1 - w;
    if (lit_impossible(solver, lits[o])) continue;  // clause already true
    // Find a replacement watch among the tail literals.
    bool moved = false;
    for (std::int32_t k = 2; k < c.len; ++k) {
      if (lit_entailed(solver, lits[k])) continue;
      std::swap(lits[w], lits[k]);
      push_watch(lits[w], clause_id);
      // The old entry under the entailed variable goes stale; on_event
      // re-verifies watch membership, so no erase is needed here.
      moved = true;
      break;
    }
    if (moved) continue;
    // No replacement: the other watch is unit or the clause is violated.
    // Either failure (violated clause, or a unit assertion that empties
    // the domain) is attributed to this clause's variables for dom/wdeg.
    conflict_vars_.clear();
    for (std::int32_t k = 0; k < c.len; ++k) {
      conflict_vars_.push_back(lits[k].var);
    }
    if (general_ && c.lbd > kCoreLbd) refresh_lbd(solver, c);
    if (lit_entailed(solver, lits[o])) {
      if (stats_ != nullptr) ++stats_->nogood_conflicts;
      return PropResult::kFail;
    }
    if (stats_ != nullptr) ++stats_->nogood_props;
    // The unit assertion follows from this clause's other literals alone,
    // not from the store's all-variable scope — narrow the reason so
    // conflict analysis can chase the entailing changes instead of keeping
    // every decision (conflict_vars_ is exactly the clause's variables).
    solver.begin_explicit_reason(conflict_vars_.data(),
                                 static_cast<std::int32_t>(
                                     conflict_vars_.size()));
    const PropResult unit = assert_negation(solver, lits[o]);
    solver.end_explicit_reason();
    if (unit == PropResult::kFail && stats_ != nullptr) {
      ++stats_->nogood_conflicts;
    }
    return unit;
  }
  return PropResult::kOk;
}

bool NogoodStore::apply_root_unit(Solver& solver, Lit unit,
                                  SolveStats& stats) {
  if (lit_impossible(solver, unit)) return true;  // already refuted for good
  if (lit_entailed(solver, unit)) return false;  // root requires the literal
  ++stats.nogood_props;
  return assert_negation(solver, unit) != PropResult::kFail;
}

PropResult NogoodStore::propagate(Solver& solver) {
  // examine() can append to pending_ indirectly (its assertions narrow
  // variables, which wake this store again synchronously), so index, don't
  // iterate.
  for (std::size_t k = 0; k < pending_.size(); ++k) {
    if (examine(solver, pending_[k]) == PropResult::kFail) {
      pending_.clear();
      return PropResult::kFail;
    }
  }
  pending_.clear();
  conflict_vars_.clear();
  return PropResult::kOk;
}

bool NogoodStore::restart_maintenance(Solver& solver, NogoodPool* pool,
                                      std::int32_t lane, SolveStats& stats) {
  solver_ = &solver;  // pre-attach imports (tests) need bases for watches
  pending_.clear();
  conflict_vars_.clear();
  last_recorded_ = -1;  // compaction renumbers; drop the subsumption anchor

  if (pool != nullptr) {
    // Publish everything recorded since the previous restart, then adopt
    // the other lanes' entries.  Admission is by block LBD, not length: a
    // long clause glued into one depth run replays cheaply, a short one
    // scattered across the tree does not.
    for (std::size_t k = export_cursor_; k < clauses_.size(); ++k) {
      const Clause& c = clauses_[k];
      if (c.imported || c.deleted) continue;
      pool->publish(lane, &lits_[static_cast<std::size_t>(c.offset)], c.len,
                    c.lbd);
      ++stats.nogoods_exported;
    }
    std::vector<PooledNogood> fresh;
    pool_cursor_ = pool->import_since(pool_cursor_, lane, fresh);
    for (const auto& clause : fresh) {
      const auto len = static_cast<std::int32_t>(clause.lits.size());
      if (clause.lbd > max_lbd_ || len > max_length_) continue;
      if (len == 1) {
        // Root units are asserted directly, never watched — admissible
        // whatever their literal form, even into a fix-only store.
        root_units_.push_back(clause.lits.front());
        ++stats.nogoods_imported;
        continue;
      }
      if (!general_ &&
          std::any_of(clause.lits.begin(), clause.lits.end(),
                      [](const Lit& l) { return l.rel != Rel::kEq; })) {
        // A fix-only store would miss the entailment events of bound/!=
        // literals; soundness is unaffected (clauses only prune), but the
        // clause would be dead weight.
        continue;
      }
      add_clause(clause.lits.data(), len, clause.lbd, /*imported=*/true);
      ++stats.nogoods_imported;
    }
  }

  // Root units strengthen the root permanently (the caller re-propagates
  // and advances its root mark afterwards).  Assertions fire events
  // against the still-consistent pre-compaction structures; the pending
  // entries they generate are discarded below, which is safe because
  // compaction re-examines every literal against the root state anyway.
  for (const Lit& unit : root_units_) {
    if (!apply_root_unit(solver, unit, stats)) return false;
  }
  root_units_.clear();
  pending_.clear();

  // Prune by glue: core clauses (block LBD <= kCoreLbd, including replay-
  // hit promotions) are kept ahead of the rest, newest-first within each
  // class, and the whole database is bounded by db_limit_ (a core flood
  // cannot exceed it).  Subsumed clauses drop here regardless.
  std::vector<Clause> kept;
  if (live_ > static_cast<std::int64_t>(db_limit_)) {
    std::int64_t cores = 0;
    for (const Clause& c : clauses_) {
      cores += !c.deleted && c.lbd <= kCoreLbd ? 1 : 0;
    }
    std::int64_t core_budget = std::min<std::int64_t>(cores, db_limit_);
    std::int64_t long_budget = db_limit_ - core_budget;
    kept.reserve(static_cast<std::size_t>(db_limit_));
    for (auto it = clauses_.rbegin(); it != clauses_.rend(); ++it) {
      if (it->deleted) continue;
      if (it->lbd <= kCoreLbd) {
        if (core_budget > 0) {
          kept.push_back(*it);
          --core_budget;
        }
      } else if (long_budget > 0) {
        kept.push_back(*it);
        --long_budget;
      }
    }
    std::reverse(kept.begin(), kept.end());  // keep recency order stable
  } else {
    kept.reserve(static_cast<std::size_t>(live_));
    for (const Clause& c : clauses_) {
      if (!c.deleted) kept.push_back(c);
    }
  }

  // Compact the arena, dropping clauses whose conjuncts became impossible
  // at the (possibly just strengthened) root, folding root-unit clauses
  // into the root, and reporting root-violated clauses as UNSAT.  The
  // trail is at the root, so "entailed/impossible now" means "forever".
  // Unit folds are only collected here — applying them fires events that
  // would re-enter on_event against half-rebuilt structures — and the
  // assertions run after the new structures are installed.
  std::vector<Lit> new_lits;
  std::vector<Clause> new_clauses;
  std::vector<Lit> unit_folds;
  new_lits.reserve(lits_.size());
  new_clauses.reserve(kept.size());
  for (auto& list : watch_) list.clear();
  std::fill(agg_miss_.begin(), agg_miss_.end(), std::uint64_t{0});
  bool unsat = false;
  for (const Clause& c : kept) {
    const Lit* lits = &lits_[static_cast<std::size_t>(c.offset)];
    bool sat = false;
    std::vector<Lit> live;
    live.reserve(static_cast<std::size_t>(c.len));
    for (std::int32_t k = 0; k < c.len && !sat; ++k) {
      if (lit_impossible(solver, lits[k])) {
        sat = true;
      } else if (!lit_entailed(solver, lits[k])) {
        live.push_back(lits[k]);
      }
    }
    if (sat) continue;
    if (live.empty()) {
      unsat = true;
      break;
    }
    if (live.size() == 1) {
      unit_folds.push_back(live.front());
      continue;
    }
    const auto offset = static_cast<std::int32_t>(new_lits.size());
    new_lits.insert(new_lits.end(), live.begin(), live.end());
    const auto id = static_cast<std::int32_t>(new_clauses.size());
    // Root folds shorten the clause but the recorded glue stays: LBD is a
    // property of the conflict, length of the storage.
    new_clauses.push_back(Clause{offset,
                                 static_cast<std::int32_t>(live.size()),
                                 c.lbd, c.imported, /*deleted=*/false});
    push_watch(live[0], id);
    push_watch(live[1], id);
  }
  lits_ = std::move(new_lits);
  clauses_ = std::move(new_clauses);
  live_ = static_cast<std::int64_t>(clauses_.size());
  export_cursor_ = clauses_.size();
  if (unsat) return false;
  for (const Lit& unit : unit_folds) {
    if (!apply_root_unit(solver, unit, stats)) return false;
  }
  return true;
}

}  // namespace mgrts::csp
