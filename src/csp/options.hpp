// Search configuration, limits, and result types of the generic solver.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "csp/domain.hpp"
#include "support/deadline.hpp"

namespace mgrts::csp {

class NogoodPool;

/// Variable selection strategies.
enum class VarHeuristic {
  kLex,        ///< first unfixed variable in declaration order
  kMinDomain,  ///< smallest current domain, ties by declaration order
  kDomWdeg,    ///< dom/wdeg (Boussemart et al.), the "modern default"
};

/// How the kMinDomain/kDomWdeg winner is located.  kScan is the O(unfixed)
/// reference loop; kHeap is a lazy binary heap over the unfixed set updated
/// from the same kFixed/kPruned events the propagators receive (O(log n)
/// select, O(1) amortized update).  Both modes pick the same variable under
/// deterministic tie-breaking, so they explore bit-identical trees (the
/// differential test in csp_engine_test pins this); under random_var_ties
/// the tie set is identical but the draw stream differs, so trees may
/// diverge between modes (each stays seed-deterministic).
enum class SelectionMode {
  kHeap,  ///< lazy bucket-heap (the fast path)
  kScan,  ///< full scan of the unfixed set (reference)
};

/// Value selection strategies.
enum class ValHeuristic {
  kMin,     ///< ascending values
  kMax,     ///< descending values
  kRandom,  ///< random order per decision (Choco-like randomized search)
};

/// Restart schedules (restarting only makes sense with some randomization,
/// otherwise the search repeats itself).
enum class RestartPolicy {
  kNone,
  kLuby,       ///< Luby sequence scaled by `restart_scale` failures
  kGeometric,  ///< restart_scale * 1.5^k failures
};

/// How propagators compute their prunings.  kIncremental and kScratch use
/// the same wake events and reach the same fixpoints, so they explore the
/// identical tree; kScratch is the reference for differential testing.
/// kLegacy additionally disables event filtering (every watcher wakes on
/// every change, advisors skipped), emulating the pre-event-engine behavior
/// as the benchmark baseline.
enum class PropagationMode {
  kIncremental,  ///< trailed counters / pending lists (the fast path)
  kScratch,      ///< recompute every propagator from its full scope
  kLegacy,       ///< kScratch + wake-on-any-change (pre-change emulation)
};

/// Consistency level of structural global constraints that support both
/// (today: AllDifferentExcept).  kForwardCheck is the cheap classic sweep
/// (prune a fixed value from the siblings); kMatching is Régin-style
/// generalized arc consistency over the value graph — a maximum matching
/// plus SCC pruning of unmatchable edges (DESIGN.md §14).  kMatching prunes
/// a superset of kForwardCheck at every node, so trees may shrink but never
/// grow; kForwardCheck stays the differential baseline.
enum class PropagationLevel {
  kForwardCheck,
  kMatching,
};

/// What conflict analysis records when shrinking is on (DESIGN.md §10–11).
/// Both modes need the reason trail; with `nogood_shrink` off the raw
/// decision set records regardless of this knob.
enum class NogoodLearn {
  /// The PR-4 baseline: keep the decisions the conflict is reachable from.
  kDecisionSet,
  /// True 1-UIP: resolve the conflict level to its first unique implication
  /// point and record the implied-literal frontier (==/!=/<=/>= literals).
  /// Per conflict the clause is never longer than the decision set; falls
  /// back to kDecisionSet when the walk meets an untracked entry.
  kUip1,
};

struct SearchOptions {
  VarHeuristic var_heuristic = VarHeuristic::kDomWdeg;
  ValHeuristic val_heuristic = ValHeuristic::kMin;
  PropagationMode propagation = PropagationMode::kIncremental;
  SelectionMode selection = SelectionMode::kHeap;
  RestartPolicy restart = RestartPolicy::kNone;
  std::int64_t restart_scale = 100;  ///< base failure budget between restarts
  bool random_var_ties = false;      ///< break heuristic ties randomly
  std::uint64_t seed = 1;            ///< stream for all randomized choices
  std::int64_t max_nodes = -1;       ///< -1 = unlimited
  support::Deadline deadline;        ///< default: unlimited

  // ---- nogood recording (DESIGN.md §6, §10) ---------------------------
  /// Record the decision-set nogood at every conflict and replay the
  /// database as 2-watched-literal constraints.  Nogoods survive restarts,
  /// so this mainly pays off combined with RestartPolicy::kLuby/kGeometric.
  /// Ignored under PropagationMode::kLegacy (replay needs advisors).
  bool nogoods = false;
  /// Minimize nogoods by conflict analysis before recording (DESIGN.md
  /// §10): the solver tracks a reason per trail entry and keeps only the
  /// decisions reachable from the failing propagator's scope through the
  /// implication trail.  Also enables recording at conflicts deeper than
  /// `nogood_max_length` whenever the *minimized* clause fits the cut.
  bool nogood_shrink = true;
  /// Clause form recorded by conflict analysis: true 1-UIP literal
  /// frontiers (the default) or the decision-set baseline (the
  /// differential reference; also what bench_micro's residue race pits the
  /// default against).  Ignored while `nogood_shrink` is off.
  NogoodLearn nogood_learn = NogoodLearn::kUip1;
  /// Conflicts whose recorded clause would exceed this record nothing
  /// (long nogoods barely prune).  With shrinking on the cut applies to
  /// the minimized length, not the raw decision-set length.
  std::int32_t nogood_max_length = 24;
  /// Pool-import admission cut on the block LBD (the number of maximal
  /// runs of consecutive decision depths among a clause's literals at
  /// recording time — DESIGN.md §10).  Unminimized decision sets are one
  /// contiguous run (LBD 1); shrinking opens gaps, and scattered clauses
  /// replay poorly under chronological backtracking.
  std::int32_t nogood_max_lbd = 8;
  /// Soft database size; exceeded entries are pruned (shortest-first, then
  /// most recent) at the next restart.  Recording pauses at 2x this size.
  std::int32_t nogood_db_limit = 10'000;
  /// Optional cross-lane sharing: lanes publish their recorded nogoods at
  /// every restart and import the other lanes' entries (read-only) into
  /// their own database.  The pool must outlive the solve; all lanes must
  /// solve the same model (identical variable ids).
  NogoodPool* nogood_pool = nullptr;
  std::int32_t nogood_lane = 0;  ///< this run's id inside nogood_pool
  /// Under kUip1 learning, run the decision-set walk (the differential
  /// reference behind uip_clause_len_ratio) on every Nth conflict only; the
  /// other conflicts go straight to the 1-UIP walk, recovering the
  /// always-both overhead while keeping the differential as a background
  /// check.  1 = both walks at every conflict (the pre-sampling behavior),
  /// 0 = never sample (no differential stats).  The recorded clauses and
  /// the search tree are identical for every N: the walks are independent
  /// pure observers, and a conflict whose 1-UIP walk fails falls back to a
  /// lazily-run decision-set walk either way.
  std::int32_t nogood_ds_sample = 16;

  /// Non-chronological backjumping (DESIGN.md §15): when 1-UIP analysis
  /// yields an asserting clause, unwind the trail straight to its assertion
  /// level (the second-highest decision depth among its literals) and
  /// assert the negated UIP literal there with the clause as its reason —
  /// learned clauses drive search instead of merely pruning it.  Conflicts
  /// whose analysis fails (or whose clause still pins the conflict level)
  /// fall back to the chronological retry.  Only active under kUip1
  /// learning with shrinking on; turning it off restores the pure
  /// chronological search, which stays the differential baseline.
  bool backjump = true;

  /// Recursive self-subsumption minimization (DESIGN.md §15): after the
  /// 1-UIP walk, resolve away clause literals whose reasons are already
  /// covered by the remaining literals (Sörensson-style, depth-bounded by
  /// the trail).  Deepens the shrink ratio at a small analysis cost; the
  /// minimized clause is never longer than the unminimized one.
  bool nogood_minimize = true;

  /// Build the reason trail even when nogood recording is off.  Testing /
  /// diagnostics hook: the determinism tests use it to prove the trail
  /// build is a pure observer (bit-identical trees with it on or off).
  bool force_reason_trail = false;

  /// Per-propagator wall-time profiling (SolveStats::propagators.seconds).
  /// The wake/run/prune counters are always on (plain array increments);
  /// the clock reads around every propagator run are not, so they hide
  /// behind this flag.  Off by default — profiling must not tax the
  /// throughput ledger.
  bool prop_profile = false;
};

enum class SolveStatus {
  kSat,         ///< a complete consistent assignment was found
  kUnsat,       ///< search space exhausted, no solution exists
  kTimeout,     ///< wall-clock deadline hit (paper's "overrun")
  kNodeLimit,   ///< node budget hit
  kMemoryLimit, ///< the model exceeded its variable budget at build time
};

[[nodiscard]] constexpr bool decided(SolveStatus s) noexcept {
  return s == SolveStatus::kSat || s == SolveStatus::kUnsat;
}

/// Per-propagator-class observability row, aggregated over a solve by
/// Propagator::name(): how often the class's advisors asked to run
/// (wakes), how often it actually swept (runs), how many domain changes
/// its sweeps produced (prunes), and — only under
/// SearchOptions::prop_profile — the wall time spent inside its sweeps.
struct PropagatorProfile {
  std::string name;
  std::int64_t wakes = 0;
  std::int64_t runs = 0;
  std::int64_t prunes = 0;
  double seconds = 0.0;
};

struct SolveStats {
  std::int64_t nodes = 0;         ///< decision nodes explored
  std::int64_t failures = 0;      ///< dead ends (conflicts)
  std::int64_t propagations = 0;  ///< propagator executions
  std::int64_t events = 0;        ///< domain-change events delivered to watchers
  std::int64_t restarts = 0;
  std::int64_t max_depth = 0;
  std::int64_t nogoods_recorded = 0;  ///< decision-set nogoods stored
  std::int64_t nogoods_imported = 0;  ///< nogoods adopted from the pool
  std::int64_t nogoods_exported = 0;  ///< nogoods published to the pool
  std::int64_t nogood_props = 0;      ///< unit removals by the nogood store
  std::int64_t nogood_conflicts = 0;  ///< conflicts detected by the store
  /// Literal totals over recorded nogoods: the raw decision-set length and
  /// the length actually stored after conflict-analysis shrinking (equal
  /// when shrinking is off); after/before is the shrink ratio.
  std::int64_t nogood_lits_before = 0;
  std::int64_t nogood_lits_after = 0;
  /// 1-UIP differential (NogoodLearn::kUip1 only): per analyzed conflict,
  /// the 1-UIP clause length vs the decision-set clause length for the
  /// *same* conflict; uip/ds is the gated uip_clause_len_ratio (never
  /// above 1.0 — the walk guarantees it per conflict).
  std::int64_t nogood_lits_uip = 0;
  std::int64_t nogood_lits_ds = 0;
  /// On-the-fly subsumption events: a fresh clause replaced (or was
  /// absorbed by) the previously recorded one.
  std::int64_t nogoods_subsumed = 0;
  /// Replay-hit LBD refreshes: a firing clause recomputed its block LBD
  /// from current depths and improved it (possibly into the core tier).
  std::int64_t nogood_lbd_refreshed = 0;
  /// Non-chronological backjumps taken (SearchOptions::backjump) and the
  /// total decision levels skipped by them (levels_saved / backjumps is the
  /// mean jump distance beyond the chronological single level).
  std::int64_t backjumps = 0;
  std::int64_t backjump_levels_saved = 0;
  /// Literals removed by recursive self-subsumption minimization
  /// (SearchOptions::nogood_minimize), summed over recorded clauses.
  std::int64_t nogood_lits_minimized = 0;
  /// Per-propagator-class wake/run/prune rows (seconds only when
  /// SearchOptions::prop_profile is set), sorted by name.
  std::vector<PropagatorProfile> propagators;
  double seconds = 0.0;
};

struct SolveOutcome {
  SolveStatus status = SolveStatus::kUnsat;
  /// Value per variable, valid iff status == kSat.
  std::vector<Value> assignment;
  SolveStats stats;
};

}  // namespace mgrts::csp
