// Search configuration, limits, and result types of the generic solver.
#pragma once

#include <cstdint>
#include <vector>

#include "csp/domain.hpp"
#include "support/deadline.hpp"

namespace mgrts::csp {

/// Variable selection strategies.
enum class VarHeuristic {
  kLex,        ///< first unfixed variable in declaration order
  kMinDomain,  ///< smallest current domain, ties by declaration order
  kDomWdeg,    ///< dom/wdeg (Boussemart et al.), the "modern default"
};

/// Value selection strategies.
enum class ValHeuristic {
  kMin,     ///< ascending values
  kMax,     ///< descending values
  kRandom,  ///< random order per decision (Choco-like randomized search)
};

/// Restart schedules (restarting only makes sense with some randomization,
/// otherwise the search repeats itself).
enum class RestartPolicy {
  kNone,
  kLuby,       ///< Luby sequence scaled by `restart_scale` failures
  kGeometric,  ///< restart_scale * 1.5^k failures
};

/// How propagators compute their prunings.  kIncremental and kScratch use
/// the same wake events and reach the same fixpoints, so they explore the
/// identical tree; kScratch is the reference for differential testing.
/// kLegacy additionally disables event filtering (every watcher wakes on
/// every change, advisors skipped), emulating the pre-event-engine behavior
/// as the benchmark baseline.
enum class PropagationMode {
  kIncremental,  ///< trailed counters / pending lists (the fast path)
  kScratch,      ///< recompute every propagator from its full scope
  kLegacy,       ///< kScratch + wake-on-any-change (pre-change emulation)
};

struct SearchOptions {
  VarHeuristic var_heuristic = VarHeuristic::kDomWdeg;
  ValHeuristic val_heuristic = ValHeuristic::kMin;
  PropagationMode propagation = PropagationMode::kIncremental;
  RestartPolicy restart = RestartPolicy::kNone;
  std::int64_t restart_scale = 100;  ///< base failure budget between restarts
  bool random_var_ties = false;      ///< break heuristic ties randomly
  std::uint64_t seed = 1;            ///< stream for all randomized choices
  std::int64_t max_nodes = -1;       ///< -1 = unlimited
  support::Deadline deadline;        ///< default: unlimited
};

enum class SolveStatus {
  kSat,         ///< a complete consistent assignment was found
  kUnsat,       ///< search space exhausted, no solution exists
  kTimeout,     ///< wall-clock deadline hit (paper's "overrun")
  kNodeLimit,   ///< node budget hit
  kMemoryLimit, ///< the model exceeded its variable budget at build time
};

[[nodiscard]] constexpr bool decided(SolveStatus s) noexcept {
  return s == SolveStatus::kSat || s == SolveStatus::kUnsat;
}

struct SolveStats {
  std::int64_t nodes = 0;         ///< decision nodes explored
  std::int64_t failures = 0;      ///< dead ends (conflicts)
  std::int64_t propagations = 0;  ///< propagator executions
  std::int64_t events = 0;        ///< domain-change events delivered to watchers
  std::int64_t restarts = 0;
  std::int64_t max_depth = 0;
  double seconds = 0.0;
};

struct SolveOutcome {
  SolveStatus status = SolveStatus::kUnsat;
  /// Value per variable, valid iff status == kSat.
  std::vector<Value> assignment;
  SolveStats stats;
};

}  // namespace mgrts::csp
