// Compact finite-domain representation.
//
// Every variable in the MGRTS encodings ranges over at most n+1 values
// (CSP2's {-1, 1..n}) or over {0,1} (CSP1), so a 64-bit mask relative to a
// base value covers all models this solver is asked to handle while keeping
// per-variable state at 16 bytes — CSP1 models reach millions of variables
// (the paper's Choco runs exhaust memory there; see the MemoryLimit guard).
#pragma once

#include <bit>
#include <cstdint>

#include "support/assert.hpp"

namespace mgrts::csp {

/// Value of a CSP variable.  Plain int; encodings map their semantics
/// (task ids, booleans) onto small ranges.
using Value = std::int32_t;

class Domain64 {
 public:
  static constexpr int kMaxSpan = 64;

  Domain64() = default;

  /// Domain {lo..hi}; hi - lo must be < 64.
  Domain64(Value lo, Value hi) : base_(lo) {
    MGRTS_EXPECTS(lo <= hi && hi - lo < kMaxSpan);
    const int span = static_cast<int>(hi - lo) + 1;
    mask_ = span == kMaxSpan ? ~std::uint64_t{0}
                             : ((std::uint64_t{1} << span) - 1);
  }

  [[nodiscard]] bool contains(Value v) const noexcept {
    const std::int64_t off = v - base_;
    return off >= 0 && off < kMaxSpan &&
           (mask_ >> static_cast<unsigned>(off)) & 1U;
  }

  [[nodiscard]] int size() const noexcept { return std::popcount(mask_); }
  [[nodiscard]] bool empty() const noexcept { return mask_ == 0; }
  [[nodiscard]] bool is_fixed() const noexcept { return size() == 1; }

  /// The single remaining value; domain must be fixed.
  [[nodiscard]] Value value() const noexcept {
    MGRTS_ASSERT(is_fixed());
    return base_ + std::countr_zero(mask_);
  }

  [[nodiscard]] Value min() const noexcept {
    MGRTS_ASSERT(!empty());
    return base_ + std::countr_zero(mask_);
  }

  [[nodiscard]] Value max() const noexcept {
    MGRTS_ASSERT(!empty());
    return base_ + (63 - std::countl_zero(mask_));
  }

  /// Removes v if present; returns true when the domain changed.
  bool remove(Value v) noexcept {
    if (!contains(v)) return false;
    mask_ &= ~(std::uint64_t{1} << static_cast<unsigned>(v - base_));
    return true;
  }

  /// Reduces the domain to {v}; returns true when the domain changed.
  /// v must be contained.
  bool fix(Value v) noexcept {
    MGRTS_ASSERT(contains(v));
    const std::uint64_t single = std::uint64_t{1}
                                 << static_cast<unsigned>(v - base_);
    if (mask_ == single) return false;
    mask_ = single;
    return true;
  }

  /// Iterates remaining values in ascending order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    std::uint64_t bits = mask_;
    while (bits != 0) {
      const int off = std::countr_zero(bits);
      fn(base_ + off);
      bits &= bits - 1;
    }
  }

  [[nodiscard]] std::uint64_t raw_mask() const noexcept { return mask_; }
  void set_raw_mask(std::uint64_t mask) noexcept { mask_ = mask; }
  [[nodiscard]] Value base() const noexcept { return base_; }

  // ------------------------------------------------------- mask kernels
  //
  // Word-scan primitives over raw masks, shared by the hot propagator
  // sweeps, the nogood watch checks and the matching propagator.  All of
  // them treat a mask exactly as a Domain64 with the same base: bit k is
  // value base + k.

  /// Number of values in a raw mask.
  [[nodiscard]] static constexpr int mask_size(std::uint64_t mask) noexcept {
    return std::popcount(mask);
  }

  /// True iff the raw mask holds exactly one value.
  [[nodiscard]] static constexpr bool mask_fixed(std::uint64_t mask) noexcept {
    return mask != 0 && (mask & (mask - 1)) == 0;
  }

  /// True iff value v is in the raw mask (relative to base).
  [[nodiscard]] static constexpr bool mask_contains(std::uint64_t mask,
                                                    Value base,
                                                    Value v) noexcept {
    const std::int64_t off = v - base;
    return off >= 0 && off < kMaxSpan &&
           ((mask >> static_cast<unsigned>(off)) & 1U) != 0;
  }

  /// Mask of every representable value <= v (relative to base).  Clamps at
  /// the window edges: v below the window gives 0, v at or past the top
  /// gives all ones — matching Lit::truth_mask's window semantics.
  [[nodiscard]] static constexpr std::uint64_t mask_le(Value base,
                                                       Value v) noexcept {
    const std::int64_t off = v - base;
    if (off < 0) return 0;
    if (off >= kMaxSpan - 1) return ~std::uint64_t{0};
    return (std::uint64_t{1} << static_cast<unsigned>(off + 1)) - 1;
  }

  /// Mask of every representable value >= v (relative to base); clamped
  /// like mask_le.
  [[nodiscard]] static constexpr std::uint64_t mask_ge(Value base,
                                                       Value v) noexcept {
    const std::int64_t off = v - base;
    if (off <= 0) return ~std::uint64_t{0};
    if (off >= kMaxSpan) return 0;
    return ~std::uint64_t{0} << static_cast<unsigned>(off);
  }

  /// Iterates the values of a raw mask in ascending order (ctz scan).
  template <typename Fn>
  static void for_each_in_mask(std::uint64_t mask, Value base, Fn&& fn) {
    while (mask != 0) {
      const int off = std::countr_zero(mask);
      fn(base + off);
      mask &= mask - 1;
    }
  }

 private:
  std::uint64_t mask_ = 0;
  Value base_ = 0;
};

}  // namespace mgrts::csp
