#include "csp/solver.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>

#include "csp/nogoods.hpp"
#include "support/assert.hpp"
#include "support/deadline.hpp"
#include "support/error.hpp"
#include "support/fault.hpp"

namespace mgrts::csp {

std::int64_t luby(std::int64_t i) {
  for (;;) {
    const auto u = static_cast<std::uint64_t>(i) + 1;
    if (std::has_single_bit(u)) return static_cast<std::int64_t>(u >> 1);
    const int k = std::bit_width(u);  // smallest k with 2^k - 1 >= i
    i -= (std::int64_t{1} << (k - 1)) - 1;
  }
}

Solver::Solver(SolverLimits limits) : limits_(limits) {}
Solver::~Solver() = default;

VarId Solver::add_variable(Value lo, Value hi) {
  MGRTS_EXPECTS(!frozen_);
  support::fault_point(support::FaultSite::kCspVarBudget);
  if (variable_count() >= limits_.max_variables) {
    throw ResourceError("CSP model exceeds the variable budget (" +
                        std::to_string(limits_.max_variables) + ")");
  }
  domains_.emplace_back(lo, hi);
  const auto v = static_cast<VarId>(domains_.size() - 1);
  unfixed_pos_.push_back(-1);
  var_wdeg_.push_back(0);
  last_entry_.push_back(-1);
  return v;
}

void Solver::add(std::unique_ptr<Propagator> propagator) {
  MGRTS_EXPECTS(!frozen_);
  MGRTS_EXPECTS(propagator != nullptr);
  propagator->id_ = static_cast<std::int32_t>(propagators_.size());
  propagator->priority_cache_ =
      static_cast<std::uint8_t>(propagator->priority());
  MGRTS_ASSERT(propagator->priority_cache_ < kPriorityLevels);
  propagators_.push_back(std::move(propagator));
  propagators_.back()->attach(*this);
}

StateSlot Solver::alloc_state(std::int64_t initial) {
  MGRTS_EXPECTS(!frozen_);
  pstate_.push_back(initial);
  return static_cast<StateSlot>(pstate_.size() - 1);
}

void Solver::set_state(StateSlot slot, std::int64_t value) {
  std::int64_t& cell = pstate_[static_cast<std::size_t>(slot)];
  if (cell == value) return;
  state_trail_.push_back(StateTrailEntry{slot, cell});
  cell = value;
}

bool Solver::post_fix(VarId v, Value a) {
  MGRTS_EXPECTS(!frozen_);
  Domain64& d = domains_[static_cast<std::size_t>(v)];
  if (!d.contains(a)) return false;
  d.fix(a);
  return true;
}

bool Solver::post_remove(VarId v, Value a) {
  MGRTS_EXPECTS(!frozen_);
  Domain64& d = domains_[static_cast<std::size_t>(v)];
  d.remove(a);
  return !d.empty();
}

void Solver::trail_push(VarId v, std::uint64_t old_mask) {
  // active_reason_ is pinned at kReasonNone while tracking is off, so the
  // reason slot costs one dead store (and one always-false compare) on the
  // untracked path.
  if (pending_reason_len_ > 0) {
    // First trailed change under an explicit-reason window: commit the
    // span now, so windows that prune nothing never touch the pool.
    const auto idx = static_cast<std::int32_t>(reason_offset_.size()) - 1;
    reason_vars_.insert(reason_vars_.end(), pending_reason_vars_,
                        pending_reason_vars_ + pending_reason_len_);
    reason_offset_.push_back(static_cast<std::int32_t>(reason_vars_.size()));
    active_reason_ = kReasonExplicit - idx;
    pending_reason_len_ = 0;
  }
  // Per-variable threading is maintained only while the reason trail is —
  // it is never read otherwise, and the last_entry_ read-modify-write is
  // real hot-path work (unlike the depth slot, a dead register store).
  // Either way the search never reads these fields, so trees stay
  // bit-identical (Solver.ReasonTrailIsAPureObserver).
  std::int32_t prev = -1;
  if (track_reasons_) {
    auto& head = last_entry_[static_cast<std::size_t>(v)];
    prev = head;
    head = static_cast<std::int32_t>(trail_.size());
  }
  // Prune attribution: every trailed change inside a propagator run counts
  // toward that propagator's profile row (decisions and root maintenance
  // run with running_prop_ == -1 and are not charged).
  if (running_prop_ >= 0) {
    ++prop_prunes_[static_cast<std::size_t>(running_prop_)];
  }
  trail_.push_back(TrailEntry{old_mask, v, active_reason_, cur_depth_, prev});
}

void Solver::begin_explicit_reason(const VarId* vars, std::int32_t n) {
  if (!track_reasons_) return;
  MGRTS_ASSERT(n > 0);
  saved_reason_ = active_reason_;
  pending_reason_vars_ = vars;
  pending_reason_len_ = n;
}

void Solver::end_explicit_reason() {
  if (!track_reasons_) return;
  active_reason_ = saved_reason_;
  pending_reason_len_ = 0;
}

void Solver::sync_membership(VarId v) {
  const bool want = domains_[static_cast<std::size_t>(v)].size() > 1;
  auto& pos = unfixed_pos_[static_cast<std::size_t>(v)];
  const bool have = pos >= 0;
  if (want == have) return;
  if (want) {
    // Insert: either extend or reuse slack capacity of the list.
    if (static_cast<std::size_t>(unfixed_size_) == unfixed_list_.size()) {
      unfixed_list_.push_back(v);
    } else {
      unfixed_list_[static_cast<std::size_t>(unfixed_size_)] = v;
    }
    pos = static_cast<std::int32_t>(unfixed_size_);
    ++unfixed_size_;
    if (heap_active_) heap_push(v);
  } else {
    // Swap-remove.
    const auto last_idx = static_cast<std::size_t>(unfixed_size_ - 1);
    const VarId moved = unfixed_list_[last_idx];
    unfixed_list_[static_cast<std::size_t>(pos)] = moved;
    unfixed_pos_[static_cast<std::size_t>(moved)] = pos;
    unfixed_list_[last_idx] = v;
    pos = -1;
    --unfixed_size_;
  }
}

void Solver::enqueue(Propagator& p) {
  if (p.queued_) return;
  p.queued_ = true;
  queue_[p.priority_cache_].push_back(p.id_);
}

void Solver::wake_list(const WatchList& list, VarId v,
                       std::uint64_t old_mask) {
  const auto begin =
      static_cast<std::size_t>(list.offset[static_cast<std::size_t>(v)]);
  const auto end =
      static_cast<std::size_t>(list.offset[static_cast<std::size_t>(v) + 1]);
  stats_.events += static_cast<std::int64_t>(end - begin);
  if (legacy_) {
    // Pre-change emulation: no advisors, every watcher is queued.
    for (std::size_t k = begin; k < end; ++k) {
      const std::int32_t pid = list.data[k].pid;
      ++prop_wakes_[static_cast<std::size_t>(pid)];
      enqueue(*propagators_[static_cast<std::size_t>(pid)]);
    }
    return;
  }
  for (std::size_t k = begin; k < end; ++k) {
    const Watch w = list.data[k];
    Propagator& p = *propagators_[static_cast<std::size_t>(w.pid)];
    if (p.on_event(*this, w.pos, old_mask)) {
      ++prop_wakes_[static_cast<std::size_t>(w.pid)];
      enqueue(p);
    }
  }
}

void Solver::notify_store(VarId v, std::uint64_t old_mask) {
  // Event-count parity with the CSR path the store was removed from: its
  // one watch entry per variable counted one event per delivery.
  ++stats_.events;
  NogoodStore& store = *nogood_store_;  // final: on_event devirtualizes
  if (store.on_event(*this, v, old_mask)) {
    Propagator& p = store;
    ++prop_wakes_[static_cast<std::size_t>(p.id_)];
    enqueue(p);
  }
}

void Solver::notify_watchers(VarId v, std::uint64_t old_mask,
                             bool became_fixed) {
  // The direct store calls sit exactly where the CSR walks would have
  // reached the store's (added-last) entries, so the enqueue order — and
  // with it the propagation order and the search tree — is unchanged.
  wake_list(any_watch_, v, old_mask);
  if (store_direct_any_) notify_store(v, old_mask);
  if (became_fixed) {
    wake_list(fixed_watch_, v, old_mask);
    if (store_direct_fixed_) notify_store(v, old_mask);
  }
}

PropResult Solver::remove(VarId v, Value a) {
  Domain64& d = domains_[static_cast<std::size_t>(v)];
  if (!d.contains(a)) return PropResult::kOk;
  const std::uint64_t old_mask = d.raw_mask();
  trail_push(v, old_mask);
  d.remove(a);
  sync_membership(v);
  if (d.empty()) return PropResult::kFail;
  // A narrowing that leaves the variable unfixed improves its selection
  // key, so the heap needs a fresh entry (fixes leave the unfixed set and
  // need none; re-growth on backtrack only goes stale).
  if (heap_active_ && d.size() > 1) heap_push(v);
  notify_watchers(v, old_mask, d.is_fixed());
  return PropResult::kOk;
}

PropResult Solver::fix(VarId v, Value a) {
  Domain64& d = domains_[static_cast<std::size_t>(v)];
  if (!d.contains(a)) return PropResult::kFail;
  if (d.is_fixed()) return PropResult::kOk;
  const std::uint64_t old_mask = d.raw_mask();
  trail_push(v, old_mask);
  d.fix(a);
  sync_membership(v);
  notify_watchers(v, old_mask, /*became_fixed=*/true);
  return PropResult::kOk;
}

void Solver::backtrack_to(const Mark& mark) {
  if (track_reasons_ && reason_offset_.size() - 1 > mark.reasons) {
    // Explicit reasons are only referenced by trail entries newer than
    // their creation, all unwound below — the pool truncates with them.
    reason_offset_.resize(mark.reasons + 1);
    reason_vars_.resize(static_cast<std::size_t>(reason_offset_.back()));
  }
  while (state_trail_.size() > mark.state) {
    const StateTrailEntry entry = state_trail_.back();
    state_trail_.pop_back();
    pstate_[static_cast<std::size_t>(entry.slot)] = entry.old_value;
  }
  while (trail_.size() > mark.domain) {
    const TrailEntry entry = trail_.back();
    trail_.pop_back();
    domains_[static_cast<std::size_t>(entry.var)].set_raw_mask(entry.old_mask);
    if (track_reasons_) {
      last_entry_[static_cast<std::size_t>(entry.var)] = entry.prev_on_var;
    }
    sync_membership(entry.var);
  }
}

void Solver::clear_queue() {
  for (int lvl = 0; lvl < kPriorityLevels; ++lvl) {
    auto& q = queue_[static_cast<std::size_t>(lvl)];
    auto& head = queue_head_[static_cast<std::size_t>(lvl)];
    for (std::size_t k = head; k < q.size(); ++k) {
      propagators_[static_cast<std::size_t>(q[k])]->queued_ = false;
    }
    q.clear();
    head = 0;
  }
}

void Solver::bump_failure(std::int32_t prop_id) {
  if (prop_id < 0) return;
  Propagator& p = *propagators_[static_cast<std::size_t>(prop_id)];
  ++p.weight_;
  for (const VarId v : p.failure_scope()) {
    ++var_wdeg_[static_cast<std::size_t>(v)];
    // The bump improves dom/wdeg keys; refresh unfixed scope variables.
    if (heap_active_ && heap_use_wdeg_ &&
        unfixed_pos_[static_cast<std::size_t>(v)] >= 0) {
      heap_push(v);
    }
  }
}

bool Solver::propagate_queue() {
  support::fault_point(support::FaultSite::kPropagator);
  for (;;) {
    // Pop from the cheapest non-empty level; every run restarts the scan, so
    // expensive global propagators only fire once the cheap levels are at
    // their fixpoint.
    std::int32_t id = -1;
    for (int lvl = 0; lvl < kPriorityLevels; ++lvl) {
      auto& q = queue_[static_cast<std::size_t>(lvl)];
      auto& head = queue_head_[static_cast<std::size_t>(lvl)];
      if (head < q.size()) {
        id = q[head++];
        if (head == q.size()) {
          q.clear();
          head = 0;
        }
        break;
      }
    }
    if (id < 0) return true;

    Propagator& p = *propagators_[static_cast<std::size_t>(id)];
    p.queued_ = false;
    ++stats_.propagations;
    ++prop_runs_[static_cast<std::size_t>(id)];
    if (track_reasons_) active_reason_ = id;
    running_prop_ = id;
    PropResult result;
    if (prop_profile_) {
      const auto t0 = std::chrono::steady_clock::now();
      result = p.propagate(*this);
      prop_seconds_[static_cast<std::size_t>(id)] +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
    } else {
      result = p.propagate(*this);
    }
    running_prop_ = -1;
    if (track_reasons_) active_reason_ = kReasonNone;
    if (result == PropResult::kFail) {
      failing_prop_ = id;
      clear_queue();
      return false;
    }
  }
}

template <typename MarkFn>
bool Solver::expand_reason(const TrailEntry& e, MarkFn&& mark) {
  if (e.reason >= 0) {
    for (const VarId v :
         propagators_[static_cast<std::size_t>(e.reason)]->scope()) {
      mark(v);
    }
    return true;
  }
  if (e.reason <= kReasonExplicit) {
    const auto idx = static_cast<std::size_t>(kReasonExplicit - e.reason);
    const auto begin = static_cast<std::size_t>(reason_offset_[idx]);
    const auto end = static_cast<std::size_t>(reason_offset_[idx + 1]);
    for (std::size_t i = begin; i < end; ++i) mark(reason_vars_[i]);
    return true;
  }
  return false;  // untracked (kReasonNone): analysis would be unsound
}

bool Solver::analyze_conflict(std::size_t root_trail) {
  MGRTS_ASSERT(failing_prop_ >= 0);
  ++relevant_epoch_;
  auto mark_var = [&](VarId v) {
    relevant_stamp_[static_cast<std::size_t>(v)] = relevant_epoch_;
  };
  auto is_relevant = [&](VarId v) {
    return relevant_stamp_[static_cast<std::size_t>(v)] == relevant_epoch_;
  };
  for (const VarId v :
       propagators_[static_cast<std::size_t>(failing_prop_)]->failure_scope()) {
    mark_var(v);
  }

  // Dependencies point strictly backwards in time, so one newest-first pass
  // closes the set: an entry's reason read only domain states older than the
  // entry itself.  Entries at or below the root mark are root-implied (true
  // under no decision) and need no explanation.
  for (std::size_t k = trail_.size(); k > root_trail;) {
    --k;
    const TrailEntry& e = trail_[k];
    if (!is_relevant(e.var)) continue;
    if (e.reason == kReasonDecision) continue;  // kept; collected by caller
    if (!expand_reason(e, mark_var)) return false;
  }
  return true;
}

// ---- 1-UIP resolution walk (DESIGN.md §11) -----------------------------

void Solver::uip_mark(VarId v, std::int64_t& pending) {
  auto& stamp = relevant_stamp_[static_cast<std::size_t>(v)];
  if (stamp == relevant_epoch_) return;
  stamp = relevant_epoch_;
  pending += uip_count_[static_cast<std::size_t>(v)];
}

Lit Solver::entry_literal(const TrailEntry& e, std::uint64_t post_mask) const {
  const Value base = domains_[static_cast<std::size_t>(e.var)].base();
  const std::uint64_t removed = e.old_mask & ~post_mask;
  MGRTS_ASSERT(removed != 0);
  if (std::popcount(removed) > 1) {
    // A fix pruned several values at once: the entry's literal is the
    // assignment itself (post state must be a singleton).
    MGRTS_ASSERT(std::popcount(post_mask) == 1);
    return Lit::eq(e.var, base + std::countr_zero(post_mask));
  }
  // Single-value removal: (var != a), strengthened to the *equivalent*
  // bound form when a sits at the root min/max (relative to the root
  // domain, "!= min" and ">= min + 1" forbid exactly the same states, but
  // the bound form watches bound movement and merges under subsumption).
  const Value a = base + std::countr_zero(removed);
  if (a == root_min_[static_cast<std::size_t>(e.var)]) {
    return Lit::ge(e.var, a + 1);
  }
  if (a == root_max_[static_cast<std::size_t>(e.var)]) {
    return Lit::le(e.var, a - 1);
  }
  return Lit::ne(e.var, a);
}

namespace {
/// Recursion bound of the self-subsumption walk; deeper chains are treated
/// as not covered (sound — the literal just stays in the clause).
constexpr int kMinimizeDepthCap = 48;
/// Frontier clauses past this size never beat the decision form on the
/// workloads we ledger, so the minimization pass skips them outright.
constexpr std::size_t kMaxFrontier = 64;
}  // namespace

bool Solver::reason_covered(std::size_t idx, std::size_t root_trail,
                            int depth) {
  if (min_stamp_[idx] == relevant_epoch_) return min_ok_[idx] != 0;
  const TrailEntry& e = trail_[idx];
  bool ok = depth < kMinimizeDepthCap && e.reason != kReasonDecision;
  if (ok) {
    // Every antecedent change (an older entry on a reason variable) must be
    // covered: on a Phase-A-relevant variable its literal is in the
    // frontier (or was dropped for being covered itself), otherwise its own
    // reason must be covered recursively.  Antecedent indices strictly
    // decrease, so the walk is acyclic and the memo grounds out.
    auto check = [&](VarId u) {
      if (!ok) return;
      std::int32_t j = last_entry_[static_cast<std::size_t>(u)];
      while (j >= 0 && static_cast<std::size_t>(j) >= idx) {
        j = trail_[static_cast<std::size_t>(j)].prev_on_var;
      }
      while (ok && j >= 0 && static_cast<std::size_t>(j) >= root_trail) {
        const auto ju = static_cast<std::size_t>(j);
        if (relevant_stamp_[static_cast<std::size_t>(trail_[ju].var)] !=
                relevant_epoch_ &&
            !reason_covered(ju, root_trail, depth + 1)) {
          ok = false;
        }
        j = trail_[ju].prev_on_var;
      }
    };
    if (!expand_reason(e, check)) ok = false;
  }
  min_stamp_[idx] = relevant_epoch_;
  min_ok_[idx] = ok ? 1 : 0;
  return ok;
}

std::int64_t Solver::minimize_frontier(std::size_t root_trail) {
  if (min_stamp_.size() < trail_.size()) {
    min_stamp_.resize(trail_.size(), 0);
    min_ok_.resize(trail_.size(), 0);
  }
  std::int64_t removed = 0;
  // Pass 1 — recursive self-subsumption: drop literals whose reasons are
  // transitively covered by the Phase-A relevant set.  Runs before the
  // implication dedupe so the "marked variable => covered" ground stays
  // index-founded (dedupe edges can point forward in the trail).
  std::size_t out = 0;
  for (std::size_t i = 0; i < frontier_.size(); ++i) {
    const auto idx = static_cast<std::size_t>(frontier_[i].trail_idx);
    if (reason_covered(idx, root_trail, 0)) {
      ++removed;
      continue;
    }
    frontier_[out++] = frontier_[i];
  }
  frontier_.resize(out);
  // Pass 2 — same-variable implication dedupe among survivors: the clause
  // is a conjunction, so a literal implied by a kept stronger literal
  // forbids nothing extra (a moving-bound chain >=3, >=4, >=5 collapses to
  // >=5).  Literals are pairwise distinct, so implication is a strict
  // order and the maximal elements survive.
  out = 0;
  for (std::size_t i = 0; i < frontier_.size(); ++i) {
    bool redundant = false;
    for (std::size_t j = 0; j < frontier_.size() && !redundant; ++j) {
      redundant = j != i && implies(frontier_[j].lit, frontier_[i].lit);
    }
    if (redundant) {
      ++removed;
      continue;
    }
    frontier_[out++] = frontier_[i];
  }
  frontier_.resize(out);
  return removed;
}

bool Solver::analyze_uip(std::size_t root_trail, std::size_t level_start,
                         bool minimize) {
  MGRTS_ASSERT(failing_prop_ >= 0);
  MGRTS_ASSERT(level_start >= root_trail && level_start < trail_.size());

  // Unvisited-suffix counts per variable: marking a variable relevant must
  // add exactly its unvisited conflict-level entries to the resolvent.
  for (std::size_t k = level_start; k < trail_.size(); ++k) {
    ++uip_count_[static_cast<std::size_t>(trail_[k].var)];
  }
  ++relevant_epoch_;  // fresh epoch: stamps double as the walk's marks

  std::int64_t pending = 0;
  auto mark = [&](VarId v) { uip_mark(v, pending); };
  for (const VarId v :
       propagators_[static_cast<std::size_t>(failing_prop_)]->failure_scope()) {
    mark(v);
  }

  // Phase A — the conflict level, newest first.  Every visited relevant
  // entry is a resolvent literal: expand it unless it is the *only* one
  // left at this level (pending == 0 after its own visit), which makes it
  // the first unique implication point.  The walk reconstructs each
  // entry's post-change domain through an epoch-stamped mask overlay so
  // the UIP literal can be derived without storing masks forward.
  bool have_uip = false;
  bool ok = true;
  Lit uip{};
  std::int32_t uip_depth = 0;
  std::size_t k = trail_.size();
  while (k > level_start) {
    --k;
    const TrailEntry& e = trail_[k];
    const auto var = static_cast<std::size_t>(e.var);
    const std::uint64_t post = walk_stamp_[var] == relevant_epoch_
                                   ? walk_mask_[var]
                                   : domains_[var].raw_mask();
    walk_mask_[var] = e.old_mask;
    walk_stamp_[var] = relevant_epoch_;
    --uip_count_[var];
    if (relevant_stamp_[var] != relevant_epoch_) continue;
    --pending;
    if (pending == 0) {
      uip = entry_literal(e, post);
      uip_depth = e.depth;
      have_uip = true;
      break;
    }
    if (!expand_reason(e, mark)) {
      ok = false;
      break;
    }
  }
  // Zero the remaining suffix counts (entries the early break skipped) so
  // the scratch array is clean for the next conflict.
  for (std::size_t i = level_start; i < k; ++i) {
    uip_count_[static_cast<std::size_t>(trail_[i].var)] = 0;
  }
  if (!have_uip || !ok) return false;

  // Frontier form (DESIGN.md §15): before the decision-form expansion
  // mutates the mark set, collect the literal of every remaining entry on
  // a Phase-A-relevant variable — the conjunction of those entries plus the
  // root domain is exactly the marked variables' state below the conflict
  // level, so (frontier ∧ UIP) is a sound nogood on its own.  The walk
  // keeps threading the post-change mask overlay Phase A started, which is
  // what entry_literal needs to recognize fixes.  Oversized frontiers are
  // abandoned (the decision form will win anyway).
  std::int64_t minimized = 0;
  bool have_frontier = false;
  if (minimize) {
    frontier_.clear();
    have_frontier = true;
    std::size_t j = k;
    while (j > root_trail) {
      --j;
      const TrailEntry& e = trail_[j];
      const auto var = static_cast<std::size_t>(e.var);
      const std::uint64_t post = walk_stamp_[var] == relevant_epoch_
                                     ? walk_mask_[var]
                                     : domains_[var].raw_mask();
      walk_mask_[var] = e.old_mask;
      walk_stamp_[var] = relevant_epoch_;
      if (relevant_stamp_[var] != relevant_epoch_) continue;
      if (frontier_.size() >= kMaxFrontier) {
        have_frontier = false;
        break;
      }
      frontier_.push_back(FrontierLit{entry_literal(e, post), e.depth,
                                      static_cast<std::int32_t>(j)});
    }
    if (have_frontier) {
      std::reverse(frontier_.begin(), frontier_.end());  // trail order
      minimized = minimize_frontier(root_trail);
      // A frontier literal the UIP already implies is dead weight too.
      std::size_t out = 0;
      for (const FrontierLit& f : frontier_) {
        if (implies(uip, f.lit)) {
          ++minimized;
          continue;
        }
        frontier_[out++] = f;
      }
      frontier_.resize(out);
    }
  }

  // Phase B — below the conflict level: keep relevant decisions as the
  // clause frontier, expand everything else (kept decisions reproduce all
  // relevant lower state, same induction as the decision-set walk).
  uip_lits_.clear();
  uip_depths_.clear();
  while (k > root_trail) {
    --k;
    const TrailEntry& e = trail_[k];
    if (relevant_stamp_[static_cast<std::size_t>(e.var)] != relevant_epoch_) {
      continue;
    }
    if (e.reason == kReasonDecision) {
      uip_lits_.push_back(
          Lit::eq(e.var, domains_[static_cast<std::size_t>(e.var)].value()));
      uip_depths_.push_back(e.depth);
      continue;
    }
    // pending is harmless below the conflict level: uip_count_ is zero for
    // every variable once the suffix pass finished.
    if (!expand_reason(e, mark)) return false;
  }
  std::reverse(uip_lits_.begin(), uip_lits_.end());
  std::reverse(uip_depths_.begin(), uip_depths_.end());

  // Keep whichever form is shorter; ties go to the decision form (the
  // pre-minimization behavior), which also preserves the per-conflict
  // "never longer than the decision set" invariant the ratio gate pins.
  if (have_frontier && frontier_.size() < uip_lits_.size()) {
    stats_.nogood_lits_minimized += minimized;
    uip_lits_.clear();
    uip_depths_.clear();
    for (const FrontierLit& f : frontier_) {
      uip_lits_.push_back(f.lit);
      uip_depths_.push_back(f.depth);
    }
  }
  uip_lits_.push_back(uip);
  uip_depths_.push_back(uip_depth);
  return true;
}

void Solver::snapshot_root_bounds() {
  root_min_.resize(domains_.size());
  root_max_.resize(domains_.size());
  for (std::size_t v = 0; v < domains_.size(); ++v) {
    const Domain64& d = domains_[v];
    MGRTS_ASSERT(!d.empty());
    root_min_[v] = d.min();
    root_max_[v] = d.max();
  }
}

std::int32_t Solver::entailment_depth(Lit lit) const {
  const auto var = static_cast<std::size_t>(lit.var);
  const Domain64& d = domains_[var];
  // Hoist the literal's miss mask out of the chain walk: entailment of a
  // mask m is (m & miss) == 0, so the per-entry test is a single AND
  // instead of recomputing truth_mask(lit, base) at every link.
  const std::uint64_t miss = ~truth_mask(lit, d.base());
  if ((d.raw_mask() & miss) != 0) return -1;  // not entailed
  std::int32_t k = last_entry_[var];
  while (k >= 0) {
    const TrailEntry& e = trail_[static_cast<std::size_t>(k)];
    if ((e.old_mask & miss) != 0) return e.depth;
    k = e.prev_on_var;
  }
  return 0;  // entailed by the root domain itself
}

void Solver::build_watch_lists() {
  const std::size_t n = domains_.size();

  // In legacy mode every propagator subscribes to every change on its
  // scope, emulating the single-event pre-change watch lists.
  auto effective_policy = [&](const Propagator& p) {
    return legacy_ ? WakePolicy::kAnyChange : p.wake_policy();
  };
  // The solve-owned nogood store gets direct delivery (notify_store), so
  // its all-variable scope never inflates the CSR lists: one fewer entry
  // to walk per variable per event on the hottest loop in the solver.
  auto skip_store = [&](const Propagator& p) {
    return &p == static_cast<const Propagator*>(nogood_store_);
  };
  auto build = [&](WakePolicy policy, WatchList& list) {
    std::vector<std::int32_t> counts(n + 1, 0);
    for (const auto& p : propagators_) {
      if (skip_store(*p) || effective_policy(*p) != policy) continue;
      for (const VarId v : p->scope()) {
        ++counts[static_cast<std::size_t>(v) + 1];
      }
    }
    for (std::size_t i = 1; i <= n; ++i) counts[i] += counts[i - 1];
    list.offset = counts;
    list.data.assign(static_cast<std::size_t>(counts[n]), Watch{0, 0});
    std::vector<std::int32_t> cursor = list.offset;
    for (const auto& p : propagators_) {
      if (skip_store(*p) || effective_policy(*p) != policy) continue;
      const auto& scope = p->scope();
      for (std::size_t pos = 0; pos < scope.size(); ++pos) {
        const auto v = static_cast<std::size_t>(scope[pos]);
        list.data[static_cast<std::size_t>(cursor[v]++)] =
            Watch{p->id_, static_cast<std::int32_t>(pos)};
      }
    }
  };
  build(WakePolicy::kAnyChange, any_watch_);
  build(WakePolicy::kFixedOnly, fixed_watch_);

  // Initialize wdeg: every constraint contributes its base weight 1.
  for (const auto& p : propagators_) {
    for (const VarId v : p->scope()) {
      ++var_wdeg_[static_cast<std::size_t>(v)];
    }
  }
  frozen_ = true;
}

std::int64_t Solver::heap_key_wdeg(VarId v) const noexcept {
  return heap_use_wdeg_
             ? std::max<std::int64_t>(1,
                                      var_wdeg_[static_cast<std::size_t>(v)])
             : 1;
}

void Solver::heap_push(VarId v) {
  heap_.push_back(HeapEntry{
      static_cast<std::int64_t>(domains_[static_cast<std::size_t>(v)].size()),
      heap_key_wdeg(v), v});
  std::push_heap(heap_.begin(), heap_.end());
  // Lazy entries accumulate (regressed keys are only discarded at pop);
  // rebuild compactly once stale entries dominate, which amortizes to O(1)
  // per push.
  if (heap_.size() > 4 * domains_.size() + 64) heap_rebuild();
}

void Solver::heap_rebuild() {
  heap_.clear();
  heap_.reserve(static_cast<std::size_t>(unfixed_size_));
  for (std::int64_t k = 0; k < unfixed_size_; ++k) {
    const VarId v = unfixed_list_[static_cast<std::size_t>(k)];
    heap_.push_back(HeapEntry{
        static_cast<std::int64_t>(
            domains_[static_cast<std::size_t>(v)].size()),
        heap_key_wdeg(v), v});
  }
  std::make_heap(heap_.begin(), heap_.end());
}

VarId Solver::select_from_heap(const SearchOptions& options,
                               support::Rng& rng) {
  if (unfixed_size_ == 0) return -1;
  auto pop = [&] {
    std::pop_heap(heap_.begin(), heap_.end());
    const HeapEntry e = heap_.back();
    heap_.pop_back();
    return e;
  };

  // Find the best current key.  Entries for fixed variables are dropped;
  // stale entries (the key moved since the push — only regressions reach
  // here, improvements always pushed a fresher entry) are refreshed and
  // retried.  The first entry that matches its variable's current key is
  // the global minimum with the smallest id, exactly the scan's pick.
  HeapEntry best{0, 1, -1};
  for (;;) {
    if (heap_.empty()) heap_rebuild();
    MGRTS_ASSERT(!heap_.empty());
    const HeapEntry e = pop();
    if (unfixed_pos_[static_cast<std::size_t>(e.var)] < 0) continue;
    const auto size = static_cast<std::int64_t>(
        domains_[static_cast<std::size_t>(e.var)].size());
    const std::int64_t wdeg = heap_key_wdeg(e.var);
    if (e.size * wdeg == size * e.wdeg) {
      best = HeapEntry{size, wdeg, e.var};
      break;
    }
    heap_.push_back(HeapEntry{size, wdeg, e.var});
    std::push_heap(heap_.begin(), heap_.end());
  }
  if (!options.random_var_ties) return best.var;

  // Random tie-breaking: collect every variable whose *current* key ties
  // the minimum.  The set is a function of the domain/wdeg state alone (not
  // of heap layout or event order), and drawing from it in ascending-id
  // order keeps the choice reproducible for a given seed and tree prefix.
  ++heap_stamp_;
  std::vector<VarId>& ties = heap_ties_;
  ties.clear();
  ties.push_back(best.var);
  heap_seen_[static_cast<std::size_t>(best.var)] = heap_stamp_;
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.front();
    if (top.size * best.wdeg != best.size * top.wdeg) break;  // worse key
    const HeapEntry e = pop();
    if (unfixed_pos_[static_cast<std::size_t>(e.var)] < 0) continue;
    const auto size = static_cast<std::int64_t>(
        domains_[static_cast<std::size_t>(e.var)].size());
    const std::int64_t wdeg = heap_key_wdeg(e.var);
    if (e.size * wdeg != size * e.wdeg) {
      // Stale: the current key is strictly worse than the minimum (equal
      // would contradict staleness), so the fresh entry sinks past the tie
      // range and the loop keeps terminating.
      heap_.push_back(HeapEntry{size, wdeg, e.var});
      std::push_heap(heap_.begin(), heap_.end());
      continue;
    }
    if (heap_seen_[static_cast<std::size_t>(e.var)] != heap_stamp_) {
      heap_seen_[static_cast<std::size_t>(e.var)] = heap_stamp_;
      ties.push_back(e.var);
    }
  }
  std::sort(ties.begin(), ties.end());
  const VarId pick = ties[static_cast<std::size_t>(
      rng.uniform(0, static_cast<std::int64_t>(ties.size()) - 1))];
  // Restore the invariant: every popped tie variable keeps a live entry.
  for (const VarId v : ties) heap_push(v);
  return pick;
}

VarId Solver::select_variable(const SearchOptions& options, VarId lex_hint,
                              support::Rng& rng) {
  if (options.var_heuristic == VarHeuristic::kLex) {
    for (VarId v = lex_hint; v < static_cast<VarId>(domains_.size()); ++v) {
      if (domains_[static_cast<std::size_t>(v)].size() > 1) return v;
    }
    // The hint only moves forward on a branch; a restart may leave earlier
    // variables unfixed, so fall back to a full scan.
    for (VarId v = 0; v < lex_hint; ++v) {
      if (domains_[static_cast<std::size_t>(v)].size() > 1) return v;
    }
    return -1;
  }

  if (heap_active_) return select_from_heap(options, rng);

  VarId best = -1;
  std::int64_t best_size = 0;
  std::int64_t best_wdeg = 1;
  std::int64_t ties = 0;
  for (std::int64_t k = 0; k < unfixed_size_; ++k) {
    const VarId v = unfixed_list_[static_cast<std::size_t>(k)];
    const auto size =
        static_cast<std::int64_t>(domains_[static_cast<std::size_t>(v)].size());
    const std::int64_t wdeg =
        options.var_heuristic == VarHeuristic::kDomWdeg
            ? std::max<std::int64_t>(1, var_wdeg_[static_cast<std::size_t>(v)])
            : 1;
    // Compare size/wdeg < best_size/best_wdeg via cross multiplication.
    bool better;
    bool tie;
    if (best < 0) {
      better = true;
      tie = false;
    } else {
      const std::int64_t lhs = size * best_wdeg;
      const std::int64_t rhs = best_size * wdeg;
      better = lhs < rhs;
      tie = lhs == rhs;
    }
    if (better) {
      best = v;
      best_size = size;
      best_wdeg = wdeg;
      ties = 1;
    } else if (tie) {
      if (options.random_var_ties) {
        // Reservoir sampling keeps each tied candidate equally likely.
        ++ties;
        if (rng.uniform(1, ties) == 1) {
          best = v;
          best_size = size;
          best_wdeg = wdeg;
        }
      } else if (v < best) {
        best = v;
        best_size = size;
        best_wdeg = wdeg;
      }
    }
  }
  return best;
}

Value Solver::select_value(const SearchOptions& options, VarId var,
                           std::uint64_t tried, support::Rng& rng) const {
  const Domain64& d = domains_[static_cast<std::size_t>(var)];
  std::uint64_t candidates = d.raw_mask() & ~tried;
  MGRTS_ASSERT(candidates != 0);
  switch (options.val_heuristic) {
    case ValHeuristic::kMin:
      return d.base() + std::countr_zero(candidates);
    case ValHeuristic::kMax:
      return d.base() + (63 - std::countl_zero(candidates));
    case ValHeuristic::kRandom: {
      const int count = std::popcount(candidates);
      int pick = static_cast<int>(rng.uniform(0, count - 1));
      while (pick-- > 0) candidates &= candidates - 1;
      return d.base() + std::countr_zero(candidates);
    }
  }
  return d.base() + std::countr_zero(candidates);
}

SolveOutcome Solver::solve(const SearchOptions& options) {
  support::Stopwatch watch;
  stats_ = SolveStats{};
  scratch_ = options.propagation != PropagationMode::kIncremental;
  legacy_ = options.propagation == PropagationMode::kLegacy;
  support::Rng rng(options.seed);

  // Selection-heap setup must precede any domain traffic (the unfixed-set
  // population below and root propagation both push entries).
  heap_active_ = options.selection == SelectionMode::kHeap &&
                 options.var_heuristic != VarHeuristic::kLex;
  heap_use_wdeg_ = options.var_heuristic == VarHeuristic::kDomWdeg;
  heap_.clear();
  heap_seen_.assign(domains_.size(), 0);
  heap_stamp_ = 0;

  // The nogood store joins the model as a propagator before the watch
  // lists freeze; it stays empty (and silent) until the first conflict.
  // kLegacy skips advisors entirely, so watched-literal replay cannot run
  // there — recording is disabled rather than silently inert.
  nogood_store_ = nullptr;
  // General (1-UIP) stores carry !=/<=/>= literals whose entailment can
  // move on prune events, so they watch every change; decision-set stores
  // keep the fix-only subscription.
  const bool uip_learning =
      options.nogood_shrink && options.nogood_learn == NogoodLearn::kUip1;
  if (!frozen_ && !legacy_ &&
      (options.nogoods || options.nogood_pool != nullptr) &&
      !domains_.empty()) {
    auto store = std::make_unique<NogoodStore>(
        variable_count(), options.nogood_max_length, options.nogood_max_lbd,
        options.nogood_db_limit, /*general=*/uip_learning);
    nogood_store_ = store.get();
    add(std::move(store));
  }
  // Direct event delivery for the solve-owned store (see notify_store);
  // externally added stores stay on the CSR lists and both flags stay off.
  store_direct_any_ = nogood_store_ != nullptr && uip_learning;
  store_direct_fixed_ = nogood_store_ != nullptr && !uip_learning;
  if (nogood_store_ != nullptr) nogood_store_->bind_stats(&stats_);

  // Per-propagator observability (the propagator set is final here).
  prop_wakes_.assign(propagators_.size(), 0);
  prop_runs_.assign(propagators_.size(), 0);
  prop_prunes_.assign(propagators_.size(), 0);
  prop_seconds_.assign(propagators_.size(), 0.0);
  prop_profile_ = options.prop_profile;
  running_prop_ = -1;

  // Reason tracking (DESIGN.md §10) is built only when conflict-analysis
  // shrinking can use it (or the determinism probe forces it); otherwise
  // active_reason_ stays kReasonNone and no per-change work happens.
  track_reasons_ =
      !legacy_ && !domains_.empty() &&
      ((options.nogood_shrink && nogood_store_ != nullptr) ||
       options.force_reason_trail);
  active_reason_ = kReasonNone;
  if (track_reasons_) {
    reason_offset_.assign(1, 0);
    reason_vars_.clear();
    relevant_stamp_.assign(domains_.size(), 0);
    relevant_epoch_ = 0;
    if (uip_learning) {
      uip_count_.assign(domains_.size(), 0);
      walk_mask_.assign(domains_.size(), 0);
      walk_stamp_.assign(domains_.size(), 0);
    }
  }
  cur_depth_ = 0;

  SolveOutcome outcome;
  auto finish = [&](SolveStatus status) {
    stats_.seconds = watch.seconds();
    // Fold the per-id counters into per-class rows keyed by name() (the
    // class set is tiny, so a linear probe beats a map), sorted by name
    // for stable output.
    stats_.propagators.clear();
    for (std::size_t k = 0; k < propagators_.size(); ++k) {
      const char* nm = propagators_[k]->name();
      auto row = std::find_if(
          stats_.propagators.begin(), stats_.propagators.end(),
          [&](const PropagatorProfile& r) { return r.name == nm; });
      if (row == stats_.propagators.end()) {
        stats_.propagators.push_back(PropagatorProfile{nm, 0, 0, 0, 0.0});
        row = stats_.propagators.end() - 1;
      }
      row->wakes += prop_wakes_[k];
      row->runs += prop_runs_[k];
      row->prunes += prop_prunes_[k];
      row->seconds += prop_seconds_[k];
    }
    std::sort(stats_.propagators.begin(), stats_.propagators.end(),
              [](const PropagatorProfile& a, const PropagatorProfile& b) {
                return a.name < b.name;
              });
    outcome.status = status;
    outcome.stats = stats_;
    if (status == SolveStatus::kSat) {
      outcome.assignment.reserve(domains_.size());
      for (const Domain64& d : domains_) outcome.assignment.push_back(d.value());
    }
    return outcome;
  };

  if (!frozen_) {
    build_watch_lists();
    // Populate the unfixed sparse set.
    for (VarId v = 0; v < static_cast<VarId>(domains_.size()); ++v) {
      if (domains_[static_cast<std::size_t>(v)].empty()) {
        return finish(SolveStatus::kUnsat);
      }
      sync_membership(v);
    }
  }

  // Root propagation: schedule everything once.  The first run of each
  // incremental propagator primes its trailed counters from the (possibly
  // post_fix/post_remove-narrowed) root domains.
  for (const auto& p : propagators_) enqueue(*p);
  if (!propagate_queue()) {
    bump_failure(failing_prop_);
    return finish(SolveStatus::kUnsat);
  }
  Mark root_mark = mark();  // advanced by restart-time root strengthening
  if (uip_learning && nogood_store_ != nullptr) snapshot_root_bounds();

  std::int64_t restart_index = 0;
  std::int64_t failures_until_restart = -1;  // -1 = no budget
  auto reset_restart_budget = [&] {
    switch (options.restart) {
      case RestartPolicy::kNone:
        failures_until_restart = -1;
        break;
      case RestartPolicy::kLuby:
        failures_until_restart = options.restart_scale * luby(restart_index + 1);
        break;
      case RestartPolicy::kGeometric:
        failures_until_restart = static_cast<std::int64_t>(
            static_cast<double>(options.restart_scale) *
            std::pow(1.5, static_cast<double>(restart_index)));
        break;
    }
  };
  reset_restart_budget();

  std::vector<Frame> frames;
  std::vector<Lit> nogood_buf;
  std::vector<std::int32_t> depth_buf;  ///< frame depths of nogood_buf lits

  for (;;) {  // restart loop
    bool restart_requested = false;

    // Depth-first search with an explicit frame stack.
    while (!restart_requested) {
      if (all_assigned()) {
        return finish(SolveStatus::kSat);
      }

      // Periodic limit checks.
      if ((stats_.nodes & 0x3f) == 0) {
        if (options.deadline.poll()) return finish(SolveStatus::kTimeout);
      }
      if (options.max_nodes >= 0 && stats_.nodes >= options.max_nodes) {
        return finish(SolveStatus::kNodeLimit);
      }

      // Open a decision on a fresh variable.
      const VarId lex_hint = frames.empty() ? 0 : frames.back().lex_hint;
      const VarId var = select_variable(options, lex_hint, rng);
      MGRTS_ASSERT(var >= 0);
      Frame frame;
      frame.var = var;
      frame.mark = mark();
      frame.lex_hint = std::max(lex_hint, var);
      frames.push_back(frame);
      cur_depth_ = static_cast<std::int32_t>(frames.size());
      stats_.max_depth = std::max(stats_.max_depth,
                                  static_cast<std::int64_t>(frames.size()));

      // Try values until one propagates, backtracking frames as they
      // exhaust.
      for (;;) {
        Frame& top = frames.back();
        const Domain64& d = domains_[static_cast<std::size_t>(top.var)];
        const std::uint64_t candidates = d.raw_mask() & ~top.tried;
        if (candidates == 0) {
          // Frame exhausted: undo and propagate the failure upward.
          frames.pop_back();
          if (frames.empty()) {
            return finish(SolveStatus::kUnsat);
          }
          backtrack_to(frames.back().mark);
          cur_depth_ = static_cast<std::int32_t>(frames.size());
          continue;
        }

        const Value value = select_value(options, top.var, top.tried, rng);
        top.tried |= std::uint64_t{1}
                     << static_cast<unsigned>(value - d.base());
        ++stats_.nodes;
        if ((stats_.nodes & 0x3f) == 0 && options.deadline.poll()) {
          return finish(SolveStatus::kTimeout);
        }
        if (options.max_nodes >= 0 && stats_.nodes > options.max_nodes) {
          return finish(SolveStatus::kNodeLimit);
        }

        if (track_reasons_) active_reason_ = kReasonDecision;
        const PropResult fixed = fix(top.var, value);
        if (track_reasons_) active_reason_ = kReasonNone;
        const bool ok = fixed == PropResult::kOk && propagate_queue();
        if (ok) break;  // descend

        ++stats_.failures;
        bump_failure(failing_prop_);

        // Conflict analysis must read the implication trail before the
        // backtrack below unwinds the conflicting subtree.  Both walks are
        // independent pure observers (each opens a fresh stamp epoch), so
        // under kUip1 the decision-set walk — the differential reference
        // behind uip_clause_len_ratio — only needs to run on sampled
        // conflicts (every options.nogood_ds_sample'th); the rest go
        // straight to the 1-UIP walk and fall back to a lazily-run
        // decision-set walk when it fails.  Recorded clauses are identical
        // for every sampling period.
        const bool can_analyze = nogood_store_ != nullptr &&
                                 track_reasons_ && failing_prop_ >= 0;
        const std::int32_t ds_period = options.nogood_ds_sample;
        const bool ds_sampled =
            ds_period == 1 ||
            (ds_period > 1 && (stats_.failures - 1) % ds_period == 0);

        bool shrink = false;   ///< the decision-set walk ran and succeeded
        bool use_uip = false;  ///< record uip_lits_ instead of nogood_buf

        // Decision-set walk plus clause build: the decisions standing
        // below this frame (still fixed — nothing is unwound yet) plus the
        // assignment that just failed.  With analysis available, only the
        // decisions the conflict is actually reachable from are kept, and
        // the length cut applies to the minimized clause — deep conflicts
        // with local causes still record.
        auto ds_walk = [&] {
          shrink = can_analyze && analyze_conflict(root_mark.domain);
          nogood_buf.clear();
          depth_buf.clear();
          if (nogood_store_ != nullptr &&
              (shrink || static_cast<std::int64_t>(frames.size()) <=
                             options.nogood_max_length)) {
            for (std::size_t k = 0; k + 1 < frames.size(); ++k) {
              const VarId v = frames[k].var;
              if (shrink &&
                  relevant_stamp_[static_cast<std::size_t>(v)] !=
                      relevant_epoch_) {
                continue;
              }
              nogood_buf.push_back(Lit::eq(
                  v, domains_[static_cast<std::size_t>(v)].value()));
              depth_buf.push_back(static_cast<std::int32_t>(k));
            }
            nogood_buf.push_back(Lit::eq(top.var, value));
            depth_buf.push_back(static_cast<std::int32_t>(frames.size()) -
                                1);
          }
        };

        // 1-UIP resolution (DESIGN.md §11): resolve the conflict level
        // down to its first unique implication point and learn that
        // literal frontier instead.  Structurally never longer than the
        // decision set (the UIP walk expands a subset of the full walk's
        // entries).  Gate on uip_learning, not the learn knob alone:
        // analysis can be live through force_reason_trail while
        // nogood_shrink is off, and the walk's scratch arrays are only
        // sized for real 1-UIP runs.
        if (uip_learning && can_analyze && !ds_sampled) {
          // Unsampled fast path: skip the differential reference entirely.
          use_uip = analyze_uip(root_mark.domain, top.mark.domain,
                                options.nogood_minimize);
          if (!use_uip) ds_walk();
        } else {
          ds_walk();
          if (shrink && uip_learning) {
            use_uip = analyze_uip(root_mark.domain, top.mark.domain,
                                  options.nogood_minimize);
            if (use_uip) {
              stats_.nogood_lits_uip +=
                  static_cast<std::int64_t>(uip_lits_.size());
              stats_.nogood_lits_ds +=
                  static_cast<std::int64_t>(nogood_buf.size());
              MGRTS_ASSERT(uip_lits_.size() <= nogood_buf.size());
            }
          }
        }
        failing_prop_ = -1;

        // Records one learned clause; the frontier form can carry several
        // literals at one depth, so block_lbd gets the deduped strictly-
        // ascending depth set.
        auto record_clause = [&](const std::vector<Lit>& lits,
                                 const std::vector<std::int32_t>& depths,
                                 std::int32_t raw_len) {
          if (nogood_store_ == nullptr || lits.empty() ||
              static_cast<std::int64_t>(lits.size()) >
                  options.nogood_max_length) {
            return;
          }
          lbd_depths_.clear();
          for (const std::int32_t d : depths) {
            if (lbd_depths_.empty() || lbd_depths_.back() != d) {
              lbd_depths_.push_back(d);
            }
          }
          nogood_store_->record(
              lits, raw_len,
              block_lbd(lbd_depths_.data(),
                        static_cast<std::int32_t>(lbd_depths_.size())),
              stats_);
        };

        // Non-chronological backjumping (DESIGN.md §15): when the learned
        // clause is asserting — its assertion level (the second-highest
        // literal depth) sits strictly below the conflict level — unwind
        // straight to that level, record the clause, and assert the
        // negated UIP literal there with the clause as its explicit
        // reason.  A clause that still pins the conflict level (Phase B
        // kept the conflict decision) falls back to the chronological
        // retry, as does every conflict without a usable 1-UIP analysis.
        if (failures_until_restart > 0 && --failures_until_restart == 0) {
          restart_requested = true;  // record below, then restart
        }
        std::int32_t jump_to = -1;
        if (!restart_requested && options.backjump && use_uip) {
          const auto conflict_depth =
              static_cast<std::int32_t>(frames.size());
          const std::int32_t assert_level =
              uip_lits_.size() >= 2 ? uip_depths_[uip_lits_.size() - 2] : 0;
          if (assert_level < conflict_depth) jump_to = assert_level;
        }

        if (jump_to < 0) {
          // Chronological retry: the differential baseline, and the
          // fallback for non-asserting clauses.
          backtrack_to(top.mark);
          record_clause(use_uip ? uip_lits_ : nogood_buf,
                        use_uip ? uip_depths_ : depth_buf,
                        static_cast<std::int32_t>(frames.size()));
          if (restart_requested) break;
          continue;
        }

        bool descend = false;
        for (;;) {  // assertion loop: jump, assert, re-propagate
          const auto depth_now = static_cast<std::int32_t>(frames.size());
          const Mark target = frames[static_cast<std::size_t>(jump_to)].mark;
          frames.resize(static_cast<std::size_t>(jump_to));
          backtrack_to(target);
          cur_depth_ = jump_to;
          ++stats_.backjumps;
          stats_.backjump_levels_saved += (depth_now - 1) - jump_to;
          // Record first (the clause's non-UIP literals are still entailed
          // at the assertion level, the UIP literal is free — exactly the
          // state record() watches against), then assert the negated UIP
          // literal under the clause variables as the explicit reason.
          record_clause(uip_lits_, uip_depths_, depth_now);
          const Lit uip = uip_lits_.back();
          assert_vars_.clear();
          for (const Lit& l : uip_lits_) assert_vars_.push_back(l.var);
          begin_explicit_reason(
              assert_vars_.data(),
              static_cast<std::int32_t>(assert_vars_.size()));
          PropResult asserted = PropResult::kOk;
          if (uip.rel == Rel::kNe) {
            // ¬(var != val) is the assignment itself.
            asserted = fix(uip.var, uip.val);
          } else {
            const Domain64& ud = domains_[static_cast<std::size_t>(uip.var)];
            std::uint64_t kill = ud.raw_mask() & truth_mask(uip, ud.base());
            while (kill != 0 && asserted == PropResult::kOk) {
              const Value v = ud.base() + std::countr_zero(kill);
              kill &= kill - 1;
              asserted = remove(uip.var, v);
            }
          }
          end_explicit_reason();

          if (asserted == PropResult::kOk && propagate_queue()) {
            descend = true;
            break;
          }
          // Fresh conflict at the assertion level.  A failed assert
          // short-circuits propagate_queue, so flush its stale wakeups.
          if (asserted != PropResult::kOk) clear_queue();
          ++stats_.failures;
          bump_failure(failing_prop_);
          if (frames.empty()) {
            // The clause asserts at the root and still conflicts: UNSAT.
            failing_prop_ = -1;
            return finish(SolveStatus::kUnsat);
          }
          bool again = false;
          if (nogood_store_ != nullptr && track_reasons_ &&
              failing_prop_ >= 0) {
            again = analyze_uip(root_mark.domain, frames.back().mark.domain,
                                options.nogood_minimize);
          }
          failing_prop_ = -1;
          std::int32_t next_level = -1;
          if (again) {
            const auto d_now = static_cast<std::int32_t>(frames.size());
            const std::int32_t lvl =
                uip_lits_.size() >= 2 ? uip_depths_[uip_lits_.size() - 2]
                                      : 0;
            if (lvl < d_now) next_level = lvl;
          }
          if (failures_until_restart > 0 &&
              --failures_until_restart == 0) {
            restart_requested = true;
          }
          if (next_level < 0 || restart_requested) {
            // Chronological fallback: unwind this level and let the value
            // loop retry the standing frame's remaining values.
            backtrack_to(frames.back().mark);
            if (again) {
              record_clause(uip_lits_, uip_depths_,
                            static_cast<std::int32_t>(frames.size()));
            }
            break;
          }
          jump_to = next_level;
        }
        if (descend) break;     // resume decisions from the assertion level
        if (restart_requested) break;
      }
    }

    // Restart: rewind to the root state and search again (the rng state
    // advances, so randomized heuristics explore a different tree).
    frames.clear();
    backtrack_to(root_mark);
    cur_depth_ = 0;
    ++restart_index;
    ++stats_.restarts;

    // Nogood database maintenance runs at the root: pool exchange, unit
    // folding, pruning, watch rebuild.  Unit folds strengthen the root
    // permanently, so the root mark advances past the re-propagated state.
    if (nogood_store_ != nullptr) {
      if (!nogood_store_->restart_maintenance(*this, options.nogood_pool,
                                              options.nogood_lane, stats_)) {
        return finish(SolveStatus::kUnsat);
      }
      if (!propagate_queue()) {
        bump_failure(failing_prop_);
        failing_prop_ = -1;
        return finish(SolveStatus::kUnsat);
      }
      root_mark = mark();
      // Unit folds may have moved root bounds; the bound-form test in
      // entry_literal must stay root-equivalent.
      if (uip_learning) snapshot_root_bounds();
    }

    reset_restart_budget();
    if (options.deadline.poll()) return finish(SolveStatus::kTimeout);
  }
}

}  // namespace mgrts::csp
