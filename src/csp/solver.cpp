#include "csp/solver.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"
#include "support/deadline.hpp"
#include "support/error.hpp"

namespace mgrts::csp {

namespace {

/// Luby sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
std::int64_t luby(std::int64_t i) {
  // Find k with 2^k - 1 == i  =>  luby = 2^(k-1); otherwise recurse.
  std::int64_t k = 1;
  while ((std::int64_t{1} << k) - 1 < i) ++k;
  if ((std::int64_t{1} << k) - 1 == i) return std::int64_t{1} << (k - 1);
  return luby(i - ((std::int64_t{1} << (k - 1)) - 1));
}

}  // namespace

Solver::Solver(SolverLimits limits) : limits_(limits) {}
Solver::~Solver() = default;

VarId Solver::add_variable(Value lo, Value hi) {
  MGRTS_EXPECTS(!frozen_);
  if (variable_count() >= limits_.max_variables) {
    throw ResourceError("CSP model exceeds the variable budget (" +
                        std::to_string(limits_.max_variables) + ")");
  }
  domains_.emplace_back(lo, hi);
  const auto v = static_cast<VarId>(domains_.size() - 1);
  unfixed_pos_.push_back(-1);
  var_wdeg_.push_back(0);
  return v;
}

void Solver::add(std::unique_ptr<Propagator> propagator) {
  MGRTS_EXPECTS(!frozen_);
  MGRTS_EXPECTS(propagator != nullptr);
  propagator->id_ = static_cast<std::int32_t>(propagators_.size());
  propagators_.push_back(std::move(propagator));
}

bool Solver::post_fix(VarId v, Value a) {
  MGRTS_EXPECTS(!frozen_);
  Domain64& d = domains_[static_cast<std::size_t>(v)];
  if (!d.contains(a)) return false;
  d.fix(a);
  return true;
}

bool Solver::post_remove(VarId v, Value a) {
  MGRTS_EXPECTS(!frozen_);
  Domain64& d = domains_[static_cast<std::size_t>(v)];
  d.remove(a);
  return !d.empty();
}

void Solver::trail_push(VarId v, std::uint64_t old_mask) {
  trail_.push_back(TrailEntry{v, old_mask});
}

void Solver::sync_membership(VarId v) {
  const bool want = domains_[static_cast<std::size_t>(v)].size() > 1;
  auto& pos = unfixed_pos_[static_cast<std::size_t>(v)];
  const bool have = pos >= 0;
  if (want == have) return;
  if (want) {
    // Insert: either extend or reuse slack capacity of the list.
    if (static_cast<std::size_t>(unfixed_size_) == unfixed_list_.size()) {
      unfixed_list_.push_back(v);
    } else {
      unfixed_list_[static_cast<std::size_t>(unfixed_size_)] = v;
    }
    pos = static_cast<std::int32_t>(unfixed_size_);
    ++unfixed_size_;
  } else {
    // Swap-remove.
    const auto last_idx = static_cast<std::size_t>(unfixed_size_ - 1);
    const VarId moved = unfixed_list_[last_idx];
    unfixed_list_[static_cast<std::size_t>(pos)] = moved;
    unfixed_pos_[static_cast<std::size_t>(moved)] = pos;
    unfixed_list_[last_idx] = v;
    pos = -1;
    --unfixed_size_;
  }
}

void Solver::schedule_watchers(VarId v) {
  const auto begin = watch_offset_[static_cast<std::size_t>(v)];
  const auto end = watch_offset_[static_cast<std::size_t>(v) + 1];
  for (std::int32_t k = begin; k < end; ++k) {
    Propagator& p = *propagators_[static_cast<std::size_t>(watch_data_[
        static_cast<std::size_t>(k)])];
    if (!p.queued_) {
      p.queued_ = true;
      queue_.push_back(p.id_);
    }
  }
}

PropResult Solver::remove(VarId v, Value a) {
  Domain64& d = domains_[static_cast<std::size_t>(v)];
  if (!d.contains(a)) return PropResult::kOk;
  trail_push(v, d.raw_mask());
  d.remove(a);
  sync_membership(v);
  if (d.empty()) return PropResult::kFail;
  schedule_watchers(v);
  return PropResult::kOk;
}

PropResult Solver::fix(VarId v, Value a) {
  Domain64& d = domains_[static_cast<std::size_t>(v)];
  if (!d.contains(a)) return PropResult::kFail;
  if (d.is_fixed()) return PropResult::kOk;
  trail_push(v, d.raw_mask());
  d.fix(a);
  sync_membership(v);
  schedule_watchers(v);
  return PropResult::kOk;
}

void Solver::backtrack_to(std::size_t mark) {
  while (trail_.size() > mark) {
    const TrailEntry entry = trail_.back();
    trail_.pop_back();
    domains_[static_cast<std::size_t>(entry.var)].set_raw_mask(entry.old_mask);
    sync_membership(entry.var);
  }
}

void Solver::clear_queue() {
  for (std::size_t k = queue_head_; k < queue_.size(); ++k) {
    propagators_[static_cast<std::size_t>(queue_[k])]->queued_ = false;
  }
  queue_.clear();
  queue_head_ = 0;
}

void Solver::bump_failure(std::int32_t prop_id) {
  if (prop_id < 0) return;
  Propagator& p = *propagators_[static_cast<std::size_t>(prop_id)];
  ++p.weight_;
  for (const VarId v : p.scope()) {
    ++var_wdeg_[static_cast<std::size_t>(v)];
  }
}

bool Solver::propagate_queue() {
  while (queue_head_ < queue_.size()) {
    const std::int32_t id = queue_[queue_head_++];
    Propagator& p = *propagators_[static_cast<std::size_t>(id)];
    p.queued_ = false;
    ++stats_.propagations;
    if (p.propagate(*this) == PropResult::kFail) {
      failing_prop_ = id;
      clear_queue();
      return false;
    }
    // Compact the queue occasionally so it does not grow without bound.
    if (queue_head_ > 4096 && queue_head_ * 2 > queue_.size()) {
      queue_.erase(queue_.begin(),
                   queue_.begin() + static_cast<std::ptrdiff_t>(queue_head_));
      queue_head_ = 0;
    }
  }
  queue_.clear();
  queue_head_ = 0;
  return true;
}

void Solver::build_watch_lists() {
  const std::size_t n = domains_.size();
  std::vector<std::int32_t> counts(n + 1, 0);
  for (const auto& p : propagators_) {
    for (const VarId v : p->scope()) {
      ++counts[static_cast<std::size_t>(v) + 1];
    }
  }
  for (std::size_t i = 1; i <= n; ++i) counts[i] += counts[i - 1];
  watch_offset_ = counts;
  watch_data_.assign(static_cast<std::size_t>(counts[n]), 0);
  std::vector<std::int32_t> cursor = watch_offset_;
  for (const auto& p : propagators_) {
    for (const VarId v : p->scope()) {
      watch_data_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(v)]++)] =
          p->id_;
    }
  }
  // Initialize wdeg: every constraint contributes its base weight 1.
  for (const auto& p : propagators_) {
    for (const VarId v : p->scope()) {
      ++var_wdeg_[static_cast<std::size_t>(v)];
    }
  }
  frozen_ = true;
}

VarId Solver::select_variable(const SearchOptions& options, VarId lex_hint,
                              support::Rng& rng) const {
  if (options.var_heuristic == VarHeuristic::kLex) {
    for (VarId v = lex_hint; v < static_cast<VarId>(domains_.size()); ++v) {
      if (domains_[static_cast<std::size_t>(v)].size() > 1) return v;
    }
    // The hint only moves forward on a branch; a restart may leave earlier
    // variables unfixed, so fall back to a full scan.
    for (VarId v = 0; v < lex_hint; ++v) {
      if (domains_[static_cast<std::size_t>(v)].size() > 1) return v;
    }
    return -1;
  }

  VarId best = -1;
  std::int64_t best_size = 0;
  std::int64_t best_wdeg = 1;
  std::int64_t ties = 0;
  for (std::int64_t k = 0; k < unfixed_size_; ++k) {
    const VarId v = unfixed_list_[static_cast<std::size_t>(k)];
    const auto size =
        static_cast<std::int64_t>(domains_[static_cast<std::size_t>(v)].size());
    const std::int64_t wdeg =
        options.var_heuristic == VarHeuristic::kDomWdeg
            ? std::max<std::int64_t>(1, var_wdeg_[static_cast<std::size_t>(v)])
            : 1;
    // Compare size/wdeg < best_size/best_wdeg via cross multiplication.
    bool better;
    bool tie;
    if (best < 0) {
      better = true;
      tie = false;
    } else {
      const std::int64_t lhs = size * best_wdeg;
      const std::int64_t rhs = best_size * wdeg;
      better = lhs < rhs;
      tie = lhs == rhs;
    }
    if (better) {
      best = v;
      best_size = size;
      best_wdeg = wdeg;
      ties = 1;
    } else if (tie) {
      if (options.random_var_ties) {
        // Reservoir sampling keeps each tied candidate equally likely.
        ++ties;
        if (rng.uniform(1, ties) == 1) {
          best = v;
          best_size = size;
          best_wdeg = wdeg;
        }
      } else if (v < best) {
        best = v;
        best_size = size;
        best_wdeg = wdeg;
      }
    }
  }
  return best;
}

Value Solver::select_value(const SearchOptions& options, VarId var,
                           std::uint64_t tried, support::Rng& rng) const {
  const Domain64& d = domains_[static_cast<std::size_t>(var)];
  std::uint64_t candidates = d.raw_mask() & ~tried;
  MGRTS_ASSERT(candidates != 0);
  switch (options.val_heuristic) {
    case ValHeuristic::kMin:
      return d.base() + std::countr_zero(candidates);
    case ValHeuristic::kMax:
      return d.base() + (63 - std::countl_zero(candidates));
    case ValHeuristic::kRandom: {
      const int count = std::popcount(candidates);
      int pick = static_cast<int>(rng.uniform(0, count - 1));
      while (pick-- > 0) candidates &= candidates - 1;
      return d.base() + std::countr_zero(candidates);
    }
  }
  return d.base() + std::countr_zero(candidates);
}

SolveOutcome Solver::solve(const SearchOptions& options) {
  support::Stopwatch watch;
  stats_ = SolveStats{};
  support::Rng rng(options.seed);

  SolveOutcome outcome;
  auto finish = [&](SolveStatus status) {
    stats_.seconds = watch.seconds();
    outcome.status = status;
    outcome.stats = stats_;
    if (status == SolveStatus::kSat) {
      outcome.assignment.reserve(domains_.size());
      for (const Domain64& d : domains_) outcome.assignment.push_back(d.value());
    }
    return outcome;
  };

  if (!frozen_) {
    build_watch_lists();
    // Populate the unfixed sparse set.
    for (VarId v = 0; v < static_cast<VarId>(domains_.size()); ++v) {
      if (domains_[static_cast<std::size_t>(v)].empty()) {
        return finish(SolveStatus::kUnsat);
      }
      sync_membership(v);
    }
  }

  // Root propagation: schedule everything once.
  for (const auto& p : propagators_) {
    p->queued_ = true;
    queue_.push_back(p->id_);
  }
  if (!propagate_queue()) {
    bump_failure(failing_prop_);
    return finish(SolveStatus::kUnsat);
  }
  const std::size_t root_mark = trail_.size();

  std::int64_t restart_index = 0;
  std::int64_t failures_until_restart = -1;  // -1 = no budget
  auto reset_restart_budget = [&] {
    switch (options.restart) {
      case RestartPolicy::kNone:
        failures_until_restart = -1;
        break;
      case RestartPolicy::kLuby:
        failures_until_restart = options.restart_scale * luby(restart_index + 1);
        break;
      case RestartPolicy::kGeometric:
        failures_until_restart = static_cast<std::int64_t>(
            static_cast<double>(options.restart_scale) *
            std::pow(1.5, static_cast<double>(restart_index)));
        break;
    }
  };
  reset_restart_budget();

  std::vector<Frame> frames;

  for (;;) {  // restart loop
    bool restart_requested = false;

    // Depth-first search with an explicit frame stack.
    while (!restart_requested) {
      if (all_assigned()) {
        return finish(SolveStatus::kSat);
      }

      // Periodic limit checks.
      if ((stats_.nodes & 0x3f) == 0) {
        if (options.deadline.expired()) return finish(SolveStatus::kTimeout);
      }
      if (options.max_nodes >= 0 && stats_.nodes >= options.max_nodes) {
        return finish(SolveStatus::kNodeLimit);
      }

      // Open a decision on a fresh variable.
      const VarId lex_hint = frames.empty() ? 0 : frames.back().lex_hint;
      const VarId var = select_variable(options, lex_hint, rng);
      MGRTS_ASSERT(var >= 0);
      Frame frame;
      frame.var = var;
      frame.trail_mark = trail_.size();
      frame.lex_hint = std::max(lex_hint, var);
      frames.push_back(frame);
      stats_.max_depth = std::max(stats_.max_depth,
                                  static_cast<std::int64_t>(frames.size()));

      // Try values until one propagates, backtracking frames as they
      // exhaust.
      for (;;) {
        Frame& top = frames.back();
        const Domain64& d = domains_[static_cast<std::size_t>(top.var)];
        const std::uint64_t candidates = d.raw_mask() & ~top.tried;
        if (candidates == 0) {
          // Frame exhausted: undo and propagate the failure upward.
          frames.pop_back();
          if (frames.empty()) {
            return finish(SolveStatus::kUnsat);
          }
          backtrack_to(frames.back().trail_mark);
          continue;
        }

        const Value value = select_value(options, top.var, top.tried, rng);
        top.tried |= std::uint64_t{1}
                     << static_cast<unsigned>(value - d.base());
        ++stats_.nodes;
        if ((stats_.nodes & 0x3f) == 0 && options.deadline.expired()) {
          return finish(SolveStatus::kTimeout);
        }
        if (options.max_nodes >= 0 && stats_.nodes > options.max_nodes) {
          return finish(SolveStatus::kNodeLimit);
        }

        const PropResult fixed = fix(top.var, value);
        const bool ok = fixed == PropResult::kOk && propagate_queue();
        if (ok) break;  // descend

        ++stats_.failures;
        bump_failure(failing_prop_);
        failing_prop_ = -1;
        backtrack_to(top.trail_mark);

        if (failures_until_restart > 0 && --failures_until_restart == 0) {
          restart_requested = true;
          break;
        }
      }
    }

    // Restart: rewind to the root state and search again (the rng state
    // advances, so randomized heuristics explore a different tree).
    frames.clear();
    backtrack_to(root_mark);
    ++restart_index;
    ++stats_.restarts;
    reset_restart_budget();
    if (options.deadline.expired()) return finish(SolveStatus::kTimeout);
  }
}

}  // namespace mgrts::csp
