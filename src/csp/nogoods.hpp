// Nogood recording across restarts (DESIGN.md §6).
//
// At every conflict the solver extracts the *decision-set nogood*: the
// sequence of decisions d_1 .. d_k (each "var = val") whose conjunction was
// refuted by propagation.  Its negation is a clause of disequality literals
// (var != val), at least one of which must hold in every solution, and —
// unlike the trail itself — it stays valid after a restart, which is what
// lets Luby-restarted search stop re-exploring refuted prefixes.
//
// The database is replayed as 2-watched-literal constraints: the store is a
// single propagator whose scope is every variable, so it plugs into the
// existing CSR fixed-event watch lists (one entry per variable) while
// clause-level watches live in its own per-variable lists.  A literal
// (var != val) is *falsified* exactly when var becomes fixed to val, so
// kFixedOnly waking sees every falsification; watches repair lazily and
// need no trailing because chronological backtracking only un-falsifies.
//
// Database hygiene happens at restarts (the only point where the trail is
// at the root): satisfied-at-root clauses are dropped, clauses that became
// unit at the root strengthen the root permanently, and when the database
// exceeds its soft limit the worst entries are pruned by *block LBD* (the
// number of maximal runs of consecutive decision depths at recording time —
// see block_lbd and DESIGN.md §10), newest-first within a glue class.  A
// NogoodPool lets portfolio lanes solving the same model share databases:
// lanes publish their fresh recordings (with their LBD) at each restart and
// import the other lanes' entries read-only, admitting by LBD rather than
// length — a long clause whose literals sit in one tight depth block beats
// a short one scattered across the tree.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "csp/solver.hpp"

namespace mgrts::csp {

/// One clause literal, read as "var != val".  (Equivalently: the recorded
/// decision "var = val" that must not be repeated in full.)
struct NogoodLit {
  VarId var;
  Value val;
};

/// Block LBD (DESIGN.md §10): the number of maximal runs of consecutive
/// decision depths in `depths` (ascending, n >= 1).  Under chronological
/// backtracking, literals at consecutive depths falsify and un-falsify
/// together, so each run behaves like one glued literal; unminimized
/// decision sets are a single run (LBD 1), while conflict-analysis
/// shrinking opens gaps and scattered clauses replay poorly.
[[nodiscard]] std::int32_t block_lbd(const std::int32_t* depths,
                                     std::int32_t n);

/// A clause in flight between lanes: its literals plus the block LBD it
/// was recorded with (the importing lane's admission key).
struct PooledNogood {
  std::vector<NogoodLit> lits;
  std::int32_t lbd = 1;
};

/// Thread-safe exchange of nogoods between lanes solving the same model.
/// Entries are append-only; each lane keeps its own import cursor and skips
/// entries it published itself.
class NogoodPool {
 public:
  void publish(std::int32_t lane, const NogoodLit* lits, std::int32_t len,
               std::int32_t lbd);

  /// Copies entries in [cursor, end) published by other lanes into `out`
  /// (appending) and returns the new cursor.
  std::size_t import_since(std::size_t cursor, std::int32_t lane,
                           std::vector<PooledNogood>& out) const;

  [[nodiscard]] std::size_t size() const;

 private:
  struct Entry {
    std::int32_t lane;
    PooledNogood clause;
  };
  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
};

/// The in-solver nogood database.  Created by Solver::solve when
/// SearchOptions::nogoods (or a pool) is set; owned by the solver like any
/// propagator.
class NogoodStore final : public Propagator {
 public:
  /// `vars` is the total variable count; the store watches every variable.
  /// `max_lbd` is the pool-import admission cut (block LBD at recording).
  NogoodStore(std::int64_t vars, std::int32_t max_length,
              std::int32_t max_lbd, std::int32_t db_limit);

  // ---- Propagator interface ------------------------------------------
  PropResult propagate(Solver& solver) override;
  [[nodiscard]] const std::vector<VarId>& scope() const override {
    return scope_;
  }
  [[nodiscard]] const std::vector<VarId>& failure_scope() const override;
  [[nodiscard]] const char* name() const override { return "nogood-store"; }
  [[nodiscard]] WakePolicy wake_policy() const override {
    return WakePolicy::kFixedOnly;
  }
  [[nodiscard]] PropPriority priority() const override {
    return PropPriority::kFast;
  }
  bool on_event(Solver& solver, std::int32_t pos,
                std::uint64_t old_mask) override;

  // ---- solver hooks ---------------------------------------------------

  /// Records one (possibly conflict-analysis-minimized) nogood.
  /// `decisions` lists the kept decisions shallowest-first, the failed
  /// assignment last; the caller invokes this right after backtracking the
  /// failed assignment, so the last literal is free and every other
  /// literal is still falsified.  `raw_len` is the full decision-set
  /// length before shrinking and `lbd` the block LBD of the kept depths
  /// (both feed the stats and the clause's admission key).  Length-1
  /// nogoods queue a permanent root removal instead of a clause.
  void record(const std::vector<NogoodLit>& decisions, std::int32_t raw_len,
              std::int32_t lbd, SolveStats& stats);

  /// Restart-time database maintenance; must run with the trail at the
  /// root.  Publishes fresh recordings to / imports from `pool` (may be
  /// null), applies queued root units, drops satisfied clauses, prunes an
  /// oversized database, and rebuilds every watch list.  Returns false
  /// when a root unit or root-falsified clause proves UNSAT.
  [[nodiscard]] bool restart_maintenance(Solver& solver, NogoodPool* pool,
                                         std::int32_t lane,
                                         SolveStats& stats);

  [[nodiscard]] std::int64_t clause_count() const noexcept {
    return static_cast<std::int64_t>(clauses_.size());
  }

  /// Points the store at the active solve's stats so in-search unit
  /// removals and clause conflicts are counted (propagate() has no stats
  /// channel of its own).  The target must outlive the solve.
  void bind_stats(SolveStats* stats) noexcept { stats_ = stats; }

 private:
  struct Clause {
    std::int32_t offset;  ///< span start in lits_
    std::int32_t len;
    std::int32_t lbd;  ///< block LBD at recording (kept through compaction)
    bool imported;     ///< pool-provided; never re-published
  };

  [[nodiscard]] static bool falsified(const Solver& solver,
                                      const NogoodLit& lit) {
    const Domain64& d = solver.domain(lit.var);
    return d.is_fixed() && d.value() == lit.val;
  }
  [[nodiscard]] static bool satisfied(const Solver& solver,
                                      const NogoodLit& lit) {
    return !solver.domain(lit.var).contains(lit.val);
  }

  void add_clause(const NogoodLit* lits, std::int32_t len, std::int32_t lbd,
                  bool imported);
  PropResult examine(Solver& solver, std::int32_t clause_id);
  /// Applies one permanent root removal; false when it proves UNSAT.
  [[nodiscard]] bool apply_root_unit(Solver& solver, const NogoodLit& unit,
                                     SolveStats& stats);

  std::vector<VarId> scope_;  ///< identity over all variables
  std::vector<NogoodLit> lits_;
  std::vector<Clause> clauses_;
  /// Per-variable clause-watch lists.  Entries are stale-tolerant (a watch
  /// move appends to the new variable's list without erasing the old
  /// entry); restart_maintenance rebuilds them compactly.
  std::vector<std::vector<std::int32_t>> watch_;
  std::vector<std::int32_t> pending_;  ///< clause ids with a falsified watch
  std::vector<NogoodLit> root_units_;  ///< length-1 nogoods awaiting a restart
  std::vector<VarId> conflict_vars_;   ///< last failing clause, for dom/wdeg
  std::size_t export_cursor_ = 0;      ///< first clause not yet published
  std::size_t pool_cursor_ = 0;        ///< pool read position
  SolveStats* stats_ = nullptr;        ///< bound by the active solve
  std::int32_t max_length_;
  std::int32_t max_lbd_;
  std::int32_t db_limit_;
};

}  // namespace mgrts::csp
