// Nogood recording across restarts (DESIGN.md §6, §10–11).
//
// A nogood is a conjunction of csp::Lits refuted by search: its negation is
// a clause, at least one conjunct must fail in every solution, and — unlike
// the trail itself — it stays valid after a restart, which is what lets
// Luby-restarted search stop re-exploring refuted prefixes.  Decision-set
// learning records pure (var == val) conjuncts; 1-UIP learning
// (NogoodLearn::kUip1) records the implied-literal frontier, so clauses mix
// ==, != and bound (<=/>=) literals.
//
// The database is replayed as 2-watched-literal constraints: the store is a
// single propagator whose scope is every variable, so it plugs into the
// existing CSR watch lists (one entry per variable) while clause-level
// watches live in its own per-variable lists.  A conjunct is *entailed*
// exactly when every remaining domain value satisfies it — for (var == val)
// that happens only at a fix, so decision-set stores subscribe kFixedOnly;
// bound and != conjuncts become entailed on bound movement and value
// removal, so general (1-UIP) stores subscribe kAnyChange and the advisor
// tests the entailment transition against the pre-change mask.  Watches
// repair lazily and need no trailing because chronological backtracking
// only un-entails.
//
// Database hygiene happens at restarts (the only point where the trail is
// at the root): impossible-conjunct clauses are dropped, clauses that
// became unit at the root strengthen the root permanently, and when the
// database exceeds its soft limit the worst entries are pruned by *block
// LBD* (see block_lbd and DESIGN.md §10), newest-first within a glue
// class.  Two in-search refinements (DESIGN.md §11): a replay hit
// recomputes the firing clause's block LBD from the current entailment
// depths (a clause that keeps firing inside one depth block is promoted
// toward the protected core), and each fresh recording is checked for
// subsumption against the previous one — only the stronger clause
// survives.  A NogoodPool lets portfolio lanes solving the same model
// share databases in literal form, so lanes import bound clauses too;
// admission is by LBD rather than length.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "csp/solver.hpp"

namespace mgrts::csp {

/// Block LBD (DESIGN.md §10): the number of maximal runs of consecutive
/// decision depths in `depths` (ascending, n >= 1).  Under chronological
/// backtracking, literals at consecutive depths falsify and un-falsify
/// together, so each run behaves like one glued literal; unminimized
/// decision sets are a single run (LBD 1), while conflict-analysis
/// shrinking opens gaps and scattered clauses replay poorly.
[[nodiscard]] std::int32_t block_lbd(const std::int32_t* depths,
                                     std::int32_t n);

/// A clause in flight between lanes: its literals plus the block LBD it
/// was recorded with (the importing lane's admission key).
struct PooledNogood {
  std::vector<Lit> lits;
  std::int32_t lbd = 1;
};

/// Thread-safe exchange of nogoods between lanes solving the same model.
/// Entries are append-only; each lane keeps its own import cursor and skips
/// entries it published itself.
class NogoodPool {
 public:
  void publish(std::int32_t lane, const Lit* lits, std::int32_t len,
               std::int32_t lbd);

  /// Copies entries in [cursor, end) published by other lanes into `out`
  /// (appending) and returns the new cursor.
  std::size_t import_since(std::size_t cursor, std::int32_t lane,
                           std::vector<PooledNogood>& out) const;

  [[nodiscard]] std::size_t size() const;

 private:
  struct Entry {
    std::int32_t lane;
    PooledNogood clause;
  };
  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
};

/// The in-solver nogood database.  Created by Solver::solve when
/// SearchOptions::nogoods (or a pool) is set; owned by the solver like any
/// propagator.
class NogoodStore final : public Propagator {
 public:
  /// `vars` is the total variable count; the store watches every variable.
  /// `max_lbd` is the pool-import admission cut (block LBD at recording).
  /// `general` enables !=/bound literals: the store then wakes on any
  /// change (their entailment moves on prunes); a non-general store keeps
  /// the fix-only subscription and rejects non-== pool imports.
  NogoodStore(std::int64_t vars, std::int32_t max_length,
              std::int32_t max_lbd, std::int32_t db_limit,
              bool general = false);

  // ---- Propagator interface ------------------------------------------
  PropResult propagate(Solver& solver) override;
  void attach(Solver& solver) override { solver_ = &solver; }
  [[nodiscard]] const std::vector<VarId>& scope() const override {
    return scope_;
  }
  [[nodiscard]] const std::vector<VarId>& failure_scope() const override;
  [[nodiscard]] const char* name() const override { return "nogood-store"; }
  [[nodiscard]] WakePolicy wake_policy() const override {
    return general_ ? WakePolicy::kAnyChange : WakePolicy::kFixedOnly;
  }
  [[nodiscard]] PropPriority priority() const override {
    return PropPriority::kFast;
  }
  bool on_event(Solver& solver, std::int32_t pos,
                std::uint64_t old_mask) override;

  // ---- solver hooks ---------------------------------------------------

  /// Records one learned nogood.  `lits` is ordered by depth, shallowest
  /// first, with the conflict-level literal (the failed assignment, or the
  /// 1-UIP) last; the caller invokes this right after backtracking the
  /// conflict level, so the last literal is free and every other literal
  /// is still entailed.  `raw_len` is the full decision-set length before
  /// any shrinking and `lbd` the block LBD of the kept depths (both feed
  /// the stats and the clause's admission key).  Length-1 nogoods queue a
  /// permanent root strengthening instead of a clause.  The fresh clause
  /// is checked for subsumption against the previous recording: only the
  /// stronger one is kept (stats.nogoods_subsumed counts either outcome).
  void record(const std::vector<Lit>& lits, std::int32_t raw_len,
              std::int32_t lbd, SolveStats& stats);

  /// Restart-time database maintenance; must run with the trail at the
  /// root.  Publishes fresh recordings to / imports from `pool` (may be
  /// null), applies queued root units, drops satisfied clauses, prunes an
  /// oversized database, and rebuilds every watch list.  Returns false
  /// when a root unit or root-falsified clause proves UNSAT.
  [[nodiscard]] bool restart_maintenance(Solver& solver, NogoodPool* pool,
                                         std::int32_t lane,
                                         SolveStats& stats);

  /// Live (non-subsumed) clause count.
  [[nodiscard]] std::int64_t clause_count() const noexcept { return live_; }

  /// Points the store at the active solve's stats so in-search unit
  /// removals and clause conflicts are counted (propagate() has no stats
  /// channel of its own).  The target must outlive the solve.
  void bind_stats(SolveStats* stats) noexcept { stats_ = stats; }

 private:
  struct Clause {
    std::int32_t offset;  ///< span start in lits_
    std::int32_t len;
    std::int32_t lbd;  ///< block LBD: recorded, then replay-hit refreshed
    bool imported;     ///< pool-provided; never re-published
    bool deleted;      ///< subsumed mid-search; dropped at maintenance
  };

  /// One clause watch, precomputed for the advisor's hot loop: `miss` is
  /// the complement of the watched literal's truth mask relative to the
  /// variable's (immutable) domain base, so "the watch is entailed by mask
  /// m" is the single test (m & miss) == 0 and the entailment *transition*
  /// the advisor looks for is two ANDs — no clause-memory chase on the
  /// event path.  Entries go stale when a watch moves (the miss mask then
  /// describes the old literal); stale wakes only enqueue the clause for
  /// examine(), which re-verifies against clause memory, so they cost a
  /// redundant examination, never a missed or wrong propagation.
  struct WatchRef {
    std::uint64_t miss;
    std::int32_t clause;
  };

  /// Conjunct entailed by the current domain: the literal *must* hold.
  [[nodiscard]] static bool lit_entailed(const Solver& solver, Lit lit) {
    return entailed(solver.domain(lit.var), lit);
  }
  /// Conjunct impossible: the clause (its negation) is permanently true.
  [[nodiscard]] static bool lit_impossible(const Solver& solver, Lit lit) {
    return impossible(solver.domain(lit.var), lit);
  }

  void add_clause(const Lit* lits, std::int32_t len, std::int32_t lbd,
                  bool imported);
  /// Appends a WatchRef for `lit` under its variable; the miss mask needs
  /// the variable's domain base, read through solver_ (standalone stores —
  /// tests recording without a solver — fall back to base 0, which is fine
  /// because nothing ever delivers events to them).
  void push_watch(Lit lit, std::int32_t clause_id);
  PropResult examine(Solver& solver, std::int32_t clause_id);
  /// Prunes every value satisfying `lit` (asserts the negation); the
  /// caller wraps the call in the clause's explicit-reason window.
  [[nodiscard]] PropResult assert_negation(Solver& solver, Lit lit);
  /// Replay-hit LBD refresh: recompute the clause's block LBD from the
  /// current entailment depths of its literals; keep the improvement.
  void refresh_lbd(const Solver& solver, Clause& clause);
  /// Applies one permanent root strengthening; false when it proves UNSAT.
  [[nodiscard]] bool apply_root_unit(Solver& solver, Lit unit,
                                     SolveStats& stats);

  std::vector<VarId> scope_;  ///< identity over all variables
  std::vector<Lit> lits_;
  std::vector<Clause> clauses_;
  /// Per-variable clause-watch lists.  Entries are stale-tolerant (a watch
  /// move appends to the new variable's list without erasing the old
  /// entry); restart_maintenance rebuilds them compactly.
  std::vector<std::vector<WatchRef>> watch_;
  /// Per-variable OR of every WatchRef::miss in watch_[var].  An entailment
  /// transition needs removed domain bits inside some watch's miss mask, so
  /// when (removed & agg_miss_[var]) == 0 the advisor skips the per-watch
  /// scan entirely — the common case for general (any-change) stores, where
  /// most events touch values no watch cares about.  The aggregate only
  /// grows between maintenances (watch moves OR into the new variable
  /// without shrinking the old one), so like the lists themselves it
  /// over-approximates and can only cost scans, never miss a wake;
  /// restart_maintenance rebuilds it compactly alongside the lists.
  std::vector<std::uint64_t> agg_miss_;
  std::vector<std::int32_t> pending_;  ///< clause ids with an entailed watch
  std::vector<Lit> root_units_;        ///< length-1 nogoods awaiting a restart
  std::vector<VarId> conflict_vars_;   ///< last failing clause, for dom/wdeg
  std::vector<std::int32_t> depth_buf_;  ///< refresh_lbd scratch
  std::vector<Lit> ordered_;             ///< record() watch-order scratch
  const Solver* solver_ = nullptr;       ///< bound at attach / maintenance
  std::size_t export_cursor_ = 0;      ///< first clause not yet published
  std::size_t pool_cursor_ = 0;        ///< pool read position
  SolveStats* stats_ = nullptr;        ///< bound by the active solve
  std::int32_t last_recorded_ = -1;    ///< subsumption partner (-1: none)
  std::int64_t live_ = 0;              ///< non-deleted clause count
  std::int32_t max_length_;
  std::int32_t max_lbd_;
  std::int32_t db_limit_;
  bool general_;
};

}  // namespace mgrts::csp
