// Deterministic, seed-driven fault injection for the hardened execution
// layer (DESIGN.md §12).
//
// A FaultInjector is armed process-wide with a FaultPlan: a seed, a firing
// rate, a bitmask of sites, and an optional total-fault cap.  Every
// instrumented code path calls fault_point(site); whether a given
// evaluation fires is a pure function of (plan seed, site, per-site
// evaluation counter), so a chaos schedule replays bit-identically across
// runs and platforms — the property the soundness differential relies on.
//
// Sites fall into two groups:
//   * throwing sites (kFlowNetwork, kJobTable, kScheduleTable,
//     kCspVarBudget, kPropagator) raise FaultInjectedError from the guard
//     they shadow, exercising the same degradation path a real allocation
//     failure would take;
//   * deadline sites (kDeadline, kCancel, kStall) are consumed by
//     Deadline::poll() — forced expiry, cooperative cancellation of the
//     plan's target token, or a bounded stall that starves the heartbeat so
//     the portfolio watchdog has something to catch.
//
// Compiled out: building with -DMGRTS_FAULT_INJECTION=0 (CMake option
// MGRTS_FAULT_INJECTION=OFF) turns fault_point into an empty inline
// function, so release hot paths carry no injector load at all.  When
// compiled in but disarmed, the cost is one relaxed atomic load per site.
#pragma once

#include <atomic>
#include <cstdint>

#include "support/deadline.hpp"

#ifndef MGRTS_FAULT_INJECTION
#define MGRTS_FAULT_INJECTION 1
#endif

namespace mgrts::support {

enum class FaultSite : int {
  kFlowNetwork = 0,  ///< flow oracle network-size guard (flow/oracle.cpp)
  kJobTable,         ///< job window materialization (rt/jobs.cpp)
  kScheduleTable,    ///< schedule table allocation (rt/schedule.cpp)
  kCspVarBudget,     ///< CSP variable budget (csp/solver.cpp)
  kDeadline,         ///< forced deadline expiry mid-propagation
  kCancel,           ///< cooperative cancellation mid-search
  kPropagator,       ///< induced failure inside the propagation queue
  kStall,            ///< bounded stall starving the lane heartbeat
};

inline constexpr int kFaultSiteCount = 8;

[[nodiscard]] const char* to_string(FaultSite site);

struct FaultPlan {
  std::uint64_t seed = 0;
  /// Firing probability per evaluation of an armed site, in [0, 1].
  double rate = 0.0;
  /// Bitmask over FaultSite (see mask()); 0 arms nothing.
  unsigned sites = 0;
  /// Total faults across all sites; -1 = unlimited.
  std::int64_t max_faults = -1;
  /// Token cancelled when a kCancel fault fires.
  CancelToken cancel_target;
  /// Upper bound on a kStall sleep, so a stall without a watchdog or a
  /// finite deadline still terminates.
  std::int64_t stall_cap_ms = 10'000;

  [[nodiscard]] static constexpr unsigned mask(FaultSite site) noexcept {
    return 1u << static_cast<unsigned>(static_cast<int>(site));
  }
};

class FaultInjector {
 public:
  /// Arms the process-wide injector with `plan`, resetting all counters.
  /// Arming is test-harness machinery: callers must not arm/disarm while
  /// solver threads are mid-run.
  static void arm(const FaultPlan& plan);

  /// Disarms; fault_point() becomes a single relaxed load again.
  static void disarm();

  [[nodiscard]] static FaultInjector* active() noexcept {
    return active_.load(std::memory_order_acquire);
  }

  /// Deterministically decides whether `site` fires at this evaluation and
  /// advances the per-site evaluation counter.  Honors the plan's site
  /// mask, rate, and max_faults cap.
  [[nodiscard]] bool fires(FaultSite site) noexcept;

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

  /// Faults actually delivered at `site` / across all sites so far.
  [[nodiscard]] std::int64_t fired(FaultSite site) const noexcept;
  [[nodiscard]] std::int64_t fired_total() const noexcept;

 private:
  FaultInjector() = default;

  static std::atomic<FaultInjector*> active_;

  FaultPlan plan_;
  std::atomic<std::uint64_t> evals_[kFaultSiteCount] = {};
  std::atomic<std::int64_t> fired_[kFaultSiteCount] = {};
  std::atomic<std::int64_t> fired_total_{0};
};

/// Out-of-line slow path: consults the armed injector and throws
/// FaultInjectedError when a throwing site fires.  (kDeadline/kCancel/
/// kStall are consumed by Deadline::poll instead and never reach here.)
void fault_point_slow(FaultSite site);

/// Injection hook placed next to the resource guards it shadows.  Disarmed
/// cost: one relaxed atomic load.  Compiled out entirely with
/// MGRTS_FAULT_INJECTION=0.
inline void fault_point([[maybe_unused]] FaultSite site) {
#if MGRTS_FAULT_INJECTION
  if (FaultInjector::active() != nullptr) fault_point_slow(site);
#endif
}

}  // namespace mgrts::support
