#include "support/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

#include "support/assert.hpp"

namespace mgrts::support {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> job) {
  MGRTS_EXPECTS(job != nullptr);
  {
    std::lock_guard lock(mutex_);
    queue_.push(std::move(job));
  }
  cv_work_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

ThreadPool& ThreadPool::shared() {
  // Leaked on purpose: workers must outlive every static-destruction-order
  // caller, and the process exit tears the threads down anyway.
  static ThreadPool* pool = new ThreadPool(0);
  return *pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mutex_);
      cv_work_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop();
      ++in_flight_;
    }
    try {
      job();
    } catch (...) {
      // A raw submit() job has no caller-side rendezvous to deliver the
      // exception to, and letting it escape would terminate the process.
      // Count it and keep the first pointer for the pool owner.
      note_swallowed(1, std::current_exception());
    }
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

std::size_t ThreadPool::swallowed_count() const noexcept {
  std::lock_guard lock(swallowed_mutex_);
  return swallowed_count_;
}

std::exception_ptr ThreadPool::take_swallowed() {
  std::lock_guard lock(swallowed_mutex_);
  swallowed_count_ = 0;
  std::exception_ptr first;
  std::swap(first, swallowed_first_);
  return first;
}

void ThreadPool::note_swallowed(std::size_t count,
                                std::exception_ptr first) noexcept {
  if (count == 0) return;
  std::lock_guard lock(swallowed_mutex_);
  swallowed_count_ += count;
  if (!swallowed_first_) swallowed_first_ = std::move(first);
}

namespace {

/// Shared cursor for one parallel_for_index batch.  Helpers and the caller
/// pull indices until the cursor passes `count`; the caller then waits for
/// the last helper to finish its in-flight item.  If fn throws, the first
/// exception is captured, the remaining indices are claimed-but-skipped so
/// the completion count still reaches `count` (no lane is left writing into
/// caller state after wait() returns), and wait() rethrows.  Exceptions
/// beyond the first are counted (not silently dropped) and routed to the
/// executing pool's swallowed-exception ledger by parallel_for_index.
struct IndexBatch {
  explicit IndexBatch(std::size_t count) : count(count) {}

  const std::size_t count;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::atomic<bool> failed{false};
  std::atomic<std::size_t> suppressed{0};  ///< exceptions beyond the first
  std::exception_ptr error;       ///< first exception; guarded by mutex
  std::exception_ptr suppressed_first;  ///< second exception; guarded by mutex
  std::mutex mutex;
  std::condition_variable cv;

  void run(const std::function<void(std::size_t)>& fn) {
    std::size_t processed = 0;
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      if (!failed.load(std::memory_order_relaxed)) {
        try {
          fn(i);
        } catch (...) {
          {
            std::lock_guard lock(mutex);
            if (!error) {
              error = std::current_exception();
            } else {
              suppressed.fetch_add(1, std::memory_order_relaxed);
              if (!suppressed_first) {
                suppressed_first = std::current_exception();
              }
            }
          }
          failed.store(true, std::memory_order_relaxed);
        }
      }
      ++processed;
    }
    if (processed == 0) return;
    if (done.fetch_add(processed, std::memory_order_acq_rel) + processed ==
        count) {
      std::lock_guard lock(mutex);
      cv.notify_all();
    }
  }

  void wait() {
    std::unique_lock lock(mutex);
    cv.wait(lock, [this] { return done.load(std::memory_order_acquire) ==
                                  count; });
    if (error) std::rethrow_exception(error);
  }

  /// Called after every lane completed (wait() reached done == count or is
  /// about to rethrow): records beyond-first exceptions on `owner`.
  void settle(ThreadPool& owner) {
    const std::size_t n = suppressed.load(std::memory_order_relaxed);
    if (n == 0) return;
    std::exception_ptr second;
    {
      std::lock_guard lock(mutex);
      second = suppressed_first;
    }
    owner.note_swallowed(n, std::move(second));
  }
};

}  // namespace

void parallel_for_index(std::size_t count, std::size_t workers,
                        const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (workers == 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  // Helpers capture `fn` by value: a helper that wakes up after the batch
  // drained claims no index and must not touch caller-lifetime state.
  auto batch = std::make_shared<IndexBatch>(count);
  auto helper = [batch, fn] { batch->run(fn); };

  ThreadPool& pool = ThreadPool::shared();
  const std::size_t shared_lanes = pool.worker_count() + 1;
  if (workers == 0 || workers <= shared_lanes) {
    // The caller is one of the `cap` lanes; the rest are pool helpers.  A
    // helper that never claims an index exits without touching `done`, so
    // completion is counted purely in processed items.  workers == 0 means
    // "all hardware threads": the caller's lane substitutes for one pool
    // worker rather than oversubscribing by one.
    std::size_t cap =
        std::min(workers == 0 ? pool.worker_count() : workers, count);
    if (cap <= 1) {
      for (std::size_t i = 0; i < count; ++i) fn(i);
      return;
    }
    for (std::size_t h = 0; h + 1 < cap; ++h) pool.submit(helper);
    batch->run(fn);
    try {
      batch->wait();
    } catch (...) {
      batch->settle(pool);
      throw;
    }
    batch->settle(pool);
    return;
  }

  // Explicit oversubscription (workers beyond the shared pool): honor the
  // request with a dedicated pool for this batch.  Suppressed exceptions
  // settle on the shared pool's ledger — the dedicated pool dies with the
  // batch, so the process-wide pool acts as the surviving owner.
  {
    ThreadPool dedicated(std::min(workers - 1, count));
    for (std::size_t h = 0; h < dedicated.worker_count(); ++h) {
      dedicated.submit(helper);
    }
    batch->run(fn);
    try {
      batch->wait();
    } catch (...) {
      batch->settle(ThreadPool::shared());
      throw;
    }
    batch->settle(ThreadPool::shared());
  }
}

}  // namespace mgrts::support
