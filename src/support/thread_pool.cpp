#include "support/thread_pool.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace mgrts::support {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> job) {
  MGRTS_EXPECTS(job != nullptr);
  {
    std::lock_guard lock(mutex_);
    queue_.push(std::move(job));
  }
  cv_work_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mutex_);
      cv_work_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop();
      ++in_flight_;
    }
    job();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for_index(std::size_t count, std::size_t workers,
                        const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (workers == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  ThreadPool pool(workers);
  for (std::size_t i = 0; i < count; ++i) {
    pool.submit([i, &fn] { fn(i); });
  }
  pool.wait_idle();
}

}  // namespace mgrts::support
