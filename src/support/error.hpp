// Exception hierarchy for recoverable errors (malformed models, overflow,
// resource limits during model *construction*).  Expected solver outcomes
// (infeasible / timeout) are reported through result enums, not exceptions.
#pragma once

#include <stdexcept>
#include <string>

namespace mgrts {

/// Base class of all mgrts exceptions.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A task set / platform / schedule violates a structural requirement.
class ValidationError : public Error {
 public:
  using Error::Error;
};

/// An arithmetic quantity (hyperperiod, demand, variable count) does not fit
/// in the chosen integer representation.
class OverflowError : public Error {
 public:
  using Error::Error;
};

/// Building a model would exceed a configured memory budget.
class ResourceError : public Error {
 public:
  using Error::Error;
};

/// Malformed textual instance input.
class ParseError : public Error {
 public:
  using Error::Error;
};

/// Raised by support::FaultInjector at an armed injection point.  Derives
/// from ResourceError so every existing guard that degrades a ResourceError
/// into a sound kUnknown handles injected faults the same way; containment
/// layers that care about provenance catch this subtype first.
class FaultInjectedError : public ResourceError {
 public:
  using ResourceError::ResourceError;
};

}  // namespace mgrts
