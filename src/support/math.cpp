#include "support/math.hpp"

#include <limits>

#include "support/assert.hpp"

namespace mgrts::support {

std::optional<std::int64_t> checked_mul(std::int64_t a,
                                        std::int64_t b) noexcept {
  MGRTS_EXPECTS(a >= 0 && b >= 0);
  if (a == 0 || b == 0) return 0;
  if (a > std::numeric_limits<std::int64_t>::max() / b) return std::nullopt;
  return a * b;
}

std::optional<std::int64_t> checked_add(std::int64_t a,
                                        std::int64_t b) noexcept {
  MGRTS_EXPECTS(a >= 0 && b >= 0);
  if (a > std::numeric_limits<std::int64_t>::max() - b) return std::nullopt;
  return a + b;
}

std::optional<std::int64_t> checked_lcm(std::int64_t a,
                                        std::int64_t b) noexcept {
  MGRTS_EXPECTS(a > 0 && b > 0);
  const std::int64_t g = std::gcd(a, b);
  return checked_mul(a / g, b);
}

Rational::Rational(std::int64_t num, std::int64_t den)
    : num_(num), den_(den) {
  MGRTS_EXPECTS(den > 0 && num >= 0);
  const std::int64_t g = std::gcd(num_, den_);
  if (g > 1) {
    num_ /= g;
    den_ /= g;
  }
}

Rational& Rational::operator+=(const Rational& other) {
  // a/b + c/d = (a*d + c*b) / (b*d); reduce through gcd(b, d) first to keep
  // intermediates small.  Task-set utilizations stay far below the 64-bit
  // range because periods are bounded by the checked hyperperiod.
  const std::int64_t g = std::gcd(den_, other.den_);
  const std::int64_t den = den_ / g * other.den_;
  const std::int64_t num = num_ * (other.den_ / g) + other.num_ * (den_ / g);
  *this = Rational(num, den);
  return *this;
}

}  // namespace mgrts::support
