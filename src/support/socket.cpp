#include "support/socket.hpp"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace mgrts::support {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw SocketError(what + ": " + std::strerror(errno));
}

sockaddr_un unix_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw SocketError("socket path empty or too long: '" + path + "'");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

/// poll() for readability, retrying EINTR; true when readable, false on
/// timeout.
bool wait_readable(int fd, std::int64_t timeout_ms) {
  pollfd pfd{fd, POLLIN, 0};
  for (;;) {
    const int rc = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno != EINTR) fail("poll");
  }
}

}  // namespace

bool wait_readable(const Fd& fd, std::int64_t timeout_ms) {
  return wait_readable(fd.get(), timeout_ms);
}

void Fd::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Fd::shutdown() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Fd listen_unix(const std::string& path, int backlog) {
  const sockaddr_un addr = unix_address(path);
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) fail("socket");
  // A previous daemon's socket file would make bind fail with EADDRINUSE;
  // connecting clients see the *new* daemon only after this unlink+bind.
  ::unlink(path.c_str());
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    fail("bind " + path);
  }
  if (::listen(fd.get(), backlog) != 0) fail("listen " + path);
  return fd;
}

Fd connect_unix(const std::string& path) {
  const sockaddr_un addr = unix_address(path);
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) fail("socket");
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    fail("connect " + path);
  }
  return fd;
}

Fd accept_unix(const Fd& listener, std::int64_t timeout_ms) {
  if (!wait_readable(listener.get(), timeout_ms)) return Fd();
  for (;;) {
    const int client = ::accept(listener.get(), nullptr, nullptr);
    if (client >= 0) return Fd(client);
    if (errno == EINTR) continue;
    // The readiness seen by poll can evaporate (peer aborted the handshake);
    // report a timeout-shaped miss instead of failing the accept loop.
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED) {
      return Fd();
    }
    fail("accept");
  }
}

bool read_exact(const Fd& fd, void* data, std::size_t size,
                std::int64_t timeout_ms) {
  auto* bytes = static_cast<char*>(data);
  std::size_t done = 0;
  while (done < size) {
    if (timeout_ms >= 0 && !wait_readable(fd.get(), timeout_ms)) {
      throw SocketError("read timed out after " + std::to_string(timeout_ms) +
                        "ms");
    }
    const ssize_t rc = ::recv(fd.get(), bytes + done, size - done, 0);
    if (rc > 0) {
      done += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc == 0) {
      if (done == 0) return false;  // clean EOF between messages
      throw SocketError("peer closed mid-message (" + std::to_string(done) +
                        "/" + std::to_string(size) + " bytes)");
    }
    if (errno != EINTR) fail("recv");
  }
  return true;
}

void write_all(const Fd& fd, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const char*>(data);
  std::size_t done = 0;
  while (done < size) {
    const ssize_t rc =
        ::send(fd.get(), bytes + done, size - done, MSG_NOSIGNAL);
    if (rc > 0) {
      done += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    fail("send");
  }
}

}  // namespace mgrts::support
