// Lightweight contract checks in the spirit of the C++ Core Guidelines
// (I.6 Expects / I.8 Ensures).  Violations indicate programmer error, so
// they abort with a message rather than throwing.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace mgrts::support {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "mgrts: %s violated: (%s) at %s:%d\n", kind, expr, file,
               line);
  std::abort();
}

}  // namespace mgrts::support

#define MGRTS_EXPECTS(cond)                                               \
  ((cond) ? static_cast<void>(0)                                          \
          : ::mgrts::support::contract_failure("precondition", #cond,     \
                                               __FILE__, __LINE__))

#define MGRTS_ENSURES(cond)                                               \
  ((cond) ? static_cast<void>(0)                                          \
          : ::mgrts::support::contract_failure("postcondition", #cond,    \
                                               __FILE__, __LINE__))

#define MGRTS_ASSERT(cond)                                                \
  ((cond) ? static_cast<void>(0)                                          \
          : ::mgrts::support::contract_failure("invariant", #cond,        \
                                               __FILE__, __LINE__))
