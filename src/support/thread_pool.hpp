// Fixed-size worker pool for the experiment harness.
//
// The paper runs each solver single-threaded; parallelism in this repo is
// *across independent instances* only, so the pool needs nothing fancier
// than a mutex-protected queue.  Results are written to caller-owned slots
// indexed by job id, so no synchronization is needed on the result side
// (each slot has exactly one writer) and runs stay deterministic.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mgrts::support {

class ThreadPool {
 public:
  /// Spawns `workers` threads (0 = hardware concurrency, at least 1).
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job; `wait_idle` blocks until every enqueued job finished.
  void submit(std::function<void()> job);
  void wait_idle();

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return threads_.size();
  }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_work_;
  std::condition_variable cv_idle_;
  std::queue<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

/// Runs fn(i) for i in [0, count) on a private pool and waits; the overload
/// with `workers == 1` degrades to a plain sequential loop so tests can force
/// deterministic single-threaded execution.
void parallel_for_index(std::size_t count, std::size_t workers,
                        const std::function<void(std::size_t)>& fn);

}  // namespace mgrts::support
