// Fixed-size worker pool for batch solving and the experiment harness.
//
// The paper runs each solver single-threaded; parallelism in this repo is
// *across independent instances* only, so the pool needs nothing fancier
// than a mutex-protected queue.  Results are written to caller-owned slots
// indexed by job id, so no synchronization is needed on the result side
// (each slot has exactly one writer) and runs stay deterministic.
//
// Two usage layers:
//   * ThreadPool — raw submit/wait_idle, for callers that manage their own
//     job lifecycle;
//   * parallel_for_index — index fan-out over the process-wide shared pool.
//     The calling thread participates in the index loop (it does not just
//     block), so a batch makes progress even when every pool worker is
//     busy, and repeated batches reuse the same threads instead of paying
//     pool construction per call.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mgrts::support {

class ThreadPool {
 public:
  /// Spawns `workers` threads (0 = hardware concurrency, at least 1).
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job; `wait_idle` blocks until every enqueued job finished.
  void submit(std::function<void()> job);
  void wait_idle();

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return threads_.size();
  }

  /// The process-wide pool (hardware-concurrency workers), constructed on
  /// first use and reused by every parallel_for_index call so batch
  /// pipelines do not pay thread spawn/join per batch.
  [[nodiscard]] static ThreadPool& shared();

  /// Exceptions the pool had to swallow instead of delivering to a caller:
  /// a raw submit() job that threw (previously std::terminate via the
  /// noexcept worker loop), or parallel_for_index overflow exceptions
  /// beyond the first (the first is rethrown from the caller's wait).  The
  /// count and the first captured pointer are retained for the pool owner.
  [[nodiscard]] std::size_t swallowed_count() const noexcept;

  /// Returns the first swallowed exception (may be null) and resets the
  /// ledger, so the owner can rethrow or log exactly once.
  [[nodiscard]] std::exception_ptr take_swallowed();

  /// Records `count` swallowed exceptions, keeping `first` if the ledger
  /// has no pointer yet.  Used by the pool itself and by parallel_for_index
  /// to route suppressed batch exceptions to the pool owner.
  void note_swallowed(std::size_t count, std::exception_ptr first) noexcept;

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_work_;
  std::condition_variable cv_idle_;
  std::queue<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;

  mutable std::mutex swallowed_mutex_;
  std::size_t swallowed_count_ = 0;
  std::exception_ptr swallowed_first_;
};

/// Runs fn(i) for i in [0, count) and waits for completion.  `workers` caps
/// the concurrency: 1 degrades to a plain sequential loop (deterministic
/// single-threaded execution for tests), 0 means "all hardware threads".
/// Indices are pulled from a shared atomic cursor by up to `workers - 1`
/// helpers on the shared pool plus the calling thread itself; every slot is
/// processed exactly once regardless of scheduling, so writes to
/// caller-owned, index-addressed result slots stay deterministic.
void parallel_for_index(std::size_t count, std::size_t workers,
                        const std::function<void(std::size_t)>& fn);

}  // namespace mgrts::support
