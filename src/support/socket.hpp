// Minimal local-socket helpers for the resident solver daemon
// (src/serve/): RAII file descriptors, AF_UNIX listen/connect, and
// EINTR-safe exact reads/writes.  Nothing here knows about the wire
// protocol — framing lives in serve/wire.hpp — and nothing blocks forever:
// accept and reads take poll timeouts so a stopping server (or a wedged
// peer) never parks a thread.
//
// Errors are reported as SocketError (an mgrts::Error), never errno
// sentinels, so the serving layer's containment funnels treat transport
// failures like any other recoverable error.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "support/error.hpp"

namespace mgrts::support {

/// Transport-level failure (connect refused, peer reset, poll timeout).
class SocketError : public Error {
 public:
  using Error::Error;
};

/// Owning file descriptor.  Move-only; close() is idempotent.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) noexcept : fd_(fd) {}
  ~Fd() { close(); }

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(other.release()) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.release();
    }
    return *this;
  }

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int get() const noexcept { return fd_; }

  /// Releases ownership without closing.
  int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

  void close() noexcept;

  /// shutdown(2) both directions — unblocks a peer mid-read without
  /// releasing the descriptor (close() still runs at destruction).
  void shutdown() noexcept;

 private:
  int fd_ = -1;
};

/// Binds and listens on an AF_UNIX stream socket at `path`, replacing any
/// stale socket file left by a previous process.  Throws SocketError.
[[nodiscard]] Fd listen_unix(const std::string& path, int backlog = 64);

/// Connects to an AF_UNIX stream socket.  Throws SocketError (e.g. when no
/// daemon is listening).
[[nodiscard]] Fd connect_unix(const std::string& path);

/// Waits up to `timeout_ms` for a pending connection, then accepts it.
/// Returns an invalid Fd on timeout (the caller's stop-flag poll point);
/// throws SocketError on a genuine accept failure.
[[nodiscard]] Fd accept_unix(const Fd& listener, std::int64_t timeout_ms);

/// Waits up to `timeout_ms` for `fd` to become readable (-1 = forever).
/// True when readable (or at EOF — the next read reports it), false on
/// timeout.  Connection handlers idle here so a quiet peer is a poll point
/// for the server's stop flag, not a SocketError.
[[nodiscard]] bool wait_readable(const Fd& fd, std::int64_t timeout_ms);

/// Reads exactly `size` bytes.  Returns false on a clean EOF *before the
/// first byte* (peer closed between messages); throws SocketError on a
/// short read mid-buffer, a poll timeout (`timeout_ms` per chunk, -1 =
/// no timeout), or a transport error.
[[nodiscard]] bool read_exact(const Fd& fd, void* data, std::size_t size,
                              std::int64_t timeout_ms = -1);

/// Writes all of `size` bytes or throws SocketError.  SIGPIPE-safe
/// (MSG_NOSIGNAL): a vanished peer is an exception, not a process kill.
void write_all(const Fd& fd, const void* data, std::size_t size);

}  // namespace mgrts::support
