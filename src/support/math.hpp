// Overflow-checked integer arithmetic used throughout the task model.
// Hyperperiods are lcm's of user-supplied periods and can overflow 64-bit
// integers for adversarial inputs; every path that computes them must go
// through the checked helpers here (Core Guidelines ES.103: don't overflow).
#pragma once

#include <cstdint>
#include <numeric>
#include <optional>

#include "support/error.hpp"

namespace mgrts::support {

/// Multiplies two non-negative 64-bit integers, returning nullopt on
/// overflow instead of wrapping.
[[nodiscard]] std::optional<std::int64_t> checked_mul(std::int64_t a,
                                                      std::int64_t b) noexcept;

/// Adds two non-negative 64-bit integers, returning nullopt on overflow.
[[nodiscard]] std::optional<std::int64_t> checked_add(std::int64_t a,
                                                      std::int64_t b) noexcept;

/// lcm(a, b) for positive arguments; nullopt on overflow.
[[nodiscard]] std::optional<std::int64_t> checked_lcm(std::int64_t a,
                                                      std::int64_t b) noexcept;

/// ceil(a / b) for a >= 0, b > 0.
[[nodiscard]] constexpr std::int64_t ceil_div(std::int64_t a,
                                              std::int64_t b) noexcept {
  return (a + b - 1) / b;
}

/// Floored modulus that is always in [0, m) even for negative a.
[[nodiscard]] constexpr std::int64_t floor_mod(std::int64_t a,
                                               std::int64_t m) noexcept {
  const std::int64_t r = a % m;
  return r < 0 ? r + m : r;
}

/// Exact rational value p/q kept in lowest terms; used for utilizations so
/// that the r <= 1 necessary-condition filter is exact (no floating error
/// when U == m, which the paper's generator produces frequently).
class Rational {
 public:
  Rational() = default;
  Rational(std::int64_t num, std::int64_t den);

  [[nodiscard]] std::int64_t num() const noexcept { return num_; }
  [[nodiscard]] std::int64_t den() const noexcept { return den_; }

  Rational& operator+=(const Rational& other);
  [[nodiscard]] friend Rational operator+(Rational a, const Rational& b) {
    a += b;
    return a;
  }

  [[nodiscard]] double to_double() const noexcept {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }

  /// Compares against the integer `v` exactly.
  [[nodiscard]] bool operator>(std::int64_t v) const noexcept {
    return num_ > v * den_;
  }
  [[nodiscard]] bool operator<=(std::int64_t v) const noexcept {
    return !(*this > v);
  }
  [[nodiscard]] friend bool operator==(const Rational& a,
                                       const Rational& b) noexcept {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }

 private:
  std::int64_t num_ = 0;
  std::int64_t den_ = 1;
};

}  // namespace mgrts::support
