// Deterministic, seedable random number generation.
//
// The paper's experiments hinge on reproducible random instance streams
// (500 instances, §VII-A) and on a *seeded* randomized search emulating
// Choco's behaviour (§VII-B).  std::mt19937 is avoided because its
// distributions are not specified portably; xoshiro256** plus explicit
// rejection sampling gives bit-identical streams on every platform.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "support/assert.hpp"

namespace mgrts::support {

/// SplitMix64; used to expand a single seed into xoshiro state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via SplitMix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  /// Raw 64 random bits.
  std::uint64_t next_u64() noexcept;

  /// Uniform integer in the inclusive range [lo, hi] (rejection sampling,
  /// no modulo bias).
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// Bernoulli draw with probability p of true.
  bool chance(double p) noexcept { return uniform01() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child stream; used to give every instance /
  /// every restart its own reproducible stream.
  [[nodiscard]] Rng fork(std::uint64_t salt) noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace mgrts::support
