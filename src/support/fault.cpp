#include "support/fault.hpp"

#include <string>

#include "support/error.hpp"

namespace mgrts::support {

const char* to_string(FaultSite site) {
  switch (site) {
    case FaultSite::kFlowNetwork: return "flow-network";
    case FaultSite::kJobTable: return "job-table";
    case FaultSite::kScheduleTable: return "schedule-table";
    case FaultSite::kCspVarBudget: return "csp-var-budget";
    case FaultSite::kDeadline: return "deadline";
    case FaultSite::kCancel: return "cancel";
    case FaultSite::kPropagator: return "propagator";
    case FaultSite::kStall: return "stall";
  }
  return "?";
}

std::atomic<FaultInjector*> FaultInjector::active_{nullptr};

namespace {

/// Storage for the armed injector.  Never freed: a racing reader holding
/// the pointer across disarm() must not observe a destroyed object.  The
/// single instance is re-initialized by each arm(); tests arm/disarm
/// sequentially around solver runs, never concurrently with them.
FaultInjector* injector_storage() {
  alignas(FaultInjector) static unsigned char storage[sizeof(FaultInjector)];
  return reinterpret_cast<FaultInjector*>(storage);
}

std::uint64_t splitmix64(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void FaultInjector::arm(const FaultPlan& plan) {
  disarm();
  FaultInjector* inj = new (injector_storage()) FaultInjector();
  inj->plan_ = plan;
  active_.store(inj, std::memory_order_release);
}

void FaultInjector::disarm() {
  FaultInjector* inj = active_.exchange(nullptr, std::memory_order_acq_rel);
  if (inj != nullptr) inj->~FaultInjector();
}

bool FaultInjector::fires(FaultSite site) noexcept {
  if ((plan_.sites & FaultPlan::mask(site)) == 0) return false;
  const auto idx = static_cast<int>(site);
  const std::uint64_t eval =
      evals_[idx].fetch_add(1, std::memory_order_relaxed);
  if (plan_.rate <= 0.0) return false;
  if (plan_.rate < 1.0) {
    // Deterministic Bernoulli draw keyed on (seed, site, evaluation): the
    // top 53 bits of a splitmix64 hash as a uniform double in [0, 1).
    const std::uint64_t h = splitmix64(
        plan_.seed ^ (static_cast<std::uint64_t>(idx + 1) << 56) ^ eval);
    const double u =
        static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
    if (u >= plan_.rate) return false;
  }
  if (plan_.max_faults >= 0) {
    // Reserve a slot under the global cap; give it back if overshot.
    const std::int64_t prior =
        fired_total_.fetch_add(1, std::memory_order_relaxed);
    if (prior >= plan_.max_faults) {
      fired_total_.fetch_sub(1, std::memory_order_relaxed);
      return false;
    }
  } else {
    fired_total_.fetch_add(1, std::memory_order_relaxed);
  }
  fired_[idx].fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::int64_t FaultInjector::fired(FaultSite site) const noexcept {
  return fired_[static_cast<int>(site)].load(std::memory_order_relaxed);
}

std::int64_t FaultInjector::fired_total() const noexcept {
  return fired_total_.load(std::memory_order_relaxed);
}

void fault_point_slow(FaultSite site) {
  FaultInjector* inj = FaultInjector::active();
  if (inj == nullptr || !inj->fires(site)) return;
  throw FaultInjectedError(std::string("injected fault at ") +
                           to_string(site));
}

}  // namespace mgrts::support
