#include "support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "support/assert.hpp"

namespace mgrts::support {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  MGRTS_EXPECTS(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> row) {
  MGRTS_EXPECTS(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::num(std::int64_t v) { return std::to_string(v); }

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TextTable::percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  if (!title_.empty()) os << title_ << '\n';
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << "  ";
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < width[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string TextTable::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.to_string();
}

}  // namespace mgrts::support
