#include "support/rng.hpp"

#include <limits>

namespace mgrts::support {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& w : s_) w = sm.next();
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform(std::int64_t lo, std::int64_t hi) noexcept {
  MGRTS_EXPECTS(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  // Rejection sampling: draw until the value falls below the largest
  // multiple of `span`, eliminating modulo bias.
  const std::uint64_t limit =
      std::numeric_limits<std::uint64_t>::max() -
      (std::numeric_limits<std::uint64_t>::max() % span + 1) % span;
  std::uint64_t x = next_u64();
  while (x > limit) x = next_u64();
  return lo + static_cast<std::int64_t>(x % span);
}

double Rng::uniform01() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

Rng Rng::fork(std::uint64_t salt) noexcept {
  SplitMix64 sm(next_u64() ^ (salt * 0x9e3779b97f4a7c15ULL));
  Rng child(sm.next());
  return child;
}

}  // namespace mgrts::support
