#include "support/deadline.hpp"

// Header-only today; the translation unit anchors the library and keeps the
// build layout uniform (every module ships a .cpp per public header group).
