#include "support/deadline.hpp"

#include <chrono>
#include <thread>

#include "support/fault.hpp"

namespace mgrts::support {

bool Deadline::poll() const {
  if (beat_) beat_->fetch_add(1, std::memory_order_relaxed);
#if MGRTS_FAULT_INJECTION
  if (FaultInjector* inj = FaultInjector::active()) {
    if (inj->fires(FaultSite::kCancel)) inj->plan().cancel_target.cancel();
    if (inj->fires(FaultSite::kStall)) {
      // Starve the heartbeat: spin-sleep without ticking beat_ until the
      // deadline expires (watchdog cancellation counts) or the cap lapses.
      const auto cap = std::chrono::milliseconds(inj->plan().stall_cap_ms);
      const auto start = Clock::now();
      while (!expired() && Clock::now() - start < cap) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    if (inj->fires(FaultSite::kDeadline)) return true;
  }
#endif
  return expired();
}

}  // namespace mgrts::support
