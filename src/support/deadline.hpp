// Wall-clock budgets for solver runs.
//
// The paper imposes a 30 s resolution-time limit per run (§VII-C).  Solvers
// poll a Deadline at a coarse granularity (every few thousand search nodes)
// so the steady_clock read does not dominate the node rate.
#pragma once

#include <chrono>
#include <cstdint>

namespace mgrts::support {

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// A deadline that never expires.
  Deadline() = default;

  /// A deadline `budget` from now; a non-positive budget expires immediately.
  static Deadline after(std::chrono::nanoseconds budget) {
    Deadline d;
    d.unlimited_ = false;
    d.end_ = Clock::now() + budget;
    return d;
  }

  static Deadline after_ms(std::int64_t ms) {
    return after(std::chrono::milliseconds(ms));
  }

  [[nodiscard]] bool unlimited() const noexcept { return unlimited_; }

  [[nodiscard]] bool expired() const noexcept {
    return !unlimited_ && Clock::now() >= end_;
  }

 private:
  bool unlimited_ = true;
  Clock::time_point end_{};
};

/// Monotonic stopwatch used for reported resolution times.
class Stopwatch {
 public:
  Stopwatch() : start_(Deadline::Clock::now()) {}

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Deadline::Clock::now() - start_)
        .count();
  }

  [[nodiscard]] std::int64_t micros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Deadline::Clock::now() - start_)
        .count();
  }

 private:
  Deadline::Clock::time_point start_;
};

}  // namespace mgrts::support
