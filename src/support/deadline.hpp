// Wall-clock budgets for solver runs.
//
// The paper imposes a 30 s resolution-time limit per run (§VII-C).  Solvers
// poll a Deadline at a coarse granularity (every few thousand search nodes)
// so the steady_clock read does not dominate the node rate.
//
// A Deadline can additionally carry a CancelToken: portfolio racing
// (core::solve_portfolio) hands every lane the same token and the first lane
// to decide cancels the rest.  Cancellation is cooperative — a cancelled run
// reports kTimeout at its next deadline poll, exactly like a wall-clock
// expiry — so no solver needs cancellation-specific control flow.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

namespace mgrts::support {

/// Shared cooperative cancellation flag.  Default-constructed tokens are
/// empty (no allocation, never cancelled); make() creates a live flag.
/// Copies share the flag; cancel() is sticky and thread-safe.
///
/// linked(parent) creates a token that also reports cancelled once the
/// parent does, while its own cancel() leaves the parent untouched — a
/// portfolio race hands its lanes a linked token, so the caller's token
/// still aborts the whole race but the winner's cancel cannot leak out.
/// Links chain: a token linked to a linked token observes cancellation
/// anywhere up the ancestry (caller -> race -> lane), which the per-lane
/// watchdog tokens rely on.
class CancelToken {
 public:
  CancelToken() = default;

  [[nodiscard]] static CancelToken make() {
    CancelToken token;
    token.flag_ = std::make_shared<std::atomic<bool>>(false);
    return token;
  }

  [[nodiscard]] static CancelToken linked(const CancelToken& parent) {
    CancelToken token = make();
    if (parent.flag_ != nullptr || parent.parent_ != nullptr) {
      token.parent_ = std::make_shared<const CancelToken>(parent);
    }
    return token;
  }

  /// True when the token carries a flag (make()-created or a copy thereof).
  [[nodiscard]] bool engaged() const noexcept { return flag_ != nullptr; }

  /// Cancels this token (not a linked parent).
  void cancel() const noexcept {
    if (flag_) flag_->store(true, std::memory_order_relaxed);
  }

  [[nodiscard]] bool cancelled() const noexcept {
    return (flag_ && flag_->load(std::memory_order_relaxed)) ||
           (parent_ && parent_->cancelled());
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
  std::shared_ptr<const CancelToken> parent_;
};

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// A deadline that never expires.
  Deadline() = default;

  /// A deadline `budget` from now; a non-positive budget expires immediately.
  static Deadline after(std::chrono::nanoseconds budget) {
    Deadline d;
    d.unlimited_ = false;
    d.end_ = Clock::now() + budget;
    return d;
  }

  static Deadline after_ms(std::int64_t ms) {
    return after(std::chrono::milliseconds(ms));
  }

  /// Attaches a cooperative cancel flag; expired() then also reports true
  /// once the token is cancelled.
  void set_cancel(CancelToken token) noexcept { cancel_ = std::move(token); }

  /// Attaches a progress heartbeat: every poll() bumps the counter, so an
  /// external watchdog can distinguish "still searching" from "stuck".
  void set_heartbeat(
      std::shared_ptr<std::atomic<std::uint64_t>> beat) noexcept {
    beat_ = std::move(beat);
  }

  [[nodiscard]] bool unlimited() const noexcept {
    return unlimited_ && !cancel_.engaged();
  }

  [[nodiscard]] bool expired() const noexcept {
    if (cancel_.cancelled()) return true;
    return !unlimited_ && Clock::now() >= end_;
  }

  /// True when the attached cancel token (if any) was cancelled — lets
  /// containment layers tell cancellation apart from wall expiry when
  /// attributing a kTimeout verdict to a FailureCause.
  [[nodiscard]] bool cancel_requested() const noexcept {
    return cancel_.cancelled();
  }

  /// Cooperative poll used at solver node-count checkpoints: ticks the
  /// heartbeat, services armed deadline-class fault injection (forced
  /// expiry, cancellation of the plan's target, bounded stall), then
  /// returns expired().  Solvers call this instead of expired() at their
  /// periodic checkpoints; expired() stays the pure side-effect-free query.
  [[nodiscard]] bool poll() const;

  /// Remaining wall budget in milliseconds: -1 when unlimited, floored at
  /// 0 once past the end.  Lets nested runs (portfolio lanes behind a
  /// presolve prefilter) re-derive a budget that expires with the caller's
  /// instead of restarting the clock.  Cancellation does not shorten the
  /// estimate — cancel tokens are forwarded separately.
  [[nodiscard]] std::int64_t remaining_ms() const noexcept {
    if (unlimited_) return -1;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          end_ - Clock::now())
                          .count();
    return left > 0 ? left : 0;
  }

 private:
  bool unlimited_ = true;
  Clock::time_point end_{};
  CancelToken cancel_;
  std::shared_ptr<std::atomic<std::uint64_t>> beat_;
};

/// Monotonic stopwatch used for reported resolution times.
class Stopwatch {
 public:
  Stopwatch() : start_(Deadline::Clock::now()) {}

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Deadline::Clock::now() - start_)
        .count();
  }

  [[nodiscard]] std::int64_t micros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Deadline::Clock::now() - start_)
        .count();
  }

 private:
  Deadline::Clock::time_point start_;
};

}  // namespace mgrts::support
