// Console table / CSV rendering for the experiment harness.  The bench
// binaries print tables in the same row/column layout as the paper's
// Tables I-IV, so output formatting is part of the reproduction surface.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace mgrts::support {

/// Column-aligned text table with a header row and an optional title.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; it must have exactly as many cells as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats arithmetic cells via std::to_string-like rules.
  static std::string num(std::int64_t v);
  static std::string num(double v, int precision = 2);
  /// "42%" style cell.
  static std::string percent(double fraction, int precision = 0);

  void set_title(std::string title) { title_ = std::move(title); }

  /// Renders with single-space padding and a rule under the header.
  [[nodiscard]] std::string to_string() const;

  /// Renders as RFC-4180-ish CSV (quotes cells containing commas/quotes).
  [[nodiscard]] std::string to_csv() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t cols() const noexcept { return header_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const TextTable& t);

}  // namespace mgrts::support
