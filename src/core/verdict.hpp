// Canonical solve verdict and the one place where every frontend's private
// status enum maps into it.
//
// The repo grew five deciders — analytical bound tests, the max-flow
// oracle, min-conflicts local search, the generic CSP engine and the
// dedicated CSP2 solver — each with its own verdict enum.  Call sites used
// to re-map them ad hoc; the pipeline (core/pipeline.hpp) instead speaks
// exactly one vocabulary, defined here, and `canonical_verdict` is the only
// sanctioned translation.  Everything downstream (harness records, tables,
// benches, provenance strings) consumes core::Verdict.
//
// kUnknown is the verdict of an *incomplete* answer that exhausted its own
// notion of budget without proving anything: an analysis filter that did
// not fire, or local search giving up (§VIII's asymmetry).  It counts as an
// overrun for Table-I bookkeeping, like kTimeout/kNodeLimit.
#pragma once

namespace mgrts::csp {
enum class SolveStatus;
}
namespace mgrts::csp2 {
enum class Status;
}
namespace mgrts::flow {
enum class OracleVerdict;
}
namespace mgrts::analysis {
enum class TestVerdict;
}
namespace mgrts::ls {
enum class Status;
}

namespace mgrts::core {

enum class Verdict {
  kFeasible,
  kInfeasible,
  kTimeout,      ///< the paper's "overrun"
  kNodeLimit,
  kMemoryLimit,  ///< model exceeded the variable/memory budget (Table IV "-")
  kUnknown,      ///< incomplete method gave up without a proof either way
};

[[nodiscard]] const char* to_string(Verdict verdict);

/// Why a run failed to decide (DESIGN.md §12).  Carried next to
/// `decided_by` on StageResult / SolveReport / exp::RunRecord so every
/// non-decisive verdict explains itself.  kNone for decisive answers and
/// for plain incomplete give-ups (an analysis filter that did not fire,
/// min-conflicts running dry) — those are ordinary outcomes, not failures.
enum class FailureCause {
  kNone,
  kDeadline,       ///< wall-clock budget expired
  kCancelled,      ///< cooperative cancel (caller, race winner, or watchdog)
  kMemory,         ///< ResourceError / std::bad_alloc during model build
  kNodeBudget,     ///< node budget exhausted
  kInternalError,  ///< unexpected exception, contained at the boundary
  kFaultInjected,  ///< support::FaultInjector fired (chaos testing)
};

[[nodiscard]] const char* to_string(FailureCause cause);

/// A verdict settles the instance when it is feasible, or infeasible with an
/// exhaustive proof behind it (`complete` — see SolveReport::complete).
[[nodiscard]] constexpr bool decisive(Verdict verdict,
                                      bool complete) noexcept {
  return verdict == Verdict::kFeasible ||
         (verdict == Verdict::kInfeasible && complete);
}

// The canonical mappings.  Every switch over a frontend enum lives behind
// one of these; call sites must not re-derive them.
[[nodiscard]] Verdict canonical_verdict(csp::SolveStatus status);
[[nodiscard]] Verdict canonical_verdict(csp2::Status status);
[[nodiscard]] Verdict canonical_verdict(flow::OracleVerdict verdict);
[[nodiscard]] Verdict canonical_verdict(analysis::TestVerdict verdict);
[[nodiscard]] Verdict canonical_verdict(ls::Status status);

}  // namespace mgrts::core
