#include "core/canonical.hpp"

#include <algorithm>
#include <functional>
#include <numeric>
#include <tuple>
#include <vector>

namespace mgrts::core {

namespace {

struct CanonicalTask {
  rt::TaskParams params;
  std::vector<rt::Rate> row;  // heterogeneous rate row; empty otherwise

  [[nodiscard]] friend bool operator<(const CanonicalTask& a,
                                      const CanonicalTask& b) {
    const auto key = [](const CanonicalTask& t) {
      return std::tuple(t.params.offset, t.params.wcet, t.params.deadline,
                        t.params.period);
    };
    if (key(a) != key(b)) return key(a) < key(b);
    return a.row < b.row;
  }
};

void append_params(std::string& out, const rt::TaskParams& p) {
  out += std::to_string(p.offset);
  out += ',';
  out += std::to_string(p.wcet);
  out += ',';
  out += std::to_string(p.deadline);
  out += ',';
  out += std::to_string(p.period);
}

}  // namespace

std::string canonical_key(const rt::TaskSet& ts, const rt::Platform& platform,
                          const CanonicalOptions& options) {
  const std::int32_t n = ts.size();
  const std::int32_t m = platform.processors();

  std::vector<CanonicalTask> tasks;
  tasks.reserve(static_cast<std::size_t>(n));
  const bool heterogeneous = !platform.is_identical() && platform.rate_rows() > 0;
  for (rt::TaskId i = 0; i < n; ++i) {
    CanonicalTask t;
    t.params = ts[i].params;
    if (heterogeneous) {
      t.row.reserve(static_cast<std::size_t>(m));
      for (rt::ProcId j = 0; j < m; ++j) t.row.push_back(platform.rate(i, j));
    }
    tasks.push_back(std::move(t));
  }

  // gcd scaling: identical platforms only (the flow-condition argument in
  // the header does not cover rate matrices).  gcd(0, x) == x, so zero
  // offsets do not pin g at 1.
  if (options.scaling && platform.is_identical()) {
    rt::Time g = 0;
    for (const CanonicalTask& t : tasks) {
      g = std::gcd(g, t.params.offset);
      g = std::gcd(g, t.params.wcet);
      g = std::gcd(g, t.params.deadline);
      g = std::gcd(g, t.params.period);
    }
    if (g > 1) {
      for (CanonicalTask& t : tasks) {
        t.params.offset /= g;
        t.params.wcet /= g;
        t.params.deadline /= g;
        t.params.period /= g;
      }
    }
  }

  if (options.permutation) std::sort(tasks.begin(), tasks.end());

  std::string key = "v1|";
  key += ts.is_constrained() ? "c|" : "a|";

  if (platform.is_identical()) {
    key += "id:" + std::to_string(m);
  } else if (platform.rate_rows() == 0) {
    // Uniform platform: a speed per processor, task-independent, so the
    // speed *multiset* is the canonical form.
    std::vector<rt::Rate> speeds;
    speeds.reserve(static_cast<std::size_t>(m));
    for (rt::ProcId j = 0; j < m; ++j) speeds.push_back(platform.rate(0, j));
    if (options.permutation) {
      std::sort(speeds.begin(), speeds.end(), std::greater<>());
    }
    key += "un:";
    for (std::size_t j = 0; j < speeds.size(); ++j) {
      if (j != 0) key += ',';
      key += std::to_string(speeds[j]);
    }
  } else {
    // Heterogeneous: rate rows are serialized inline with their tasks
    // below; here only the column count.
    key += "he:" + std::to_string(m);
  }

  key += '|';
  for (std::size_t k = 0; k < tasks.size(); ++k) {
    if (k != 0) key += ';';
    append_params(key, tasks[k].params);
    for (const rt::Rate rate : tasks[k].row) {
      key += ':';
      key += std::to_string(rate);
    }
  }
  return key;
}

}  // namespace mgrts::core
