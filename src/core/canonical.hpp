// Canonicalization of (task set, platform) pairs into verdict-cache keys.
//
// Two instances with the same canonical key are *schedulability-equivalent*
// — same feasibility answer — so the serving layer's verdict cache
// (serve/cache.hpp) may answer one from a decisive solve of the other.
// Soundness is the whole game here; only transformations with a proof
// behind them participate:
//
//   * Task permutation (always).  Schedulability is a property of the task
//     *multiset*: reordering tasks permutes CSP variables and nothing else.
//     On heterogeneous platforms each task's rate row travels with it, so
//     the pairing (task, row) is preserved.
//   * Uniform-speed permutation (uniform platforms).  Processors are
//     interchangeable up to their speed multiset; speeds are sorted.
//   * Utilization scaling (identical platforms only).  Dividing every
//     O/C/D/T by their common gcd g yields an equivalent system: identical
//     -platform feasibility is exactly the max-flow condition (this repo's
//     polynomial oracle), whose release/deadline boundaries and capacities
//     all scale linearly with g — the flow saturates for S iff it
//     saturates for S/g.  On non-identical platforms no such exactness
//     theorem is available, so scaling is NOT applied there.
//
// The key is a readable text string (versioned, '|'-separated), compared
// byte-for-byte — no hash truncation, so equal keys mean equal canonical
// forms, never a collision gamble.
#pragma once

#include <string>

#include "rt/platform.hpp"
#include "rt/task_set.hpp"

namespace mgrts::core {

struct CanonicalOptions {
  /// Sort tasks (with their rate rows) into a canonical order.
  bool permutation = true;
  /// Divide out the common gcd of all task parameters (identical platforms
  /// only; see the soundness note above).
  bool scaling = true;
};

/// The canonical cache key for (ts, platform).  Deterministic, total (every
/// valid instance has one), and stable across processes/machines.
[[nodiscard]] std::string canonical_key(const rt::TaskSet& ts,
                                        const rt::Platform& platform,
                                        const CanonicalOptions& options = {});

}  // namespace mgrts::core
