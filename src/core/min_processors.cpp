#include "core/min_processors.hpp"

#include "rt/platform.hpp"
#include "support/assert.hpp"

namespace mgrts::core {

MinProcessorsResult min_processors(const rt::TaskSet& ts,
                                   const SolveConfig& config,
                                   std::int32_t max_m) {
  MinProcessorsResult result;
  const rt::TaskSet constrained =
      ts.is_constrained() ? ts : ts.to_constrained();
  result.lower_bound = constrained.min_processors_bound();
  if (max_m <= 0) max_m = constrained.size();

  for (std::int32_t m = result.lower_bound; m <= max_m; ++m) {
    SolveReport report =
        solve_instance(constrained, rt::Platform::identical(m), config);
    result.trail.push_back(report.verdict);
    if (report.verdict == Verdict::kFeasible) {
      result.found = true;
      result.processors = m;
      result.report = std::move(report);
      return result;
    }
    if (report.verdict != Verdict::kInfeasible || !report.complete) {
      // Undecided (timeout / limits / incomplete search): a larger m might
      // still work, but we can no longer certify minimality; stop here.
      return result;
    }
  }
  return result;
}

}  // namespace mgrts::core
