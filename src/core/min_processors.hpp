// Incremental minimum-processor search (§VII-E closes with: "It would be
// interesting to use an algorithm which incrementally searches for the
// smallest number of processors m required to schedule a given set of
// tasks." — this module is that algorithm).
//
// Starts at the exact capacity lower bound m = max(1, ceil(U)) and
// increments m until the configured solver proves feasibility.  Identical
// platforms only (heterogeneous "add a processor" is ill-defined without a
// rate column for it).  An upper bound of m = n always suffices on
// identical platforms: with one processor per task, every job can run in
// the first C_i slots of its window.
#pragma once

#include <cstdint>
#include <vector>

#include "core/solve.hpp"
#include "rt/task_set.hpp"

namespace mgrts::core {

struct MinProcessorsResult {
  /// True when a feasible m was certified within the bounds/budget.
  bool found = false;
  /// The certified minimum (valid iff found).
  std::int32_t processors = 0;
  /// The capacity lower bound ceil(U) the search started from.
  std::int32_t lower_bound = 0;
  /// Report of the successful run (valid iff found).
  SolveReport report;
  /// Per-m verdicts, parallel to m = lower_bound, lower_bound+1, ...
  std::vector<Verdict> trail;
};

/// Searches m in [ceil(U), max_m].  `config.method` must be a complete
/// decision procedure for the verdict to be a true minimum; incomplete
/// methods (EDF) still yield an upper bound.  Stops early when a solver
/// returns a non-decided verdict (timeout/limits) — `found` stays false.
[[nodiscard]] MinProcessorsResult min_processors(const rt::TaskSet& ts,
                                                 const SolveConfig& config = {},
                                                 std::int32_t max_m = 0);

}  // namespace mgrts::core
