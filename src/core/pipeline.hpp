// The staged solve pipeline: presolve stages in front of a search backend.
//
// Every solve in this repo — single instance, batch, portfolio race — runs
// through one `Pipeline`: an ordered list of `Stage`s (cheap, sound,
// allowed to answer "unknown") followed by exactly one `Backend` (the
// requested search method, which always produces the final word when no
// stage short-circuits).  The pipeline records provenance: which stage or
// backend decided (`decided_by`) and per-stage wall times, so harness
// records and benches can report how much work presolve absorbs.
//
// Stage contracts (see DESIGN.md §8):
//   * sound — a decisive result (feasible, or infeasible with
//     `complete == true`) must be a proof; "cannot tell" is kUnknown;
//   * gated — `applicable()` rejects instance shapes the stage cannot
//     judge (e.g. the flow oracle on heterogeneous platforms) so the
//     pipeline composes over every workload without special-casing;
//   * bounded — stages respect the shared deadline and their node budget;
//     a stage must never be the reason a solve misses its wall budget;
//   * non-throwing for resource pressure — a stage that would exceed a
//     memory budget reports kUnknown and lets the backend decide.
//
// Built-in stage line-up (each individually toggled by PipelineOptions):
//   1. "analysis"      — the exact one-sided bound tests (analysis/tests);
//   2. "flow-oracle"   — exact polynomial decision, identical platforms;
//   3. "csp2-presolve" — a node-budgeted slack/demand-pruned CSP2 probe
//                        (the bench_ablation_csp2_rules extensions promoted
//                        to a first-class stage).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/verdict.hpp"
#include "rt/platform.hpp"
#include "rt/schedule.hpp"
#include "rt/task_set.hpp"
#include "support/deadline.hpp"

namespace mgrts::core {

struct SolveConfig;  // core/solve.hpp

/// Which presolve stages run in front of the backend, and their budgets.
struct PipelineOptions {
  /// Exact one-sided analytical tests (utilization, window fit, forced
  /// demand, density).  Near-free; on by default.
  bool analysis = true;
  /// Exact polynomial max-flow decision on identical platforms.  On by
  /// default: it short-circuits search entirely where it applies.
  bool flow_oracle = true;
  /// Node-budgeted dedicated-CSP2 probe with the slack/demand prunes on.
  /// Off by default (redundant in front of a CSP2 backend with the same
  /// prunes); the portfolio and pipeline line-ups enable it.
  bool csp2_presolve = false;
  /// Node budget for the csp2-presolve probe.
  std::int64_t presolve_max_nodes = 20'000;

  /// No presolve at all: the paper-faithful configuration (the §VII
  /// line-ups filter only by r > 1, which the harness applies separately).
  [[nodiscard]] static PipelineOptions none() {
    PipelineOptions options;
    options.analysis = false;
    options.flow_oracle = false;
    options.csp2_presolve = false;
    return options;
  }
  /// Every stage on — the full presolve chain.
  [[nodiscard]] static PipelineOptions full() {
    PipelineOptions options;
    options.csp2_presolve = true;
    return options;
  }
};

/// Budgets handed to a running stage.
struct StageContext {
  support::Deadline deadline;
  std::int64_t presolve_max_nodes = 20'000;
};

/// Nogood-learning statistics of a generic-engine backend run (zeros when
/// the method does not record nogoods).  Mirrors csp::SolveStats' nogood
/// counters so provenance reports and the bench ledger can track learning
/// quality without reaching into the engine.
struct NogoodStats {
  std::int64_t recorded = 0;     ///< nogoods stored (incl. root units)
  std::int64_t imported = 0;     ///< adopted from a shared pool
  std::int64_t exported = 0;     ///< published to a shared pool
  std::int64_t replay_hits = 0;  ///< unit removals + clause conflicts
  /// Literal totals over recorded nogoods: raw decision-set length vs the
  /// length stored after conflict-analysis shrinking.
  std::int64_t lits_before = 0;
  std::int64_t lits_after = 0;
  /// 1-UIP differential (NogoodLearn::kUip1 backends): per analyzed
  /// conflict, the 1-UIP clause length vs the decision-set clause for the
  /// same conflict (never longer — the walk guarantees it per conflict).
  std::int64_t lits_uip = 0;
  std::int64_t lits_ds = 0;
  /// On-the-fly subsumptions (a recording replaced or was absorbed by its
  /// predecessor) and replay-hit block-LBD refreshes.
  std::int64_t subsumed = 0;
  std::int64_t lbd_refreshed = 0;
  /// Non-chronological backjumps taken (csp::SearchOptions::backjump), the
  /// total decision levels they skipped beyond the chronological single
  /// level, and the literals removed by recursive self-subsumption
  /// minimization (DESIGN.md §15).
  std::int64_t backjumps = 0;
  std::int64_t backjump_levels_saved = 0;
  std::int64_t lits_minimized = 0;

  /// Average recorded length over average decision-set length; 1.0 when
  /// nothing was recorded (or shrinking is off and nothing was dropped).
  [[nodiscard]] double shrink_ratio() const noexcept {
    return lits_before > 0 ? static_cast<double>(lits_after) /
                                 static_cast<double>(lits_before)
                           : 1.0;
  }

  /// Average 1-UIP clause length over the decision-set clause length for
  /// the same conflicts; <= 1.0 by construction, 1.0 when 1-UIP learning
  /// did not run.  The gated uip_clause_len_ratio ledger metric.
  [[nodiscard]] double uip_len_ratio() const noexcept {
    return lits_ds > 0 ? static_cast<double>(lits_uip) /
                             static_cast<double>(lits_ds)
                       : 1.0;
  }
};

/// Per-propagator-class observability row of a generic-engine backend run
/// (mirrors csp::PropagatorProfile): advisor wake-ups, actual sweeps, the
/// domain changes those sweeps produced, and — only when the backend ran
/// with csp::SearchOptions::prop_profile — wall time inside the sweeps.
struct PropagatorStats {
  std::string name;
  std::int64_t wakes = 0;
  std::int64_t runs = 0;
  std::int64_t prunes = 0;
  double seconds = 0.0;
};

/// What a stage (or backend) found.  Stages leave `verdict` at kUnknown to
/// pass the instance on; backends report whatever their search produced.
struct StageResult {
  Verdict verdict = Verdict::kUnknown;
  /// Whether a kInfeasible verdict is an exhaustive proof.
  bool complete = true;
  /// Why a non-decisive verdict happened (kNone for decisive answers and
  /// plain presolve hand-offs).
  FailureCause cause = FailureCause::kNone;
  std::optional<rt::Schedule> schedule;  ///< witness, when one exists
  /// Refined provenance label (e.g. "analysis:utilization"); empty means
  /// "use the stage's name".
  std::string decided_by;
  std::string detail;
  std::int64_t nodes = 0;
  std::int64_t failures = 0;
  NogoodStats nogoods;  ///< generic-engine backends only; zeros elsewhere
  /// Per-propagator wake/run/prune rows, sorted by class name
  /// (generic-engine backends only; empty elsewhere).
  std::vector<PropagatorStats> propagators;

  [[nodiscard]] bool decisive() const noexcept {
    return core::decisive(verdict, complete);
  }
};

/// A presolve stage: cheap, sound, may answer kUnknown.
class Stage {
 public:
  virtual ~Stage() = default;
  [[nodiscard]] virtual const char* name() const = 0;
  /// Structural gate: false when the stage cannot judge this instance
  /// shape at all (it is then skipped silently).
  [[nodiscard]] virtual bool applicable(const rt::TaskSet& ts,
                                        const rt::Platform& platform) const = 0;
  [[nodiscard]] virtual StageResult run(const rt::TaskSet& ts,
                                        const rt::Platform& platform,
                                        const StageContext& context) const = 0;
};

/// The terminal search method: runs when no stage decided, and its result —
/// decided or not — is the pipeline's result.
class Backend {
 public:
  virtual ~Backend() = default;
  [[nodiscard]] virtual const char* name() const = 0;
  [[nodiscard]] virtual StageResult run(const rt::TaskSet& ts,
                                        const rt::Platform& platform,
                                        const SolveConfig& config,
                                        const support::Deadline& deadline)
      const = 0;
};

/// One line of pipeline provenance: stage (or backend) name, its verdict,
/// and its wall time.
struct StageTiming {
  std::string stage;
  Verdict verdict = Verdict::kUnknown;
  double seconds = 0.0;
};

struct PipelineOutcome {
  StageResult result;
  /// Who produced `result`: a stage name ("analysis:utilization",
  /// "flow-oracle", "csp2-presolve") or "backend:<method>".
  std::string decided_by;
  std::vector<StageTiming> stages;  ///< execution order, timed

  /// Same semantics as exp::RunRecord::decided_by_presolve: a decisive
  /// answer from a stage, not from the backend or a portfolio lane.
  [[nodiscard]] bool decided_by_presolve() const {
    return result.decisive() && decided_by.rfind("backend:", 0) != 0 &&
           decided_by.rfind("portfolio:", 0) != 0;
  }
};

/// An ordered stage list plus (optionally) a backend.
class Pipeline {
 public:
  Pipeline() = default;
  explicit Pipeline(PipelineOptions options) : options_(options) {}

  Pipeline& add(std::unique_ptr<Stage> stage);
  Pipeline& set_backend(std::unique_ptr<Backend> backend);

  /// Runs the stages in order; stops at the first decisive result.  Skips
  /// stages that are inapplicable or whose deadline already expired.
  [[nodiscard]] PipelineOutcome run_stages(const rt::TaskSet& ts,
                                           const rt::Platform& platform,
                                           const support::Deadline& deadline)
      const;

  /// run_stages, then the backend when no stage decided.  Requires a
  /// backend.
  [[nodiscard]] PipelineOutcome run(const rt::TaskSet& ts,
                                    const rt::Platform& platform,
                                    const SolveConfig& config,
                                    const support::Deadline& deadline) const;

 private:
  PipelineOptions options_;
  std::vector<std::unique_ptr<Stage>> stages_;
  std::unique_ptr<Backend> backend_;
};

// Built-in stages (pipeline.cpp).
//
// `necessary_only` restricts the analysis stage to the infeasible
// direction; make_pipeline sets it whenever the flow oracle follows, so
// feasible instances get decided one stage later *with* a constructed
// witness instead of a witness-less density proof.
[[nodiscard]] std::unique_ptr<Stage> make_analysis_stage(
    bool necessary_only = false);
[[nodiscard]] std::unique_ptr<Stage> make_flow_oracle_stage();
[[nodiscard]] std::unique_ptr<Stage> make_csp2_presolve_stage();

/// The standard presolve chain selected by `options` (no backend attached).
[[nodiscard]] Pipeline make_pipeline(const PipelineOptions& options);

}  // namespace mgrts::core
