#include "core/pipeline.hpp"

#include <exception>
#include <new>
#include <string>
#include <utility>

#include "analysis/tests.hpp"
#include "csp2/csp2.hpp"
#include "flow/oracle.hpp"
#include "support/assert.hpp"
#include "support/error.hpp"

namespace mgrts::core {

namespace {

// ------------------------------------------------------------- stage 1
// Exact one-sided analytical tests.  Decides without producing a witness:
// the density test's fluid argument proves existence (via flow
// integrality), it does not construct the schedule.  When the flow oracle
// runs next anyway (`necessary_only`), feasible answers are deferred to it
// so every feasible short-circuit still carries a validated schedule.
class AnalysisStage final : public Stage {
 public:
  explicit AnalysisStage(bool necessary_only)
      : necessary_only_(necessary_only) {}

  [[nodiscard]] const char* name() const override { return "analysis"; }

  [[nodiscard]] bool applicable(const rt::TaskSet& ts,
                                const rt::Platform& platform) const override {
    return platform.is_identical() && ts.is_constrained();
  }

  [[nodiscard]] StageResult run(const rt::TaskSet& ts,
                                const rt::Platform& platform,
                                const StageContext&) const override {
    const analysis::TestResult result =
        analysis::quick_decide(ts, platform.processors());
    StageResult out;
    out.verdict = canonical_verdict(result.verdict);
    if (out.verdict == Verdict::kFeasible && necessary_only_) {
      out.verdict = Verdict::kUnknown;
      out.detail = std::string(result.test) +
                   " holds; deferring to the flow oracle for a witness";
      return out;
    }
    if (out.decisive()) {
      out.decided_by = std::string("analysis:") + result.test;
    }
    out.detail = result.detail;
    return out;
  }

 private:
  bool necessary_only_;
};

// ------------------------------------------------------------- stage 2
// Exact polynomial feasibility via max-flow.  Produces a canonical witness
// schedule for feasible instances; memory pressure downgrades to kUnknown
// (the backend gets its chance) instead of aborting the solve.
class FlowOracleStage final : public Stage {
 public:
  [[nodiscard]] const char* name() const override { return "flow-oracle"; }

  [[nodiscard]] bool applicable(const rt::TaskSet& ts,
                                const rt::Platform& platform) const override {
    return platform.is_identical() && ts.is_constrained();
  }

  [[nodiscard]] StageResult run(const rt::TaskSet& ts,
                                const rt::Platform& platform,
                                const StageContext&) const override {
    StageResult out;
    try {
      flow::OracleResult oracle = flow::decide_feasibility(ts, platform);
      out.verdict = canonical_verdict(oracle.verdict);
      out.schedule = std::move(oracle.schedule);
      out.detail = "max-flow " + std::to_string(oracle.flow) + " of demand " +
                   std::to_string(oracle.demand);
    } catch (const ResourceError& e) {
      // The job table blew its memory budget (or an injected fault shadowed
      // that guard).  The analysis stage defers feasible answers to us
      // (necessary-only mode), so re-derive the sufficient density proof
      // here — sound, witness-less, and far better than regressing an
      // already-provable instance to full search.
      const bool injected = dynamic_cast<const FaultInjectedError*>(&e);
      const analysis::TestResult density =
          analysis::density_test(ts, platform.processors());
      if (density.verdict == analysis::TestVerdict::kFeasible) {
        out.verdict = Verdict::kFeasible;
        out.decided_by = "analysis:density";
        out.detail = std::string("flow oracle skipped (") + e.what() +
                     "); density proof stands";
      } else {
        out.verdict = Verdict::kUnknown;
        out.cause = injected ? FailureCause::kFaultInjected
                             : FailureCause::kMemory;
        out.detail = std::string("flow oracle skipped: ") + e.what();
      }
    }
    return out;
  }
};

// ------------------------------------------------------------- stage 3
// Node-budgeted dedicated-CSP2 probe with this repo's slack/demand pruning
// extensions enabled (bench_ablation_csp2_rules quantifies them): many
// instances that time out under the paper-faithful rules become instant
// infeasibility proofs here.  Budget exhaustion is kUnknown — the backend
// still owns the instance.
class Csp2PresolveStage final : public Stage {
 public:
  [[nodiscard]] const char* name() const override { return "csp2-presolve"; }

  [[nodiscard]] bool applicable(const rt::TaskSet& ts,
                                const rt::Platform&) const override {
    return ts.is_constrained();
  }

  [[nodiscard]] StageResult run(const rt::TaskSet& ts,
                                const rt::Platform& platform,
                                const StageContext& context) const override {
    csp2::Options options;
    options.value_order = csp2::ValueOrder::kDMinusC;
    options.slack_prune = true;
    options.tight_demand_prune = true;
    options.max_nodes = context.presolve_max_nodes;
    options.deadline = context.deadline;
    csp2::Result result = csp2::solve(ts, platform, options);

    StageResult out;
    out.nodes = result.stats.nodes;
    out.failures = result.stats.failures;
    const Verdict verdict = canonical_verdict(result.status);
    if (verdict == Verdict::kFeasible) {
      out.verdict = verdict;
      out.schedule = std::move(result.schedule);
    } else if (verdict == Verdict::kInfeasible && result.search_complete) {
      out.verdict = verdict;
    } else {
      // Budget exhausted, or an incomplete infeasibility claim
      // (heterogeneous idle-rule caveat): proves nothing.
      out.verdict = Verdict::kUnknown;
      out.detail = std::string("presolve probe ") +
                   csp2::to_string(result.status) + " after " +
                   std::to_string(result.stats.nodes) + " nodes";
    }
    return out;
  }
};

}  // namespace

Pipeline& Pipeline::add(std::unique_ptr<Stage> stage) {
  MGRTS_EXPECTS(stage != nullptr);
  stages_.push_back(std::move(stage));
  return *this;
}

Pipeline& Pipeline::set_backend(std::unique_ptr<Backend> backend) {
  MGRTS_EXPECTS(backend != nullptr);
  backend_ = std::move(backend);
  return *this;
}

PipelineOutcome Pipeline::run_stages(const rt::TaskSet& ts,
                                     const rt::Platform& platform,
                                     const support::Deadline& deadline) const {
  PipelineOutcome out;
  StageContext context{deadline, options_.presolve_max_nodes};
  for (const auto& stage : stages_) {
    if (deadline.expired()) break;
    if (!stage->applicable(ts, platform)) continue;
    support::Stopwatch watch;
    StageResult result;
    // Containment funnel (DESIGN.md §12): a throwing stage downgrades to a
    // sound kUnknown with cause provenance — a presolve stage must never be
    // the reason a solve dies.
    try {
      result = stage->run(ts, platform, context);
    } catch (const FaultInjectedError& e) {
      result = StageResult{};
      result.cause = FailureCause::kFaultInjected;
      result.detail = std::string(stage->name()) + " faulted: " + e.what();
    } catch (const ResourceError& e) {
      result = StageResult{};
      result.cause = FailureCause::kMemory;
      result.detail = std::string(stage->name()) + " hit a resource limit: " +
                      e.what();
    } catch (const std::bad_alloc&) {
      result = StageResult{};
      result.cause = FailureCause::kMemory;
      result.detail = std::string(stage->name()) + " ran out of memory";
    } catch (const std::exception& e) {
      result = StageResult{};
      result.cause = FailureCause::kInternalError;
      result.detail = std::string(stage->name()) + " threw: " + e.what();
    }
    out.stages.push_back(
        StageTiming{stage->name(), result.verdict, watch.seconds()});
    if (result.decisive()) {
      out.decided_by =
          result.decided_by.empty() ? stage->name() : result.decided_by;
      out.result = std::move(result);
      return out;
    }
  }
  return out;
}

PipelineOutcome Pipeline::run(const rt::TaskSet& ts,
                              const rt::Platform& platform,
                              const SolveConfig& config,
                              const support::Deadline& deadline) const {
  MGRTS_EXPECTS(backend_ != nullptr);
  PipelineOutcome out = run_stages(ts, platform, deadline);
  if (out.result.decisive()) return out;

  support::Stopwatch watch;
  StageResult result;
  // Same funnel as run_stages, at the backend boundary.  ValidationError
  // stays a thrown contract violation (a structurally invalid request, not
  // a runtime failure); everything else degrades with a cause.
  try {
    result = backend_->run(ts, platform, config, deadline);
  } catch (const ValidationError&) {
    throw;
  } catch (const FaultInjectedError& e) {
    result = StageResult{};
    result.cause = FailureCause::kFaultInjected;
    result.detail = std::string(backend_->name()) + " faulted: " + e.what();
  } catch (const ResourceError& e) {
    result = StageResult{};
    result.verdict = Verdict::kMemoryLimit;
    result.cause = FailureCause::kMemory;
    result.detail = e.what();
  } catch (const std::bad_alloc&) {
    result = StageResult{};
    result.verdict = Verdict::kMemoryLimit;
    result.cause = FailureCause::kMemory;
    result.detail = std::string(backend_->name()) + " ran out of memory";
  } catch (const std::exception& e) {
    result = StageResult{};
    result.cause = FailureCause::kInternalError;
    result.detail = std::string(backend_->name()) + " threw: " + e.what();
  }
  out.stages.push_back(
      StageTiming{backend_->name(), result.verdict, watch.seconds()});
  out.decided_by = result.decided_by.empty()
                       ? std::string("backend:") + backend_->name()
                       : result.decided_by;
  out.result = std::move(result);
  return out;
}

std::unique_ptr<Stage> make_analysis_stage(bool necessary_only) {
  return std::make_unique<AnalysisStage>(necessary_only);
}

std::unique_ptr<Stage> make_flow_oracle_stage() {
  return std::make_unique<FlowOracleStage>();
}

std::unique_ptr<Stage> make_csp2_presolve_stage() {
  return std::make_unique<Csp2PresolveStage>();
}

Pipeline make_pipeline(const PipelineOptions& options) {
  Pipeline pipeline(options);
  if (options.analysis) pipeline.add(make_analysis_stage(options.flow_oracle));
  if (options.flow_oracle) pipeline.add(make_flow_oracle_stage());
  if (options.csp2_presolve) pipeline.add(make_csp2_presolve_stage());
  return pipeline;
}

}  // namespace mgrts::core
