#include "core/solve.hpp"

#include <exception>
#include <utility>

#include "encodings/csp1.hpp"
#include "flow/oracle.hpp"
#include "rt/validate.hpp"
#include "sim/simulator.hpp"
#include "support/deadline.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace mgrts::core {

const char* to_string(Method method) {
  switch (method) {
    case Method::kCsp1Generic: return "CSP1(generic)";
    case Method::kCsp2Generic: return "CSP2(generic)";
    case Method::kCsp2Dedicated: return "CSP2(dedicated)";
    case Method::kFlowOracle: return "flow-oracle";
    case Method::kEdfSimulation: return "EDF-sim";
  }
  return "?";
}

const char* to_string(Verdict verdict) {
  switch (verdict) {
    case Verdict::kFeasible: return "feasible";
    case Verdict::kInfeasible: return "infeasible";
    case Verdict::kTimeout: return "timeout";
    case Verdict::kNodeLimit: return "node-limit";
    case Verdict::kMemoryLimit: return "memory-limit";
  }
  return "?";
}

csp::SearchOptions choco_like_defaults(std::uint64_t seed) {
  csp::SearchOptions options;
  options.var_heuristic = csp::VarHeuristic::kDomWdeg;
  options.val_heuristic = csp::ValHeuristic::kRandom;
  options.random_var_ties = true;
  options.restart = csp::RestartPolicy::kLuby;
  options.restart_scale = 128;
  options.seed = seed;
  return options;
}

namespace {

Verdict from_generic(csp::SolveStatus status) {
  switch (status) {
    case csp::SolveStatus::kSat: return Verdict::kFeasible;
    case csp::SolveStatus::kUnsat: return Verdict::kInfeasible;
    case csp::SolveStatus::kTimeout: return Verdict::kTimeout;
    case csp::SolveStatus::kNodeLimit: return Verdict::kNodeLimit;
    case csp::SolveStatus::kMemoryLimit: return Verdict::kMemoryLimit;
  }
  return Verdict::kInfeasible;
}

Verdict from_csp2(csp2::Status status) {
  switch (status) {
    case csp2::Status::kFeasible: return Verdict::kFeasible;
    case csp2::Status::kInfeasible: return Verdict::kInfeasible;
    case csp2::Status::kTimeout: return Verdict::kTimeout;
    case csp2::Status::kNodeLimit: return Verdict::kNodeLimit;
  }
  return Verdict::kInfeasible;
}

}  // namespace

SolveReport solve_instance(const rt::TaskSet& input,
                           const rt::Platform& platform,
                           const SolveConfig& config) {
  support::Stopwatch watch;
  SolveReport report;

  // §VI-B: arbitrary-deadline systems are solved through their clone
  // expansion; every downstream component expects constrained deadlines.
  const bool cloned = !input.is_constrained();
  const rt::TaskSet ts = cloned ? input.to_constrained() : input;
  if (cloned) report.solved_tasks = ts;

  const auto deadline = config.time_limit_ms < 0
                            ? support::Deadline()
                            : support::Deadline::after_ms(config.time_limit_ms);

  try {
    switch (config.method) {
      case Method::kCsp1Generic: {
        auto model = enc::build_csp1(ts, platform, config.limits);
        csp::SearchOptions options = config.generic;
        options.deadline = deadline;
        options.max_nodes = config.max_nodes;
        const csp::SolveOutcome outcome = model.solver->solve(options);
        report.verdict = from_generic(outcome.status);
        report.nodes = outcome.stats.nodes;
        report.failures = outcome.stats.failures;
        if (outcome.status == csp::SolveStatus::kSat) {
          report.schedule = enc::decode_csp1(model, outcome.assignment);
        }
        break;
      }
      case Method::kCsp2Generic: {
        auto model =
            enc::build_csp2_generic(ts, platform, config.csp2_generic,
                                    config.limits);
        csp::SearchOptions options = config.generic;
        options.deadline = deadline;
        options.max_nodes = config.max_nodes;
        const csp::SolveOutcome outcome = model.solver->solve(options);
        report.verdict = from_generic(outcome.status);
        report.nodes = outcome.stats.nodes;
        report.failures = outcome.stats.failures;
        if (outcome.status == csp::SolveStatus::kSat) {
          report.schedule = enc::decode_csp2_generic(model, outcome.assignment);
        }
        break;
      }
      case Method::kCsp2Dedicated: {
        csp2::Options options = config.csp2;
        options.deadline = deadline;
        options.max_nodes = config.max_nodes;
        csp2::Result result = csp2::solve(ts, platform, options);
        report.verdict = from_csp2(result.status);
        report.complete = result.search_complete;
        report.nodes = result.stats.nodes;
        report.failures = result.stats.failures;
        report.schedule = std::move(result.schedule);
        break;
      }
      case Method::kFlowOracle: {
        flow::OracleResult oracle = flow::decide_feasibility(ts, platform);
        report.verdict = oracle.verdict == flow::OracleVerdict::kFeasible
                             ? Verdict::kFeasible
                             : Verdict::kInfeasible;
        report.schedule = std::move(oracle.schedule);
        break;
      }
      case Method::kEdfSimulation: {
        sim::SimOptions options;
        options.policy = sim::Policy::kEdf;
        const sim::SimResult result = sim::simulate(ts, platform, options);
        report.complete = false;  // EDF is not an optimal global policy
        if (result.status == sim::SimStatus::kSchedulable) {
          report.verdict = Verdict::kFeasible;
          if (result.schedule.has_value()) {
            report.schedule = result.schedule;
          } else {
            // Schedulable with a steady state longer than one hyperperiod:
            // no compact witness to validate.
            report.detail = "schedulable; steady state period exceeds T";
          }
        } else {
          report.verdict = Verdict::kInfeasible;
          report.detail = std::string("EDF ") + sim::to_string(result.status);
        }
        break;
      }
    }
  } catch (const ResourceError& e) {
    report.verdict = Verdict::kMemoryLimit;
    report.detail = e.what();
    report.seconds = watch.seconds();
    return report;
  }

  if (report.schedule.has_value() && config.validate_witness) {
    report.witness_valid =
        rt::is_valid_schedule(ts, platform, *report.schedule);
  } else if (report.schedule.has_value()) {
    report.witness_valid = true;  // validation skipped by request
  }

  // A "feasible" claim without a checkable or valid witness is a solver bug;
  // surface it loudly in the detail string rather than silently trusting it.
  if (report.verdict == Verdict::kFeasible && report.schedule.has_value() &&
      config.validate_witness && !report.witness_valid) {
    report.detail = "INVALID WITNESS: " +
                    rt::validate_schedule(ts, platform, *report.schedule)
                        .to_string();
  }

  report.seconds = watch.seconds();
  return report;
}

std::vector<SolveReport> solve_batch(const std::vector<BatchJob>& jobs,
                                     std::size_t workers) {
  std::vector<SolveReport> reports(jobs.size());
  std::vector<std::exception_ptr> errors(jobs.size());
  support::parallel_for_index(jobs.size(), workers, [&](std::size_t k) {
    try {
      reports[k] = solve_instance(jobs[k].tasks, jobs[k].platform,
                                  jobs[k].config);
    } catch (...) {
      errors[k] = std::current_exception();
    }
  });
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  return reports;
}

}  // namespace mgrts::core
