#include "core/solve.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <mutex>
#include <new>
#include <thread>
#include <utility>

#include "csp/nogoods.hpp"
#include "encodings/csp1.hpp"
#include "flow/oracle.hpp"
#include "rt/validate.hpp"
#include "sim/simulator.hpp"
#include "support/deadline.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace mgrts::core {

const char* to_string(Method method) {
  switch (method) {
    case Method::kCsp1Generic: return "CSP1(generic)";
    case Method::kCsp2Generic: return "CSP2(generic)";
    case Method::kCsp2Dedicated: return "CSP2(dedicated)";
    case Method::kFlowOracle: return "flow-oracle";
    case Method::kEdfSimulation: return "EDF-sim";
    case Method::kLocalSearch: return "min-conflicts";
    case Method::kPortfolio: return "CSP2-portfolio";
  }
  return "?";
}

csp::SearchOptions choco_like_defaults(std::uint64_t seed) {
  csp::SearchOptions options;
  options.var_heuristic = csp::VarHeuristic::kDomWdeg;
  options.val_heuristic = csp::ValHeuristic::kRandom;
  options.random_var_ties = true;
  options.restart = csp::RestartPolicy::kLuby;
  options.restart_scale = 128;
  options.seed = seed;
  return options;
}

namespace {

/// Lifts the engine's nogood counters into the provenance shape.
NogoodStats to_nogood_stats(const csp::SolveStats& stats) {
  NogoodStats out;
  out.recorded = stats.nogoods_recorded;
  out.imported = stats.nogoods_imported;
  out.exported = stats.nogoods_exported;
  out.replay_hits = stats.nogood_props + stats.nogood_conflicts;
  out.lits_before = stats.nogood_lits_before;
  out.lits_after = stats.nogood_lits_after;
  out.lits_uip = stats.nogood_lits_uip;
  out.lits_ds = stats.nogood_lits_ds;
  out.subsumed = stats.nogoods_subsumed;
  out.lbd_refreshed = stats.nogood_lbd_refreshed;
  out.backjumps = stats.backjumps;
  out.backjump_levels_saved = stats.backjump_levels_saved;
  out.lits_minimized = stats.nogood_lits_minimized;
  return out;
}

/// Lifts the engine's per-propagator rows into the provenance shape.
std::vector<PropagatorStats> to_propagator_stats(
    const csp::SolveStats& stats) {
  std::vector<PropagatorStats> out;
  out.reserve(stats.propagators.size());
  for (const csp::PropagatorProfile& row : stats.propagators) {
    out.push_back(PropagatorStats{row.name, row.wakes, row.runs, row.prunes,
                                  row.seconds});
  }
  return out;
}

/// Attributes a budget verdict to its FailureCause: wall expiry vs
/// cooperative cancellation for kTimeout, node budget, memory.  Decisive
/// verdicts and plain incomplete give-ups keep kNone.
FailureCause infer_cause(Verdict verdict, const support::Deadline& deadline) {
  switch (verdict) {
    case Verdict::kTimeout:
      return deadline.cancel_requested() ? FailureCause::kCancelled
                                         : FailureCause::kDeadline;
    case Verdict::kNodeLimit: return FailureCause::kNodeBudget;
    case Verdict::kMemoryLimit: return FailureCause::kMemory;
    default: return FailureCause::kNone;
  }
}

/// The terminal pipeline stage: dispatches to the requested search method.
/// Containment funnel (DESIGN.md §12): ResourceError surfaces as
/// kMemoryLimit (Table IV's "-"), injected faults and unexpected exceptions
/// degrade to kUnknown with cause provenance; only structural
/// ValidationError (e.g. the flow oracle on a heterogeneous platform)
/// propagates to the caller as before.
class MethodBackend final : public Backend {
 public:
  explicit MethodBackend(Method method) : method_(method) {}

  [[nodiscard]] const char* name() const override {
    return core::to_string(method_);
  }

  [[nodiscard]] StageResult run(const rt::TaskSet& ts,
                                const rt::Platform& platform,
                                const SolveConfig& config,
                                const support::Deadline& deadline)
      const override {
    StageResult out;
    try {
      dispatch(ts, platform, config, deadline, out);
    } catch (const ValidationError&) {
      throw;
    } catch (const FaultInjectedError& e) {
      out = StageResult{};
      out.cause = FailureCause::kFaultInjected;
      out.detail = e.what();
    } catch (const ResourceError& e) {
      out = StageResult{};
      out.verdict = Verdict::kMemoryLimit;
      out.cause = FailureCause::kMemory;
      out.detail = e.what();
    } catch (const std::bad_alloc&) {
      out = StageResult{};
      out.verdict = Verdict::kMemoryLimit;
      out.cause = FailureCause::kMemory;
      out.detail = "allocation failed during model build or search";
    } catch (const std::exception& e) {
      out = StageResult{};
      out.cause = FailureCause::kInternalError;
      out.detail = std::string("backend threw: ") + e.what();
    }
    if (out.cause == FailureCause::kNone) {
      out.cause = infer_cause(out.verdict, deadline);
    }
    return out;
  }

 private:
  void dispatch(const rt::TaskSet& ts, const rt::Platform& platform,
                const SolveConfig& config, const support::Deadline& deadline,
                StageResult& out) const {
    switch (method_) {
      case Method::kCsp1Generic: {
        auto model = enc::build_csp1(ts, platform, config.limits);
        csp::SearchOptions options = config.generic;
        options.deadline = deadline;
        options.max_nodes = config.max_nodes;
        const csp::SolveOutcome outcome = model.solver->solve(options);
        out.verdict = canonical_verdict(outcome.status);
        out.nodes = outcome.stats.nodes;
        out.failures = outcome.stats.failures;
        out.nogoods = to_nogood_stats(outcome.stats);
        out.propagators = to_propagator_stats(outcome.stats);
        if (outcome.status == csp::SolveStatus::kSat) {
          out.schedule = enc::decode_csp1(model, outcome.assignment);
        }
        break;
      }
      case Method::kCsp2Generic: {
        auto model = enc::build_csp2_generic(ts, platform,
                                             config.csp2_generic,
                                             config.limits);
        csp::SearchOptions options = config.generic;
        options.deadline = deadline;
        options.max_nodes = config.max_nodes;
        const csp::SolveOutcome outcome = model.solver->solve(options);
        out.verdict = canonical_verdict(outcome.status);
        out.nodes = outcome.stats.nodes;
        out.failures = outcome.stats.failures;
        out.nogoods = to_nogood_stats(outcome.stats);
        out.propagators = to_propagator_stats(outcome.stats);
        if (outcome.status == csp::SolveStatus::kSat) {
          out.schedule = enc::decode_csp2_generic(model, outcome.assignment);
        }
        break;
      }
      case Method::kCsp2Dedicated: {
        csp2::Options options = config.csp2;
        options.deadline = deadline;
        options.max_nodes = config.max_nodes;
        csp2::Result result = csp2::solve(ts, platform, options);
        out.verdict = canonical_verdict(result.status);
        out.complete = result.search_complete;
        out.nodes = result.stats.nodes;
        out.failures = result.stats.failures;
        out.schedule = std::move(result.schedule);
        break;
      }
      case Method::kFlowOracle: {
        flow::OracleResult oracle = flow::decide_feasibility(ts, platform);
        out.verdict = canonical_verdict(oracle.verdict);
        out.schedule = std::move(oracle.schedule);
        break;
      }
      case Method::kLocalSearch: {
        ls::Options options = config.localsearch;
        options.deadline = deadline;
        ls::Result result = ls::solve(ts, platform, options);
        out.verdict = canonical_verdict(result.status);
        out.complete = false;  // can never prove infeasibility (§VIII)
        out.nodes = result.stats.iterations;
        out.schedule = std::move(result.schedule);
        if (out.verdict != Verdict::kFeasible) {
          out.detail = "min-conflicts gave up at cost " +
                       std::to_string(result.stats.best_cost);
        }
        break;
      }
      case Method::kPortfolio: {
        // The caller's pipeline already ran its presolve stages in front of
        // this backend; the lanes must not repeat them, and their budget is
        // what remains of the caller's deadline, not a fresh clock.
        SolveConfig inner = config;
        inner.pipeline = PipelineOptions::none();
        inner.time_limit_ms = deadline.remaining_ms();
        PortfolioReport race = solve_portfolio(ts, platform, inner);
        out.verdict = race.report.verdict;
        out.complete = race.report.complete;
        out.cause = race.report.cause;
        out.schedule = std::move(race.report.schedule);
        out.nodes = race.report.nodes;
        out.failures = race.report.failures;
        out.nogoods = race.report.nogoods;
        out.propagators = std::move(race.report.propagators);
        out.decided_by = std::move(race.report.decided_by);
        out.detail =
            race.winner >= 0
                ? std::string("portfolio winner: ") +
                      race.lanes[static_cast<std::size_t>(race.winner)].label
                : std::string("portfolio: no lane decided");
        break;
      }
      case Method::kEdfSimulation: {
        sim::SimOptions options;
        options.policy = sim::Policy::kEdf;
        const sim::SimResult result = sim::simulate(ts, platform, options);
        out.complete = false;  // EDF is not an optimal global policy
        if (result.status == sim::SimStatus::kSchedulable) {
          out.verdict = Verdict::kFeasible;
          if (result.schedule.has_value()) {
            out.schedule = result.schedule;
          } else {
            // Schedulable with a steady state longer than one hyperperiod:
            // no compact witness to validate.
            out.detail = "schedulable; steady state period exceeds T";
          }
        } else {
          out.verdict = Verdict::kInfeasible;
          out.detail = std::string("EDF ") + sim::to_string(result.status);
        }
        break;
      }
    }
  }

  Method method_;
};

/// Witness validation shared by solve_instance and the portfolio's
/// presolve short-circuit: re-checks any schedule with the independent
/// validator and flags solver bugs loudly.
void validate_report(const rt::TaskSet& ts, const rt::Platform& platform,
                     const SolveConfig& config, SolveReport& report) {
  if (report.schedule.has_value() && config.validate_witness) {
    report.witness_valid =
        rt::is_valid_schedule(ts, platform, *report.schedule);
  } else if (report.schedule.has_value()) {
    report.witness_valid = true;  // validation skipped by request
  }

  // A "feasible" claim whose witness fails the validator is a solver bug;
  // surface it loudly in the detail string rather than silently trusting
  // it.
  if (report.verdict == Verdict::kFeasible && report.schedule.has_value() &&
      config.validate_witness && !report.witness_valid) {
    report.detail = "INVALID WITNESS: " +
                    rt::validate_schedule(ts, platform, *report.schedule)
                        .to_string();
  }
}

/// Lifts a pipeline stage/backend result into the public report shape.
SolveReport to_report(PipelineOutcome&& outcome) {
  SolveReport report;
  report.verdict = outcome.result.verdict;
  report.complete = outcome.result.complete;
  report.cause = outcome.result.cause;
  report.schedule = std::move(outcome.result.schedule);
  report.nodes = outcome.result.nodes;
  report.failures = outcome.result.failures;
  report.nogoods = outcome.result.nogoods;
  report.propagators = std::move(outcome.result.propagators);
  report.detail = std::move(outcome.result.detail);
  report.decided_by = std::move(outcome.decided_by);
  report.stage_times = std::move(outcome.stages);
  return report;
}

}  // namespace

SolveReport solve_instance(const rt::TaskSet& input,
                           const rt::Platform& platform,
                           const SolveConfig& config) {
  support::Stopwatch watch;

  // §VI-B: arbitrary-deadline systems are solved through their clone
  // expansion; every downstream component expects constrained deadlines.
  const bool cloned = !input.is_constrained();
  const rt::TaskSet ts = cloned ? input.to_constrained() : input;

  auto deadline = config.time_limit_ms < 0
                      ? support::Deadline()
                      : support::Deadline::after_ms(config.time_limit_ms);
  deadline.set_cancel(config.cancel);
  if (config.heartbeat) deadline.set_heartbeat(config.heartbeat);

  Pipeline pipeline = make_pipeline(config.pipeline);
  pipeline.set_backend(std::make_unique<MethodBackend>(config.method));
  SolveReport report = to_report(pipeline.run(ts, platform, config, deadline));
  if (cloned) report.solved_tasks = ts;

  validate_report(ts, platform, config, report);
  report.seconds = watch.seconds();
  return report;
}

PortfolioReport solve_portfolio(const rt::TaskSet& input,
                                const rt::Platform& platform,
                                const SolveConfig& config) {
  support::Stopwatch watch;

  const bool cloned = !input.is_constrained();
  const rt::TaskSet ts = cloned ? input.to_constrained() : input;

  auto race_deadline = config.time_limit_ms < 0
                           ? support::Deadline()
                           : support::Deadline::after_ms(config.time_limit_ms);
  race_deadline.set_cancel(config.cancel);

  PortfolioReport out;

  // Presolve prefilter: the pipeline stages run once, before any lane
  // launches.  A decisive stage answer is the portfolio's answer — no lane
  // ever starts, which is where the flow oracle converts whole identical-
  // platform workloads into polynomial time.
  {
    PipelineOutcome pre =
        make_pipeline(config.pipeline).run_stages(ts, platform, race_deadline);
    out.presolve = pre.stages;
    if (pre.result.decisive()) {
      out.report = to_report(std::move(pre));
      if (cloned) out.report.solved_tasks = ts;
      validate_report(ts, platform, config, out.report);
      out.report.seconds = watch.seconds();
      out.seconds = watch.seconds();
      return out;
    }
  }

  struct Lane {
    std::string label;
    SolveConfig config;
  };
  std::vector<Lane> lanes;

  // Lanes never re-run the presolve stages (they just ran above), race over
  // what remains of this call's wall budget (a fresh clock would let the
  // race overshoot it by whatever presolve consumed), and the lane methods
  // are concrete, so no recursion.
  SolveConfig lane_base = config;
  lane_base.pipeline = PipelineOptions::none();
  lane_base.time_limit_ms = race_deadline.remaining_ms();

  // The four dedicated value-order lanes, configured like exp::csp2_spec.
  for (const csp2::ValueOrder order : csp2::informed_value_orders()) {
    Lane lane;
    lane.label = csp2::to_string(order);
    lane.config = lane_base;
    lane.config.method = Method::kCsp2Dedicated;
    lane.config.csp2.value_order = order;
    if (config.portfolio.paper_faithful) {
      lane.config.csp2.slack_prune = false;
      lane.config.csp2.tight_demand_prune = false;
    }
    lanes.push_back(std::move(lane));
  }

  // Anticorrelated lane: the same dedicated search with this repo's
  // slack/demand prunes ON — where the paper-faithful lanes all time out on
  // an infeasible instance, this lane often proves it instantly.
  if (config.portfolio.pruned_lane) {
    Lane lane;
    lane.label = "CSP2+(D-C)+prunes";
    lane.config = lane_base;
    lane.config.method = Method::kCsp2Dedicated;
    lane.config.csp2.value_order = csp2::ValueOrder::kDMinusC;
    lane.config.csp2.slack_prune = true;
    lane.config.csp2.tight_demand_prune = true;
    lanes.push_back(std::move(lane));
  }

  // Anticorrelated lane: min-conflicts local search — a SAT specialist for
  // feasible instances the tree searches thrash on.  Identical platforms
  // only (ls::solve's domain); its kUnknown give-up is never decisive.
  if (config.portfolio.local_search_lane && platform.is_identical()) {
    Lane lane;
    lane.label = "min-conflicts";
    lane.config = lane_base;
    lane.config.method = Method::kLocalSearch;
    lane.config.localsearch.seed =
        config.localsearch.seed ^ (config.generic.seed * 0x9e3779b97f4a7c15ULL);
    lanes.push_back(std::move(lane));
  }

  // Randomized generic lanes: Choco-like strategy with Luby restarts and
  // nogood recording; all lanes share one pool read-only (each lane only
  // imports what the others published).  The pool outlives the race — the
  // parallel_for_index below joins every lane before this frame returns.
  csp::NogoodPool pool;
  const bool share =
      config.portfolio.share_nogoods && config.portfolio.random_lanes > 0;
  for (std::int32_t r = 0; r < config.portfolio.random_lanes; ++r) {
    Lane lane;
    lane.label = "CSP2(generic)+rand" + std::to_string(r);
    lane.config = lane_base;
    lane.config.method = Method::kCsp2Generic;
    lane.config.generic = choco_like_defaults(
        config.generic.seed ^
        (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(r + 1)));
    lane.config.generic.nogoods = true;
    // The caller's learning knobs survive the strategy reset, so shrink
    // ablations (and LBD / database-size cuts) reach the racing lanes.
    lane.config.generic.nogood_shrink = config.generic.nogood_shrink;
    lane.config.generic.nogood_max_length = config.generic.nogood_max_length;
    lane.config.generic.nogood_max_lbd = config.generic.nogood_max_lbd;
    lane.config.generic.nogood_db_limit = config.generic.nogood_db_limit;
    if (share) {
      lane.config.generic.nogood_pool = &pool;
      lane.config.generic.nogood_lane = r;
    }
    lane.config.limits.max_variables =
        std::min(config.limits.max_variables,
                 config.portfolio.random_lane_max_variables);
    lanes.push_back(std::move(lane));
  }

  // Linked to the caller's token (when engaged) so an external cancel of
  // the portfolio run still aborts every lane; the winner's cancel only
  // fires the race-local flag.  Each lane then gets its *own* token linked
  // to the race token, so the watchdog can cull one stalled lane without
  // touching the survivors (links chain: caller -> race -> lane).
  const support::CancelToken token =
      config.cancel.engaged() ? support::CancelToken::linked(config.cancel)
                              : support::CancelToken::make();
  const std::size_t n_lanes = lanes.size();
  std::vector<support::CancelToken> lane_tokens;
  lane_tokens.reserve(n_lanes);
  for (std::size_t k = 0; k < n_lanes; ++k) {
    lane_tokens.push_back(support::CancelToken::linked(token));
    lanes[k].config.cancel = lane_tokens[k];
    lanes[k].config.heartbeat =
        std::make_shared<std::atomic<std::uint64_t>>(0);
  }

  std::vector<SolveReport> reports(n_lanes);
  auto started = std::make_unique<std::atomic<bool>[]>(n_lanes);
  auto finished = std::make_unique<std::atomic<bool>[]>(n_lanes);
  std::vector<bool> watchdog_cancelled(n_lanes, false);

  // Progress watchdog: a lane that has started, produced at least one
  // heartbeat, and then stands still for watchdog_stall_ms is cancelled so
  // the race continues with the survivors.  Queued-but-unstarted lanes
  // (oversubscription) and lanes still building their model (no beat yet)
  // are never culled — only a heartbeat that went quiet counts as stuck.
  std::atomic<bool> race_done{false};
  std::thread watchdog;
  const std::int64_t stall_ms = config.portfolio.watchdog_stall_ms;
  if (stall_ms > 0 && n_lanes > 0) {
    watchdog = std::thread([&] {
      using Clock = support::Deadline::Clock;
      const auto poll = std::chrono::milliseconds(
          std::clamp<std::int64_t>(stall_ms / 4, 5, 250));
      std::vector<std::uint64_t> last_beat(n_lanes, 0);
      std::vector<Clock::time_point> last_change(n_lanes, Clock::now());
      while (!race_done.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(poll);
        const auto now = Clock::now();
        for (std::size_t k = 0; k < n_lanes; ++k) {
          if (finished[k].load(std::memory_order_acquire) ||
              !started[k].load(std::memory_order_acquire)) {
            continue;
          }
          const std::uint64_t beat =
              lanes[k].config.heartbeat->load(std::memory_order_relaxed);
          if (beat != last_beat[k]) {
            last_beat[k] = beat;
            last_change[k] = now;
            continue;
          }
          if (beat > 0 && !watchdog_cancelled[k] &&
              now - last_change[k] > std::chrono::milliseconds(stall_ms)) {
            watchdog_cancelled[k] = true;  // single writer: this thread
            lane_tokens[k].cancel();
          }
        }
      }
    });
  }

  // One thread per lane by default: the race mechanism is overlapping
  // wall-clock deadlines, which deliberate oversubscription preserves even
  // on a single hardware thread (parallel_for_index honors workers beyond
  // the shared pool with a dedicated pool).  A throwing lane is contained
  // into its report — one crashed lane must never kill the race.
  const std::size_t workers = config.portfolio.workers == 0
                                  ? n_lanes
                                  : config.portfolio.workers;
  support::parallel_for_index(n_lanes, workers, [&](std::size_t k) {
    started[k].store(true, std::memory_order_release);
    try {
      reports[k] = solve_instance(ts, platform, lanes[k].config);
      if (decisive(reports[k].verdict, reports[k].complete)) {
        token.cancel();  // decisive: the race is over, stop the losers
      }
    } catch (const FaultInjectedError& e) {
      reports[k] = SolveReport{};
      reports[k].verdict = Verdict::kUnknown;
      reports[k].cause = FailureCause::kFaultInjected;
      reports[k].complete = false;
      reports[k].detail = e.what();
    } catch (const ResourceError& e) {
      reports[k] = SolveReport{};
      reports[k].verdict = Verdict::kUnknown;
      reports[k].cause = FailureCause::kMemory;
      reports[k].complete = false;
      reports[k].detail = e.what();
    } catch (const std::exception& e) {
      reports[k] = SolveReport{};
      reports[k].verdict = Verdict::kUnknown;
      reports[k].cause = FailureCause::kInternalError;
      reports[k].complete = false;
      reports[k].detail = std::string("lane threw: ") + e.what();
    }
    finished[k].store(true, std::memory_order_release);
  });
  race_done.store(true, std::memory_order_release);
  if (watchdog.joinable()) watchdog.join();

  out.lanes.reserve(n_lanes);
  for (std::size_t k = 0; k < n_lanes; ++k) {
    LaneOutcome lane_out;
    lane_out.label = lanes[k].label;
    lane_out.verdict = reports[k].verdict;
    lane_out.cause = reports[k].cause;
    lane_out.seconds = reports[k].seconds;
    lane_out.nodes = reports[k].nodes;
    lane_out.watchdog_cancelled = watchdog_cancelled[k];
    out.lanes.push_back(std::move(lane_out));
    if (!decisive(reports[k].verdict, reports[k].complete)) continue;
    if (out.winner < 0 ||
        reports[k].seconds <
            reports[static_cast<std::size_t>(out.winner)].seconds) {
      out.winner = static_cast<std::int32_t>(k);
    }
  }
  out.report = out.winner >= 0
                   ? reports[static_cast<std::size_t>(out.winner)]
                   : reports.front();
  // Honest provenance either way: the winning lane, or an explicit "none"
  // instead of whatever backend label lane 0's undecided run carried.
  out.report.decided_by =
      out.winner >= 0
          ? "portfolio:" + lanes[static_cast<std::size_t>(out.winner)].label
          : std::string("portfolio:none");
  // Provenance for callers that only see the headline report: the presolve
  // stages ran (undecided) before the race.
  out.report.stage_times.insert(out.report.stage_times.begin(),
                                out.presolve.begin(), out.presolve.end());
  if (cloned) out.report.solved_tasks = ts;
  out.seconds = watch.seconds();
  return out;
}

namespace {

/// True for failures worth a retry: transient crash-type causes, not
/// legitimate budget outcomes (a deadline or node-limit report is the
/// answer, not an accident).
bool crash_type(FailureCause cause) {
  return cause == FailureCause::kMemory ||
         cause == FailureCause::kInternalError ||
         cause == FailureCause::kFaultInjected;
}

/// solve_instance with every escape hatch closed: whatever the run throws
/// (ValidationError included — a batch must never lose a record) becomes a
/// kUnknown report with cause provenance.
SolveReport contained_solve(const BatchJob& job, const SolveConfig& config) {
  support::Stopwatch watch;
  try {
    return solve_instance(job.tasks, job.platform, config);
  } catch (const FaultInjectedError& e) {
    SolveReport report;
    report.verdict = Verdict::kUnknown;
    report.cause = FailureCause::kFaultInjected;
    report.complete = false;
    report.detail = e.what();
    report.seconds = watch.seconds();
    return report;
  } catch (const ResourceError& e) {
    SolveReport report;
    report.verdict = Verdict::kUnknown;
    report.cause = FailureCause::kMemory;
    report.complete = false;
    report.detail = e.what();
    report.seconds = watch.seconds();
    return report;
  } catch (const std::exception& e) {
    SolveReport report;
    report.verdict = Verdict::kUnknown;
    report.cause = FailureCause::kInternalError;
    report.complete = false;
    report.detail = std::string("job threw: ") + e.what();
    report.seconds = watch.seconds();
    return report;
  }
}

}  // namespace

std::vector<SolveReport> solve_batch(const std::vector<BatchJob>& jobs,
                                     const BatchPolicy& policy,
                                     BatchHealth* health) {
  std::vector<SolveReport> reports(jobs.size());
  std::mutex health_mutex;
  BatchHealth local;

  support::parallel_for_index(jobs.size(), policy.workers, [&](std::size_t k) {
    SolveConfig config = jobs[k].config;
    const std::int32_t attempts = std::max(policy.max_attempts, 1);
    bool ever_failed = false;
    for (std::int32_t attempt = 1;; ++attempt) {
      SolveReport report = contained_solve(jobs[k], config);
      const bool failed = crash_type(report.cause);
      if (failed) {
        ever_failed = true;
        std::lock_guard lock(health_mutex);
        ++local.failures;
        if (local.first_error.empty()) {
          local.first_error = std::string("job ") + std::to_string(k) + " [" +
                              to_string(report.cause) + "]: " + report.detail;
        }
      }
      if (!failed || attempt >= attempts) {
        if (failed) {
          report.detail += " (quarantined after " + std::to_string(attempt) +
                           (attempt == 1 ? " attempt)" : " attempts)");
          std::lock_guard lock(health_mutex);
          ++local.quarantined;
          local.quarantined_jobs.push_back(k);
        } else if (ever_failed) {
          std::lock_guard lock(health_mutex);
          ++local.recovered;
        }
        reports[k] = std::move(report);
        return;
      }
      // Retry with backoff: wider wall/node budgets, fresh seeds so a
      // deterministic crash trajectory is not replayed verbatim.
      {
        std::lock_guard lock(health_mutex);
        ++local.retries;
      }
      if (config.time_limit_ms > 0) {
        config.time_limit_ms = static_cast<std::int64_t>(
            static_cast<double>(config.time_limit_ms) *
            policy.retry_budget_multiplier);
      }
      if (config.max_nodes > 0) {
        config.max_nodes = static_cast<std::int64_t>(
            static_cast<double>(config.max_nodes) *
            policy.retry_budget_multiplier);
      }
      if (policy.retry_fresh_seed) {
        const auto salt = 0x9e3779b97f4a7c15ULL *
                          static_cast<std::uint64_t>(attempt);
        config.generic.seed ^= salt;
        config.localsearch.seed ^= salt ^ 0x517cc1b727220a95ULL;
      }
    }
  });

  std::sort(local.quarantined_jobs.begin(), local.quarantined_jobs.end());
  if (health != nullptr) *health = std::move(local);
  return reports;
}

std::vector<SolveReport> solve_batch(const std::vector<BatchJob>& jobs,
                                     std::size_t workers) {
  BatchPolicy policy;
  policy.workers = workers;
  return solve_batch(jobs, policy, nullptr);
}

}  // namespace mgrts::core
