#include "core/solve.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "csp/nogoods.hpp"
#include "encodings/csp1.hpp"
#include "flow/oracle.hpp"
#include "rt/validate.hpp"
#include "sim/simulator.hpp"
#include "support/deadline.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace mgrts::core {

const char* to_string(Method method) {
  switch (method) {
    case Method::kCsp1Generic: return "CSP1(generic)";
    case Method::kCsp2Generic: return "CSP2(generic)";
    case Method::kCsp2Dedicated: return "CSP2(dedicated)";
    case Method::kFlowOracle: return "flow-oracle";
    case Method::kEdfSimulation: return "EDF-sim";
    case Method::kLocalSearch: return "min-conflicts";
    case Method::kPortfolio: return "CSP2-portfolio";
  }
  return "?";
}

csp::SearchOptions choco_like_defaults(std::uint64_t seed) {
  csp::SearchOptions options;
  options.var_heuristic = csp::VarHeuristic::kDomWdeg;
  options.val_heuristic = csp::ValHeuristic::kRandom;
  options.random_var_ties = true;
  options.restart = csp::RestartPolicy::kLuby;
  options.restart_scale = 128;
  options.seed = seed;
  return options;
}

namespace {

/// Lifts the engine's nogood counters into the provenance shape.
NogoodStats to_nogood_stats(const csp::SolveStats& stats) {
  NogoodStats out;
  out.recorded = stats.nogoods_recorded;
  out.imported = stats.nogoods_imported;
  out.exported = stats.nogoods_exported;
  out.replay_hits = stats.nogood_props + stats.nogood_conflicts;
  out.lits_before = stats.nogood_lits_before;
  out.lits_after = stats.nogood_lits_after;
  out.lits_uip = stats.nogood_lits_uip;
  out.lits_ds = stats.nogood_lits_ds;
  out.subsumed = stats.nogoods_subsumed;
  out.lbd_refreshed = stats.nogood_lbd_refreshed;
  return out;
}

/// The terminal pipeline stage: dispatches to the requested search method.
/// ResourceError surfaces as kMemoryLimit (Table IV's "-"); structural
/// ValidationError (e.g. the flow oracle on a heterogeneous platform)
/// propagates to the caller as before.
class MethodBackend final : public Backend {
 public:
  explicit MethodBackend(Method method) : method_(method) {}

  [[nodiscard]] const char* name() const override {
    return core::to_string(method_);
  }

  [[nodiscard]] StageResult run(const rt::TaskSet& ts,
                                const rt::Platform& platform,
                                const SolveConfig& config,
                                const support::Deadline& deadline)
      const override {
    StageResult out;
    try {
      dispatch(ts, platform, config, deadline, out);
    } catch (const ResourceError& e) {
      out = StageResult{};
      out.verdict = Verdict::kMemoryLimit;
      out.detail = e.what();
    }
    return out;
  }

 private:
  void dispatch(const rt::TaskSet& ts, const rt::Platform& platform,
                const SolveConfig& config, const support::Deadline& deadline,
                StageResult& out) const {
    switch (method_) {
      case Method::kCsp1Generic: {
        auto model = enc::build_csp1(ts, platform, config.limits);
        csp::SearchOptions options = config.generic;
        options.deadline = deadline;
        options.max_nodes = config.max_nodes;
        const csp::SolveOutcome outcome = model.solver->solve(options);
        out.verdict = canonical_verdict(outcome.status);
        out.nodes = outcome.stats.nodes;
        out.failures = outcome.stats.failures;
        out.nogoods = to_nogood_stats(outcome.stats);
        if (outcome.status == csp::SolveStatus::kSat) {
          out.schedule = enc::decode_csp1(model, outcome.assignment);
        }
        break;
      }
      case Method::kCsp2Generic: {
        auto model = enc::build_csp2_generic(ts, platform,
                                             config.csp2_generic,
                                             config.limits);
        csp::SearchOptions options = config.generic;
        options.deadline = deadline;
        options.max_nodes = config.max_nodes;
        const csp::SolveOutcome outcome = model.solver->solve(options);
        out.verdict = canonical_verdict(outcome.status);
        out.nodes = outcome.stats.nodes;
        out.failures = outcome.stats.failures;
        out.nogoods = to_nogood_stats(outcome.stats);
        if (outcome.status == csp::SolveStatus::kSat) {
          out.schedule = enc::decode_csp2_generic(model, outcome.assignment);
        }
        break;
      }
      case Method::kCsp2Dedicated: {
        csp2::Options options = config.csp2;
        options.deadline = deadline;
        options.max_nodes = config.max_nodes;
        csp2::Result result = csp2::solve(ts, platform, options);
        out.verdict = canonical_verdict(result.status);
        out.complete = result.search_complete;
        out.nodes = result.stats.nodes;
        out.failures = result.stats.failures;
        out.schedule = std::move(result.schedule);
        break;
      }
      case Method::kFlowOracle: {
        flow::OracleResult oracle = flow::decide_feasibility(ts, platform);
        out.verdict = canonical_verdict(oracle.verdict);
        out.schedule = std::move(oracle.schedule);
        break;
      }
      case Method::kLocalSearch: {
        ls::Options options = config.localsearch;
        options.deadline = deadline;
        ls::Result result = ls::solve(ts, platform, options);
        out.verdict = canonical_verdict(result.status);
        out.complete = false;  // can never prove infeasibility (§VIII)
        out.nodes = result.stats.iterations;
        out.schedule = std::move(result.schedule);
        if (out.verdict != Verdict::kFeasible) {
          out.detail = "min-conflicts gave up at cost " +
                       std::to_string(result.stats.best_cost);
        }
        break;
      }
      case Method::kPortfolio: {
        // The caller's pipeline already ran its presolve stages in front of
        // this backend; the lanes must not repeat them, and their budget is
        // what remains of the caller's deadline, not a fresh clock.
        SolveConfig inner = config;
        inner.pipeline = PipelineOptions::none();
        inner.time_limit_ms = deadline.remaining_ms();
        PortfolioReport race = solve_portfolio(ts, platform, inner);
        out.verdict = race.report.verdict;
        out.complete = race.report.complete;
        out.schedule = std::move(race.report.schedule);
        out.nodes = race.report.nodes;
        out.failures = race.report.failures;
        out.nogoods = race.report.nogoods;
        out.decided_by = std::move(race.report.decided_by);
        out.detail =
            race.winner >= 0
                ? std::string("portfolio winner: ") +
                      race.lanes[static_cast<std::size_t>(race.winner)].label
                : std::string("portfolio: no lane decided");
        break;
      }
      case Method::kEdfSimulation: {
        sim::SimOptions options;
        options.policy = sim::Policy::kEdf;
        const sim::SimResult result = sim::simulate(ts, platform, options);
        out.complete = false;  // EDF is not an optimal global policy
        if (result.status == sim::SimStatus::kSchedulable) {
          out.verdict = Verdict::kFeasible;
          if (result.schedule.has_value()) {
            out.schedule = result.schedule;
          } else {
            // Schedulable with a steady state longer than one hyperperiod:
            // no compact witness to validate.
            out.detail = "schedulable; steady state period exceeds T";
          }
        } else {
          out.verdict = Verdict::kInfeasible;
          out.detail = std::string("EDF ") + sim::to_string(result.status);
        }
        break;
      }
    }
  }

  Method method_;
};

/// Witness validation shared by solve_instance and the portfolio's
/// presolve short-circuit: re-checks any schedule with the independent
/// validator and flags solver bugs loudly.
void validate_report(const rt::TaskSet& ts, const rt::Platform& platform,
                     const SolveConfig& config, SolveReport& report) {
  if (report.schedule.has_value() && config.validate_witness) {
    report.witness_valid =
        rt::is_valid_schedule(ts, platform, *report.schedule);
  } else if (report.schedule.has_value()) {
    report.witness_valid = true;  // validation skipped by request
  }

  // A "feasible" claim whose witness fails the validator is a solver bug;
  // surface it loudly in the detail string rather than silently trusting
  // it.
  if (report.verdict == Verdict::kFeasible && report.schedule.has_value() &&
      config.validate_witness && !report.witness_valid) {
    report.detail = "INVALID WITNESS: " +
                    rt::validate_schedule(ts, platform, *report.schedule)
                        .to_string();
  }
}

/// Lifts a pipeline stage/backend result into the public report shape.
SolveReport to_report(PipelineOutcome&& outcome) {
  SolveReport report;
  report.verdict = outcome.result.verdict;
  report.complete = outcome.result.complete;
  report.schedule = std::move(outcome.result.schedule);
  report.nodes = outcome.result.nodes;
  report.failures = outcome.result.failures;
  report.nogoods = outcome.result.nogoods;
  report.detail = std::move(outcome.result.detail);
  report.decided_by = std::move(outcome.decided_by);
  report.stage_times = std::move(outcome.stages);
  return report;
}

}  // namespace

SolveReport solve_instance(const rt::TaskSet& input,
                           const rt::Platform& platform,
                           const SolveConfig& config) {
  support::Stopwatch watch;

  // §VI-B: arbitrary-deadline systems are solved through their clone
  // expansion; every downstream component expects constrained deadlines.
  const bool cloned = !input.is_constrained();
  const rt::TaskSet ts = cloned ? input.to_constrained() : input;

  auto deadline = config.time_limit_ms < 0
                      ? support::Deadline()
                      : support::Deadline::after_ms(config.time_limit_ms);
  deadline.set_cancel(config.cancel);

  Pipeline pipeline = make_pipeline(config.pipeline);
  pipeline.set_backend(std::make_unique<MethodBackend>(config.method));
  SolveReport report = to_report(pipeline.run(ts, platform, config, deadline));
  if (cloned) report.solved_tasks = ts;

  validate_report(ts, platform, config, report);
  report.seconds = watch.seconds();
  return report;
}

PortfolioReport solve_portfolio(const rt::TaskSet& input,
                                const rt::Platform& platform,
                                const SolveConfig& config) {
  support::Stopwatch watch;

  const bool cloned = !input.is_constrained();
  const rt::TaskSet ts = cloned ? input.to_constrained() : input;

  auto race_deadline = config.time_limit_ms < 0
                           ? support::Deadline()
                           : support::Deadline::after_ms(config.time_limit_ms);
  race_deadline.set_cancel(config.cancel);

  PortfolioReport out;

  // Presolve prefilter: the pipeline stages run once, before any lane
  // launches.  A decisive stage answer is the portfolio's answer — no lane
  // ever starts, which is where the flow oracle converts whole identical-
  // platform workloads into polynomial time.
  {
    PipelineOutcome pre =
        make_pipeline(config.pipeline).run_stages(ts, platform, race_deadline);
    out.presolve = pre.stages;
    if (pre.result.decisive()) {
      out.report = to_report(std::move(pre));
      if (cloned) out.report.solved_tasks = ts;
      validate_report(ts, platform, config, out.report);
      out.report.seconds = watch.seconds();
      out.seconds = watch.seconds();
      return out;
    }
  }

  struct Lane {
    std::string label;
    SolveConfig config;
  };
  std::vector<Lane> lanes;

  // Lanes never re-run the presolve stages (they just ran above), race over
  // what remains of this call's wall budget (a fresh clock would let the
  // race overshoot it by whatever presolve consumed), and the lane methods
  // are concrete, so no recursion.
  SolveConfig lane_base = config;
  lane_base.pipeline = PipelineOptions::none();
  lane_base.time_limit_ms = race_deadline.remaining_ms();

  // The four dedicated value-order lanes, configured like exp::csp2_spec.
  for (const csp2::ValueOrder order : csp2::informed_value_orders()) {
    Lane lane;
    lane.label = csp2::to_string(order);
    lane.config = lane_base;
    lane.config.method = Method::kCsp2Dedicated;
    lane.config.csp2.value_order = order;
    if (config.portfolio.paper_faithful) {
      lane.config.csp2.slack_prune = false;
      lane.config.csp2.tight_demand_prune = false;
    }
    lanes.push_back(std::move(lane));
  }

  // Anticorrelated lane: the same dedicated search with this repo's
  // slack/demand prunes ON — where the paper-faithful lanes all time out on
  // an infeasible instance, this lane often proves it instantly.
  if (config.portfolio.pruned_lane) {
    Lane lane;
    lane.label = "CSP2+(D-C)+prunes";
    lane.config = lane_base;
    lane.config.method = Method::kCsp2Dedicated;
    lane.config.csp2.value_order = csp2::ValueOrder::kDMinusC;
    lane.config.csp2.slack_prune = true;
    lane.config.csp2.tight_demand_prune = true;
    lanes.push_back(std::move(lane));
  }

  // Anticorrelated lane: min-conflicts local search — a SAT specialist for
  // feasible instances the tree searches thrash on.  Identical platforms
  // only (ls::solve's domain); its kUnknown give-up is never decisive.
  if (config.portfolio.local_search_lane && platform.is_identical()) {
    Lane lane;
    lane.label = "min-conflicts";
    lane.config = lane_base;
    lane.config.method = Method::kLocalSearch;
    lane.config.localsearch.seed =
        config.localsearch.seed ^ (config.generic.seed * 0x9e3779b97f4a7c15ULL);
    lanes.push_back(std::move(lane));
  }

  // Randomized generic lanes: Choco-like strategy with Luby restarts and
  // nogood recording; all lanes share one pool read-only (each lane only
  // imports what the others published).  The pool outlives the race — the
  // parallel_for_index below joins every lane before this frame returns.
  csp::NogoodPool pool;
  const bool share =
      config.portfolio.share_nogoods && config.portfolio.random_lanes > 0;
  for (std::int32_t r = 0; r < config.portfolio.random_lanes; ++r) {
    Lane lane;
    lane.label = "CSP2(generic)+rand" + std::to_string(r);
    lane.config = lane_base;
    lane.config.method = Method::kCsp2Generic;
    lane.config.generic = choco_like_defaults(
        config.generic.seed ^
        (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(r + 1)));
    lane.config.generic.nogoods = true;
    // The caller's learning knobs survive the strategy reset, so shrink
    // ablations (and LBD / database-size cuts) reach the racing lanes.
    lane.config.generic.nogood_shrink = config.generic.nogood_shrink;
    lane.config.generic.nogood_max_length = config.generic.nogood_max_length;
    lane.config.generic.nogood_max_lbd = config.generic.nogood_max_lbd;
    lane.config.generic.nogood_db_limit = config.generic.nogood_db_limit;
    if (share) {
      lane.config.generic.nogood_pool = &pool;
      lane.config.generic.nogood_lane = r;
    }
    lane.config.limits.max_variables =
        std::min(config.limits.max_variables,
                 config.portfolio.random_lane_max_variables);
    lanes.push_back(std::move(lane));
  }

  // Linked to the caller's token (when engaged) so an external cancel of
  // the portfolio run still aborts every lane; the winner's cancel only
  // fires the race-local flag.
  const support::CancelToken token =
      config.cancel.engaged() ? support::CancelToken::linked(config.cancel)
                              : support::CancelToken::make();
  for (Lane& lane : lanes) lane.config.cancel = token;

  std::vector<SolveReport> reports(lanes.size());
  std::vector<std::exception_ptr> errors(lanes.size());
  // One thread per lane by default: the race mechanism is overlapping
  // wall-clock deadlines, which deliberate oversubscription preserves even
  // on a single hardware thread (parallel_for_index honors workers beyond
  // the shared pool with a dedicated pool).
  const std::size_t workers = config.portfolio.workers == 0
                                  ? lanes.size()
                                  : config.portfolio.workers;
  support::parallel_for_index(lanes.size(), workers, [&](std::size_t k) {
    try {
      reports[k] = solve_instance(ts, platform, lanes[k].config);
      if (decisive(reports[k].verdict, reports[k].complete)) {
        token.cancel();  // decisive: the race is over, stop the losers
      }
    } catch (...) {
      errors[k] = std::current_exception();
    }
  });
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }

  out.lanes.reserve(lanes.size());
  for (std::size_t k = 0; k < lanes.size(); ++k) {
    out.lanes.push_back(LaneOutcome{lanes[k].label, reports[k].verdict,
                                    reports[k].seconds, reports[k].nodes});
    if (!decisive(reports[k].verdict, reports[k].complete)) continue;
    if (out.winner < 0 ||
        reports[k].seconds <
            reports[static_cast<std::size_t>(out.winner)].seconds) {
      out.winner = static_cast<std::int32_t>(k);
    }
  }
  out.report = out.winner >= 0
                   ? reports[static_cast<std::size_t>(out.winner)]
                   : reports.front();
  // Honest provenance either way: the winning lane, or an explicit "none"
  // instead of whatever backend label lane 0's undecided run carried.
  out.report.decided_by =
      out.winner >= 0
          ? "portfolio:" + lanes[static_cast<std::size_t>(out.winner)].label
          : std::string("portfolio:none");
  // Provenance for callers that only see the headline report: the presolve
  // stages ran (undecided) before the race.
  out.report.stage_times.insert(out.report.stage_times.begin(),
                                out.presolve.begin(), out.presolve.end());
  if (cloned) out.report.solved_tasks = ts;
  out.seconds = watch.seconds();
  return out;
}

std::vector<SolveReport> solve_batch(const std::vector<BatchJob>& jobs,
                                     std::size_t workers) {
  std::vector<SolveReport> reports(jobs.size());
  std::vector<std::exception_ptr> errors(jobs.size());
  support::parallel_for_index(jobs.size(), workers, [&](std::size_t k) {
    try {
      reports[k] = solve_instance(jobs[k].tasks, jobs[k].platform,
                                  jobs[k].config);
    } catch (...) {
      errors[k] = std::current_exception();
    }
  });
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  return reports;
}

}  // namespace mgrts::core
