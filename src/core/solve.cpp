#include "core/solve.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "csp/nogoods.hpp"
#include "encodings/csp1.hpp"
#include "flow/oracle.hpp"
#include "rt/validate.hpp"
#include "sim/simulator.hpp"
#include "support/deadline.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace mgrts::core {

const char* to_string(Method method) {
  switch (method) {
    case Method::kCsp1Generic: return "CSP1(generic)";
    case Method::kCsp2Generic: return "CSP2(generic)";
    case Method::kCsp2Dedicated: return "CSP2(dedicated)";
    case Method::kFlowOracle: return "flow-oracle";
    case Method::kEdfSimulation: return "EDF-sim";
    case Method::kPortfolio: return "CSP2-portfolio";
  }
  return "?";
}

const char* to_string(Verdict verdict) {
  switch (verdict) {
    case Verdict::kFeasible: return "feasible";
    case Verdict::kInfeasible: return "infeasible";
    case Verdict::kTimeout: return "timeout";
    case Verdict::kNodeLimit: return "node-limit";
    case Verdict::kMemoryLimit: return "memory-limit";
  }
  return "?";
}

csp::SearchOptions choco_like_defaults(std::uint64_t seed) {
  csp::SearchOptions options;
  options.var_heuristic = csp::VarHeuristic::kDomWdeg;
  options.val_heuristic = csp::ValHeuristic::kRandom;
  options.random_var_ties = true;
  options.restart = csp::RestartPolicy::kLuby;
  options.restart_scale = 128;
  options.seed = seed;
  return options;
}

namespace {

Verdict from_generic(csp::SolveStatus status) {
  switch (status) {
    case csp::SolveStatus::kSat: return Verdict::kFeasible;
    case csp::SolveStatus::kUnsat: return Verdict::kInfeasible;
    case csp::SolveStatus::kTimeout: return Verdict::kTimeout;
    case csp::SolveStatus::kNodeLimit: return Verdict::kNodeLimit;
    case csp::SolveStatus::kMemoryLimit: return Verdict::kMemoryLimit;
  }
  return Verdict::kInfeasible;
}

Verdict from_csp2(csp2::Status status) {
  switch (status) {
    case csp2::Status::kFeasible: return Verdict::kFeasible;
    case csp2::Status::kInfeasible: return Verdict::kInfeasible;
    case csp2::Status::kTimeout: return Verdict::kTimeout;
    case csp2::Status::kNodeLimit: return Verdict::kNodeLimit;
  }
  return Verdict::kInfeasible;
}

}  // namespace

SolveReport solve_instance(const rt::TaskSet& input,
                           const rt::Platform& platform,
                           const SolveConfig& config) {
  support::Stopwatch watch;
  SolveReport report;

  // §VI-B: arbitrary-deadline systems are solved through their clone
  // expansion; every downstream component expects constrained deadlines.
  const bool cloned = !input.is_constrained();
  const rt::TaskSet ts = cloned ? input.to_constrained() : input;
  if (cloned) report.solved_tasks = ts;

  auto deadline = config.time_limit_ms < 0
                      ? support::Deadline()
                      : support::Deadline::after_ms(config.time_limit_ms);
  deadline.set_cancel(config.cancel);

  try {
    switch (config.method) {
      case Method::kCsp1Generic: {
        auto model = enc::build_csp1(ts, platform, config.limits);
        csp::SearchOptions options = config.generic;
        options.deadline = deadline;
        options.max_nodes = config.max_nodes;
        const csp::SolveOutcome outcome = model.solver->solve(options);
        report.verdict = from_generic(outcome.status);
        report.nodes = outcome.stats.nodes;
        report.failures = outcome.stats.failures;
        if (outcome.status == csp::SolveStatus::kSat) {
          report.schedule = enc::decode_csp1(model, outcome.assignment);
        }
        break;
      }
      case Method::kCsp2Generic: {
        auto model =
            enc::build_csp2_generic(ts, platform, config.csp2_generic,
                                    config.limits);
        csp::SearchOptions options = config.generic;
        options.deadline = deadline;
        options.max_nodes = config.max_nodes;
        const csp::SolveOutcome outcome = model.solver->solve(options);
        report.verdict = from_generic(outcome.status);
        report.nodes = outcome.stats.nodes;
        report.failures = outcome.stats.failures;
        if (outcome.status == csp::SolveStatus::kSat) {
          report.schedule = enc::decode_csp2_generic(model, outcome.assignment);
        }
        break;
      }
      case Method::kCsp2Dedicated: {
        csp2::Options options = config.csp2;
        options.deadline = deadline;
        options.max_nodes = config.max_nodes;
        csp2::Result result = csp2::solve(ts, platform, options);
        report.verdict = from_csp2(result.status);
        report.complete = result.search_complete;
        report.nodes = result.stats.nodes;
        report.failures = result.stats.failures;
        report.schedule = std::move(result.schedule);
        break;
      }
      case Method::kFlowOracle: {
        flow::OracleResult oracle = flow::decide_feasibility(ts, platform);
        report.verdict = oracle.verdict == flow::OracleVerdict::kFeasible
                             ? Verdict::kFeasible
                             : Verdict::kInfeasible;
        report.schedule = std::move(oracle.schedule);
        break;
      }
      case Method::kPortfolio: {
        // ts is already constrained, so the lanes' own clone expansion is a
        // no-op; the lane methods are concrete, so no recursion.
        const PortfolioReport race = solve_portfolio(ts, platform, config);
        report = race.report;
        report.detail =
            race.winner >= 0
                ? std::string("portfolio winner: ") +
                      race.lanes[static_cast<std::size_t>(race.winner)].label
                : std::string("portfolio: no lane decided");
        if (cloned) report.solved_tasks = ts;
        break;
      }
      case Method::kEdfSimulation: {
        sim::SimOptions options;
        options.policy = sim::Policy::kEdf;
        const sim::SimResult result = sim::simulate(ts, platform, options);
        report.complete = false;  // EDF is not an optimal global policy
        if (result.status == sim::SimStatus::kSchedulable) {
          report.verdict = Verdict::kFeasible;
          if (result.schedule.has_value()) {
            report.schedule = result.schedule;
          } else {
            // Schedulable with a steady state longer than one hyperperiod:
            // no compact witness to validate.
            report.detail = "schedulable; steady state period exceeds T";
          }
        } else {
          report.verdict = Verdict::kInfeasible;
          report.detail = std::string("EDF ") + sim::to_string(result.status);
        }
        break;
      }
    }
  } catch (const ResourceError& e) {
    report.verdict = Verdict::kMemoryLimit;
    report.detail = e.what();
    report.seconds = watch.seconds();
    return report;
  }

  if (report.schedule.has_value() && config.validate_witness) {
    report.witness_valid =
        rt::is_valid_schedule(ts, platform, *report.schedule);
  } else if (report.schedule.has_value()) {
    report.witness_valid = true;  // validation skipped by request
  }

  // A "feasible" claim without a checkable or valid witness is a solver bug;
  // surface it loudly in the detail string rather than silently trusting it.
  if (report.verdict == Verdict::kFeasible && report.schedule.has_value() &&
      config.validate_witness && !report.witness_valid) {
    report.detail = "INVALID WITNESS: " +
                    rt::validate_schedule(ts, platform, *report.schedule)
                        .to_string();
  }

  report.seconds = watch.seconds();
  return report;
}

PortfolioReport solve_portfolio(const rt::TaskSet& ts,
                                const rt::Platform& platform,
                                const SolveConfig& config) {
  support::Stopwatch watch;

  struct Lane {
    std::string label;
    SolveConfig config;
  };
  std::vector<Lane> lanes;

  // The four dedicated value-order lanes, configured like exp::csp2_spec.
  for (const csp2::ValueOrder order : csp2::informed_value_orders()) {
    Lane lane;
    lane.label = csp2::to_string(order);
    lane.config = config;
    lane.config.method = Method::kCsp2Dedicated;
    lane.config.csp2.value_order = order;
    if (config.portfolio.paper_faithful) {
      lane.config.csp2.slack_prune = false;
      lane.config.csp2.tight_demand_prune = false;
    }
    lanes.push_back(std::move(lane));
  }

  // Randomized generic lanes: Choco-like strategy with Luby restarts and
  // nogood recording; all lanes share one pool read-only (each lane only
  // imports what the others published).  The pool outlives the race — the
  // parallel_for_index below joins every lane before this frame returns.
  csp::NogoodPool pool;
  const bool share =
      config.portfolio.share_nogoods && config.portfolio.random_lanes > 0;
  for (std::int32_t r = 0; r < config.portfolio.random_lanes; ++r) {
    Lane lane;
    lane.label = "CSP2(generic)+rand" + std::to_string(r);
    lane.config = config;
    lane.config.method = Method::kCsp2Generic;
    lane.config.generic = choco_like_defaults(
        config.generic.seed ^
        (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(r + 1)));
    lane.config.generic.nogoods = true;
    if (share) {
      lane.config.generic.nogood_pool = &pool;
      lane.config.generic.nogood_lane = r;
    }
    lane.config.limits.max_variables =
        std::min(config.limits.max_variables,
                 config.portfolio.random_lane_max_variables);
    lanes.push_back(std::move(lane));
  }

  // Linked to the caller's token (when engaged) so an external cancel of
  // the portfolio run still aborts every lane; the winner's cancel only
  // fires the race-local flag.
  const support::CancelToken token =
      config.cancel.engaged() ? support::CancelToken::linked(config.cancel)
                              : support::CancelToken::make();
  for (Lane& lane : lanes) lane.config.cancel = token;

  PortfolioReport out;
  std::vector<SolveReport> reports(lanes.size());
  std::vector<std::exception_ptr> errors(lanes.size());
  // One thread per lane by default: the race mechanism is overlapping
  // wall-clock deadlines, which deliberate oversubscription preserves even
  // on a single hardware thread (parallel_for_index honors workers beyond
  // the shared pool with a dedicated pool).
  const std::size_t workers = config.portfolio.workers == 0
                                  ? lanes.size()
                                  : config.portfolio.workers;
  support::parallel_for_index(lanes.size(), workers, [&](std::size_t k) {
    try {
      reports[k] = solve_instance(ts, platform, lanes[k].config);
      const Verdict v = reports[k].verdict;
      if (v == Verdict::kFeasible ||
          (v == Verdict::kInfeasible && reports[k].complete)) {
        token.cancel();  // decisive: the race is over, stop the losers
      }
    } catch (...) {
      errors[k] = std::current_exception();
    }
  });
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }

  out.lanes.reserve(lanes.size());
  for (std::size_t k = 0; k < lanes.size(); ++k) {
    out.lanes.push_back(LaneOutcome{lanes[k].label, reports[k].verdict,
                                    reports[k].seconds, reports[k].nodes});
    const Verdict v = reports[k].verdict;
    const bool decisive =
        v == Verdict::kFeasible ||
        (v == Verdict::kInfeasible && reports[k].complete);
    if (!decisive) continue;
    if (out.winner < 0 ||
        reports[k].seconds <
            reports[static_cast<std::size_t>(out.winner)].seconds) {
      out.winner = static_cast<std::int32_t>(k);
    }
  }
  out.report = out.winner >= 0
                   ? reports[static_cast<std::size_t>(out.winner)]
                   : reports.front();
  out.seconds = watch.seconds();
  return out;
}

std::vector<SolveReport> solve_batch(const std::vector<BatchJob>& jobs,
                                     std::size_t workers) {
  std::vector<SolveReport> reports(jobs.size());
  std::vector<std::exception_ptr> errors(jobs.size());
  support::parallel_for_index(jobs.size(), workers, [&](std::size_t k) {
    try {
      reports[k] = solve_instance(jobs[k].tasks, jobs[k].platform,
                                  jobs[k].config);
    } catch (...) {
      errors[k] = std::current_exception();
    }
  });
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  return reports;
}

}  // namespace mgrts::core
