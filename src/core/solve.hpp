// Public facade: solve one MGRTS instance with a chosen method, through
// the staged presolve->backend pipeline (core/pipeline.hpp).
//
// Backends (Method):
//   kCsp1Generic    — the paper's CSP1 route: boolean encoding (§IV) handed
//                     to the generic engine (src/csp) with a randomized
//                     Choco-like default strategy;
//   kCsp2Generic    — CSP2's multi-valued encoding (§V) on the generic
//                     engine (ablation: encoding vs. dedicated search);
//   kCsp2Dedicated  — the paper's CSP2 solver with hand-made search (§V-C);
//   kFlowOracle     — exact polynomial feasibility via max-flow (identical
//                     platforms; this repo's ground-truth baseline);
//   kLocalSearch    — min-conflicts over the CSP formalization (§VIII's
//                     first future-work bullet; finds witnesses, proves
//                     nothing — kUnknown when it gives up);
//   kEdfSimulation  — global EDF baseline (incomplete: a deadline miss does
//                     not prove infeasibility).
//
// Every method runs behind the presolve stages selected by
// `SolveConfig::pipeline` (exact analytical tests and the flow oracle by
// default), so cheap proofs short-circuit search uniformly;
// `SolveReport::decided_by` records which stage or backend answered.
// `PipelineOptions::none()` restores the paper-faithful direct-method
// behavior (exp::paper_lineup uses it).
//
// Arbitrary-deadline task sets are clone-expanded (§VI-B) transparently;
// the report then carries the constrained clone system the schedule refers
// to.  All feasible witnesses are re-checked by the independent validator
// unless `validate_witness` is disabled.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "core/verdict.hpp"
#include "csp/options.hpp"
#include "csp2/csp2.hpp"
#include "encodings/csp2_generic.hpp"
#include "localsearch/min_conflicts.hpp"
#include "rt/platform.hpp"
#include "rt/schedule.hpp"
#include "rt/task_set.hpp"

namespace mgrts::core {

enum class Method {
  kCsp1Generic,
  kCsp2Generic,
  kCsp2Dedicated,
  kFlowOracle,
  kEdfSimulation,
  kLocalSearch,  ///< min-conflicts (feasible-only; kUnknown when it gives up)
  kPortfolio,    ///< race diversified lanes (below) behind shared presolve
};

[[nodiscard]] const char* to_string(Method method);

/// Lane line-up knobs for Method::kPortfolio / solve_portfolio.
struct PortfolioConfig {
  /// Randomized generic-engine lanes (CSP2-generic encoding, Choco-like
  /// strategy, Luby restarts, nogood recording) raced alongside the four
  /// dedicated value-order lanes.  0 disables them — right for workloads
  /// whose m*T variable counts price the generic encoding out (Table IV).
  std::int32_t random_lanes = 1;
  /// Randomized lanes publish/import nogoods through one shared pool.
  bool share_nogoods = true;
  /// Configure the dedicated lanes exactly as §V-C describes them (no
  /// slack/demand pruning extensions), like exp::csp2_spec.
  bool paper_faithful = true;
  /// Anticorrelated extra lane: CSP2+(D-C) with the slack/demand prunes ON
  /// — converts many of the paper-faithful lanes' shared timeouts into
  /// infeasibility proofs (see bench_ablation_csp2_rules).
  bool pruned_lane = true;
  /// Anticorrelated extra lane: min-conflicts local search — finds feasible
  /// witnesses where tree search thrashes (identical platforms only; the
  /// lane is skipped elsewhere).
  bool local_search_lane = true;
  /// Variable budget for the randomized generic lanes; keeps a lane from
  /// burning the whole race budget building a model it cannot search.
  std::int64_t random_lane_max_variables = 250'000;
  /// Thread fan-out for the race; 0 = one thread per lane (deliberate
  /// oversubscription: lanes share wall-clock deadlines, so racing works
  /// even on a single hardware thread).
  std::size_t workers = 0;
  /// Progress-heartbeat watchdog: a lane that has started searching but
  /// whose heartbeat (ticked at every deadline poll) stands still for this
  /// long is cancelled through its per-lane token, so the race continues
  /// with the survivors.  0 disables the watchdog.  The default is generous
  /// — normal lanes poll every few thousand nodes, so only a genuinely
  /// wedged lane (or an injected kStall fault) trips it.
  std::int64_t watchdog_stall_ms = 1'000;
};

struct SolveConfig {
  Method method = Method::kCsp2Dedicated;

  /// Wall-clock budget for build + search; -1 = unlimited.
  std::int64_t time_limit_ms = -1;
  /// Node budget for the searching methods; -1 = unlimited.
  std::int64_t max_nodes = -1;

  /// Presolve stages run in front of the backend (short-circuit on any
  /// decisive answer).  Default: analysis + flow oracle.
  PipelineOptions pipeline;

  /// Knobs for kCsp2Dedicated (deadline/max_nodes fields are overridden by
  /// the budgets above).
  csp2::Options csp2;
  /// Knobs for the generic engine (kCsp1Generic / kCsp2Generic).
  csp::SearchOptions generic;
  /// Encoding options for kCsp2Generic.
  enc::Csp2GenericOptions csp2_generic;
  /// Knobs for kLocalSearch (deadline is overridden by the budgets above).
  ls::Options localsearch;
  /// Variable budget for generic models (Choco-OOM stand-in).
  csp::SolverLimits limits;
  /// Lane knobs for Method::kPortfolio (seeds derive from generic.seed).
  PortfolioConfig portfolio;

  /// Cooperative cancellation: when engaged, the run aborts (reporting
  /// kTimeout) at its next deadline poll after the token is cancelled.
  support::CancelToken cancel;

  /// Progress heartbeat: when set, the run's deadline ticks this counter at
  /// every cooperative poll, so an external watchdog (the portfolio's) can
  /// tell a searching run from a wedged one.
  std::shared_ptr<std::atomic<std::uint64_t>> heartbeat;

  /// Re-check feasible witnesses with the independent validator.
  bool validate_witness = true;
};

/// A Choco-like default line-up for CSP1: dom/wdeg, random value order and
/// tie-breaking, Luby restarts.  §VII-B's observation that CSP1 runs vary
/// between executions corresponds to varying `seed`.
[[nodiscard]] csp::SearchOptions choco_like_defaults(std::uint64_t seed);

struct SolveReport {
  Verdict verdict = Verdict::kInfeasible;
  std::optional<rt::Schedule> schedule;  ///< present iff a witness exists

  /// The constrained-deadline system the schedule refers to (differs from
  /// the input when clones were expanded).
  std::optional<rt::TaskSet> solved_tasks;

  /// True when the witness passed the independent validator (always true
  /// for witness-backed kFeasible results unless validation was disabled).
  /// Analytical stages can prove feasibility without constructing a
  /// witness (detail says which test); schedule is then absent.
  bool witness_valid = false;

  /// For kInfeasible: whether the verdict is a proof.  False for the EDF
  /// baseline and for rule-1 CSP2 searches on heterogeneous platforms
  /// (csp2.hpp header discussion).
  bool complete = true;

  /// Why a non-decisive verdict happened (DESIGN.md §12): kDeadline /
  /// kCancelled / kMemory / kNodeBudget for budget outcomes, kInternalError
  /// or kFaultInjected for contained exceptions.  kNone for decisive
  /// answers and plain incomplete give-ups.
  FailureCause cause = FailureCause::kNone;

  /// Provenance: which pipeline stage or backend produced the verdict —
  /// "analysis:<test>", "flow-oracle", "csp2-presolve",
  /// "backend:<method>", or "portfolio:<lane>".
  std::string decided_by;
  /// Stages (and the backend) in execution order, with verdict and wall
  /// time each.
  std::vector<StageTiming> stage_times;

  double seconds = 0.0;
  std::int64_t nodes = 0;
  std::int64_t failures = 0;
  /// Nogood-learning stats of the deciding backend (zeros unless a
  /// generic-engine method with SearchOptions::nogoods ran).
  NogoodStats nogoods;
  /// Per-propagator wake/run/prune rows of the deciding backend (empty
  /// unless a generic-engine method ran; seconds only under
  /// SearchOptions::prop_profile).
  std::vector<PropagatorStats> propagators;
  std::string detail;  ///< human-readable note (e.g. memory-limit reason)
};

/// Solves the instance.  Throws ValidationError for structurally invalid
/// requests (e.g. the flow oracle on a heterogeneous platform).
[[nodiscard]] SolveReport solve_instance(const rt::TaskSet& ts,
                                         const rt::Platform& platform,
                                         const SolveConfig& config = {});

/// Per-lane outcome of a portfolio race (losers report kTimeout once the
/// winner cancels them — indistinguishable from a genuine budget expiry,
/// which is exactly the cooperative-cancellation contract).
struct LaneOutcome {
  std::string label;
  Verdict verdict = Verdict::kTimeout;
  FailureCause cause = FailureCause::kNone;
  double seconds = 0.0;
  std::int64_t nodes = 0;
  /// True when the progress watchdog cancelled this lane for a stalled
  /// heartbeat (the race continued with the survivors).
  bool watchdog_cancelled = false;
};

struct PortfolioReport {
  /// The decisive report: the presolve stages' when they decided before
  /// any lane launched (winner == -1, lanes empty), else the winning
  /// lane's; when nobody decides, lane 0's report (a timeout) so callers
  /// can treat this like any SolveReport.
  SolveReport report;
  std::int32_t winner = -1;  ///< index into lanes; -1 = no lane decided
  std::vector<LaneOutcome> lanes;
  /// Presolve stage timings (also mirrored into report.stage_times).
  std::vector<StageTiming> presolve;
  double seconds = 0.0;  ///< race wall time (not the sum over lanes)
};

/// Races the diversified lane line-up behind the shared presolve stages:
/// the four informed CSP2 value orders (dedicated solver, paper-faithful),
/// a slack/demand-pruned CSP2 lane, a min-conflicts local-search lane
/// (identical platforms), and `config.portfolio.random_lanes` randomized
/// generic lanes — Choco-like strategy with Luby restarts and nogood
/// recording, sharing one nogood pool read-only — over the solve_batch
/// thread pool.  The presolve stages of `config.pipeline` run once before
/// any lane launches; when they decide, no lane runs at all.  Otherwise the
/// first lane with a decisive verdict (feasible, or a complete
/// infeasibility proof) cancels the rest through the shared token; the
/// winner's stats are reported.  Uses config.time_limit_ms / max_nodes /
/// csp2 / generic / portfolio; config.method is ignored.  Also reachable as
/// Method::kPortfolio through solve_instance, which makes portfolios
/// batchable by the harness.
[[nodiscard]] PortfolioReport solve_portfolio(const rt::TaskSet& ts,
                                              const rt::Platform& platform,
                                              const SolveConfig& config = {});

/// One unit of batch work: an instance plus the configuration to solve it
/// with (so a batch can mix methods, budgets, and seeds).
struct BatchJob {
  rt::TaskSet tasks;
  rt::Platform platform;
  SolveConfig config;
};

/// Failure-handling policy for solve_batch (DESIGN.md §12).
struct BatchPolicy {
  /// Thread fan-out, as in support::parallel_for_index (0 = all hardware
  /// threads, 1 = sequential).
  std::size_t workers = 0;
  /// Total attempts per job (1 = no retry).  Only crash-type failures
  /// (kMemory, kInternalError, kFaultInjected) are retried; budget
  /// outcomes (deadline, node limit, cancellation) are legitimate results.
  std::int32_t max_attempts = 1;
  /// Each retry scales the job's time_limit_ms and max_nodes by this
  /// factor — transient memory pressure and timing races get more room.
  double retry_budget_multiplier = 2.0;
  /// Re-derive the generic/localsearch seeds per attempt so a retry does
  /// not deterministically replay the failing trajectory.
  bool retry_fresh_seed = true;
};

/// Aggregate failure accounting for one solve_batch call.
struct BatchHealth {
  std::int64_t failures = 0;    ///< runs that ended in a crash-type cause
  std::int64_t retries = 0;     ///< re-attempts actually launched
  std::int64_t recovered = 0;   ///< jobs whose retry produced a clean report
  std::int64_t quarantined = 0; ///< jobs that exhausted every attempt
  std::vector<std::size_t> quarantined_jobs;  ///< their indices, ascending
  std::string first_error;      ///< first contained failure, human-readable
};

/// Solves every job, fanning the independent runs over the shared thread
/// pool.  Each run stays single-threaded and deterministic, and results[k]
/// always belongs to jobs[k] regardless of worker scheduling.
///
/// Containment contract: a job is never lost and never poisons the batch.
/// A run that throws (ValidationError included) is captured as a kUnknown
/// report carrying its FailureCause and detail; crash-type failures are
/// retried per `policy` (wider budgets, fresh seeds) and jobs that exhaust
/// every attempt are quarantined — their last contained report stands, and
/// `health` (optional) records failures/retries/recoveries/quarantines.
[[nodiscard]] std::vector<SolveReport> solve_batch(
    const std::vector<BatchJob>& jobs, const BatchPolicy& policy,
    BatchHealth* health = nullptr);

/// Convenience overload with the default policy (no retries).  Kept for
/// existing call sites; unlike the pre-hardening behavior it captures
/// failures into reports instead of rethrowing.
[[nodiscard]] std::vector<SolveReport> solve_batch(
    const std::vector<BatchJob>& jobs, std::size_t workers = 0);

}  // namespace mgrts::core
