#include "core/verdict.hpp"

#include "analysis/tests.hpp"
#include "csp/options.hpp"
#include "csp2/csp2.hpp"
#include "flow/oracle.hpp"
#include "localsearch/min_conflicts.hpp"

namespace mgrts::core {

const char* to_string(Verdict verdict) {
  switch (verdict) {
    case Verdict::kFeasible: return "feasible";
    case Verdict::kInfeasible: return "infeasible";
    case Verdict::kTimeout: return "timeout";
    case Verdict::kNodeLimit: return "node-limit";
    case Verdict::kMemoryLimit: return "memory-limit";
    case Verdict::kUnknown: return "unknown";
  }
  return "?";
}

const char* to_string(FailureCause cause) {
  switch (cause) {
    case FailureCause::kNone: return "none";
    case FailureCause::kDeadline: return "deadline";
    case FailureCause::kCancelled: return "cancelled";
    case FailureCause::kMemory: return "memory";
    case FailureCause::kNodeBudget: return "node-budget";
    case FailureCause::kInternalError: return "internal-error";
    case FailureCause::kFaultInjected: return "fault-injected";
  }
  return "?";
}

Verdict canonical_verdict(csp::SolveStatus status) {
  switch (status) {
    case csp::SolveStatus::kSat: return Verdict::kFeasible;
    case csp::SolveStatus::kUnsat: return Verdict::kInfeasible;
    case csp::SolveStatus::kTimeout: return Verdict::kTimeout;
    case csp::SolveStatus::kNodeLimit: return Verdict::kNodeLimit;
    case csp::SolveStatus::kMemoryLimit: return Verdict::kMemoryLimit;
  }
  return Verdict::kUnknown;
}

Verdict canonical_verdict(csp2::Status status) {
  switch (status) {
    case csp2::Status::kFeasible: return Verdict::kFeasible;
    case csp2::Status::kInfeasible: return Verdict::kInfeasible;
    case csp2::Status::kTimeout: return Verdict::kTimeout;
    case csp2::Status::kNodeLimit: return Verdict::kNodeLimit;
  }
  return Verdict::kUnknown;
}

Verdict canonical_verdict(flow::OracleVerdict verdict) {
  return verdict == flow::OracleVerdict::kFeasible ? Verdict::kFeasible
                                                   : Verdict::kInfeasible;
}

Verdict canonical_verdict(analysis::TestVerdict verdict) {
  switch (verdict) {
    case analysis::TestVerdict::kFeasible: return Verdict::kFeasible;
    case analysis::TestVerdict::kInfeasible: return Verdict::kInfeasible;
    case analysis::TestVerdict::kUnknown: return Verdict::kUnknown;
  }
  return Verdict::kUnknown;
}

Verdict canonical_verdict(ls::Status status) {
  switch (status) {
    case ls::Status::kFeasible: return Verdict::kFeasible;
    case ls::Status::kUnknown: return Verdict::kUnknown;
    case ls::Status::kTimeout: return Verdict::kTimeout;
  }
  return Verdict::kUnknown;
}

}  // namespace mgrts::core
