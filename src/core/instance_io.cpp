#include "core/instance_io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "support/error.hpp"

namespace mgrts::core {

namespace {

[[noreturn]] void fail(int line, const std::string& message) {
  throw ParseError("instance line " + std::to_string(line) + ": " + message);
}

/// Reads the next content line (skipping blanks/comments); returns false at
/// end of stream.
bool next_line(std::istream& in, std::string& out, int& line_no) {
  std::string raw;
  while (std::getline(in, raw)) {
    ++line_no;
    const auto first = raw.find_first_not_of(" \t\r");
    if (first == std::string::npos || raw[first] == '#') continue;
    const auto last = raw.find_last_not_of(" \t\r");
    out = raw.substr(first, last - first + 1);
    return true;
  }
  return false;
}

}  // namespace

InstanceFile read_instance(std::istream& in) {
  int line_no = 0;
  std::string line;

  auto expect_keyword_value = [&](const std::string& text,
                                  const std::string& keyword) {
    std::istringstream ss(text);
    std::string word;
    ss >> word;
    if (word != keyword) {
      fail(line_no, "expected '" + keyword + " <value>', got '" + text + "'");
    }
    std::int64_t value = 0;
    if (!(ss >> value)) fail(line_no, "expected an integer after " + keyword);
    return value;
  };

  if (!next_line(in, line, line_no)) fail(line_no, "empty instance");
  const auto n = expect_keyword_value(line, "tasks");
  if (n < 1 || n > 1'000'000) fail(line_no, "unreasonable task count");

  std::vector<rt::TaskParams> params;
  params.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    if (!next_line(in, line, line_no)) fail(line_no, "missing task line");
    std::istringstream ss(line);
    rt::TaskParams p;
    if (!(ss >> p.offset >> p.wcet >> p.deadline >> p.period)) {
      fail(line_no, "expected 'O C D T'");
    }
    std::string extra;
    if (ss >> extra) fail(line_no, "trailing token '" + extra + "'");
    params.push_back(p);
  }

  if (!next_line(in, line, line_no)) fail(line_no, "missing 'processors'");
  const auto m = expect_keyword_value(line, "processors");
  if (m < 1 || m > 1'000'000) fail(line_no, "unreasonable processor count");

  rt::DeadlineModel model = rt::DeadlineModel::kConstrained;
  bool have_rates = false;
  std::vector<std::vector<rt::Rate>> rates;

  while (next_line(in, line, line_no)) {
    std::istringstream ss(line);
    std::string word;
    ss >> word;
    if (word == "deadline-model") {
      std::string value;
      ss >> value;
      if (value == "constrained") {
        model = rt::DeadlineModel::kConstrained;
      } else if (value == "arbitrary") {
        model = rt::DeadlineModel::kArbitrary;
      } else {
        fail(line_no, "unknown deadline-model '" + value + "'");
      }
    } else if (word == "rates") {
      have_rates = true;
      rates.reserve(static_cast<std::size_t>(n));
      for (std::int64_t i = 0; i < n; ++i) {
        if (!next_line(in, line, line_no)) fail(line_no, "missing rate row");
        std::istringstream row(line);
        std::vector<rt::Rate> r;
        r.reserve(static_cast<std::size_t>(m));
        for (std::int64_t j = 0; j < m; ++j) {
          rt::Rate s = 0;
          if (!(row >> s)) fail(line_no, "expected " + std::to_string(m) +
                                             " rates in the row");
          r.push_back(s);
        }
        rates.push_back(std::move(r));
      }
    } else {
      fail(line_no, "unknown directive '" + word + "'");
    }
  }

  InstanceFile file{rt::TaskSet::from_params(params, model),
                    have_rates
                        ? rt::Platform::heterogeneous(std::move(rates))
                        : rt::Platform::identical(static_cast<std::int32_t>(m))};
  return file;
}

InstanceFile read_instance_string(const std::string& text) {
  std::istringstream in(text);
  return read_instance(in);
}

void write_instance(std::ostream& out, const rt::TaskSet& ts,
                    const rt::Platform& platform) {
  out << "# mgrts instance\n";
  out << "tasks " << ts.size() << "\n";
  out << "# O C D T\n";
  for (const auto& task : ts.tasks()) {
    out << task.offset() << ' ' << task.wcet() << ' ' << task.deadline() << ' '
        << task.period() << "\n";
  }
  out << "processors " << platform.processors() << "\n";
  if (!ts.is_constrained()) out << "deadline-model arbitrary\n";
  if (!platform.is_identical()) {
    out << "rates\n";
    for (rt::TaskId i = 0; i < ts.size(); ++i) {
      for (rt::ProcId j = 0; j < platform.processors(); ++j) {
        if (j != 0) out << ' ';
        out << platform.rate(i, j);
      }
      out << "\n";
    }
  }
}

std::string write_instance_string(const rt::TaskSet& ts,
                                  const rt::Platform& platform) {
  std::ostringstream out;
  write_instance(out, ts, platform);
  return out.str();
}

}  // namespace mgrts::core
