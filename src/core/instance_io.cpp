#include "core/instance_io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "support/error.hpp"

namespace mgrts::core {

namespace {

[[noreturn]] void fail(int line, const std::string& message) {
  throw ParseError("instance line " + std::to_string(line) + ": " + message);
}

/// Reads the next content line (skipping blanks/comments); returns false at
/// end of stream.
bool next_line(std::istream& in, std::string& out, int& line_no) {
  std::string raw;
  while (std::getline(in, raw)) {
    ++line_no;
    const auto first = raw.find_first_not_of(" \t\r");
    if (first == std::string::npos || raw[first] == '#') continue;
    const auto last = raw.find_last_not_of(" \t\r");
    out = raw.substr(first, last - first + 1);
    return true;
  }
  return false;
}

/// Parses one strictly-integer token: rejects floats ("1.5"), NaN/inf
/// spellings, hex/octal surprises, and values that do not fit std::int64_t
/// — istream extraction would accept or truncate several of those.  Every
/// path out is a value or a ParseError.
std::int64_t parse_int_token(int line, const std::string& token,
                             const std::string& what) {
  std::size_t at = 0;
  if (at < token.size() && (token[at] == '+' || token[at] == '-')) ++at;
  if (at >= token.size()) fail(line, what + ": '" + token + "' is not a number");
  for (std::size_t i = at; i < token.size(); ++i) {
    if (token[i] < '0' || token[i] > '9') {
      fail(line, what + ": '" + token + "' is not a plain integer");
    }
  }
  try {
    std::size_t used = 0;
    const std::int64_t value = std::stoll(token, &used);
    if (used != token.size()) {
      fail(line, what + ": trailing characters in '" + token + "'");
    }
    return value;
  } catch (const std::out_of_range&) {
    fail(line, what + ": '" + token + "' does not fit a 64-bit integer");
  } catch (const std::invalid_argument&) {
    fail(line, what + ": '" + token + "' is not a number");
  }
}

/// Splits a content line into whitespace-separated tokens.
std::vector<std::string> tokens_of(const std::string& text) {
  std::vector<std::string> tokens;
  std::istringstream ss(text);
  std::string token;
  while (ss >> token) tokens.push_back(std::move(token));
  return tokens;
}

/// Magnitude cap on task parameters and rates.  Far above any meaningful
/// instance, far below where downstream products (C*T, hyperperiods, flow
/// capacities) can overflow before the dedicated OverflowError guards see
/// them.
constexpr std::int64_t kMaxMagnitude = 1'000'000'000'000'000;  // 1e15

/// Caps on counts, so a hostile header cannot buy a huge allocation with a
/// three-line file.  Tasks are capped at 100k (the largest generated
/// workloads are ~200 tasks); the rates block additionally caps the n*m
/// entry total.
constexpr std::int64_t kMaxTasks = 100'000;
constexpr std::int64_t kMaxProcessors = 100'000;
constexpr std::int64_t kMaxRateEntries = 4'000'000;

}  // namespace

InstanceFile read_instance(std::istream& in) {
  int line_no = 0;
  std::string line;

  auto expect_keyword_value = [&](const std::string& text,
                                  const std::string& keyword) {
    const auto tokens = tokens_of(text);
    if (tokens.size() != 2 || tokens[0] != keyword) {
      fail(line_no, "expected '" + keyword + " <value>', got '" + text + "'");
    }
    return parse_int_token(line_no, tokens[1], keyword);
  };

  if (!next_line(in, line, line_no)) fail(line_no, "empty instance");
  const auto n = expect_keyword_value(line, "tasks");
  if (n < 1 || n > kMaxTasks) {
    fail(line_no, "task count must be in [1, " + std::to_string(kMaxTasks) +
                      "], got " + std::to_string(n));
  }

  std::vector<rt::TaskParams> params;
  params.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    if (!next_line(in, line, line_no)) fail(line_no, "missing task line");
    const auto tokens = tokens_of(line);
    if (tokens.size() != 4) {
      fail(line_no, "expected 'O C D T', got '" + line + "'");
    }
    rt::TaskParams p;
    p.offset = parse_int_token(line_no, tokens[0], "offset");
    p.wcet = parse_int_token(line_no, tokens[1], "WCET");
    p.deadline = parse_int_token(line_no, tokens[2], "deadline");
    p.period = parse_int_token(line_no, tokens[3], "period");
    for (const std::int64_t v : {p.offset, p.wcet, p.deadline, p.period}) {
      if (v < -kMaxMagnitude || v > kMaxMagnitude) {
        fail(line_no, "task parameter " + std::to_string(v) +
                          " exceeds the 1e15 magnitude cap");
      }
    }
    params.push_back(p);
  }

  if (!next_line(in, line, line_no)) fail(line_no, "missing 'processors'");
  const auto m = expect_keyword_value(line, "processors");
  if (m < 1 || m > kMaxProcessors) {
    fail(line_no, "processor count must be in [1, " +
                      std::to_string(kMaxProcessors) + "], got " +
                      std::to_string(m));
  }

  rt::DeadlineModel model = rt::DeadlineModel::kConstrained;
  bool have_rates = false;
  std::vector<std::vector<rt::Rate>> rates;

  while (next_line(in, line, line_no)) {
    const auto tokens = tokens_of(line);
    const std::string& word = tokens.front();
    if (word == "deadline-model") {
      if (tokens.size() != 2) {
        fail(line_no, "expected 'deadline-model <value>', got '" + line + "'");
      }
      if (tokens[1] == "constrained") {
        model = rt::DeadlineModel::kConstrained;
      } else if (tokens[1] == "arbitrary") {
        model = rt::DeadlineModel::kArbitrary;
      } else {
        fail(line_no, "unknown deadline-model '" + tokens[1] + "'");
      }
    } else if (word == "rates") {
      if (tokens.size() != 1) {
        fail(line_no, "'rates' takes no argument, got '" + line + "'");
      }
      if (have_rates) fail(line_no, "duplicate 'rates' block");
      have_rates = true;
      if (n * m > kMaxRateEntries) {
        fail(line_no, "rates block of " + std::to_string(n) + "x" +
                          std::to_string(m) + " exceeds the " +
                          std::to_string(kMaxRateEntries) + "-entry cap");
      }
      rates.reserve(static_cast<std::size_t>(n));
      for (std::int64_t i = 0; i < n; ++i) {
        if (!next_line(in, line, line_no)) fail(line_no, "missing rate row");
        const auto row_tokens = tokens_of(line);
        if (static_cast<std::int64_t>(row_tokens.size()) != m) {
          fail(line_no, "expected " + std::to_string(m) +
                            " rates in the row, got " +
                            std::to_string(row_tokens.size()));
        }
        std::vector<rt::Rate> r;
        r.reserve(static_cast<std::size_t>(m));
        for (const std::string& token : row_tokens) {
          const std::int64_t s = parse_int_token(line_no, token, "rate");
          // rt::Rate is 32-bit; the cap keeps the cast exact.
          if (s < 0 || s > 1'000'000'000) {
            fail(line_no, "rate " + token + " out of range [0, 1e9]");
          }
          r.push_back(static_cast<rt::Rate>(s));
        }
        rates.push_back(std::move(r));
      }
    } else {
      fail(line_no, "unknown directive '" + word + "'");
    }
  }

  // The contract is ParseError/ValidationError only; arithmetic-range
  // failures inside system construction surface as validation failures of
  // the input.
  try {
    InstanceFile file{
        rt::TaskSet::from_params(params, model),
        have_rates ? rt::Platform::heterogeneous(std::move(rates))
                   : rt::Platform::identical(static_cast<std::int32_t>(m))};
    return file;
  } catch (const OverflowError& e) {
    throw ValidationError(e.what());
  }
}

InstanceFile read_instance_string(const std::string& text) {
  std::istringstream in(text);
  return read_instance(in);
}

void write_instance(std::ostream& out, const rt::TaskSet& ts,
                    const rt::Platform& platform) {
  out << "# mgrts instance\n";
  out << "tasks " << ts.size() << "\n";
  out << "# O C D T\n";
  for (const auto& task : ts.tasks()) {
    out << task.offset() << ' ' << task.wcet() << ' ' << task.deadline() << ' '
        << task.period() << "\n";
  }
  out << "processors " << platform.processors() << "\n";
  if (!ts.is_constrained()) out << "deadline-model arbitrary\n";
  if (!platform.is_identical()) {
    out << "rates\n";
    for (rt::TaskId i = 0; i < ts.size(); ++i) {
      for (rt::ProcId j = 0; j < platform.processors(); ++j) {
        if (j != 0) out << ' ';
        out << platform.rate(i, j);
      }
      out << "\n";
    }
  }
}

std::string write_instance_string(const rt::TaskSet& ts,
                                  const rt::Platform& platform) {
  std::ostringstream out;
  write_instance(out, ts, platform);
  return out.str();
}

}  // namespace mgrts::core
