// Plain-text instance format, so examples and external tools can exchange
// problems:
//
//     # comment lines start with '#'
//     tasks 3
//     # one line per task: O C D T
//     0 1 2 2
//     1 3 4 4
//     0 2 2 3
//     processors 2
//     deadline-model constrained     # optional; or "arbitrary"
//     rates                          # optional heterogeneous block:
//     1 0                            #   n rows x m columns of s_{i,j}
//     1 2
//     0 1
//
// Without a `rates` block the platform is identical.
#pragma once

#include <iosfwd>
#include <string>

#include "rt/platform.hpp"
#include "rt/task_set.hpp"

namespace mgrts::core {

struct InstanceFile {
  rt::TaskSet tasks;
  rt::Platform platform = rt::Platform::identical(1);
};

/// Parses the format above; throws ParseError with a line reference on
/// malformed input and ValidationError when the parsed system is invalid.
[[nodiscard]] InstanceFile read_instance(std::istream& in);
[[nodiscard]] InstanceFile read_instance_string(const std::string& text);

/// Serializes an instance in the same format (round-trips through read).
void write_instance(std::ostream& out, const rt::TaskSet& ts,
                    const rt::Platform& platform);
[[nodiscard]] std::string write_instance_string(const rt::TaskSet& ts,
                                                const rt::Platform& platform);

}  // namespace mgrts::core
