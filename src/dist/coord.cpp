#include "dist/coord.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "dist/shard_exec.hpp"
#include "serve/shard.hpp"
#include "serve/wire.hpp"
#include "support/error.hpp"
#include "support/socket.hpp"

namespace mgrts::dist {

namespace {

using Clock = std::chrono::steady_clock;

struct Shard {
  std::string id;
  std::vector<std::uint64_t> indices;
  std::int32_t attempts = 0;  ///< dispatch attempts so far
};

/// Retryable dispatch failure: transport loss, a stalled beat, a short
/// stream, or a worker refusal.  The shard re-enters the queue (or falls
/// back to local execution); only exhausted recovery surfaces to callers.
struct AttemptFailure {
  std::string reason;
  bool stall = false;
};

struct ShardOutcome {
  std::vector<exp::InstanceRecord> rows;
  core::BatchHealth health;
};

serve::ShardRequest build_request(const exp::BatchOptions& batch,
                                  const std::vector<std::string>& spec_names,
                                  std::int64_t time_limit_ms,
                                  const FleetOptions& fleet,
                                  const Shard& shard) {
  serve::ShardRequest request;
  // The dispatch-attempt suffix makes every dispatch's id unique, so a
  // frame from a culled predecessor can never be attributed to a newer
  // attempt of the same shard.
  request.shard_id = shard.id + "/a" + std::to_string(shard.attempts);
  request.generator = batch.generator;
  request.seed = batch.seed;
  request.specs = spec_names;
  request.time_limit_ms = time_limit_ms;
  request.max_nodes = fleet.max_nodes;
  request.max_variables = fleet.max_variables;
  request.max_attempts = fleet.max_attempts;
  request.indices = shard.indices;
  return request;
}

/// One dispatch attempt over an (already connected) worker connection.
/// Returns the shard's rows+health on a complete trailer; throws
/// AttemptFailure otherwise.  The caller closes the connection on any
/// throw — closing is what fires the worker-side cancel for a cull.
ShardOutcome dispatch_shard(const support::Fd& connection,
                            const serve::ShardRequest& request,
                            const FleetOptions& fleet) {
  try {
    serve::send_frame(connection,
                      serve::format_message(encode_shard_request(request)));
  } catch (const std::exception& e) {
    throw AttemptFailure{std::string("shard send failed: ") + e.what(),
                         false};
  }

  ShardOutcome outcome;
  const auto total = static_cast<std::int64_t>(request.indices.size());
  std::uint64_t last_beat = 0;
  bool beat_seen = false;
  Clock::time_point last_progress = Clock::now();

  const auto check_stall = [&] {
    if (Clock::now() - last_progress >=
        std::chrono::milliseconds(fleet.stall_ms)) {
      throw AttemptFailure{"shard stalled: beat unchanged for " +
                               std::to_string(fleet.stall_ms) + " ms",
                           true};
    }
  };

  for (;;) {
    bool readable = false;
    try {
      readable = support::wait_readable(connection, fleet.poll_interval_ms);
    } catch (const std::exception& e) {
      throw AttemptFailure{std::string("worker poll failed: ") + e.what(),
                           false};
    }
    if (!readable) {
      // Silence is judged by the same clock as a frozen beat: a worker
      // that stopped sending anything at all is as culled as one beating
      // in place.
      check_stall();
      continue;
    }

    std::string payload;
    serve::Message message;
    try {
      if (!serve::recv_frame(connection, payload, 10'000)) {
        throw support::SocketError("worker closed mid-shard");
      }
      message = serve::parse_message(payload);
    } catch (const std::exception& e) {
      throw AttemptFailure{std::string("worker stream failed: ") + e.what(),
                           false};
    }

    if (message.kind == "shard-beat") {
      const serve::ShardBeat beat = serve::parse_shard_beat(message);
      if (beat.shard_id != request.shard_id) continue;  // stale attempt
      if (!beat_seen || beat.beat != last_beat) {
        beat_seen = true;
        last_beat = beat.beat;
        last_progress = Clock::now();
      } else {
        check_stall();
      }
      continue;
    }
    if (message.kind == "shard-row") {
      serve::ShardRow row = serve::parse_shard_row(message);
      if (row.shard_id != request.shard_id) continue;  // stale attempt
      outcome.rows.push_back(std::move(row.record));
      last_progress = Clock::now();
      continue;
    }
    if (message.kind == "shard-done") {
      const serve::ShardDone done = serve::parse_shard_done(message);
      if (done.shard_id != request.shard_id) continue;  // stale attempt
      if (done.rows != total ||
          static_cast<std::int64_t>(outcome.rows.size()) != total) {
        // A cancelled/stopping worker trailers honestly with fewer rows;
        // the shard is simply not done and re-dispatches whole.
        throw AttemptFailure{
            "short shard: " + std::to_string(outcome.rows.size()) + "/" +
                std::to_string(total) + " rows",
            false};
      }
      outcome.health = done.health;
      return outcome;
    }
    if (message.kind == "error") {
      throw AttemptFailure{"worker refused shard: " + message.body, false};
    }
    throw AttemptFailure{"unexpected frame kind '" + message.kind +
                             "' mid-shard",
                         false};
  }
}

}  // namespace

std::vector<std::vector<std::uint64_t>> plan_shards(
    const std::vector<std::uint64_t>& indices, std::int32_t shard_count) {
  std::vector<std::vector<std::uint64_t>> shards;
  if (indices.empty()) return shards;
  const std::size_t count = std::clamp<std::size_t>(
      shard_count < 1 ? 1 : static_cast<std::size_t>(shard_count), 1,
      indices.size());
  const std::size_t base = indices.size() / count;
  const std::size_t extra = indices.size() % count;
  std::size_t pos = 0;
  shards.reserve(count);
  for (std::size_t s = 0; s < count; ++s) {
    const std::size_t len = base + (s < extra ? 1 : 0);
    shards.emplace_back(indices.begin() + static_cast<std::ptrdiff_t>(pos),
                        indices.begin() +
                            static_cast<std::ptrdiff_t>(pos + len));
    pos += len;
  }
  return shards;
}

exp::BatchResult run_fleet(const exp::BatchOptions& batch,
                           const std::vector<std::string>& spec_names,
                           std::int64_t time_limit_ms,
                           const FleetOptions& fleet, FleetStats* stats_out) {
  // Resolve the line-up locally first: labels for the result, and an
  // unknown name fails here — before any dispatch — with the same
  // ValidationError the executor would throw.
  if (spec_names.empty()) throw ValidationError("no specs named");
  exp::BatchResult result;
  for (const std::string& name : spec_names) {
    const auto spec = exp::spec_from_name(name, time_limit_ms, batch.seed);
    if (!spec.has_value()) {
      throw ValidationError("unknown spec name: '" + name + "'");
    }
    result.labels.push_back(spec->label);
  }

  // The merge is keyed by generator index; a duplicated index would make
  // "record-identical to the single-box run" ill-defined.
  std::vector<std::uint64_t> indices = batch.indices;
  if (indices.empty()) {
    indices.reserve(static_cast<std::size_t>(batch.instances));
    for (std::int64_t k = 0; k < batch.instances; ++k) {
      indices.push_back(static_cast<std::uint64_t>(k));
    }
  }
  {
    std::unordered_set<std::uint64_t> seen;
    for (const std::uint64_t index : indices) {
      if (!seen.insert(index).second) {
        throw ValidationError("duplicate generator index " +
                              std::to_string(index) + " in the batch");
      }
    }
  }

  FleetStats stats;
  if (indices.empty()) {
    if (stats_out != nullptr) *stats_out = stats;
    return result;
  }

  const std::int32_t shard_count =
      fleet.shards > 0
          ? fleet.shards
          : (fleet.workers.empty()
                 ? 1
                 : static_cast<std::int32_t>(fleet.workers.size()) * 2);
  std::deque<Shard> queue;
  {
    const auto plans = plan_shards(indices, shard_count);
    for (std::size_t s = 0; s < plans.size(); ++s) {
      queue.push_back(Shard{"s" + std::to_string(s), plans[s], 0});
    }
  }
  stats.shards = static_cast<std::int32_t>(queue.size());

  std::unordered_map<std::uint64_t, exp::InstanceRecord> merged;
  merged.reserve(indices.size());
  const auto commit = [&](std::vector<exp::InstanceRecord> rows,
                          const core::BatchHealth& health) {
    for (exp::InstanceRecord& row : rows) {
      const std::uint64_t index = row.index;
      if (!merged.emplace(index, std::move(row)).second) {
        ++stats.duplicate_rows;  // dropped: first complete shard wins
      }
    }
    result.health.failures += health.failures;
    result.health.retries += health.retries;
    result.health.recovered += health.recovered;
    result.health.quarantined += health.quarantined;
    if (result.health.first_error.empty()) {
      result.health.first_error = health.first_error;
    }
  };

  const auto run_local = [&](const Shard& shard) {
    const serve::ShardRequest request =
        build_request(batch, spec_names, time_limit_ms, fleet, shard);
    ShardExecution execution =
        execute_shard(request, support::CancelToken(), nullptr, nullptr);
    return ShardOutcome{std::move(execution.rows),
                        std::move(execution.health)};
  };

  if (fleet.workers.empty()) {
    // Workerless reference path: same shards, same executor, in-process.
    while (!queue.empty()) {
      const Shard shard = std::move(queue.front());
      queue.pop_front();
      ShardOutcome outcome = run_local(shard);
      commit(std::move(outcome.rows), outcome.health);
    }
  } else {
    std::mutex mutex;
    std::condition_variable cv;
    std::vector<Shard> fallback;
    // Shards not yet committed or moved to fallback; dispatch threads run
    // until this hits zero, so an idle worker outlives a straggling one
    // and picks up its re-dispatched shard.
    std::size_t outstanding = queue.size();

    const auto dispatch_loop = [&](const std::string& socket_path) {
      support::Fd connection;
      std::unique_lock<std::mutex> lock(mutex);
      while (outstanding > 0) {
        if (queue.empty()) {
          // Another worker's in-flight shard may yet fail and re-enter
          // the queue; wake on any queue/outstanding change.
          cv.wait_for(lock, std::chrono::milliseconds(50));
          continue;
        }
        Shard shard = std::move(queue.front());
        queue.pop_front();
        ++shard.attempts;
        lock.unlock();

        bool committed = false;
        AttemptFailure failure;
        try {
          if (!connection.valid()) {
            connection = support::connect_unix(socket_path);
          }
          const serve::ShardRequest request =
              build_request(batch, spec_names, time_limit_ms, fleet, shard);
          ShardOutcome outcome = dispatch_shard(connection, request, fleet);
          lock.lock();
          commit(std::move(outcome.rows), outcome.health);
          --outstanding;
          committed = true;
          cv.notify_all();
        } catch (const AttemptFailure& f) {
          failure = f;
        } catch (const support::SocketError& e) {
          failure = AttemptFailure{e.what(), false};
        } catch (const serve::ProtocolError& e) {
          failure = AttemptFailure{e.what(), false};
        }

        if (!committed) {
          // Closing the connection is the cull: the worker's next write
          // fails, its shard cancel fires, and the executor stops.
          connection.close();
          lock.lock();
          if (failure.stall) {
            ++stats.stall_culls;
          } else {
            ++stats.transport_failures;
          }
          if (shard.attempts <
              std::max<std::int32_t>(fleet.max_dispatch_attempts, 1)) {
            ++stats.redispatched;
            queue.push_back(std::move(shard));
          } else {
            fallback.push_back(std::move(shard));
            --outstanding;
          }
          cv.notify_all();
          // Don't immediately re-pull against a refusing/downed worker:
          // let the loop re-examine the queue after other workers had a
          // chance to claim the shard.
          cv.wait_for(lock, std::chrono::milliseconds(10));
        }
      }
      cv.notify_all();
    };

    std::vector<std::thread> dispatchers;
    dispatchers.reserve(fleet.workers.size());
    for (const std::string& socket_path : fleet.workers) {
      dispatchers.emplace_back(dispatch_loop, socket_path);
    }
    for (std::thread& thread : dispatchers) thread.join();

    for (const Shard& shard : fallback) {
      if (!fleet.local_fallback) {
        throw Error("shard " + shard.id + " undeliverable after " +
                    std::to_string(shard.attempts) +
                    " dispatch attempts (local fallback disabled)");
      }
      ++stats.local_fallbacks;
      ShardOutcome outcome = run_local(shard);
      commit(std::move(outcome.rows), outcome.health);
    }
  }

  // Merge in batch order; every index must be accounted for exactly once.
  result.instances.reserve(indices.size());
  for (const std::uint64_t index : indices) {
    const auto it = merged.find(index);
    if (it == merged.end()) {
      throw Error("merge lost generator index " + std::to_string(index));
    }
    result.instances.push_back(std::move(it->second));
  }
  if (stats_out != nullptr) *stats_out = stats;
  return result;
}

}  // namespace mgrts::dist
