#include "dist/worker.hpp"

#include <chrono>
#include <cstdio>
#include <utility>

#include "dist/shard_exec.hpp"
#include "serve/shard.hpp"
#include "support/error.hpp"

namespace mgrts::dist {

namespace {

serve::Message refusal(const std::string& kind, const std::string& detail) {
  serve::Message error;
  error.kind = "error";
  error.set("error-kind", kind);
  error.set("verdict", core::to_string(core::Verdict::kUnknown));
  error.set("cause", core::to_string(core::FailureCause::kNone));
  error.body = detail;
  return error;
}

}  // namespace

WorkerServer::WorkerServer(WorkerOptions options)
    : options_(std::move(options)),
      listener_(support::listen_unix(options_.socket_path)),
      pool_(std::make_unique<support::ThreadPool>(
          std::max<std::size_t>(options_.handlers, 1))) {}

WorkerServer::~WorkerServer() {
  stop();
  std::remove(options_.socket_path.c_str());
}

void WorkerServer::run() {
  while (!stopping_.load(std::memory_order_relaxed) &&
         !shutdown_requested_.load(std::memory_order_relaxed)) {
    support::Fd connection =
        support::accept_unix(listener_, options_.poll_interval_ms);
    if (!connection.valid()) continue;  // timeout: poll the flags again
    auto shared = std::make_shared<support::Fd>(std::move(connection));
    pool_->submit([this, shared] { handle_connection(std::move(*shared)); });
  }
  stopping_.store(true, std::memory_order_relaxed);
  stop_token_.cancel();
  pool_->wait_idle();
}

void WorkerServer::start() {
  accept_thread_ = std::thread([this] { run(); });
}

void WorkerServer::stop() {
  stopping_.store(true, std::memory_order_relaxed);
  stop_token_.cancel();
  if (accept_thread_.joinable() &&
      accept_thread_.get_id() != std::this_thread::get_id()) {
    accept_thread_.join();
  }
  pool_->wait_idle();
}

WorkerCounters WorkerServer::counters() const {
  std::lock_guard<std::mutex> lock(counters_mutex_);
  return counters_;
}

void WorkerServer::handle_connection(support::Fd connection) {
  while (!stopping_.load(std::memory_order_relaxed)) {
    bool readable = false;
    try {
      readable = support::wait_readable(connection, options_.poll_interval_ms);
    } catch (const support::SocketError&) {
      return;
    }
    if (!readable) continue;  // idle: poll the stop flag

    std::string payload;
    try {
      if (!serve::recv_frame(connection, payload, 10'000)) return;
    } catch (const serve::ProtocolError& e) {
      try {
        serve::send_frame(connection,
                          serve::format_message(refusal("protocol", e.what())));
      } catch (const support::SocketError&) {
      }
      return;  // after a framing error the stream offset is unreliable
    } catch (const support::SocketError&) {
      return;
    }

    serve::Message message;
    try {
      message = serve::parse_message(payload);
    } catch (const serve::ProtocolError& e) {
      // Framing was intact, only the payload was malformed — answer and
      // keep the connection (the solve daemon's Service does the same).
      try {
        serve::send_frame(connection,
                          serve::format_message(refusal("parse", e.what())));
      } catch (const support::SocketError&) {
        return;
      }
      continue;
    }

    try {
      if (message.kind == "ping") {
        serve::Message pong;
        pong.kind = "pong";
        serve::send_frame(connection, serve::format_message(pong));
        continue;
      }
      if (message.kind == "health") {
        const WorkerCounters counters = this->counters();
        serve::Message health;
        health.kind = "health";
        health.set("shards", counters.shards);
        health.set("rows", counters.rows);
        health.set("aborted", counters.aborted);
        health.set("refused", counters.refused);
        serve::send_frame(connection, serve::format_message(health));
        continue;
      }
      if (message.kind == "shutdown") {
        serve::Message bye;
        bye.kind = "bye";
        serve::send_frame(connection, serve::format_message(bye));
        shutdown_requested_.store(true, std::memory_order_relaxed);
        return;
      }
      if (message.kind == "shard") {
        if (!handle_shard(connection, message)) return;
        continue;
      }
      serve::send_frame(
          connection,
          serve::format_message(refusal(
              "validation", "unknown request kind: '" + message.kind + "'")));
    } catch (const support::SocketError&) {
      return;  // peer vanished mid-answer
    }
  }
}

bool WorkerServer::handle_shard(const support::Fd& connection,
                                const serve::Message& request_message) {
  serve::ShardRequest request;
  try {
    request = serve::parse_shard_request(request_message);
  } catch (const serve::ProtocolError& e) {
    std::lock_guard<std::mutex> lock(counters_mutex_);
    ++counters_.refused;
    serve::send_frame(connection,
                      serve::format_message(refusal("validation", e.what())));
    return true;
  }
  {
    std::lock_guard<std::mutex> lock(counters_mutex_);
    ++counters_.shards;
  }

  ShardProgress progress;
  const support::CancelToken cancel = support::CancelToken::linked(stop_token_);

  // All frames of one shard leave through this gate: row stream and beat
  // stream interleave on one connection, and the first failed write flips
  // the shard to aborted — the coordinator is gone, so the cancel token
  // stops the executor at its next poll instead of finishing unread work.
  std::mutex write_mutex;
  std::atomic<bool> write_failed{false};
  const auto send = [&](const serve::Message& message) -> bool {
    std::lock_guard<std::mutex> lock(write_mutex);
    if (write_failed.load(std::memory_order_relaxed)) return false;
    try {
      serve::send_frame(connection, serve::format_message(message));
      return true;
    } catch (const std::exception&) {
      write_failed.store(true, std::memory_order_relaxed);
      cancel.cancel();
      return false;
    }
  };

  std::atomic<bool> done{false};
  std::thread beater([&] {
    const auto interval = std::chrono::milliseconds(
        std::max<std::int64_t>(options_.beat_interval_ms, 1));
    while (!done.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(interval);
      if (done.load(std::memory_order_acquire)) break;
      serve::ShardBeat beat;
      beat.shard_id = request.shard_id;
      beat.beat = progress.beat();
      beat.done = progress.completed.load(std::memory_order_relaxed);
      beat.total = static_cast<std::int64_t>(request.indices.size());
      if (!send(serve::encode_shard_beat(beat))) break;
    }
  });

  std::string refusal_kind;
  std::string refusal_text;
  ShardExecution result;
  try {
    result = execute_shard(request, cancel, &progress,
                           [&](const exp::InstanceRecord& record) {
      serve::ShardRow row;
      row.shard_id = request.shard_id;
      row.record = record;
      if (!send(serve::encode_shard_row(row))) {
        throw support::SocketError("coordinator connection lost mid-shard");
      }
      std::lock_guard<std::mutex> lock(counters_mutex_);
      ++counters_.rows;
    });
  } catch (const ValidationError& e) {
    refusal_kind = "validation";
    refusal_text = e.what();
  } catch (const support::SocketError&) {
    // Row write failed; fall through to the aborted path below.
  } catch (const std::exception& e) {
    refusal_kind = "internal";
    refusal_text = e.what();
  }

  done.store(true, std::memory_order_release);
  beater.join();

  if (write_failed.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(counters_mutex_);
    ++counters_.aborted;
    return false;
  }
  if (!refusal_kind.empty()) {
    std::lock_guard<std::mutex> lock(counters_mutex_);
    ++counters_.refused;
    return send(refusal(refusal_kind, refusal_text));
  }

  // The trailer carries the row count even for a cancelled shard (rows <
  // indices): the coordinator cross-checks and re-dispatches the shortfall
  // as a whole-shard retry.
  serve::ShardDone trailer;
  trailer.shard_id = request.shard_id;
  trailer.rows = static_cast<std::int64_t>(result.rows.size());
  trailer.health = result.health;
  if (!send(serve::encode_shard_done(trailer))) {
    std::lock_guard<std::mutex> lock(counters_mutex_);
    ++counters_.aborted;
    return false;
  }
  return true;
}

}  // namespace mgrts::dist
