// Shard executor: runs one serve::ShardRequest to completion on the local
// machine, producing exactly the records the in-process harness would
// (DESIGN.md §16).
//
// This is the single implementation both sides of the distributed layer
// share: mgrts_workerd runs it behind the wire, and the coordinator runs
// it in-process for local fallback (a shard no worker could complete) and
// for the workerless single-box path the determinism tests compare
// against.  Determinism by construction: the instance comes from
// gen::generate_indexed, the per-run seeds from exp::reseed_for_index, and
// the record projection from exp::record_from_report — the same three
// functions exp::run_batch uses.
//
// Each generator index runs through core::solve_batch (workers=1, the
// request's max_attempts), so the retry/quarantine containment contract is
// inherited wholesale rather than reimplemented: a crash-type failure is
// retried with wider budgets, an exhausted job is quarantined with its
// FailureCause on the record, and no index is ever lost.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>

#include "core/solve.hpp"
#include "exp/harness.hpp"
#include "serve/shard.hpp"
#include "support/deadline.hpp"

namespace mgrts::dist {

/// Progress surface of a running shard, sampled by the worker's beat
/// sender: `heartbeat` ticks at every solver deadline poll, `completed`
/// after every finished index.  Their sum is the wire's ShardBeat::beat —
/// monotone while the executor makes any progress at all.
struct ShardProgress {
  std::shared_ptr<std::atomic<std::uint64_t>> heartbeat =
      std::make_shared<std::atomic<std::uint64_t>>(0);
  std::atomic<std::int64_t> completed{0};

  [[nodiscard]] std::uint64_t beat() const noexcept {
    return heartbeat->load(std::memory_order_relaxed) +
           static_cast<std::uint64_t>(
               completed.load(std::memory_order_relaxed));
  }
};

struct ShardExecution {
  /// One record per requested index, in request order.  Shorter than the
  /// request only when the cancel token fired mid-shard.
  std::vector<exp::InstanceRecord> rows;
  core::BatchHealth health;
};

/// Called after each index completes, in request order.  A sink that
/// throws aborts the shard (the worker uses this when the coordinator's
/// connection dies: no reader, no point finishing).
using RowSink = std::function<void(const exp::InstanceRecord&)>;

/// Runs the shard.  Throws ValidationError for an unknown spec name
/// (refuse, don't guess — the coordinator validates names before
/// dispatching, so this only fires for version-skewed peers).  A cancelled
/// token stops the shard at the next index boundary; in-flight solves see
/// it at their next deadline poll.
[[nodiscard]] ShardExecution execute_shard(const serve::ShardRequest& request,
                                           const support::CancelToken& cancel,
                                           ShardProgress* progress = nullptr,
                                           const RowSink& sink = nullptr);

}  // namespace mgrts::dist
