#include "dist/shard_exec.hpp"

#include "rt/platform.hpp"
#include "support/error.hpp"

namespace mgrts::dist {

ShardExecution execute_shard(const serve::ShardRequest& request,
                             const support::CancelToken& cancel,
                             ShardProgress* progress, const RowSink& sink) {
  // Resolve the line-up first: an unknown name refuses the whole shard
  // before any instance is generated, so a version-skewed worker can never
  // return a half-lineup row.
  std::vector<exp::SolverSpec> specs;
  specs.reserve(request.specs.size());
  for (const std::string& name : request.specs) {
    auto spec =
        exp::spec_from_name(name, request.time_limit_ms, request.seed);
    if (!spec.has_value()) {
      throw ValidationError("unknown spec name: '" + name + "'");
    }
    specs.push_back(std::move(*spec));
  }

  ShardExecution out;
  out.rows.reserve(request.indices.size());

  core::BatchPolicy policy;
  policy.workers = 1;  // a shard is one worker's slice; no nested fan-out
  policy.max_attempts = request.max_attempts;

  for (const std::uint64_t index : request.indices) {
    // Index boundary is the cooperative cancellation point: a culled shard
    // stops here (its in-flight solve aborted at its next deadline poll),
    // and the coordinator re-dispatches the whole index list elsewhere.
    if (cancel.cancelled()) break;

    const gen::Instance inst =
        gen::generate_indexed(request.generator, request.seed, index);

    exp::InstanceRecord record;
    record.index = index;
    record.tasks = inst.tasks.size();
    record.processors = inst.processors;
    record.hyperperiod = inst.tasks.hyperperiod();
    record.ratio = inst.tasks.utilization_ratio(inst.processors);
    record.exceeds_capacity = inst.tasks.exceeds_capacity(inst.processors);

    std::vector<core::BatchJob> jobs;
    jobs.reserve(specs.size());
    for (const exp::SolverSpec& spec : specs) {
      core::BatchJob job{inst.tasks, rt::Platform::identical(inst.processors),
                         spec.config};
      exp::reseed_for_index(job.config, index);
      if (request.max_nodes >= 0) job.config.max_nodes = request.max_nodes;
      if (request.max_variables > 0) {
        job.config.limits.max_variables = request.max_variables;
      }
      job.config.cancel = cancel;
      if (progress != nullptr) job.config.heartbeat = progress->heartbeat;
      jobs.push_back(std::move(job));
    }

    // core::solve_batch supplies the whole containment contract: capture,
    // retry with widened budgets, quarantine — identical on a worker and
    // on the coordinator's fallback path.
    core::BatchHealth health;
    std::vector<core::SolveReport> reports =
        core::solve_batch(jobs, policy, &health);
    out.health.failures += health.failures;
    out.health.retries += health.retries;
    out.health.recovered += health.recovered;
    out.health.quarantined += health.quarantined;
    if (out.health.first_error.empty()) {
      out.health.first_error = health.first_error;
    }

    record.runs.reserve(reports.size());
    for (core::SolveReport& report : reports) {
      record.runs.push_back(exp::record_from_report(std::move(report)));
    }
    out.rows.push_back(std::move(record));
    if (progress != nullptr) {
      progress->completed.fetch_add(1, std::memory_order_relaxed);
    }
    if (sink) sink(out.rows.back());
  }
  return out;
}

}  // namespace mgrts::dist
