// Worker side of the distributed batch layer (DESIGN.md §16): an AF_UNIX
// daemon that executes shard requests and streams rows back.
//
// Shape follows serve::Server — accept loop over a small ThreadPool,
// per-read poll timeouts so a stopping worker never parks a thread, and
// the same control kinds ("ping"/"health"/"shutdown") so mgrts_ctl drives
// a worker exactly like the solve daemon.  The difference is the "shard"
// path: the request runs on the connection's handler thread through
// dist::execute_shard, while a beat-sender thread samples the executor's
// progress (solver heartbeat + completed rows) every beat_interval_ms and
// interleaves "shard-beat" frames between the "shard-row" stream — writes
// are mutex-serialized per connection.
//
// Failure behavior is the straggler contract's worker half: when a write
// fails (the coordinator culled us, or died), the shard's cancel token
// fires, the in-flight solve aborts at its next deadline poll, and the
// handler drops the connection — the coordinator's re-dispatch owns the
// indices from then on.  A malformed or unresolvable request gets a tagged
// "error" response, never silence.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "serve/wire.hpp"
#include "support/deadline.hpp"
#include "support/socket.hpp"
#include "support/thread_pool.hpp"

namespace mgrts::dist {

struct WorkerOptions {
  /// Filesystem path of the AF_UNIX socket; a stale file is replaced.
  std::string socket_path = "/tmp/mgrts_worker.sock";
  /// Concurrent connection handlers (a coordinator normally holds one
  /// connection per worker, but ctl probes ride alongside).
  std::size_t handlers = 2;
  /// Idle-read poll, a stop-flag poll point (serve::Server's contract).
  std::int64_t poll_interval_ms = 200;
  /// Cadence of "shard-beat" frames while a shard runs.
  std::int64_t beat_interval_ms = 100;
};

/// Monotone counters for "health" responses and shutdown logs.
struct WorkerCounters {
  std::int64_t shards = 0;          ///< shard requests accepted
  std::int64_t rows = 0;            ///< rows streamed back
  std::int64_t aborted = 0;         ///< shards dropped mid-stream (peer loss)
  std::int64_t refused = 0;         ///< tagged "error" responses sent
};

class WorkerServer {
 public:
  /// Binds the socket immediately; serving starts with run()/start().
  explicit WorkerServer(WorkerOptions options);
  ~WorkerServer();

  WorkerServer(const WorkerServer&) = delete;
  WorkerServer& operator=(const WorkerServer&) = delete;

  /// Accept loop; blocks until stop() or an accepted "shutdown" request.
  void run();
  /// run() on a background thread (tests, quickstart, in-process fleets).
  void start();
  /// Graceful stop: stop accepting, cancel in-flight shards, join.
  void stop();

  [[nodiscard]] const std::string& socket_path() const noexcept {
    return options_.socket_path;
  }
  [[nodiscard]] WorkerCounters counters() const;

 private:
  void handle_connection(support::Fd connection);
  /// Handles one shard request on `connection`; returns false when the
  /// connection is no longer usable (peer vanished mid-stream).
  bool handle_shard(const support::Fd& connection,
                    const serve::Message& request);

  WorkerOptions options_;
  support::Fd listener_;
  support::CancelToken stop_token_ = support::CancelToken::make();
  std::atomic<bool> stopping_{false};
  std::atomic<bool> shutdown_requested_{false};

  mutable std::mutex counters_mutex_;
  WorkerCounters counters_;

  std::unique_ptr<support::ThreadPool> pool_;
  std::thread accept_thread_;  // start() only
};

}  // namespace mgrts::dist
