// Coordinator side of the distributed batch layer (DESIGN.md §16): shard
// planner, dispatch queue, straggler policy, and exactly-once merge.
//
// The coordinator partitions a generator batch's index list into
// contiguous shards, dispatches them to worker daemons over the serve wire
// ("shard" requests, streamed rows back), and merges the rows by generator
// index into one exp::BatchResult that is record-identical to a single-box
// exp::run_batch — the executor both sides share makes that a construction
// property, and the workerless path (empty FleetOptions::workers) runs the
// very same executor in-process, so tests can compare the two pipelines
// end to end.
//
// Straggler policy, in the mold of the PR 6 portfolio watchdog and the
// PR 7 serving watchdog: every dispatched shard streams progress beats
// (solver heartbeat + completed rows); a shard whose beat value stands
// still for stall_ms — or whose connection dies — is culled (connection
// closed, which fires the worker-side cancel) and its whole index list
// re-enters the dispatch queue.  Rows are committed only when a shard's
// "shard-done" trailer accounts for every index, so a culled shard's
// partial stream merges nothing and a re-dispatch can never duplicate a
// record.  A shard that exhausts max_dispatch_attempts falls back to
// in-process execution (local_fallback) — a straggler costs one
// re-dispatch, never the run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/harness.hpp"

namespace mgrts::dist {

struct FleetOptions {
  /// AF_UNIX socket paths of the worker daemons.  Empty = no fleet: every
  /// shard runs in-process through the same executor (the single-box
  /// reference path).
  std::vector<std::string> workers;
  /// Shard count; 0 derives two shards per worker (re-dispatching a
  /// straggler then costs half a worker's slice, not a worker's whole
  /// share), floored at one.  Clamped to the index count.
  std::int32_t shards = 0;
  /// Cull threshold: a dispatched shard whose beat value is unchanged for
  /// this long is a straggler.  Generous default — a healthy worker beats
  /// every beat_interval_ms and the beat moves at every deadline poll.
  std::int64_t stall_ms = 5'000;
  /// Read-poll cadence while waiting on a worker's stream.
  std::int64_t poll_interval_ms = 100;
  /// Dispatch attempts per shard before it falls back to local execution.
  std::int32_t max_dispatch_attempts = 3;
  /// Run undeliverable shards in-process instead of failing the batch.
  /// Off, an exhausted shard throws — only for tests that pin the policy.
  bool local_fallback = true;
  /// Worker-side core::BatchPolicy::max_attempts (retry/quarantine).
  std::int32_t max_attempts = 1;
  /// Per-run node-budget override; -1 = keep each spec's default.
  std::int64_t max_nodes = -1;
  /// Per-run variable-budget override; 0 = keep each spec's default.
  std::int64_t max_variables = 0;
};

/// What the fleet did, for ledgers and the chaos tests' contract pins.
struct FleetStats {
  std::int32_t shards = 0;             ///< shards planned
  std::int32_t redispatched = 0;       ///< shard re-entries into the queue
  std::int32_t stall_culls = 0;        ///< culled for a frozen beat
  std::int32_t transport_failures = 0; ///< connect/read/write/short-stream
  std::int64_t duplicate_rows = 0;     ///< merged-twice rows dropped (0 ⇔
                                       ///< the exactly-once contract held)
  std::int32_t local_fallbacks = 0;    ///< shards run in-process after
                                       ///< exhausting dispatch attempts
};

/// Contiguous partition of `indices` into `shard_count` slices (clamped to
/// [1, indices.size()]); sizes differ by at most one and concatenation
/// reproduces the input order.  Exposed for the boundary-adversarial
/// determinism tests.
[[nodiscard]] std::vector<std::vector<std::uint64_t>> plan_shards(
    const std::vector<std::uint64_t>& indices, std::int32_t shard_count);

/// Runs the batch across the fleet and merges the rows.  The result's
/// instances follow the batch's index order (0..instances-1, or
/// BatchOptions::indices verbatim).  Throws ValidationError for unknown
/// spec names or duplicate indices (merge is keyed by index), and
/// support-layer errors only when every recovery avenue (re-dispatch,
/// local fallback) is exhausted or disabled.
[[nodiscard]] exp::BatchResult run_fleet(
    const exp::BatchOptions& batch, const std::vector<std::string>& spec_names,
    std::int64_t time_limit_ms, const FleetOptions& fleet,
    FleetStats* stats = nullptr);

}  // namespace mgrts::dist
