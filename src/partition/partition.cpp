#include "partition/partition.hpp"

#include <algorithm>
#include <numeric>

#include "flow/oracle.hpp"
#include "rt/jobs.hpp"
#include "rt/platform.hpp"
#include "support/assert.hpp"
#include "support/error.hpp"

namespace mgrts::partition {

using rt::ProcId;
using rt::TaskId;
using rt::Time;

const char* to_string(FitHeuristic heuristic) {
  switch (heuristic) {
    case FitHeuristic::kFirstFit: return "first-fit";
    case FitHeuristic::kBestFit: return "best-fit";
    case FitHeuristic::kWorstFit: return "worst-fit";
  }
  return "?";
}

const char* to_string(SortOrder order) {
  switch (order) {
    case SortOrder::kInput: return "input";
    case SortOrder::kDecreasingUtilization: return "util-desc";
    case SortOrder::kDecreasingDensity: return "density-desc";
  }
  return "?";
}

namespace {

/// Builds the sub-TaskSet of one bin (task parameters pass through
/// unchanged, so windows and hyperperiods are the per-bin ones).
rt::TaskSet subset(const rt::TaskSet& ts, const std::vector<TaskId>& bin) {
  std::vector<rt::Task> tasks;
  tasks.reserve(bin.size());
  for (const TaskId i : bin) tasks.push_back(ts[i]);
  return rt::TaskSet(std::move(tasks));
}

/// Exact uniprocessor feasibility of a bin.
bool bin_feasible(const rt::TaskSet& ts, const std::vector<TaskId>& bin,
                  std::int64_t& checks) {
  ++checks;
  return flow::is_feasible(subset(ts, bin), rt::Platform::identical(1));
}

double bin_load(const rt::TaskSet& ts, const std::vector<TaskId>& bin) {
  double load = 0;
  for (const TaskId i : bin) {
    load += static_cast<double>(ts[i].wcet()) /
            static_cast<double>(ts[i].period());
  }
  return load;
}

}  // namespace

Result partition_tasks(const rt::TaskSet& ts, std::int32_t processors,
                       const Options& options) {
  if (!ts.is_constrained()) {
    throw ValidationError(
        "partitioning expects a constrained-deadline system; expand clones "
        "first");
  }
  MGRTS_EXPECTS(processors >= 1);

  Result result;
  result.assignment.assign(static_cast<std::size_t>(processors), {});

  // Placement order.
  std::vector<TaskId> order(static_cast<std::size_t>(ts.size()));
  std::iota(order.begin(), order.end(), 0);
  auto key = [&](TaskId i) -> double {
    switch (options.sort) {
      case SortOrder::kInput:
        return 0.0;
      case SortOrder::kDecreasingUtilization:
        return -static_cast<double>(ts[i].wcet()) /
               static_cast<double>(ts[i].period());
      case SortOrder::kDecreasingDensity:
        return -static_cast<double>(ts[i].wcet()) /
               static_cast<double>(ts[i].deadline());
    }
    return 0.0;
  };
  std::stable_sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
    const double ka = key(a);
    const double kb = key(b);
    if (ka != kb) return ka < kb;
    return a < b;
  });

  for (const TaskId task : order) {
    ProcId chosen = -1;
    double chosen_load = 0;
    for (ProcId j = 0; j < processors; ++j) {
      auto& bin = result.assignment[static_cast<std::size_t>(j)];
      bin.push_back(task);
      const bool fits = bin_feasible(ts, bin, result.feasibility_checks);
      const double load = bin_load(ts, bin);
      bin.pop_back();
      if (!fits) continue;
      if (options.fit == FitHeuristic::kFirstFit) {
        chosen = j;
        break;
      }
      const bool better =
          chosen < 0 ||
          (options.fit == FitHeuristic::kBestFit ? load > chosen_load
                                                 : load < chosen_load);
      if (better) {
        chosen = j;
        chosen_load = load;
      }
    }
    if (chosen < 0) {
      result.failed_task = task;
      return result;  // found == false
    }
    result.assignment[static_cast<std::size_t>(chosen)].push_back(task);
  }

  // Assemble the combined cyclic schedule: solve each bin exactly on one
  // processor and tile its (shorter) hyperperiod across the global one.
  rt::Schedule schedule(ts.hyperperiod(), processors);
  for (ProcId j = 0; j < processors; ++j) {
    const auto& bin = result.assignment[static_cast<std::size_t>(j)];
    if (bin.empty()) continue;
    const rt::TaskSet sub = subset(ts, bin);
    const flow::OracleResult oracle =
        flow::decide_feasibility(sub, rt::Platform::identical(1));
    MGRTS_ASSERT(oracle.verdict == flow::OracleVerdict::kFeasible);
    MGRTS_ASSERT(oracle.schedule.has_value());
    const Time sub_period = sub.hyperperiod();
    MGRTS_ASSERT(ts.hyperperiod() % sub_period == 0);
    for (Time t = 0; t < ts.hyperperiod(); ++t) {
      const TaskId local = oracle.schedule->at(t % sub_period, 0);
      if (local != rt::kIdle) {
        schedule.set(t, j, bin[static_cast<std::size_t>(local)]);
      }
    }
  }
  result.schedule = std::move(schedule);
  result.found = true;
  return result;
}

}  // namespace mgrts::partition
