// Partitioned scheduling baseline (§VIII: "looking at partitioning or
// mixed approaches"; related work [5] solves the partitioned problem with
// constraint programming).
//
// Partitioned scheduling statically assigns every task to one processor —
// no migration ever.  That turns the multiprocessor problem into m
// uniprocessor problems, each decided *exactly* here with the flow oracle
// on a single processor.  Task-to-processor assignment is bin packing
// (NP-hard), approached with the classical fit heuristics.
//
// The gap between this baseline and the global CSP solvers is the paper's
// raison d'être: instances exist (tests + bench) that global scheduling
// fits but no partition can, because partitioning wastes the fractional
// capacity that migration exploits.
//
// A successful partition yields a global cyclic schedule (each task runs
// only on its processor) that passes the same independent validator as
// every other witness in this repo.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "rt/schedule.hpp"
#include "rt/task_set.hpp"

namespace mgrts::partition {

enum class FitHeuristic {
  kFirstFit,  ///< first processor that accepts the task
  kBestFit,   ///< feasible processor with the highest resulting load
  kWorstFit,  ///< feasible processor with the lowest resulting load
};

[[nodiscard]] const char* to_string(FitHeuristic heuristic);

enum class SortOrder {
  kInput,                  ///< task id order
  kDecreasingUtilization,  ///< C/T descending (classic FFD)
  kDecreasingDensity,      ///< C/D descending (tight windows first)
};

[[nodiscard]] const char* to_string(SortOrder order);

struct Options {
  FitHeuristic fit = FitHeuristic::kFirstFit;
  SortOrder sort = SortOrder::kDecreasingUtilization;
};

struct Result {
  /// True when every task was placed.  False proves nothing (bin packing
  /// heuristics are incomplete) — that asymmetry is the point of the bench.
  bool found = false;
  /// Task ids per processor (valid iff found; empty bins allowed).
  std::vector<std::vector<rt::TaskId>> assignment;
  /// Combined global schedule over the full hyperperiod (iff found).
  std::optional<rt::Schedule> schedule;
  /// Number of exact uniprocessor feasibility checks performed.
  std::int64_t feasibility_checks = 0;
  /// Task that could not be placed (valid iff !found).
  rt::TaskId failed_task = -1;
};

/// Partitions `ts` (constrained deadlines) onto m identical processors.
[[nodiscard]] Result partition_tasks(const rt::TaskSet& ts,
                                     std::int32_t processors,
                                     const Options& options = {});

}  // namespace mgrts::partition
