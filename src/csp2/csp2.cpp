#include "csp2/csp2.hpp"

#include <algorithm>
#include <numeric>

#include "support/assert.hpp"
#include "support/error.hpp"

namespace mgrts::csp2 {

using rt::ProcId;
using rt::Rate;
using rt::TaskId;
using rt::Time;

const char* to_string(ValueOrder order) {
  switch (order) {
    case ValueOrder::kInput: return "CSP2";
    case ValueOrder::kRateMonotonic: return "CSP2+RM";
    case ValueOrder::kDeadlineMonotonic: return "CSP2+DM";
    case ValueOrder::kTMinusC: return "CSP2+(T-C)";
    case ValueOrder::kDMinusC: return "CSP2+(D-C)";
  }
  return "CSP2+?";
}

const std::array<ValueOrder, 4>& informed_value_orders() {
  static const std::array<ValueOrder, 4> orders = {
      ValueOrder::kRateMonotonic, ValueOrder::kDeadlineMonotonic,
      ValueOrder::kTMinusC, ValueOrder::kDMinusC};
  return orders;
}

const char* to_string(Status status) {
  switch (status) {
    case Status::kFeasible: return "feasible";
    case Status::kInfeasible: return "infeasible";
    case Status::kTimeout: return "timeout";
    case Status::kNodeLimit: return "node-limit";
  }
  return "?";
}

std::vector<TaskId> value_order_tasks(const rt::TaskSet& ts,
                                      ValueOrder order) {
  std::vector<TaskId> ids(static_cast<std::size_t>(ts.size()));
  std::iota(ids.begin(), ids.end(), 0);
  auto key = [&](TaskId i) -> Time {
    switch (order) {
      case ValueOrder::kInput: return 0;
      case ValueOrder::kRateMonotonic: return ts[i].period();
      case ValueOrder::kDeadlineMonotonic: return ts[i].deadline();
      case ValueOrder::kTMinusC: return ts[i].t_minus_c();
      case ValueOrder::kDMinusC: return ts[i].d_minus_c();
    }
    return 0;
  };
  std::stable_sort(ids.begin(), ids.end(), [&](TaskId a, TaskId b) {
    const Time ka = key(a);
    const Time kb = key(b);
    if (ka != kb) return ka < kb;
    return a < b;  // deterministic tie-break by id
  });
  return ids;
}

namespace {

/// Precomputed per-task constants for the window arithmetic of DESIGN.md §3.
struct TaskConst {
  Time offset;
  Time wcet;
  Time deadline;
  Time period;
  bool wraps;       ///< last window crosses T (O + D > T_i)
  Time tail_end;    ///< e_i = O + D - T_i - 1 (valid iff wraps)
  Time head_start;  ///< A_i = T - T_i + O (valid iff wraps)
  Rate max_rate;    ///< fastest processor that can serve this task
};

/// How a slot relates to a task's windows, given the traversal position.
enum class Zone { kOutside, kTail, kHead, kNormal };

class Search {
 public:
  Search(const rt::TaskSet& ts, const rt::Platform& platform,
         const Options& options)
      : ts_(ts), platform_(platform), options_(options) {
    T_ = ts.hyperperiod();
    n_ = ts.size();
    m_ = platform.processors();

    tasks_.reserve(static_cast<std::size_t>(n_));
    for (TaskId i = 0; i < n_; ++i) {
      TaskConst c{};
      c.offset = ts[i].offset();
      c.wcet = ts[i].wcet();
      c.deadline = ts[i].deadline();
      c.period = ts[i].period();
      c.wraps = c.offset + c.deadline > c.period;
      c.tail_end = c.offset + c.deadline - c.period - 1;
      c.head_start = T_ - c.period + c.offset;
      c.max_rate = 0;
      for (ProcId j = 0; j < m_; ++j) {
        c.max_rate = std::max(c.max_rate, platform.rate(i, j));
      }
      tasks_.push_back(c);
    }

    // Variable order within a slot column: processor ids, quality-ascending
    // on heterogeneous platforms when requested (§VI-A).
    if (!platform.is_identical() && options.quality_processor_order) {
      proc_order_ = platform.processors_by_quality(ts);
    } else {
      proc_order_.resize(static_cast<std::size_t>(m_));
      std::iota(proc_order_.begin(), proc_order_.end(), 0);
    }
    group_of_proc_ = platform_.group_of(n_);
    group_count_ = 0;
    for (const auto g : group_of_proc_) {
      group_count_ = std::max(group_count_, g + 1);
    }
    group_size_.assign(static_cast<std::size_t>(group_count_), 0);
    for (const auto g : group_of_proc_) {
      ++group_size_[static_cast<std::size_t>(g)];
    }

    order_ = value_order_tasks(ts, options.value_order);
    // Rule 2 compares tasks by their *position in the value order*, not by
    // raw id: §V-C2 orders the values and eq. (10) then breaks symmetry on
    // that ordering (re-indexing tasks by the heuristic).  This keeps the
    // heuristic and the canonical representative aligned — with raw-id
    // comparisons the two would fight each other (a high-priority task
    // with a large id would forbid every smaller-id task on later
    // processors of the group).  With kInput ordering rank == id.
    rank_.assign(static_cast<std::size_t>(n_), 0);
    for (std::size_t pos = 0; pos < order_.size(); ++pos) {
      rank_[static_cast<std::size_t>(order_[pos])] =
          static_cast<TaskId>(pos);
    }

    depth_.assign(static_cast<std::size_t>(n_), 0);
    remaining_.assign(static_cast<std::size_t>(n_), 0);
    tail_units_.assign(static_cast<std::size_t>(n_), 0);
    run_stamp_.assign(static_cast<std::size_t>(n_), -1);
    last_in_group_.assign(static_cast<std::size_t>(group_count_), -1);
    for (TaskId i = 0; i < n_; ++i) {
      depth_[static_cast<std::size_t>(i)] =
          support::floor_mod(-tasks_[static_cast<std::size_t>(i)].offset,
                             tasks_[static_cast<std::size_t>(i)].period);
      remaining_[static_cast<std::size_t>(i)] =
          tasks_[static_cast<std::size_t>(i)].wcet;
    }
  }

  Result run() {
    support::Stopwatch watch;
    Result result;
    result.search_complete =
        platform_.is_identical() || !options_.idle_rule;
    auto finish = [&](Status status) {
      stats_.seconds = watch.seconds();
      result.status = status;
      result.stats = stats_;
      return result;
    };

    // A task no processor can serve can never receive its C_i > 0 units.
    for (TaskId i = 0; i < n_; ++i) {
      if (tasks_[static_cast<std::size_t>(i)].max_rate == 0) {
        return finish(Status::kInfeasible);
      }
    }
    // Column-0 necessary conditions (the same checks every transition runs).
    if (!column_checks(0)) {
      return finish(Status::kInfeasible);
    }

    open_cell(0);
    while (!frames_.empty()) {
      Frame& frame = frames_.back();

      // Undo the frame's previous attempt before trying the next value.
      if (frame.has_assignment) {
        undo_assignment(frame);
      }

      const std::int64_t candidate = next_candidate(frame);
      if (candidate == kNoCandidate) {
        ++stats_.failures;
        frames_.pop_back();
        continue;
      }

      ++stats_.nodes;
      if ((stats_.nodes & 0x3ff) == 0 && options_.deadline.poll()) {
        return finish(Status::kTimeout);
      }
      if (options_.max_nodes >= 0 && stats_.nodes > options_.max_nodes) {
        return finish(Status::kNodeLimit);
      }

      apply_assignment(frame, static_cast<TaskId>(candidate));

      if (frame.pos + 1 < m_) {
        open_cell(frame.cell + 1);
        continue;
      }

      // Last cell of the column: run the slot transition.
      if (!apply_transition(frames_.size() - 1)) {
        ++stats_.failures;
        continue;  // the loop undoes the assignment and tries the next value
      }
      const Time next_t = frame.column + 1;
      if (next_t == T_) {
        result.schedule = build_schedule();
        return finish(Status::kFeasible);
      }
      open_cell(frame.cell + 1);
    }
    return finish(Status::kInfeasible);
  }

 private:
  static constexpr std::int64_t kNoCandidate = -2;

  struct Frame {
    std::int64_t cell = 0;  ///< t * m + pos
    Time column = 0;
    std::int32_t pos = 0;   ///< position in proc_order_
    ProcId proc = 0;
    std::int32_t group = 0;

    std::int32_t iter = 0;      ///< next index into order_; n_ = idle
    bool idle_allowed = false;  ///< decided when the frame opens
    bool has_assignment = false;
    TaskId assigned = rt::kIdle;

    // Assignment undo data.
    Time prev_stamp = -1;
    TaskId prev_last_in_group = -1;
    Rate rate = 0;
    bool charged_tail = false;

    // Transition undo data (only on the last cell of a column).
    bool transition_applied = false;
    std::vector<std::pair<TaskId, Time>> start_undo;
    std::vector<TaskId> group_undo;
  };

  [[nodiscard]] Zone zone(TaskId i, Time t) const {
    const TaskConst& c = tasks_[static_cast<std::size_t>(i)];
    if (depth_[static_cast<std::size_t>(i)] >= c.deadline) {
      return Zone::kOutside;
    }
    if (c.wraps && t <= c.tail_end) return Zone::kTail;
    if (c.wraps && t >= c.head_start) return Zone::kHead;
    return Zone::kNormal;
  }

  /// Work still owed by the job active at (i, t); tail progress is kept in
  /// a separate counter because intermediate jobs reuse `remaining_`.
  [[nodiscard]] Time owed(TaskId i, Zone z) const {
    if (z == Zone::kTail) {
      return tasks_[static_cast<std::size_t>(i)].wcet -
             tail_units_[static_cast<std::size_t>(i)];
    }
    return remaining_[static_cast<std::size_t>(i)];
  }

  /// Traversal slots still usable by the job active at (i, t), including t.
  [[nodiscard]] Time slots_left(TaskId i, Time t, Zone z) const {
    const TaskConst& c = tasks_[static_cast<std::size_t>(i)];
    switch (z) {
      case Zone::kTail:
        return (c.tail_end - t + 1) + (c.period - c.offset);
      case Zone::kHead:
        return T_ - t;
      case Zone::kNormal:
        return c.deadline - depth_[static_cast<std::size_t>(i)];
      case Zone::kOutside:
        return 0;
    }
    return 0;
  }

  [[nodiscard]] bool available(TaskId i, const Frame& frame) const {
    const Zone z = zone(i, frame.column);
    if (z == Zone::kOutside) return false;
    const Rate rate = platform_.rate(i, frame.proc);
    if (rate == 0) return false;
    if (owed(i, z) < rate) return false;  // done, or would overshoot (12)
    if (run_stamp_[static_cast<std::size_t>(i)] == frame.column) {
      return false;  // C3: already running this slot
    }
    if (options_.symmetry_rule &&
        group_size_[static_cast<std::size_t>(frame.group)] > 1 &&
        rank_[static_cast<std::size_t>(i)] <=
            last_in_group_[static_cast<std::size_t>(frame.group)]) {
      return false;  // rule (10)/(13): ascending value-order ranks
    }
    return true;
  }

  void open_cell(std::int64_t cell) {
    Frame frame;
    frame.cell = cell;
    frame.column = static_cast<Time>(cell / m_);
    frame.pos = static_cast<std::int32_t>(cell % m_);
    frame.proc = proc_order_[static_cast<std::size_t>(frame.pos)];
    frame.group = group_of_proc_[static_cast<std::size_t>(frame.proc)];
    stats_.max_column = std::max(stats_.max_column, frame.column);

    // Rule 1: idle is permitted only when no task is available; without the
    // rule it is always permitted (tried after every task).
    if (options_.idle_rule) {
      bool any = false;
      for (TaskId i = 0; i < n_ && !any; ++i) {
        any = available(i, frame);
      }
      frame.idle_allowed = !any;
    } else {
      frame.idle_allowed = true;
    }
    frames_.push_back(std::move(frame));
  }

  /// Returns the next value for the frame: a task id, rt::kIdle, or
  /// kNoCandidate when exhausted.
  [[nodiscard]] std::int64_t next_candidate(Frame& frame) {
    while (frame.iter < n_) {
      const TaskId i = order_[static_cast<std::size_t>(frame.iter)];
      ++frame.iter;
      if (available(i, frame)) return i;
    }
    if (frame.iter == n_) {
      ++frame.iter;
      if (frame.idle_allowed) return rt::kIdle;
    }
    return kNoCandidate;
  }

  void apply_assignment(Frame& frame, TaskId value) {
    frame.has_assignment = true;
    frame.assigned = value;
    cells_resize(frame.cell);
    cells_[static_cast<std::size_t>(frame.cell)] = value;
    if (value == rt::kIdle) return;

    frame.prev_stamp = run_stamp_[static_cast<std::size_t>(value)];
    run_stamp_[static_cast<std::size_t>(value)] = frame.column;

    frame.prev_last_in_group =
        last_in_group_[static_cast<std::size_t>(frame.group)];
    last_in_group_[static_cast<std::size_t>(frame.group)] =
        std::max(frame.prev_last_in_group,
                 rank_[static_cast<std::size_t>(value)]);

    frame.rate = platform_.rate(value, frame.proc);
    frame.charged_tail = zone(value, frame.column) == Zone::kTail;
    if (frame.charged_tail) {
      tail_units_[static_cast<std::size_t>(value)] += frame.rate;
    } else {
      remaining_[static_cast<std::size_t>(value)] -= frame.rate;
    }
  }

  void undo_assignment(Frame& frame) {
    if (frame.transition_applied) undo_transition(frame);
    if (frame.assigned != rt::kIdle) {
      const auto i = static_cast<std::size_t>(frame.assigned);
      if (frame.charged_tail) {
        tail_units_[i] -= frame.rate;
      } else {
        remaining_[i] += frame.rate;
      }
      last_in_group_[static_cast<std::size_t>(frame.group)] =
          frame.prev_last_in_group;
      run_stamp_[i] = frame.prev_stamp;
    }
    frame.has_assignment = false;
    frame.assigned = rt::kIdle;
  }

  /// Necessary-condition checks for the column that is about to be filled
  /// (also run once for column 0 before the search starts).
  [[nodiscard]] bool column_checks(Time t) {
    if (!options_.slack_prune && !options_.tight_demand_prune) return true;
    std::int32_t tight = 0;
    for (TaskId i = 0; i < n_; ++i) {
      const Zone z = zone(i, t);
      if (z == Zone::kOutside) continue;
      const Time rem = owed(i, z);
      if (rem <= 0) continue;
      const Time cap = slots_left(i, t, z);
      if (options_.slack_prune) {
        if (rem > cap * tasks_[static_cast<std::size_t>(i)].max_rate) {
          return false;
        }
      }
      if (options_.tight_demand_prune && platform_.is_identical() &&
          rem == cap) {
        ++tight;
      }
    }
    return tight <= m_;
  }

  /// Advances the per-task state from column `t` to `t+1`.  Returns false
  /// when a closure check or a column check fails (state fully restored by
  /// undo_transition via the caller's undo_assignment).
  [[nodiscard]] bool apply_transition(std::size_t frame_index) {
    Frame& frame = frames_[frame_index];
    const Time t = frame.column;

    // Closure: jobs whose window ends with slot t must be complete.  The
    // check is skipped at a wrapped tail end (t < O_i): that job's head
    // still comes later in the traversal.
    for (TaskId i = 0; i < n_; ++i) {
      const TaskConst& c = tasks_[static_cast<std::size_t>(i)];
      if (depth_[static_cast<std::size_t>(i)] == c.deadline - 1 &&
          t >= c.offset &&
          remaining_[static_cast<std::size_t>(i)] != 0) {
        return false;
      }
    }

    frame.transition_applied = true;
    // Advance depths.
    for (TaskId i = 0; i < n_; ++i) {
      auto& d = depth_[static_cast<std::size_t>(i)];
      d = d + 1 == tasks_[static_cast<std::size_t>(i)].period ? 0 : d + 1;
    }

    const Time next_t = t + 1;
    if (next_t == T_) {
      // End of the hyperperiod: wrapped jobs must have collected their full
      // C_i across tail + head.
      for (TaskId i = 0; i < n_; ++i) {
        if (tasks_[static_cast<std::size_t>(i)].wraps &&
            remaining_[static_cast<std::size_t>(i)] != 0) {
          return false;
        }
      }
      return true;
    }

    // Window starts at next_t: reset the job budget.  The wrapped head
    // start continues from the tail's progress instead (DESIGN.md §3).
    for (TaskId i = 0; i < n_; ++i) {
      const TaskConst& c = tasks_[static_cast<std::size_t>(i)];
      if (depth_[static_cast<std::size_t>(i)] != 0) continue;
      frame.start_undo.emplace_back(i, remaining_[static_cast<std::size_t>(i)]);
      remaining_[static_cast<std::size_t>(i)] =
          next_t + c.deadline > T_
              ? c.wcet - tail_units_[static_cast<std::size_t>(i)]
              : c.wcet;
    }

    // New column: the symmetry chain restarts.
    frame.group_undo = last_in_group_;
    std::fill(last_in_group_.begin(), last_in_group_.end(), TaskId{-1});

    return column_checks(next_t);
  }

  void undo_transition(Frame& frame) {
    if (!frame.group_undo.empty()) {
      last_in_group_ = frame.group_undo;
      frame.group_undo.clear();
    }
    for (auto it = frame.start_undo.rbegin(); it != frame.start_undo.rend();
         ++it) {
      remaining_[static_cast<std::size_t>(it->first)] = it->second;
    }
    frame.start_undo.clear();
    for (TaskId i = 0; i < n_; ++i) {
      auto& d = depth_[static_cast<std::size_t>(i)];
      d = d == 0 ? tasks_[static_cast<std::size_t>(i)].period - 1 : d - 1;
    }
    frame.transition_applied = false;
  }

  void cells_resize(std::int64_t cell) {
    if (static_cast<std::size_t>(cell) >= cells_.size()) {
      cells_.resize(static_cast<std::size_t>(cell) + 1, rt::kIdle);
    }
  }

  [[nodiscard]] rt::Schedule build_schedule() const {
    rt::Schedule schedule(T_, m_);
    for (Time t = 0; t < T_; ++t) {
      for (std::int32_t pos = 0; pos < m_; ++pos) {
        const TaskId v = cells_[static_cast<std::size_t>(t * m_ + pos)];
        if (v != rt::kIdle) {
          schedule.set(t, proc_order_[static_cast<std::size_t>(pos)], v);
        }
      }
    }
    return schedule;
  }

  const rt::TaskSet& ts_;
  const rt::Platform& platform_;
  const Options& options_;

  Time T_ = 0;
  std::int32_t n_ = 0;
  std::int32_t m_ = 0;

  std::vector<TaskConst> tasks_;
  std::vector<ProcId> proc_order_;
  std::vector<std::int32_t> group_of_proc_;
  std::int32_t group_count_ = 0;
  std::vector<std::int32_t> group_size_;
  std::vector<TaskId> order_;
  std::vector<TaskId> rank_;  ///< position of each task in order_

  // Mutable search state.
  std::vector<Time> depth_;       ///< d_i = (t - O_i) mod T_i
  std::vector<Time> remaining_;   ///< budget of the active job
  std::vector<Time> tail_units_;  ///< work banked during a wrapped tail
  std::vector<Time> run_stamp_;   ///< column where the task last ran
  std::vector<TaskId> last_in_group_;
  std::vector<TaskId> cells_;
  std::vector<Frame> frames_;

  Stats stats_;
};

}  // namespace

Result solve(const rt::TaskSet& ts, const rt::Platform& platform,
             const Options& options) {
  if (!ts.is_constrained()) {
    throw ValidationError(
        "csp2::solve expects a constrained-deadline system; expand clones "
        "first (TaskSet::to_constrained)");
  }
  if (platform.rate_rows() > 0 && platform.rate_rows() != ts.size()) {
    throw ValidationError(
        "heterogeneous rate matrix does not match the task count");
  }
  Search search(ts, platform, options);
  return search.run();
}

}  // namespace mgrts::csp2
