// Dedicated CSP2 solver (§V): chronological backtracking over the
// multi-valued variables x_j(t) with the paper's search strategy encoded
// directly in the search procedure rather than as declarative constraints.
//
//   * Variables are ordered chronologically (§V-C1): all of slot t before
//     slot t+1; processors by id on identical platforms, by ascending
//     quality Q(P_j) on heterogeneous ones (§VI-A).
//   * Values (tasks) are ordered by a static heuristic (§V-C2): input order,
//     RM, DM, T-C or D-C, ties by task id.
//   * Rule 1 (§V-C3): the idle value is used only when no task is available
//     for the cell.
//   * Rule 2, eq. (10)/(13): within a group of identical processors the
//     non-idle task ids are assigned in ascending order; idles trail.
//   * Slack pruning (optional, default on): a job whose remaining work
//     exceeds its remaining window capacity fails immediately; on identical
//     platforms a counting variant ("more tight jobs than processors")
//     prunes further.  Both are necessary conditions, so they never change
//     the feasibility verdict.
//
// The solver is fully deterministic (§VII-B) and never materializes the
// m*T variable array during search; per-task counters plus O(1) window
// arithmetic (rt::WindowIndex semantics) keep memory proportional to the
// explored prefix, which is what lets it scale to Table IV's hyperperiods
// in the 10^5 range where the boolean encoding runs out of memory.
//
// Completeness caveat (DESIGN.md §3.6): on *heterogeneous* platforms rule 1
// can lose solutions (running a task early on a fast processor may
// overshoot the exact amount (12) in ways later slots cannot rebalance).
// `Result::search_complete` reports whether an infeasible verdict is a
// proof; it is always true on identical platforms, and true on
// heterogeneous ones when the idle rule is disabled.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "rt/platform.hpp"
#include "rt/schedule.hpp"
#include "rt/task_set.hpp"
#include "support/deadline.hpp"

namespace mgrts::csp2 {

/// §V-C2 value-ordering heuristics.
enum class ValueOrder {
  kInput,              ///< task id order (the tables' plain "CSP2")
  kRateMonotonic,      ///< +RM: smallest T_i first
  kDeadlineMonotonic,  ///< +DM: smallest D_i first
  kTMinusC,            ///< +(T-C): smallest T_i - C_i first
  kDMinusC,            ///< +(D-C): smallest D_i - C_i first
};

[[nodiscard]] const char* to_string(ValueOrder order);

/// The four informed §V-C2 heuristics, in paper order.  This is the lane
/// line-up of core::solve_portfolio (plain input order is dominated by RM
/// and DM on every paper table, so racing it only burns a core).
[[nodiscard]] const std::array<ValueOrder, 4>& informed_value_orders();

struct Options {
  ValueOrder value_order = ValueOrder::kInput;
  bool idle_rule = true;       ///< rule 1 (§V-C3)
  bool symmetry_rule = true;   ///< rule 2, eq. (10)/(13)
  bool slack_prune = true;     ///< per-job remaining-vs-capacity check
  bool tight_demand_prune = true;  ///< identical platforms only
  bool quality_processor_order = true;  ///< §VI-A variable ordering
  std::int64_t max_nodes = -1;          ///< -1 = unlimited
  support::Deadline deadline;           ///< wall-clock budget
};

enum class Status {
  kFeasible,
  kInfeasible,
  kTimeout,
  kNodeLimit,
};

[[nodiscard]] const char* to_string(Status status);

struct Stats {
  std::int64_t nodes = 0;     ///< value assignments attempted
  std::int64_t failures = 0;  ///< dead ends (cell exhaustion / prune hits)
  rt::Time max_column = 0;    ///< deepest slot column reached
  double seconds = 0.0;
};

struct Result {
  Status status = Status::kInfeasible;
  std::optional<rt::Schedule> schedule;  ///< present iff kFeasible
  /// True when a kInfeasible verdict is an exhaustive proof (see header).
  bool search_complete = true;
  Stats stats;
};

/// Solves MGRTS for a constrained-deadline `ts` on `platform`.
/// Arbitrary-deadline systems must be clone-expanded first (§VI-B).
[[nodiscard]] Result solve(const rt::TaskSet& ts, const rt::Platform& platform,
                           const Options& options = {});

/// The static task permutation a heuristic produces (exposed for tests and
/// for the priority-assignment module, which seeds its search with the
/// winning (D-C) order as the paper's discussion suggests).
[[nodiscard]] std::vector<rt::TaskId> value_order_tasks(const rt::TaskSet& ts,
                                                        ValueOrder order);

}  // namespace mgrts::csp2
