// Local search over the CSP formalization — the first future-work bullet
// of §VIII: "using the same CSP formalizations with local search
// algorithms, although they won't be able to prove that a given instance
// is infeasible".
//
// Representation: instead of the slot-major variables of CSP1/CSP2, each
// *job* holds a set of exactly C_i distinct slots inside its availability
// window.  Conditions C1 (windows), C3 (distinct slots per job, windows of
// one task disjoint) and C4 (exactly C_i units) hold *structurally*; only
// C2 — at most m busy tasks per slot — can be violated, giving the
// conflict count
//     cost = sum_t max(0, occupancy(t) - m).
// Min-conflicts moves one unit out of an overloaded slot into the
// least-loaded alternative slot of the same job (with an occasional random
// walk step to escape plateaus), restarting from a fresh random state when
// stuck.  cost == 0 yields a schedule witness that passes the independent
// validator like every other solver's.
//
// By construction the solver can only answer kFeasible or "gave up" —
// exactly the asymmetry the paper points out.
#pragma once

#include <cstdint>
#include <optional>

#include "rt/platform.hpp"
#include "rt/schedule.hpp"
#include "rt/task_set.hpp"
#include "support/deadline.hpp"

namespace mgrts::ls {

struct Options {
  std::uint64_t seed = 1;
  /// Moves attempted per restart.
  std::int64_t iterations_per_restart = 50'000;
  /// Number of random restarts before giving up.
  std::int64_t restarts = 8;
  /// Probability of a random-walk move instead of the greedy one.
  double random_walk = 0.08;
  support::Deadline deadline;
};

enum class Status {
  kFeasible,  ///< conflict-free assignment found (witness attached)
  kUnknown,   ///< budget exhausted; proves nothing (§VIII)
  kTimeout,   ///< wall-clock deadline hit
};

[[nodiscard]] const char* to_string(Status status);

struct Stats {
  std::int64_t iterations = 0;
  std::int64_t restarts_used = 0;
  std::int64_t best_cost = 0;  ///< lowest conflict count seen
  double seconds = 0.0;
};

struct Result {
  Status status = Status::kUnknown;
  std::optional<rt::Schedule> schedule;
  Stats stats;
};

/// Runs min-conflicts on `ts` (constrained deadlines) over m identical
/// processors.  Throws ValidationError for unsupported inputs and
/// ResourceError when the job table exceeds its memory budget.
[[nodiscard]] Result solve(const rt::TaskSet& ts, const rt::Platform& platform,
                           const Options& options = {});

}  // namespace mgrts::ls
