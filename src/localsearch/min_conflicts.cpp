#include "localsearch/min_conflicts.hpp"

#include <algorithm>
#include <vector>

#include "rt/jobs.hpp"
#include "support/assert.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace mgrts::ls {

using rt::ProcId;
using rt::TaskId;
using rt::Time;

const char* to_string(Status status) {
  switch (status) {
    case Status::kFeasible: return "feasible";
    case Status::kUnknown: return "unknown";
    case Status::kTimeout: return "timeout";
  }
  return "?";
}

namespace {

class MinConflicts {
 public:
  MinConflicts(const rt::TaskSet& ts, std::int32_t m, const Options& options)
      : ts_(ts), jobs_(ts), m_(m), options_(options) {
    T_ = ts.hyperperiod();
    occupancy_.assign(static_cast<std::size_t>(T_), 0);
    overfull_pos_.assign(static_cast<std::size_t>(T_), -1);
    chosen_.resize(jobs_.size());
    in_use_.assign(static_cast<std::size_t>(T_), false);
  }

  Result run() {
    support::Stopwatch watch;
    support::Rng rng(options_.seed);
    Result result;
    result.stats.best_cost = -1;

    for (std::int64_t restart = 0; restart < options_.restarts; ++restart) {
      result.stats.restarts_used = restart;
      initialize(rng);
      if (cost_ == 0) {
        return finish(result, watch, Status::kFeasible);
      }
      for (std::int64_t it = 0; it < options_.iterations_per_restart; ++it) {
        ++result.stats.iterations;
        if ((result.stats.iterations & 0x3ff) == 0 &&
            options_.deadline.poll()) {
          return finish(result, watch, Status::kTimeout);
        }
        step(rng);
        if (result.stats.best_cost < 0 || cost_ < result.stats.best_cost) {
          result.stats.best_cost = cost_;
        }
        if (cost_ == 0) {
          return finish(result, watch, Status::kFeasible);
        }
      }
    }
    return finish(result, watch, Status::kUnknown);
  }

 private:
  Result finish(Result& result, const support::Stopwatch& watch,
                Status status) {
    result.status = status;
    if (result.stats.best_cost < 0) result.stats.best_cost = cost_;
    if (status == Status::kFeasible) {
      result.stats.best_cost = 0;
      result.schedule = build_schedule();
    }
    result.stats.seconds = watch.seconds();
    return result;
  }

  // ------------------------------------------------------------ state ops

  void add_unit(Time slot) {
    auto& occ = occupancy_[static_cast<std::size_t>(slot)];
    ++occ;
    if (occ == m_ + 1) mark_overfull(slot);
    if (occ > m_) ++cost_;
  }

  void remove_unit(Time slot) {
    auto& occ = occupancy_[static_cast<std::size_t>(slot)];
    MGRTS_ASSERT(occ > 0);
    if (occ > m_) --cost_;
    --occ;
    if (occ == m_) unmark_overfull(slot);
  }

  void mark_overfull(Time slot) {
    overfull_pos_[static_cast<std::size_t>(slot)] =
        static_cast<std::int32_t>(overfull_.size());
    overfull_.push_back(slot);
  }

  void unmark_overfull(Time slot) {
    const auto pos = overfull_pos_[static_cast<std::size_t>(slot)];
    MGRTS_ASSERT(pos >= 0);
    const Time moved = overfull_.back();
    overfull_[static_cast<std::size_t>(pos)] = moved;
    overfull_pos_[static_cast<std::size_t>(moved)] = pos;
    overfull_.pop_back();
    overfull_pos_[static_cast<std::size_t>(slot)] = -1;
  }

  void initialize(support::Rng& rng) {
    std::fill(occupancy_.begin(), occupancy_.end(), 0);
    for (const Time slot : overfull_) {
      overfull_pos_[static_cast<std::size_t>(slot)] = -1;
    }
    overfull_.clear();
    cost_ = 0;

    // Greedy randomized construction: each job picks its C_i slots among
    // the currently least-loaded slots of its window (ties shuffled).
    for (std::size_t idx = 0; idx < jobs_.size(); ++idx) {
      const rt::Job& job = jobs_.jobs()[idx];
      std::vector<Time> window = job.slots;
      rng.shuffle(window);
      std::stable_sort(window.begin(), window.end(), [&](Time a, Time b) {
        return occupancy_[static_cast<std::size_t>(a)] <
               occupancy_[static_cast<std::size_t>(b)];
      });
      auto& mine = chosen_[idx];
      mine.assign(window.begin(),
                  window.begin() + static_cast<std::ptrdiff_t>(job.wcet));
      for (const Time slot : mine) add_unit(slot);
    }
  }

  void step(support::Rng& rng) {
    MGRTS_ASSERT(!overfull_.empty());
    // Pick a conflicted slot, then one of the jobs occupying it.
    const Time slot = overfull_[static_cast<std::size_t>(rng.uniform(
        0, static_cast<std::int64_t>(overfull_.size()) - 1))];
    const std::size_t victim = random_job_on(slot, rng);

    const rt::Job& job = jobs_.jobs()[victim];
    auto& mine = chosen_[victim];

    // Candidate target slots: window slots this job does not already use.
    for (const Time s : mine) in_use_[static_cast<std::size_t>(s)] = true;
    Time best = -1;
    std::int32_t best_occ = 0;
    std::int64_t ties = 0;
    const bool walk = rng.chance(options_.random_walk);
    for (const Time s : job.slots) {
      if (in_use_[static_cast<std::size_t>(s)]) continue;
      const auto occ = occupancy_[static_cast<std::size_t>(s)];
      if (walk) {
        // Reservoir-sample uniformly among all alternatives.
        ++ties;
        if (rng.uniform(1, ties) == 1) best = s;
        continue;
      }
      if (best < 0 || occ < best_occ) {
        best = s;
        best_occ = occ;
        ties = 1;
      } else if (occ == best_occ) {
        ++ties;
        if (rng.uniform(1, ties) == 1) best = s;
      }
    }
    for (const Time s : mine) in_use_[static_cast<std::size_t>(s)] = false;

    if (best < 0) return;  // window == C_i slots: job has no freedom

    // Apply the move (even if it does not improve: min-conflicts relies on
    // sideways moves; moving out of an overfull slot never increases cost
    // unless the target is also at capacity, which the walk tolerates).
    const auto it = std::find(mine.begin(), mine.end(), slot);
    MGRTS_ASSERT(it != mine.end());
    *it = best;
    remove_unit(slot);
    add_unit(best);
  }

  /// Uniformly picks a job occupying `slot` (jobs store few slots, so a
  /// scan with reservoir sampling over the jobs whose window covers the
  /// slot is cheap through the per-task window arithmetic).
  std::size_t random_job_on(Time slot, support::Rng& rng) {
    std::size_t pick = 0;
    std::int64_t seen = 0;
    for (TaskId i = 0; i < ts_.size(); ++i) {
      const auto job_index = jobs_.job_at(i, slot);
      if (job_index < 0) continue;
      const auto idx = static_cast<std::size_t>(job_index);
      const auto& mine = chosen_[idx];
      if (std::find(mine.begin(), mine.end(), slot) == mine.end()) continue;
      ++seen;
      if (rng.uniform(1, seen) == 1) pick = idx;
    }
    MGRTS_ASSERT(seen > 0);
    return pick;
  }

  rt::Schedule build_schedule() const {
    rt::Schedule schedule(T_, m_);
    std::vector<std::vector<TaskId>> per_slot(static_cast<std::size_t>(T_));
    for (std::size_t idx = 0; idx < jobs_.size(); ++idx) {
      for (const Time slot : chosen_[idx]) {
        per_slot[static_cast<std::size_t>(slot)].push_back(
            jobs_.jobs()[idx].task);
      }
    }
    for (Time t = 0; t < T_; ++t) {
      auto& tasks = per_slot[static_cast<std::size_t>(t)];
      MGRTS_ASSERT(static_cast<std::int32_t>(tasks.size()) <= m_);
      std::sort(tasks.begin(), tasks.end());
      for (std::size_t j = 0; j < tasks.size(); ++j) {
        schedule.set(t, static_cast<ProcId>(j), tasks[j]);
      }
    }
    return schedule;
  }

  const rt::TaskSet& ts_;
  rt::JobTable jobs_;
  std::int32_t m_;
  const Options& options_;
  Time T_ = 0;

  std::vector<std::vector<Time>> chosen_;  ///< slots per job
  std::vector<std::int32_t> occupancy_;
  std::vector<Time> overfull_;
  std::vector<std::int32_t> overfull_pos_;
  std::vector<bool> in_use_;
  std::int64_t cost_ = 0;
};

}  // namespace

Result solve(const rt::TaskSet& ts, const rt::Platform& platform,
             const Options& options) {
  if (!platform.is_identical()) {
    throw ValidationError("local search supports identical platforms only");
  }
  if (!ts.is_constrained()) {
    throw ValidationError(
        "local search expects constrained deadlines; expand clones first");
  }
  // A job with C > D can never pick C distinct window slots.
  for (TaskId i = 0; i < ts.size(); ++i) {
    if (ts[i].wcet() > ts[i].deadline()) {
      Result result;
      result.status = Status::kUnknown;  // local search proves nothing
      return result;
    }
  }
  MinConflicts search(ts, platform.processors(), options);
  return search.run();
}

}  // namespace mgrts::ls
