// mgrts_coordd — the shard coordinator of the distributed batch layer
// (DESIGN.md §16).
//
// Partitions a generator batch into index-list shards, dispatches them to
// mgrts_workerd daemons over the serve wire, culls/re-dispatches
// stragglers by heartbeat, and merges the streamed rows into one batch
// result — record-identical to a single-box run by construction.
//
// --verify-local is the CI smoke's teeth: after the fleet run, the same
// batch runs in-process through the identical shard executor and every
// per-index record is compared field by field.  Any mismatch exits
// non-zero.  Wall-clock budgets make timeout boundaries timing-sensitive
// (true of any budgeted run); pass --max-nodes with a generous
// --time-limit-ms for a fully deterministic comparison, exactly like the
// determinism tests do.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "dist/coord.hpp"
#include "exp/sharded.hpp"
#include "support/deadline.hpp"

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s --workers SOCK[,SOCK...] [options]\n"
      "\n"
      "  --workers LIST        comma-separated worker socket paths\n"
      "                        (empty/omitted = run in-process, single-box)\n"
      "  --specs LIST          solver line-up, registry names (default\n"
      "                        csp2-dmc; see exp::known_spec_names)\n"
      "  --instances N         generator-stream length (default 32)\n"
      "  --seed S              stream seed (default 20090911)\n"
      "  --tasks N             tasks per instance (default 10)\n"
      "  --processors M        processors (default 5)\n"
      "  --tmax T              Tmax (default 7)\n"
      "  --time-limit-ms MS    per-run wall budget (default 1000)\n"
      "  --max-nodes N         per-run node budget (-1 = spec default)\n"
      "  --max-attempts N      worker-side retry attempts (default 1)\n"
      "  --shards N            shard count (0 = two per worker)\n"
      "  --stall-ms MS         straggler cull threshold (default 5000)\n"
      "  --verify-local        re-run in-process and compare records;\n"
      "                        exit 1 on any mismatch\n",
      argv0);
}

std::int64_t parse_int(const char* flag, const char* text) {
  try {
    std::size_t used = 0;
    const std::int64_t value = std::stoll(text, &used);
    if (used != std::strlen(text)) throw std::invalid_argument("trailing");
    return value;
  } catch (const std::exception&) {
    std::fprintf(stderr, "mgrts_coordd: %s expects an integer, got '%s'\n",
                 flag, text);
    std::exit(2);
  }
}

std::vector<std::string> split_list(const std::string& list) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= list.size()) {
    const std::size_t comma = list.find(',', pos);
    const std::string item =
        list.substr(pos, comma == std::string::npos ? comma : comma - pos);
    pos = comma == std::string::npos ? list.size() + 1 : comma + 1;
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// Budget-insensitive run comparison: the semantic fields always, the
/// deterministic search counters unless a wall-clock expiry is involved
/// (a kDeadline boundary is timing-shaped even on one box).
bool runs_match(const mgrts::exp::RunRecord& a, const mgrts::exp::RunRecord& b,
                std::string* why) {
  const auto fail = [&](const std::string& reason) {
    if (why != nullptr) *why = reason;
    return false;
  };
  if (a.verdict != b.verdict) return fail("verdict");
  if (a.complete != b.complete) return fail("complete");
  if (a.witness_ok != b.witness_ok) return fail("witness_ok");
  if (a.failure_cause != b.failure_cause) return fail("failure_cause");
  if (a.decided_by != b.decided_by) return fail("decided_by");
  const bool wall_shaped =
      a.failure_cause == mgrts::core::FailureCause::kDeadline ||
      a.failure_cause == mgrts::core::FailureCause::kCancelled ||
      a.verdict == mgrts::core::Verdict::kTimeout;
  if (!wall_shaped) {
    if (a.nodes != b.nodes) return fail("nodes");
    if (a.nogoods.recorded != b.nogoods.recorded ||
        a.nogoods.replay_hits != b.nogoods.replay_hits ||
        a.nogoods.lits_after != b.nogoods.lits_after) {
      return fail("nogood stats");
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  mgrts::exp::BatchOptions batch;
  batch.instances = 32;
  batch.seed = 20090911;
  mgrts::dist::FleetOptions fleet;
  std::vector<std::string> specs = {"csp2-dmc"};
  std::int64_t time_limit_ms = 1'000;
  bool verify_local = false;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "mgrts_coordd: %s needs a value\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--help" || flag == "-h") {
      usage(argv[0]);
      return 0;
    } else if (flag == "--workers") {
      fleet.workers = split_list(value());
    } else if (flag == "--specs") {
      specs = split_list(value());
    } else if (flag == "--instances") {
      batch.instances = parse_int("--instances", value());
    } else if (flag == "--seed") {
      batch.seed = static_cast<std::uint64_t>(parse_int("--seed", value()));
    } else if (flag == "--tasks") {
      batch.generator.tasks =
          static_cast<std::int32_t>(parse_int("--tasks", value()));
    } else if (flag == "--processors") {
      batch.generator.processors =
          static_cast<std::int32_t>(parse_int("--processors", value()));
    } else if (flag == "--tmax") {
      batch.generator.t_max = parse_int("--tmax", value());
    } else if (flag == "--time-limit-ms") {
      time_limit_ms = parse_int("--time-limit-ms", value());
    } else if (flag == "--max-nodes") {
      fleet.max_nodes = parse_int("--max-nodes", value());
    } else if (flag == "--max-attempts") {
      fleet.max_attempts = static_cast<std::int32_t>(
          std::max<std::int64_t>(1, parse_int("--max-attempts", value())));
    } else if (flag == "--shards") {
      fleet.shards =
          static_cast<std::int32_t>(parse_int("--shards", value()));
    } else if (flag == "--stall-ms") {
      fleet.stall_ms = parse_int("--stall-ms", value());
    } else if (flag == "--verify-local") {
      verify_local = true;
    } else {
      std::fprintf(stderr, "mgrts_coordd: unknown flag '%s'\n", flag.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  try {
    mgrts::dist::FleetStats stats;
    mgrts::support::Stopwatch watch;
    const mgrts::exp::BatchResult fleet_result = mgrts::exp::run_batch_sharded(
        batch, specs, time_limit_ms, fleet, &stats);
    const double fleet_seconds = watch.seconds();

    for (std::size_t s = 0; s < fleet_result.labels.size(); ++s) {
      std::int64_t feasible = 0, infeasible = 0, overruns = 0;
      for (const auto& inst : fleet_result.instances) {
        const auto& run = inst.runs[s];
        if (run.found_schedule()) ++feasible;
        else if (run.proved_infeasible()) ++infeasible;
        else ++overruns;
      }
      std::printf("%-16s feasible %lld  infeasible %lld  overrun %lld\n",
                  fleet_result.labels[s].c_str(),
                  static_cast<long long>(feasible),
                  static_cast<long long>(infeasible),
                  static_cast<long long>(overruns));
    }
    std::printf(
        "fleet: %d workers, %d shards, %.2fs wall; redispatched %d "
        "(stalls %d, transport %d), duplicates %lld, local fallbacks %d\n",
        static_cast<int>(fleet.workers.size()), stats.shards, fleet_seconds,
        stats.redispatched, stats.stall_culls, stats.transport_failures,
        static_cast<long long>(stats.duplicate_rows), stats.local_fallbacks);

    if (stats.duplicate_rows != 0) {
      std::fprintf(stderr,
                   "mgrts_coordd: exactly-once merge violated (%lld "
                   "duplicate rows)\n",
                   static_cast<long long>(stats.duplicate_rows));
      return 1;
    }

    if (verify_local) {
      // Same run-shaping options (max_nodes above all), no workers: the
      // reference run must budget each solve exactly like the fleet did,
      // or hard instances legitimately diverge.
      mgrts::dist::FleetOptions local_fleet = fleet;
      local_fleet.workers.clear();
      const mgrts::exp::BatchResult local = mgrts::exp::run_batch_sharded(
          batch, specs, time_limit_ms, local_fleet, nullptr);
      if (local.instances.size() != fleet_result.instances.size()) {
        std::fprintf(stderr, "mgrts_coordd: verify-local: instance count "
                             "mismatch\n");
        return 1;
      }
      std::int64_t mismatches = 0;
      for (std::size_t k = 0; k < local.instances.size(); ++k) {
        const auto& a = fleet_result.instances[k];
        const auto& b = local.instances[k];
        if (a.index != b.index || a.runs.size() != b.runs.size()) {
          std::fprintf(stderr,
                       "mgrts_coordd: verify-local: row %zu shape mismatch\n",
                       k);
          ++mismatches;
          continue;
        }
        for (std::size_t s = 0; s < a.runs.size(); ++s) {
          std::string why;
          if (!runs_match(a.runs[s], b.runs[s], &why)) {
            std::fprintf(stderr,
                         "mgrts_coordd: verify-local: index %llu spec %s: "
                         "%s differs\n",
                         static_cast<unsigned long long>(a.index),
                         fleet_result.labels[s].c_str(), why.c_str());
            ++mismatches;
          }
        }
      }
      if (mismatches != 0) {
        std::fprintf(stderr,
                     "mgrts_coordd: verify-local FAILED (%lld mismatches)\n",
                     static_cast<long long>(mismatches));
        return 1;
      }
      std::printf("verify-local: fleet records match the single-box run\n");
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mgrts_coordd: fatal: %s\n", e.what());
    return 1;
  }
}
