// mgrts_serverd — the resident schedulability solver daemon (DESIGN.md §13).
//
// Serves solve/health/ping/shutdown requests on an AF_UNIX socket.  The
// --fault-* flags arm the deterministic process-wide FaultInjector before
// serving starts, which is how the CI chaos smoke proves the containment
// story end-to-end: with faults firing inside the solver, every request
// still gets a tagged response and the process exits cleanly on "shutdown".
#include <algorithm>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/server.hpp"
#include "support/fault.hpp"

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "\n"
      "  --socket PATH            AF_UNIX socket path (default "
      "/tmp/mgrts.sock)\n"
      "  --workers N              connection-handler threads (default 4)\n"
      "  --default-timeout-ms MS  budget for requests without timeout-ms\n"
      "  --max-timeout-ms MS      hard ceiling on any request budget\n"
      "  --cache-capacity N       verdict-cache entries; 0 disables\n"
      "  --watchdog-stall-ms MS   cull wedged handlers after MS; 0 off\n"
      "\n"
      "chaos (deterministic fault injection, for the CI smoke):\n"
      "  --fault-seed S           arm the injector with this seed\n"
      "  --fault-rate R           per-evaluation firing probability [0,1]\n"
      "  --fault-sites LIST       comma list: flow-network,job-table,\n"
      "                           schedule-table,csp-var-budget,deadline,\n"
      "                           propagator,stall (kCancel is sticky and\n"
      "                           not servable; it is rejected here)\n"
      "  --fault-max N            total fault cap (-1 unlimited)\n"
      "  --fault-stall-cap-ms MS  upper bound on one injected stall\n",
      argv0);
}

std::int64_t parse_int(const char* flag, const char* text) {
  try {
    std::size_t used = 0;
    const std::int64_t value = std::stoll(text, &used);
    if (used != std::strlen(text)) throw std::invalid_argument("trailing");
    return value;
  } catch (const std::exception&) {
    std::fprintf(stderr, "mgrts_serverd: %s expects an integer, got '%s'\n",
                 flag, text);
    std::exit(2);
  }
}

unsigned parse_sites(const std::string& list) {
  using mgrts::support::FaultSite;
  unsigned mask = 0;
  std::size_t pos = 0;
  while (pos <= list.size()) {
    const std::size_t comma = list.find(',', pos);
    const std::string name =
        list.substr(pos, comma == std::string::npos ? comma : comma - pos);
    pos = comma == std::string::npos ? list.size() + 1 : comma + 1;
    if (name.empty()) continue;
    bool found = false;
    for (int s = 0; s < mgrts::support::kFaultSiteCount; ++s) {
      const auto site = static_cast<FaultSite>(s);
      if (name == mgrts::support::to_string(site)) {
        if (site == FaultSite::kCancel) {
          // A fired kCancel is sticky on its target token; in a resident
          // daemon it would degrade every later request sharing the plan's
          // target.  The chaos soak covers kCancel in-process instead.
          std::fprintf(stderr,
                       "mgrts_serverd: fault site 'cancel' is not servable "
                       "in a resident daemon\n");
          std::exit(2);
        }
        mask |= mgrts::support::FaultPlan::mask(site);
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr, "mgrts_serverd: unknown fault site '%s'\n",
                   name.c_str());
      std::exit(2);
    }
  }
  return mask;
}

}  // namespace

int main(int argc, char** argv) {
  mgrts::serve::ServerOptions options;
  mgrts::support::FaultPlan plan;
  bool arm = false;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "mgrts_serverd: %s needs a value\n",
                     flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--help" || flag == "-h") {
      usage(argv[0]);
      return 0;
    } else if (flag == "--socket") {
      options.socket_path = value();
    } else if (flag == "--workers") {
      options.workers = static_cast<std::size_t>(
          std::max<std::int64_t>(1, parse_int("--workers", value())));
    } else if (flag == "--default-timeout-ms") {
      options.service.default_timeout_ms =
          parse_int("--default-timeout-ms", value());
    } else if (flag == "--max-timeout-ms") {
      options.service.max_timeout_ms = parse_int("--max-timeout-ms", value());
    } else if (flag == "--cache-capacity") {
      options.service.cache.capacity = static_cast<std::size_t>(
          std::max<std::int64_t>(0, parse_int("--cache-capacity", value())));
    } else if (flag == "--watchdog-stall-ms") {
      options.watchdog_stall_ms = parse_int("--watchdog-stall-ms", value());
    } else if (flag == "--fault-seed") {
      plan.seed = static_cast<std::uint64_t>(parse_int("--fault-seed", value()));
      arm = true;
    } else if (flag == "--fault-rate") {
      plan.rate = std::atof(value());
      arm = true;
    } else if (flag == "--fault-sites") {
      plan.sites = parse_sites(value());
      arm = true;
    } else if (flag == "--fault-max") {
      plan.max_faults = parse_int("--fault-max", value());
    } else if (flag == "--fault-stall-cap-ms") {
      plan.stall_cap_ms = parse_int("--fault-stall-cap-ms", value());
    } else {
      std::fprintf(stderr, "mgrts_serverd: unknown flag '%s'\n", flag.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  // A client that vanishes mid-reply must be a SocketError on the handler
  // thread, not a process kill (write_all uses MSG_NOSIGNAL, but belt and
  // braces for any libc path that raises SIGPIPE anyway).
  std::signal(SIGPIPE, SIG_IGN);

  if (arm) {
    if (plan.sites == 0 || plan.rate <= 0.0) {
      std::fprintf(stderr,
                   "mgrts_serverd: --fault-seed/--fault-rate/--fault-sites "
                   "must be given together\n");
      return 2;
    }
    mgrts::support::FaultInjector::arm(plan);
    std::printf("mgrts_serverd: fault injector armed (seed=%llu rate=%g "
                "sites=0x%x)\n",
                static_cast<unsigned long long>(plan.seed), plan.rate,
                plan.sites);
  }

  try {
    mgrts::serve::Server server(options);
    std::printf("mgrts_serverd: serving on %s (%zu workers)\n",
                server.socket_path().c_str(), options.workers);
    std::fflush(stdout);
    server.run();
    const auto counters = server.service().counters();
    std::printf(
        "mgrts_serverd: shutdown after %lld requests (%lld solved, %lld "
        "degraded, %lld errors, %lld cache hits, %lld culled)\n",
        static_cast<long long>(counters.requests),
        static_cast<long long>(counters.solved),
        static_cast<long long>(counters.degraded),
        static_cast<long long>(counters.parse_errors +
                               counters.validation_errors +
                               counters.protocol_errors +
                               counters.internal_errors),
        static_cast<long long>(counters.cache_hits),
        static_cast<long long>(server.watchdog_culled()));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mgrts_serverd: fatal: %s\n", e.what());
    return 1;
  }
}
