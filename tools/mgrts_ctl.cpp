// mgrts_ctl — control CLI for the resident solver daemon.
//
//   mgrts_ctl [--socket PATH] ping
//   mgrts_ctl [--socket PATH] solve FILE [--timeout-ms MS] [--retries N]
//                                   [--method M] [--no-cache]
//   mgrts_ctl [--socket PATH] health
//   mgrts_ctl [--socket PATH] shutdown
//   mgrts_ctl [--socket PATH] smoke N
//
// `smoke N` drives the CI chaos job's scripted request mix — valid
// (feasible and infeasible), malformed, structurally invalid, and
// deadline-starved requests, round-robin — and FAILS (exit 1) unless every
// single request receives a well-formed response with the expected tag.
// "Zero lost responses" is the whole acceptance criterion: with the
// daemon's fault injector armed, verdicts may degrade to unknown, but
// silence or a dropped connection is never acceptable.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/client.hpp"

namespace {

using mgrts::serve::Client;
using mgrts::serve::SolveParams;
using mgrts::serve::SolveResult;

struct SmokeCase {
  const char* label;
  const char* body;
  std::int64_t timeout_ms;  // -1: daemon default
  const char* expect;       // "ok", "error:parse", "error:validation"
};

// The scripted mix.  Feasible/infeasible truths are flow-oracle certain
// (identical platforms), so even under injected faults a *decided* verdict
// that contradicts them is a smoke failure, not a degradation.
constexpr SmokeCase kMix[] = {
    {"feasible",
     "tasks 2\n0 1 2 2\n0 1 2 2\nprocessors 2\n", -1, "ok"},
    {"infeasible",
     "tasks 3\n0 2 2 2\n0 2 2 2\n0 2 2 2\nprocessors 1\n", -1, "ok"},
    {"malformed", "tasks two\n0 1 2 2\n", -1, "error:parse"},
    {"invalid-system",
     "tasks 1\n0 0 2 4\nprocessors 1\n", -1, "error:validation"},
    {"deadline-starved",
     "tasks 2\n0 1 2 2\n0 1 2 2\nprocessors 2\n", 0, "ok"},
};

int run_smoke(const std::string& socket_path, std::int64_t count) {
  std::int64_t sent = 0;
  std::int64_t answered = 0;
  std::int64_t expectation_misses = 0;
  std::int64_t wrong_verdicts = 0;
  std::int64_t degraded = 0;
  std::int64_t cache_hits = 0;

  for (std::int64_t i = 0; i < count; ++i) {
    const SmokeCase& c = kMix[static_cast<std::size_t>(i) % std::size(kMix)];
    ++sent;
    try {
      // Fresh connection per request: also exercises accept/close churn.
      Client client(socket_path);
      SolveParams params;
      params.id = std::string(c.label) + "#" + std::to_string(i);
      params.timeout_ms = c.timeout_ms;
      const SolveResult r = client.solve(c.body, params);
      ++answered;
      if (r.cache_hit) ++cache_hits;
      if (r.cause == mgrts::core::FailureCause::kMemory ||
          r.cause == mgrts::core::FailureCause::kInternalError ||
          r.cause == mgrts::core::FailureCause::kFaultInjected) {
        ++degraded;
      }

      const std::string expect = c.expect;
      if (expect == "ok") {
        if (!r.ok) {
          ++expectation_misses;
          std::fprintf(stderr, "smoke: %s answered error:%s (%s)\n",
                       params.id.c_str(), r.error_kind.c_str(),
                       r.detail.c_str());
          continue;
        }
        // Under chaos a decided verdict must still match the fault-free
        // truth; only degradation to a non-decisive verdict is tolerated.
        const bool decided =
            mgrts::core::decisive(r.verdict, r.complete);
        if (decided && std::strcmp(c.label, "feasible") == 0 &&
            r.verdict != mgrts::core::Verdict::kFeasible) {
          ++wrong_verdicts;
        }
        if (decided && std::strcmp(c.label, "infeasible") == 0 &&
            r.verdict != mgrts::core::Verdict::kInfeasible) {
          ++wrong_verdicts;
        }
      } else {
        const std::string got =
            r.ok ? std::string("ok") : "error:" + r.error_kind;
        if (got != expect) {
          ++expectation_misses;
          std::fprintf(stderr, "smoke: %s expected %s, got %s\n",
                       params.id.c_str(), expect.c_str(), got.c_str());
        }
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "smoke: request %lld LOST: %s\n",
                   static_cast<long long>(i), e.what());
    }
  }

  std::printf(
      "smoke: %lld sent, %lld answered, %lld degraded, %lld cache hits, "
      "%lld expectation misses, %lld wrong verdicts\n",
      static_cast<long long>(sent), static_cast<long long>(answered),
      static_cast<long long>(degraded), static_cast<long long>(cache_hits),
      static_cast<long long>(expectation_misses),
      static_cast<long long>(wrong_verdicts));

  const bool pass =
      answered == sent && expectation_misses == 0 && wrong_verdicts == 0;
  std::printf("smoke: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

void print_message(const mgrts::serve::Message& message) {
  std::printf("%s\n", message.kind.c_str());
  for (const auto& [key, value] : message.headers) {
    std::printf("  %s %s\n", key.c_str(), value.c_str());
  }
  if (!message.body.empty()) std::printf("  -- %s\n", message.body.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path = "/tmp/mgrts.sock";
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);

  std::size_t pos = 0;
  if (pos + 1 < args.size() && args[pos] == "--socket") {
    socket_path = args[pos + 1];
    pos += 2;
  }
  if (pos >= args.size()) {
    std::fprintf(stderr,
                 "usage: mgrts_ctl [--socket PATH] "
                 "ping|solve|health|shutdown|smoke ...\n"
                 "  ping/health/shutdown also drive mgrts_workerd sockets\n"
                 "  (the shard workers speak the same control kinds)\n");
    return 2;
  }
  const std::string command = args[pos++];

  try {
    if (command == "ping") {
      Client client(socket_path);
      const bool ok = client.ping();
      std::printf("%s\n", ok ? "pong" : "no pong");
      return ok ? 0 : 1;
    }
    if (command == "health") {
      Client client(socket_path);
      print_message(client.health());
      return 0;
    }
    if (command == "shutdown") {
      Client client(socket_path);
      client.shutdown();
      std::printf("bye\n");
      return 0;
    }
    if (command == "smoke") {
      if (pos >= args.size()) {
        std::fprintf(stderr, "mgrts_ctl: smoke needs a request count\n");
        return 2;
      }
      return run_smoke(socket_path, std::stoll(args[pos]));
    }
    if (command == "solve") {
      if (pos >= args.size()) {
        std::fprintf(stderr, "mgrts_ctl: solve needs a file (or '-')\n");
        return 2;
      }
      const std::string file = args[pos++];
      SolveParams params;
      while (pos < args.size()) {
        const std::string flag = args[pos++];
        const auto value = [&]() -> std::string {
          if (pos >= args.size()) {
            throw std::runtime_error(flag + " needs a value");
          }
          return args[pos++];
        };
        if (flag == "--timeout-ms") {
          params.timeout_ms = std::stoll(value());
        } else if (flag == "--retries") {
          params.retries = static_cast<std::int32_t>(std::stol(value()));
        } else if (flag == "--method") {
          params.method = value();
        } else if (flag == "--no-cache") {
          params.no_cache = true;
        } else {
          throw std::runtime_error("unknown solve flag '" + flag + "'");
        }
      }
      std::string text;
      if (file == "-") {
        std::ostringstream buffer;
        buffer << std::cin.rdbuf();
        text = buffer.str();
      } else {
        std::ifstream in(file);
        if (!in) {
          std::fprintf(stderr, "mgrts_ctl: cannot read '%s'\n", file.c_str());
          return 2;
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();
        text = buffer.str();
      }
      Client client(socket_path);
      const SolveResult r = client.solve(text, params);
      if (!r.ok) {
        std::printf("error %s: %s\n", r.error_kind.c_str(), r.detail.c_str());
        return 1;
      }
      std::printf("verdict %s%s\n", mgrts::core::to_string(r.verdict),
                  r.complete ? "" : " (incomplete)");
      std::printf("cause %s\n", mgrts::core::to_string(r.cause));
      std::printf("decided-by %s%s\n", r.decided_by.c_str(),
                  r.cache_hit ? " (cache hit)" : "");
      return 0;
    }
    std::fprintf(stderr, "mgrts_ctl: unknown command '%s'\n", command.c_str());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mgrts_ctl: %s\n", e.what());
    return 1;
  }
}
