// mgrts_workerd — a shard worker daemon of the distributed batch layer
// (DESIGN.md §16).
//
// Serves shard/health/ping/shutdown requests on an AF_UNIX socket:
// a "shard" request (generator options + index list, serve/shard.hpp)
// runs through dist::execute_shard and streams its rows and progress
// beats back to the coordinator.  mgrts_ctl drives a worker like the
// solve daemon (ping/health/shutdown use the same wire kinds).
//
// The --fault-* flags arm the deterministic process-wide FaultInjector,
// which is how the CI chaos smoke builds a straggling worker: stalls fire
// inside this process's solves, the coordinator culls the frozen shard by
// heartbeat and re-dispatches it to a healthy worker, and the merged batch
// still matches the single-box run.
#include <algorithm>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "dist/worker.hpp"
#include "support/fault.hpp"

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "\n"
      "  --socket PATH            AF_UNIX socket path (default "
      "/tmp/mgrts_worker.sock)\n"
      "  --handlers N             connection-handler threads (default 2)\n"
      "  --beat-interval-ms MS    shard progress-beat cadence (default 100)\n"
      "\n"
      "chaos (deterministic fault injection, for the CI smoke):\n"
      "  --fault-seed S           arm the injector with this seed\n"
      "  --fault-rate R           per-evaluation firing probability [0,1]\n"
      "  --fault-sites LIST       comma list: flow-network,job-table,\n"
      "                           schedule-table,csp-var-budget,deadline,\n"
      "                           propagator,stall (kCancel is sticky and\n"
      "                           not servable; it is rejected here)\n"
      "  --fault-max N            total fault cap (-1 unlimited)\n"
      "  --fault-stall-cap-ms MS  upper bound on one injected stall\n",
      argv0);
}

std::int64_t parse_int(const char* flag, const char* text) {
  try {
    std::size_t used = 0;
    const std::int64_t value = std::stoll(text, &used);
    if (used != std::strlen(text)) throw std::invalid_argument("trailing");
    return value;
  } catch (const std::exception&) {
    std::fprintf(stderr, "mgrts_workerd: %s expects an integer, got '%s'\n",
                 flag, text);
    std::exit(2);
  }
}

unsigned parse_sites(const std::string& list) {
  using mgrts::support::FaultSite;
  unsigned mask = 0;
  std::size_t pos = 0;
  while (pos <= list.size()) {
    const std::size_t comma = list.find(',', pos);
    const std::string name =
        list.substr(pos, comma == std::string::npos ? comma : comma - pos);
    pos = comma == std::string::npos ? list.size() + 1 : comma + 1;
    if (name.empty()) continue;
    bool found = false;
    for (int s = 0; s < mgrts::support::kFaultSiteCount; ++s) {
      const auto site = static_cast<FaultSite>(s);
      if (name == mgrts::support::to_string(site)) {
        if (site == FaultSite::kCancel) {
          // Sticky on its target token, like in the solve daemon: one
          // fired kCancel would degrade every later shard sharing the
          // plan's target.  The in-process dist chaos test covers it.
          std::fprintf(stderr,
                       "mgrts_workerd: fault site 'cancel' is not servable "
                       "in a resident worker\n");
          std::exit(2);
        }
        mask |= mgrts::support::FaultPlan::mask(site);
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr, "mgrts_workerd: unknown fault site '%s'\n",
                   name.c_str());
      std::exit(2);
    }
  }
  return mask;
}

}  // namespace

int main(int argc, char** argv) {
  mgrts::dist::WorkerOptions options;
  mgrts::support::FaultPlan plan;
  bool arm = false;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "mgrts_workerd: %s needs a value\n",
                     flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--help" || flag == "-h") {
      usage(argv[0]);
      return 0;
    } else if (flag == "--socket") {
      options.socket_path = value();
    } else if (flag == "--handlers") {
      options.handlers = static_cast<std::size_t>(
          std::max<std::int64_t>(1, parse_int("--handlers", value())));
    } else if (flag == "--beat-interval-ms") {
      options.beat_interval_ms = std::max<std::int64_t>(
          1, parse_int("--beat-interval-ms", value()));
    } else if (flag == "--fault-seed") {
      plan.seed =
          static_cast<std::uint64_t>(parse_int("--fault-seed", value()));
      arm = true;
    } else if (flag == "--fault-rate") {
      plan.rate = std::atof(value());
      arm = true;
    } else if (flag == "--fault-sites") {
      plan.sites = parse_sites(value());
      arm = true;
    } else if (flag == "--fault-max") {
      plan.max_faults = parse_int("--fault-max", value());
    } else if (flag == "--fault-stall-cap-ms") {
      plan.stall_cap_ms = parse_int("--fault-stall-cap-ms", value());
    } else {
      std::fprintf(stderr, "mgrts_workerd: unknown flag '%s'\n", flag.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  // A coordinator that vanishes mid-stream must be a SocketError on the
  // handler thread, not a process kill.
  std::signal(SIGPIPE, SIG_IGN);

  if (arm) {
    if (plan.sites == 0 || plan.rate <= 0.0) {
      std::fprintf(stderr,
                   "mgrts_workerd: --fault-seed/--fault-rate/--fault-sites "
                   "must be given together\n");
      return 2;
    }
    mgrts::support::FaultInjector::arm(plan);
    std::printf("mgrts_workerd: fault injector armed (seed=%llu rate=%g "
                "sites=0x%x)\n",
                static_cast<unsigned long long>(plan.seed), plan.rate,
                plan.sites);
  }

  try {
    mgrts::dist::WorkerServer worker(options);
    std::printf("mgrts_workerd: serving on %s (%zu handlers)\n",
                worker.socket_path().c_str(), options.handlers);
    std::fflush(stdout);
    worker.run();
    const auto counters = worker.counters();
    std::printf(
        "mgrts_workerd: shutdown after %lld shards (%lld rows, %lld aborted, "
        "%lld refused)\n",
        static_cast<long long>(counters.shards),
        static_cast<long long>(counters.rows),
        static_cast<long long>(counters.aborted),
        static_cast<long long>(counters.refused));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mgrts_workerd: fatal: %s\n", e.what());
    return 1;
  }
}
