#!/usr/bin/env python3
"""Enforce the bench_micro perf ledger.

Compares a freshly produced BENCH_micro.json against the committed baseline
and fails (exit 1) when any gated metric regresses by more than the
threshold.  The baseline file carries a cross-PR "history" array (one
flattened {sha, metrics} row per committed run, appended by the bench
writer); when present, the gate compares against the LAST committed history
row — the most recent like-for-like run — and falls back to the flat
"entries" array for pre-history baselines.  The fresh side always reads its
current "entries".

Gated metrics are throughput rates (useful_propagations_per_sec,
nodes_per_sec, residue_nodes_per_sec) plus the headline ratios: the fraction
of the Table-I workload the presolve stages settle before search
(presolve_decided_fraction), the diversified portfolio's wall-time ratio
against the post-hoc best fixed value order (portfolio_vs_best_order), the
conflict-analysis nogood shrink ratio on the pipeline residue
(nogood_shrink_ratio), the 1-UIP vs decision-set clause-length ratio
for the same conflicts (uip_clause_len_ratio), the forward-check vs
matching-GAC nodes-to-verdict ratio of the AllDifferent columns
(alldiff_prune_strength, higher is better), the backjump-lane vs
decision-set nodes-to-verdict ratio (backjump_nodes_per_verdict_ratio,
lower is better — non-chronological backjumping must keep beating the
decision-set baseline per decisive answer), the fault-injection
hardening tax on a fault-free run (residue_faultfree_overhead), and the
serving layer's repeat-mix throughput, cache hit ratio, and latency
percentiles (serve_requests_per_sec, serve_cache_hit_ratio,
serve_p50_us/serve_p99_us — the percentiles gate lower-is-better), and
the distributed fleet's two-worker wall-clock speedup on an
overrun-dominated shard workload (shard_scaling_2w, which additionally
carries an ABSOLUTE floor of 1.6x: the fleet must overlap overruns, not
merely avoid regressing a committed number).  The
ratio metrics gate in the LOWER-is-better direction: they may shrink
freely but must not creep back towards (or past) 1.0.  Plain wall-clock
totals stay advisory because they are budget- and machine-shaped rather
than throughput-shaped.

residue_faultfree_overhead carries its own tight threshold (0.02): its
baseline sits at ~1.0 by construction, so the general 30% band would let
the hardened layer quietly charge a third of residue throughput.  The
override keeps the armed-idle/disarmed ratio pinned under ~2% growth.

Usage: check_bench_regression.py <fresh.json> <baseline.json> [threshold]

threshold is the maximum tolerated fractional drop (default 0.30: fail
below 70% of the committed rate; for lower-is-better metrics, fail above
1/70% ~ 143% of the committed value).  Entries present in the baseline must
exist in the fresh output — a silently dropped workload would otherwise
retire its ledger line.
"""

import json
import sys

GATED_METRICS = (
    "useful_propagations_per_sec",
    "nodes_per_sec",
    "presolve_decided_fraction",
    "portfolio_vs_best_order",
    "residue_nodes_per_sec",
    "nogood_shrink_ratio",
    "uip_clause_len_ratio",
    "alldiff_prune_strength",
    "backjump_nodes_per_verdict_ratio",
    "residue_faultfree_overhead",
    "serve_requests_per_sec",
    "serve_cache_hit_ratio",
    "serve_p50_us",
    "serve_p99_us",
    "shard_scaling_2w",
)

# Metrics where smaller values are better; their regression test inverts.
LOWER_IS_BETTER = frozenset({
    "nogood_shrink_ratio",
    "uip_clause_len_ratio",
    "backjump_nodes_per_verdict_ratio",
    "residue_faultfree_overhead",
    "serve_p50_us",
    "serve_p99_us",
})

# Per-metric threshold overrides: metrics whose baseline is a ratio pinned
# near 1.0 need a far tighter band than throughput rates, while the serving
# percentiles are single-digit microseconds where scheduler noise alone can
# move a handful of µs — their band is loose (2x ceiling), which still
# catches the failure they gate (a solve or a lock sneaking onto the cache
# hit path costs 100x, not 2x).
THRESHOLD_OVERRIDES = {
    "residue_faultfree_overhead": 0.02,
    "serve_p50_us": 0.50,
    "serve_p99_us": 0.50,
}

# Metrics that must clear a fixed bar in the FRESH output regardless of
# what any baseline says — a drifting baseline must not be able to ratchet
# these down.  shard_scaling_2w is the distributed layer's reason to
# exist: two workers must overlap an overrun-dominated workload by >=1.6x.
ABSOLUTE_FLOORS = {
    "shard_scaling_2w": 1.6,
}


def load_entries(path):
    with open(path) as fh:
        data = json.load(fh)
    return {entry["name"]: entry for entry in data.get("entries", [])}


def load_baseline(path):
    """Baseline entries: the last committed history row when the file has
    a usable one (keys are flattened "<entry>.<metric>"; neither part
    contains a dot, so rsplit is unambiguous), else the flat entries
    array.  A missing or empty "history", or a malformed last row, is a
    stated fallback — never a stack trace: pre-history baselines and
    hand-edited files still gate against their entries."""
    with open(path) as fh:
        data = json.load(fh)
    history = data.get("history")
    if not history:
        print(f"note: baseline {path} has no history rows; "
              "comparing against its flat entries")
        return {entry["name"]: entry for entry in data.get("entries", [])}
    last = history[-1]
    metrics = last.get("metrics") if isinstance(last, dict) else None
    if not isinstance(metrics, dict) or not metrics:
        print(f"note: baseline {path} last history row has no metrics; "
              "comparing against its flat entries")
        return {entry["name"]: entry for entry in data.get("entries", [])}
    entries = {}
    for key, value in metrics.items():
        if "." not in key:
            print(f"note: skipping malformed history key {key!r} "
                  "(expected '<entry>.<metric>')")
            continue
        name, metric = key.rsplit(".", 1)
        entries.setdefault(name, {"name": name})[metric] = value
    return entries


def main(argv):
    if len(argv) not in (3, 4):
        print(__doc__)
        return 2
    fresh = load_entries(argv[1])
    try:
        baseline = load_baseline(argv[2])
    except FileNotFoundError:
        print(f"note: baseline {argv[2]} does not exist; nothing committed "
              "to gate against — only absolute floors apply")
        baseline = {}
    threshold = float(argv[3]) if len(argv) == 4 else 0.30

    failures = []

    # Absolute floors judge the fresh output alone, baseline or not.
    for name, entry in sorted(fresh.items()):
        for metric, floor in ABSOLUTE_FLOORS.items():
            if metric not in entry:
                continue
            value = float(entry[metric])
            failed = value < floor
            status = "FAIL" if failed else "ok"
            print(f"{status:4s} {name}.{metric}: {value:.3g} vs absolute "
                  f"floor {floor:.3g}")
            if failed:
                failures.append(
                    f"{name}.{metric}: {value:.3g} is below the absolute "
                    f"floor {floor:.3g}")
    for name, base in sorted(baseline.items()):
        new = fresh.get(name)
        if new is None:
            failures.append(f"{name}: entry missing from fresh output")
            continue
        for metric in GATED_METRICS:
            if metric not in base:
                continue
            if metric not in new:
                failures.append(f"{name}.{metric}: metric missing")
                continue
            old_rate, new_rate = float(base[metric]), float(new[metric])
            if old_rate <= 0:
                continue
            ratio = new_rate / old_rate
            band = THRESHOLD_OVERRIDES.get(metric, threshold)
            if metric in LOWER_IS_BETTER:
                # Invert: shrinking further is fine, growing past the same
                # fractional band regresses.
                failed = ratio > 1.0 / (1.0 - band)
                bound = f"ceiling {1.0 / (1.0 - band):.2f}x"
            else:
                failed = ratio < 1.0 - band
                bound = f"floor {1.0 - band:.2f}x"
            status = "FAIL" if failed else "ok"
            print(f"{status:4s} {name}.{metric}: {new_rate:.3g} vs "
                  f"{old_rate:.3g} committed ({ratio:.2f}x)")
            if failed:
                failures.append(
                    f"{name}.{metric}: {new_rate:.3g} is {ratio:.2f}x of the "
                    f"committed {old_rate:.3g} ({bound})")

    if failures:
        print("\nbench regression gate FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nbench regression gate passed "
          f"(threshold: >{(1.0 - threshold) * 100:.0f}% of committed rates)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
