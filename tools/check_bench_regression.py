#!/usr/bin/env python3
"""Enforce the bench_micro perf ledger.

Compares a freshly produced BENCH_micro.json against the committed baseline
and fails (exit 1) when any gated metric regresses by more than the
threshold.  Gated metrics are throughput rates (useful_propagations_per_sec,
nodes_per_sec) plus the pipeline headline ratios: the fraction of the
Table-I workload the presolve stages settle before search
(presolve_decided_fraction) and the diversified portfolio's wall-time ratio
against the post-hoc best fixed value order (portfolio_vs_best_order).
Plain wall-clock totals stay advisory because they are budget- and
machine-shaped rather than throughput-shaped.

Usage: check_bench_regression.py <fresh.json> <baseline.json> [threshold]

threshold is the maximum tolerated fractional drop (default 0.30: fail
below 70% of the committed rate).  Entries present in the baseline must
exist in the fresh output — a silently dropped workload would otherwise
retire its ledger line.
"""

import json
import sys

GATED_METRICS = (
    "useful_propagations_per_sec",
    "nodes_per_sec",
    "presolve_decided_fraction",
    "portfolio_vs_best_order",
)


def load_entries(path):
    with open(path) as fh:
        data = json.load(fh)
    return {entry["name"]: entry for entry in data.get("entries", [])}


def main(argv):
    if len(argv) not in (3, 4):
        print(__doc__)
        return 2
    fresh = load_entries(argv[1])
    baseline = load_entries(argv[2])
    threshold = float(argv[3]) if len(argv) == 4 else 0.30

    failures = []
    for name, base in sorted(baseline.items()):
        new = fresh.get(name)
        if new is None:
            failures.append(f"{name}: entry missing from fresh output")
            continue
        for metric in GATED_METRICS:
            if metric not in base:
                continue
            if metric not in new:
                failures.append(f"{name}.{metric}: metric missing")
                continue
            old_rate, new_rate = float(base[metric]), float(new[metric])
            if old_rate <= 0:
                continue
            ratio = new_rate / old_rate
            status = "FAIL" if ratio < 1.0 - threshold else "ok"
            print(f"{status:4s} {name}.{metric}: {new_rate:.3g} vs "
                  f"{old_rate:.3g} committed ({ratio:.2f}x)")
            if ratio < 1.0 - threshold:
                failures.append(
                    f"{name}.{metric}: {new_rate:.3g} is {ratio:.2f}x of the "
                    f"committed {old_rate:.3g} (floor {1.0 - threshold:.2f}x)")

    if failures:
        print("\nbench regression gate FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nbench regression gate passed "
          f"(threshold: >{(1.0 - threshold) * 100:.0f}% of committed rates)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
