// Exhaustive small-domain tests for Domain64 and its static mask kernels.
//
// The kernels (mask_size/mask_fixed/mask_contains/mask_le/mask_ge/
// for_each_in_mask) are the word-scan primitives under the hot propagator
// sweeps and the nogood watch checks; each is checked against a naive
// bit-by-bit reference over every 6-bit mask, at several window bases and
// shifts, plus the 64-bit window edges where the clamping rules live.
#include "csp/domain.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace mgrts::csp {
namespace {

// Naive references: walk all 64 bits.
int ref_size(std::uint64_t mask) {
  int n = 0;
  for (int k = 0; k < 64; ++k) n += static_cast<int>((mask >> k) & 1U);
  return n;
}

bool ref_contains(std::uint64_t mask, Value base, Value v) {
  for (int k = 0; k < 64; ++k) {
    if (((mask >> k) & 1U) != 0 && base + k == v) return true;
  }
  return false;
}

std::uint64_t ref_le(Value base, Value v) {
  std::uint64_t mask = 0;
  for (int k = 0; k < 64; ++k) {
    if (base + k <= v) mask |= std::uint64_t{1} << k;
  }
  return mask;
}

std::uint64_t ref_ge(Value base, Value v) {
  std::uint64_t mask = 0;
  for (int k = 0; k < 64; ++k) {
    if (base + k >= v) mask |= std::uint64_t{1} << k;
  }
  return mask;
}

std::vector<Value> ref_values(std::uint64_t mask, Value base) {
  std::vector<Value> out;
  for (int k = 0; k < 64; ++k) {
    if (((mask >> k) & 1U) != 0) out.push_back(base + k);
  }
  return out;
}

// Every 6-bit mask, at a handful of word positions and window bases —
// exhaustive over the small-domain shapes the encodings actually build
// (CSP1 booleans, CSP2's n+1-valued columns) plus high-bit placements.
constexpr Value kBases[] = {-7, -1, 0, 1, 42};
constexpr int kShifts[] = {0, 1, 29, 58};

TEST(Domain64Kernels, SizeAndFixedMatchReference) {
  for (std::uint64_t low = 0; low < 64; ++low) {
    for (const int shift : kShifts) {
      const std::uint64_t mask = low << shift;
      EXPECT_EQ(Domain64::mask_size(mask), ref_size(mask)) << mask;
      EXPECT_EQ(Domain64::mask_fixed(mask), ref_size(mask) == 1) << mask;
    }
  }
  EXPECT_FALSE(Domain64::mask_fixed(0));
  EXPECT_TRUE(Domain64::mask_fixed(std::uint64_t{1} << 63));
  EXPECT_EQ(Domain64::mask_size(~std::uint64_t{0}), 64);
}

TEST(Domain64Kernels, ContainsMatchesReferenceIncludingOutOfWindow) {
  for (std::uint64_t low = 0; low < 64; ++low) {
    for (const int shift : kShifts) {
      const std::uint64_t mask = low << shift;
      for (const Value base : kBases) {
        for (Value v = base - 3; v <= base + 66; ++v) {
          EXPECT_EQ(Domain64::mask_contains(mask, base, v),
                    ref_contains(mask, base, v))
              << "mask=" << mask << " base=" << base << " v=" << v;
        }
      }
    }
  }
}

TEST(Domain64Kernels, LeGeMatchReferenceAndClampAtWindowEdges) {
  for (const Value base : kBases) {
    // Sweep v across and past both window edges; the references walk the
    // representable values only, which is exactly the clamping contract.
    for (Value v = base - 4; v <= base + 68; ++v) {
      EXPECT_EQ(Domain64::mask_le(base, v), ref_le(base, v))
          << "base=" << base << " v=" << v;
      EXPECT_EQ(Domain64::mask_ge(base, v), ref_ge(base, v))
          << "base=" << base << " v=" << v;
    }
    // The edges spelled out: below-window v has no values <= it and all
    // values >= it, past-window v the reverse.
    EXPECT_EQ(Domain64::mask_le(base, base - 1), 0U);
    EXPECT_EQ(Domain64::mask_ge(base, base - 1), ~std::uint64_t{0});
    EXPECT_EQ(Domain64::mask_le(base, base + 64), ~std::uint64_t{0});
    EXPECT_EQ(Domain64::mask_ge(base, base + 64), 0U);
    // le/ge at the same v always tile the window (overlap exactly at v).
    for (Value v = base; v < base + 64; ++v) {
      EXPECT_EQ(Domain64::mask_le(base, v) | Domain64::mask_ge(base, v),
                ~std::uint64_t{0});
      EXPECT_EQ(Domain64::mask_le(base, v) & Domain64::mask_ge(base, v),
                Domain64::mask_ge(base, v) & ref_le(base, v));
    }
  }
}

TEST(Domain64Kernels, ForEachInMaskVisitsAscending) {
  for (std::uint64_t low = 0; low < 64; ++low) {
    for (const int shift : kShifts) {
      const std::uint64_t mask = low << shift;
      for (const Value base : kBases) {
        std::vector<Value> seen;
        Domain64::for_each_in_mask(mask, base,
                                   [&](Value v) { seen.push_back(v); });
        EXPECT_EQ(seen, ref_values(mask, base))
            << "mask=" << mask << " base=" << base;
      }
    }
  }
}

TEST(Domain64Kernels, AgreeWithInstanceMethods) {
  // A kernel applied to raw_mask()/base() must agree with the member
  // queries for every reachable small domain.
  for (std::uint64_t low = 1; low < 64; ++low) {
    for (const Value base : kBases) {
      Domain64 d(base, base + 63);
      d.set_raw_mask(low);
      EXPECT_EQ(Domain64::mask_size(d.raw_mask()), d.size());
      EXPECT_EQ(Domain64::mask_fixed(d.raw_mask()), d.is_fixed());
      for (Value v = base - 2; v <= base + 8; ++v) {
        EXPECT_EQ(Domain64::mask_contains(d.raw_mask(), d.base(), v),
                  d.contains(v));
      }
      std::vector<Value> via_kernel;
      Domain64::for_each_in_mask(d.raw_mask(), d.base(),
                                 [&](Value v) { via_kernel.push_back(v); });
      std::vector<Value> via_member;
      d.for_each([&](Value v) { via_member.push_back(v); });
      EXPECT_EQ(via_kernel, via_member);
      EXPECT_EQ(via_kernel.front(), d.min());
      EXPECT_EQ(via_kernel.back(), d.max());
    }
  }
}

TEST(Domain64Kernels, LeGeComposeToIntervalMasks) {
  // Propagators build interval prunes as mask_ge(lo) & mask_le(hi); check
  // the composition against Domain64 construction, which is the other
  // producer of interval masks.
  for (Value lo = -2; lo <= 2; ++lo) {
    for (Value hi = lo; hi < lo + 64; ++hi) {
      const Domain64 d(lo, hi);
      const std::uint64_t composed =
          Domain64::mask_ge(lo, lo) & Domain64::mask_le(lo, hi);
      EXPECT_EQ(composed, d.raw_mask()) << "lo=" << lo << " hi=" << hi;
    }
  }
}

}  // namespace
}  // namespace mgrts::csp
