#include "rt/stats.hpp"

#include <gtest/gtest.h>

#include "core/solve.hpp"
#include "flow/oracle.hpp"
#include "gen/generator.hpp"
#include "rt/validate.hpp"
#include "testing.hpp"

namespace mgrts::rt {
namespace {

using mgrts::testing::example1;

TEST(ScheduleStats, SingleTaskNoMigrationNoPreemption) {
  // One task alone on one processor, contiguous execution.
  const TaskSet ts = TaskSet::from_params({{0, 2, 3, 4}});
  Schedule s(4, 1);
  s.set(0, 0, 0);
  s.set(1, 0, 0);
  ASSERT_TRUE(is_valid_schedule(ts, Platform::identical(1), s));
  const ScheduleStats stats = analyze_schedule(ts, s);
  ASSERT_EQ(stats.jobs.size(), 1u);
  EXPECT_EQ(stats.jobs[0].completion, 2);
  EXPECT_EQ(stats.jobs[0].slack, 1);
  EXPECT_EQ(stats.total_migrations, 0);
  EXPECT_EQ(stats.total_preemptions, 0);
  EXPECT_NEAR(stats.platform_load, 0.5, 1e-12);
}

TEST(ScheduleStats, DetectsMigration) {
  // A job running slot 0 on P1 and slot 1 on P2: one migration, no
  // preemption (no gap).
  const TaskSet ts = TaskSet::from_params({{0, 2, 2, 2}});
  Schedule s(2, 2);
  s.set(0, 0, 0);
  s.set(1, 1, 0);
  const ScheduleStats stats = analyze_schedule(ts, s);
  ASSERT_EQ(stats.jobs.size(), 1u);
  EXPECT_EQ(stats.jobs[0].migrations, 1);
  EXPECT_EQ(stats.jobs[0].preemptions, 0);
}

TEST(ScheduleStats, DetectsPreemptionWithoutMigration) {
  // Run, pause one slot, resume on the same processor.
  const TaskSet ts = TaskSet::from_params({{0, 2, 3, 3}});
  Schedule s(3, 1);
  s.set(0, 0, 0);
  s.set(2, 0, 0);
  const ScheduleStats stats = analyze_schedule(ts, s);
  ASSERT_EQ(stats.jobs.size(), 1u);
  EXPECT_EQ(stats.jobs[0].preemptions, 1);
  EXPECT_EQ(stats.jobs[0].migrations, 0);
  EXPECT_EQ(stats.jobs[0].completion, 3);
  EXPECT_EQ(stats.jobs[0].slack, 0);
}

TEST(ScheduleStats, LateStartIsNotAPreemption) {
  const TaskSet ts = TaskSet::from_params({{0, 1, 3, 3}});
  Schedule s(3, 1);
  s.set(2, 0, 0);  // idle, idle, run
  const ScheduleStats stats = analyze_schedule(ts, s);
  EXPECT_EQ(stats.jobs[0].preemptions, 0);
  EXPECT_EQ(stats.jobs[0].completion, 3);
}

TEST(ScheduleStats, WrappedWindowsMeasuredInReleaseOrder) {
  const TaskSet ts = example1();
  core::SolveConfig config;
  const auto report = core::solve_instance(
      ts, mgrts::testing::example1_platform(), config);
  ASSERT_EQ(report.verdict, core::Verdict::kFeasible);
  const ScheduleStats stats = analyze_schedule(ts, *report.schedule);
  EXPECT_EQ(stats.jobs.size(), 13u);  // 6 + 3 + 4 jobs
  for (const JobStats& job : stats.jobs) {
    EXPECT_GE(job.slack, 0) << "tau" << job.task + 1 << " job " << job.job;
    EXPECT_GT(job.completion, 0);
  }
  // Example 1 has U/m = 23/24.
  EXPECT_NEAR(stats.platform_load, 23.0 / 24.0, 1e-12);
}

TEST(ScheduleStats, OfTaskFiltersAndSorts) {
  const TaskSet ts = example1();
  const auto report = core::solve_instance(
      ts, mgrts::testing::example1_platform());
  const ScheduleStats stats = analyze_schedule(ts, *report.schedule);
  const auto tau1 = stats.of_task(0);
  ASSERT_EQ(tau1.size(), 6u);
  for (std::size_t k = 0; k < tau1.size(); ++k) {
    EXPECT_EQ(tau1[k].job, static_cast<std::int64_t>(k));
    EXPECT_EQ(tau1[k].task, 0);
  }
}

TEST(ScheduleStats, ValidWitnessesHaveNonNegativeSlackSweep) {
  for (std::uint64_t k = 0; k < 30; ++k) {
    gen::GeneratorOptions gopt;
    gopt.tasks = 4;
    gopt.processors = 2;
    gopt.t_max = 6;
    gopt.with_offsets = (k % 2 == 0);
    const auto inst = gen::generate_indexed(gopt, 2468, k);
    const auto oracle = flow::decide_feasibility(
        inst.tasks, Platform::identical(inst.processors));
    if (oracle.verdict != flow::OracleVerdict::kFeasible) continue;
    const ScheduleStats stats =
        analyze_schedule(inst.tasks, *oracle.schedule);
    for (const JobStats& job : stats.jobs) {
      EXPECT_GE(job.slack, 0) << "instance " << k;
    }
    EXPECT_GE(stats.avg_slack, static_cast<double>(stats.min_slack));
  }
}

}  // namespace
}  // namespace mgrts::rt
