// core::solve_batch: deterministic result ordering over the shared pool,
// exception propagation, and agreement with sequential solve_instance.
#include "core/solve.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"
#include "testing.hpp"

namespace mgrts::core {
namespace {

std::vector<BatchJob> mixed_jobs() {
  std::vector<BatchJob> jobs;
  SolveConfig csp2;
  csp2.method = Method::kCsp2Dedicated;
  SolveConfig flow;
  flow.method = Method::kFlowOracle;
  jobs.push_back(BatchJob{testing::example1(), testing::example1_platform(),
                          csp2});
  jobs.push_back(BatchJob{testing::overloaded1(), rt::Platform::identical(1),
                          csp2});
  jobs.push_back(BatchJob{testing::light3(), rt::Platform::identical(2),
                          flow});
  jobs.push_back(BatchJob{testing::dhall2(), rt::Platform::identical(2),
                          csp2});
  return jobs;
}

TEST(SolveBatch, MatchesSequentialAndKeepsOrder) {
  const std::vector<BatchJob> jobs = mixed_jobs();
  const std::vector<SolveReport> parallel = solve_batch(jobs, /*workers=*/4);
  ASSERT_EQ(parallel.size(), jobs.size());
  for (std::size_t k = 0; k < jobs.size(); ++k) {
    const SolveReport reference =
        solve_instance(jobs[k].tasks, jobs[k].platform, jobs[k].config);
    EXPECT_EQ(parallel[k].verdict, reference.verdict) << "job " << k;
    EXPECT_EQ(parallel[k].complete, reference.complete) << "job " << k;
  }
  EXPECT_EQ(parallel[0].verdict, Verdict::kFeasible);
  EXPECT_EQ(parallel[1].verdict, Verdict::kInfeasible);
  EXPECT_EQ(parallel[2].verdict, Verdict::kFeasible);
  EXPECT_EQ(parallel[3].verdict, Verdict::kFeasible);
}

TEST(SolveBatch, EmptyBatch) {
  EXPECT_TRUE(solve_batch({}).empty());
}

TEST(SolveBatch, RethrowsJobExceptions) {
  std::vector<BatchJob> jobs = mixed_jobs();
  SolveConfig bad;
  bad.method = Method::kFlowOracle;  // flow oracle rejects heterogeneous
  rt::Platform hetero = rt::Platform::uniform({3, 1});
  jobs.push_back(BatchJob{testing::light3(), hetero, bad});
  EXPECT_THROW(static_cast<void>(solve_batch(jobs, /*workers=*/2)),
               ValidationError);
}

}  // namespace
}  // namespace mgrts::core
