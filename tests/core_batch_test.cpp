// core::solve_batch: deterministic result ordering over the shared pool,
// exception propagation, and agreement with sequential solve_instance.
#include "core/solve.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"
#include "testing.hpp"

namespace mgrts::core {
namespace {

std::vector<BatchJob> mixed_jobs() {
  std::vector<BatchJob> jobs;
  SolveConfig csp2;
  csp2.method = Method::kCsp2Dedicated;
  SolveConfig flow;
  flow.method = Method::kFlowOracle;
  jobs.push_back(BatchJob{testing::example1(), testing::example1_platform(),
                          csp2});
  jobs.push_back(BatchJob{testing::overloaded1(), rt::Platform::identical(1),
                          csp2});
  jobs.push_back(BatchJob{testing::light3(), rt::Platform::identical(2),
                          flow});
  jobs.push_back(BatchJob{testing::dhall2(), rt::Platform::identical(2),
                          csp2});
  return jobs;
}

TEST(SolveBatch, MatchesSequentialAndKeepsOrder) {
  const std::vector<BatchJob> jobs = mixed_jobs();
  const std::vector<SolveReport> parallel = solve_batch(jobs, /*workers=*/4);
  ASSERT_EQ(parallel.size(), jobs.size());
  for (std::size_t k = 0; k < jobs.size(); ++k) {
    const SolveReport reference =
        solve_instance(jobs[k].tasks, jobs[k].platform, jobs[k].config);
    EXPECT_EQ(parallel[k].verdict, reference.verdict) << "job " << k;
    EXPECT_EQ(parallel[k].complete, reference.complete) << "job " << k;
  }
  EXPECT_EQ(parallel[0].verdict, Verdict::kFeasible);
  EXPECT_EQ(parallel[1].verdict, Verdict::kInfeasible);
  EXPECT_EQ(parallel[2].verdict, Verdict::kFeasible);
  EXPECT_EQ(parallel[3].verdict, Verdict::kFeasible);
}

TEST(SolveBatch, EmptyBatch) {
  EXPECT_TRUE(solve_batch({}).empty());
}

TEST(SolveBatch, CapturesJobFailuresWithoutLosingRecords) {
  std::vector<BatchJob> jobs = mixed_jobs();
  SolveConfig bad;
  bad.method = Method::kFlowOracle;  // flow oracle rejects heterogeneous
  bad.pipeline = PipelineOptions::none();
  rt::Platform hetero = rt::Platform::uniform({3, 1});
  jobs.push_back(BatchJob{testing::light3(), hetero, bad});

  // Containment contract: the failing job becomes a kUnknown report with a
  // cause — no exception to the caller, no lost record, and the healthy
  // jobs are unaffected.
  BatchHealth health;
  const std::vector<SolveReport> reports =
      solve_batch(jobs, BatchPolicy{/*workers=*/2}, &health);
  ASSERT_EQ(reports.size(), jobs.size());
  EXPECT_EQ(reports[0].verdict, Verdict::kFeasible);
  EXPECT_EQ(reports[1].verdict, Verdict::kInfeasible);
  EXPECT_EQ(reports[2].verdict, Verdict::kFeasible);
  EXPECT_EQ(reports[3].verdict, Verdict::kFeasible);
  const SolveReport& failed = reports.back();
  EXPECT_EQ(failed.verdict, Verdict::kUnknown);
  EXPECT_EQ(failed.cause, FailureCause::kInternalError);
  EXPECT_FALSE(failed.detail.empty());

  EXPECT_EQ(health.failures, 1);
  EXPECT_EQ(health.retries, 0);
  EXPECT_EQ(health.quarantined, 1);
  ASSERT_EQ(health.quarantined_jobs.size(), 1u);
  EXPECT_EQ(health.quarantined_jobs[0], jobs.size() - 1);
  EXPECT_NE(health.first_error.find("internal-error"), std::string::npos);
}

TEST(SolveBatch, RetryAccountingOnDeterministicFailure) {
  // A deterministically failing job exhausts its attempts and is
  // quarantined; retries are counted and budget outcomes are not retried.
  std::vector<BatchJob> jobs;
  SolveConfig bad;
  bad.method = Method::kFlowOracle;
  bad.pipeline = PipelineOptions::none();
  jobs.push_back(
      BatchJob{testing::light3(), rt::Platform::uniform({3, 1}), bad});
  SolveConfig good;
  good.method = Method::kCsp2Dedicated;
  jobs.push_back(
      BatchJob{testing::example1(), testing::example1_platform(), good});

  BatchPolicy policy;
  policy.workers = 1;
  policy.max_attempts = 3;
  BatchHealth health;
  const std::vector<SolveReport> reports = solve_batch(jobs, policy, &health);
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].verdict, Verdict::kUnknown);
  EXPECT_EQ(reports[0].cause, FailureCause::kInternalError);
  EXPECT_NE(reports[0].detail.find("quarantined after 3 attempts"),
            std::string::npos);
  EXPECT_EQ(reports[1].verdict, Verdict::kFeasible);
  EXPECT_EQ(health.failures, 3);
  EXPECT_EQ(health.retries, 2);
  EXPECT_EQ(health.recovered, 0);
  EXPECT_EQ(health.quarantined, 1);
}

}  // namespace
}  // namespace mgrts::core
