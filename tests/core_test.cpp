#include "core/solve.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/instance_io.hpp"
#include "core/min_processors.hpp"
#include "rt/validate.hpp"
#include "support/error.hpp"
#include "testing.hpp"

namespace mgrts::core {
namespace {

using mgrts::testing::example1;
using rt::Platform;
using rt::TaskSet;

class AllMethods : public ::testing::TestWithParam<Method> {};

// The sweep tests disable the presolve pipeline so each backend answers
// for itself (core_pipeline_test covers the staged path).
TEST_P(AllMethods, Example1FeasibleOnTwoProcessors) {
  SolveConfig config;
  config.method = GetParam();
  config.time_limit_ms = 10'000;
  config.generic = choco_like_defaults(1);
  config.pipeline = PipelineOptions::none();
  const SolveReport report =
      solve_instance(example1(), Platform::identical(2), config);
  if (GetParam() == Method::kEdfSimulation) {
    // EDF is incomplete and actually misses on Example 1.
    EXPECT_EQ(report.verdict, Verdict::kInfeasible);
    EXPECT_FALSE(report.complete);
    return;
  }
  ASSERT_EQ(report.verdict, Verdict::kFeasible);
  EXPECT_TRUE(report.witness_valid) << report.detail;
  EXPECT_TRUE(report.schedule.has_value());
  if (GetParam() == Method::kPortfolio) {
    EXPECT_EQ(report.decided_by.rfind("portfolio:", 0), 0u)
        << report.decided_by;
  } else {
    EXPECT_EQ(report.decided_by,
              std::string("backend:") + to_string(GetParam()));
  }
}

TEST_P(AllMethods, Example1InfeasibleOnOneProcessor) {
  SolveConfig config;
  config.method = GetParam();
  config.time_limit_ms = 10'000;
  config.generic = choco_like_defaults(2);
  config.pipeline = PipelineOptions::none();
  config.localsearch.restarts = 2;  // keep the hopeless SAT search short
  config.localsearch.iterations_per_restart = 5'000;
  const SolveReport report =
      solve_instance(example1(), Platform::identical(1), config);
  if (GetParam() == Method::kLocalSearch) {
    // Local search can only find witnesses; on an infeasible instance it
    // gives up with kUnknown (§VIII's asymmetry).
    EXPECT_EQ(report.verdict, Verdict::kUnknown);
    EXPECT_FALSE(report.complete);
    return;
  }
  EXPECT_EQ(report.verdict, Verdict::kInfeasible);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllMethods,
    ::testing::Values(Method::kCsp1Generic, Method::kCsp2Generic,
                      Method::kCsp2Dedicated, Method::kFlowOracle,
                      Method::kEdfSimulation, Method::kLocalSearch,
                      Method::kPortfolio),
    [](const ::testing::TestParamInfo<Method>& info) {
      switch (info.param) {
        case Method::kCsp1Generic: return "csp1";
        case Method::kCsp2Generic: return "csp2gen";
        case Method::kCsp2Dedicated: return "csp2";
        case Method::kFlowOracle: return "flow";
        case Method::kEdfSimulation: return "edf";
        case Method::kLocalSearch: return "minconflicts";
        case Method::kPortfolio: return "portfolio";
      }
      return "other";
    });

TEST(SolveInstance, ArbitraryDeadlinesCloneTransparently) {
  const TaskSet ts = TaskSet::from_params({{0, 3, 4, 2}, {0, 1, 2, 2}},
                                          rt::DeadlineModel::kArbitrary);
  SolveConfig config;
  config.method = Method::kCsp2Dedicated;
  const SolveReport report =
      solve_instance(ts, Platform::identical(2), config);
  ASSERT_EQ(report.verdict, Verdict::kFeasible);
  ASSERT_TRUE(report.solved_tasks.has_value());
  EXPECT_EQ(report.solved_tasks->size(), 3);  // tau1 -> 2 clones + tau2
  EXPECT_TRUE(report.witness_valid);
  EXPECT_TRUE(rt::is_valid_schedule(*report.solved_tasks,
                                    Platform::identical(2), *report.schedule));
}

TEST(SolveInstance, MemoryLimitSurfacesAsVerdict) {
  SolveConfig config;
  config.method = Method::kCsp1Generic;
  config.pipeline = PipelineOptions::none();  // let the backend hit the wall
  config.limits.max_variables = 10;
  const SolveReport report =
      solve_instance(example1(), Platform::identical(2), config);
  EXPECT_EQ(report.verdict, Verdict::kMemoryLimit);
  EXPECT_FALSE(report.detail.empty());
}

TEST(SolveInstance, TimeLimitProducesTimeout) {
  // Large-ish CSP1 model with zero budget: building succeeds, search times
  // out at the first check.
  SolveConfig config;
  config.method = Method::kCsp1Generic;
  config.time_limit_ms = 0;
  std::vector<rt::TaskParams> params;
  for (int k = 0; k < 6; ++k) params.push_back({0, 2, 5, 6});
  const SolveReport report = solve_instance(TaskSet::from_params(params),
                                            Platform::identical(3), config);
  EXPECT_TRUE(report.verdict == Verdict::kTimeout ||
              report.verdict == Verdict::kFeasible);
}

TEST(SolveInstance, NodeLimitRespected) {
  SolveConfig config;
  config.method = Method::kCsp2Dedicated;
  config.pipeline = PipelineOptions::none();
  config.max_nodes = 1;
  std::vector<rt::TaskParams> params;
  for (int k = 0; k < 5; ++k) params.push_back({0, 1, 3, 4});
  const SolveReport report = solve_instance(TaskSet::from_params(params),
                                            Platform::identical(2), config);
  EXPECT_TRUE(report.verdict == Verdict::kNodeLimit ||
              report.verdict == Verdict::kFeasible);
}

TEST(SolveInstance, ValidationCanBeDisabled) {
  SolveConfig config;
  config.method = Method::kCsp2Dedicated;
  config.validate_witness = false;
  const SolveReport report =
      solve_instance(example1(), Platform::identical(2), config);
  ASSERT_EQ(report.verdict, Verdict::kFeasible);
  EXPECT_TRUE(report.witness_valid);  // trusted by request
}

// ------------------------------------------------------------ min processors

TEST(MinProcessors, Example1NeedsExactlyTwo) {
  const MinProcessorsResult result = min_processors(example1());
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.lower_bound, 2);
  EXPECT_EQ(result.processors, 2);
  EXPECT_TRUE(result.report.witness_valid);
  EXPECT_EQ(result.trail.size(), 1u);  // feasible at the first try
}

TEST(MinProcessors, TightWindowsNeedMoreThanCeilU) {
  // Two D=1 tasks wanting the same slot: ceil(U) = 1 but m = 2 required.
  const TaskSet ts = TaskSet::from_params({{0, 1, 1, 2}, {0, 1, 1, 2}});
  const MinProcessorsResult result = min_processors(ts);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.lower_bound, 1);
  EXPECT_EQ(result.processors, 2);
  EXPECT_EQ(result.trail.size(), 2u);
  EXPECT_EQ(result.trail[0], Verdict::kInfeasible);
  EXPECT_EQ(result.trail[1], Verdict::kFeasible);
}

TEST(MinProcessors, ArbitraryDeadlineInputAccepted) {
  const TaskSet ts = TaskSet::from_params({{0, 3, 4, 2}},
                                          rt::DeadlineModel::kArbitrary);
  const MinProcessorsResult result = min_processors(ts);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.processors, 2);  // two clones must overlap
}

TEST(MinProcessors, UndecidedRunStopsSearch) {
  SolveConfig config;
  config.method = Method::kCsp2Dedicated;
  config.pipeline = PipelineOptions::none();  // presolve would decide m=2
  config.max_nodes = 0;  // every run exhausts instantly
  const MinProcessorsResult result = min_processors(example1(), config);
  EXPECT_FALSE(result.found);
  EXPECT_EQ(result.trail.size(), 1u);
  EXPECT_EQ(result.trail[0], Verdict::kNodeLimit);
}

// -------------------------------------------------------------- instance IO

TEST(InstanceIo, RoundTripIdentical) {
  const TaskSet ts = example1();
  const Platform p = Platform::identical(2);
  const std::string text = write_instance_string(ts, p);
  const InstanceFile file = read_instance_string(text);
  EXPECT_EQ(file.tasks.size(), 3);
  for (rt::TaskId i = 0; i < 3; ++i) {
    EXPECT_EQ(file.tasks[i].params, ts[i].params);
  }
  EXPECT_EQ(file.platform.processors(), 2);
  EXPECT_TRUE(file.platform.is_identical());
}

TEST(InstanceIo, RoundTripHeterogeneous) {
  const TaskSet ts = TaskSet::from_params({{0, 1, 1, 1}, {0, 1, 1, 1}});
  const Platform p = Platform::heterogeneous({{1, 0}, {2, 3}});
  const InstanceFile file =
      read_instance_string(write_instance_string(ts, p));
  EXPECT_FALSE(file.platform.is_identical());
  EXPECT_EQ(file.platform.rate(0, 1), 0);
  EXPECT_EQ(file.platform.rate(1, 0), 2);
  EXPECT_EQ(file.platform.rate(1, 1), 3);
}

TEST(InstanceIo, RoundTripArbitraryDeadlineModel) {
  const TaskSet ts = TaskSet::from_params({{0, 1, 5, 4}},
                                          rt::DeadlineModel::kArbitrary);
  const InstanceFile file = read_instance_string(
      write_instance_string(ts, Platform::identical(1)));
  EXPECT_FALSE(file.tasks.is_constrained());
  EXPECT_EQ(file.tasks[0].deadline(), 5);
}

TEST(InstanceIo, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "# a comment\n\n  tasks 1\n# another\n0 1 2 2\n\nprocessors 1\n";
  const InstanceFile file = read_instance_string(text);
  EXPECT_EQ(file.tasks.size(), 1);
}

TEST(InstanceIo, ParseErrorsNameTheLine) {
  try {
    static_cast<void>(read_instance_string("tasks 2\n0 1 2 2\noops\n"));
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(InstanceIo, RejectsMissingProcessors) {
  EXPECT_THROW(static_cast<void>(read_instance_string("tasks 1\n0 1 2 2\n")),
               ParseError);
}

TEST(InstanceIo, RejectsTrailingGarbageOnTaskLine) {
  EXPECT_THROW(static_cast<void>(read_instance_string(
                   "tasks 1\n0 1 2 2 9\nprocessors 1\n")),
               ParseError);
}

TEST(InstanceIo, RejectsUnknownDirective) {
  EXPECT_THROW(static_cast<void>(read_instance_string(
                   "tasks 1\n0 1 2 2\nprocessors 1\nbogus 3\n")),
               ParseError);
}

TEST(InstanceIo, InvalidTaskParametersRaiseValidationError) {
  // D > T under the (default) constrained model.
  EXPECT_THROW(static_cast<void>(read_instance_string(
                   "tasks 1\n0 1 5 2\nprocessors 1\n")),
               ValidationError);
}

TEST(InstanceIo, SolveRoundTrippedInstance) {
  const InstanceFile file = read_instance_string(
      write_instance_string(example1(), Platform::identical(2)));
  const SolveReport report = solve_instance(file.tasks, file.platform);
  EXPECT_EQ(report.verdict, Verdict::kFeasible);
}

}  // namespace
}  // namespace mgrts::core
