#include "rt/dispatcher.hpp"

#include <gtest/gtest.h>

#include "core/solve.hpp"
#include "flow/oracle.hpp"
#include "gen/generator.hpp"
#include "rt/validate.hpp"
#include "support/rng.hpp"
#include "testing.hpp"

namespace mgrts::rt {
namespace {

using mgrts::testing::example1;

Schedule solved_example1() {
  core::SolveConfig config;
  config.method = core::Method::kCsp2Dedicated;
  const auto report = core::solve_instance(
      example1(), mgrts::testing::example1_platform(), config);
  EXPECT_EQ(report.verdict, core::Verdict::kFeasible);
  return *report.schedule;
}

TEST(Dispatcher, FullWcetExecutionMeetsEveryDeadline) {
  const TaskSet ts = example1();
  const Platform p = Platform::identical(2);
  const Schedule s = solved_example1();
  const auto trace = dispatch_table(
      ts, p, s, [&](TaskId i, std::int64_t) { return ts[i].wcet(); }, 3);
  EXPECT_TRUE(trace.all_met);
  EXPECT_EQ(trace.idle_injected, 0);
  EXPECT_FALSE(trace.jobs.empty());
  for (const auto& job : trace.jobs) {
    EXPECT_TRUE(job.met()) << "tau" << job.task + 1 << " job " << job.job;
    EXPECT_GT(job.completed_at, job.release);
  }
}

TEST(Dispatcher, UnderrunsIdleTheProcessor) {
  const TaskSet ts = example1();
  const Platform p = Platform::identical(2);
  const Schedule s = solved_example1();
  // Every job needs one unit less than its WCET (minimum 1).
  const auto trace = dispatch_table(
      ts, p, s,
      [&](TaskId i, std::int64_t) {
        return std::max<Time>(1, ts[i].wcet() - 1);
      },
      2);
  EXPECT_TRUE(trace.all_met);
  EXPECT_GT(trace.idle_injected, 0);
}

TEST(Dispatcher, RandomUnderrunsNeverMiss) {
  // Property (the paper's anomaly-avoidance remark): under the idling rule,
  // any actual demand <= WCET meets every deadline, for any valid table.
  support::Rng rng(2024);
  int instances_checked = 0;
  for (std::uint64_t k = 0; k < 40; ++k) {
    gen::GeneratorOptions options;
    options.tasks = 4;
    options.processors = 2;
    options.t_max = 6;
    options.with_offsets = (k % 2 == 0);
    const auto inst = gen::generate_indexed(options, 77, k);
    const Platform p = Platform::identical(inst.processors);
    const auto oracle = flow::decide_feasibility(inst.tasks, p);
    if (oracle.verdict != flow::OracleVerdict::kFeasible) continue;
    ++instances_checked;
    ASSERT_TRUE(
        is_valid_schedule(inst.tasks, p, *oracle.schedule));
    auto rng_local = rng.fork(k);
    const auto trace = dispatch_table(
        inst.tasks, p, *oracle.schedule,
        [&](TaskId i, std::int64_t) {
          return rng_local.uniform(0, inst.tasks[i].wcet());
        },
        3);
    EXPECT_TRUE(trace.all_met) << "instance " << k;
  }
  EXPECT_GT(instances_checked, 5);  // the sweep must actually exercise cases
}

TEST(Dispatcher, ZeroDemandJobsCompleteAtRelease) {
  const TaskSet ts = example1();
  const Platform p = Platform::identical(2);
  const Schedule s = solved_example1();
  const auto trace =
      dispatch_table(ts, p, s, [](TaskId, std::int64_t) { return 0; }, 1);
  EXPECT_TRUE(trace.all_met);
  for (const auto& job : trace.jobs) {
    EXPECT_EQ(job.completed_at, job.release);
  }
}

TEST(Dispatcher, HeterogeneousRatesCountWeightedService) {
  // One task, C=4, on a rate-2 processor: two table slots suffice.
  const TaskSet ts = TaskSet::from_params({{0, 4, 2, 2}});
  const Platform p = Platform::heterogeneous({{2}});
  Schedule s(2, 1);
  s.set(0, 0, 0);
  s.set(1, 0, 0);
  ASSERT_TRUE(is_valid_schedule(ts, p, s));
  const auto trace = dispatch_table(
      ts, p, s, [](TaskId, std::int64_t) { return 3; }, 2);
  EXPECT_TRUE(trace.all_met);
  // 3 units of demand at rate 2 complete during the second slot.
  ASSERT_FALSE(trace.jobs.empty());
  EXPECT_EQ(trace.jobs[0].completed_at - trace.jobs[0].release, 2);
}

TEST(Dispatcher, MultipleHyperperiodsRepeatCleanly) {
  const TaskSet ts = example1();
  const Platform p = Platform::identical(2);
  const Schedule s = solved_example1();
  const auto trace = dispatch_table(
      ts, p, s, [&](TaskId i, std::int64_t) { return ts[i].wcet(); }, 5);
  // 5 hyperperiods x 13 jobs, minus jobs whose windows cross the horizon.
  EXPECT_GE(trace.jobs.size(), 13u * 4);
  EXPECT_TRUE(trace.all_met);
}

}  // namespace
}  // namespace mgrts::rt
