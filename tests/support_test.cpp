#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <set>
#include <stdexcept>
#include <thread>

#include "support/deadline.hpp"
#include "support/math.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace mgrts::support {
namespace {

// ---------------------------------------------------------------- math

TEST(CheckedMath, MulBasics) {
  EXPECT_EQ(checked_mul(6, 7), 42);
  EXPECT_EQ(checked_mul(0, 123456), 0);
  EXPECT_EQ(checked_mul(123456, 0), 0);
}

TEST(CheckedMath, MulOverflow) {
  const auto big = std::numeric_limits<std::int64_t>::max();
  EXPECT_FALSE(checked_mul(big, 2).has_value());
  EXPECT_FALSE(checked_mul(big / 2 + 1, 2).has_value());
  EXPECT_TRUE(checked_mul(big / 2, 2).has_value());
  EXPECT_TRUE(checked_mul(big, 1).has_value());
}

TEST(CheckedMath, AddOverflow) {
  const auto big = std::numeric_limits<std::int64_t>::max();
  EXPECT_EQ(checked_add(1, 2), 3);
  EXPECT_FALSE(checked_add(big, 1).has_value());
  EXPECT_TRUE(checked_add(big - 1, 1).has_value());
}

TEST(CheckedMath, Lcm) {
  EXPECT_EQ(checked_lcm(2, 3), 6);
  EXPECT_EQ(checked_lcm(4, 6), 12);
  EXPECT_EQ(checked_lcm(7, 7), 7);
  // lcm of large coprimes overflows (2^62 and 3 share no factor).
  EXPECT_FALSE(checked_lcm(std::int64_t{1} << 62, 3).has_value());
  // ... while a shared factor can keep it representable.
  EXPECT_EQ(checked_lcm((std::int64_t{1} << 62) - 1, 3),
            (std::int64_t{1} << 62) - 1);  // 3 divides 2^62 - 1
}

TEST(CheckedMath, CeilDivAndFloorMod) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(ceil_div(0, 5), 0);
  EXPECT_EQ(floor_mod(7, 3), 1);
  EXPECT_EQ(floor_mod(-1, 3), 2);
  EXPECT_EQ(floor_mod(-3, 3), 0);
  EXPECT_EQ(floor_mod(-7, 4), 1);
}

TEST(Rational, ReducesToLowestTerms) {
  const Rational r(6, 8);
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 4);
}

TEST(Rational, AdditionExact) {
  Rational u;  // 0/1
  u += Rational(1, 2);
  u += Rational(1, 3);
  u += Rational(1, 6);
  EXPECT_EQ(u, Rational(1, 1));
  EXPECT_FALSE(u > 1);
  EXPECT_TRUE(u <= 1);
}

TEST(Rational, ExactCapacityComparison) {
  // U = 2 exactly must NOT be flagged as > 2 (double arithmetic might).
  Rational u;
  for (int k = 0; k < 20; ++k) u += Rational(1, 10);
  EXPECT_FALSE(u > 2);
  u += Rational(1, 1000000);
  EXPECT_TRUE(u > 2);
}

// ----------------------------------------------------------------- rng

TEST(Rng, DeterministicStreams) {
  Rng a(42);
  Rng b(42);
  for (int k = 0; k < 1000; ++k) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int k = 0; k < 64; ++k) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int k = 0; k < 20000; ++k) {
    const auto v = rng.uniform(-5, 17);
    ASSERT_GE(v, -5);
    ASSERT_LE(v, 17);
  }
}

TEST(Rng, UniformSingleton) {
  Rng rng(7);
  for (int k = 0; k < 100; ++k) EXPECT_EQ(rng.uniform(3, 3), 3);
}

TEST(Rng, UniformCoversRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int k = 0; k < 2000; ++k) seen.insert(rng.uniform(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformRoughlyUniform) {
  Rng rng(13);
  std::array<int, 8> buckets{};
  const int draws = 80000;
  for (int k = 0; k < draws; ++k) {
    ++buckets[static_cast<std::size_t>(rng.uniform(0, 7))];
  }
  for (const int count : buckets) {
    EXPECT_NEAR(count, draws / 8, draws / 80);  // within 10%
  }
}

TEST(Rng, Uniform01Bounds) {
  Rng rng(5);
  for (int k = 0; k < 10000; ++k) {
    const double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(Rng, ForkIndependence) {
  Rng parent(3);
  Rng childa = parent.fork(1);
  Rng childb = parent.fork(1);  // parent state advanced -> different child
  EXPECT_NE(childa.next_u64(), childb.next_u64());
}

TEST(Rng, ShufflePermutes) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  auto copy = v;
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, sorted);
}

// --------------------------------------------------------------- table

TEST(TextTable, AlignsColumns) {
  TextTable t({"a", "bbbb"});
  t.add_row({"xxx", "y"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("a    bbbb"), std::string::npos);
  EXPECT_NE(out.find("xxx  y"), std::string::npos);
}

TEST(TextTable, NumberFormatting) {
  EXPECT_EQ(TextTable::num(std::int64_t{42}), "42");
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::percent(0.815, 0), "82%");
  EXPECT_EQ(TextTable::percent(0.5, 1), "50.0%");
}

TEST(TextTable, CsvEscaping) {
  TextTable t({"x", "y"});
  t.add_row({"a,b", "say \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TextTable, RowArityMismatchAborts) {
  TextTable t({"one", "two"});
  EXPECT_DEATH(t.add_row({"only-one"}), "precondition");
}

// ------------------------------------------------------------ deadline

TEST(Deadline, UnlimitedNeverExpires) {
  const Deadline d;
  EXPECT_TRUE(d.unlimited());
  EXPECT_FALSE(d.expired());
}

TEST(Deadline, ZeroBudgetExpiresImmediately) {
  const auto d = Deadline::after_ms(0);
  EXPECT_FALSE(d.unlimited());
  EXPECT_TRUE(d.expired());
}

TEST(Deadline, FutureBudgetNotExpired) {
  const auto d = Deadline::after_ms(60'000);
  EXPECT_FALSE(d.expired());
}

TEST(Deadline, RemainingMsTracksTheBudget) {
  EXPECT_EQ(Deadline().remaining_ms(), -1);  // unlimited
  EXPECT_EQ(Deadline::after_ms(0).remaining_ms(), 0);
  const auto d = Deadline::after_ms(60'000);
  const std::int64_t left = d.remaining_ms();
  EXPECT_GT(left, 0);
  EXPECT_LE(left, 60'000);
  // A cancel token does not shorten the wall estimate.
  Deadline cancellable;
  cancellable.set_cancel(CancelToken::make());
  EXPECT_EQ(cancellable.remaining_ms(), -1);
}

TEST(Stopwatch, MeasuresForwardTime) {
  Stopwatch w;
  EXPECT_GE(w.seconds(), 0.0);
  EXPECT_GE(w.micros(), 0);
}

TEST(CancelToken, LinkedChainsObserveGrandparents) {
  // caller -> race -> lane, the chain the portfolio watchdog relies on.
  const CancelToken root = CancelToken::make();
  const CancelToken mid = CancelToken::linked(root);
  const CancelToken leaf = CancelToken::linked(mid);
  EXPECT_FALSE(leaf.cancelled());
  root.cancel();
  EXPECT_TRUE(mid.cancelled());
  EXPECT_TRUE(leaf.cancelled());
}

TEST(CancelToken, LinkedChildCancelDoesNotLeakUp) {
  const CancelToken parent = CancelToken::make();
  const CancelToken child = CancelToken::linked(parent);
  child.cancel();
  EXPECT_TRUE(child.cancelled());
  EXPECT_FALSE(parent.cancelled());
}

TEST(Deadline, PollTicksHeartbeat) {
  Deadline d = Deadline::after_ms(60'000);
  auto beat = std::make_shared<std::atomic<std::uint64_t>>(0);
  d.set_heartbeat(beat);
  EXPECT_FALSE(d.poll());
  EXPECT_FALSE(d.poll());
  EXPECT_EQ(beat->load(), 2u);
}

// --------------------------------------------------------- thread pool

TEST(ThreadPool, RunsAllJobs) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int k = 0; k < 100; ++k) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 100);
  }
}

TEST(ThreadPool, WaitIdleOnEmptyPool) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ParallelForIndex, CoversAllIndices) {
  std::vector<std::atomic<int>> hits(257);
  parallel_for_index(hits.size(), 8,
                     [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForIndex, SequentialFallback) {
  // workers == 1 must preserve order (no pool involved).
  std::vector<std::size_t> order;
  parallel_for_index(10, 1, [&](std::size_t i) { order.push_back(i); });
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelForIndex, ZeroCountIsNoop) {
  parallel_for_index(0, 4, [](std::size_t) { FAIL(); });
  SUCCEED();
}

TEST(ThreadPool, CountsAndSurfacesSwallowedSubmitExceptions) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  pool.wait_idle();
  EXPECT_EQ(pool.swallowed_count(), 1u);
  const std::exception_ptr first = pool.take_swallowed();
  ASSERT_TRUE(first);
  EXPECT_THROW(std::rethrow_exception(first), std::runtime_error);
  // take_swallowed resets the ledger.
  EXPECT_EQ(pool.swallowed_count(), 0u);
  EXPECT_FALSE(pool.take_swallowed());
}

TEST(ParallelForIndex, FirstExceptionRethrownOthersLedgered) {
  // Drain any residue so the counts below are exact.
  (void)ThreadPool::shared().take_swallowed();

  // Both lanes rendezvous before throwing, so neither is skipped by the
  // early-exit flag: the first exception must come back through wait(),
  // the second must land on the shared pool's swallowed ledger.
  std::atomic<int> arrivals{0};
  const auto lane = [&](std::size_t) {
    arrivals.fetch_add(1);
    const auto start = std::chrono::steady_clock::now();
    while (arrivals.load() < 2 &&
           std::chrono::steady_clock::now() - start <
               std::chrono::seconds(10)) {
      std::this_thread::yield();
    }
    throw std::runtime_error("overflow");
  };
  EXPECT_THROW(parallel_for_index(2, 2, lane), std::runtime_error);
  EXPECT_EQ(ThreadPool::shared().swallowed_count(), 1u);
  const std::exception_ptr second = ThreadPool::shared().take_swallowed();
  ASSERT_TRUE(second);
  EXPECT_THROW(std::rethrow_exception(second), std::runtime_error);
}

}  // namespace
}  // namespace mgrts::support
