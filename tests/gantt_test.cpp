#include "rt/gantt.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "testing.hpp"

namespace mgrts::rt {
namespace {

using mgrts::testing::example1;

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(Gantt, WindowChartMatchesFigure1) {
  // Figure 1 of the paper: availability intervals over T = 12 with
  // O1 = O3 = 0 and O2 = 1.  tau1 and tau2 cover every slot (tau2 through
  // the wrapped third window); tau3 has gaps at 2, 5, 8, 11.
  const std::string chart = render_windows(example1());
  EXPECT_NE(chart.find("T=12"), std::string::npos);
  EXPECT_NE(chart.find("tau1: ############"), std::string::npos);
  EXPECT_NE(chart.find("tau2: ############"), std::string::npos);
  EXPECT_NE(chart.find("tau3: ##.##.##.##."), std::string::npos);
}

TEST(Gantt, WindowChartShowsParameters) {
  const std::string chart = render_windows(example1());
  EXPECT_NE(chart.find("O=1 C=3 D=4 T=4"), std::string::npos);
}

TEST(Gantt, WindowChartGapsForSparseTask) {
  // D=1, T=4: exactly one '#' every 4 slots.
  const TaskSet ts = TaskSet::from_params({{0, 1, 1, 4}});
  const std::string chart = render_windows(ts);
  EXPECT_NE(chart.find("#..."), std::string::npos);
}

TEST(Gantt, ScheduleRenderShowsTasksAndIdle) {
  const TaskSet ts = example1();
  Schedule s(12, 2);
  s.set(0, 0, 0);
  s.set(1, 1, 2);
  const std::string out = render_schedule(ts, s);
  const auto lines = lines_of(out);
  ASSERT_GE(lines.size(), 3u);  // ruler + 2 processors
  EXPECT_NE(out.find("P1: "), std::string::npos);
  EXPECT_NE(out.find("P2: "), std::string::npos);
  // P1 slot 0 shows '1' (tau1), everything else '.'.
  EXPECT_NE(lines[1].find("1..........."), std::string::npos);
  EXPECT_NE(lines[2].find(".3.........."), std::string::npos);
}

TEST(Gantt, LegendAppearsForManyTasks) {
  std::vector<TaskParams> params;
  for (int k = 0; k < 12; ++k) params.push_back({0, 1, 2, 2});
  const TaskSet ts = TaskSet::from_params(params);
  const Schedule s(2, 1);
  EXPECT_NE(render_schedule(ts, s).find("legend"), std::string::npos);
}

TEST(Gantt, RulerHasTicks) {
  const std::string chart = render_windows(example1());
  const auto lines = lines_of(chart);
  ASSERT_GE(lines.size(), 2u);
  EXPECT_NE(lines[1].find('0'), std::string::npos);
  EXPECT_NE(lines[1].find('5'), std::string::npos);
  EXPECT_NE(lines[1].find("10"), std::string::npos);
}

}  // namespace
}  // namespace mgrts::rt
