#include "analysis/tests.hpp"

#include <gtest/gtest.h>

#include "flow/oracle.hpp"
#include "gen/generator.hpp"
#include "rt/platform.hpp"
#include "support/error.hpp"
#include "testing.hpp"

namespace mgrts::analysis {
namespace {

using mgrts::testing::example1;
using rt::TaskSet;

TEST(UtilizationTest, FlagsOverCapacity) {
  const auto result = utilization_test(example1(), 1);  // U = 23/12 > 1
  EXPECT_EQ(result.verdict, TestVerdict::kInfeasible);
  EXPECT_NE(result.detail.find("23/12"), std::string::npos);
}

TEST(UtilizationTest, ExactBoundaryIsUnknown) {
  // U = m exactly: the necessary condition is satisfied, so no verdict.
  const TaskSet ts = TaskSet::from_params({{0, 2, 2, 2}, {0, 2, 2, 2}});
  EXPECT_EQ(utilization_test(ts, 2).verdict, TestVerdict::kUnknown);
}

TEST(WindowFitTest, FlagsWcetBeyondDeadline) {
  const TaskSet ts = TaskSet::from_params({{0, 3, 2, 5}});
  const auto result = window_fit_test(ts, 4);
  EXPECT_EQ(result.verdict, TestVerdict::kInfeasible);
  EXPECT_NE(result.detail.find("tau1"), std::string::npos);
}

TEST(WindowFitTest, PassesWellFormedTasks) {
  EXPECT_EQ(window_fit_test(example1(), 2).verdict, TestVerdict::kUnknown);
}

TEST(ForcedDemandTest, CatchesTightWindowOverload) {
  // Two D=1 jobs demand 2 units in [0, 1): infeasible on one processor
  // although U = 1 (the utilization filter cannot see it).
  const TaskSet ts = TaskSet::from_params({{0, 1, 1, 2}, {0, 1, 1, 2}});
  EXPECT_EQ(utilization_test(ts, 1).verdict, TestVerdict::kUnknown);
  const auto result = forced_demand_test(ts, 1);
  EXPECT_EQ(result.verdict, TestVerdict::kInfeasible);
  EXPECT_NE(result.detail.find("demand(1)"), std::string::npos);
}

TEST(ForcedDemandTest, RespectsOffsets) {
  // The same two tight tasks, but one shifted by a slot: feasible on one
  // processor, and the prefix test must stay silent.
  const TaskSet ts = TaskSet::from_params({{0, 1, 1, 2}, {1, 1, 1, 2}});
  EXPECT_EQ(forced_demand_test(ts, 1).verdict, TestVerdict::kUnknown);
  EXPECT_TRUE(flow::is_feasible(ts, rt::Platform::identical(1)));
}

TEST(ForcedDemandTest, EventCapKeepsItSilentNotWrong) {
  const TaskSet ts = TaskSet::from_params({{0, 1, 1, 2}, {0, 1, 1, 2}});
  // With a 1-event budget the violating second event is never reached.
  const auto result = forced_demand_test(ts, 1, /*max_events=*/1);
  EXPECT_EQ(result.verdict, TestVerdict::kUnknown);
}

TEST(DensityTest, SufficientCondition) {
  // densities 1/2 + 1/3 <= 1: feasible on one processor.
  const TaskSet ts = TaskSet::from_params({{0, 1, 2, 4}, {0, 1, 3, 3}});
  const auto result = density_test(ts, 1);
  EXPECT_EQ(result.verdict, TestVerdict::kFeasible);
  EXPECT_TRUE(flow::is_feasible(ts, rt::Platform::identical(1)));
}

TEST(DensityTest, SilentAboveBound) {
  EXPECT_EQ(density_test(example1(), 2).verdict, TestVerdict::kUnknown);
}

TEST(QuickDecide, PicksSomeVerdictWhenPossible) {
  EXPECT_EQ(quick_decide(example1(), 1).verdict, TestVerdict::kInfeasible);
  const TaskSet light = TaskSet::from_params({{0, 1, 4, 4}, {0, 1, 4, 4}});
  EXPECT_EQ(quick_decide(light, 2).verdict, TestVerdict::kFeasible);
  EXPECT_EQ(quick_decide(example1(), 2).verdict, TestVerdict::kUnknown);
}

TEST(QuickDecide, RejectsArbitraryDeadlines) {
  const TaskSet ts =
      TaskSet::from_params({{0, 1, 5, 4}}, rt::DeadlineModel::kArbitrary);
  EXPECT_THROW(static_cast<void>(quick_decide(ts, 1)), ValidationError);
}

// Soundness sweep: analytical verdicts must never contradict the oracle.
struct AnalysisSweep {
  std::uint64_t seed;
  bool offsets;
};

class AnalysisSoundness : public ::testing::TestWithParam<AnalysisSweep> {};

TEST_P(AnalysisSoundness, NeverContradictsOracle) {
  const auto [seed, offsets] = GetParam();
  int decided = 0;
  for (std::uint64_t k = 0; k < 120; ++k) {
    gen::GeneratorOptions gopt;
    gopt.tasks = 5;
    gopt.processors = 2;
    gopt.t_max = 6;
    gopt.with_offsets = offsets;
    const auto inst = gen::generate_indexed(gopt, seed, k);
    const rt::Platform p = rt::Platform::identical(inst.processors);
    const auto verdict = quick_decide(inst.tasks, inst.processors).verdict;
    if (verdict == TestVerdict::kUnknown) continue;
    ++decided;
    EXPECT_EQ(verdict == TestVerdict::kFeasible,
              flow::is_feasible(inst.tasks, p))
        << "instance " << k;
  }
  EXPECT_GT(decided, 20);  // the filters must actually bite
}

INSTANTIATE_TEST_SUITE_P(Sweep, AnalysisSoundness,
                         ::testing::Values(AnalysisSweep{21, false},
                                           AnalysisSweep{22, true},
                                           AnalysisSweep{23, false},
                                           AnalysisSweep{24, true}),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param.seed) +
                                  (info.param.offsets ? "off" : "sync");
                         });

}  // namespace
}  // namespace mgrts::analysis
