// AllDifferentExcept at PropagationLevel::kMatching (Régin-style GAC over
// the value graph, DESIGN.md §14): unit behavior, strict-superset pruning
// against the forward-checking baseline, scratch/incremental parity, and a
// randomized differential — FC and matching must agree on every verdict
// while matching never explores more nodes under identical branching.
#include "csp/propagators.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "csp/solver.hpp"
#include "encodings/csp2_generic.hpp"
#include "gen/generator.hpp"
#include "support/rng.hpp"

namespace mgrts::csp {
namespace {

// Deterministic branching shared by both levels: static order, ascending
// values, no restarts, no learning — so the only degree of freedom between
// two runs is how hard the alldiff propagator prunes, and "matching prunes
// a superset per node" translates directly into "matching's tree is a
// subtree of FC's".
SearchOptions lockstep_options() {
  SearchOptions options;
  options.var_heuristic = VarHeuristic::kLex;
  options.val_heuristic = ValHeuristic::kMin;
  options.restart = RestartPolicy::kNone;
  options.random_var_ties = false;
  options.nogoods = false;
  return options;
}

// ------------------------------------------------------------- unit tests

TEST(AllDiffMatching, GacPrunesWhereForwardCheckCannot) {
  // Régin's classic Hall set: y0, y1 saturate {0,1}, so GAC must strip 0
  // from the wide variable w (domain {0,2}) at the root.  w is declared
  // first, so lex branching tries w = 0 — forward checking (silent at the
  // root: nothing is fixed) walks into that dead end and has to refute it
  // (y0 = 1 empties y1), while GAC never visits it.
  const auto run = [](PropagationLevel level) {
    Solver solver;
    const VarId w = solver.add_variable(0, 2);
    solver.post_remove(w, 1);
    std::vector<VarId> vars{w, solver.add_variable(0, 1),
                            solver.add_variable(0, 1)};
    solver.add(make_all_different_except(vars, -1, level));
    return solver.solve(lockstep_options());
  };
  const SolveOutcome fc = run(PropagationLevel::kForwardCheck);
  const SolveOutcome gac = run(PropagationLevel::kMatching);
  ASSERT_EQ(fc.status, SolveStatus::kSat);
  ASSERT_EQ(gac.status, SolveStatus::kSat);
  EXPECT_EQ(fc.assignment[0], 2);
  EXPECT_EQ(gac.assignment[0], 2);
  // FC pays for the refuted w = 0 subtree; GAC's tree skips it entirely.
  EXPECT_GT(fc.stats.failures, 0);
  EXPECT_EQ(gac.stats.failures, 0);
  EXPECT_LT(gac.stats.nodes, fc.stats.nodes);
}

TEST(AllDiffMatching, HallSetInfeasibilityDetectedAtRoot) {
  // Three variables over {0,1}: no matching saturates them, so the GAC
  // level must fail during root propagation, before any decision.
  Solver solver;
  std::vector<VarId> vars{solver.add_variable(0, 1), solver.add_variable(0, 1),
                          solver.add_variable(0, 1)};
  solver.add(make_all_different_except(vars, -1, PropagationLevel::kMatching));
  const SolveOutcome outcome = solver.solve(lockstep_options());
  EXPECT_EQ(outcome.status, SolveStatus::kUnsat);
  EXPECT_EQ(outcome.stats.nodes, 0);
}

TEST(AllDiffMatching, ExceptValueMayRepeat) {
  // Idle (-1) never occupies a value node, so any number of variables may
  // take it; non-idle values stay pairwise distinct.
  const auto sat_with = [](const std::vector<std::pair<int, Value>>& pins) {
    Solver solver;
    std::vector<VarId> vars{solver.add_variable(-1, 1),
                            solver.add_variable(-1, 1),
                            solver.add_variable(-1, 1)};
    solver.add(
        make_all_different_except(vars, -1, PropagationLevel::kMatching));
    for (const auto& [idx, value] : pins) {
      if (!solver.post_fix(vars[static_cast<std::size_t>(idx)], value)) {
        return false;
      }
    }
    return solver.solve({}).status == SolveStatus::kSat;
  };
  EXPECT_TRUE(sat_with({{0, -1}, {1, -1}, {2, -1}}));
  EXPECT_TRUE(sat_with({{0, 0}, {1, 1}, {2, -1}}));
  EXPECT_FALSE(sat_with({{0, 0}, {1, 0}}));
  EXPECT_FALSE(sat_with({{1, 1}, {2, 1}}));
}

TEST(AllDiffMatching, PropagatesRemovalFromFixedLikeForwardCheck) {
  Solver solver;
  std::vector<VarId> vars{solver.add_variable(0, 1), solver.add_variable(0, 1)};
  solver.add(make_all_different_except(vars, -1, PropagationLevel::kMatching));
  ASSERT_TRUE(solver.post_fix(vars[0], 1));
  const SolveOutcome outcome = solver.solve({});
  ASSERT_EQ(outcome.status, SolveStatus::kSat);
  EXPECT_EQ(outcome.assignment[1], 0);
}

// --------------------------------------------- randomized differential

// A random alldiff-heavy model: `n` variables over a value window with
// random holes and pins, one AllDifferentExcept over all of them with the
// top value as the repeatable idle.  Mirrors the CSP2 slot-column shape.
struct RandomModel {
  int n = 0;
  Value idle = 0;
  std::vector<std::uint64_t> masks;  // per-variable surviving values
};

RandomModel draw_model(support::Rng& rng) {
  RandomModel m;
  m.n = static_cast<int>(rng.uniform(4, 9));
  // Tight value windows (sometimes fewer real values than variables) keep
  // Hall sets and infeasible columns frequent.
  const int values = static_cast<int>(rng.uniform(m.n - 2, m.n + 2));
  m.idle = values;  // domain window is 0..values, idle == top
  for (int x = 0; x < m.n; ++x) {
    std::uint64_t mask = (std::uint64_t{1} << (values + 1)) - 1;
    for (Value v = 0; v <= values; ++v) {
      if (rng.chance(0.35)) mask &= ~(std::uint64_t{1} << v);
    }
    if (mask == 0) mask = std::uint64_t{1} << rng.uniform(0, values);
    // Some variables arrive pre-fixed, like decisions already taken.
    if (rng.chance(0.2)) {
      Value keep = static_cast<Value>(rng.uniform(0, values));
      while (!Domain64::mask_contains(mask, 0, keep)) {
        keep = static_cast<Value>(rng.uniform(0, values));
      }
      mask = std::uint64_t{1} << keep;
    }
    m.masks.push_back(mask);
  }
  return m;
}

SolveOutcome solve_model(const RandomModel& m, PropagationLevel level,
                         PropagationMode mode) {
  Solver solver;
  std::vector<VarId> vars;
  for (int x = 0; x < m.n; ++x) {
    const VarId v = solver.add_variable(0, m.idle);
    for (Value a = 0; a <= m.idle; ++a) {
      if (!Domain64::mask_contains(m.masks[static_cast<std::size_t>(x)], 0,
                                   a)) {
        solver.post_remove(v, a);
      }
    }
    vars.push_back(v);
  }
  solver.add(make_all_different_except(vars, m.idle, level));
  SearchOptions options = lockstep_options();
  options.propagation = mode;
  return solver.solve(options);
}

bool assignment_respects_alldiff(const RandomModel& m,
                                 const std::vector<Value>& values) {
  std::vector<int> used(static_cast<std::size_t>(m.idle) + 1, 0);
  for (int x = 0; x < m.n; ++x) {
    const Value v = values[static_cast<std::size_t>(x)];
    if (!Domain64::mask_contains(m.masks[static_cast<std::size_t>(x)], 0, v)) {
      return false;  // escaped its own domain
    }
    if (v != m.idle && ++used[static_cast<std::size_t>(v)] > 1) return false;
  }
  return true;
}

TEST(AllDiffMatching, RandomDifferentialAgainstForwardCheck) {
  support::Rng rng(20090911);
  std::int64_t nodes_fc = 0;
  std::int64_t nodes_gac = 0;
  int unsat_seen = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const RandomModel m = draw_model(rng);
    const SolveOutcome fc =
        solve_model(m, PropagationLevel::kForwardCheck,
                    PropagationMode::kIncremental);
    const SolveOutcome gac = solve_model(m, PropagationLevel::kMatching,
                                         PropagationMode::kIncremental);
    // Complete searches on both levels: the verdict must match exactly.
    ASSERT_EQ(fc.status, gac.status) << "trial " << trial;
    if (fc.status == SolveStatus::kSat) {
      EXPECT_TRUE(assignment_respects_alldiff(m, fc.assignment));
      EXPECT_TRUE(assignment_respects_alldiff(m, gac.assignment));
    } else {
      ++unsat_seen;
    }
    // GAC prunes a superset at every node and branching is lockstep, so
    // the matching tree can never be larger — per instance, not just on
    // average.
    EXPECT_LE(gac.stats.nodes, fc.stats.nodes) << "trial " << trial;
    nodes_fc += fc.stats.nodes;
    nodes_gac += gac.stats.nodes;
  }
  // The family must exercise both verdicts, and matching must actually
  // save work somewhere (not merely tie everywhere).
  EXPECT_GT(unsat_seen, 0);
  EXPECT_LT(unsat_seen, 200);
  EXPECT_LT(nodes_gac, nodes_fc);
}

TEST(AllDiffMatching, ScratchAndIncrementalExploreIdenticalTrees) {
  // The matching propagator's prune set is a function of the current
  // domains alone (the repaired matching is an internal accelerator), so
  // scratch-mode recomputation must reproduce the incremental tree
  // bit-identically — same nodes, same failures, same verdict.
  support::Rng rng(424242);
  for (int trial = 0; trial < 60; ++trial) {
    const RandomModel m = draw_model(rng);
    const SolveOutcome inc = solve_model(m, PropagationLevel::kMatching,
                                         PropagationMode::kIncremental);
    const SolveOutcome scr = solve_model(m, PropagationLevel::kMatching,
                                         PropagationMode::kScratch);
    ASSERT_EQ(inc.status, scr.status) << "trial " << trial;
    EXPECT_EQ(inc.stats.nodes, scr.stats.nodes) << "trial " << trial;
    EXPECT_EQ(inc.stats.failures, scr.stats.failures) << "trial " << trial;
    if (inc.status == SolveStatus::kSat) {
      EXPECT_EQ(inc.assignment, scr.assignment) << "trial " << trial;
    }
  }
}

// ------------------------------------------- residue-shaped instances

TEST(AllDiffMatching, Csp2GenericDifferentialOnGeneratedInstances) {
  // The production consumer: CSP2 on the generic engine, slot columns
  // posted at each level over the paper's §VII-A generator stream.  Every
  // decided pair must agree, and the matching family never explores more
  // nodes in total.
  gen::GeneratorOptions generator;
  generator.tasks = 6;
  generator.processors = 3;
  generator.t_max = 6;

  SearchOptions options = lockstep_options();
  options.max_nodes = 30'000;

  std::int64_t nodes_fc = 0;
  std::int64_t nodes_gac = 0;
  int decided_pairs = 0;
  for (std::uint64_t index = 0; index < 24; ++index) {
    const gen::Instance inst = gen::generate_indexed(generator, 7, index);
    if (inst.tasks.exceeds_capacity(inst.processors)) continue;

    SolveOutcome outcomes[2];
    for (int lane = 0; lane < 2; ++lane) {
      enc::Csp2GenericOptions enc_options;
      enc_options.alldiff_level = lane == 0 ? PropagationLevel::kForwardCheck
                                            : PropagationLevel::kMatching;
      enc::Csp2GenericModel model = enc::build_csp2_generic(
          inst.tasks, rt::Platform::identical(inst.processors), enc_options);
      outcomes[lane] = model.solver->solve(options);
    }
    const SolveOutcome& fc = outcomes[0];
    const SolveOutcome& gac = outcomes[1];
    if (decided(fc.status) && decided(gac.status)) {
      EXPECT_EQ(fc.status, gac.status) << "instance " << index;
      ++decided_pairs;
    }
    EXPECT_LE(gac.stats.nodes, fc.stats.nodes) << "instance " << index;
    nodes_fc += fc.stats.nodes;
    nodes_gac += gac.stats.nodes;
  }
  EXPECT_GT(decided_pairs, 0);
  EXPECT_LE(nodes_gac, nodes_fc);
}

// -------------------------------------------------------- observability

TEST(AllDiffMatching, PerPropagatorStatsReportTheMatchingRows) {
  Solver solver;
  std::vector<VarId> vars{solver.add_variable(0, 1), solver.add_variable(0, 1),
                          solver.add_variable(0, 2)};
  solver.add(make_all_different_except(vars, -1, PropagationLevel::kMatching));
  const SolveOutcome outcome = solver.solve(lockstep_options());
  ASSERT_EQ(outcome.status, SolveStatus::kSat);
  ASSERT_EQ(outcome.stats.propagators.size(), 1U);
  const PropagatorProfile& row = outcome.stats.propagators.front();
  EXPECT_EQ(row.name, "all-different-matching");
  EXPECT_GT(row.runs, 0);
  // The root GAC sweep fixed x2 (see GacPrunesWhereForwardCheckCannot), so
  // at least one prune is attributed to this propagator.
  EXPECT_GT(row.prunes, 0);
  // Profiling is off by default: the seconds column stays zero.
  EXPECT_EQ(row.seconds, 0.0);
}

}  // namespace
}  // namespace mgrts::csp
