// Cross-module integration and property tests: the Theorem 1/2 equivalence
// story checked end to end on randomized instance sweeps.
//
// Ground truth is the flow oracle (an independent polynomial algorithm).
// Every complete solver must return the same verdict; every witness from
// any solver must pass the independent validator; incomplete baselines
// (EDF, FP search) must be sound in one direction.
#include <gtest/gtest.h>

#include "core/min_processors.hpp"
#include "core/solve.hpp"
#include "flow/oracle.hpp"
#include "gen/generator.hpp"
#include "priority/assignment.hpp"
#include "rt/dispatcher.hpp"
#include "rt/validate.hpp"
#include "testing.hpp"

namespace mgrts {
namespace {

struct SweepParam {
  std::uint64_t seed;
  std::int32_t tasks;
  std::int32_t processors;
  rt::Time t_max;
  bool offsets;
  int instances;
};

std::string sweep_name(const ::testing::TestParamInfo<SweepParam>& info) {
  const auto& p = info.param;
  return "n" + std::to_string(p.tasks) + "m" + std::to_string(p.processors) +
         "t" + std::to_string(p.t_max) + (p.offsets ? "off" : "sync") + "s" +
         std::to_string(p.seed);
}

class SolverAgreement : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SolverAgreement, AllCompleteMethodsMatchOracle) {
  const SweepParam param = GetParam();
  gen::GeneratorOptions gopt;
  gopt.tasks = param.tasks;
  gopt.processors = param.processors;
  gopt.t_max = param.t_max;
  gopt.with_offsets = param.offsets;

  int feasible_count = 0;
  int generic_decided = 0;
  for (int k = 0; k < param.instances; ++k) {
    const auto inst =
        gen::generate_indexed(gopt, param.seed, static_cast<std::uint64_t>(k));
    const rt::Platform platform = rt::Platform::identical(inst.processors);
    const bool oracle = flow::is_feasible(inst.tasks, platform);
    feasible_count += oracle ? 1 : 0;

    for (const core::Method method :
         {core::Method::kCsp1Generic, core::Method::kCsp2Generic,
          core::Method::kCsp2Dedicated}) {
      core::SolveConfig config;
      config.method = method;
      config.time_limit_ms = 5'000;
      config.generic = core::choco_like_defaults(param.seed + 1);
      // Presolve off: agreement must come from the searches themselves
      // (the pipeline-vs-direct equivalence lives in core_pipeline_test).
      config.pipeline = core::PipelineOptions::none();
      const core::SolveReport report =
          core::solve_instance(inst.tasks, platform, config);
      const bool decided = report.verdict == core::Verdict::kFeasible ||
                           report.verdict == core::Verdict::kInfeasible;
      if (method == core::Method::kCsp2Dedicated) {
        // The dedicated solver decides these tiny instances instantly.
        ASSERT_TRUE(decided)
            << core::to_string(method) << " instance " << k << ": "
            << core::to_string(report.verdict);
      } else if (!decided) {
        // Generic searches may legitimately overrun near r = 1 — that is
        // the paper's Table I in miniature.  Agreement is only checked on
        // decided runs.
        continue;
      } else {
        ++generic_decided;
      }
      EXPECT_EQ(report.verdict == core::Verdict::kFeasible, oracle)
          << core::to_string(method) << " disagrees on instance " << k;
      if (report.verdict == core::Verdict::kFeasible) {
        EXPECT_TRUE(report.witness_valid)
            << core::to_string(method) << " invalid witness, instance " << k
            << ": " << report.detail;
      }
    }
  }
  // The generic solvers must decide the majority of runs (agreement on a
  // sweep where everything times out would be vacuous).  Individual sweeps
  // may legitimately come out one-sided (all-feasible or all-infeasible);
  // the parameter grid as a whole covers both outcomes.
  static_cast<void>(feasible_count);
  EXPECT_GT(generic_decided, param.instances);  // out of 2x instances runs
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SolverAgreement,
    ::testing::Values(
        SweepParam{101, 3, 2, 4, false, 15},
        SweepParam{102, 4, 2, 5, false, 15},
        SweepParam{103, 4, 3, 4, false, 15},
        SweepParam{104, 3, 2, 4, true, 15},
        SweepParam{105, 4, 2, 5, true, 15},
        SweepParam{106, 5, 2, 4, false, 12},
        SweepParam{107, 5, 4, 5, true, 12},
        SweepParam{108, 4, 2, 6, true, 12}),
    sweep_name);

class BaselineSoundness : public ::testing::TestWithParam<SweepParam> {};

TEST_P(BaselineSoundness, IncompleteMethodsNeverContradictOracle) {
  const SweepParam param = GetParam();
  gen::GeneratorOptions gopt;
  gopt.tasks = param.tasks;
  gopt.processors = param.processors;
  gopt.t_max = param.t_max;
  gopt.with_offsets = param.offsets;

  for (int k = 0; k < param.instances; ++k) {
    const auto inst =
        gen::generate_indexed(gopt, param.seed, static_cast<std::uint64_t>(k));
    const rt::Platform platform = rt::Platform::identical(inst.processors);
    const bool oracle = flow::is_feasible(inst.tasks, platform);

    // EDF-schedulable => feasible.
    core::SolveConfig edf;
    edf.method = core::Method::kEdfSimulation;
    edf.pipeline = core::PipelineOptions::none();  // judge EDF itself
    const auto edf_report = core::solve_instance(inst.tasks, platform, edf);
    if (edf_report.verdict == core::Verdict::kFeasible) {
      EXPECT_TRUE(oracle) << "EDF found a schedule for an infeasible "
                             "instance "
                          << k;
    }

    // FP-order found => feasible.
    prio::SearchOptions popt;
    popt.exhaustive = false;
    const auto fp = prio::find_feasible_priority(inst.tasks, platform, popt);
    if (fp.status == prio::SearchStatus::kFound) {
      EXPECT_TRUE(oracle) << "FP order schedules an infeasible instance " << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BaselineSoundness,
    ::testing::Values(SweepParam{201, 4, 2, 5, false, 20},
                      SweepParam{202, 4, 2, 5, true, 20},
                      SweepParam{203, 5, 3, 4, false, 20}),
    sweep_name);

TEST(EndToEnd, SolveDispatchPipeline) {
  // Full product pipeline: generate -> solve -> validate -> dispatch with
  // random underruns -> all deadlines met.
  gen::GeneratorOptions gopt;
  gopt.tasks = 5;
  gopt.processors = 3;
  gopt.t_max = 6;
  support::Rng rng(5551);
  int dispatched = 0;
  for (std::uint64_t k = 0; k < 30; ++k) {
    const auto inst = gen::generate_indexed(gopt, 31337, k);
    const rt::Platform platform = rt::Platform::identical(inst.processors);
    const auto report = core::solve_instance(inst.tasks, platform);
    if (report.verdict != core::Verdict::kFeasible) continue;
    ASSERT_TRUE(report.witness_valid);
    auto local = rng.fork(k);
    const auto trace = rt::dispatch_table(
        inst.tasks, platform, *report.schedule,
        [&](rt::TaskId i, std::int64_t) {
          return local.uniform(0, inst.tasks[i].wcet());
        },
        2);
    EXPECT_TRUE(trace.all_met) << "instance " << k;
    ++dispatched;
  }
  EXPECT_GT(dispatched, 5);
}

TEST(EndToEnd, MinProcessorsIsTight) {
  // min_processors returns m* such that m* is feasible and m*-1 is not
  // (checked against the oracle).
  gen::GeneratorOptions gopt;
  gopt.tasks = 4;
  gopt.t_max = 5;
  for (std::uint64_t k = 0; k < 25; ++k) {
    const auto inst = gen::generate_indexed(gopt, 2718, k);
    const auto result = core::min_processors(inst.tasks);
    ASSERT_TRUE(result.found) << "instance " << k;
    EXPECT_TRUE(flow::is_feasible(inst.tasks,
                                  rt::Platform::identical(result.processors)));
    if (result.processors > 1) {
      EXPECT_FALSE(flow::is_feasible(
          inst.tasks, rt::Platform::identical(result.processors - 1)));
    }
  }
}

TEST(EndToEnd, ArbitraryDeadlinePipeline) {
  // Arbitrary-deadline systems: facade clones transparently; verdict must
  // match the oracle run on the clone system.
  gen::GeneratorOptions gopt;
  gopt.tasks = 3;
  gopt.processors = 2;
  gopt.t_max = 4;
  int cloned_cases = 0;
  for (std::uint64_t k = 0; k < 25; ++k) {
    const auto base = gen::generate_indexed(gopt, 929, k);
    // Stretch deadlines beyond periods to force clones (D' = D + T).
    std::vector<rt::TaskParams> params;
    for (const auto& task : base.tasks.tasks()) {
      rt::TaskParams p = task.params;
      p.deadline = p.deadline + p.period;
      params.push_back(p);
    }
    const rt::TaskSet arbitrary =
        rt::TaskSet::from_params(params, rt::DeadlineModel::kArbitrary);
    const rt::Platform platform = rt::Platform::identical(base.processors);

    core::SolveConfig config;
    config.time_limit_ms = 10'000;
    const auto report = core::solve_instance(arbitrary, platform, config);
    ASSERT_TRUE(report.solved_tasks.has_value());
    EXPECT_GT(report.solved_tasks->size(), arbitrary.size());
    if (report.verdict == core::Verdict::kTimeout) continue;  // rare, hard
    ++cloned_cases;
    const bool oracle =
        flow::is_feasible(arbitrary.to_constrained(), platform);
    EXPECT_EQ(report.verdict == core::Verdict::kFeasible, oracle)
        << "instance " << k;
    if (report.schedule.has_value()) {
      EXPECT_TRUE(report.witness_valid);
    }
  }
  EXPECT_GT(cloned_cases, 0);
}

TEST(EndToEnd, HeterogeneousDedicatedVsGenericAgreement) {
  // On heterogeneous platforms the generic CSP2 encoding is complete; the
  // dedicated solver with the idle rule is only sound for feasibility.
  // Check: dedicated-feasible => generic-feasible, witnesses validate, and
  // with the idle rule off both verdicts coincide.
  gen::GeneratorOptions gopt;
  gopt.tasks = 3;
  gopt.processors = 2;
  gopt.t_max = 4;
  support::Rng rng(77);
  for (std::uint64_t k = 0; k < 20; ++k) {
    const auto inst = gen::generate_indexed(gopt, 414, k);
    std::vector<std::vector<rt::Rate>> rates;
    for (rt::TaskId i = 0; i < inst.tasks.size(); ++i) {
      std::vector<rt::Rate> row;
      for (std::int32_t j = 0; j < 2; ++j) {
        row.push_back(static_cast<rt::Rate>(rng.uniform(0, 2)));
      }
      if (row[0] == 0 && row[1] == 0) row[0] = 1;  // keep it serveable
      rates.push_back(row);
    }
    const rt::Platform platform = rt::Platform::heterogeneous(rates);

    core::SolveConfig generic;
    generic.method = core::Method::kCsp2Generic;
    generic.time_limit_ms = 30'000;
    const auto generic_report =
        core::solve_instance(inst.tasks, platform, generic);
    ASSERT_TRUE(generic_report.verdict == core::Verdict::kFeasible ||
                generic_report.verdict == core::Verdict::kInfeasible);

    core::SolveConfig dedicated;
    dedicated.method = core::Method::kCsp2Dedicated;
    dedicated.csp2.idle_rule = false;  // restore completeness
    dedicated.time_limit_ms = 30'000;
    const auto dedicated_report =
        core::solve_instance(inst.tasks, platform, dedicated);
    EXPECT_EQ(dedicated_report.verdict, generic_report.verdict)
        << "instance " << k;

    core::SolveConfig ruled;
    ruled.method = core::Method::kCsp2Dedicated;
    ruled.time_limit_ms = 30'000;
    const auto ruled_report = core::solve_instance(inst.tasks, platform, ruled);
    if (ruled_report.verdict == core::Verdict::kFeasible) {
      EXPECT_EQ(generic_report.verdict, core::Verdict::kFeasible);
      EXPECT_TRUE(ruled_report.witness_valid);
    }
  }
}

TEST(EndToEnd, Example1RendersEverywhere) {
  // The running example solves under every complete method and the
  // schedules — although possibly different — all validate.
  const auto ts = mgrts::testing::example1();
  const auto platform = mgrts::testing::example1_platform();
  for (const core::Method method :
       {core::Method::kCsp1Generic, core::Method::kCsp2Generic,
        core::Method::kCsp2Dedicated, core::Method::kFlowOracle}) {
    core::SolveConfig config;
    config.method = method;
    config.time_limit_ms = 30'000;
    config.generic = core::choco_like_defaults(5);
    const auto report = core::solve_instance(ts, platform, config);
    ASSERT_EQ(report.verdict, core::Verdict::kFeasible)
        << core::to_string(method);
    EXPECT_TRUE(report.witness_valid) << core::to_string(method);
  }
}

}  // namespace
}  // namespace mgrts
