// Chaos suite (DESIGN.md §12): deterministic seed-driven fault injection
// over the pipeline, portfolio, and batch entry points, with the flow
// oracle as fault-free ground truth.  The soundness contract under test:
//   * every decided verdict equals the fault-free verdict (faults may
//     degrade, never flip an answer);
//   * a degraded run carries a FailureCause — never an exception to the
//     caller, never a lost batch record;
//   * the watchdog culls a stalled lane while the race still decides.
#include "support/fault.hpp"

#include <gtest/gtest.h>

#if MGRTS_FAULT_INJECTION

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/solve.hpp"
#include "flow/oracle.hpp"
#include "gen/generator.hpp"
#include "rt/platform.hpp"
#include "testing.hpp"

namespace mgrts {
namespace {

using support::FaultInjector;
using support::FaultPlan;
using support::FaultSite;

// RAII disarm so a failing assertion cannot leak an armed injector into
// the rest of the suite.
struct InjectorGuard {
  explicit InjectorGuard(const FaultPlan& plan) { FaultInjector::arm(plan); }
  ~InjectorGuard() { FaultInjector::disarm(); }
};

struct Case {
  std::string label;
  rt::TaskSet ts;
  rt::Platform platform;
  core::Verdict truth = core::Verdict::kUnknown;
};

// Fixtures plus a few small generated draws; ground truth comes from the
// flow oracle while the injector is disarmed.
std::vector<Case> chaos_cases() {
  std::vector<Case> cases;
  const auto add = [&](std::string label, const rt::TaskSet& ts,
                       const rt::Platform& platform) {
    Case c{std::move(label), ts, platform};
    c.truth = flow::is_feasible(ts, platform) ? core::Verdict::kFeasible
                                              : core::Verdict::kInfeasible;
    cases.push_back(std::move(c));
  };
  add("example1", testing::example1(), testing::example1_platform());
  add("light3", testing::light3(), rt::Platform::identical(2));
  add("overloaded1", testing::overloaded1(), rt::Platform::identical(1));
  add("dhall2", testing::dhall2(), rt::Platform::identical(2));
  gen::GeneratorOptions g;
  g.tasks = 4;
  g.processors = 2;
  g.t_max = 4;
  for (std::uint64_t idx = 0; idx < 3; ++idx) {
    const gen::Instance inst = gen::generate_indexed(g, 20090911, idx);
    add("gen" + std::to_string(idx), inst.tasks,
        rt::Platform::identical(inst.processors));
  }
  return cases;
}

// The invariant of §VIII restated for faulty runs: a decided verdict must
// match the fault-free truth; anything else must say why it degraded.
void expect_sound(const core::SolveReport& report, const Case& c,
                  const std::string& context) {
  if (core::decisive(report.verdict, report.complete)) {
    EXPECT_EQ(report.verdict, c.truth) << context << " flipped the verdict";
  } else {
    EXPECT_NE(report.cause, core::FailureCause::kNone)
        << context << " degraded to " << core::to_string(report.verdict)
        << " without a cause";
  }
}

struct PlanSpec {
  const char* label;
  unsigned sites;
  double rate;
  std::int64_t max_faults;
};

// Three fault classes: allocation guards (fire on every table build),
// search-interior guards (propagator queue / variable budget, rate kept low
// because the sites are hot), and the deadline-class faults consumed by
// Deadline::poll.  A small max_faults cap means later evaluations run
// fault-free, so the sweep sees decided and degraded runs from one plan.
const PlanSpec kPlanSpecs[] = {
    {"alloc-guards",
     FaultPlan::mask(FaultSite::kFlowNetwork) |
         FaultPlan::mask(FaultSite::kJobTable) |
         FaultPlan::mask(FaultSite::kScheduleTable),
     0.5, 2},
    {"search-guards",
     FaultPlan::mask(FaultSite::kCspVarBudget) |
         FaultPlan::mask(FaultSite::kPropagator),
     0.02, 2},
    {"deadline-class",
     FaultPlan::mask(FaultSite::kDeadline) |
         FaultPlan::mask(FaultSite::kCancel),
     0.25, 2},
};

TEST(Chaos, SolveInstanceDegradationsStaySound) {
  const std::vector<Case> cases = chaos_cases();
  std::int64_t fired = 0;
  for (const std::uint64_t seed : {11u, 29u, 73u}) {
    for (const PlanSpec& spec : kPlanSpecs) {
      for (const Case& c : cases) {
        for (const bool staged : {true, false}) {
          // Staged entry: full presolve in front of the dedicated search.
          // Direct entry: the generic engine with no presolve, so the
          // search-interior sites get exercised too.
          core::SolveConfig config;
          config.time_limit_ms = 2'000;
          if (staged) {
            config.method = core::Method::kCsp2Dedicated;
            config.pipeline = core::PipelineOptions::full();
          } else {
            config.method = core::Method::kCsp1Generic;
            config.pipeline = core::PipelineOptions::none();
          }
          config.cancel = support::CancelToken::make();

          FaultPlan plan;
          plan.seed = seed;
          plan.rate = spec.rate;
          plan.sites = spec.sites;
          plan.max_faults = spec.max_faults;
          plan.cancel_target = config.cancel;
          InjectorGuard guard(plan);

          const std::string context = c.label + "/" + spec.label + "/seed" +
                                      std::to_string(seed) +
                                      (staged ? "/staged" : "/direct");
          core::SolveReport report;
          try {
            report = core::solve_instance(c.ts, c.platform, config);
          } catch (const std::exception& e) {
            ADD_FAILURE() << context << " escaped containment: " << e.what();
            continue;
          }
          expect_sound(report, c, context);
          fired += FaultInjector::active()->fired_total();
        }
      }
    }
  }
  // The sweep is pointless unless faults were actually delivered.
  EXPECT_GT(fired, 0);
}

TEST(Chaos, PortfolioDegradationsStaySound) {
  const std::vector<Case> cases = chaos_cases();
  std::int64_t fired = 0;
  for (const std::uint64_t seed : {5u, 41u}) {
    for (const PlanSpec& spec : kPlanSpecs) {
      for (const Case& c : cases) {
        core::SolveConfig config;
        config.method = core::Method::kPortfolio;
        config.time_limit_ms = 2'000;
        config.pipeline = core::PipelineOptions::none();
        config.portfolio.workers = 1;
        config.cancel = support::CancelToken::make();

        FaultPlan plan;
        plan.seed = seed;
        plan.rate = spec.rate;
        plan.sites = spec.sites;
        plan.max_faults = spec.max_faults;
        plan.cancel_target = config.cancel;
        InjectorGuard guard(plan);

        const std::string context =
            c.label + "/" + spec.label + "/seed" + std::to_string(seed);
        core::PortfolioReport race;
        try {
          race = core::solve_portfolio(c.ts, c.platform, config);
        } catch (const std::exception& e) {
          ADD_FAILURE() << context << " escaped containment: " << e.what();
          continue;
        }
        expect_sound(race.report, c, context);
        // Per-lane outcomes obey the same contract: a lane that decided
        // must agree with the truth (losers report budget verdicts).
        for (const core::LaneOutcome& lane : race.lanes) {
          if (core::decisive(lane.verdict, true) &&
              lane.verdict == core::Verdict::kFeasible) {
            EXPECT_EQ(c.truth, core::Verdict::kFeasible)
                << context << " lane " << lane.label;
          }
        }
        fired += FaultInjector::active()->fired_total();
      }
    }
  }
  EXPECT_GT(fired, 0);
}

TEST(Chaos, BatchContainmentNeverLosesRecords) {
  const std::vector<Case> cases = chaos_cases();
  std::vector<core::BatchJob> jobs;
  for (std::size_t k = 0; k < cases.size(); ++k) {
    core::SolveConfig config;
    config.time_limit_ms = 2'000;
    if (k % 2 == 0) {
      config.method = core::Method::kCsp2Dedicated;
      config.pipeline = core::PipelineOptions::full();
    } else {
      config.method = core::Method::kCsp1Generic;
      config.pipeline = core::PipelineOptions::none();
    }
    jobs.push_back(core::BatchJob{cases[k].ts, cases[k].platform, config});
  }

  for (const std::uint64_t seed : {13u, 57u}) {
    FaultPlan plan;
    plan.seed = seed;
    plan.rate = 0.3;
    plan.sites = FaultPlan::mask(FaultSite::kFlowNetwork) |
                 FaultPlan::mask(FaultSite::kJobTable) |
                 FaultPlan::mask(FaultSite::kScheduleTable) |
                 FaultPlan::mask(FaultSite::kCspVarBudget);
    InjectorGuard guard(plan);

    core::BatchPolicy policy;
    policy.workers = 1;
    policy.max_attempts = 2;
    core::BatchHealth health;
    std::vector<core::SolveReport> reports;
    try {
      reports = core::solve_batch(jobs, policy, &health);
    } catch (const std::exception& e) {
      ADD_FAILURE() << "solve_batch escaped containment: " << e.what();
      continue;
    }
    ASSERT_EQ(reports.size(), jobs.size()) << "lost batch records";
    for (std::size_t k = 0; k < reports.size(); ++k) {
      expect_sound(reports[k], cases[k],
                   cases[k].label + "/batch/seed" + std::to_string(seed));
    }
    // Accounting is internally consistent even when the exact fault
    // schedule varies with the seed.
    EXPECT_EQ(health.quarantined,
              static_cast<std::int64_t>(health.quarantined_jobs.size()));
    EXPECT_LE(health.recovered + health.quarantined, health.failures + 1);
    EXPECT_GE(health.failures, health.quarantined);
  }
}

TEST(Chaos, RetryRecoversTransientFault) {
  // Exactly one injected propagator fault: the first attempt degrades to
  // kUnknown/kFaultInjected, the retry runs fault-free and recovers.
  FaultPlan plan;
  plan.seed = 7;
  plan.rate = 1.0;
  plan.sites = FaultPlan::mask(FaultSite::kPropagator);
  plan.max_faults = 1;
  InjectorGuard guard(plan);

  std::vector<core::BatchJob> jobs;
  core::SolveConfig config;
  config.method = core::Method::kCsp1Generic;
  config.pipeline = core::PipelineOptions::none();
  jobs.push_back(core::BatchJob{testing::example1(),
                                testing::example1_platform(), config});

  core::BatchPolicy policy;
  policy.workers = 1;
  policy.max_attempts = 2;
  core::BatchHealth health;
  const std::vector<core::SolveReport> reports =
      solve_batch(jobs, policy, &health);

  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].verdict, core::Verdict::kFeasible);
  EXPECT_EQ(health.failures, 1);
  EXPECT_EQ(health.retries, 1);
  EXPECT_EQ(health.recovered, 1);
  EXPECT_EQ(health.quarantined, 0);
  EXPECT_EQ(FaultInjector::active()->fired(FaultSite::kPropagator), 1);
}

// Non-chronological backjumping under fire (DESIGN.md §15): the asserting
// clause path — multi-level trail unwind, solver-side assert under an
// explicit reason, secondary-conflict re-analysis — runs inside the same
// degradation funnel as plain search.  A fault landing mid-unwind or
// mid-assert must degrade the run to an explained kUnknown, never flip a
// verdict against the fault-free truth and never escape as an exception.
TEST(Chaos, BackjumpUnwindingDegradationsStaySound) {
  const std::vector<Case> cases = chaos_cases();
  const auto config_for = [](std::uint64_t seed) {
    core::SolveConfig config;
    config.method = core::Method::kCsp2Generic;
    config.pipeline = core::PipelineOptions::none();
    config.time_limit_ms = 2'000;
    config.generic = core::choco_like_defaults(seed);
    config.generic.nogoods = true;  // kUip1 + backjump are the defaults
    return config;
  };

  // Disarmed control pass: this configuration must actually drive the
  // suite through the backjump path, or the armed sweep proves nothing.
  std::int64_t control_jumps = 0;
  for (const Case& c : cases) {
    const core::SolveReport report =
        core::solve_instance(c.ts, c.platform, config_for(3));
    control_jumps += report.nogoods.backjumps;
  }
  ASSERT_GT(control_jumps, 0) << "the chaos cases never backjump";

  std::int64_t fired = 0;
  for (const std::uint64_t seed : {17u, 59u, 101u}) {
    for (const Case& c : cases) {
      core::SolveConfig config = config_for(seed);
      config.cancel = support::CancelToken::make();

      FaultPlan plan;
      plan.seed = seed;
      plan.rate = 0.02;  // propagator site is hot inside the assert loop
      plan.sites = FaultPlan::mask(FaultSite::kPropagator) |
                   FaultPlan::mask(FaultSite::kCspVarBudget);
      plan.max_faults = 2;
      plan.cancel_target = config.cancel;
      InjectorGuard guard(plan);

      const std::string context =
          c.label + "/backjump/seed" + std::to_string(seed);
      core::SolveReport report;
      try {
        report = core::solve_instance(c.ts, c.platform, config);
      } catch (const std::exception& e) {
        ADD_FAILURE() << context << " escaped containment: " << e.what();
        continue;
      }
      expect_sound(report, c, context);
      fired += FaultInjector::active()->fired_total();
    }
  }
  EXPECT_GT(fired, 0);
}

TEST(Chaos, WatchdogCullsStalledLaneWhileRaceDecides) {
  // Find an instance whose lane-0 search (kInput order, paper-faithful)
  // runs past the 1024-node deadline poll — that poll is where the
  // injected stall fires.  Lanes run sequentially (workers=1), so lane 0
  // stalls before any other lane can decide; the watchdog must cull it and
  // the surviving lanes must still decide the race.
  gen::GeneratorOptions g;
  g.tasks = 6;
  g.processors = 2;
  g.t_max = 6;
  std::optional<gen::Instance> target;
  for (std::uint64_t idx = 0; idx < 80 && !target; ++idx) {
    gen::Instance inst = gen::generate_indexed(g, 424242, idx);
    core::SolveConfig probe;
    probe.method = core::Method::kCsp2Dedicated;
    probe.pipeline = core::PipelineOptions::none();
    probe.csp2.value_order = csp2::ValueOrder::kInput;
    probe.csp2.slack_prune = false;
    probe.csp2.tight_demand_prune = false;
    probe.max_nodes = 5'000;
    const core::SolveReport report = core::solve_instance(
        inst.tasks, rt::Platform::identical(inst.processors), probe);
    if (core::decisive(report.verdict, report.complete) &&
        report.nodes >= 2'048) {
      target = std::move(inst);
    }
  }
  if (!target) {
    GTEST_SKIP() << "no generator draw with a >=2048-node lane-0 search";
  }

  FaultPlan plan;
  plan.seed = 1;
  plan.rate = 1.0;
  plan.sites = FaultPlan::mask(FaultSite::kStall);
  plan.max_faults = 1;
  plan.stall_cap_ms = 5'000;  // watchdog should interrupt long before this
  InjectorGuard guard(plan);

  core::SolveConfig config;
  config.pipeline = core::PipelineOptions::none();
  config.time_limit_ms = 60'000;
  config.portfolio.workers = 1;
  config.portfolio.watchdog_stall_ms = 100;
  const core::PortfolioReport race = core::solve_portfolio(
      target->tasks, rt::Platform::identical(target->processors), config);

  EXPECT_EQ(FaultInjector::active()->fired(FaultSite::kStall), 1);
  EXPECT_TRUE(core::decisive(race.report.verdict, race.report.complete))
      << "race did not survive the stalled lane: "
      << core::to_string(race.report.verdict);
  bool culled = false;
  for (const core::LaneOutcome& lane : race.lanes) {
    if (lane.watchdog_cancelled) {
      culled = true;
      EXPECT_FALSE(core::decisive(lane.verdict, true) &&
                   lane.verdict == core::Verdict::kFeasible)
          << "a culled lane cannot also have won";
    }
  }
  EXPECT_TRUE(culled) << "watchdog never cancelled the stalled lane";
}

}  // namespace
}  // namespace mgrts

#else  // MGRTS_FAULT_INJECTION

TEST(Chaos, InjectionCompiledOut) {
  GTEST_SKIP() << "built with MGRTS_FAULT_INJECTION=0";
}

#endif  // MGRTS_FAULT_INJECTION
