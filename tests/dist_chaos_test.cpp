// Chaos suite for the distributed batch layer (DESIGN.md §16): the
// straggler contract under deterministic fault injection, and fleet
// behavior around dead workers.  The invariant everywhere: whatever the
// fleet suffers, the merged batch carries exactly one record per
// generator index, decided verdicts equal the fault-free truth, and the
// exactly-once counter (duplicate_rows) stays zero.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dist/coord.hpp"
#include "dist/worker.hpp"
#include "exp/harness.hpp"
#include "exp/sharded.hpp"
#include "support/fault.hpp"

namespace mgrts::dist {
namespace {

std::string test_socket_path(const char* tag) {
  return "/tmp/mgrts_dchaos_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

exp::BatchOptions chaos_batch() {
  exp::BatchOptions options;
  options.generator.tasks = 8;
  options.generator.processors = 4;
  options.generator.t_max = 6;
  options.instances = 8;
  options.seed = 20090911;
  return options;
}

constexpr std::int64_t kTimeLimitMs = 20'000;
const std::vector<std::string> kLineup = {"csp2-dmc"};

/// One record per index, in batch order, decided verdicts matching the
/// fault-free reference run bit for bit (shard re-dispatch replays the
/// same seeds, so even node counts must agree).
void expect_exactly_once_and_sound(const exp::BatchResult& result,
                                   const exp::BatchResult& truth,
                                   const std::string& tag) {
  ASSERT_EQ(result.instances.size(), truth.instances.size()) << tag;
  for (std::size_t k = 0; k < result.instances.size(); ++k) {
    const exp::InstanceRecord& got = result.instances[k];
    const exp::InstanceRecord& want = truth.instances[k];
    const std::string label = tag + ": index " + std::to_string(want.index);
    EXPECT_EQ(got.index, want.index) << label;
    ASSERT_EQ(got.runs.size(), want.runs.size()) << label;
    for (std::size_t s = 0; s < got.runs.size(); ++s) {
      EXPECT_EQ(got.runs[s].verdict, want.runs[s].verdict) << label;
      EXPECT_EQ(got.runs[s].complete, want.runs[s].complete) << label;
      EXPECT_EQ(got.runs[s].witness_ok, want.runs[s].witness_ok) << label;
      EXPECT_EQ(got.runs[s].nodes, want.runs[s].nodes) << label;
      EXPECT_EQ(got.runs[s].decided_by, want.runs[s].decided_by) << label;
      EXPECT_EQ(got.runs[s].failure_cause, want.runs[s].failure_cause)
          << label;
    }
  }
}

class WorkerFleet {
 public:
  WorkerFleet(int count, const char* tag) {
    for (int w = 0; w < count; ++w) {
      WorkerOptions options;
      options.socket_path =
          test_socket_path((std::string(tag) + std::to_string(w)).c_str());
      options.beat_interval_ms = 20;
      workers_.push_back(std::make_unique<WorkerServer>(options));
      workers_.back()->start();
      sockets_.push_back(options.socket_path);
    }
  }
  ~WorkerFleet() {
    for (auto& worker : workers_) worker->stop();
  }
  [[nodiscard]] const std::vector<std::string>& sockets() const {
    return sockets_;
  }

 private:
  std::vector<std::unique_ptr<WorkerServer>> workers_;
  std::vector<std::string> sockets_;
};

// ------------------------------------------------- dead-worker resilience
//
// No injector needed: a socket nobody listens on is the simplest chaos.

TEST(DistChaos, DeadWorkerAloneFallsBackAndLosesNothing) {
  const exp::BatchOptions options = chaos_batch();
  const exp::BatchResult truth = exp::run_batch_sharded(
      options, kLineup, kTimeLimitMs, FleetOptions{}, nullptr);

  FleetOptions fleet;
  fleet.workers = {test_socket_path("nobody")};  // never bound
  fleet.shards = 2;
  fleet.max_dispatch_attempts = 2;
  FleetStats stats;
  const exp::BatchResult result =
      exp::run_batch_sharded(options, kLineup, kTimeLimitMs, fleet, &stats);

  EXPECT_GT(stats.transport_failures, 0);
  EXPECT_EQ(stats.local_fallbacks, 2);
  EXPECT_EQ(stats.duplicate_rows, 0);
  expect_exactly_once_and_sound(result, truth, "dead worker");
}

TEST(DistChaos, DeadWorkerBesideALiveOneStillMergesEveryIndex) {
  const exp::BatchOptions options = chaos_batch();
  const exp::BatchResult truth = exp::run_batch_sharded(
      options, kLineup, kTimeLimitMs, FleetOptions{}, nullptr);

  WorkerFleet live(1, "live");
  FleetOptions fleet;
  fleet.workers = {test_socket_path("ghost"), live.sockets()[0]};
  fleet.shards = 4;
  FleetStats stats;
  const exp::BatchResult result =
      exp::run_batch_sharded(options, kLineup, kTimeLimitMs, fleet, &stats);

  // The ghost's claims fail fast and re-enter the queue; whether the live
  // worker or the fallback path finishes them, nothing is lost or doubled.
  EXPECT_GT(stats.transport_failures, 0);
  EXPECT_EQ(stats.duplicate_rows, 0);
  expect_exactly_once_and_sound(result, truth, "ghost+live");
}

TEST(DistChaos, ExhaustedDispatchWithFallbackDisabledThrows) {
  FleetOptions fleet;
  fleet.workers = {test_socket_path("void")};
  fleet.max_dispatch_attempts = 1;
  fleet.local_fallback = false;
  EXPECT_THROW((void)exp::run_batch_sharded(chaos_batch(), kLineup,
                                            kTimeLimitMs, fleet, nullptr),
               Error);
}

#if MGRTS_FAULT_INJECTION

// ------------------------------------------------------ injected stalls
//
// The in-process fleet shares this process's FaultInjector, so an armed
// stall plan makes the first worker thread that polls a deadline sleep in
// place — a straggler by construction.  The plan's max_faults cap bounds
// the chaos: re-dispatched shards run fault-free, so the merged batch is
// comparable to the fault-free truth bit for bit.

struct InjectorGuard {
  explicit InjectorGuard(const support::FaultPlan& plan) {
    support::FaultInjector::arm(plan);
  }
  ~InjectorGuard() { support::FaultInjector::disarm(); }
};

TEST(DistChaos, StalledShardIsCulledRedispatchedAndMergesClean) {
  const exp::BatchOptions options = chaos_batch();
  const exp::BatchResult truth = exp::run_batch_sharded(
      options, kLineup, kTimeLimitMs, FleetOptions{}, nullptr);

  WorkerFleet fleet_procs(2, "stall");
  FleetOptions fleet;
  fleet.workers = fleet_procs.sockets();
  fleet.shards = 4;
  fleet.stall_ms = 250;  // cull well inside one injected stall
  fleet.poll_interval_ms = 25;

  support::FaultPlan plan;
  plan.seed = 20090911;
  plan.rate = 1.0;  // first polls stall, deterministically
  plan.sites = support::FaultPlan::mask(support::FaultSite::kStall);
  plan.max_faults = 2;       // bounded chaos: later attempts run clean
  plan.stall_cap_ms = 3'000; // each stall dwarfs stall_ms

  FleetStats stats;
  exp::BatchResult result;
  {
    InjectorGuard guard(plan);
    result =
        exp::run_batch_sharded(options, kLineup, kTimeLimitMs, fleet, &stats);
  }

  // The straggler was culled by its frozen beat and its indices travelled
  // to a new dispatch — and not one record was lost or doubled on the way.
  EXPECT_GE(stats.stall_culls, 1);
  EXPECT_GE(stats.redispatched, 1);
  EXPECT_EQ(stats.duplicate_rows, 0);
  expect_exactly_once_and_sound(result, truth, "stall");
}

#else  // MGRTS_FAULT_INJECTION

TEST(DistChaos, InjectionCompiledOut) {
  GTEST_SKIP() << "built with MGRTS_FAULT_INJECTION=0";
}

#endif  // MGRTS_FAULT_INJECTION

}  // namespace
}  // namespace mgrts::dist
