// Shared fixtures and helpers for the mgrts test suite.
#pragma once

#include <gtest/gtest.h>

#include "rt/platform.hpp"
#include "rt/task_set.hpp"

namespace mgrts::testing {

/// The paper's running Example 1: m=2, n=3,
///   tau1 = (0,1,2,2), tau2 = (1,3,4,4), tau3 = (0,2,2,3); T = 12.
inline rt::TaskSet example1() {
  return rt::TaskSet::from_params({{0, 1, 2, 2}, {1, 3, 4, 4}, {0, 2, 2, 3}});
}

inline rt::Platform example1_platform() { return rt::Platform::identical(2); }

/// A trivially feasible synchronous set: three light tasks on two cores.
inline rt::TaskSet light3() {
  return rt::TaskSet::from_params({{0, 1, 4, 4}, {0, 1, 4, 4}, {0, 2, 6, 6}});
}

/// Over-capacity on one core: U = 3/2 > 1.
inline rt::TaskSet overloaded1() {
  return rt::TaskSet::from_params({{0, 1, 2, 2}, {0, 2, 2, 2}});
}

/// The classic Dhall-style instance (discretized): two light tasks plus one
/// task saturating a full processor.  Global EDF misses on m=2; the
/// instance itself is feasible (tau3 on its own core).
inline rt::TaskSet dhall2() {
  return rt::TaskSet::from_params({{0, 1, 2, 2}, {0, 1, 2, 2}, {0, 2, 2, 2}});
}

}  // namespace mgrts::testing
