#include "localsearch/min_conflicts.hpp"

#include <gtest/gtest.h>

#include "flow/oracle.hpp"
#include "gen/generator.hpp"
#include "rt/validate.hpp"
#include "support/error.hpp"
#include "testing.hpp"

namespace mgrts::ls {
namespace {

using mgrts::testing::example1;
using rt::Platform;
using rt::TaskSet;

TEST(MinConflicts, SolvesExample1) {
  const TaskSet ts = example1();
  const Platform p = Platform::identical(2);
  const Result result = solve(ts, p);
  ASSERT_EQ(result.status, Status::kFeasible);
  ASSERT_TRUE(result.schedule.has_value());
  EXPECT_TRUE(rt::is_valid_schedule(ts, p, *result.schedule));
  EXPECT_EQ(result.stats.best_cost, 0);
}

TEST(MinConflicts, NeverClaimsFeasibleOnInfeasible) {
  // U > m: cost can never reach 0; budget must run out with kUnknown.
  Options options;
  options.iterations_per_restart = 2'000;
  options.restarts = 3;
  const Result result =
      solve(mgrts::testing::overloaded1(), Platform::identical(1), options);
  EXPECT_EQ(result.status, Status::kUnknown);
  EXPECT_GT(result.stats.best_cost, 0);
  EXPECT_FALSE(result.schedule.has_value());
}

TEST(MinConflicts, DeterministicPerSeed) {
  const TaskSet ts = example1();
  const Platform p = Platform::identical(2);
  Options options;
  options.seed = 99;
  const Result a = solve(ts, p, options);
  const Result b = solve(ts, p, options);
  ASSERT_EQ(a.status, Status::kFeasible);
  ASSERT_EQ(b.status, Status::kFeasible);
  EXPECT_EQ(*a.schedule, *b.schedule);
  EXPECT_EQ(a.stats.iterations, b.stats.iterations);
}

TEST(MinConflicts, TimeoutReported) {
  Options options;
  options.deadline = support::Deadline::after_ms(0);
  options.iterations_per_restart = 100'000'000;
  // An infeasible instance keeps it busy until the (expired) deadline.
  const Result result =
      solve(mgrts::testing::overloaded1(), Platform::identical(1), options);
  EXPECT_EQ(result.status, Status::kTimeout);
}

TEST(MinConflicts, WcetBeyondDeadlineGivesUnknownImmediately) {
  const TaskSet ts = TaskSet::from_params({{0, 3, 2, 5}});
  const Result result = solve(ts, Platform::identical(2));
  EXPECT_EQ(result.status, Status::kUnknown);
  EXPECT_EQ(result.stats.iterations, 0);
}

TEST(MinConflicts, RejectsHeterogeneousPlatforms) {
  EXPECT_THROW(
      static_cast<void>(solve(example1(),
                              Platform::heterogeneous({{1}, {1}, {1}}))),
      ValidationError);
}

TEST(MinConflicts, RejectsArbitraryDeadlines) {
  const TaskSet ts =
      TaskSet::from_params({{0, 1, 5, 4}}, rt::DeadlineModel::kArbitrary);
  EXPECT_THROW(static_cast<void>(solve(ts, Platform::identical(1))),
               ValidationError);
}

TEST(MinConflicts, ZeroFreedomInstanceSolvedAtConstruction) {
  // C == D for every task: each job must use its whole window; the greedy
  // initialization is the only assignment.  Feasible iff the oracle agrees.
  const TaskSet ts = TaskSet::from_params({{0, 2, 2, 2}, {0, 2, 2, 2}});
  const Result result = solve(ts, Platform::identical(2));
  ASSERT_EQ(result.status, Status::kFeasible);
  EXPECT_TRUE(
      rt::is_valid_schedule(ts, Platform::identical(2), *result.schedule));
}

TEST(MinConflicts, FindsSolutionsOnFeasibleSweep) {
  // On oracle-feasible instances the search should succeed essentially
  // always at this size; require a high hit rate, validate every witness.
  int feasible = 0;
  int found = 0;
  for (std::uint64_t k = 0; k < 50; ++k) {
    gen::GeneratorOptions gopt;
    gopt.tasks = 5;
    gopt.processors = 3;
    gopt.t_max = 6;
    gopt.with_offsets = (k % 2 == 1);
    const auto inst = gen::generate_indexed(gopt, 4321, k);
    const Platform p = Platform::identical(inst.processors);
    if (!flow::is_feasible(inst.tasks, p)) continue;
    ++feasible;
    Options options;
    options.seed = k;
    const Result result = solve(inst.tasks, p, options);
    if (result.status == Status::kFeasible) {
      ++found;
      EXPECT_TRUE(rt::is_valid_schedule(inst.tasks, p, *result.schedule))
          << "instance " << k;
    }
  }
  ASSERT_GT(feasible, 10);
  // Min-conflicts is incomplete; demand at least 80% coverage here.
  EXPECT_GE(found * 10, feasible * 8);
}

TEST(MinConflicts, RestartsAreUsedWhenStuck) {
  Options options;
  options.iterations_per_restart = 50;
  options.restarts = 4;
  const Result result =
      solve(mgrts::testing::overloaded1(), Platform::identical(1), options);
  EXPECT_EQ(result.status, Status::kUnknown);
  EXPECT_EQ(result.stats.restarts_used, 3);  // 0-based index of last round
  EXPECT_EQ(result.stats.iterations, 4 * 50);
}

}  // namespace
}  // namespace mgrts::ls
