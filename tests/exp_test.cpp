#include "exp/harness.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "exp/env.hpp"
#include "exp/tables.hpp"

namespace mgrts::exp {
namespace {

BatchOptions small_batch_options() {
  BatchOptions options;
  options.generator.tasks = 4;
  options.generator.processors = 2;
  options.generator.t_max = 4;
  options.instances = 20;
  options.seed = 1234;
  options.workers = 2;
  return options;
}

std::vector<SolverSpec> small_lineup() {
  // CSP2 dedicated twice (plain and D-C) keeps the tests fast while still
  // exercising multi-solver aggregation.
  return {csp2_spec(csp2::ValueOrder::kInput, 2000),
          csp2_spec(csp2::ValueOrder::kDMinusC, 2000)};
}

TEST(Harness, ResidueSpecIsIndexAddressableAndReproducible) {
  // The residue filter is pure bookkeeping over generator indices: the
  // same options + probe give the same index set, and feeding the indices
  // back through run_batch reproduces exactly those instances.
  BatchOptions options = small_batch_options();
  options.instances = 12;
  options.workers = 1;
  // Flow oracle off and a one-node csp2-presolve budget so some instances
  // genuinely survive presolve on this tiny workload.
  const SolverSpec probe =
      presolve_probe_spec(500, /*flow_oracle=*/false,
                          /*presolve_max_nodes=*/1);
  const ResidueSpec residue = residue_spec(options, probe);
  EXPECT_EQ(residue.probed, 12);
  EXPECT_EQ(residue.absorbed +
                static_cast<std::int64_t>(residue.indices().size()),
            12);
  EXPECT_FALSE(residue.indices().empty())
      << "probe absorbed everything; weaken it further";

  const ResidueSpec again = residue_spec(options, probe);
  EXPECT_EQ(residue.indices(), again.indices());

  const BatchResult sub = run_batch(residue.batch, {probe});
  ASSERT_EQ(sub.instances.size(), residue.indices().size());
  for (std::size_t k = 0; k < sub.instances.size(); ++k) {
    EXPECT_EQ(sub.instances[k].index, residue.indices()[k]);
    // Residue members stay undecided under the same probe.
    EXPECT_TRUE(sub.instances[k].runs[0].overrun()) << "index " << k;
  }
}

TEST(Harness, RunBatchHonorsExplicitIndices) {
  BatchOptions options = small_batch_options();
  options.workers = 1;
  const std::vector<std::uint64_t> picks{7, 2, 11};
  options.indices = picks;
  const BatchResult batch =
      run_batch(options, {csp2_spec(csp2::ValueOrder::kDMinusC, 2000)});
  ASSERT_EQ(batch.instances.size(), picks.size());
  // Each record carries its generator index and matches the instance that
  // a full-stream batch draws at that index.
  BatchOptions full = small_batch_options();
  full.workers = 1;
  const BatchResult reference =
      run_batch(full, {csp2_spec(csp2::ValueOrder::kDMinusC, 2000)});
  for (std::size_t k = 0; k < picks.size(); ++k) {
    EXPECT_EQ(batch.instances[k].index, picks[k]);
    const InstanceRecord& ref =
        reference.instances[static_cast<std::size_t>(picks[k])];
    EXPECT_EQ(batch.instances[k].tasks, ref.tasks);
    EXPECT_EQ(batch.instances[k].hyperperiod, ref.hyperperiod);
    EXPECT_EQ(batch.instances[k].runs[0].verdict, ref.runs[0].verdict);
  }
}

TEST(Harness, Csp2SpecPaperFaithfulTogglesPruning) {
  const SolverSpec faithful =
      csp2_spec(csp2::ValueOrder::kDMinusC, 100, /*paper_faithful=*/true);
  EXPECT_FALSE(faithful.config.csp2.slack_prune);
  EXPECT_FALSE(faithful.config.csp2.tight_demand_prune);
  EXPECT_TRUE(faithful.config.csp2.idle_rule);      // §V-C rule 1 stays
  EXPECT_TRUE(faithful.config.csp2.symmetry_rule);  // §V-C rule 2 stays

  const SolverSpec extended =
      csp2_spec(csp2::ValueOrder::kDMinusC, 100, /*paper_faithful=*/false);
  EXPECT_TRUE(extended.config.csp2.slack_prune);
  EXPECT_TRUE(extended.config.csp2.tight_demand_prune);
}

TEST(Harness, PaperLineupIsPaperFaithful) {
  const auto specs = paper_lineup(100, 1);
  for (std::size_t s = 1; s < specs.size(); ++s) {
    EXPECT_FALSE(specs[s].config.csp2.slack_prune) << specs[s].label;
  }
  // The CSP1 entry gets the randomized Choco-like strategy.
  EXPECT_EQ(specs[0].config.generic.restart, csp::RestartPolicy::kLuby);
  EXPECT_TRUE(specs[0].config.generic.random_var_ties);
  // No presolve stage may shadow the solvers under measurement (§VII runs
  // the CSP searches directly; only the r > 1 filter applies, separately).
  for (const auto& spec : specs) {
    EXPECT_FALSE(spec.config.pipeline.analysis) << spec.label;
    EXPECT_FALSE(spec.config.pipeline.flow_oracle) << spec.label;
    EXPECT_FALSE(spec.config.pipeline.csp2_presolve) << spec.label;
  }
}

TEST(Harness, PortfolioAndPipelineSpecsSelectTheStages) {
  const SolverSpec raw = portfolio_spec(100, 1, /*presolve=*/false,
                                        /*diverse_lanes=*/false);
  EXPECT_EQ(raw.label, "CSP2-portfolio");
  EXPECT_FALSE(raw.config.pipeline.flow_oracle);
  EXPECT_FALSE(raw.config.portfolio.pruned_lane);
  EXPECT_FALSE(raw.config.portfolio.local_search_lane);

  const SolverSpec piped = portfolio_spec(100);
  EXPECT_EQ(piped.label, "CSP2-pipeline");
  EXPECT_TRUE(piped.config.pipeline.analysis);
  EXPECT_TRUE(piped.config.pipeline.flow_oracle);
  EXPECT_TRUE(piped.config.pipeline.csp2_presolve);
  EXPECT_TRUE(piped.config.portfolio.pruned_lane);
  EXPECT_TRUE(piped.config.portfolio.local_search_lane);

  const SolverSpec staged = pipeline_spec(100);
  EXPECT_EQ(staged.label, "pipeline-CSP2");
  EXPECT_EQ(staged.config.method, core::Method::kCsp2Dedicated);
  EXPECT_TRUE(staged.config.pipeline.csp2_presolve);
}

TEST(Harness, PaperLineupHasSixSolversWithPaperLabels) {
  const auto specs = paper_lineup(1000, 7);
  ASSERT_EQ(specs.size(), 6u);
  EXPECT_EQ(specs[0].label, "CSP1");
  EXPECT_EQ(specs[1].label, "CSP2");
  EXPECT_EQ(specs[2].label, "CSP2+RM");
  EXPECT_EQ(specs[3].label, "CSP2+DM");
  EXPECT_EQ(specs[4].label, "CSP2+(T-C)");
  EXPECT_EQ(specs[5].label, "CSP2+(D-C)");
  EXPECT_EQ(specs[0].config.method, core::Method::kCsp1Generic);
  for (std::size_t s = 1; s < 6; ++s) {
    EXPECT_EQ(specs[s].config.method, core::Method::kCsp2Dedicated);
  }
}

TEST(Harness, BatchShapesAndMetadata) {
  const BatchResult batch = run_batch(small_batch_options(), small_lineup());
  ASSERT_EQ(batch.instances.size(), 20u);
  ASSERT_EQ(batch.labels.size(), 2u);
  for (const auto& inst : batch.instances) {
    EXPECT_EQ(inst.tasks, 4);
    EXPECT_EQ(inst.processors, 2);
    EXPECT_GT(inst.hyperperiod, 0);
    EXPECT_GT(inst.ratio, 0.0);
    ASSERT_EQ(inst.runs.size(), 2u);
    for (const auto& run : inst.runs) {
      if (run.found_schedule()) EXPECT_TRUE(run.witness_ok);
      EXPECT_GE(run.seconds, 0.0);
    }
  }
}

TEST(Harness, VerdictsDeterministicAcrossWorkerCounts) {
  // With a generous budget (no realistic timeout pressure at this size),
  // worker parallelism must not change any verdict.
  BatchOptions a = small_batch_options();
  a.workers = 1;
  BatchOptions b = small_batch_options();
  b.workers = 4;
  const BatchResult ra = run_batch(a, small_lineup());
  const BatchResult rb = run_batch(b, small_lineup());
  for (std::size_t k = 0; k < ra.instances.size(); ++k) {
    for (std::size_t s = 0; s < ra.labels.size(); ++s) {
      EXPECT_EQ(ra.instances[k].runs[s].verdict,
                rb.instances[k].runs[s].verdict)
          << "instance " << k << " solver " << s;
    }
  }
}

TEST(Harness, CapacityFilterConsistency) {
  const BatchResult batch = run_batch(small_batch_options(), small_lineup());
  for (const auto& inst : batch.instances) {
    if (inst.exceeds_capacity) {
      // r > 1 is necessary for infeasibility: no solver may find a schedule.
      EXPECT_FALSE(inst.solved_by_any());
      EXPECT_GT(inst.ratio, 1.0);
    }
  }
}

// ------------------------------------------------------------------ tables

TEST(Tables, Table1ShapeAndClassTotals) {
  const BatchResult batch = run_batch(small_batch_options(), small_lineup());
  const auto table = table1_overruns(batch);
  EXPECT_EQ(table.rows(), 2u);
  EXPECT_EQ(table.cols(), 1 + 2 + 1);  // name + solvers + Total
  // Class sizes must partition the batch.
  std::int64_t solved = 0;
  for (const auto& inst : batch.instances) {
    if (inst.solved_by_any()) ++solved;
  }
  const std::string text = table.to_string();
  EXPECT_NE(text.find("solved"), std::string::npos);
  EXPECT_NE(text.find(std::to_string(solved)), std::string::npos);
}

TEST(Tables, Table2CountsPartitionUnsolved) {
  const BatchResult batch = run_batch(small_batch_options(), small_lineup());
  const UnsolvedSummary summary = summarize_unsolved(batch);
  EXPECT_EQ(summary.unsolved, summary.filtered + summary.unfiltered);
  EXPECT_LE(summary.provably_unsolvable, summary.unfiltered);
  std::int64_t solved = 0;
  for (const auto& inst : batch.instances) {
    if (inst.solved_by_any()) ++solved;
  }
  EXPECT_EQ(solved + summary.unsolved,
            static_cast<std::int64_t>(batch.instances.size()));
  const auto table = table2_unsolved(batch);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(Tables, Table3BucketsCoverAllInstances) {
  const BatchResult batch = run_batch(small_batch_options(), small_lineup());
  const auto table = table3_difficulty(batch, 2.0);
  // 0-0.4 plus 13 buckets of width 0.1 plus 1.7-2.0.
  EXPECT_GE(table.rows(), 15u);
  const std::string csv = table.to_csv();
  // Sum the #instances column.
  std::int64_t total = 0;
  std::istringstream in(csv);
  std::string line;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    const auto first_comma = line.find(',');
    const auto second_comma = line.find(',', first_comma + 1);
    total += std::strtoll(
        line.substr(first_comma + 1, second_comma - first_comma - 1).c_str(),
        nullptr, 10);
  }
  EXPECT_EQ(total, static_cast<std::int64_t>(batch.instances.size()));
}

TEST(Tables, Table4RowAveragesAndMemoryDash) {
  BatchOptions options = small_batch_options();
  options.instances = 10;
  std::vector<SolverSpec> specs = small_lineup();
  // Add a CSP1 spec with an absurdly small variable budget: every run
  // reports kMemoryLimit, which Table IV renders as "-".
  SolverSpec broken;
  broken.label = "CSP1";
  broken.config.method = core::Method::kCsp1Generic;
  broken.config.time_limit_ms = 1000;
  broken.config.limits.max_variables = 1;
  broken.config.pipeline = core::PipelineOptions::none();  // let it OOM
  specs.push_back(broken);

  const BatchResult batch = run_batch(options, specs);
  const ScalingRow row = scaling_row(batch, 4, 1.0);
  EXPECT_EQ(row.tasks, 4);
  EXPECT_EQ(row.instances, 10);
  EXPECT_NEAR(row.avg_processors, 2.0, 1e-9);
  EXPECT_GT(row.avg_ratio, 0.0);
  ASSERT_EQ(row.memory_limited.size(), 3u);
  EXPECT_EQ(row.memory_limited[2], 10);

  const auto table = table4_scaling({row}, batch.labels);
  const std::string text = table.to_string();
  EXPECT_NE(text.find('-'), std::string::npos);
  EXPECT_EQ(table.rows(), 1u);
}

// --------------------------------------------------------------------- env

TEST(Env, ParsesIntegers) {
  ::setenv("MGRTS_TEST_INT", "123", 1);
  EXPECT_EQ(env_int64("MGRTS_TEST_INT", 7), 123);
  ::unsetenv("MGRTS_TEST_INT");
  EXPECT_EQ(env_int64("MGRTS_TEST_INT", 7), 7);
  ::setenv("MGRTS_TEST_INT", "garbage", 1);
  EXPECT_EQ(env_int64("MGRTS_TEST_INT", 7), 7);
  ::unsetenv("MGRTS_TEST_INT");
}

TEST(Env, FlagSemantics) {
  ::unsetenv("MGRTS_TEST_FLAG");
  EXPECT_FALSE(env_flag("MGRTS_TEST_FLAG"));
  ::setenv("MGRTS_TEST_FLAG", "1", 1);
  EXPECT_TRUE(env_flag("MGRTS_TEST_FLAG"));
  ::setenv("MGRTS_TEST_FLAG", "0", 1);
  EXPECT_FALSE(env_flag("MGRTS_TEST_FLAG"));
  ::unsetenv("MGRTS_TEST_FLAG");
}

TEST(Env, BenchEnvDefaultsAndFullMode) {
  ::unsetenv("MGRTS_FULL");
  ::unsetenv("MGRTS_INSTANCES");
  ::unsetenv("MGRTS_TIME_LIMIT_MS");
  const BenchEnv scaled = bench_env(60, 500);
  EXPECT_EQ(scaled.instances, 60);
  EXPECT_EQ(scaled.time_limit_ms, 500);
  EXPECT_FALSE(scaled.full);

  ::setenv("MGRTS_FULL", "1", 1);
  const BenchEnv full = bench_env(60, 500);
  EXPECT_EQ(full.instances, 500);
  EXPECT_EQ(full.time_limit_ms, 30'000);
  EXPECT_TRUE(full.full);
  ::unsetenv("MGRTS_FULL");

  ::setenv("MGRTS_INSTANCES", "9", 1);
  EXPECT_EQ(bench_env(60, 500).instances, 9);
  ::unsetenv("MGRTS_INSTANCES");
}

}  // namespace
}  // namespace mgrts::exp
