// Lifetime contracts the serving daemon leans on, pinned directly:
//
//   * Deadline::poll ticks the attached heartbeat exactly once per call and
//     the counter is monotone — the server's watchdog decides "wedged" from
//     "beat > 0 and unchanged", so a poll that skipped or double-ticked the
//     counter would mis-cull live handlers (or never cull stuck ones);
//   * CancelToken chains stay safe across destruction — a linked child holds
//     its own copy of the parent's flag chain, so a request token outliving
//     the connection (or the server's stop token being rebound) never
//     dangles, and a child's cancel never leaks up to siblings.
//
// Both types are reused per request in src/serve; these are their direct
// lifetime tests (the solver suites only exercise them incidentally).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>

#include "support/deadline.hpp"

namespace mgrts::support {
namespace {

// ------------------------------------------------- heartbeat monotonicity

TEST(DeadlineHeartbeat, PollTicksExactlyOncePerCall) {
  auto beat = std::make_shared<std::atomic<std::uint64_t>>(0);
  Deadline deadline;  // unlimited: poll must still beat
  deadline.set_heartbeat(beat);

  for (std::uint64_t i = 1; i <= 100; ++i) {
    EXPECT_FALSE(deadline.poll());
    EXPECT_EQ(beat->load(), i);
  }
}

TEST(DeadlineHeartbeat, MonotoneAcrossExpiry) {
  // The watchdog must keep seeing progress ticks even after the deadline
  // expires: a handler draining toward its kTimeout verdict still polls,
  // and those polls must not read as a stall.
  auto beat = std::make_shared<std::atomic<std::uint64_t>>(0);
  Deadline deadline = Deadline::after_ms(0);  // expires immediately
  deadline.set_heartbeat(beat);

  std::uint64_t last = 0;
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(deadline.poll());  // expired, but still beating
    const std::uint64_t now = beat->load();
    EXPECT_EQ(now, last + 1);
    last = now;
  }
}

TEST(DeadlineHeartbeat, CancelledPollStillBeats) {
  auto beat = std::make_shared<std::atomic<std::uint64_t>>(0);
  const CancelToken token = CancelToken::make();
  Deadline deadline;
  deadline.set_heartbeat(beat);
  deadline.set_cancel(token);

  EXPECT_FALSE(deadline.poll());
  token.cancel();
  EXPECT_TRUE(deadline.poll());
  EXPECT_TRUE(deadline.poll());
  EXPECT_EQ(beat->load(), 3u);
}

TEST(DeadlineHeartbeat, DetachedDeadlineNeverTouchesOldCounter) {
  // Copy-assigning a fresh Deadline over a beating one must drop the old
  // heartbeat reference: the server reuses per-slot state across requests,
  // and a stale reference would let request N+1 tick request N's counter.
  auto beat = std::make_shared<std::atomic<std::uint64_t>>(0);
  Deadline deadline;
  deadline.set_heartbeat(beat);
  EXPECT_FALSE(deadline.poll());
  EXPECT_EQ(beat->load(), 1u);

  deadline = Deadline();  // rebind the slot
  EXPECT_FALSE(deadline.poll());
  EXPECT_EQ(beat->load(), 1u);  // untouched
  EXPECT_EQ(beat.use_count(), 1);  // the old reference is really gone
}

TEST(DeadlineHeartbeat, CounterOutlivesDeadline) {
  // The watchdog reads the counter after the handler's Deadline is long
  // destroyed; shared ownership keeps the read valid.
  auto beat = std::make_shared<std::atomic<std::uint64_t>>(0);
  {
    Deadline deadline = Deadline::after_ms(60'000);
    deadline.set_heartbeat(beat);
    for (int i = 0; i < 5; ++i) (void)deadline.poll();
  }
  EXPECT_EQ(beat->load(), 5u);
  EXPECT_EQ(beat.use_count(), 1);
}

// --------------------------------------------- cancel-token chain lifetime

TEST(CancelTokenChain, ChildObservesParentAfterParentDestroyed) {
  // The daemon links every request token to the server's stop token.  The
  // link must not dangle when the original parent object goes away: the
  // child keeps the parent's flag chain alive by value.
  CancelToken child;
  {
    CancelToken parent = CancelToken::make();
    child = CancelToken::linked(parent);
    parent.cancel();
  }  // parent destroyed; its flag survives inside the child's chain
  EXPECT_TRUE(child.cancelled());
}

TEST(CancelTokenChain, DestroyedChildUnlinksFromParent) {
  // Destroying the child must fully release the parent's flag: the slot
  // table drops request tokens on unregister, and a leaked reference would
  // pin per-request state for the life of the server.
  CancelToken parent = CancelToken::make();
  auto probe = std::make_optional(CancelToken::linked(parent));
  EXPECT_FALSE(probe->cancelled());
  probe.reset();

  // The parent is unaffected and still usable after the child is gone.
  EXPECT_FALSE(parent.cancelled());
  parent.cancel();
  EXPECT_TRUE(parent.cancelled());
}

TEST(CancelTokenChain, ChildCancelNeverLeaksUp) {
  const CancelToken parent = CancelToken::make();
  const CancelToken sibling = CancelToken::linked(parent);
  {
    const CancelToken child = CancelToken::linked(parent);
    child.cancel();
    EXPECT_TRUE(child.cancelled());
    EXPECT_FALSE(parent.cancelled());
    EXPECT_FALSE(sibling.cancelled());
  }  // cancelled child destroyed
  EXPECT_FALSE(parent.cancelled());
  EXPECT_FALSE(sibling.cancelled());
}

TEST(CancelTokenChain, GrandparentCancelReachesGrandchildAcrossScopes) {
  // caller -> race -> lane, with the middle link destroyed: the grandchild
  // must still observe the grandparent (the chain is held by value at every
  // hop, not by reference into destroyed frames).
  const CancelToken grandparent = CancelToken::make();
  CancelToken grandchild;
  {
    const CancelToken parent = CancelToken::linked(grandparent);
    grandchild = CancelToken::linked(parent);
  }  // middle of the chain destroyed
  EXPECT_FALSE(grandchild.cancelled());
  grandparent.cancel();
  EXPECT_TRUE(grandchild.cancelled());
}

TEST(CancelTokenChain, CopiesShareTheFlagMovesTransferIt) {
  CancelToken original = CancelToken::make();
  const CancelToken copy = original;
  const CancelToken moved = std::move(original);
  copy.cancel();
  EXPECT_TRUE(moved.cancelled());
  // NOLINTNEXTLINE(bugprone-use-after-move): moved-from tokens are empty.
  EXPECT_FALSE(original.engaged());
}

TEST(CancelTokenChain, EmptyParentMakesUnlinkedChild) {
  // linked() on a default token must not fabricate a chain: the server
  // with no stop token hands out plain per-request tokens.
  const CancelToken empty;
  const CancelToken child = CancelToken::linked(empty);
  EXPECT_TRUE(child.engaged());
  EXPECT_FALSE(child.cancelled());
}

TEST(CancelTokenChain, StickyAcrossLinkedDeadlines) {
  // The per-request wiring exactly as server.cpp builds it: a deadline with
  // a linked token and a heartbeat.  Watchdog culls by cancelling the
  // request token; the poll must report expiry and keep reporting it.
  const CancelToken stop = CancelToken::make();
  const CancelToken request = CancelToken::linked(stop);
  auto beat = std::make_shared<std::atomic<std::uint64_t>>(0);

  Deadline deadline = Deadline::after_ms(60'000);
  deadline.set_cancel(request);
  deadline.set_heartbeat(beat);

  EXPECT_FALSE(deadline.poll());
  request.cancel();  // the watchdog's cull
  EXPECT_TRUE(deadline.poll());
  EXPECT_TRUE(deadline.cancel_requested());
  EXPECT_TRUE(deadline.poll());  // sticky
  EXPECT_EQ(beat->load(), 3u);
  EXPECT_FALSE(stop.cancelled());  // cull never propagates to the server
}

}  // namespace
}  // namespace mgrts::support
