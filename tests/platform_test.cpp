#include "rt/platform.hpp"

#include <gtest/gtest.h>

#include "rt/task_set.hpp"
#include "support/error.hpp"
#include "testing.hpp"

namespace mgrts::rt {
namespace {

using mgrts::testing::example1;

TEST(Platform, IdenticalBasics) {
  const Platform p = Platform::identical(3);
  EXPECT_EQ(p.processors(), 3);
  EXPECT_TRUE(p.is_identical());
  EXPECT_EQ(p.rate(0, 0), 1);
  EXPECT_EQ(p.rate(17, 2), 1);  // any task id works on identical platforms
  EXPECT_TRUE(p.can_run(5, 1));
}

TEST(Platform, RejectsNonPositiveProcessorCount) {
  EXPECT_THROW(Platform::identical(0), ValidationError);
  EXPECT_THROW(Platform::identical(-2), ValidationError);
}

TEST(Platform, UniformSpeeds) {
  const Platform p = Platform::uniform({2, 1, 3});
  EXPECT_EQ(p.processors(), 3);
  EXPECT_FALSE(p.is_identical());
  EXPECT_EQ(p.rate(0, 0), 2);
  EXPECT_EQ(p.rate(9, 2), 3);
}

TEST(Platform, UniformAllOnesCollapsesToIdentical) {
  const Platform p = Platform::uniform({1, 1});
  EXPECT_TRUE(p.is_identical());
}

TEST(Platform, UniformRejectsNegativeSpeed) {
  EXPECT_THROW(Platform::uniform({1, -1}), ValidationError);
}

TEST(Platform, HeterogeneousMatrix) {
  const Platform p = Platform::heterogeneous({{1, 0}, {2, 1}, {0, 3}});
  EXPECT_EQ(p.processors(), 2);
  EXPECT_FALSE(p.is_identical());
  EXPECT_EQ(p.rate_rows(), 3);
  EXPECT_EQ(p.rate(0, 1), 0);
  EXPECT_FALSE(p.can_run(0, 1));  // dedicated processor semantics (s=0)
  EXPECT_TRUE(p.can_run(2, 1));
}

TEST(Platform, HeterogeneousRejectsRaggedMatrix) {
  EXPECT_THROW(Platform::heterogeneous({{1, 2}, {1}}), ValidationError);
}

TEST(Platform, HeterogeneousRejectsEmpty) {
  EXPECT_THROW(Platform::heterogeneous({}), ValidationError);
}

TEST(Platform, QualityFormula) {
  // §VI-A: Q(P_j) = sum_i s_{i,j} * C_i / T_i, on Example 1
  // (C/T = 1/2, 3/4, 2/3).
  const TaskSet ts = example1();
  const Platform p = Platform::heterogeneous({{1, 2}, {0, 1}, {2, 0}});
  EXPECT_NEAR(p.quality(0, ts), 0.5 + 0.0 + 2 * (2.0 / 3.0), 1e-12);
  EXPECT_NEAR(p.quality(1, ts), 2 * 0.5 + 0.75 + 0.0, 1e-12);
}

TEST(Platform, ProcessorsByQualityAscending) {
  const TaskSet ts = example1();
  // P1 serves everything at rate 1; P2 serves everything at rate 3.
  const Platform p = Platform::heterogeneous({{1, 3}, {1, 3}, {1, 3}});
  const auto order = p.processors_by_quality(ts);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 0);  // less capable first
  EXPECT_EQ(order[1], 1);
}

TEST(Platform, QualityTiesBrokenById) {
  const TaskSet ts = example1();
  const Platform p = Platform::identical(4);
  const auto order = p.processors_by_quality(ts);
  EXPECT_EQ(order, (std::vector<ProcId>{0, 1, 2, 3}));
}

TEST(Platform, IdenticalGroupsSingleGroup) {
  const Platform p = Platform::identical(5);
  const auto groups = p.identical_groups(3);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0], (std::vector<ProcId>{0, 1, 2, 3, 4}));
}

TEST(Platform, IdenticalGroupsByColumn) {
  // Columns: P0 = (1,2), P1 = (1,2), P2 = (2,2) -> groups {P0,P1}, {P2}.
  const Platform p = Platform::heterogeneous({{1, 1, 2}, {2, 2, 2}});
  const auto groups = p.identical_groups(2);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], (std::vector<ProcId>{0, 1}));
  EXPECT_EQ(groups[1], (std::vector<ProcId>{2}));
  const auto ids = p.group_of(2);
  EXPECT_EQ(ids[0], ids[1]);
  EXPECT_NE(ids[0], ids[2]);
}

TEST(Platform, DescribeMentionsKind) {
  EXPECT_NE(Platform::identical(2).describe().find("identical"),
            std::string::npos);
  EXPECT_NE(Platform::uniform({1, 2}).describe().find("uniform"),
            std::string::npos);
  EXPECT_NE(Platform::heterogeneous({{1, 2}}).describe().find("heterogeneous"),
            std::string::npos);
}

}  // namespace
}  // namespace mgrts::rt
