// True 1-UIP clause learning (DESIGN.md §11): a hand-built implication
// chain whose exact 1-UIP clause is pinned against the decision-set
// baseline, generalized (bound-literal) watch/replay semantics, on-the-fly
// subsumption, replay-hit LBD refresh, and the randomized 1-UIP vs
// decision-set differential — solver-level and on the pipeline residue.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/solve.hpp"
#include "csp/nogoods.hpp"
#include "csp/propagators.hpp"
#include "csp/solver.hpp"
#include "exp/harness.hpp"
#include "support/rng.hpp"

namespace mgrts::csp {
namespace {

// ------------------------------------------------ 1-UIP implication chain

// Two decisions u=0, x=0 jointly imply y=1 through CountEq({u,x,y}, 0, 2)
// (exactly two zeros); y=1 then collapses the {y,c,d} pigeonhole over
// {1,2}.  The conflict's frontier is the single implied literal y=1: the
// 1-UIP clause is the unit (y >= 1) — emitted in bound form because the
// pruned value is y's root min — while the decision-set walk must expand
// y's reason and keep both decisions {u=0, x=0}.
SolveStats uip_chain_run(NogoodLearn learn) {
  Solver solver;
  const VarId u = solver.add_variable(0, 1);
  const VarId x = solver.add_variable(0, 1);
  const VarId y = solver.add_variable(0, 1);
  const VarId c = solver.add_variable(1, 2);
  const VarId d = solver.add_variable(1, 2);
  solver.add(make_count_eq({u, x, y}, /*value=*/0, /*target=*/2));
  solver.add(make_all_different_except({y, c, d}, /*except=*/-9));
  SearchOptions options;
  options.var_heuristic = VarHeuristic::kLex;
  options.val_heuristic = ValHeuristic::kMin;
  options.nogoods = true;
  options.nogood_learn = learn;
  const SolveOutcome outcome = solver.solve(options);
  EXPECT_EQ(outcome.status, SolveStatus::kSat);
  return outcome.stats;
}

TEST(Uip, FirstUipIsTheImpliedLiteralNotTheDecisions) {
  const SolveStats uip = uip_chain_run(NogoodLearn::kUip1);
  EXPECT_EQ(uip.failures, 1);
  EXPECT_EQ(uip.nogoods_recorded, 1);
  EXPECT_EQ(uip.nogood_lits_before, 2);  // raw decision set: {u=0, x=0}
  EXPECT_EQ(uip.nogood_lits_after, 1);   // the 1-UIP unit: (y >= 1)
  EXPECT_EQ(uip.nogood_lits_uip, 1);
  EXPECT_EQ(uip.nogood_lits_ds, 2);  // the same conflict's decision set

  const SolveStats ds = uip_chain_run(NogoodLearn::kDecisionSet);
  EXPECT_EQ(ds.nogoods_recorded, 1);
  EXPECT_EQ(ds.nogood_lits_after, 2);  // decision-set keeps both decisions
  EXPECT_EQ(ds.nogood_lits_uip, 0);    // differential counters stay off
  EXPECT_EQ(ds.nogood_lits_ds, 0);
}

// ------------------------------------------- bound watches fire on prunes

TEST(Uip, BoundWatchFiresOnBoundMovementNotOnlyOnFix) {
  // SymmetryChain(x < b) with x decided to 3 prunes b's low values without
  // ever fixing b; the imported nogood {b >= 3, c == 1} must wake on that
  // bound movement and assert c != 1 before c is ever decided.
  Solver solver;
  const VarId x = solver.add_variable(2, 3);
  const VarId b = solver.add_variable(0, 4);
  const VarId c = solver.add_variable(0, 1);
  solver.add(make_symmetry_chain({x, b}, /*idle=*/-1));

  NogoodPool pool;
  const std::vector<Lit> clause{Lit::ge(b, 3), Lit::eq(c, 1)};
  pool.publish(/*lane=*/0, clause.data(), 2, /*lbd=*/1);

  auto store = std::make_unique<NogoodStore>(3, /*max_length=*/24,
                                             /*max_lbd=*/8, /*db_limit=*/100,
                                             /*general=*/true);
  SolveStats replay;
  store->bind_stats(&replay);
  ASSERT_TRUE(store->restart_maintenance(solver, &pool, /*lane=*/1, replay));
  EXPECT_EQ(replay.nogoods_imported, 1);
  solver.add(std::move(store));

  SearchOptions options;
  options.var_heuristic = VarHeuristic::kLex;
  options.val_heuristic = ValHeuristic::kMax;  // x=3 first, c would be 1
  const SolveOutcome outcome = solver.solve(options);
  ASSERT_EQ(outcome.status, SolveStatus::kSat);
  EXPECT_EQ(outcome.assignment[static_cast<std::size_t>(x)], 3);
  EXPECT_EQ(outcome.assignment[static_cast<std::size_t>(b)], 4);
  // Without the replay, kMax would have picked c = 1.
  EXPECT_EQ(outcome.assignment[static_cast<std::size_t>(c)], 0);
  EXPECT_EQ(replay.nogood_props, 1);
}

// --------------------------------------------------- on-the-fly subsumption

TEST(Uip, FreshRecordingSubsumesThePreviousOne) {
  NogoodStore store(10, /*max_length=*/24, /*max_lbd=*/8, /*db_limit=*/100,
                    /*general=*/true);
  SolveStats stats;
  const std::vector<Lit> longer{Lit::eq(0, 1), Lit::eq(1, 1), Lit::eq(2, 1)};
  const std::vector<Lit> shorter{Lit::eq(0, 1), Lit::eq(1, 1)};
  store.record(longer, 3, 1, stats);
  EXPECT_EQ(store.clause_count(), 1);
  store.record(shorter, 2, 1, stats);
  // The shorter clause forbids strictly more states: the longer one dies.
  EXPECT_EQ(stats.nogoods_subsumed, 1);
  EXPECT_EQ(store.clause_count(), 1);
  EXPECT_EQ(stats.nogoods_recorded, 2);
}

TEST(Uip, PreviousRecordingAbsorbsARedundantFreshClause) {
  NogoodStore store(10, 24, 8, 100, /*general=*/true);
  SolveStats stats;
  const std::vector<Lit> shorter{Lit::eq(0, 1), Lit::eq(1, 1)};
  const std::vector<Lit> longer{Lit::eq(0, 1), Lit::eq(1, 1), Lit::eq(2, 1)};
  store.record(shorter, 2, 1, stats);
  store.record(longer, 3, 1, stats);
  EXPECT_EQ(stats.nogoods_subsumed, 1);
  EXPECT_EQ(store.clause_count(), 1);
  EXPECT_EQ(stats.nogoods_recorded, 1) << "the absorbed clause must not "
                                          "count as a recording";
}

TEST(Uip, BoundLiteralsSubsumeByImplication) {
  NogoodStore store(10, 24, 8, 100, /*general=*/true);
  SolveStats stats;
  // {x>=2, y==1} is a special case of {x>=1, y==1}: the second recording
  // (weaker literals, more general nogood) replaces the first.
  const std::vector<Lit> tight{Lit::ge(0, 2), Lit::eq(1, 1)};
  const std::vector<Lit> loose{Lit::ge(0, 1), Lit::eq(1, 1)};
  store.record(tight, 2, 1, stats);
  store.record(loose, 2, 1, stats);
  EXPECT_EQ(stats.nogoods_subsumed, 1);
  EXPECT_EQ(store.clause_count(), 1);
}

// ---------------------------------------------------- replay-hit LBD refresh

TEST(Uip, ReplayHitRefreshesBlockLbdFromCurrentDepths) {
  // An imported clause arrives with a pessimistic LBD (6); its first replay
  // fires with both entailed literals glued at consecutive depths 1,2, so
  // the refresh must drop the clause's LBD into the protected core.
  Solver solver;
  const VarId a = solver.add_variable(0, 1);
  const VarId b = solver.add_variable(0, 1);
  const VarId c = solver.add_variable(0, 1);
  static_cast<void>(solver.add_variable(0, 1));  // d: keeps the search going

  NogoodPool pool;
  const std::vector<Lit> clause{Lit::eq(a, 1), Lit::eq(b, 1), Lit::eq(c, 1)};
  pool.publish(/*lane=*/0, clause.data(), 3, /*lbd=*/6);

  auto store = std::make_unique<NogoodStore>(4, 24, 8, 100, /*general=*/true);
  SolveStats replay;
  store->bind_stats(&replay);
  ASSERT_TRUE(store->restart_maintenance(solver, &pool, /*lane=*/1, replay));
  solver.add(std::move(store));

  SearchOptions options;
  options.var_heuristic = VarHeuristic::kLex;
  options.val_heuristic = ValHeuristic::kMax;  // a=1, b=1 → unit on c
  // The refresh reads entailment depths off the per-variable trail chain,
  // which is threaded only while the reason trail is built.
  options.force_reason_trail = true;
  const SolveOutcome outcome = solver.solve(options);
  ASSERT_EQ(outcome.status, SolveStatus::kSat);
  EXPECT_EQ(outcome.assignment[static_cast<std::size_t>(c)], 0);
  EXPECT_EQ(replay.nogood_props, 1);
  EXPECT_EQ(replay.nogood_lbd_refreshed, 1);
}

// force_reason_trail can switch the reason trail on while nogood_shrink is
// off; 1-UIP must not run there (its scratch arrays are only sized for
// real kUip1 learning) and recording falls back to the decision set.
TEST(Uip, ForcedReasonTrailWithShrinkOffStaysOnTheDecisionSet) {
  Solver solver;
  std::vector<VarId> vars;
  for (int k = 0; k < 6; ++k) vars.push_back(solver.add_variable(0, 4));
  solver.add(make_all_different_except(vars, /*except=*/-9));  // pigeonhole
  SearchOptions options;
  options.nogoods = true;
  options.nogood_shrink = false;
  options.force_reason_trail = true;
  options.restart = RestartPolicy::kLuby;
  options.restart_scale = 2;
  const SolveOutcome outcome = solver.solve(options);
  EXPECT_EQ(outcome.status, SolveStatus::kUnsat);
  EXPECT_EQ(outcome.stats.nogood_lits_uip, 0);
  EXPECT_EQ(outcome.stats.nogood_lits_ds, 0);
  EXPECT_GT(outcome.stats.nogoods_recorded, 0);
}

// Root units are asserted, never watched, so even a fix-only
// (decision-set) store must adopt a bound unit from the pool — while a
// length-2 bound clause stays rejected there (its watches would be deaf).
TEST(Uip, FixOnlyStoreImportsBoundRootUnitsButNotBoundClauses) {
  NogoodPool pool;
  const std::vector<Lit> unit{Lit::ge(3, 1)};
  pool.publish(/*lane=*/0, unit.data(), 1, /*lbd=*/1);
  const std::vector<Lit> clause{Lit::ge(3, 1), Lit::eq(0, 1)};
  pool.publish(/*lane=*/0, clause.data(), 2, /*lbd=*/1);

  Solver solver;
  std::vector<VarId> hole;
  for (int k = 0; k < 3; ++k) hole.push_back(solver.add_variable(0, 1));
  static_cast<void>(solver.add_variable(0, 5));  // var 3: the unit's target
  solver.add(make_all_different_except(hole, /*except=*/-9));  // pigeonhole
  SearchOptions options;
  options.var_heuristic = VarHeuristic::kLex;
  options.nogoods = true;
  options.nogood_learn = NogoodLearn::kDecisionSet;  // fix-only store
  options.restart = RestartPolicy::kLuby;
  options.restart_scale = 1;  // first failure restarts -> pool exchange
  options.nogood_pool = &pool;
  options.nogood_lane = 1;
  const SolveOutcome outcome = solver.solve(options);
  EXPECT_EQ(outcome.status, SolveStatus::kUnsat);
  EXPECT_EQ(outcome.stats.nogoods_imported, 1);
}

// ------------------------------------- non-chronological backjumping (§15)

// The uip_chain model behind a decoy decision: lex search decides a=0,
// u=0, x=0; propagation implies y=1 and collapses the {y,c,d} pigeonhole
// at depth 3.  The 1-UIP clause is the unit (y >= 1), so its assertion
// level is the root: one backjump must discard BOTH standing decision
// levels above it ((3-1) - 0 = 2 levels saved, where chronological retry
// would have unwound one) and assert y = 0 there, which the final
// solution then carries.
TEST(Backjump, UnitClauseJumpsToTheRootAndAssertsTheNegatedUip) {
  auto run = [](bool backjump) {
    Solver solver;
    static_cast<void>(solver.add_variable(0, 1));  // a: the decoy decision
    const VarId u = solver.add_variable(0, 1);
    const VarId x = solver.add_variable(0, 1);
    const VarId y = solver.add_variable(0, 1);
    const VarId c = solver.add_variable(1, 2);
    const VarId d = solver.add_variable(1, 2);
    solver.add(make_count_eq({u, x, y}, /*value=*/0, /*target=*/2));
    solver.add(make_all_different_except({y, c, d}, /*except=*/-9));
    SearchOptions options;
    options.var_heuristic = VarHeuristic::kLex;
    options.val_heuristic = ValHeuristic::kMin;
    options.nogoods = true;
    options.backjump = backjump;
    const SolveOutcome outcome = solver.solve(options);
    EXPECT_EQ(outcome.status, SolveStatus::kSat);
    return outcome;
  };

  const SolveOutcome jumped = run(true);
  EXPECT_EQ(jumped.stats.backjumps, 1);
  EXPECT_EQ(jumped.stats.backjump_levels_saved, 2);
  // The asserted literal ¬(y >= 1) pruned y to 0 at the root, so the
  // solution must carry it (and CountEq then forbids a second zero).
  EXPECT_EQ(jumped.assignment[3], 0);  // y
  EXPECT_NE(jumped.assignment[1], jumped.assignment[2]);  // u != x

  const SolveOutcome chrono = run(false);
  EXPECT_EQ(chrono.stats.backjumps, 0);
  EXPECT_EQ(chrono.stats.backjump_levels_saved, 0);
  EXPECT_EQ(chrono.status, jumped.status);
}

// ------------------------------------------------- randomized differential

/// Random pigeonhole-flavored models: alldifferent blocks over shared
/// variables plus a counting rule — conflict-rich, restart-heavy, and
/// fully decidable at this size.
SolveOutcome random_model_run(std::uint64_t seed, NogoodLearn learn,
                              std::int32_t ds_sample = 16,
                              bool backjump = true,
                              PropagationMode mode =
                                  PropagationMode::kIncremental,
                              PropagationLevel alldiff =
                                  PropagationLevel::kForwardCheck) {
  support::Rng model_rng(seed);
  Solver solver;
  const int nv = 9;
  std::vector<VarId> vars;
  for (int k = 0; k < nv; ++k) {
    vars.push_back(solver.add_variable(0, 4 + static_cast<Value>(
                                                  model_rng.uniform(0, 2))));
  }
  for (int block = 0; block < 3; ++block) {
    std::vector<VarId> scope;
    for (const VarId v : vars) {
      if (model_rng.uniform(0, 2) != 0) scope.push_back(v);
    }
    if (scope.size() >= 2) {
      solver.add(make_all_different_except(scope, /*except=*/-9, alldiff));
    }
  }
  solver.add(make_count_eq(vars, /*value=*/0,
                           /*target=*/model_rng.uniform(0, 2)));
  SearchOptions options;
  options.val_heuristic = ValHeuristic::kRandom;
  options.random_var_ties = true;
  options.restart = RestartPolicy::kLuby;
  options.restart_scale = 3;
  options.nogoods = true;
  options.nogood_learn = learn;
  options.nogood_ds_sample = ds_sample;
  options.backjump = backjump;
  options.propagation = mode;
  options.seed = seed * 77 + 13;
  return solver.solve(options);
}

TEST(UipDifferential, VerdictEqualAndNeverLongerThanDecisionSet) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const SolveOutcome uip = random_model_run(seed, NogoodLearn::kUip1);
    const SolveOutcome ds = random_model_run(seed, NogoodLearn::kDecisionSet);
    // Both searches are complete, so learning must not change the verdict.
    EXPECT_EQ(uip.status, ds.status) << "seed " << seed;
    // Per conflict the 1-UIP clause is never longer than the decision-set
    // clause (an in-solver assert pins it conflict-by-conflict; the
    // aggregate keeps the property visible here).
    EXPECT_LE(uip.stats.nogood_lits_uip, uip.stats.nogood_lits_ds)
        << "seed " << seed;
    if (uip.stats.nogood_lits_ds > 0) {
      EXPECT_GT(uip.stats.nogood_lits_uip, 0) << "seed " << seed;
    }
  }
}

// Sampling the decision-set reference (nogood_ds_sample) must be a pure
// observer: both walks open their own stamp epochs and a failed 1-UIP walk
// lazily falls back to the decision set either way, so the search tree and
// the recorded clauses are bit-identical for every period — only the
// differential counters thin out.
TEST(UipDifferential, DsSamplingIsAPureObserver) {
  for (const std::uint64_t seed : {2u, 5u, 9u}) {
    const SolveOutcome always = random_model_run(seed, NogoodLearn::kUip1, 1);
    const SolveOutcome sampled = random_model_run(seed, NogoodLearn::kUip1, 5);
    const SolveOutcome never = random_model_run(seed, NogoodLearn::kUip1, 0);

    for (const SolveOutcome* other : {&sampled, &never}) {
      EXPECT_EQ(always.status, other->status) << "seed " << seed;
      EXPECT_EQ(always.stats.nodes, other->stats.nodes) << "seed " << seed;
      EXPECT_EQ(always.stats.failures, other->stats.failures)
          << "seed " << seed;
      EXPECT_EQ(always.stats.nogoods_recorded, other->stats.nogoods_recorded)
          << "seed " << seed;
      EXPECT_EQ(always.stats.nogood_lits_after, other->stats.nogood_lits_after)
          << "seed " << seed;
    }
    // The differential counters are the only thing sampling changes.
    EXPECT_LE(sampled.stats.nogood_lits_ds, always.stats.nogood_lits_ds)
        << "seed " << seed;
    EXPECT_LE(sampled.stats.nogood_lits_uip, always.stats.nogood_lits_uip)
        << "seed " << seed;
    EXPECT_EQ(never.stats.nogood_lits_ds, 0) << "seed " << seed;
    EXPECT_EQ(never.stats.nogood_lits_uip, 0) << "seed " << seed;
  }
}

// The same differential where the ledger measures it: the pipeline residue
// (instances the csp2 presolve probe leaves undecided).  Node budgets keep
// both lanes deterministic; instances both lanes decide must agree.
TEST(UipDifferential, ResidueLanesAreVerdictEqual) {
  exp::BatchOptions options;
  options.generator.tasks = 10;
  options.generator.processors = 5;
  options.generator.t_max = 7;
  options.instances = 24;
  options.seed = 20090911;
  options.workers = 1;
  const exp::ResidueSpec residue = exp::residue_spec(
      options, exp::presolve_probe_spec(/*limit_ms=*/200,
                                        /*flow_oracle=*/false,
                                        /*presolve_max_nodes=*/300));
  ASSERT_GT(residue.probed, 0);
  if (residue.indices().empty()) {
    GTEST_SKIP() << "presolve absorbed the whole stream at this seed";
  }

  auto lane = [&](const char* label, NogoodLearn learn) {
    exp::SolverSpec spec;
    spec.label = label;
    spec.config.method = core::Method::kCsp2Generic;
    spec.config.max_nodes = 3000;
    spec.config.pipeline = core::PipelineOptions::none();
    spec.config.generic = core::choco_like_defaults(/*seed=*/7);
    spec.config.generic.nogoods = true;
    spec.config.generic.nogood_learn = learn;
    return spec;
  };
  const exp::BatchResult batch = exp::run_batch(
      residue.batch, {lane("uip", NogoodLearn::kUip1),
                      lane("dset", NogoodLearn::kDecisionSet)});

  std::int64_t lits_uip = 0;
  std::int64_t lits_ds = 0;
  for (const auto& inst : batch.instances) {
    const exp::RunRecord& uip = inst.runs[0];
    const exp::RunRecord& ds = inst.runs[1];
    if (!uip.overrun() && !ds.overrun()) {
      EXPECT_EQ(uip.verdict, ds.verdict) << "instance " << inst.index;
    }
    lits_uip += uip.nogoods.lits_uip;
    lits_ds += uip.nogoods.lits_ds;
  }
  EXPECT_LE(lits_uip, lits_ds);
  EXPECT_GT(lits_ds, 0) << "the residue race must actually analyze "
                           "conflicts";
}

// Backjumping re-routes the search tree, so node counts are not expected
// to match the chronological run seed-by-seed — but both searches stay
// complete (verdict-equal), every jump must actually skip levels, and over
// the family the asserting-clause-driven search must not cost more nodes
// than pure chronological retry.
TEST(BackjumpDifferential, VerdictEqualAndNoCostlierOverTheFamily) {
  std::int64_t nodes_jumped = 0;
  std::int64_t nodes_chrono = 0;
  std::int64_t backjumps = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const SolveOutcome jumped =
        random_model_run(seed, NogoodLearn::kUip1, 16, /*backjump=*/true);
    const SolveOutcome chrono =
        random_model_run(seed, NogoodLearn::kUip1, 16, /*backjump=*/false);
    EXPECT_EQ(jumped.status, chrono.status) << "seed " << seed;
    EXPECT_EQ(chrono.stats.backjumps, 0) << "seed " << seed;
    // A jump to level (conflict_depth - 1) lands on the chronological
    // retry's trail prefix (asserting instead of re-deciding) and saves 0
    // levels, so levels_saved only bounds the multi-level jumps.
    EXPECT_GE(jumped.stats.backjump_levels_saved, 0) << "seed " << seed;
    nodes_jumped += jumped.stats.nodes;
    nodes_chrono += chrono.stats.nodes;
    backjumps += jumped.stats.backjumps;
  }
  EXPECT_GT(backjumps, 0) << "the family must actually exercise the jump";
  EXPECT_LE(nodes_jumped, nodes_chrono);
}

/// A denser sibling of random_model_run: wider domains and overlapping
/// blocks so matching GAC can neither refute at the root nor settle
/// without thousands of backjump unwinds (the smaller family it would
/// refute without ever searching).
SolveOutcome random_dense_model_run(std::uint64_t seed, PropagationMode mode,
                                    PropagationLevel alldiff) {
  support::Rng model_rng(seed);
  Solver solver;
  const int nv = 12;
  std::vector<VarId> vars;
  for (int k = 0; k < nv; ++k) {
    vars.push_back(solver.add_variable(0, 6 + static_cast<Value>(
                                                  model_rng.uniform(0, 2))));
  }
  for (int block = 0; block < 4; ++block) {
    std::vector<VarId> scope;
    for (const VarId v : vars) {
      if (model_rng.uniform(0, 3) != 0) scope.push_back(v);
    }
    if (scope.size() >= 2) {
      solver.add(make_all_different_except(scope, /*except=*/-9, alldiff));
    }
  }
  solver.add(make_count_eq(vars, /*value=*/0,
                           /*target=*/1 + model_rng.uniform(0, 2)));
  solver.add(make_count_eq(vars, /*value=*/1,
                           /*target=*/1 + model_rng.uniform(0, 2)));
  SearchOptions options;
  options.val_heuristic = ValHeuristic::kRandom;
  options.random_var_ties = true;
  options.restart = RestartPolicy::kLuby;
  options.restart_scale = 3;
  options.nogoods = true;
  options.nogood_learn = NogoodLearn::kUip1;
  options.propagation = mode;
  options.seed = seed * 77 + 13;
  return solver.solve(options);
}

// Multi-level unwinds stress the propagator restore disciplines
// (propagators.hpp: trailed counter slots, stale-tolerant pending buffers,
// matching repair).  Scratch propagation recomputes every propagator from
// its full scope and is tree-identical to incremental by construction, so
// any trailed state left inconsistent by a jump shows up as a node or
// verdict divergence here — with forward-checking and with matching GAC,
// whose cached matching must survive jumps of arbitrary depth.
TEST(BackjumpDifferential, IncrementalMatchesScratchAcrossMultiLevelUnwinds) {
  for (const PropagationLevel alldiff :
       {PropagationLevel::kForwardCheck, PropagationLevel::kMatching}) {
    std::int64_t backjumps = 0;
    for (const std::uint64_t seed : {9u, 41u, 61u, 67u}) {
      const SolveOutcome fast = random_dense_model_run(
          seed, PropagationMode::kIncremental, alldiff);
      const SolveOutcome reference =
          random_dense_model_run(seed, PropagationMode::kScratch, alldiff);
      EXPECT_EQ(fast.status, reference.status) << "seed " << seed;
      EXPECT_EQ(fast.stats.nodes, reference.stats.nodes) << "seed " << seed;
      EXPECT_EQ(fast.stats.failures, reference.stats.failures)
          << "seed " << seed;
      EXPECT_EQ(fast.stats.backjumps, reference.stats.backjumps)
          << "seed " << seed;
      EXPECT_EQ(fast.stats.backjump_levels_saved,
                reference.stats.backjump_levels_saved)
          << "seed " << seed;
      EXPECT_GT(fast.stats.backjumps, 0) << "seed " << seed;
      backjumps += fast.stats.backjumps;
    }
    EXPECT_GT(backjumps, 1000) << "the family must jump in bulk";
  }
}

}  // namespace
}  // namespace mgrts::csp
