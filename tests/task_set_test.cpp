#include "rt/task_set.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"
#include "testing.hpp"

namespace mgrts::rt {
namespace {

using mgrts::testing::example1;

TEST(TaskSet, Example1Basics) {
  const TaskSet ts = example1();
  EXPECT_EQ(ts.size(), 3);
  EXPECT_EQ(ts.hyperperiod(), 12);  // lcm(2, 4, 3)
  // U = 1/2 + 3/4 + 2/3 = 23/12.
  EXPECT_EQ(ts.utilization().num(), 23);
  EXPECT_EQ(ts.utilization().den(), 12);
  EXPECT_NEAR(ts.utilization_ratio(2), 23.0 / 24.0, 1e-12);
  EXPECT_FALSE(ts.exceeds_capacity(2));
  EXPECT_TRUE(ts.exceeds_capacity(1));
  EXPECT_EQ(ts.min_processors_bound(), 2);
  EXPECT_EQ(ts.max_offset(), 1);
}

TEST(TaskSet, JobCounts) {
  const TaskSet ts = example1();
  EXPECT_EQ(ts.jobs_per_hyperperiod(0), 6);
  EXPECT_EQ(ts.jobs_per_hyperperiod(1), 3);
  EXPECT_EQ(ts.jobs_per_hyperperiod(2), 4);
  EXPECT_EQ(ts.total_jobs(), 13);
  EXPECT_EQ(ts.total_demand(), 6 * 1 + 3 * 3 + 4 * 2);
}

TEST(TaskSet, DefaultNames) {
  const TaskSet ts = example1();
  EXPECT_EQ(ts[0].name, "tau1");
  EXPECT_EQ(ts[2].name, "tau3");
}

TEST(TaskSet, HeuristicQuantities) {
  const TaskSet ts = example1();
  EXPECT_EQ(ts[1].t_minus_c(), 1);
  EXPECT_EQ(ts[1].d_minus_c(), 1);
  EXPECT_EQ(ts[0].t_minus_c(), 1);
  EXPECT_EQ(ts[2].d_minus_c(), 0);
}

// ---------------------------------------------------------- validation

TEST(TaskSetValidation, RejectsZeroPeriod) {
  EXPECT_THROW(TaskSet::from_params({{0, 1, 1, 0}}), ValidationError);
}

TEST(TaskSetValidation, RejectsZeroWcet) {
  EXPECT_THROW(TaskSet::from_params({{0, 0, 1, 2}}), ValidationError);
}

TEST(TaskSetValidation, AcceptsWcetAboveDeadline) {
  // C > D is valid input: heterogeneous rate-s processors complete s units
  // per slot (see §VI-A); on identical platforms the system is simply
  // infeasible (covered by solver tests).
  const TaskSet ts = TaskSet::from_params({{0, 3, 2, 5}});
  EXPECT_EQ(ts[0].d_minus_c(), -1);
}

TEST(TaskSetValidation, RejectsZeroDeadline) {
  EXPECT_THROW(TaskSet::from_params({{0, 1, 0, 5}}), ValidationError);
}

TEST(TaskSetValidation, RejectsDeadlineAbovePeriodWhenConstrained) {
  EXPECT_THROW(TaskSet::from_params({{0, 1, 5, 4}}), ValidationError);
}

TEST(TaskSetValidation, AcceptsDeadlineAbovePeriodWhenArbitrary) {
  const TaskSet ts =
      TaskSet::from_params({{0, 1, 5, 4}}, DeadlineModel::kArbitrary);
  EXPECT_EQ(ts.size(), 1);
  EXPECT_FALSE(ts.is_constrained());
}

TEST(TaskSetValidation, RejectsNegativeOffset) {
  EXPECT_THROW(TaskSet::from_params({{-1, 1, 2, 2}}), ValidationError);
}

TEST(TaskSetValidation, RejectsOffsetAtOrBeyondPeriod) {
  EXPECT_THROW(TaskSet::from_params({{2, 1, 2, 2}}), ValidationError);
  EXPECT_THROW(TaskSet::from_params({{5, 1, 2, 2}}), ValidationError);
}

TEST(TaskSetValidation, HyperperiodOverflowDetected) {
  // Large pairwise-coprime periods overflow lcm.
  std::vector<TaskParams> params;
  for (const Time p :
       {1000000007LL, 1000000009LL, 999999937LL, 999999893LL}) {
    params.push_back({0, 1, p, p});
  }
  EXPECT_THROW(TaskSet::from_params(params), OverflowError);
}

TEST(TaskSetValidation, ErrorMessagesIdentifyTask) {
  try {
    // Second task violates D <= T under the constrained model.
    TaskSet::from_params({{0, 1, 2, 2}, {0, 1, 9, 5}});
    FAIL() << "expected ValidationError";
  } catch (const ValidationError& e) {
    EXPECT_NE(std::string(e.what()).find("task #2"), std::string::npos);
  }
}

// --------------------------------------------------------------- clones

TEST(Clones, ConstrainedTasksPassThrough) {
  const TaskSet ts = example1();
  const CloneExpansion expansion = ts.expand_clones();
  ASSERT_EQ(expansion.tasks.size(), 3u);
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(expansion.tasks[c].params, ts[static_cast<TaskId>(c)].params);
    EXPECT_EQ(expansion.origin[c].original, static_cast<TaskId>(c));
    EXPECT_EQ(expansion.origin[c].clone, 0);
  }
}

TEST(Clones, PaperFormulaForArbitraryDeadline) {
  // D = 7, T = 3  =>  k = ceil(7/3) = 3 clones with period 9.
  const TaskSet ts =
      TaskSet::from_params({{1, 2, 7, 3}}, DeadlineModel::kArbitrary);
  const CloneExpansion expansion = ts.expand_clones();
  ASSERT_EQ(expansion.tasks.size(), 3u);
  for (std::int32_t c = 0; c < 3; ++c) {
    const auto& clone = expansion.tasks[static_cast<std::size_t>(c)];
    EXPECT_EQ(clone.params.offset, 1 + c * 3);  // O + (i'-1) T
    EXPECT_EQ(clone.params.wcet, 2);            // C unchanged
    EXPECT_EQ(clone.params.deadline, 7);        // D unchanged
    EXPECT_EQ(clone.params.period, 9);          // k * T
    EXPECT_EQ(expansion.origin[static_cast<std::size_t>(c)].clone, c);
  }
}

TEST(Clones, CloneNamesCarryIndices) {
  const TaskSet ts =
      TaskSet::from_params({{0, 1, 5, 2}}, DeadlineModel::kArbitrary);
  const CloneExpansion expansion = ts.expand_clones();
  ASSERT_EQ(expansion.tasks.size(), 3u);  // ceil(5/2) = 3
  EXPECT_EQ(expansion.tasks[0].name, "tau1.1");
  EXPECT_EQ(expansion.tasks[2].name, "tau1.3");
}

TEST(Clones, ToConstrainedIsValidConstrainedSystem) {
  const TaskSet ts = TaskSet::from_params(
      {{0, 1, 5, 2}, {1, 2, 3, 3}}, DeadlineModel::kArbitrary);
  const TaskSet constrained = ts.to_constrained();
  EXPECT_TRUE(constrained.is_constrained());
  // tau1: k=3 (period 6); tau2: k=1 (unchanged).
  EXPECT_EQ(constrained.size(), 4);
  // Every clone satisfies D <= T by construction.
  for (TaskId i = 0; i < constrained.size(); ++i) {
    EXPECT_LE(constrained[i].deadline(), constrained[i].period());
  }
}

TEST(Clones, ExactDeadlineMultipleOfPeriod) {
  // D = 2T: exactly 2 clones, no rounding artifacts.
  const TaskSet ts =
      TaskSet::from_params({{0, 1, 6, 3}}, DeadlineModel::kArbitrary);
  EXPECT_EQ(ts.expand_clones().tasks.size(), 2u);
}

TEST(Clones, UtilizationPreserved) {
  // Each original task contributes k_i clones with period k_i*T_i and the
  // same C: total utilization is unchanged.
  const TaskSet ts = TaskSet::from_params(
      {{0, 2, 9, 4}, {0, 1, 3, 3}}, DeadlineModel::kArbitrary);
  const TaskSet constrained = ts.to_constrained();
  EXPECT_EQ(ts.utilization(), constrained.utilization());
}

TEST(TaskSet, EmptySetHasUnitHyperperiod) {
  const TaskSet ts;
  EXPECT_TRUE(ts.empty());
  EXPECT_EQ(ts.hyperperiod(), 1);
}

}  // namespace
}  // namespace mgrts::rt
