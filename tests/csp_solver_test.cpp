#include "csp/solver.hpp"

#include <gtest/gtest.h>

#include "csp/propagators.hpp"
#include "support/error.hpp"

namespace mgrts::csp {
namespace {

// ---------------------------------------------------------------- Domain64

TEST(Domain64, ConstructionAndQueries) {
  const Domain64 d(-1, 5);
  EXPECT_EQ(d.size(), 7);
  EXPECT_TRUE(d.contains(-1));
  EXPECT_TRUE(d.contains(5));
  EXPECT_FALSE(d.contains(6));
  EXPECT_FALSE(d.contains(-2));
  EXPECT_EQ(d.min(), -1);
  EXPECT_EQ(d.max(), 5);
  EXPECT_FALSE(d.is_fixed());
}

TEST(Domain64, RemoveAndFix) {
  Domain64 d(0, 3);
  EXPECT_TRUE(d.remove(1));
  EXPECT_FALSE(d.remove(1));  // already gone
  EXPECT_EQ(d.size(), 3);
  EXPECT_TRUE(d.fix(2));
  EXPECT_TRUE(d.is_fixed());
  EXPECT_EQ(d.value(), 2);
  EXPECT_FALSE(d.fix(2));  // no change
}

TEST(Domain64, ForEachAscending) {
  Domain64 d(0, 5);
  d.remove(1);
  d.remove(4);
  std::vector<Value> seen;
  d.for_each([&](Value v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<Value>{0, 2, 3, 5}));
}

TEST(Domain64, FullWidthDomain) {
  const Domain64 d(0, 63);
  EXPECT_EQ(d.size(), 64);
  EXPECT_EQ(d.min(), 0);
  EXPECT_EQ(d.max(), 63);
}

TEST(Domain64, MinMaxAfterRemovals) {
  Domain64 d(10, 14);
  d.remove(10);
  d.remove(14);
  EXPECT_EQ(d.min(), 11);
  EXPECT_EQ(d.max(), 13);
}

// ----------------------------------------------------------------- Solver

TEST(Solver, TrivialAllFree) {
  Solver solver;
  static_cast<void>(solver.add_variable(0, 2));
  static_cast<void>(solver.add_variable(0, 2));
  const auto outcome = solver.solve({});
  EXPECT_EQ(outcome.status, SolveStatus::kSat);
  EXPECT_EQ(outcome.assignment.size(), 2u);
}

TEST(Solver, RespectsPostFixAndRemove) {
  Solver solver;
  const VarId x = solver.add_variable(0, 3);
  const VarId y = solver.add_variable(0, 3);
  EXPECT_TRUE(solver.post_fix(x, 2));
  EXPECT_TRUE(solver.post_remove(y, 0));
  SearchOptions options;
  options.val_heuristic = ValHeuristic::kMin;
  const auto outcome = solver.solve(options);
  ASSERT_EQ(outcome.status, SolveStatus::kSat);
  EXPECT_EQ(outcome.assignment[static_cast<std::size_t>(x)], 2);
  EXPECT_EQ(outcome.assignment[static_cast<std::size_t>(y)], 1);  // min left
}

TEST(Solver, PostFixOutsideDomainFails) {
  Solver solver;
  const VarId x = solver.add_variable(0, 3);
  EXPECT_FALSE(solver.post_fix(x, 7));
}

TEST(Solver, PigeonholeUnsat) {
  // 3 pigeons, 2 holes, all-different via pairwise count constraints:
  // use AllDifferentExcept with an `except` value outside the domains.
  Solver solver;
  std::vector<VarId> pigeons;
  for (int k = 0; k < 3; ++k) pigeons.push_back(solver.add_variable(0, 1));
  solver.add(make_all_different_except(pigeons, /*except=*/-7));
  const auto outcome = solver.solve({});
  EXPECT_EQ(outcome.status, SolveStatus::kUnsat);
}

TEST(Solver, SumEqForcesAssignment) {
  Solver solver;
  std::vector<VarId> vars;
  for (int k = 0; k < 4; ++k) vars.push_back(solver.add_variable(0, 1));
  solver.add(make_sum_eq(vars, 4));  // every boolean must be 1
  const auto outcome = solver.solve({});
  ASSERT_EQ(outcome.status, SolveStatus::kSat);
  for (const Value v : outcome.assignment) EXPECT_EQ(v, 1);
}

TEST(Solver, SumEqInfeasibleTarget) {
  Solver solver;
  std::vector<VarId> vars;
  for (int k = 0; k < 3; ++k) vars.push_back(solver.add_variable(0, 1));
  solver.add(make_sum_eq(vars, 5));
  EXPECT_EQ(solver.solve({}).status, SolveStatus::kUnsat);
}

TEST(Solver, NodeLimitReported) {
  Solver solver;
  std::vector<VarId> vars;
  for (int k = 0; k < 20; ++k) vars.push_back(solver.add_variable(0, 1));
  // Unsatisfiable parity-ish problem to force search: sum == 21.
  solver.add(make_sum_eq(vars, 21));
  SearchOptions options;
  options.max_nodes = 1;
  const auto outcome = solver.solve(options);
  // Root propagation already proves UNSAT here (bounds), so accept either.
  EXPECT_TRUE(outcome.status == SolveStatus::kUnsat ||
              outcome.status == SolveStatus::kNodeLimit);
}

TEST(Solver, NodeLimitOnSatisfiableSearch) {
  Solver solver;
  std::vector<VarId> vars;
  for (int k = 0; k < 30; ++k) vars.push_back(solver.add_variable(0, 1));
  // sum == 15: needs at least a handful of decisions.
  solver.add(make_sum_eq(vars, 15));
  SearchOptions options;
  options.max_nodes = 2;
  const auto outcome = solver.solve(options);
  EXPECT_EQ(outcome.status, SolveStatus::kNodeLimit);
  EXPECT_LE(outcome.stats.nodes, 3);
}

TEST(Solver, ExpiredDeadlineTimesOut) {
  Solver solver;
  std::vector<VarId> vars;
  for (int k = 0; k < 64; ++k) vars.push_back(solver.add_variable(0, 1));
  solver.add(make_sum_eq(vars, 32));
  SearchOptions options;
  options.deadline = support::Deadline::after_ms(0);
  const auto outcome = solver.solve(options);
  EXPECT_EQ(outcome.status, SolveStatus::kTimeout);
}

TEST(Solver, VariableBudgetEnforced) {
  SolverLimits limits;
  limits.max_variables = 3;
  Solver solver(limits);
  for (int k = 0; k < 3; ++k) static_cast<void>(solver.add_variable(0, 1));
  EXPECT_THROW(static_cast<void>(solver.add_variable(0, 1)), ResourceError);
}

TEST(Solver, MaxValueHeuristicPrefersLargeValues) {
  Solver solver;
  const VarId x = solver.add_variable(0, 9);
  SearchOptions options;
  options.val_heuristic = ValHeuristic::kMax;
  const auto outcome = solver.solve(options);
  ASSERT_EQ(outcome.status, SolveStatus::kSat);
  EXPECT_EQ(outcome.assignment[static_cast<std::size_t>(x)], 9);
}

TEST(Solver, RandomSearchIsSeedDeterministic) {
  auto run = [](std::uint64_t seed) {
    Solver solver;
    std::vector<VarId> vars;
    for (int k = 0; k < 12; ++k) vars.push_back(solver.add_variable(0, 3));
    solver.add(make_all_different_except({vars[0], vars[1], vars[2]}, -9));
    SearchOptions options;
    options.val_heuristic = ValHeuristic::kRandom;
    options.random_var_ties = true;
    options.var_heuristic = VarHeuristic::kMinDomain;
    options.seed = seed;
    return solver.solve(options).assignment;
  };
  EXPECT_EQ(run(5), run(5));
  // Different seeds usually give different assignments (not guaranteed per
  // variable, but across 12 variables a collision of all is implausible).
  EXPECT_NE(run(5), run(6));
}

TEST(Solver, LubyRestartsMakeProgress) {
  // A satisfiable instance that a restarting randomized search solves.
  Solver solver;
  std::vector<VarId> vars;
  for (int k = 0; k < 10; ++k) vars.push_back(solver.add_variable(0, 4));
  solver.add(make_all_different_except({vars[0], vars[1], vars[2], vars[3],
                                        vars[4]},
                                       -9));
  SearchOptions options;
  options.restart = RestartPolicy::kLuby;
  options.restart_scale = 2;
  options.val_heuristic = ValHeuristic::kRandom;
  options.seed = 3;
  const auto outcome = solver.solve(options);
  EXPECT_EQ(outcome.status, SolveStatus::kSat);
}

TEST(Solver, UnsatProofTerminatesWithRestartsEnabled) {
  Solver solver;
  std::vector<VarId> vars;
  for (int k = 0; k < 3; ++k) vars.push_back(solver.add_variable(0, 1));
  solver.add(make_all_different_except(vars, -9));  // pigeonhole
  SearchOptions options;
  options.restart = RestartPolicy::kGeometric;
  options.restart_scale = 1;
  options.val_heuristic = ValHeuristic::kRandom;
  const auto outcome = solver.solve(options);
  EXPECT_EQ(outcome.status, SolveStatus::kUnsat);
}

TEST(Solver, StatsArePopulated) {
  Solver solver;
  std::vector<VarId> vars;
  for (int k = 0; k < 6; ++k) vars.push_back(solver.add_variable(0, 1));
  solver.add(make_sum_eq(vars, 3));
  const auto outcome = solver.solve({});
  EXPECT_EQ(outcome.status, SolveStatus::kSat);
  EXPECT_GT(outcome.stats.nodes, 0);
  EXPECT_GT(outcome.stats.propagations, 0);
  EXPECT_GE(outcome.stats.seconds, 0.0);
}

TEST(Solver, LubyMatchesClosedForm) {
  // Closed form: luby(i) = 2^(k-1) when i = 2^k - 1; otherwise recurse on
  // i - (2^(k-1) - 1) where k is minimal with 2^k - 1 >= i.
  struct Ref {
    static std::int64_t at(std::int64_t i) {
      std::int64_t pow = 1;
      while (2 * pow - 1 < i) pow *= 2;
      if (2 * pow - 1 == i) return pow;
      return at(i - (pow - 1));
    }
  };
  const std::vector<std::int64_t> prefix = {1, 1, 2, 1, 1, 2, 4, 1,
                                            1, 2, 1, 1, 2, 4, 8};
  for (std::size_t k = 0; k < prefix.size(); ++k) {
    EXPECT_EQ(luby(static_cast<std::int64_t>(k) + 1), prefix[k])
        << "i=" << k + 1;
  }
  for (std::int64_t i = 1; i <= 2000; ++i) {
    ASSERT_EQ(luby(i), Ref::at(i)) << "i=" << i;
  }
  // End-of-subtree milestones: luby(2^k - 1) = 2^(k-1).
  for (int k = 1; k <= 40; ++k) {
    EXPECT_EQ(luby((std::int64_t{1} << k) - 1), std::int64_t{1} << (k - 1));
  }
}

TEST(Solver, RestartSearchIsSeedDeterministic) {
  // The whole restart-driven stack — randomized value order and ties, Luby
  // budgets, nogood recording, heap selection — must replay identically
  // under a fixed seed.
  auto run = [&](std::uint64_t seed) {
    Solver solver;
    std::vector<VarId> vars;
    for (int k = 0; k < 8; ++k) vars.push_back(solver.add_variable(0, 6));
    solver.add(make_all_different_except(vars, -9));  // pigeonhole: UNSAT
    solver.add(make_count_eq(vars, /*value=*/5, /*target=*/1));
    SearchOptions options;
    options.val_heuristic = ValHeuristic::kRandom;
    options.random_var_ties = true;
    options.restart = RestartPolicy::kLuby;
    options.restart_scale = 2;
    options.nogoods = true;
    options.seed = seed;
    return solver.solve(options);
  };
  const auto a = run(23);
  const auto b = run(23);
  EXPECT_EQ(a.status, SolveStatus::kUnsat);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.stats.nodes, b.stats.nodes);
  EXPECT_EQ(a.stats.failures, b.stats.failures);
  EXPECT_EQ(a.stats.restarts, b.stats.restarts);
  EXPECT_EQ(a.stats.nogoods_recorded, b.stats.nogoods_recorded);
  // Conflict analysis (on by default with nogoods) must replay too: the
  // same conflicts shrink to the same clauses.
  EXPECT_EQ(a.stats.nogood_lits_before, b.stats.nogood_lits_before);
  EXPECT_EQ(a.stats.nogood_lits_after, b.stats.nogood_lits_after);
  EXPECT_GT(a.stats.restarts, 0);
}

TEST(Solver, ReasonTrailIsAPureObserver) {
  // With nogood recording off, building the reason trail anyway
  // (force_reason_trail) must leave the search bit-identical: reasons are
  // written, never read.  This is the zero-cost contract of DESIGN.md §10.
  auto run = [&](bool force) {
    Solver solver;
    std::vector<VarId> vars;
    for (int k = 0; k < 8; ++k) vars.push_back(solver.add_variable(0, 6));
    solver.add(make_all_different_except(vars, -9));  // pigeonhole: UNSAT
    solver.add(make_count_eq(vars, /*value=*/5, /*target=*/1));
    SearchOptions options;
    options.val_heuristic = ValHeuristic::kRandom;
    options.random_var_ties = true;
    options.restart = RestartPolicy::kLuby;
    options.restart_scale = 2;
    options.nogoods = false;
    options.force_reason_trail = force;
    options.seed = 23;
    return solver.solve(options);
  };
  const auto plain = run(false);
  const auto traced = run(true);
  EXPECT_EQ(plain.status, SolveStatus::kUnsat);
  EXPECT_EQ(plain.status, traced.status);
  EXPECT_EQ(plain.stats.nodes, traced.stats.nodes);
  EXPECT_EQ(plain.stats.failures, traced.stats.failures);
  EXPECT_EQ(plain.stats.restarts, traced.stats.restarts);
  EXPECT_EQ(plain.stats.propagations, traced.stats.propagations);
  EXPECT_EQ(plain.stats.events, traced.stats.events);
  EXPECT_EQ(plain.assignment, traced.assignment);
}

TEST(Solver, CancelledTokenReportsTimeout) {
  // Cooperative cancellation surfaces as a deadline expiry at the next
  // poll, even with no wall-clock limit set.
  Solver solver;
  std::vector<VarId> vars;
  for (int k = 0; k < 10; ++k) vars.push_back(solver.add_variable(0, 8));
  solver.add(make_all_different_except(vars, -9));  // pigeonhole: slow proof
  const auto token = support::CancelToken::make();
  token.cancel();
  SearchOptions options;
  options.deadline.set_cancel(token);
  const auto outcome = solver.solve(options);
  EXPECT_EQ(outcome.status, SolveStatus::kTimeout);
}

TEST(Solver, LexHeuristicAssignsInDeclarationOrder) {
  Solver solver;
  const VarId a = solver.add_variable(0, 1);
  const VarId b = solver.add_variable(0, 1);
  solver.add(make_at_most_one({a, b}));
  SearchOptions options;
  options.var_heuristic = VarHeuristic::kLex;
  options.val_heuristic = ValHeuristic::kMax;  // try 1 first
  const auto outcome = solver.solve(options);
  ASSERT_EQ(outcome.status, SolveStatus::kSat);
  EXPECT_EQ(outcome.assignment[static_cast<std::size_t>(a)], 1);
  EXPECT_EQ(outcome.assignment[static_cast<std::size_t>(b)], 0);
}

}  // namespace
}  // namespace mgrts::csp
