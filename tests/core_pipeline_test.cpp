// Tests for the staged presolve->backend pipeline (core/pipeline.hpp) and
// the canonical verdict mapping (core/verdict.hpp): stage gating and
// provenance, short-circuit soundness, and randomized differential
// equivalence between the piped and direct solve paths on the paper's
// generator family — including arbitrary-deadline clone expansion.
#include <gtest/gtest.h>

#include "analysis/tests.hpp"
#include "core/solve.hpp"
#include "flow/oracle.hpp"
#include "gen/generator.hpp"
#include "localsearch/min_conflicts.hpp"
#include "rt/validate.hpp"
#include "support/rng.hpp"
#include "testing.hpp"

namespace mgrts::core {
namespace {

using mgrts::testing::example1;
using rt::Platform;
using rt::TaskSet;

TEST(CanonicalVerdict, OneMappingPerFrontend) {
  EXPECT_EQ(canonical_verdict(csp::SolveStatus::kSat), Verdict::kFeasible);
  EXPECT_EQ(canonical_verdict(csp::SolveStatus::kUnsat),
            Verdict::kInfeasible);
  EXPECT_EQ(canonical_verdict(csp::SolveStatus::kMemoryLimit),
            Verdict::kMemoryLimit);
  EXPECT_EQ(canonical_verdict(csp2::Status::kTimeout), Verdict::kTimeout);
  EXPECT_EQ(canonical_verdict(csp2::Status::kNodeLimit),
            Verdict::kNodeLimit);
  EXPECT_EQ(canonical_verdict(flow::OracleVerdict::kFeasible),
            Verdict::kFeasible);
  EXPECT_EQ(canonical_verdict(flow::OracleVerdict::kInfeasible),
            Verdict::kInfeasible);
  EXPECT_EQ(canonical_verdict(analysis::TestVerdict::kUnknown),
            Verdict::kUnknown);
  EXPECT_EQ(canonical_verdict(ls::Status::kFeasible), Verdict::kFeasible);
  EXPECT_EQ(canonical_verdict(ls::Status::kUnknown), Verdict::kUnknown);
}

TEST(CanonicalVerdict, DecisiveRequiresAProof) {
  EXPECT_TRUE(decisive(Verdict::kFeasible, false));
  EXPECT_TRUE(decisive(Verdict::kInfeasible, true));
  EXPECT_FALSE(decisive(Verdict::kInfeasible, false));  // EDF-style claim
  EXPECT_FALSE(decisive(Verdict::kUnknown, true));
  EXPECT_FALSE(decisive(Verdict::kTimeout, true));
}

TEST(Pipeline, FlowOracleStageDecidesExample1WithProvenance) {
  const SolveReport report =
      solve_instance(example1(), Platform::identical(2));  // default pipeline
  EXPECT_EQ(report.verdict, Verdict::kFeasible);
  EXPECT_EQ(report.decided_by, "flow-oracle");
  EXPECT_TRUE(report.witness_valid);
  EXPECT_EQ(report.nodes, 0) << "no search may run when presolve decides";
  // Stage trace: analysis ran first (undecided), then the oracle.
  ASSERT_EQ(report.stage_times.size(), 2u);
  EXPECT_EQ(report.stage_times[0].stage, "analysis");
  EXPECT_EQ(report.stage_times[0].verdict, Verdict::kUnknown);
  EXPECT_EQ(report.stage_times[1].stage, "flow-oracle");
  EXPECT_EQ(report.stage_times[1].verdict, Verdict::kFeasible);
}

TEST(Pipeline, AnalysisStageProvesOverCapacityInfeasible) {
  // Example 1 has U ~ 1.92 > 1: the utilization test settles m=1 before
  // the flow oracle or any backend runs.
  const SolveReport report =
      solve_instance(example1(), Platform::identical(1));
  EXPECT_EQ(report.verdict, Verdict::kInfeasible);
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.decided_by, "analysis:utilization");
  ASSERT_EQ(report.stage_times.size(), 1u);
}

TEST(Pipeline, DensityFeasibleIsWitnessLessButSound) {
  // Light tasks: density 2 * (1/4) <= 1, so the sufficient test proves
  // feasibility analytically.  With the flow stage off there is no witness
  // to validate — the verdict must still agree with the oracle.
  const TaskSet ts = TaskSet::from_params({{0, 1, 4, 4}, {0, 1, 4, 4}});
  SolveConfig config;
  config.pipeline = PipelineOptions::none();
  config.pipeline.analysis = true;
  const SolveReport report =
      solve_instance(ts, Platform::identical(1), config);
  EXPECT_EQ(report.verdict, Verdict::kFeasible);
  EXPECT_EQ(report.decided_by, "analysis:density");
  EXPECT_FALSE(report.schedule.has_value());
  EXPECT_TRUE(flow::is_feasible(ts, Platform::identical(1)));
}

TEST(Pipeline, Csp2PresolveStageProvesInfeasibilityWhenEnabledAlone) {
  // Two always-tight tasks on one processor: the slack/demand-pruned probe
  // refutes this instantly, without analysis or the oracle in front.
  const TaskSet ts = TaskSet::from_params({{0, 2, 2, 2}, {0, 2, 2, 2}});
  SolveConfig config;
  config.method = Method::kCsp1Generic;  // backend must never run
  config.pipeline = PipelineOptions::none();
  config.pipeline.csp2_presolve = true;
  const SolveReport report =
      solve_instance(ts, Platform::identical(1), config);
  EXPECT_EQ(report.verdict, Verdict::kInfeasible);
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.decided_by, "csp2-presolve");
}

TEST(Pipeline, FlowMemoryGuardFallsBackToTheDeferredDensityProof) {
  // Two coprime ~1e4 periods: the hyperperiod is ~1e8, so the flow
  // oracle's job table blows its slot budget.  The analysis stage deferred
  // its density proof to the oracle (necessary-only mode); the oracle must
  // recover it instead of dropping a provable instance into search.
  const TaskSet ts =
      TaskSet::from_params({{0, 1, 9973, 9973}, {0, 1, 9967, 9967}});
  SolveConfig config;
  config.method = Method::kCsp2Dedicated;
  config.max_nodes = 1;  // if search ran anyway, the verdict would differ
  const SolveReport report =
      solve_instance(ts, Platform::identical(1), config);
  EXPECT_EQ(report.verdict, Verdict::kFeasible);
  EXPECT_EQ(report.decided_by, "analysis:density");
  EXPECT_FALSE(report.schedule.has_value());
  EXPECT_NE(report.detail.find("flow oracle skipped"), std::string::npos)
      << report.detail;
}

TEST(Pipeline, StagesAreGatedOffHeterogeneousPlatforms) {
  // rate(task0, proc0) = 2: one slot serves the whole WCET.  Analysis and
  // the flow oracle must skip (they are identical-platform arguments); the
  // requested backend answers and the trace shows only it.
  const TaskSet ts = TaskSet::from_params({{0, 2, 2, 2}});
  const Platform platform = Platform::heterogeneous({{2}});
  const SolveReport report = solve_instance(ts, platform);  // default stages
  EXPECT_EQ(report.verdict, Verdict::kFeasible);
  EXPECT_EQ(report.decided_by, "backend:CSP2(dedicated)");
  ASSERT_EQ(report.stage_times.size(), 1u);
  EXPECT_EQ(report.stage_times[0].stage, "CSP2(dedicated)");
}

TEST(Pipeline, ZeroBudgetSkipsStages) {
  SolveConfig config;
  config.time_limit_ms = 0;
  config.method = Method::kCsp2Dedicated;
  const SolveReport report =
      solve_instance(example1(), Platform::identical(2), config);
  // The backend polls its deadline at a coarse node granularity, so a tiny
  // instance may still be solved outright; either way no presolve stage may
  // consume wall time on an expired deadline.
  EXPECT_TRUE(report.verdict == Verdict::kTimeout ||
              report.verdict == Verdict::kFeasible);
  ASSERT_EQ(report.stage_times.size(), 1u);
  EXPECT_EQ(report.stage_times[0].stage, "CSP2(dedicated)");
}

// ---------------------------------------------------------- differential
//
// The pipeline must be a pure short-circuit: piped and direct solves agree
// with each other and with the flow oracle on every instance of the
// paper's generator family.  This is the randomized safety harness for
// every stage's soundness.

TEST(PipelineDifferential, PipedVerdictsMatchDirectAndOracle) {
  gen::GeneratorOptions gopt;
  gopt.tasks = 4;
  gopt.processors = 2;
  gopt.t_max = 5;
  for (const std::uint64_t seed : {411ULL, 412ULL}) {
    for (std::uint64_t k = 0; k < 12; ++k) {
      const auto inst = gen::generate_indexed(gopt, seed, k);
      const Platform platform = Platform::identical(inst.processors);
      const bool oracle = flow::is_feasible(inst.tasks, platform);

      SolveConfig direct;
      direct.method = Method::kCsp2Dedicated;
      direct.pipeline = PipelineOptions::none();
      const SolveReport direct_report =
          solve_instance(inst.tasks, platform, direct);

      SolveConfig piped = direct;
      piped.pipeline = PipelineOptions::full();
      const SolveReport piped_report =
          solve_instance(inst.tasks, platform, piped);

      // Also a no-flow chain, so the analysis and csp2-presolve stages are
      // exercised as deciders rather than shadowed by the oracle.
      SolveConfig no_flow = direct;
      no_flow.pipeline = PipelineOptions::full();
      no_flow.pipeline.flow_oracle = false;
      const SolveReport no_flow_report =
          solve_instance(inst.tasks, platform, no_flow);

      ASSERT_EQ(direct_report.verdict,
                oracle ? Verdict::kFeasible : Verdict::kInfeasible)
          << "seed " << seed << " instance " << k;
      EXPECT_EQ(piped_report.verdict, direct_report.verdict)
          << "seed " << seed << " instance " << k << " decided by "
          << piped_report.decided_by;
      EXPECT_EQ(no_flow_report.verdict, direct_report.verdict)
          << "seed " << seed << " instance " << k << " decided by "
          << no_flow_report.decided_by;
      if (piped_report.schedule.has_value()) {
        EXPECT_TRUE(piped_report.witness_valid)
            << "seed " << seed << " instance " << k;
      }
      EXPECT_FALSE(piped_report.decided_by.empty());
    }
  }
}

TEST(PipelineDifferential, ArbitraryDeadlinesAgreeThroughCloneExpansion) {
  // Random arbitrary-deadline systems (some D > T): the facade clone-
  // expands transparently; piped and direct verdicts must agree, and
  // feasible witnesses must validate over the clone system the report
  // carries.
  support::Rng rng(20260731);
  int cloned_checked = 0;
  for (int trial = 0; trial < 12; ++trial) {
    std::vector<rt::TaskParams> params;
    const int n = 2 + static_cast<int>(rng.uniform(0, 1));
    for (int i = 0; i < n; ++i) {
      const rt::Time period = rng.uniform(2, 4);
      const rt::Time wcet = rng.uniform(1, 2);
      // Deadline up to 2T, allowing D > T (and forcing it for task 0).
      const rt::Time lo = i == 0 ? period + 1 : wcet;
      const rt::Time deadline = rng.uniform(lo, 2 * period);
      params.push_back({0, wcet, deadline < wcet ? wcet : deadline, period});
    }
    const TaskSet ts =
        TaskSet::from_params(params, rt::DeadlineModel::kArbitrary);
    const Platform platform = Platform::identical(2);

    SolveConfig direct;
    direct.method = Method::kCsp2Dedicated;
    direct.pipeline = PipelineOptions::none();
    const SolveReport direct_report = solve_instance(ts, platform, direct);

    SolveConfig piped = direct;
    piped.pipeline = PipelineOptions::full();
    const SolveReport piped_report = solve_instance(ts, platform, piped);

    EXPECT_EQ(piped_report.verdict, direct_report.verdict)
        << "trial " << trial << " decided by " << piped_report.decided_by;
    if (!ts.is_constrained()) {
      ASSERT_TRUE(piped_report.solved_tasks.has_value()) << "trial " << trial;
      ++cloned_checked;
      if (piped_report.schedule.has_value()) {
        EXPECT_TRUE(rt::is_valid_schedule(*piped_report.solved_tasks,
                                          platform, *piped_report.schedule))
            << "trial " << trial;
      }
    }
  }
  EXPECT_GT(cloned_checked, 6) << "sweep must actually exercise clones";
}

}  // namespace
}  // namespace mgrts::core
