// Conflict-analysis nogood minimization (DESIGN.md §10): the block-LBD
// measure, a hand-built implication chain whose minimal nogood is pinned
// exactly, and the pool's LBD-based admission (a long clause glued into
// one depth block must beat a short clause scattered across the tree).
#include <gtest/gtest.h>

#include <vector>

#include "csp/nogoods.hpp"
#include "csp/propagators.hpp"
#include "csp/solver.hpp"

namespace mgrts::csp {
namespace {

// ------------------------------------------------------------- block LBD

TEST(BlockLbd, CountsMaximalRunsOfConsecutiveDepths) {
  auto lbd = [](std::vector<std::int32_t> depths) {
    return block_lbd(depths.data(), static_cast<std::int32_t>(depths.size()));
  };
  EXPECT_EQ(lbd({0}), 1);
  EXPECT_EQ(lbd({0, 1, 2}), 1);       // an unminimized decision set
  EXPECT_EQ(lbd({3, 4, 5, 6, 7, 8}), 1);  // long but narrow
  EXPECT_EQ(lbd({0, 2, 4}), 3);       // every literal its own block
  EXPECT_EQ(lbd({2, 10, 20}), 3);     // short but wide
  EXPECT_EQ(lbd({0, 1, 5, 6}), 2);
  EXPECT_EQ(lbd({7, 8, 9, 40}), 2);
}

// ------------------------------------------------- implication-chain walk

// Pigeonhole over {b, c, d} (3 variables, 2 values) behind a decoy
// decision on `a`.  Lex search decides a=0, then b=0; forward checking
// fixes c=1 and d=1 and fails.  The implication trail is
//   d!=1 <- c=1 <- b=0 (decision),   d=1 <- b=0,   c=1 <- b=0,
// so the conflict is reachable from b alone: the minimized nogood is the
// unit (b != 0), while the raw decision set is {a=0, b=0}.
TEST(ConflictAnalysis, ImplicationChainPinsTheMinimalNogood) {
  auto first_conflict = [](bool shrink) {
    Solver solver;
    static_cast<void>(solver.add_variable(0, 1));  // a: the decoy decision
    const VarId b = solver.add_variable(0, 1);
    const VarId c = solver.add_variable(0, 1);
    const VarId d = solver.add_variable(0, 1);
    solver.add(make_all_different_except({b, c, d}, /*except=*/-9));
    SearchOptions options;
    options.var_heuristic = VarHeuristic::kLex;
    options.val_heuristic = ValHeuristic::kMin;
    options.nogoods = true;
    options.nogood_shrink = shrink;
    // Chronological baseline: backjumping would assert (b != 0) at the root
    // after this conflict and fail again without consuming a node, so the
    // "exactly one failure" pin below only holds for the classic retry.
    options.backjump = false;
    options.max_nodes = 2;  // stop right after the first conflict
    return solver.solve(options).stats;
  };

  const SolveStats shrunk = first_conflict(true);
  EXPECT_EQ(shrunk.failures, 1);
  EXPECT_EQ(shrunk.nogoods_recorded, 1);
  EXPECT_EQ(shrunk.nogood_lits_before, 2);  // raw set: {a=0, b=0}
  EXPECT_EQ(shrunk.nogood_lits_after, 1);   // minimized: {b=0}, a root unit

  const SolveStats raw = first_conflict(false);
  EXPECT_EQ(raw.nogoods_recorded, 1);
  EXPECT_EQ(raw.nogood_lits_before, 2);
  EXPECT_EQ(raw.nogood_lits_after, 2);  // shrinking off: full decision set
}

TEST(ConflictAnalysis, ShrunkSearchStillProvesUnsat) {
  for (const bool shrink : {false, true}) {
    Solver solver;
    static_cast<void>(solver.add_variable(0, 1));
    std::vector<VarId> hole;
    for (int k = 0; k < 3; ++k) hole.push_back(solver.add_variable(0, 1));
    solver.add(make_all_different_except(hole, /*except=*/-9));
    SearchOptions options;
    options.var_heuristic = VarHeuristic::kLex;
    options.nogoods = true;
    options.nogood_shrink = shrink;
    EXPECT_EQ(solver.solve(options).status, SolveStatus::kUnsat);
  }
}

// Deep conflicts with local causes: the raw decision set exceeds the
// length cut (so pre-analysis recording skipped them entirely), but the
// minimized clause fits and records.
TEST(ConflictAnalysis, RecordsDeepConflictsWhoseMinimizedClauseFits) {
  auto run = [](bool shrink) {
    Solver solver;
    // 6 decoy variables deepen the frame stack past the length cut before
    // the 3-variable pigeonhole conflicts.
    for (int k = 0; k < 6; ++k) static_cast<void>(solver.add_variable(0, 1));
    std::vector<VarId> hole;
    for (int k = 0; k < 3; ++k) hole.push_back(solver.add_variable(0, 1));
    solver.add(make_all_different_except(hole, /*except=*/-9));
    SearchOptions options;
    options.var_heuristic = VarHeuristic::kLex;
    options.val_heuristic = ValHeuristic::kMin;
    options.nogoods = true;
    options.nogood_shrink = shrink;
    options.nogood_max_length = 3;  // below the 7-decision conflict depth
    return solver.solve(options);
  };
  const auto raw = run(false);
  EXPECT_EQ(raw.status, SolveStatus::kUnsat);
  EXPECT_EQ(raw.stats.nogoods_recorded, 0) << "raw decision sets exceed "
                                              "the cut and must be skipped";
  const auto shrunk = run(true);
  EXPECT_EQ(shrunk.status, SolveStatus::kUnsat);
  EXPECT_GT(shrunk.stats.nogoods_recorded, 0)
      << "minimized clauses fit the cut and must record";
}

// ----------------------------------------------------- pool LBD admission

TEST(NogoodPool, AdmitsByLbdNotLength) {
  Solver solver;  // trail at root; domains stay untouched (no unit clauses)
  for (int k = 0; k < 10; ++k) static_cast<void>(solver.add_variable(0, 5));

  NogoodPool pool;
  // Short but wide: 3 literals from 3 scattered decision depths.
  const std::vector<Lit> wide{Lit::eq(0, 0), Lit::eq(2, 0), Lit::eq(4, 0)};
  pool.publish(/*lane=*/0, wide.data(), 3, /*lbd=*/3);
  // Long but narrow: 6 literals from one contiguous depth block.
  const std::vector<Lit> narrow{Lit::eq(1, 1), Lit::eq(2, 1), Lit::eq(3, 1),
                                Lit::eq(4, 1), Lit::eq(5, 1), Lit::eq(6, 1)};
  pool.publish(/*lane=*/0, narrow.data(), 6, /*lbd=*/1);

  // Under the old exchange-by-length rule the short wide clause would be
  // the preferred import; the LBD cut must admit exactly the narrow one.
  NogoodStore strict(10, /*max_length=*/24, /*max_lbd=*/2, /*db_limit=*/100);
  SolveStats stats;
  ASSERT_TRUE(strict.restart_maintenance(solver, &pool, /*lane=*/1, stats));
  EXPECT_EQ(stats.nogoods_imported, 1);
  EXPECT_EQ(strict.clause_count(), 1);

  NogoodStore loose(10, /*max_length=*/24, /*max_lbd=*/3, /*db_limit=*/100);
  SolveStats loose_stats;
  ASSERT_TRUE(loose.restart_maintenance(solver, &pool, /*lane=*/1,
                                        loose_stats));
  EXPECT_EQ(loose_stats.nogoods_imported, 2);
  EXPECT_EQ(loose.clause_count(), 2);
}

TEST(NogoodPool, CarriesLbdThroughImportSince) {
  NogoodPool pool;
  const std::vector<Lit> lits{Lit::eq(0, 0), Lit::eq(1, 1), Lit::eq(2, 0)};
  pool.publish(/*lane=*/0, lits.data(), 3, /*lbd=*/2);
  std::vector<PooledNogood> out;
  const std::size_t cursor = pool.import_since(0, /*lane=*/1, out);
  EXPECT_EQ(cursor, 1u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].lbd, 2);
  EXPECT_EQ(out[0].lits.size(), 3u);
  // The publishing lane never re-imports its own entry.
  std::vector<PooledNogood> own;
  static_cast<void>(pool.import_since(0, /*lane=*/0, own));
  EXPECT_TRUE(own.empty());
}

}  // namespace
}  // namespace mgrts::csp
