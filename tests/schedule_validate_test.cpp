#include "rt/validate.hpp"

#include <gtest/gtest.h>

#include "rt/schedule.hpp"
#include "support/error.hpp"
#include "testing.hpp"

namespace mgrts::rt {
namespace {

using mgrts::testing::example1;

/// A hand-checked feasible schedule for Example 1 (m=2, T=12):
///     slot  0  1  2  3  4  5  6  7  8  9 10 11
///     P1    1  2  1  2  1  2  1  2  1  2  2  1
///     P2    3  3  2  3  3  .  3  3  2  3  3  2
/// tau1 gets one slot per window; tau3 both slots of each of its windows;
/// tau2's jobs get {1,2,3}, {5,7,8} and the wrapped {9,10,11}.
Schedule example1_schedule() {
  Schedule s(12, 2);
  const TaskId p1[12] = {0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 1, 0};
  const TaskId p2[12] = {2, 2, 1, 2, 2, kIdle, 2, 2, 1, 2, 2, 1};
  for (Time t = 0; t < 12; ++t) {
    s.set(t, 0, p1[t]);
    if (p2[t] != kIdle) s.set(t, 1, p2[t]);
  }
  return s;
}

TEST(Schedule, BasicAccessors) {
  Schedule s(4, 2);
  EXPECT_EQ(s.hyperperiod(), 4);
  EXPECT_EQ(s.processors(), 2);
  EXPECT_EQ(s.at(0, 0), kIdle);
  s.set(3, 1, 7);
  EXPECT_EQ(s.at(3, 1), 7);
  EXPECT_EQ(s.at(7, 1), 7);  // cyclic access
  EXPECT_EQ(s.units_of(7), 1);
  EXPECT_EQ(s.busy_cells(), 1);
}

TEST(Schedule, RunningAtSkipsIdle) {
  Schedule s(2, 3);
  s.set(0, 0, 2);
  s.set(0, 2, 0);
  EXPECT_EQ(s.running_at(0), (std::vector<TaskId>{2, 0}));
  EXPECT_TRUE(s.running_at(1).empty());
}

TEST(Validator, AcceptsHandBuiltExample1Schedule) {
  const TaskSet ts = example1();
  const auto report =
      validate_schedule(ts, Platform::identical(2), example1_schedule());
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(Validator, DetectsShapeMismatch) {
  const TaskSet ts = example1();
  const Schedule wrong(6, 2);  // wrong hyperperiod
  const auto report = validate_schedule(ts, Platform::identical(2), wrong);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].kind, ViolationKind::kShape);
}

TEST(Validator, DetectsMissingWork) {
  const TaskSet ts = example1();
  Schedule s = example1_schedule();
  s.set(0, 0, kIdle);  // remove one tau1 unit
  const auto report = validate_schedule(ts, Platform::identical(2), s);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].kind, ViolationKind::kWrongAmount);
  EXPECT_EQ(report.violations[0].task, 0);
}

TEST(Validator, DetectsExcessWork) {
  const TaskSet ts = example1();
  Schedule s = example1_schedule();
  s.set(1, 0, 0);  // tau1 now has 2 units in window {0,1}
  const auto report = validate_schedule(ts, Platform::identical(2), s);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].kind, ViolationKind::kWrongAmount);
}

TEST(Validator, DetectsOutsideWindow) {
  const TaskSet ts = example1();
  Schedule s = example1_schedule();
  // tau3 has no window at slot 2; also remove a unit from its window to
  // keep the amount right and isolate the C1 violation.
  s.set(2, 0, 2);
  s.set(0, 1, kIdle);
  const auto report = validate_schedule(ts, Platform::identical(2), s);
  ASSERT_FALSE(report.ok());
  bool saw_c1 = false;
  for (const auto& v : report.violations) {
    saw_c1 = saw_c1 || v.kind == ViolationKind::kOutsideWindow;
  }
  EXPECT_TRUE(saw_c1) << report.to_string();
}

TEST(Validator, DetectsIntraSlotParallelism) {
  const TaskSet ts = example1();
  Schedule s(12, 2);
  // tau1 on both processors at slot 0.
  s.set(0, 0, 0);
  s.set(0, 1, 0);
  const auto report = validate_schedule(ts, Platform::identical(2), s);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].kind, ViolationKind::kParallelism);
  EXPECT_EQ(report.violations[0].slot, 0);
}

TEST(Validator, DetectsBadTaskId) {
  const TaskSet ts = example1();
  Schedule s(12, 2);
  s.set(0, 0, 17);
  const auto report = validate_schedule(ts, Platform::identical(2), s);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].kind, ViolationKind::kBadTaskId);
}

TEST(Validator, DetectsZeroRateProcessor) {
  const TaskSet ts = TaskSet::from_params({{0, 1, 1, 1}});
  const Platform p = Platform::heterogeneous({{1, 0}});
  Schedule s(1, 2);
  s.set(0, 1, 0);  // P2 cannot serve tau1
  const auto report = validate_schedule(ts, p, s);
  ASSERT_FALSE(report.ok());
  bool saw = false;
  for (const auto& v : report.violations) {
    saw = saw || v.kind == ViolationKind::kZeroRateProc;
  }
  EXPECT_TRUE(saw);
}

TEST(Validator, HeterogeneousWeightedAmount) {
  // tau1 needs C=2; P1 runs it at rate 2, so one slot suffices.
  const TaskSet ts = TaskSet::from_params({{0, 2, 2, 2}});
  const Platform p = Platform::heterogeneous({{2}});
  Schedule s(2, 1);
  s.set(0, 0, 0);
  EXPECT_TRUE(validate_schedule(ts, p, s).ok());
  // Running both slots would overshoot (4 != 2).
  s.set(1, 0, 0);
  EXPECT_FALSE(validate_schedule(ts, p, s).ok());
}

TEST(Validator, RejectsArbitraryDeadlineInput) {
  const TaskSet ts =
      TaskSet::from_params({{0, 1, 5, 4}}, DeadlineModel::kArbitrary);
  const Schedule s(20, 1);
  EXPECT_THROW(
      static_cast<void>(validate_schedule(ts, Platform::identical(1), s)),
      ValidationError);
}

TEST(Validator, ReportRendersHumanReadably) {
  const TaskSet ts = example1();
  Schedule s(12, 2);
  s.set(0, 0, 0);
  s.set(0, 1, 0);
  const auto report = validate_schedule(ts, Platform::identical(2), s);
  const std::string text = report.to_string();
  EXPECT_NE(text.find("C3-parallelism"), std::string::npos);
  EXPECT_NE(text.find("tau1"), std::string::npos);
}

}  // namespace
}  // namespace mgrts::rt
