#include "csp2/csp2.hpp"

#include <gtest/gtest.h>

#include "flow/oracle.hpp"
#include "gen/generator.hpp"
#include "rt/validate.hpp"
#include "support/error.hpp"
#include "testing.hpp"

namespace mgrts::csp2 {
namespace {

using mgrts::testing::dhall2;
using mgrts::testing::example1;
using rt::Platform;
using rt::TaskSet;

// ------------------------------------------------------------ value orders

TEST(ValueOrder, RateMonotonicSortsByPeriod) {
  // Periods: 2, 4, 3 -> RM order 0, 2, 1.
  const auto order = value_order_tasks(example1(), ValueOrder::kRateMonotonic);
  EXPECT_EQ(order, (std::vector<rt::TaskId>{0, 2, 1}));
}

TEST(ValueOrder, DeadlineMonotonicSortsByDeadline) {
  // Deadlines: 2, 4, 2 -> DM order 0, 2, 1 (tie 0/2 broken by id).
  const auto order =
      value_order_tasks(example1(), ValueOrder::kDeadlineMonotonic);
  EXPECT_EQ(order, (std::vector<rt::TaskId>{0, 2, 1}));
}

TEST(ValueOrder, TMinusCAndDMinusC) {
  // T-C: 1, 1, 1 -> input order by tie-break.
  EXPECT_EQ(value_order_tasks(example1(), ValueOrder::kTMinusC),
            (std::vector<rt::TaskId>{0, 1, 2}));
  // D-C: 1, 1, 0 -> tau3 first.
  EXPECT_EQ(value_order_tasks(example1(), ValueOrder::kDMinusC),
            (std::vector<rt::TaskId>{2, 0, 1}));
}

TEST(ValueOrder, InputIsIdentity) {
  EXPECT_EQ(value_order_tasks(example1(), ValueOrder::kInput),
            (std::vector<rt::TaskId>{0, 1, 2}));
}

TEST(ValueOrder, Names) {
  EXPECT_STREQ(to_string(ValueOrder::kInput), "CSP2");
  EXPECT_STREQ(to_string(ValueOrder::kDMinusC), "CSP2+(D-C)");
}

TEST(ValueOrder, GoldenPermutationsWithTieByTaskId) {
  // All four §V-C2 heuristics on one task set with deliberate key ties —
  // tau0 and tau1 are exact duplicates, so every heuristic must order them
  // by task id.  Params (O, C, D, T):
  //   tau0 (0,1,3,4): RM key 4, DM 3, T-C 3, D-C 2
  //   tau1 (0,1,3,4): identical keys -> always after tau0
  //   tau2 (0,2,2,4): RM 4, DM 2, T-C 2, D-C 0
  //   tau3 (0,1,2,3): RM 3, DM 2, T-C 2, D-C 1
  const TaskSet ts = TaskSet::from_params(
      {{0, 1, 3, 4}, {0, 1, 3, 4}, {0, 2, 2, 4}, {0, 1, 2, 3}});
  EXPECT_EQ(value_order_tasks(ts, ValueOrder::kInput),
            (std::vector<rt::TaskId>{0, 1, 2, 3}));
  // RM: periods 4, 4, 4, 3 -> tau3, then the 4-tie in id order.
  EXPECT_EQ(value_order_tasks(ts, ValueOrder::kRateMonotonic),
            (std::vector<rt::TaskId>{3, 0, 1, 2}));
  // DM: deadlines 3, 3, 2, 2 -> ties (2,3) then (0,1), both by id.
  EXPECT_EQ(value_order_tasks(ts, ValueOrder::kDeadlineMonotonic),
            (std::vector<rt::TaskId>{2, 3, 0, 1}));
  // T-C: 3, 3, 2, 2 -> same tie structure as DM.
  EXPECT_EQ(value_order_tasks(ts, ValueOrder::kTMinusC),
            (std::vector<rt::TaskId>{2, 3, 0, 1}));
  // D-C: 2, 2, 0, 1 -> tau2, tau3, then the duplicate pair by id.
  EXPECT_EQ(value_order_tasks(ts, ValueOrder::kDMinusC),
            (std::vector<rt::TaskId>{2, 3, 0, 1}));
}

TEST(ValueOrder, InformedOrdersLineUpMatchesPaper) {
  const auto& orders = informed_value_orders();
  ASSERT_EQ(orders.size(), 4u);
  EXPECT_EQ(orders[0], ValueOrder::kRateMonotonic);
  EXPECT_EQ(orders[1], ValueOrder::kDeadlineMonotonic);
  EXPECT_EQ(orders[2], ValueOrder::kTMinusC);
  EXPECT_EQ(orders[3], ValueOrder::kDMinusC);
}

// ------------------------------------------------------------------ solving

class AllHeuristics : public ::testing::TestWithParam<ValueOrder> {};

TEST_P(AllHeuristics, SolvesExample1WithValidWitness) {
  Options options;
  options.value_order = GetParam();
  const Result result =
      solve(example1(), Platform::identical(2), options);
  ASSERT_EQ(result.status, Status::kFeasible);
  ASSERT_TRUE(result.schedule.has_value());
  EXPECT_TRUE(rt::is_valid_schedule(example1(), Platform::identical(2),
                                    *result.schedule));
  EXPECT_TRUE(result.search_complete);
}

TEST_P(AllHeuristics, ProvesExample1InfeasibleOnOneProcessor) {
  Options options;
  options.value_order = GetParam();
  const Result result = solve(example1(), Platform::identical(1), options);
  EXPECT_EQ(result.status, Status::kInfeasible);
  EXPECT_TRUE(result.search_complete);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllHeuristics,
    ::testing::Values(ValueOrder::kInput, ValueOrder::kRateMonotonic,
                      ValueOrder::kDeadlineMonotonic, ValueOrder::kTMinusC,
                      ValueOrder::kDMinusC),
    [](const ::testing::TestParamInfo<ValueOrder>& info) {
      switch (info.param) {
        case ValueOrder::kInput: return "input";
        case ValueOrder::kRateMonotonic: return "RM";
        case ValueOrder::kDeadlineMonotonic: return "DM";
        case ValueOrder::kTMinusC: return "TmC";
        case ValueOrder::kDMinusC: return "DmC";
      }
      return "other";
    });

TEST(Csp2, DhallInstanceFeasible) {
  // Global EDF famously misses here (see sim tests); the CSP approach does
  // not: tau3 saturates one core, the light tasks share the other.
  const Result result = solve(dhall2(), Platform::identical(2));
  ASSERT_EQ(result.status, Status::kFeasible);
  EXPECT_TRUE(rt::is_valid_schedule(dhall2(), Platform::identical(2),
                                    *result.schedule));
}

TEST(Csp2, DeterministicAcrossRuns) {
  // §VII-B: "our CSP2 solver is completely deterministic".
  const Result a = solve(example1(), Platform::identical(2));
  const Result b = solve(example1(), Platform::identical(2));
  ASSERT_EQ(a.status, Status::kFeasible);
  ASSERT_EQ(b.status, Status::kFeasible);
  EXPECT_EQ(*a.schedule, *b.schedule);
  EXPECT_EQ(a.stats.nodes, b.stats.nodes);
}

TEST(Csp2, StatsPopulated) {
  const Result result = solve(example1(), Platform::identical(2));
  EXPECT_GT(result.stats.nodes, 0);
  EXPECT_EQ(result.stats.max_column, 11);
  EXPECT_GE(result.stats.seconds, 0.0);
}

TEST(Csp2, TimeoutHonored) {
  // A hard instance: near-capacity with many tasks; 0 ms budget must
  // return immediately with kTimeout (or decide instantly, which small
  // instances may).
  Options options;
  options.deadline = support::Deadline::after_ms(0);
  const Result result = solve(example1(), Platform::identical(2), options);
  EXPECT_TRUE(result.status == Status::kTimeout ||
              result.status == Status::kFeasible);
}

TEST(Csp2, NodeLimitHonored) {
  Options options;
  options.max_nodes = 3;
  const Result result = solve(example1(), Platform::identical(2), options);
  EXPECT_TRUE(result.status == Status::kNodeLimit ||
              result.status == Status::kFeasible);
  if (result.status == Status::kNodeLimit) {
    EXPECT_LE(result.stats.nodes, 4);
  }
}

TEST(Csp2, RejectsArbitraryDeadlineInput) {
  const TaskSet ts =
      TaskSet::from_params({{0, 1, 5, 4}}, rt::DeadlineModel::kArbitrary);
  EXPECT_THROW(static_cast<void>(solve(ts, Platform::identical(1))),
               ValidationError);
}

TEST(Csp2, SolvesCloneExpandedArbitraryDeadlines) {
  const TaskSet ts = TaskSet::from_params({{0, 3, 4, 2}, {0, 1, 2, 2}},
                                          rt::DeadlineModel::kArbitrary);
  const TaskSet clones = ts.to_constrained();
  const Platform p = Platform::identical(2);
  const Result result = solve(clones, p);
  ASSERT_EQ(result.status, Status::kFeasible);
  EXPECT_TRUE(rt::is_valid_schedule(clones, p, *result.schedule));
}

// --------------------------------------------------------- rule soundness

struct RuleParam {
  bool idle_rule;
  bool symmetry_rule;
  bool slack;
  bool demand;
};

class RuleSoundness : public ::testing::TestWithParam<RuleParam> {};

TEST_P(RuleSoundness, VerdictsMatchOracleOnIdenticalPlatforms) {
  // All four switches preserve the feasibility verdict on identical
  // platforms (rules 1/2 by the exchange/canonicity arguments, pruning by
  // being necessary conditions).
  const auto param = GetParam();
  for (std::uint64_t k = 0; k < 60; ++k) {
    gen::GeneratorOptions gopt;
    gopt.tasks = 4;
    gopt.processors = 2;
    gopt.t_max = 5;
    gopt.with_offsets = (k % 2 == 1);
    const auto inst = gen::generate_indexed(gopt, 31, k);
    const Platform p = Platform::identical(inst.processors);
    const bool oracle = flow::is_feasible(inst.tasks, p);

    Options options;
    options.idle_rule = param.idle_rule;
    options.symmetry_rule = param.symmetry_rule;
    options.slack_prune = param.slack;
    options.tight_demand_prune = param.demand;
    const Result result = solve(inst.tasks, p, options);
    ASSERT_TRUE(result.status == Status::kFeasible ||
                result.status == Status::kInfeasible);
    EXPECT_EQ(result.status == Status::kFeasible, oracle) << "instance " << k;
    if (result.schedule.has_value()) {
      EXPECT_TRUE(rt::is_valid_schedule(inst.tasks, p, *result.schedule));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RuleSoundness,
    ::testing::Values(RuleParam{true, true, true, true},
                      RuleParam{false, true, true, true},
                      RuleParam{true, false, true, true},
                      RuleParam{true, true, false, false},
                      RuleParam{false, false, false, false}),
    [](const ::testing::TestParamInfo<RuleParam>& info) {
      std::string name;
      name += info.param.idle_rule ? "idle" : "noidle";
      name += info.param.symmetry_rule ? "_sym" : "_nosym";
      name += info.param.slack ? "_slack" : "_noslack";
      name += info.param.demand ? "_demand" : "_nodemand";
      return name;
    });

class HeuristicSoundness : public ::testing::TestWithParam<ValueOrder> {};

TEST_P(HeuristicSoundness, RankSymmetryAgreesWithOracleUnderEveryOrder) {
  // Rule 2 breaks symmetry on value-order *ranks* (DESIGN.md §3.4b); the
  // canonical form therefore depends on the heuristic.  Verdicts must
  // still match the oracle for every ordering.
  for (std::uint64_t k = 0; k < 40; ++k) {
    gen::GeneratorOptions gopt;
    gopt.tasks = 5;
    gopt.processors = 2;
    gopt.t_max = 5;
    gopt.with_offsets = (k % 3 == 0);
    const auto inst = gen::generate_indexed(gopt, 1337, k);
    const Platform p = Platform::identical(inst.processors);
    const bool oracle = flow::is_feasible(inst.tasks, p);
    Options options;
    options.value_order = GetParam();
    const Result result = solve(inst.tasks, p, options);
    ASSERT_TRUE(result.status == Status::kFeasible ||
                result.status == Status::kInfeasible);
    EXPECT_EQ(result.status == Status::kFeasible, oracle) << "instance " << k;
    if (result.schedule.has_value()) {
      EXPECT_TRUE(rt::is_valid_schedule(inst.tasks, p, *result.schedule))
          << "instance " << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HeuristicSoundness,
    ::testing::Values(ValueOrder::kInput, ValueOrder::kRateMonotonic,
                      ValueOrder::kDeadlineMonotonic, ValueOrder::kTMinusC,
                      ValueOrder::kDMinusC),
    [](const ::testing::TestParamInfo<ValueOrder>& info) {
      switch (info.param) {
        case ValueOrder::kInput: return "input";
        case ValueOrder::kRateMonotonic: return "RM";
        case ValueOrder::kDeadlineMonotonic: return "DM";
        case ValueOrder::kTMinusC: return "TmC";
        case ValueOrder::kDMinusC: return "DmC";
      }
      return "other";
    });

TEST(Csp2Rules, SymmetryRanksFollowValueOrder) {
  // Under a non-identity heuristic the canonical rows ascend by *rank*:
  // tau3 has the smallest D-C in Example 1, so wherever tau3 shares a slot
  // with another task it occupies the earlier processor.
  Options options;
  options.value_order = ValueOrder::kDMinusC;  // order: tau3, tau1, tau2
  const Result result = solve(example1(), Platform::identical(2), options);
  ASSERT_EQ(result.status, Status::kFeasible);
  const rt::Schedule& s = *result.schedule;
  for (rt::Time t = 0; t < s.hyperperiod(); ++t) {
    // tau3 holds rank 0: nothing (neither a task nor a rule-1 idle) can
    // legally precede it, so it never appears on the second processor.
    EXPECT_NE(s.at(t, 1), 2) << "t=" << t;
  }
}

TEST(Csp2Rules, SymmetryRuleKeepsRowsCanonical) {
  const Result result = solve(example1(), Platform::identical(2));
  ASSERT_EQ(result.status, Status::kFeasible);
  const rt::Schedule& s = *result.schedule;
  for (rt::Time t = 0; t < s.hyperperiod(); ++t) {
    rt::TaskId prev = -1;
    for (rt::ProcId j = 0; j < s.processors(); ++j) {
      const rt::TaskId v = s.at(t, j);
      if (v == rt::kIdle) continue;
      EXPECT_GT(v, prev);
      prev = v;
    }
  }
}

TEST(Csp2Rules, IdleRuleKeepsProcessorsBusy) {
  // With the idle rule, a slot column never has an idle processor while a
  // task with remaining work in that slot's window exists that could run.
  // Spot-check on Example 1: total busy cells must equal total demand, and
  // the single idle cell (24 cells, demand 23) sits on the last processor.
  const Result result = solve(example1(), Platform::identical(2));
  ASSERT_EQ(result.status, Status::kFeasible);
  EXPECT_EQ(result.schedule->busy_cells(), example1().total_demand());
}

// ------------------------------------------------------------ heterogeneous

TEST(Csp2Hetero, DedicatedProcessorsRespected) {
  // tau1 only on P1, tau2 only on P2.
  const TaskSet ts = TaskSet::from_params({{0, 2, 2, 2}, {0, 2, 2, 2}});
  const Platform p = Platform::heterogeneous({{1, 0}, {0, 1}});
  const Result result = solve(ts, p);
  ASSERT_EQ(result.status, Status::kFeasible);
  EXPECT_TRUE(rt::is_valid_schedule(ts, p, *result.schedule));
  for (rt::Time t = 0; t < 2; ++t) {
    EXPECT_EQ(result.schedule->at(t, 0), 0);
    EXPECT_EQ(result.schedule->at(t, 1), 1);
  }
}

TEST(Csp2Hetero, WeightedAmountEq12) {
  // C=4 at rate 2: two slots; the third slot must idle (equality (12)).
  const TaskSet ts = TaskSet::from_params({{0, 4, 3, 3}});
  const Platform p = Platform::heterogeneous({{2}});
  const Result result = solve(ts, p);
  ASSERT_EQ(result.status, Status::kFeasible);
  EXPECT_TRUE(rt::is_valid_schedule(ts, p, *result.schedule));
  EXPECT_EQ(result.schedule->units_of(0), 2);
}

TEST(Csp2Hetero, OvershootGuardPreventsInvalidWitness) {
  // C=3, only a rate-2 processor: equality cannot be met.
  const TaskSet ts = TaskSet::from_params({{0, 3, 3, 3}});
  const Platform p = Platform::heterogeneous({{2}});
  const Result result = solve(ts, p);
  EXPECT_EQ(result.status, Status::kInfeasible);
}

TEST(Csp2Hetero, TaskNobodyCanServeIsInfeasibleFast) {
  const TaskSet ts = TaskSet::from_params({{0, 1, 1, 1}});
  const Platform p = Platform::heterogeneous({{0}});
  const Result result = solve(ts, p);
  EXPECT_EQ(result.status, Status::kInfeasible);
  EXPECT_EQ(result.stats.nodes, 0);
}

TEST(Csp2Hetero, MixedRatesSolveAndValidate) {
  const TaskSet ts =
      TaskSet::from_params({{0, 2, 2, 2}, {0, 3, 3, 3}, {0, 1, 2, 4}});
  const Platform p =
      Platform::heterogeneous({{1, 2}, {1, 1}, {2, 0}});
  const Result result = solve(ts, p);
  if (result.status == Status::kFeasible) {
    EXPECT_TRUE(rt::is_valid_schedule(ts, p, *result.schedule));
  } else {
    // Rule-1 searches are incomplete under heterogeneity; the solver must
    // say so rather than claim a proof.
    EXPECT_EQ(result.status, Status::kInfeasible);
    EXPECT_FALSE(result.search_complete);
  }
}

TEST(Csp2Hetero, DisablingIdleRuleRestoresCompleteness) {
  const TaskSet ts = TaskSet::from_params({{0, 2, 2, 2}});
  const Platform p = Platform::heterogeneous({{1, 2}});
  Options options;
  options.idle_rule = false;
  const Result result = solve(ts, p, options);
  EXPECT_TRUE(result.search_complete);
  ASSERT_EQ(result.status, Status::kFeasible);
  EXPECT_TRUE(rt::is_valid_schedule(ts, p, *result.schedule));
}

TEST(Csp2Hetero, RateMatrixArityChecked) {
  const TaskSet ts = TaskSet::from_params({{0, 1, 1, 1}, {0, 1, 1, 1}});
  EXPECT_THROW(
      static_cast<void>(solve(ts, Platform::heterogeneous({{1, 1}}))),
      ValidationError);
}

// ----------------------------------------------------- wrap-around stress

TEST(Csp2Wrap, OffsetHeavyInstancesAgreeWithOracle) {
  for (std::uint64_t k = 0; k < 80; ++k) {
    gen::GeneratorOptions gopt;
    gopt.tasks = 3;
    gopt.processors = 2;
    gopt.t_max = 6;
    gopt.with_offsets = true;  // every instance exercises wrap handling
    const auto inst = gen::generate_indexed(gopt, 5150, k);
    const Platform p = Platform::identical(inst.processors);
    const bool oracle = flow::is_feasible(inst.tasks, p);
    const Result result = solve(inst.tasks, p);
    EXPECT_EQ(result.status == Status::kFeasible, oracle) << "instance " << k;
    if (result.schedule.has_value()) {
      EXPECT_TRUE(rt::is_valid_schedule(inst.tasks, p, *result.schedule))
          << "instance " << k;
    }
  }
}

TEST(Csp2Wrap, FullCycleWindowTask) {
  // O=1, D=T=2 over T=2: the window of job 2 wraps as {1, 0}; combined the
  // task occupies the whole cycle.
  const TaskSet ts = TaskSet::from_params({{1, 2, 2, 2}});
  const Result result = solve(ts, Platform::identical(1));
  ASSERT_EQ(result.status, Status::kFeasible);
  EXPECT_TRUE(
      rt::is_valid_schedule(ts, Platform::identical(1), *result.schedule));
}

}  // namespace
}  // namespace mgrts::csp2
